module edgescope

go 1.24
