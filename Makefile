# edgescope build/test/bench targets. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: build vet test race fuzz bench bench-json ci repro

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages that schedule work across goroutines.
race:
	$(GO) test -race ./internal/core/ ./internal/crowd/ ./internal/par/ ./internal/telemetry/

# Brief fuzz pass over the telemetry JSONL decoder.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 5s ./internal/telemetry/

# Full benchmark sweep (slow; one iteration per benchmark for a quick pass).
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run xxx .

# Record the perf trajectory for future PRs (the scenario tag comes from the
# `scenario:` context line bench_test.go prints).
bench-json:
	$(GO) test -bench . -benchmem -benchtime 1x -run xxx . | $(GO) run ./cmd/benchdump -out BENCH.json

ci:
	./scripts/ci.sh

# Reproduce every paper artifact in parallel.
repro:
	$(GO) run ./cmd/reproall -parallel 0
