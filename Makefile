# edgescope build/test/bench targets. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: build vet test race fuzz chaos bench bench-json bench-compare bench-multicore ci repro profile

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages that schedule work across goroutines.
race:
	$(GO) test -race ./internal/core/ ./internal/crowd/ ./internal/par/ ./internal/telemetry/ ./internal/telemetry/cluster/ ./cmd/telemetryd/

# Brief fuzz passes over the wire decoder and the durability surfaces (WAL
# segment replay, snapshot decode, sketch codec).
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 5s ./internal/telemetry/
	$(GO) test -run xxx -fuzz FuzzWALSegmentReplay -fuzztime 3s ./internal/telemetry/
	$(GO) test -run xxx -fuzz FuzzSnapshotDecode -fuzztime 3s ./internal/telemetry/
	$(GO) test -run xxx -fuzz FuzzSketchUnmarshalBinary -fuzztime 3s ./internal/stats/

# The full chaos/durability test surface: fault-injected equivalence over
# every built-in scenario, stall/short-write survival, kill-and-recover.
chaos:
	$(GO) test -count=1 -run 'TestChaos|TestKillAndRecover|TestRecover|TestTornTail|TestCorrupt' -v ./internal/telemetry/

# Full benchmark sweep. 100ms per benchmark keeps iteration counts
# meaningful on the micro-benchmarks while the heavyweights run once.
bench:
	$(GO) test -bench . -benchmem -benchtime 100ms -run xxx .

# Record the perf trajectory for future PRs (the scenario tag comes from the
# `scenario:` context line bench_test.go prints). The RunAll pair is
# re-benched at an iteration-count -benchtime so its ns/op is a ≥2-iteration
# statistic; benchdump keeps the higher-iteration entry per name.
bench-json:
	{ $(GO) test -bench . -benchmem -benchtime 100ms -run xxx . && \
	  $(GO) test -bench '^BenchmarkRunAll(Serial|Parallel)$$' -benchmem -benchtime 2x -run xxx . ; } \
	  | $(GO) run ./cmd/benchdump -out BENCH.json

# Delta table of the working tree's benchmarks vs the committed BENCH.json
# (HEAD's copy, so repeated runs never gate against a drifted baseline),
# with the same allocation-budget gate ci.sh enforces (the gated names live
# in scripts/bench_gate — one source for CI and local runs). The temp
# snapshots are removed whether the gate passes or fails.
bench-compare:
	{ $(GO) test -bench . -benchmem -benchtime 100ms -run xxx . && \
	  $(GO) test -bench '^BenchmarkRunAll(Serial|Parallel)$$' -benchmem -benchtime 2x -run xxx . ; } \
	  | $(GO) run ./cmd/benchdump -out BENCH.new.json
	@git show HEAD:BENCH.json > BENCH.base.json 2>/dev/null || cp BENCH.json BENCH.base.json; \
	$(GO) run ./cmd/benchdump -compare \
		-gate "$$(cat scripts/bench_gate)" -tolerance 0.15 \
		BENCH.base.json BENCH.new.json; st=$$?; rm -f BENCH.new.json BENCH.base.json; exit $$st

# Multi-core scaling pin (ROADMAP item 6): the RunAll pair at GOMAXPROCS>=4
# (the host's core count when larger), recorded to BENCH_MULTICORE.json, then
# the parallel/serial ratio check. benchdump gates the ratio only when the
# snapshot's num_cpu is >=4 — on a 1-CPU box GOMAXPROCS=4 just time-slices,
# so the committed reference numbers from such hosts are advisory, and the
# check prints the verdict without failing the build.
bench-multicore:
	@procs=$$(nproc 2>/dev/null || echo 4); [ "$$procs" -ge 4 ] || procs=4; \
	echo "bench-multicore: GOMAXPROCS=$$procs"; \
	GOMAXPROCS=$$procs $(GO) test -bench '^BenchmarkRunAll(Serial|Parallel)$$' -benchmem -benchtime 2x -run xxx . \
	  | $(GO) run ./cmd/benchdump -out BENCH_MULTICORE.json
	$(GO) run ./cmd/benchdump -ratio-check BENCH_MULTICORE.json

ci:
	./scripts/ci.sh

# Reproduce every paper artifact in parallel.
repro:
	$(GO) run ./cmd/reproall -parallel 0

# The profile-first workflow in one command: run the full serial
# reproduction under CPU and heap profiling, then print the top consumers of
# both. Override the scenario with PROFILE_SCENARIO=stress (etc.).
PROFILE_SCENARIO ?= small
profile:
	$(GO) run ./cmd/reproall -scenario $(PROFILE_SCENARIO) -parallel 1 -quiet-times \
	  -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "== cpu.prof (top) =="
	$(GO) tool pprof -top -nodecount 15 cpu.prof
	@echo "== mem.prof (top) =="
	$(GO) tool pprof -top -nodecount 15 mem.prof
