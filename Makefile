# edgescope build/test/bench targets. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: build vet test race fuzz bench bench-json bench-compare ci repro

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the packages that schedule work across goroutines.
race:
	$(GO) test -race ./internal/core/ ./internal/crowd/ ./internal/par/ ./internal/telemetry/

# Brief fuzz pass over the telemetry JSONL decoder.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnvelopeDecode -fuzztime 5s ./internal/telemetry/

# Full benchmark sweep. 100ms per benchmark keeps iteration counts
# meaningful on the micro-benchmarks while the heavyweights run once.
bench:
	$(GO) test -bench . -benchmem -benchtime 100ms -run xxx .

# Record the perf trajectory for future PRs (the scenario tag comes from the
# `scenario:` context line bench_test.go prints).
bench-json:
	$(GO) test -bench . -benchmem -benchtime 100ms -run xxx . | $(GO) run ./cmd/benchdump -out BENCH.json

# Delta table of the working tree's benchmarks vs the committed BENCH.json
# (HEAD's copy, so repeated runs never gate against a drifted baseline),
# with the same allocation-budget gate ci.sh enforces (the gated names live
# in scripts/bench_gate — one source for CI and local runs). The temp
# snapshots are removed whether the gate passes or fails.
bench-compare:
	$(GO) test -bench . -benchmem -benchtime 100ms -run xxx . | $(GO) run ./cmd/benchdump -out BENCH.new.json
	@git show HEAD:BENCH.json > BENCH.base.json 2>/dev/null || cp BENCH.json BENCH.base.json; \
	$(GO) run ./cmd/benchdump -compare \
		-gate "$$(cat scripts/bench_gate)" -tolerance 0.15 \
		BENCH.base.json BENCH.new.json; st=$$?; rm -f BENCH.new.json BENCH.base.json; exit $$st

ci:
	./scripts/ci.sh

# Reproduce every paper artifact in parallel.
repro:
	$(GO) run ./cmd/reproall -parallel 0
