// Package edgescope's repository-level benchmarks regenerate every table
// and figure of the paper (one benchmark per artifact, over a shared
// small-scale suite with substrates pre-built), plus ablation and
// micro-benchmarks for the design choices DESIGN.md calls out.
//
// Run with: go test -bench=. -benchmem
package edgescope

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"edgescope/internal/core"
	"edgescope/internal/crowd"
	"edgescope/internal/emunet"
	"edgescope/internal/mathx"
	"edgescope/internal/netmodel"
	"edgescope/internal/obs"
	"edgescope/internal/placement"
	"edgescope/internal/predict"
	"edgescope/internal/probe"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/stats"
	"edgescope/internal/telemetry"
	"edgescope/internal/telemetry/cluster"
	"edgescope/internal/timeseries"
	"edgescope/internal/workload"

	"time"
)

// benchScenario names the scenario every artifact benchmark is sized by.
// TestMain prints it as a `scenario:` context line (alongside go test's own
// `cpu:` line) so `cmd/benchdump` tags BENCH.json with the same name —
// successive perf snapshots then compare like against like without any
// hardcoded tag in the CI pipeline.
const benchScenario = "small"

func TestMain(m *testing.M) {
	fmt.Println("scenario: " + benchScenario)
	os.Exit(m.Run())
}

var (
	suiteOnce sync.Once
	benchS    *core.Suite
)

func benchSuite() *core.Suite {
	s, err := core.NewSuiteFromSpec(scenario.MustGet(benchScenario))
	if err != nil {
		panic("bench: " + err.Error())
	}
	return s
}

// suite returns a shared suite (benchScenario-sized) with all substrates
// warm, so each benchmark measures its experiment's analysis cost.
func suite() *core.Suite {
	suiteOnce.Do(func() {
		benchS = benchSuite()
		benchS.LatencyObs()
		benchS.ThroughputObs()
		benchS.NEPTrace()
		benchS.CloudTrace()
	})
	return benchS
}

// --- end-to-end experiment engine ---

// benchmarkRunAll measures a full cold reproduction: a fresh suite per
// iteration, so substrate construction (the dominant cost) is included.
// Serial vs parallel is the PR's headline comparison; the outputs are
// byte-identical either way.
func benchmarkRunAll(b *testing.B, scenarioName string, parallelism int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := core.NewSuiteFromSpec(scenario.MustGet(scenarioName))
		if err != nil {
			b.Fatal(err)
		}
		results, err := s.RunAll(context.Background(), parallelism)
		if err != nil {
			b.Fatal(err)
		}
		arts := 0
		for _, r := range results {
			if r.Artifact != nil {
				arts++
			}
		}
		if arts != 21 {
			b.Fatalf("artifacts = %d, want 21", arts)
		}
	}
}

func BenchmarkRunAllSerial(b *testing.B)   { benchmarkRunAll(b, benchScenario, 1) }
func BenchmarkRunAllParallel(b *testing.B) { benchmarkRunAll(b, benchScenario, 0) }

// BenchmarkRunAllStress tracks the full reproduction at the largest built-in
// scenario (320 users, 12 repeats), where the measurement kernels — not the
// workload traces — carry most of the weight.
func BenchmarkRunAllStress(b *testing.B) { benchmarkRunAll(b, "stress", 1) }

// --- one benchmark per paper table/figure ---

func BenchmarkTable1Deployment(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table1(); len(tbl.Rows) != 12 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure2aRTT(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure2a(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure2bJitter(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure2b(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable3HopBreakdown(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table3(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable4CoLocation(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table4(); len(tbl.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure3HopCount(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Figure3(); len(f.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure4InterSite(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Figure4(); len(f.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure5Throughput(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure5(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable5QoERTT(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table5(); len(tbl.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure6Gaming(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure6(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure7Streaming(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure7(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure8VMSize(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure8(); len(tbl.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure9AppVMs(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Figure9(); len(f.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure10CPUUtil(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Figure10(); len(f.Series) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure11Imbalance(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure11(); len(tbl.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure12AppBalance(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Figure12(); len(f.Series) < 2 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure13BWVariation(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Figure13(); len(f.Series) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFigure14Prediction(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure14(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable6Cost(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table6(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable7Pricing(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table7(); len(tbl.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationPlacement compares placement strategies end to end: how
// long trace generation takes under each, reporting the cross-site sales
// gap as a metric.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, strat := range []placement.Strategy{
		placement.NEPDefault{}, placement.BestFit{}, placement.Random{}, placement.LeastLoaded{},
	} {
		b.Run(strat.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := workload.GenerateNEP(rng.New(uint64(i)), workload.Options{
					Apps: 10, Days: 2, Strategy: strat,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScheduler compares the request schedulers of §4.3.
func BenchmarkAblationScheduler(b *testing.B) {
	replicas := []placement.Replica{
		{CapacityRPS: 100, DelayMs: 10},
		{CapacityRPS: 100, DelayMs: 13},
		{CapacityRPS: 100, DelayMs: 15},
		{CapacityRPS: 100, DelayMs: 18},
	}
	for _, sched := range []placement.Scheduler{
		placement.NearestSite{}, placement.LoadAware{DelaySlackMs: 6},
	} {
		b.Run(sched.Name(), func(b *testing.B) {
			r := rng.New(1)
			for i := 0; i < b.N; i++ {
				placement.SimulateScheduling(r, sched, replicas, 1000)
			}
		})
	}
}

// BenchmarkForecasters isolates model cost: Holt-Winters vs the LSTM on the
// same series (the LSTM is ~1000× dearer, which is why Figure 14 samples
// fewer VMs for it).
func BenchmarkForecasters(b *testing.B) {
	r := rng.New(2)
	const period = 48
	data := make([]float64, period*10)
	for i := range data {
		data[i] = 10 + 5*float64(i%period)/period + r.Normal(0, 0.3)
	}
	train, test := data[:period*8], data[period*8:]
	b.Run("holt-winters", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hw := predict.NewHoltWinters(period)
			if _, err := hw.FitPredict(train, test); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lstm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := predict.NewLSTM(3)
			l.Epochs = 2
			if _, err := l.FitPredict(train, test); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- measurement-kernel microbenchmarks ---

// BenchmarkVirtualPing measures the scalar virtual-ping kernel at the
// paper's 30-repeat schedule, including its per-call result allocation.
func BenchmarkVirtualPing(b *testing.B) {
	r := rng.New(29)
	p := netmodel.BuildPath(r, netmodel.LTE, netmodel.CloudSite, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := probe.VirtualPing(r, p, 30)
		if st.Sent != 30 {
			b.Fatal("bad ping")
		}
	}
}

// BenchmarkVirtualPingInto is the fused kernel in steady state: the caller
// owns the PingStats buffer, so the loop allocates nothing.
func BenchmarkVirtualPingInto(b *testing.B) {
	r := rng.New(29)
	p := netmodel.BuildPath(r, netmodel.LTE, netmodel.CloudSite, 800)
	var st probe.PingStats
	probe.VirtualPingInto(r, p, 30, &st) // warm the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe.VirtualPingInto(r, p, 30, &st)
	}
}

// BenchmarkSampleRTTBatch measures the batched RTT kernel: one 512-sample
// fill per op (the scalar comparison is PathModel/sample-rtt).
func BenchmarkSampleRTTBatch(b *testing.B) {
	r := rng.New(31)
	p := netmodel.BuildPath(r, netmodel.WiFi, netmodel.CloudSite, 800)
	dst := make([]float64, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SampleRTTs(r, dst)
	}
	b.ReportMetric(float64(b.N)*float64(len(dst))/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkObserveWalk measures the one observation walk of the crowd
// campaign end to end (path build + fused pings + aggregation per target).
func BenchmarkObserveWalk(b *testing.B) {
	r := rng.New(37)
	c := crowd.NewCampaign(r.Fork("campaign"), scenario.MustGet(benchScenario).Crowd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		c.Observe(rng.New(uint64(i)), func(crowd.Observation) { n++ })
		if n == 0 {
			b.Fatal("no observations")
		}
	}
}

// BenchmarkFig2aFromColumns measures the columnar aggregation behind Figure
// 2a — per-user collapse and across-user median for every access×target
// group — over the warm substrate's group indexes.
func BenchmarkFig2aFromColumns(b *testing.B) {
	st := suite().LatencyStore()
	accesses := []netmodel.Access{netmodel.WiFi, netmodel.LTE, netmodel.FiveG}
	targets := []crowd.TargetKind{
		crowd.NearestEdge, crowd.ThirdNearestEdge, crowd.NearestCloud, crowd.CloudMember,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for _, a := range accesses {
			for _, k := range targets {
				sink += st.MedianRTTAcrossUsers(a, k)
			}
		}
		if sink == 0 {
			b.Fatal("empty aggregation")
		}
	}
}

// BenchmarkExpBulk measures the batched exponential kernel: one
// 4096-element fill per op over the argument range the samplers feed it
// (standard normals scaled by a few sigma), zero allocations.
func BenchmarkExpBulk(b *testing.B) {
	r := rng.New(41)
	src := make([]float64, 4096)
	dst := make([]float64, len(src))
	for i := range src {
		src[i] = r.Normal(0, 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mathx.ExpBulk(dst, src)
	}
	b.ReportMetric(float64(b.N)*float64(len(src))/b.Elapsed().Seconds(), "elems/sec")
}

// BenchmarkUsageSeries measures one usage-trace synthesis through the
// production kernel (bulk ziggurat fills + batched exponential + fused
// scale pass): a week of 5-minute samples with weekly regime shifts, the
// workload generator's per-VM hot path.
func BenchmarkUsageSeries(b *testing.B) {
	p := workload.UsageParams{
		Level: 35, Amp: 0.5, PeakHour: 20, NoiseCV: 0.25,
		Days: 7, Interval: 5 * time.Minute,
		Start:   time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
		ClampHi: 95, WeekendFactor: 1.15,
		VolatileWeeks: true, VolatileSigma: 0.9,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := workload.SynthUsageSeries(rng.New(uint64(i)), p)
		if s.Mean() <= 0 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkLSTMForward isolates the blocked LSTM forward kernel: 256 steps
// through the paper-sized model (24 hidden units) per op.
func BenchmarkLSTMForward(b *testing.B) {
	r := rng.New(43)
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = math.Sin(float64(i)/24) + r.Normal(0, 0.05)
	}
	l := predict.NewLSTM(3)
	l.BenchForward(xs) // init weights outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = l.BenchForward(xs)
	}
	if math.IsNaN(sink) {
		b.Fatal("forward diverged")
	}
}

// BenchmarkSeriesMean pins the running-mean cache: Mean() on a primed
// series is O(1) and allocation-free regardless of length.
func BenchmarkSeriesMean(b *testing.B) {
	r := rng.New(47)
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = r.LogNormal(3, 0.6)
	}
	s := timeseries.New(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC), time.Minute, vals).PrimeStats()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Mean()
	}
	if sink <= 0 {
		b.Fatal("bad mean")
	}
}

// BenchmarkPathModel measures the core network-model hot paths.
func BenchmarkPathModel(b *testing.B) {
	r := rng.New(3)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			netmodel.BuildPath(r, netmodel.WiFi, netmodel.CloudSite, 800)
		}
	})
	p := netmodel.BuildPath(r, netmodel.WiFi, netmodel.CloudSite, 800)
	b.Run("sample-rtt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.SampleRTT(r)
		}
	})
	b.Run("sample-throughput", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.SampleThroughput(r, netmodel.Downlink, 1000)
		}
	})
}

// BenchmarkTraceGeneration measures workload synthesis throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	b.Run("nep-10apps-2days", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := workload.GenerateNEP(rng.New(uint64(i)), workload.Options{Apps: 10, Days: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cloud-40apps-2days", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := workload.GenerateCloud(rng.New(uint64(i)), workload.Options{Apps: 40, Days: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- extension benchmarks ---

func BenchmarkExtDensity(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.ExtDensity(); len(tbl.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkExtMigration(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.ExtMigration(); len(tbl.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkExtScheduling(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.ExtScheduling(); len(tbl.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// --- streaming telemetry pipeline ---

// BenchmarkTelemetryIngest measures end-to-end ingest throughput: offer →
// shard hash → bounded queue → single-writer sketch fold, reported as
// events/sec. The event stream cycles dimensions so every shard stays busy.
func BenchmarkTelemetryIngest(b *testing.B) {
	regions := []string{"Beijing", "Shanghai", "Wuhan", "Chengdu"}
	nets := []string{"WiFi", "LTE", "5G"}
	events := make([]telemetry.Envelope, 4096)
	r := rng.New(17)
	for i := range events {
		events[i] = telemetry.Envelope{
			V: telemetry.SchemaVersion, TS: int64(i+1) * 100, Kind: telemetry.KindPing,
			Metric: telemetry.MetricRTT, User: i,
			Region: regions[i%len(regions)], Net: nets[i%len(nets)],
			Value: r.LogNormal(3, 0.6),
		}
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			ing := telemetry.NewIngestor(telemetry.Config{Shards: shards, Block: true})
			defer ing.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ing.Offer(events[i%len(events)])
			}
			ing.Flush()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkRecovery measures telemetryd restart cost: reopening a durable
// data directory through both recovery paths — snapshot-primary (the clean
// shutdown case, WAL suffixes only) and full WAL replay (the crash-without-
// checkpoint fallback, snapshots removed before each Open).
func BenchmarkRecovery(b *testing.B) {
	regions := []string{"Beijing", "Shanghai", "Wuhan", "Chengdu"}
	nets := []string{"WiFi", "LTE", "5G"}
	events := make([]telemetry.Envelope, 4096)
	r := rng.New(17)
	for i := range events {
		events[i] = telemetry.Envelope{
			V: telemetry.SchemaVersion, TS: int64(i+1) * 100, Kind: telemetry.KindPing,
			Metric: telemetry.MetricRTT, User: i % 64,
			Region: regions[i%len(regions)], Net: nets[i%len(nets)],
			Value: r.LogNormal(3, 0.6),
		}
	}
	cfg := func(dir string) telemetry.Config {
		return telemetry.Config{Shards: 4, QueueLen: 1024, Block: true,
			WAL: telemetry.WALConfig{Dir: dir, SyncEvery: 256, SnapshotEvery: 1024}}
	}
	seedDir := func(b *testing.B) string {
		dir := b.TempDir()
		ing := telemetry.NewIngestor(cfg(dir))
		ing.OfferAll(events)
		ing.Flush()
		if err := ing.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	reopen := func(b *testing.B, dir string) telemetry.RecoveryStats {
		ing, rec, err := telemetry.Open(cfg(dir))
		if err != nil {
			b.Fatal(err)
		}
		if err := ing.Close(); err != nil {
			b.Fatal(err)
		}
		return rec
	}

	b.Run("snapshot", func(b *testing.B) {
		dir := seedDir(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := reopen(b, dir)
			if rec.Snapshots == 0 {
				b.Fatalf("snapshot path not taken: %+v", rec)
			}
		}
	})
	b.Run("wal-replay", func(b *testing.B) {
		dir := seedDir(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Close re-checkpoints, so drop the snapshots each round to
			// force the full-replay fallback.
			snaps, _ := filepath.Glob(filepath.Join(dir, "shard-*", "snapshot.bin"))
			for _, s := range snaps {
				os.Remove(s)
			}
			b.StartTimer()
			rec := reopen(b, dir)
			if rec.RecordsReplayed == 0 {
				b.Fatalf("replay path not taken: %+v", rec)
			}
		}
	})
}

// BenchmarkTelemetryEncodeDecode measures the JSONL wire hot path.
func BenchmarkTelemetryEncodeDecode(b *testing.B) {
	e := telemetry.Envelope{
		V: telemetry.SchemaVersion, TS: 1633046400000, Kind: "ping",
		Metric: "rtt_ms", User: 7, Region: "Beijing", Net: "WiFi",
		Target: "nearest-edge", Value: 12.25,
	}
	line, err := telemetry.AppendJSONL(nil, e)
	if err != nil {
		b.Fatal(err)
	}
	line = line[:len(line)-1] // strip newline for DecodeLine
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = telemetry.AppendJSONL(buf[:0], e)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := telemetry.DecodeLine(line); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSketchMerge measures the query layer's hot path: merging
// window/shard sketches into one answer.
func BenchmarkSketchMerge(b *testing.B) {
	r := rng.New(19)
	const parts = 32
	sketches := make([]*stats.Sketch, parts)
	for i := range sketches {
		sk := stats.NewSketch(stats.DefaultCompression)
		for j := 0; j < 2000; j++ {
			if err := sk.Add(r.LogNormal(3, 0.6)); err != nil {
				b.Fatal(err)
			}
		}
		sketches[i] = sk
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := stats.NewSketch(stats.DefaultCompression)
		for _, sk := range sketches {
			merged.Merge(sk)
		}
		if merged.Quantile(0.95) <= 0 {
			b.Fatal("bad merge")
		}
	}
}

// BenchmarkSketchAdd isolates the per-observation sketch fold.
func BenchmarkSketchAdd(b *testing.B) {
	r := rng.New(23)
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = r.LogNormal(3, 0.6)
	}
	sk := stats.NewSketch(stats.DefaultCompression)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sk.Add(xs[i%len(xs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterQuery compares answering one quantile query from a single
// ingestor against scatter-gathering the same data from a 3-node cluster
// (sketch-page export, deterministic merge, evaluation) — the per-query
// price of the distributed plane, with the transport taken out of the
// picture (in-process NodeClients).
func BenchmarkClusterQuery(b *testing.B) {
	regions := []string{"Beijing", "Shanghai", "Wuhan", "Chengdu"}
	nets := []string{"WiFi", "LTE", "5G"}
	events := make([]telemetry.Envelope, 8192)
	r := rng.New(53)
	for i := range events {
		events[i] = telemetry.Envelope{
			V: telemetry.SchemaVersion, TS: int64(i+1) * 100, Kind: telemetry.KindPing,
			Metric: telemetry.MetricRTT, User: i % 64,
			Region: regions[i%len(regions)], Net: nets[i%len(nets)],
			Value: r.LogNormal(3, 0.6),
		}
	}
	spec := telemetry.QuerySpec{
		Metric:    telemetry.MetricRTT,
		Quantiles: []float64{0.5, 0.95, 0.99},
		CDFAt:     []float64{10, 20, 40},
	}

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	single.OfferAll(events)
	single.Flush()

	pm, err := cluster.NewMap(cluster.MapConfig{Nodes: []string{"n0", "n1", "n2"}})
	if err != nil {
		b.Fatal(err)
	}
	clients := map[string]cluster.NodeClient{}
	for _, id := range pm.Nodes() {
		ing := telemetry.NewIngestor(telemetry.Config{Shards: 2, QueueLen: 1024, Block: true})
		defer ing.Close()
		clients[id] = cluster.LocalNode{Ing: ing}
	}
	for _, e := range events {
		id := pm.Owner(pm.PartitionOf(e.Key()))
		clients[id].(cluster.LocalNode).Ing.Offer(e)
	}
	for _, c := range clients {
		c.(cluster.LocalNode).Ing.Flush()
	}
	front := cluster.NewFrontend(pm, clients, cluster.FrontendConfig{})

	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := single.Query(spec)
			if err != nil || res.Count == 0 {
				b.Fatalf("query: %v", err)
			}
		}
	})
	b.Run("scatter-gather", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := front.Query(ctx, spec)
			if err != nil || res.Count == 0 || res.Partial {
				b.Fatalf("query: %v partial=%v", err, res.Partial)
			}
		}
	})
}

// BenchmarkRebalanceHandoff prices one elastic membership change: a fourth
// node joining a loaded 3-node cluster, end to end through the migrator —
// freeze, flush, sketch-page cut, drop-then-absorb rebuild, cutover,
// activation, stale-copy drops — over in-process admins (transport taken
// out, the handoff protocol itself left in). Sub-benchmarks scale the
// resident keyspace, so the reported per-join cost tracks how much state a
// quota's worth of partitions carries.
func BenchmarkRebalanceHandoff(b *testing.B) {
	regions := []string{"Beijing", "Shanghai", "Wuhan", "Chengdu"}
	nets := []string{"WiFi", "LTE", "5G"}
	for _, size := range []int{2048, 16384} {
		b.Run(fmt.Sprintf("events-%d", size), func(b *testing.B) {
			events := make([]telemetry.Envelope, size)
			r := rng.New(53)
			for i := range events {
				events[i] = telemetry.Envelope{
					V: telemetry.SchemaVersion, TS: int64(i+1) * 100, Kind: telemetry.KindPing,
					Metric: telemetry.MetricRTT, User: i % 64,
					Region: regions[i%len(regions)], Net: nets[i%len(nets)],
					Value: r.LogNormal(3, 0.6),
				}
			}
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pm, err := cluster.NewMap(cluster.MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
				if err != nil {
					b.Fatal(err)
				}
				ings := map[string]*telemetry.Ingestor{}
				admins := map[string]cluster.NodeAdmin{}
				for _, id := range []string{"n0", "n1", "n2", "n3"} {
					id := id
					ings[id] = telemetry.NewIngestor(telemetry.Config{Shards: 2, QueueLen: 1024, Block: true})
					admins[id] = cluster.LocalAdmin{Node: id, Ing: func() *telemetry.Ingestor { return ings[id] }}
				}
				for _, e := range events {
					ings[pm.Owner(pm.PartitionOf(e.Key()))].Offer(e)
				}
				for _, ing := range ings {
					ing.Flush()
				}
				mig := cluster.NewMigrator(pm, admins, cluster.MigratorConfig{})
				b.StartTimer()
				next, err := mig.Join(ctx, "n3", nil)
				b.StopTimer()
				if err != nil || next.Epoch != 2 {
					b.Fatalf("join: epoch=%d err=%v", next.Epoch, err)
				}
				for _, ing := range ings {
					ing.Close()
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSocketPing measures a real UDP echo round trip through the
// emulator (zero added delay isolates the socket + scheduler cost).
func BenchmarkSocketPing(b *testing.B) {
	e, err := emunet.NewUDPEcho(emunet.Link{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := probe.Ping(e.Addr(), 1, time.Second)
		if err != nil || st.Received != 1 {
			b.Fatalf("ping failed: %v", err)
		}
	}
}

func BenchmarkTable2TraceSurvey(b *testing.B) {
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table2(); len(tbl.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkObsCounterInc pins the hot-path cost of the self-observability
// counters: one atomic add, zero allocations. Every ingest-path event pays
// exactly this, so the allocation gate (scripts/bench_gate) holds it at 0.
func BenchmarkObsCounterInc(b *testing.B) {
	c := obs.NewRegistry().CounterVec("bench_events_total", "bench", "shard").With("0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("count lost")
	}
}

// BenchmarkObsSpan pins a Begin/End span pair over reserved capacity at zero
// allocations — the per-node cost the execution engine pays when traced.
func BenchmarkObsSpan(b *testing.B) {
	tr := obs.NewTracer(nil)
	tr.Reserve(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.End(tr.Begin("node", 0))
	}
	if tr.Len() != b.N {
		b.Fatal("spans lost")
	}
}
