package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasics(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("Variance of singleton != 0")
	}
}

func TestCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, std 2
	if got := CV(xs); !almost(got, 0.4, 1e-12) {
		t.Fatalf("CV = %v, want 0.4", got)
	}
	if CV([]float64{0, 0}) != 0 {
		t.Fatal("CV with zero mean should be 0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("Percentile of singleton")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64, a, b uint8) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2+1e-9+1e-12*math.Abs(v2)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64, p uint8) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		v := Percentile(xs, float64(p%101))
		span := 1e-9 + 1e-12*(math.Abs(Min(xs))+math.Abs(Max(xs)))
		return v >= Min(xs)-span && v <= Max(xs)+span
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// sanitize drops NaN/Inf and clamps magnitudes so intermediate products in
// the statistics under test cannot overflow float64.
func sanitize(raw []float64) []float64 {
	var xs []float64
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v > 1e9 {
			v = 1e9
		}
		if v < -1e9 {
			v = -1e9
		}
		xs = append(xs, v)
	}
	return xs
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median = %v", got)
	}
}

func TestGapRatio(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100; P5≈5.95, P95≈95.05
	}
	g := GapRatio(xs, 0.01)
	if g < 14 || g > 18 {
		t.Fatalf("GapRatio = %v, want ~16", g)
	}
	if GapRatio(nil, 1) != 0 {
		t.Fatal("GapRatio(nil) != 0")
	}
	// All-zero input with a floor stays finite.
	if g := GapRatio([]float64{0, 0, 0}, 0.5); g != 0 {
		t.Fatalf("GapRatio zeros = %v, want 0", g)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson with constant xs = %v", got)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 4 {
			return true
		}
		n := len(xs) / 2
		a, b := xs[:n], xs[n:2*n]
		r := Pearson(a, b)
		return r >= -1-1e-9 && r <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 3}
	if RMSE(pred, truth) != 0 || MAE(pred, truth) != 0 {
		t.Fatal("zero-error case")
	}
	p2 := []float64{2, 3, 4}
	if got := RMSE(p2, truth); !almost(got, 1, 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if got := MAE(p2, truth); !almost(got, 1, 1e-12) {
		t.Fatalf("MAE = %v", got)
	}
}

func TestRMSEGreaterEqualMAEProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		n := len(xs) / 2
		p, q := xs[:n], xs[n:2*n]
		return RMSE(p, q) >= MAE(p, q)-1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFShape(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF size = %d", len(pts))
	}
	if pts[0].X != 1 || pts[2].X != 3 {
		t.Fatal("CDF not sorted by X")
	}
	if !almost(pts[2].P, 1, 1e-12) {
		t.Fatalf("last CDF P = %v", pts[2].P)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P <= pts[i-1].P {
			t.Fatal("CDF probabilities not increasing")
		}
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) != nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v", got)
	}
	if CDFAt(nil, 1) != 0 {
		t.Fatal("CDFAt(nil) != 0")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 4, 8}
	n := Normalize(xs, 0.1)
	want := []float64{1, 2, 4}
	for i := range want {
		if !almost(n[i], want[i], 1e-12) {
			t.Fatalf("Normalize = %v", n)
		}
	}
	// Zero minimum clamps to floor.
	n2 := Normalize([]float64{0, 5}, 0.5)
	if !almost(n2[1], 10, 1e-12) {
		t.Fatalf("Normalize with floor = %v", n2)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.1, 0.2, 0.9, -5, 99}, 0, 1, 2)
	if bins[0] != 3 || bins[1] != 2 {
		t.Fatalf("Histogram = %v", bins)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram(nil, 1, 0, 3)
}

func TestHistogramTotalProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := sanitize(raw)
		bins := Histogram(xs, -10, 10, 7)
		total := 0
		for _, b := range bins {
			total += b
		}
		return total == len(xs)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 3}); !almost(got, 2.5, 1e-12) {
		t.Fatalf("WeightedMean = %v", got)
	}
	if WeightedMean([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero weights should yield 0")
	}
}

func TestPercentilesSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	sort.Float64s(xs)
	got := PercentilesSorted(xs, 0, 50, 100)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("PercentilesSorted = %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatal("Min/Max/Sum wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max sentinels wrong")
	}
}
