package stats

import (
	"math"
	"testing"

	"edgescope/internal/rng"
)

func sketchFrom(t *testing.T, xs []float64, compression float64) *Sketch {
	t.Helper()
	sk := NewSketch(compression)
	for _, x := range xs {
		if err := sk.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	return sk
}

// rankErr is the rank error of the sketch's q-quantile against the exact
// empirical distribution in sum.
func rankErr(sum *Summary, sk *Sketch, q float64) float64 {
	return math.Abs(sum.CDFAt(sk.Quantile(q)) - q)
}

func TestSketchEmptyAndSingle(t *testing.T) {
	sk := NewSketch(DefaultCompression)
	if got := sk.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := sk.CDFAt(1); got != 0 {
		t.Errorf("empty CDFAt = %v, want 0", got)
	}
	if sk.Count() != 0 {
		t.Errorf("empty Count = %v", sk.Count())
	}
	if !math.IsInf(sk.Min(), 1) || !math.IsInf(sk.Max(), -1) {
		t.Errorf("empty Min/Max = %v/%v", sk.Min(), sk.Max())
	}

	if err := sk.Add(42); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := sk.Quantile(q); got != 42 {
			t.Errorf("single Quantile(%v) = %v, want 42", q, got)
		}
	}
	if got := sk.Count(); got != 1 {
		t.Errorf("single Count = %v", got)
	}
}

func TestSketchRejectsNonFinite(t *testing.T) {
	sk := NewSketch(DefaultCompression)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := sk.Add(x); err == nil {
			t.Errorf("Add(%v) accepted, want error", x)
		}
	}
	if err := sk.AddWeighted(1, 0); err == nil {
		t.Error("AddWeighted weight 0 accepted, want error")
	}
	if sk.Count() != 0 {
		t.Errorf("rejected values counted: %v", sk.Count())
	}
}

// TestSketchErrorBound pins the documented contract: on streams from several
// distribution shapes, the rank error at each probed quantile stays within
// 2× RankErrorBound (the bound is an expectation-level limit; the 2× margin
// absorbs unlucky centroid boundaries).
func TestSketchErrorBound(t *testing.T) {
	r := rng.New(7)
	const n = 20000
	dists := map[string]func() float64{
		"uniform":   func() float64 { return r.Uniform(0, 100) },
		"normal":    func() float64 { return r.Normal(50, 12) },
		"lognormal": func() float64 { return r.LogNormal(3, 0.8) },
		"pareto":    func() float64 { return r.Pareto(1, 1.5) },
	}
	for name, draw := range dists {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = draw()
		}
		sum := Summarize(xs)
		sk := sketchFrom(t, xs, DefaultCompression)
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
			if got, bound := rankErr(sum, sk, q), 2*sk.RankErrorBound(q); got > bound {
				t.Errorf("%s: rank error at q=%v is %.5f, bound %.5f", name, q, got, bound)
			}
		}
	}
}

// TestSketchBoundedMemory checks the memory contract: centroid count stays
// O(compression) no matter how long the stream runs.
func TestSketchBoundedMemory(t *testing.T) {
	r := rng.New(9)
	sk := NewSketch(DefaultCompression)
	for i := 0; i < 200000; i++ {
		if err := sk.Add(r.LogNormal(2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(sk.Centroids()); n > 2*DefaultCompression {
		t.Errorf("centroids = %d, want <= %d", n, 2*DefaultCompression)
	}
	if got := sk.Count(); got != 200000 {
		t.Errorf("Count = %v, want 200000", got)
	}
}

// TestSketchMerge checks mergeability: sharding a stream over k sketches and
// merging them answers within the same bound as one sketch over the whole
// stream — the property the telemetry ingest/query split depends on.
func TestSketchMerge(t *testing.T) {
	r := rng.New(11)
	const n, shards = 12000, 8
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(30, 10)
	}
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewSketch(DefaultCompression)
	}
	for i, x := range xs {
		if err := parts[i%shards].Add(x); err != nil {
			t.Fatal(err)
		}
	}
	merged := NewSketch(DefaultCompression)
	for _, p := range parts {
		merged.Merge(p)
	}
	if got := merged.Count(); got != n {
		t.Fatalf("merged Count = %v, want %d", got, n)
	}
	sum := Summarize(xs)
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		if got, bound := rankErr(sum, merged, q), 2*merged.RankErrorBound(q); got > bound {
			t.Errorf("merged rank error at q=%v is %.5f, bound %.5f", q, got, bound)
		}
	}
	// Merge must not mutate its argument.
	before := parts[0].Count()
	merged.Merge(parts[0])
	if parts[0].Count() != before {
		t.Error("Merge mutated its argument")
	}
}

// TestSketchAbsorb checks the deferred-compaction merge: same totals as
// Merge, same error bound, argument untouched, and memory still bounded
// after absorbing many sketches.
func TestSketchAbsorb(t *testing.T) {
	r := rng.New(29)
	const parts, per = 40, 500
	all := make([]float64, 0, parts*per)
	sketches := make([]*Sketch, parts)
	for i := range sketches {
		sk := NewSketch(DefaultCompression)
		for j := 0; j < per; j++ {
			x := r.LogNormal(3, 0.7)
			all = append(all, x)
			if err := sk.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		sketches[i] = sk
	}
	merged := NewSketch(DefaultCompression)
	for _, sk := range sketches {
		before := sk.Count()
		merged.Absorb(sk)
		if sk.Count() != before {
			t.Fatal("Absorb mutated its argument")
		}
	}
	sum := Summarize(all)
	if merged.Count() != float64(len(all)) || merged.Min() != sum.Min() || merged.Max() != sum.Max() {
		t.Fatalf("Absorb totals: count %v min %v max %v", merged.Count(), merged.Min(), merged.Max())
	}
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		if got, bound := rankErr(sum, merged, q), 2*merged.RankErrorBound(q); got > bound {
			t.Errorf("absorbed rank error at q=%v is %.5f, bound %.5f", q, got, bound)
		}
	}
	if n := len(merged.Centroids()); n > 2*DefaultCompression {
		t.Errorf("absorbed centroids = %d, want <= %d", n, 2*DefaultCompression)
	}
}

// TestSketchMergeOrderIndependentCount checks that min/max/count survive any
// merge order (the query layer merges shards in index order, but nothing
// should depend on it beyond centroid micro-placement).
func TestSketchMergeOrderIndependentCount(t *testing.T) {
	a := sketchFrom(t, []float64{1, 2, 3}, DefaultCompression)
	b := sketchFrom(t, []float64{10, 20, 30}, DefaultCompression)
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if ab.Count() != ba.Count() || ab.Min() != ba.Min() || ab.Max() != ba.Max() {
		t.Errorf("merge order changed count/min/max: %v/%v/%v vs %v/%v/%v",
			ab.Count(), ab.Min(), ab.Max(), ba.Count(), ba.Min(), ba.Max())
	}
}

func TestSketchCDFConsistency(t *testing.T) {
	r := rng.New(13)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Uniform(0, 1000)
	}
	sum := Summarize(xs)
	sk := sketchFrom(t, xs, DefaultCompression)
	for _, v := range []float64{50, 250, 500, 900} {
		got, want := sk.CDFAt(v), sum.CDFAt(v)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("CDFAt(%v) = %.4f, exact %.4f", v, got, want)
		}
	}
	if got := sk.CDFAt(-1); got != 0 {
		t.Errorf("CDFAt below min = %v, want 0", got)
	}
	if got := sk.CDFAt(1e9); got != 1 {
		t.Errorf("CDFAt above max = %v, want 1", got)
	}
}

func TestSketchQuantilePanics(t *testing.T) {
	sk := NewSketch(DefaultCompression)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			sk.Quantile(q)
		}()
	}
}
