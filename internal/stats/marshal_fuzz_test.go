package stats

import (
	"bytes"
	"testing"
)

// FuzzSketchUnmarshalBinary guards the snapshot decoder: arbitrary bytes
// must never panic — they either error or yield a sketch whose invariants
// hold and that survives a re-marshal round trip unchanged.
func FuzzSketchUnmarshalBinary(f *testing.F) {
	for _, n := range []int{0, 1, 10, 450} {
		data, err := mkSketch(n, DefaultCompression).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("esk\x01"))
	f.Add([]byte("esk\x01aaaaaaaabbbbbbbbccccccccdddddddd\x01\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sk Sketch
		if err := sk.UnmarshalBinary(data); err != nil {
			return
		}
		// An accepted sketch must be usable without panicking...
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			_ = sk.Quantile(q)
		}
		_ = sk.CDFAt(sk.Min())
		// ...but Quantile flushes, so round-trip the *pre-query* state.
		var sk2 Sketch
		if err := sk2.UnmarshalBinary(data); err != nil {
			t.Fatalf("second decode of accepted input failed: %v", err)
		}
		out, err := sk2.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var sk3 Sketch
		if err := sk3.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		out2, err := sk3.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("marshal not stable across decode/encode cycle")
		}
	})
}
