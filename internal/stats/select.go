package stats

import "math"

// This file implements selection-based percentiles. Percentile queries used
// to copy and fully sort their input on every call — on the hot analysis
// paths (one P95 per VM CPU series in Figure 10, one P95 per resample
// window) that cost dominated both time and allocations. quantileSelect
// computes the same interpolated order statistics with an iterative
// quickselect (expected O(n), no further allocation), and Scratch gives
// callers a reusable copy buffer so a whole walk performs zero per-call
// allocations after warm-up.

// Scratch is a reusable buffer for percentile queries. The zero value is
// ready to use; the buffer grows to the largest input seen and is reused
// across calls, so a loop of Percentile calls allocates only on the first
// (or largest) input. A Scratch is not safe for concurrent use — give each
// goroutine its own.
type Scratch struct {
	buf []float64
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs with linear
// interpolation between closest ranks — the same result, bit for bit, as the
// package-level Percentile — without allocating once the internal buffer has
// grown to len(xs). xs is not modified.
func (sc *Scratch) Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	if len(xs) == 0 {
		return 0
	}
	sc.buf = append(sc.buf[:0], xs...)
	return quantileSelect(sc.buf, p)
}

// quantileSelect returns the interpolated p-th percentile of s, partially
// reordering s in place. The result is identical to sorting s and applying
// percentileSorted: both interpolate between the floor- and ceil-rank order
// statistics, and order statistics do not depend on how the rest of the
// slice is arranged.
func quantileSelect(s []float64, p float64) float64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return s[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	v := selectKth(s, lo)
	if frac == 0 {
		return v
	}
	// The ceil-rank statistic is the minimum of everything right of lo:
	// selectKth left s partitioned with s[lo+1:] all >= s[lo].
	m := s[lo+1]
	for _, x := range s[lo+2:] {
		if x < m {
			m = x
		}
	}
	return v*(1-frac) + m*frac
}

// selectKth places the k-th smallest element of s at index k (classic
// quickselect, Hoare partition, median-of-three pivot — deterministic, no
// randomness) and returns it. Elements left of k end up <=, right of k >=.
func selectKth(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		p := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < p {
				i++
			}
			for s[j] > p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return s[k]
		}
	}
	return s[k]
}
