package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization of a Sketch, for the telemetry pipeline's durable
// window snapshots. The format captures the *exact* in-memory state —
// compression, count, min/max, the compacted centroid list AND the unflushed
// buffer — without forcing a flush, so that unmarshal(marshal(sk)) continues
// the stream bit-for-bit where sk left off: subsequent Adds hit the same
// flush boundaries and produce the same centroid layout as an uninterrupted
// sketch. That exactness is what lets a recovered telemetry shard answer the
// same quantile queries, byte for byte, as the process that crashed.

// sketchBinVersion is the serialization format version. Unmarshal accepts
// exactly this version; bumping it is how the format evolves under old
// snapshot files.
const sketchBinVersion = 1

// sketchMagic guards against feeding arbitrary files to UnmarshalBinary.
var sketchMagic = [4]byte{'e', 's', 'k', sketchBinVersion}

// MarshalBinary encodes the sketch's exact state. The layout is:
//
//	magic "esk\x01" | compression f64 | count f64 | min f64 | max f64
//	| nCentroids u32 | nBuf u32 | centroids (mean,weight f64 pairs)...
//	| buf (mean,weight f64 pairs)...
//
// all little-endian. Encoding never fails (the error satisfies
// encoding.BinaryMarshaler).
func (sk *Sketch) MarshalBinary() ([]byte, error) {
	return sk.AppendBinary(nil)
}

// AppendBinary appends the MarshalBinary encoding to dst and returns the
// extended slice, so snapshot writers can reuse one buffer across many
// sketches.
func (sk *Sketch) AppendBinary(dst []byte) ([]byte, error) {
	dst = append(dst, sketchMagic[:]...)
	for _, f := range []float64{sk.compression, sk.count, sk.min, sk.max} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sk.centroids)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sk.buf)))
	for _, c := range sk.centroids {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Mean))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Weight))
	}
	for _, c := range sk.buf {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Mean))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Weight))
	}
	return dst, nil
}

// sketchBinHeader is the fixed-size prefix: magic + 4 floats + 2 counts.
const sketchBinHeader = 4 + 4*8 + 2*4

// UnmarshalBinary decodes a MarshalBinary encoding into sk, replacing its
// state. Arbitrary or corrupt input yields an error, never a panic and never
// a sketch that violates its own invariants: lengths are checked against the
// actual payload size before any allocation, every float must be finite
// where the sketch requires it, and weights must be positive.
func (sk *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < sketchBinHeader {
		return fmt.Errorf("stats: sketch decode: %d bytes, want >= %d", len(data), sketchBinHeader)
	}
	if [4]byte(data[:4]) != sketchMagic {
		return fmt.Errorf("stats: sketch decode: bad magic/version %q", data[:4])
	}
	f64 := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	}
	compression, count, minV, maxV := f64(4), f64(12), f64(20), f64(28)
	nCentroids := int(binary.LittleEndian.Uint32(data[36:]))
	nBuf := int(binary.LittleEndian.Uint32(data[40:]))

	// Validate sizes against the real payload before allocating anything, so
	// a corrupt count cannot trigger a huge allocation.
	want := sketchBinHeader + 16*(nCentroids+nBuf)
	if nCentroids < 0 || nBuf < 0 || len(data) != want {
		return fmt.Errorf("stats: sketch decode: %d bytes, want %d for %d centroids + %d buffered",
			len(data), want, nCentroids, nBuf)
	}
	if math.IsNaN(compression) || compression < 20 {
		return fmt.Errorf("stats: sketch decode: invalid compression %v", compression)
	}
	if math.IsNaN(count) || count < 0 || math.IsInf(count, 0) {
		return fmt.Errorf("stats: sketch decode: invalid count %v", count)
	}
	empty := nCentroids == 0 && nBuf == 0
	if empty != (count == 0) {
		return fmt.Errorf("stats: sketch decode: count %v with %d points", count, nCentroids+nBuf)
	}
	if empty {
		if !math.IsInf(minV, 1) || !math.IsInf(maxV, -1) {
			return fmt.Errorf("stats: sketch decode: empty sketch with min/max %v/%v", minV, maxV)
		}
	} else if math.IsNaN(minV) || math.IsNaN(maxV) || math.IsInf(minV, 0) || math.IsInf(maxV, 0) || minV > maxV {
		return fmt.Errorf("stats: sketch decode: invalid min/max %v/%v", minV, maxV)
	}

	readPoints := func(off, n int, sorted bool) ([]Centroid, error) {
		if n == 0 {
			return nil, nil
		}
		out := make([]Centroid, n)
		var total float64
		prev := math.Inf(-1)
		for i := range out {
			mean, weight := f64(off+16*i), f64(off+16*i+8)
			if math.IsNaN(mean) || math.IsInf(mean, 0) || mean < minV || mean > maxV {
				return nil, fmt.Errorf("stats: sketch decode: point %d mean %v outside [%v,%v]", i, mean, minV, maxV)
			}
			if math.IsNaN(weight) || math.IsInf(weight, 0) || weight <= 0 {
				return nil, fmt.Errorf("stats: sketch decode: point %d weight %v", i, weight)
			}
			if sorted && mean < prev {
				return nil, fmt.Errorf("stats: sketch decode: centroid %d mean %v out of order", i, mean)
			}
			prev = mean
			total += weight
			out[i] = Centroid{Mean: mean, Weight: weight}
		}
		_ = total
		return out, nil
	}
	centroids, err := readPoints(sketchBinHeader, nCentroids, true)
	if err != nil {
		return err
	}
	buf, err := readPoints(sketchBinHeader+16*nCentroids, nBuf, false)
	if err != nil {
		return err
	}
	// Total weight must reconcile with the recorded count (within float
	// accumulation slack) so a corrupt count cannot skew every quantile.
	var total float64
	for _, c := range centroids {
		total += c.Weight
	}
	for _, c := range buf {
		total += c.Weight
	}
	if math.Abs(total-count) > 1e-6*math.Max(1, math.Abs(count)) {
		return fmt.Errorf("stats: sketch decode: count %v != total weight %v", count, total)
	}

	sk.compression = compression
	sk.count = count
	sk.min = minV
	sk.max = maxV
	sk.centroids = centroids
	sk.buf = buf
	return nil
}
