package stats

import (
	"math"
	"sort"
)

// Summary is a sort-once view of a sample set. Construction sorts the data
// a single time and accumulates mean and variance in the same pass (Welford's
// algorithm); every query afterwards — Min, Max, Mean, StdDev, CV, any
// percentile, CDF evaluation — is O(1) or O(log n). Use it wherever more
// than one order statistic of the same slice is needed: each standalone
// Percentile/Median call re-copies and re-sorts the input, which on the
// paper's hot paths (Figures 6-14, Table 6) used to cost three or more
// redundant O(n log n) sorts per series.
//
// A Summary is immutable after construction and safe for concurrent use.
type Summary struct {
	sorted []float64
	mean   float64
	m2     float64 // sum of squared deviations (Welford)
}

// Summarize builds a Summary from xs without modifying it (the data is
// copied). For a slice the caller no longer needs, SummarizeInPlace avoids
// the copy.
func Summarize(xs []float64) *Summary {
	s := make([]float64, len(xs))
	copy(s, xs)
	return SummarizeInPlace(s)
}

// SummarizeInPlace builds a Summary taking ownership of xs: the slice is
// sorted in place and must not be used by the caller afterwards.
func SummarizeInPlace(xs []float64) *Summary {
	sort.Float64s(xs)
	sum := &Summary{sorted: xs}
	for i, x := range xs {
		d := x - sum.mean
		sum.mean += d / float64(i+1)
		sum.m2 += d * (x - sum.mean)
	}
	return sum
}

// Len returns the sample count.
func (s *Summary) Len() int { return len(s.sorted) }

// Mean returns the arithmetic mean, 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns the total of the samples.
func (s *Summary) Sum() float64 { return s.mean * float64(len(s.sorted)) }

// Variance returns the population variance, 0 when Len() < 2 (a single
// sample has no spread; an empty summary is all-zero by definition). The
// Welford accumulator can go fractionally negative from floating-point
// cancellation on near-constant data, so the result is clamped at 0 — never
// negative, and StdDev/CV never produce NaN from a negative sqrt.
func (s *Summary) Variance() float64 {
	if len(s.sorted) < 2 || s.m2 < 0 {
		return 0
	}
	return s.m2 / float64(len(s.sorted))
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CV returns the coefficient of variation (stddev/|mean|), 0 when the mean
// is 0 — which covers the empty summary — and 0 for a single sample (whose
// variance is 0 by definition). No input produces NaN.
func (s *Summary) CV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.StdDev() / math.Abs(s.mean)
}

// Min returns the smallest sample, or +Inf for an empty summary (matching
// the package-level Min).
func (s *Summary) Min() float64 {
	if len(s.sorted) == 0 {
		return math.Inf(1)
	}
	return s.sorted[0]
}

// Max returns the largest sample, or -Inf for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.sorted) == 0 {
		return math.Inf(-1)
	}
	return s.sorted[len(s.sorted)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) with linear
// interpolation between closest ranks. Edge cases are pinned by tests: an
// empty summary yields 0 for every p (matching the package-level
// Percentile), and a single-element summary yields that element for every
// p. It panics on p outside [0,100].
func (s *Summary) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	return percentileSorted(s.sorted, p)
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// Percentiles evaluates several percentiles at once.
func (s *Summary) Percentiles(ps ...float64) []float64 {
	return PercentilesSorted(s.sorted, ps...)
}

// Gap returns the P95/P5 ratio, the paper's imbalance measure, with the 5th
// percentile clamped below at floor to keep the ratio finite. It matches
// GapRatio but reuses the summary's single sort.
func (s *Summary) Gap(floor float64) float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	p5 := percentileSorted(s.sorted, 5)
	p95 := percentileSorted(s.sorted, 95)
	if p5 < floor {
		p5 = floor
	}
	if p5 == 0 {
		return 0
	}
	return p95 / p5
}

// CDFAt evaluates the empirical CDF at v — the fraction of samples <= v —
// by binary search in O(log n).
func (s *Summary) CDFAt(v float64) float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	// Upper bound: the first index with sorted[i] > v, so equal values are
	// counted ("<= v") without a linear scan over duplicates.
	n := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] > v })
	return float64(n) / float64(len(s.sorted))
}

// CDF returns the empirical distribution as sorted points, sharing the
// summary's single sort.
func (s *Summary) CDF() []CDFPoint {
	out := make([]CDFPoint, len(s.sorted))
	n := float64(len(s.sorted))
	for i, v := range s.sorted {
		out[i] = CDFPoint{X: v, P: float64(i+1) / n}
	}
	return out
}

// Sorted exposes the summary's ascending samples. The caller must not
// modify the returned slice.
func (s *Summary) Sorted() []float64 { return s.sorted }
