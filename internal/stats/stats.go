// Package stats implements the descriptive statistics the paper's analysis
// relies on: percentiles, coefficient of variation, Pearson correlation,
// CDFs, error metrics, and the P95/P5 "gap" ratios used to quantify load
// imbalance.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// VarianceWithMean is Variance with a caller-supplied mean: when m is
// bit-identical to Mean(xs) the result is bit-identical to Variance(xs).
// It exists so running-mean caches (timeseries.Series) can skip the
// first pass over the data.
func VarianceWithMean(xs []float64, m float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// CVWithMean is CV with a caller-supplied mean, under the same
// bit-exactness contract as VarianceWithMean.
func CVWithMean(xs []float64, m float64) float64 {
	if m == 0 {
		return 0
	}
	return math.Sqrt(VarianceWithMean(xs, m)) / math.Abs(m)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev/mean), the paper's jitter
// and usage-variance metric. It returns 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// Min returns the smallest element, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies xs and runs a quickselect
// on the copy (expected O(n), bit-identical to the former sort-based
// implementation). It returns 0 for an empty slice and panics on p outside
// [0,100]. Loops that query many slices should reuse a Scratch instead.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	return quantileSelect(s, p)
}

// PercentilesSorted computes several percentiles in one pass over a slice the
// caller has already sorted ascending.
func PercentilesSorted(sorted []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			panic("stats: percentile out of range")
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// GapRatio returns the P95/P5 ratio of xs, the paper's imbalance measure
// (e.g. "the cross-VM usage gap is 50×"). Values at or below zero in the 5th
// percentile are clamped to floor to keep the ratio finite. The input is
// copied and sorted once; both quantiles come from the same sorted copy.
func GapRatio(xs []float64, floor float64) float64 {
	return Summarize(xs).Gap(floor)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ and returns 0 when either side has zero
// variance or fewer than two points.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RMSE returns the root mean square error between predictions and truth.
// It panics on length mismatch and returns 0 for empty input.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0,1]
}

// CDF returns the empirical cumulative distribution of xs as sorted points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	n := float64(len(s))
	for i, v := range s {
		out[i] = CDFPoint{X: v, P: float64(i+1) / n}
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at value v: the fraction of
// elements <= v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Normalize scales xs so the smallest value maps to 1 (the paper's Figure 11
// normalises every series "to the smallest one"). Zero or negative minima are
// clamped to floor first. The result is a new slice.
func Normalize(xs []float64, floor float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	mn := Min(xs)
	if mn < floor {
		mn = floor
	}
	if mn == 0 {
		mn = 1
	}
	for i, x := range xs {
		out[i] = x / mn
	}
	return out
}

// Histogram counts xs into nbins equal-width bins over [lo,hi]; values
// outside the range clamp into the edge bins. It panics if nbins <= 0 or
// hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	bins := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}

// WeightedMean returns the weighted mean of xs with weights ws, 0 when the
// weights sum to zero. It panics on length mismatch.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sw, swx float64
	for i := range xs {
		sw += ws[i]
		swx += ws[i] * xs[i]
	}
	if sw == 0 {
		return 0
	}
	return swx / sw
}
