package stats

import (
	"bytes"
	"math"
	"testing"
)

// mkSketch builds a sketch with n log-normal-ish samples in a fixed
// pseudo-random sequence (no rng dependency: stats is below rng in the
// package graph).
func mkSketch(n int, compression float64) *Sketch {
	sk := NewSketch(compression)
	x := uint64(88172645463325252)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		u := float64(x>>11) / (1 << 53)
		if err := sk.Add(math.Exp(3 + 2*(u-0.5))); err != nil {
			panic(err)
		}
	}
	return sk
}

// TestSketchBinaryRoundTrip pins the exact-state contract: the decoded
// sketch equals the original field for field (including the unflushed
// buffer), and continuing the stream on both sides produces bit-identical
// quantiles — the property the telemetry recovery path depends on.
func TestSketchBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 57, 399, 400, 5000} {
		orig := mkSketch(n, DefaultCompression)
		data, err := orig.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		var back Sketch
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		// A flushed empty buffer decodes as nil — semantically identical, so
		// compare the canonical encodings rather than raw struct fields.
		data2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("n=%d: state changed by round trip:\n orig: %+v\n back: %+v", n, orig, &back)
		}
		if back.Count() != orig.Count() || back.Min() != orig.Min() || back.Max() != orig.Max() ||
			back.Compression() != orig.Compression() {
			t.Fatalf("n=%d: scalar state diverged", n)
		}
		// Continue both streams identically: flush boundaries and centroid
		// layout must stay in lockstep.
		for i := 0; i < 500; i++ {
			v := float64(i%97) + 0.5
			if err := orig.Add(v); err != nil {
				t.Fatal(err)
			}
			if err := back.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
			if a, b := orig.Quantile(q), back.Quantile(q); a != b {
				t.Fatalf("n=%d q=%v: continued streams diverged: %v vs %v", n, q, a, b)
			}
		}
	}
}

// TestSketchBinaryNoFlush pins that marshalling does not disturb the live
// sketch: the buffer must survive a marshal unflushed.
func TestSketchBinaryNoFlush(t *testing.T) {
	sk := mkSketch(150, DefaultCompression) // below the 4δ flush threshold
	if len(sk.buf) == 0 {
		t.Fatal("test premise broken: expected unflushed buffer")
	}
	before := len(sk.buf)
	if _, err := sk.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	if len(sk.buf) != before {
		t.Fatalf("MarshalBinary flushed the buffer: %d -> %d", before, len(sk.buf))
	}
}

func TestSketchUnmarshalRejectsCorruption(t *testing.T) {
	good, err := mkSketch(500, DefaultCompression).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short":        good[:10],
		"bad-magic":    append([]byte("xxxx"), good[4:]...),
		"truncated":    good[:len(good)-8],
		"extra-bytes":  append(append([]byte{}, good...), 0, 0, 0, 0),
		"not-a-sketch": []byte("definitely not a sketch encoding, just text"),
	}
	// Flipped length fields must be caught by the size check, not alloc.
	huge := append([]byte{}, good...)
	huge[36], huge[37], huge[38], huge[39] = 0xff, 0xff, 0xff, 0x7f
	cases["huge-centroid-count"] = huge
	for name, data := range cases {
		var sk Sketch
		if err := sk.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}
