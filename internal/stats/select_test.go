package stats

import (
	"math"
	"sort"
	"testing"
)

// sortPercentile is the old copy-and-sort implementation, kept here as the
// reference the quickselect path must match bit for bit.
func sortPercentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func TestQuantileSelectMatchesSort(t *testing.T) {
	rnd := uint64(987654321)
	next := func() float64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return float64(rnd%1000000) / 1000
	}
	ps := []float64{0, 1, 5, 25, 50, 75, 90, 95, 99, 100}
	var sc Scratch
	for trial := 0; trial < 50; trial++ {
		n := 1 + trial*7
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = next()
			if trial%3 == 0 {
				xs[i] = math.Floor(xs[i] / 100) // heavy duplicates
			}
		}
		for _, p := range ps {
			want := sortPercentile(xs, p)
			if got := Percentile(xs, p); got != want {
				t.Fatalf("trial %d n=%d p=%v: Percentile=%v, sort-based=%v", trial, n, p, got, want)
			}
			if got := sc.Percentile(xs, p); got != want {
				t.Fatalf("trial %d n=%d p=%v: Scratch.Percentile=%v, sort-based=%v", trial, n, p, got, want)
			}
		}
	}
}

func TestScratchPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	var sc Scratch
	sc.Percentile(xs, 95)
	for i, want := range []float64{5, 1, 4, 2, 3} {
		if xs[i] != want {
			t.Fatalf("input mutated: %v", xs)
		}
	}
}

func TestScratchPercentileZeroAllocWhenWarm(t *testing.T) {
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64((i * 2654435761) % 100003)
	}
	var sc Scratch
	sc.Percentile(xs, 95) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		sc.Percentile(xs, 95)
	})
	if allocs != 0 {
		t.Fatalf("warm Scratch.Percentile allocates %.1f per run, want 0", allocs)
	}
}

func TestScratchPercentileEdgeCases(t *testing.T) {
	var sc Scratch
	if got := sc.Percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := sc.Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("single = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on p out of range")
		}
	}()
	sc.Percentile([]float64{1}, 101)
}
