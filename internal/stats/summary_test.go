package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-9*math.Max(m, 1)
}

// TestSummaryMatchesSliceFunctions checks every Summary accessor against the
// slice-at-a-time reference implementations on random data.
func TestSummaryMatchesSliceFunctions(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	for _, n := range []int{1, 2, 3, 10, 101, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()*50 + 20
		}
		s := Summarize(xs)
		if s.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, s.Len())
		}
		if !almostEq(s.Mean(), Mean(xs)) {
			t.Fatalf("n=%d: Mean %v != %v", n, s.Mean(), Mean(xs))
		}
		if !almostEq(s.Variance(), Variance(xs)) {
			t.Fatalf("n=%d: Variance %v != %v", n, s.Variance(), Variance(xs))
		}
		if !almostEq(s.StdDev(), StdDev(xs)) {
			t.Fatalf("n=%d: StdDev %v != %v", n, s.StdDev(), StdDev(xs))
		}
		if !almostEq(s.CV(), CV(xs)) {
			t.Fatalf("n=%d: CV %v != %v", n, s.CV(), CV(xs))
		}
		if s.Min() != Min(xs) || s.Max() != Max(xs) {
			t.Fatalf("n=%d: Min/Max mismatch", n)
		}
		if !almostEq(s.Sum(), Sum(xs)) {
			t.Fatalf("n=%d: Sum %v != %v", n, s.Sum(), Sum(xs))
		}
		for _, p := range []float64{0, 5, 25, 50, 75, 90, 95, 99, 100} {
			if got, want := s.Percentile(p), Percentile(xs, p); !almostEq(got, want) {
				t.Fatalf("n=%d: P%v = %v, want %v", n, p, got, want)
			}
		}
		if !almostEq(s.Median(), Median(xs)) {
			t.Fatalf("n=%d: Median mismatch", n)
		}
		if got, want := s.Gap(0.01), GapRatio(xs, 0.01); !almostEq(got, want) {
			t.Fatalf("n=%d: Gap %v != %v", n, got, want)
		}
		for _, v := range []float64{xs[0], -1e9, 1e9, s.Median()} {
			if got, want := s.CDFAt(v), CDFAt(xs, v); !almostEq(got, want) {
				t.Fatalf("n=%d: CDFAt(%v) = %v, want %v", n, v, got, want)
			}
		}
		ref := CDF(xs)
		got := s.CDF()
		if len(ref) != len(got) {
			t.Fatalf("n=%d: CDF length mismatch", n)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("n=%d: CDF[%d] = %+v, want %+v", n, i, got[i], ref[i])
			}
		}
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Len() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CV() != 0 {
		t.Fatal("empty summary moments not zero")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty Min/Max should be ±Inf like the slice functions")
	}
	if s.Percentile(50) != 0 || s.Median() != 0 || s.Gap(0.01) != 0 {
		t.Fatal("empty order statistics should be 0")
	}
	if s.CDFAt(1) != 0 || len(s.CDF()) != 0 {
		t.Fatal("empty CDF should be empty")
	}
}

// TestSummarySingleElement pins the documented single-sample semantics:
// every percentile is the sample itself, spread statistics are exactly 0,
// and nothing is NaN.
func TestSummarySingleElement(t *testing.T) {
	s := Summarize([]float64{7.5})
	for _, p := range []float64{0, 5, 50, 95, 100} {
		if got := s.Percentile(p); got != 7.5 {
			t.Fatalf("single-element P%v = %v, want 7.5", p, got)
		}
	}
	if s.Variance() != 0 || s.StdDev() != 0 || s.CV() != 0 {
		t.Fatalf("single-element spread: Variance=%v StdDev=%v CV=%v, want all 0",
			s.Variance(), s.StdDev(), s.CV())
	}
	if s.Mean() != 7.5 || s.Min() != 7.5 || s.Max() != 7.5 || s.Median() != 7.5 {
		t.Fatal("single-element location statistics should all equal the sample")
	}
}

// TestSummaryNoNaN sweeps the awkward inputs — empty, single, constant,
// zero-mean, huge-magnitude near-constant (where Welford cancellation could
// go negative) — and asserts no accessor ever returns NaN.
func TestSummaryNoNaN(t *testing.T) {
	cases := map[string][]float64{
		"empty":         nil,
		"single":        {3},
		"constant":      {5, 5, 5, 5},
		"zero-mean":     {-1, 1},
		"all-zero":      {0, 0, 0},
		"near-constant": {1e15, 1e15 + 1, 1e15, 1e15 + 1, 1e15},
	}
	for name, xs := range cases {
		s := Summarize(xs)
		for label, v := range map[string]float64{
			"Mean": s.Mean(), "Variance": s.Variance(), "StdDev": s.StdDev(),
			"CV": s.CV(), "Sum": s.Sum(), "Median": s.Median(),
			"P95": s.Percentile(95), "Gap": s.Gap(0.01), "CDFAt": s.CDFAt(1),
		} {
			if math.IsNaN(v) {
				t.Errorf("%s: %s is NaN", name, label)
			}
		}
		if s.Variance() < 0 {
			t.Errorf("%s: Variance = %v, want >= 0", name, s.Variance())
		}
	}
	// The package-level functions hold the same contract.
	for name, xs := range cases {
		for label, v := range map[string]float64{
			"Variance": Variance(xs), "StdDev": StdDev(xs), "CV": CV(xs),
			"Percentile": Percentile(xs, 95), "Median": Median(xs),
		} {
			if math.IsNaN(v) {
				t.Errorf("package %s: %s is NaN", name, label)
			}
		}
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummarizeInPlaceSortsOwnedSlice(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := SummarizeInPlace(xs)
	if got := s.Sorted(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatal("SummarizeInPlace did not sort")
	}
}

func TestSummaryPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize([]float64{1}).Percentile(101)
}

func TestSummaryPercentilesBatch(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	got := s.Percentiles(0, 50, 100)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Percentiles = %v", got)
	}
}

func TestGapRatioSingleSortMatchesQuantiles(t *testing.T) {
	xs := []float64{10, 0.001, 5, 50, 2, 8, 90, 4, 6, 7}
	want := Percentile(xs, 95) / math.Max(Percentile(xs, 5), 0.01)
	if got := GapRatio(xs, 0.01); !almostEq(got, want) {
		t.Fatalf("GapRatio = %v, want %v", got, want)
	}
}
