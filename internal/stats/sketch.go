package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sketch is a streaming quantile sketch in the t-digest family (Dunning's
// merging digest): it absorbs an unbounded stream of observations in bounded
// memory and answers quantile, CDF and count queries afterwards. Unlike
// Summary — which is exact but must hold every sample — a Sketch keeps at
// most O(compression) weighted centroids, so it is the right tool for the
// telemetry pipeline's per-window rollups where the stream never ends.
//
// Sketches are mergeable: Merge folds another sketch in with the same error
// bound as if the merged stream had been fed to a single sketch, which is
// what lets the ingest layer shard by dimension hash and the query layer
// recombine shards and time windows.
//
// # Error bound
//
// Centroid sizes follow the t-digest k₁ scale function k(q) =
// δ/(2π)·asin(2q−1): adjacent centroids are fused only while they span at
// most one unit of k, so a centroid covering quantile position q holds at
// most a 2π·√(q(1−q))/δ fraction of the stream and the total centroid count
// stays O(δ) regardless of stream length. The rank error of Quantile(q) —
// |CDF(Quantile(q)) − q| on the underlying data — is at most one centroid's
// half-width,
//
//	ε(q) ≤ π·√(q·(1−q))/δ
//
// plus the 1/(2n) discretisation floor of an n-sample empirical CDF. At the
// default compression 100 that is ≤ 1.6% rank error at the median, ≤ 0.7%
// at p95 and ≤ 0.32% at p99; accuracy is tightest in the tails, which is
// what the p95/p99 telemetry queries care about. RankErrorBound computes the
// bound; the replay cross-check test pins streaming campaign percentiles
// against the exact batch Summary at twice it (the bound is
// expectation-level; 2× absorbs unlucky centroid boundaries).
//
// A Sketch is not safe for concurrent use; the telemetry ingest layer gives
// each shard a single writer and locks rollups during query merges.
type Sketch struct {
	compression float64
	centroids   []Centroid // sorted by Mean after flush
	buf         []Centroid // unsorted incoming points
	count       float64
	min, max    float64
}

// Centroid is one weighted point of a sketch.
type Centroid struct {
	Mean   float64
	Weight float64
}

// DefaultCompression balances memory (≤ ~2·δ centroids ≈ a few KB) against
// the documented error bound; it is the δ the telemetry pipeline uses unless
// configured otherwise.
const DefaultCompression = 100

// NewSketch returns an empty sketch with the given compression δ (minimum
// 20; pass DefaultCompression when in doubt). Higher δ means more centroids
// and proportionally tighter quantile error.
func NewSketch(compression float64) *Sketch {
	if compression < 20 {
		compression = 20
	}
	return &Sketch{
		compression: compression,
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Compression returns the sketch's δ parameter.
func (sk *Sketch) Compression() float64 { return sk.compression }

// Add absorbs one observation. NaN and ±Inf are rejected with an error (a
// telemetry stream must not poison a whole window's rollup).
func (sk *Sketch) Add(x float64) error {
	return sk.AddWeighted(x, 1)
}

// AddWeighted absorbs an observation with weight w > 0.
func (sk *Sketch) AddWeighted(x, w float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("stats: sketch rejects non-finite value %v", x)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("stats: sketch rejects weight %v", w)
	}
	sk.buf = append(sk.buf, Centroid{Mean: x, Weight: w})
	sk.count += w
	if x < sk.min {
		sk.min = x
	}
	if x > sk.max {
		sk.max = x
	}
	if len(sk.buf) >= 4*int(sk.compression) {
		sk.flush()
	}
	return nil
}

// Merge folds other into sk. other is unchanged (its buffered points are
// copied, not stolen). Merging preserves the error bound: the result is
// equivalent to a single sketch that saw both streams.
func (sk *Sketch) Merge(other *Sketch) {
	if other == nil || other.count == 0 {
		return
	}
	sk.buf = append(sk.buf, other.centroids...)
	sk.buf = append(sk.buf, other.buf...)
	sk.count += other.count
	if other.min < sk.min {
		sk.min = other.min
	}
	if other.max > sk.max {
		sk.max = other.max
	}
	sk.flush()
}

// Absorb folds other into sk like Merge but defers compaction: other's
// centroids are only appended to the buffer, and a full merge pass runs
// when the buffer crosses the usual threshold. Absorbing k sketches costs
// one sort per ~8δ absorbed centroids instead of one per sketch, which is
// what the telemetry query layer wants when merging many window rollups
// into one answer. other is unchanged.
func (sk *Sketch) Absorb(other *Sketch) {
	if other == nil || other.count == 0 {
		return
	}
	sk.buf = append(sk.buf, other.centroids...)
	sk.buf = append(sk.buf, other.buf...)
	sk.count += other.count
	if other.min < sk.min {
		sk.min = other.min
	}
	if other.max > sk.max {
		sk.max = other.max
	}
	if len(sk.buf) >= 8*int(sk.compression) {
		sk.flush()
	}
}

// Clone returns an independent copy of the sketch.
func (sk *Sketch) Clone() *Sketch {
	c := *sk
	c.centroids = append([]Centroid(nil), sk.centroids...)
	c.buf = append([]Centroid(nil), sk.buf...)
	return &c
}

// flush merges buffered points into the centroid list, enforcing the
// q(1-q) size limit. It is the only place centroids are created or fused,
// so the memory bound and the error bound both live here.
func (sk *Sketch) flush() {
	if len(sk.buf) == 0 {
		return
	}
	all := append(sk.centroids, sk.buf...)
	sk.buf = sk.buf[:0]
	sort.Slice(all, func(i, j int) bool { return all[i].Mean < all[j].Mean })

	// k₁ scale: fuse neighbours while the combined centroid spans at most
	// one unit of k(q) = δ/(2π)·asin(2q−1).
	kOf := func(q float64) float64 {
		if q < 0 {
			q = 0
		} else if q > 1 {
			q = 1
		}
		return sk.compression / (2 * math.Pi) * math.Asin(2*q-1)
	}
	merged := all[:1]
	wSoFar := 0.0
	kLeft := kOf(0)
	for _, c := range all[1:] {
		last := &merged[len(merged)-1]
		proposed := last.Weight + c.Weight
		if kOf((wSoFar+proposed)/sk.count)-kLeft <= 1 {
			// Weighted fuse keeps the mean exact for the combined mass.
			last.Mean += (c.Mean - last.Mean) * c.Weight / proposed
			last.Weight = proposed
			continue
		}
		wSoFar += last.Weight
		kLeft = kOf(wSoFar / sk.count)
		merged = append(merged, c)
	}
	sk.centroids = append(sk.centroids[:0], merged...)
}

// Count returns the total absorbed weight.
func (sk *Sketch) Count() float64 { return sk.count }

// Min returns the smallest absorbed value, +Inf when empty (matching Min and
// Summary.Min).
func (sk *Sketch) Min() float64 { return sk.min }

// Max returns the largest absorbed value, -Inf when empty.
func (sk *Sketch) Max() float64 { return sk.max }

// Centroids returns the sketch's current centroid list, flushing buffered
// points first. The caller must not modify the returned slice.
func (sk *Sketch) Centroids() []Centroid {
	sk.flush()
	return sk.centroids
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]), 0 for an
// empty sketch (matching Percentile on an empty slice). It panics on q
// outside [0,1].
func (sk *Sketch) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: sketch quantile out of range")
	}
	sk.flush()
	if sk.count == 0 {
		return 0
	}
	if len(sk.centroids) == 1 {
		return sk.centroids[0].Mean
	}
	if q == 0 {
		return sk.min
	}
	if q == 1 {
		return sk.max
	}
	target := q * sk.count
	// Walk centroids treating each as its mass centred on its mean.
	wSoFar := 0.0
	for i, c := range sk.centroids {
		if wSoFar+c.Weight/2 >= target {
			if i == 0 {
				// Interpolate from the true minimum into the first centroid.
				frac := target / (c.Weight / 2)
				return sk.min + frac*(c.Mean-sk.min)
			}
			prev := sk.centroids[i-1]
			lo := wSoFar - prev.Weight/2
			span := prev.Weight/2 + c.Weight/2
			frac := (target - lo) / span
			return prev.Mean + frac*(c.Mean-prev.Mean)
		}
		wSoFar += c.Weight
	}
	last := sk.centroids[len(sk.centroids)-1]
	lo := sk.count - last.Weight/2
	if target <= lo {
		return last.Mean
	}
	frac := (target - lo) / (last.Weight / 2)
	if frac > 1 {
		frac = 1
	}
	return last.Mean + frac*(sk.max-last.Mean)
}

// Percentile mirrors Summary.Percentile's 0–100 convention over the sketch.
func (sk *Sketch) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	return sk.Quantile(p / 100)
}

// CDFAt estimates the fraction of absorbed values <= v, 0 for an empty
// sketch.
func (sk *Sketch) CDFAt(v float64) float64 {
	sk.flush()
	if sk.count == 0 {
		return 0
	}
	if v < sk.min {
		return 0
	}
	if v >= sk.max {
		return 1
	}
	wSoFar := 0.0
	prevMean, prevHalf := sk.min, 0.0
	for _, c := range sk.centroids {
		if v < c.Mean {
			span := c.Mean - prevMean
			frac := 0.0
			if span > 0 {
				frac = (v - prevMean) / span
			}
			return (wSoFar - prevHalf + frac*(prevHalf+c.Weight/2)) / sk.count
		}
		wSoFar += c.Weight
		prevMean, prevHalf = c.Mean, c.Weight/2
	}
	frac := 0.0
	if span := sk.max - prevMean; span > 0 {
		frac = (v - prevMean) / span
	}
	p := (wSoFar - prevHalf + frac*prevHalf) / sk.count
	if p > 1 {
		p = 1
	}
	return p
}

// RankErrorBound returns the documented worst-case rank error of Quantile(q)
// for this sketch's compression and current count: π·√(q(1−q))/δ plus the
// 1/(2n) empirical-CDF discretisation floor. Tests and the telemetry query
// layer use it to report how much a streaming percentile may deviate from
// the exact batch answer.
func (sk *Sketch) RankErrorBound(q float64) float64 {
	eps := math.Pi * math.Sqrt(q*(1-q)) / sk.compression
	if sk.count > 0 {
		eps += 1 / (2 * sk.count)
	}
	return eps
}
