// Package netmodel models the end-to-end network path between an end user
// and an edge or cloud site: per-hop latency and jitter, hop counts, access
// network profiles (WiFi / LTE / 5G / wired), packet loss, and achievable TCP
// throughput.
//
// The model is calibrated against the measurements the paper itself reports
// (median RTTs in Figure 2, the hop-level breakdown in Table 3, hop counts in
// Figure 3, and the throughput capacities quoted in §3.2), so that the
// crowd-sourced campaign run against this model reproduces the published
// shape: edges win on latency and jitter everywhere, but on throughput only
// where the last-mile capacity exceeds the wired bottleneck (5G downlink and
// wired access).
package netmodel

import (
	"fmt"

	"edgescope/internal/rng"
	"edgescope/internal/scenario"
)

// Access identifies the last-mile access network of an end user.
type Access int

// Access network types used in the paper's crowd campaign.
const (
	WiFi Access = iota
	LTE
	FiveG
	Wired
)

// String returns the conventional name of the access type.
func (a Access) String() string {
	switch a {
	case WiFi:
		return "WiFi"
	case LTE:
		return "LTE"
	case FiveG:
		return "5G"
	case Wired:
		return "wired"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// AllAccess lists the access types in presentation order.
func AllAccess() []Access { return []Access{WiFi, LTE, FiveG, Wired} }

// PickAccess draws a last-mile access network from a scenario's declared
// mix: exactly one weighted draw over the canonical WiFi/LTE/5G weight
// order, so a fixed source yields the same access sequence for the same
// mix regardless of which caller performs the draw. Wired access is never
// drawn here — it is a per-study override (throughput testers), not part
// of the volunteer population mix.
func PickAccess(r *rng.Source, m scenario.AccessMix) Access {
	switch r.Choice(m.Weights()) {
	case 0:
		return WiFi
	case 1:
		return LTE
	default:
		return FiveG
	}
}

// AccessProfile holds the latency, jitter and capacity characteristics of one
// access network type. Latencies are round-trip contributions in
// milliseconds; capacities are in Mbps.
type AccessProfile struct {
	Access Access

	// AccessHopMs is the median RTT contribution of the wireless (or local
	// wired) first hop; sampled log-normally with AccessHopSigma.
	AccessHopMs    float64
	AccessHopSigma float64
	// AccessJitterMs is the standard deviation of per-sample noise added by
	// the first hop.
	AccessJitterMs float64

	// AggHopMs is the median RTT contribution of the second hop. For LTE
	// this is the GTP-U tunnel, which aggregates several physical hops and
	// dominates the end-to-end latency (Table 3); for 5G it is the UPF.
	AggHopMs    float64
	AggHopSigma float64
	AggJitterMs float64
	// AggVisible reports whether the aggregation hop answers TTL-expired
	// probes. The paper observed that 5G operators disable ICMP on the
	// first hops.
	AggVisible bool
	// AccessVisible likewise for the first hop.
	AccessVisible bool

	// DownMbpsMedian / UpMbpsMedian are the median last-mile capacities,
	// sampled log-normally with CapSigma. The 5G uplink is strictly capped
	// by the asymmetric TDD slot ratio (Rel-15 TS 38.306), which UpCapMbps
	// enforces.
	DownMbpsMedian float64
	UpMbpsMedian   float64
	CapSigma       float64
	DownCapMbps    float64
	UpCapMbps      float64

	// ExtraLoss is the additional packet-loss probability contributed by the
	// access network.
	ExtraLoss float64
}

// profiles is calibrated to the paper's reported numbers; see package doc.
var profiles = map[Access]AccessProfile{
	WiFi: {
		Access:      WiFi,
		AccessHopMs: 4.6, AccessHopSigma: 0.30, AccessJitterMs: 0.07,
		AggHopMs: 1.1, AggHopSigma: 0.25, AggJitterMs: 0.04,
		AccessVisible: true, AggVisible: true,
		DownMbpsMedian: 55, UpMbpsMedian: 35, CapSigma: 0.45,
		DownCapMbps: 150, UpCapMbps: 100,
		ExtraLoss: 1.0e-6,
	},
	LTE: {
		Access:      LTE,
		AccessHopMs: 3.5, AccessHopSigma: 0.35, AccessJitterMs: 0.45,
		AggHopMs: 24.0, AggHopSigma: 0.30, AggJitterMs: 0.40,
		AccessVisible: true, AggVisible: true,
		DownMbpsMedian: 35, UpMbpsMedian: 15, CapSigma: 0.45,
		DownCapMbps: 110, UpCapMbps: 60,
		ExtraLoss: 2.0e-6,
	},
	FiveG: {
		Access:      FiveG,
		AccessHopMs: 2.5, AccessHopSigma: 0.25, AccessJitterMs: 0.05,
		AggHopMs: 4.2, AggHopSigma: 0.25, AggJitterMs: 0.06,
		AccessVisible: false, AggVisible: false, // operator disables ICMP
		DownMbpsMedian: 480, UpMbpsMedian: 50, CapSigma: 0.22,
		DownCapMbps: 900, UpCapMbps: 60, // TDD slot-ratio uplink cap
		ExtraLoss: 0.8e-6,
	},
	Wired: {
		Access:      Wired,
		AccessHopMs: 1.0, AccessHopSigma: 0.25, AccessJitterMs: 0.02,
		AggHopMs: 0.8, AggHopSigma: 0.25, AggJitterMs: 0.03,
		AccessVisible: true, AggVisible: true,
		DownMbpsMedian: 480, UpMbpsMedian: 400, CapSigma: 0.20,
		DownCapMbps: 1000, UpCapMbps: 1000,
		ExtraLoss: 0.3e-6,
	},
}

// ProfileFor returns the calibrated profile for an access type. It panics on
// an unknown access type.
func ProfileFor(a Access) AccessProfile {
	p, ok := profiles[a]
	if !ok {
		panic(fmt.Sprintf("netmodel: unknown access type %d", int(a)))
	}
	return p
}
