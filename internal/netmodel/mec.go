package netmodel

import "edgescope/internal/rng"

// BuildSunkPath models the paper's §3.1/§5 recommendation taken to its
// conclusion: edge resources sunk into the ISP's access aggregation point
// (Mobile Edge Computing). The path collapses to the access hop, the
// aggregation hop, and a single in-site hop — no metro core, no backbone.
// Comparing SampleRTT on these paths against regular EdgeSite paths
// quantifies how much of today's NEP latency is recoverable by sinking.
func BuildSunkPath(r *rng.Source, access Access) *Path {
	p := ProfileFor(access)
	hops := []Hop{
		{
			Kind:        HopAccess,
			BaseRTTMs:   r.LogNormalMeanMedian(p.AccessHopMs, p.AccessHopSigma),
			JitterStdMs: p.AccessJitterMs,
			Visible:     p.AccessVisible,
		},
		{
			Kind:        HopAgg,
			BaseRTTMs:   r.LogNormalMeanMedian(p.AggHopMs, p.AggHopSigma),
			JitterStdMs: p.AggJitterMs,
			Visible:     p.AggVisible,
		},
		{
			Kind:        HopDC,
			BaseRTTMs:   r.LogNormalMeanMedian(dcHopMs, 0.3),
			JitterStdMs: dcJitterMs,
			Visible:     true,
		},
	}
	path := &Path{
		Access:   access,
		Class:    EdgeSite,
		Hops:     hops,
		LossRate: lossBase + p.ExtraLoss,
		profile:  p,
	}
	path.extraJitterStd = edgeJitterFactor * path.BaseRTTMs()
	path.finalize()
	return path
}
