package netmodel

import (
	"math"

	"edgescope/internal/rng"
)

// Direction of a throughput measurement relative to the end user.
type Direction int

// Measurement directions.
const (
	Downlink Direction = iota
	Uplink
)

// String returns "down" or "up".
func (d Direction) String() string {
	if d == Downlink {
		return "down"
	}
	return "up"
}

// Mathis TCP-throughput model constants: throughput <= (MSS/RTT) * C/sqrt(p)
// (Mathis et al., CCR 1997), the same macroscopic model the paper invokes to
// explain why throughput correlates with distance only when the last-mile
// capacity is high.
const (
	mssBits = 1460 * 8
	mathisC = 1.22
	minLoss = 1e-8
)

// MathisThroughputMbps returns the loss-and-RTT-bound TCP throughput in Mbps
// for the given RTT (ms) and loss probability.
func MathisThroughputMbps(rttMs, loss float64) float64 {
	if rttMs <= 0 {
		return math.Inf(1)
	}
	if loss < minLoss {
		loss = minLoss
	}
	bps := float64(mssBits) / (rttMs / 1000) * mathisC / math.Sqrt(loss)
	return bps / 1e6
}

// ThroughputSample is the outcome of one modelled iperf run.
type ThroughputSample struct {
	Mbps       float64
	Bottleneck Bottleneck
	PathRTTMs  float64
	PathLoss   float64
	AccessMbps float64 // sampled last-mile capacity
}

// Bottleneck names which link bound a throughput sample.
type Bottleneck int

// Bottleneck locations.
const (
	BottleneckAccess Bottleneck = iota // wireless last mile
	BottleneckWAN                      // wide-area TCP (RTT/loss bound)
	BottleneckServer                   // server/DC gateway bandwidth
)

// String names the bottleneck.
func (b Bottleneck) String() string {
	switch b {
	case BottleneckAccess:
		return "access"
	case BottleneckWAN:
		return "wan"
	default:
		return "server"
	}
}

// SampleThroughput models one 15-second bulk TCP transfer over the path with
// a server whose allocated egress is serverMbps (<=0 means unconstrained).
// The achieved rate is the minimum of the last-mile capacity, the
// Mathis-bound WAN throughput, and the server allocation, with multiplicative
// measurement noise.
func (p *Path) SampleThroughput(r *rng.Source, dir Direction, serverMbps float64) ThroughputSample {
	prof := p.profile
	var median, cap float64
	if dir == Downlink {
		median, cap = prof.DownMbpsMedian, prof.DownCapMbps
	} else {
		median, cap = prof.UpMbpsMedian, prof.UpCapMbps
	}
	access := r.LogNormalMeanMedian(median, prof.CapSigma)
	if access > cap {
		access = cap
	}

	rtt := p.SampleRTT(r)
	wan := MathisThroughputMbps(rtt, p.LossRate)

	got := access
	bn := BottleneckAccess
	if wan < got {
		got, bn = wan, BottleneckWAN
	}
	if serverMbps > 0 && serverMbps < got {
		got, bn = serverMbps, BottleneckServer
	}
	// Protocol efficiency and measurement noise: a log-normal around the
	// 0.94 efficiency median via the shared helper (bit-identical to the
	// inline 0.94 * exp(Normal(0, 0.05)) it replaces).
	got *= r.LogNormalMeanMedian(0.94, 0.05)
	return ThroughputSample{
		Mbps:       got,
		Bottleneck: bn,
		PathRTTMs:  rtt,
		PathLoss:   p.LossRate,
		AccessMbps: access,
	}
}
