package netmodel

import (
	"testing"

	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

func TestSunkPathHopCount(t *testing.T) {
	r := rng.New(1)
	p := BuildSunkPath(r, WiFi)
	// The MEC vision: 1–2 hops of infrastructure past the access network.
	if p.HopCount() != 3 {
		t.Fatalf("sunk path hops = %d, want 3 (access, agg, dc)", p.HopCount())
	}
	if p.Class != EdgeSite {
		t.Fatal("sunk path must be an edge destination")
	}
}

func TestSunkPathBeatsRegularEdge(t *testing.T) {
	r := rng.New(2)
	med := func(build func() *Path) float64 {
		var vals []float64
		for i := 0; i < 400; i++ {
			vals = append(vals, build().SampleRTT(r))
		}
		return stats.Median(vals)
	}
	sunk := med(func() *Path { return BuildSunkPath(r, WiFi) })
	regular := med(func() *Path { return BuildPath(r, WiFi, EdgeSite, 60) })
	if sunk >= regular {
		t.Fatalf("sunk RTT %.1f not below regular edge %.1f", sunk, regular)
	}
	// WiFi MEC should approach the paper's sub-10ms target.
	if sunk > 10 {
		t.Fatalf("sunk WiFi RTT = %.1f ms, want <10 (access %.1f + agg %.1f)", sunk, 4.6, 1.1)
	}
}

func TestSunkPathMeetsVRBudgetOn5G(t *testing.T) {
	// Cloud VR/AR needs 5–20 ms (§3.1); today's NEP "barely" meets it.
	// Sinking into the RAN should land 5G inside the budget.
	r := rng.New(3)
	var vals []float64
	for i := 0; i < 400; i++ {
		vals = append(vals, BuildSunkPath(r, FiveG).SampleRTT(r))
	}
	if m := stats.Median(vals); m > 12 {
		t.Fatalf("sunk 5G median RTT = %.1f ms, want well inside 5-20", m)
	}
}

func TestSunkPathLossMinimal(t *testing.T) {
	r := rng.New(4)
	sunk := BuildSunkPath(r, WiFi)
	far := BuildPath(r, WiFi, CloudSite, 1500)
	if sunk.LossRate >= far.LossRate {
		t.Fatal("sunk path should carry less loss than a long WAN path")
	}
}
