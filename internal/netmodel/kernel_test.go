package netmodel

import (
	"testing"

	"edgescope/internal/rng"
)

// kernelSweep runs f over a grid of (seed, access, class, distance) paths —
// the sweep every batched-kernel equivalence test shares.
func kernelSweep(t *testing.T, f func(t *testing.T, seed uint64, access Access, class SiteClass, distKm float64)) {
	t.Helper()
	for seed := uint64(1); seed <= 5; seed++ {
		for _, access := range AllAccess() {
			for _, class := range []SiteClass{EdgeSite, CloudSite} {
				for _, dist := range []float64{0, 12, 180, 1400} {
					f(t, seed, access, class, dist)
				}
			}
		}
	}
}

// samePath builds the identical path twice from one seed so a scalar and a
// batched walk can be compared on independent but identical streams.
func samePath(seed uint64, access Access, class SiteClass, distKm float64) (*Path, *Path, *rng.Source, *rng.Source) {
	p1 := BuildPath(rng.New(seed), access, class, distKm)
	p2 := BuildPath(rng.New(seed), access, class, distKm)
	return p1, p2, rng.New(seed ^ 0xabcdef), rng.New(seed ^ 0xabcdef)
}

// TestSampleRTTsMatchesScalar pins the batched kernel's draw-order contract:
// SampleRTTs(dst) equals len(dst) sequential SampleRTT calls bit for bit,
// and leaves the stream at the same position.
func TestSampleRTTsMatchesScalar(t *testing.T) {
	kernelSweep(t, func(t *testing.T, seed uint64, access Access, class SiteClass, distKm float64) {
		p1, p2, r1, r2 := samePath(seed, access, class, distKm)
		const n = 64
		batch := make([]float64, n)
		p1.SampleRTTs(r1, batch)
		for i := 0; i < n; i++ {
			if want := p2.SampleRTT(r2); batch[i] != want {
				t.Fatalf("seed %d %v/%v %.0fkm: SampleRTTs[%d] = %v, scalar = %v",
					seed, access, class, distKm, i, batch[i], want)
			}
		}
		if got, want := r1.Uint64(), r2.Uint64(); got != want {
			t.Fatalf("seed %d %v/%v %.0fkm: stream position diverged after batch",
				seed, access, class, distKm)
		}
	})
}

// TestFusedSampleMatchesHopWalk pins the flattened kernel against the
// hop-walking fallback: a Path stripped of its kernel (a manual literal)
// must sample identically to the finalized original.
func TestFusedSampleMatchesHopWalk(t *testing.T) {
	kernelSweep(t, func(t *testing.T, seed uint64, access Access, class SiteClass, distKm float64) {
		fused := BuildPath(rng.New(seed), access, class, distKm)
		walk := &Path{
			Access: fused.Access, Class: fused.Class, DistanceKm: fused.DistanceKm,
			Hops: fused.Hops, LossRate: fused.LossRate,
			extraJitterStd: fused.extraJitterStd, profile: fused.profile,
		}
		if walk.kern.base != nil {
			t.Fatal("literal path unexpectedly has a kernel")
		}
		if got, want := fused.BaseRTTMs(), walk.BaseRTTMs(); got != want {
			t.Fatalf("BaseRTTMs: fused %v, hop-walk %v", got, want)
		}
		r1, r2 := rng.New(seed+99), rng.New(seed+99)
		for i := 0; i < 64; i++ {
			if got, want := fused.SampleRTT(r1), walk.SampleRTT(r2); got != want {
				t.Fatalf("seed %d %v/%v %.0fkm sample %d: fused %v, hop-walk %v",
					seed, access, class, distKm, i, got, want)
			}
		}
	})
}

// TestHopRTTsIntoMatchesHopRTTs pins the buffered traceroute kernel.
func TestHopRTTsIntoMatchesHopRTTs(t *testing.T) {
	kernelSweep(t, func(t *testing.T, seed uint64, access Access, class SiteClass, distKm float64) {
		p1, p2, r1, r2 := samePath(seed, access, class, distKm)
		buf := make([]float64, p1.HopCount())
		for rep := 0; rep < 16; rep++ {
			p1.HopRTTsInto(r1, buf)
			want := p2.HopRTTs(r2)
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("seed %d %v/%v %.0fkm rep %d hop %d: into %v, alloc %v",
						seed, access, class, distKm, rep, i, buf[i], want[i])
				}
			}
		}
	})
}

// TestSampleRTTsZeroAlloc pins that the batched kernel performs no
// allocation once the caller owns the buffer.
func TestSampleRTTsZeroAlloc(t *testing.T) {
	p := BuildPath(rng.New(3), WiFi, CloudSite, 800)
	r := rng.New(4)
	dst := make([]float64, 128)
	allocs := testing.AllocsPerRun(50, func() {
		p.SampleRTTs(r, dst)
	})
	if allocs != 0 {
		t.Fatalf("SampleRTTs allocs/op = %v, want 0", allocs)
	}
}
