package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

// medianRTT builds n independent paths and returns the median of one RTT
// sample from each, mimicking the campaign's aggregation.
func medianRTT(seed uint64, access Access, class SiteClass, distKm float64, n int) float64 {
	r := rng.New(seed)
	vals := make([]float64, n)
	for i := range vals {
		p := BuildPath(r, access, class, distKm)
		vals[i] = p.SampleRTT(r)
	}
	return stats.Median(vals)
}

func TestAccessString(t *testing.T) {
	cases := map[Access]string{WiFi: "WiFi", LTE: "LTE", FiveG: "5G", Wired: "wired"}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", int(a), a.String())
		}
	}
}

func TestProfileForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProfileFor(Access(99))
}

func TestWiFiEdgeRTTCalibration(t *testing.T) {
	// Paper: WiFi nearest edge median RTT ≈ 10.5 ms at ~130 km.
	m := medianRTT(1, WiFi, EdgeSite, 60, 800)
	if m < 7 || m > 15 {
		t.Fatalf("WiFi edge median RTT = %.1f ms, want ~10.5", m)
	}
}

func TestWiFiCloudSlower(t *testing.T) {
	// Paper: WiFi nearest cloud ≈ 19.8 ms at ~351 km, 1.89× the edge.
	edge := medianRTT(2, WiFi, EdgeSite, 60, 800)
	cloud := medianRTT(2, WiFi, CloudSite, 351, 800)
	if cloud < 15 || cloud > 28 {
		t.Fatalf("WiFi cloud median RTT = %.1f ms, want ~19.8", cloud)
	}
	ratio := cloud / edge
	if ratio < 1.3 || ratio > 2.8 {
		t.Fatalf("cloud/edge RTT ratio = %.2f, want ~1.9", ratio)
	}
}

func TestLTEEdgeRTTCalibration(t *testing.T) {
	// Paper: LTE nearest edge median RTT ≈ 34.2 ms; GTP second hop dominates.
	m := medianRTT(3, LTE, EdgeSite, 60, 800)
	if m < 26 || m > 44 {
		t.Fatalf("LTE edge median RTT = %.1f ms, want ~34.2", m)
	}
}

func TestFiveGEdgeRTTCalibration(t *testing.T) {
	// Paper: 5G nearest edge ≈ 10.4 ms, tests were co-located (Beijing).
	m := medianRTT(4, FiveG, EdgeSite, 5, 800)
	if m < 7 || m > 15 {
		t.Fatalf("5G edge median RTT = %.1f ms, want ~10.4", m)
	}
}

func TestRTTIncreasesWithDistance(t *testing.T) {
	near := medianRTT(5, WiFi, CloudSite, 100, 400)
	far := medianRTT(5, WiFi, CloudSite, 2000, 400)
	if far <= near+20 {
		t.Fatalf("RTT at 2000 km (%.1f) should exceed 100 km (%.1f) by ~38 ms", far, near)
	}
}

func TestHopCountRanges(t *testing.T) {
	r := rng.New(6)
	for i := 0; i < 500; i++ {
		e := BuildPath(r, WiFi, EdgeSite, 20+r.Float64()*280)
		if n := e.HopCount(); n < 5 || n > 12 {
			t.Fatalf("edge hop count %d outside 5-12", n)
		}
		c := BuildPath(r, WiFi, CloudSite, 300+r.Float64()*1500)
		if n := c.HopCount(); n < 10 || n > 17 {
			t.Fatalf("cloud hop count %d outside 10-17", n)
		}
	}
}

func TestCloudHasMoreHopsOnAverage(t *testing.T) {
	r := rng.New(7)
	var se, sc int
	for i := 0; i < 300; i++ {
		se += BuildPath(r, WiFi, EdgeSite, 130).HopCount()
		sc += BuildPath(r, WiFi, CloudSite, 600).HopCount()
	}
	if sc <= se {
		t.Fatalf("cloud avg hops (%d) not above edge (%d)", sc, se)
	}
}

func TestJitterEdgeVsCloud(t *testing.T) {
	// Paper Fig 2b: nearest-cloud RTT CV is ~5.8× the nearest edge under WiFi.
	r := rng.New(8)
	cvOf := func(class SiteClass, dist float64) float64 {
		var cvs []float64
		for u := 0; u < 120; u++ {
			p := BuildPath(r, WiFi, class, dist)
			samples := make([]float64, 30)
			for i := range samples {
				samples[i] = p.SampleRTT(r)
			}
			cvs = append(cvs, stats.CV(samples))
		}
		return stats.Median(cvs)
	}
	edge := cvOf(EdgeSite, 60)
	cloud := cvOf(CloudSite, 351)
	if edge <= 0 || cloud <= 0 {
		t.Fatal("CV must be positive")
	}
	if cloud < 2.5*edge {
		t.Fatalf("cloud CV (%.4f) should be well above edge CV (%.4f)", cloud, edge)
	}
	if edge > 0.04 {
		t.Fatalf("edge WiFi CV = %.4f, paper reports ~0.011", edge)
	}
}

func TestLTESecondHopDominates(t *testing.T) {
	// Paper Table 3: LTE 2nd hop ≈ 70% of end-to-end latency to nearest edge.
	r := rng.New(9)
	var share float64
	const n = 200
	for i := 0; i < n; i++ {
		_, h2, _, _ := BuildPath(r, LTE, EdgeSite, 60).HopShare()
		share += h2
	}
	share /= n
	if share < 0.5 || share > 0.85 {
		t.Fatalf("LTE 2nd-hop share = %.2f, want ~0.70", share)
	}
}

func TestWiFiFirstHopLargest(t *testing.T) {
	// Paper Table 3: WiFi 1st hop ≈ 44% of latency to the nearest edge.
	r := rng.New(10)
	var h1s, rests float64
	const n = 200
	for i := 0; i < n; i++ {
		h1, _, _, rest := BuildPath(r, WiFi, EdgeSite, 60).HopShare()
		h1s += h1
		rests += rest
	}
	if h1s/n < 0.30 {
		t.Fatalf("WiFi 1st-hop share = %.2f, want ~0.44", h1s/n)
	}
	_ = rests
}

func TestHopSharesSumToOne(t *testing.T) {
	if err := quick.Check(func(seed uint64, d uint16) bool {
		r := rng.New(seed)
		p := BuildPath(r, WiFi, CloudSite, float64(d%3000))
		h1, h2, h3, rest := p.HopShare()
		return math.Abs(h1+h2+h3+rest-1) < 1e-9
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFiveGHopsInvisible(t *testing.T) {
	r := rng.New(11)
	p := BuildPath(r, FiveG, EdgeSite, 10)
	rtts := p.HopRTTs(r)
	if rtts[0] != -1 || rtts[1] != -1 {
		t.Fatalf("5G first hops should be invisible, got %v", rtts[:2])
	}
	// Later hops visible and cumulative.
	last := 0.0
	for _, v := range rtts[2:] {
		if v < 0 {
			t.Fatal("metro+ hops should be visible")
		}
		if v < last-1.5 { // allow small jitter inversions
			t.Fatalf("hop RTTs should be ~monotone: %v", rtts)
		}
		last = v
	}
}

func TestSampleRTTPositiveAndNearBase(t *testing.T) {
	r := rng.New(12)
	p := BuildPath(r, LTE, CloudSite, 1200)
	base := p.BaseRTTMs()
	for i := 0; i < 1000; i++ {
		v := p.SampleRTT(r)
		if v < 0.8*base-1e-9 {
			t.Fatalf("sample %.2f below floor of base %.2f", v, base)
		}
	}
}

func TestBuildPathPanicsOnNegativeDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildPath(rng.New(1), WiFi, EdgeSite, -1)
}

func TestMathisMonotonicity(t *testing.T) {
	if MathisThroughputMbps(10, 1e-5) <= MathisThroughputMbps(50, 1e-5) {
		t.Fatal("throughput should fall with RTT")
	}
	if MathisThroughputMbps(10, 1e-6) <= MathisThroughputMbps(10, 1e-4) {
		t.Fatal("throughput should fall with loss")
	}
	if !math.IsInf(MathisThroughputMbps(0, 1e-5), 1) {
		t.Fatal("zero RTT should be unbounded")
	}
}

func corrDistanceThroughput(seed uint64, access Access, dir Direction) float64 {
	r := rng.New(seed)
	var ds, ts []float64
	for i := 0; i < 600; i++ {
		d := 20 + r.Float64()*2480
		p := BuildPath(r, access, EdgeSite, d)
		s := p.SampleThroughput(r, dir, 1000)
		ds = append(ds, d)
		ts = append(ts, s.Mbps)
	}
	return stats.Pearson(ds, ts)
}

func TestThroughputDistanceCorrelation(t *testing.T) {
	// Paper Fig 5: only high-capacity access (5G downlink, wired) shows a
	// strong negative correlation between distance and throughput.
	if c := corrDistanceThroughput(13, FiveG, Downlink); c > -0.6 {
		t.Fatalf("5G downlink corr = %.2f, want strongly negative", c)
	}
	if c := corrDistanceThroughput(14, Wired, Downlink); c > -0.6 {
		t.Fatalf("wired downlink corr = %.2f, want strongly negative", c)
	}
	if c := corrDistanceThroughput(15, WiFi, Downlink); math.Abs(c) > 0.35 {
		t.Fatalf("WiFi downlink corr = %.2f, want negligible", c)
	}
	if c := corrDistanceThroughput(16, LTE, Downlink); math.Abs(c) > 0.35 {
		t.Fatalf("LTE downlink corr = %.2f, want negligible", c)
	}
	if c := corrDistanceThroughput(17, FiveG, Uplink); math.Abs(c) > 0.35 {
		t.Fatalf("5G uplink corr = %.2f, want negligible (TDD cap)", c)
	}
}

func TestFiveGUplinkCapped(t *testing.T) {
	r := rng.New(18)
	p := BuildPath(r, FiveG, EdgeSite, 10)
	for i := 0; i < 500; i++ {
		s := p.SampleThroughput(r, Uplink, 0)
		if s.Mbps > 65 {
			t.Fatalf("5G uplink sample %.0f Mbps above TDD cap", s.Mbps)
		}
	}
}

func TestFiveGDownlinkMean(t *testing.T) {
	// Paper: 5G downlink mean ≈ 497 Mbps near the site.
	r := rng.New(19)
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		p := BuildPath(r, FiveG, EdgeSite, 5)
		sum += p.SampleThroughput(r, Downlink, 1000).Mbps
	}
	mean := sum / n
	if mean < 350 || mean > 650 {
		t.Fatalf("5G downlink mean = %.0f Mbps, want ~497", mean)
	}
}

func TestServerBottleneck(t *testing.T) {
	r := rng.New(20)
	p := BuildPath(r, Wired, EdgeSite, 5)
	s := p.SampleThroughput(r, Downlink, 3)
	if s.Bottleneck != BottleneckServer {
		t.Fatalf("bottleneck = %v, want server", s.Bottleneck)
	}
	if s.Mbps > 3.2 {
		t.Fatalf("throughput %.1f above server allocation", s.Mbps)
	}
}

func TestBottleneckStrings(t *testing.T) {
	if BottleneckAccess.String() != "access" || BottleneckWAN.String() != "wan" || BottleneckServer.String() != "server" {
		t.Fatal("Bottleneck String broken")
	}
	if Downlink.String() != "down" || Uplink.String() != "up" {
		t.Fatal("Direction String broken")
	}
	if EdgeSite.String() != "edge" || CloudSite.String() != "cloud" {
		t.Fatal("SiteClass String broken")
	}
	if HopAccess.String() != "access" || HopAgg.String() != "agg" ||
		HopMetro.String() != "metro" || HopBackbone.String() != "backbone" || HopDC.String() != "dc" {
		t.Fatal("HopKind String broken")
	}
}

func TestLossGrowsWithDistance(t *testing.T) {
	r := rng.New(21)
	near := BuildPath(r, WiFi, EdgeSite, 50)
	far := BuildPath(r, WiFi, CloudSite, 2500)
	if far.LossRate <= near.LossRate {
		t.Fatal("loss should grow with distance/hops")
	}
}
