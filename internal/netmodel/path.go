package netmodel

import (
	"fmt"

	"edgescope/internal/rng"
)

// SiteClass distinguishes the destination datacenter type; it determines the
// provider-internal hop count (cloud DCs have deeper internal fabrics) and
// feeds the hop-count gap of Figure 3.
type SiteClass int

// Destination classes.
const (
	EdgeSite SiteClass = iota
	CloudSite
)

// String returns "edge" or "cloud".
func (c SiteClass) String() string {
	if c == EdgeSite {
		return "edge"
	}
	return "cloud"
}

// HopKind classifies a hop on the user→site path.
type HopKind int

// Hop kinds, ordered from the user outwards.
const (
	HopAccess   HopKind = iota // wireless / local first hop
	HopAgg                     // aggregation (GTP-U tunnel for LTE, UPF for 5G)
	HopMetro                   // metro / ISP core within the city
	HopBackbone                // inter-city backbone
	HopDC                      // provider-internal hops inside the DC
)

// String names the hop kind.
func (k HopKind) String() string {
	switch k {
	case HopAccess:
		return "access"
	case HopAgg:
		return "agg"
	case HopMetro:
		return "metro"
	case HopBackbone:
		return "backbone"
	case HopDC:
		return "dc"
	default:
		return fmt.Sprintf("HopKind(%d)", int(k))
	}
}

// Hop is one hop of a path. BaseRTTMs is its round-trip latency
// contribution; JitterStdMs the standard deviation of per-sample noise it
// adds; Visible whether it responds to TTL-expired probes (traceroute).
type Hop struct {
	Kind        HopKind
	BaseRTTMs   float64
	JitterStdMs float64
	Visible     bool
}

// Path is a modelled route from an end user to a destination site.
type Path struct {
	Access     Access
	Class      SiteClass
	DistanceKm float64
	Hops       []Hop
	// LossRate is the end-to-end packet-loss probability.
	LossRate float64
	// extraJitterStd models transit/peering congestion noise that is not
	// attributable to a single hop. It scales with the base RTT and is much
	// larger for cloud paths (which cross congested transit links) than for
	// edge paths terminating in nearby CDN PoPs — the mechanism behind the
	// ~5× jitter gap of Figure 2b.
	extraJitterStd float64
	// profile snapshot used when the path was built.
	profile AccessProfile
	// kern is the flattened sampling kernel; see finalize.
	kern pathKern
}

// pathKern is the struct-of-arrays view of the hop parameters that the
// sampling kernels walk: a path is built once and sampled many times, so the
// per-hop constants are flattened into dense float64 runs (one cache line
// holds eight hops' bases) and the per-sample invariants (base-RTT sum and
// its 80% truncation floor) are computed once instead of per draw.
type pathKern struct {
	base    []float64
	jitter  []float64
	baseSum float64 // cached BaseRTTMs(), summed in hop order
	floor   float64 // 0.8 * baseSum, SampleRTT's truncation floor
}

// finalize flattens the hop parameters into the sampling kernel. Builders
// call it after the hop slice is complete (and after any post-hoc hop
// adjustments); a Path assembled manually without finalize still samples
// correctly through the slow hop-walking paths.
func (p *Path) finalize() {
	n := len(p.Hops)
	flat := make([]float64, 2*n)
	k := pathKern{base: flat[:n:n], jitter: flat[n:]}
	for i, h := range p.Hops {
		k.base[i] = h.BaseRTTMs
		k.jitter[i] = h.JitterStdMs
		k.baseSum += h.BaseRTTMs
	}
	k.floor = 0.8 * k.baseSum
	p.kern = k
}

// Propagation and router constants calibrated to the paper (Fig 4 slope,
// Table 3 "rest" shares). RTT propagation is ~0.02 ms/km: fibre propagation
// with a typical path-inflation factor over great-circle distance.
const (
	rttPerKm         = 0.020 // ms RTT per km of great-circle distance
	metroHopMs       = 0.6
	backboneRouterMs = 0.45
	dcHopMs          = 0.30
	metroJitterMs    = 0.05
	backboneJitterMs = 0.05
	dcJitterMs       = 0.02
	lossPerBackbone  = 8e-7
	lossPerKm        = 1.5e-9
	lossBase         = 3e-7
	// Relative congestion-jitter factors (fraction of base RTT).
	edgeJitterFactor  = 0.008
	cloudJitterFactor = 0.045
)

// BuildPath constructs a path from a user to a site of the given class at
// the given great-circle distance, drawing per-path parameters from r.
// The same Path is then sampled many times (SampleRTT) to model repeated
// pings over a stable route.
func BuildPath(r *rng.Source, access Access, class SiteClass, distKm float64) *Path {
	if distKm < 0 {
		panic("netmodel: negative distance")
	}
	p := ProfileFor(access)
	var hops []Hop

	hops = append(hops, Hop{
		Kind:        HopAccess,
		BaseRTTMs:   r.LogNormalMeanMedian(p.AccessHopMs, p.AccessHopSigma),
		JitterStdMs: p.AccessJitterMs,
		Visible:     p.AccessVisible,
	})
	hops = append(hops, Hop{
		Kind:        HopAgg,
		BaseRTTMs:   r.LogNormalMeanMedian(p.AggHopMs, p.AggHopSigma),
		JitterStdMs: p.AggJitterMs,
		Visible:     p.AggVisible,
	})

	// Metro hops: traffic always crosses the ISP's in-city core (the paper
	// notes NEP has "not generally sunk into cellular core networks").
	nMetro := 2 + r.IntN(2)
	for i := 0; i < nMetro; i++ {
		hops = append(hops, Hop{
			Kind:        HopMetro,
			BaseRTTMs:   r.LogNormalMeanMedian(metroHopMs, 0.4),
			JitterStdMs: metroJitterMs,
			Visible:     true,
		})
	}

	// Backbone hops: only when leaving the metro area. Hop count grows with
	// distance; propagation delay is spread across the backbone hops.
	nBackbone := 0
	if distKm > 30 {
		nBackbone = 2 + int(distKm/350) + r.IntN(2)
		if nBackbone > 9 {
			nBackbone = 9
		}
	}
	prop := rttPerKm * distKm
	for i := 0; i < nBackbone; i++ {
		base := r.LogNormalMeanMedian(backboneRouterMs, 0.4) + prop/float64(nBackbone)
		hops = append(hops, Hop{
			Kind:        HopBackbone,
			BaseRTTMs:   base,
			JitterStdMs: backboneJitterMs,
			Visible:     true,
		})
	}
	if nBackbone == 0 && distKm > 0 {
		// Co-located: attribute residual propagation to the last metro hop.
		hops[len(hops)-1].BaseRTTMs += prop
	}

	// Provider-internal hops: clouds have deeper DC fabrics than the micro
	// datacenters of the edge platform.
	nDC := 1
	if class == CloudSite {
		nDC = 3 + r.IntN(2)
	}
	for i := 0; i < nDC; i++ {
		hops = append(hops, Hop{
			Kind:        HopDC,
			BaseRTTMs:   r.LogNormalMeanMedian(dcHopMs, 0.3),
			JitterStdMs: dcJitterMs,
			Visible:     true,
		})
	}

	loss := lossBase + p.ExtraLoss + float64(nBackbone)*lossPerBackbone + distKm*lossPerKm
	path := &Path{
		Access:     access,
		Class:      class,
		DistanceKm: distKm,
		Hops:       hops,
		LossRate:   loss,
		profile:    p,
	}
	factor := edgeJitterFactor
	if class == CloudSite {
		factor = cloudJitterFactor
	}
	path.extraJitterStd = factor * path.BaseRTTMs()
	path.finalize()
	return path
}

// HopCount returns the total number of hops on the path.
func (p *Path) HopCount() int { return len(p.Hops) }

// BaseRTTMs returns the deterministic component of the path RTT.
func (p *Path) BaseRTTMs() float64 {
	if p.kern.base != nil {
		return p.kern.baseSum
	}
	var t float64
	for _, h := range p.Hops {
		t += h.BaseRTTMs
	}
	return t
}

// SampleRTT draws one end-to-end RTT sample in milliseconds: the base RTT
// plus independent per-hop jitter (truncated so the sample never drops below
// 80% of base, as queueing can only add delay beyond serialisation variance).
func (p *Path) SampleRTT(r *rng.Source) float64 {
	if p.kern.base == nil {
		return p.sampleRTTSlow(r)
	}
	rtt := r.Normal(0, p.extraJitterStd)
	base, jitter := p.kern.base, p.kern.jitter
	for i, b := range base {
		rtt += b + r.Normal(0, jitter[i])
	}
	if rtt < p.kern.floor {
		rtt = p.kern.floor
	}
	return rtt
}

// sampleRTTSlow is the hop-walking fallback for paths assembled without
// finalize (e.g. struct literals in tests). Same draws, same arithmetic.
func (p *Path) sampleRTTSlow(r *rng.Source) float64 {
	rtt := r.Normal(0, p.extraJitterStd)
	for _, h := range p.Hops {
		rtt += h.BaseRTTMs + r.Normal(0, h.JitterStdMs)
	}
	if floor := 0.8 * p.BaseRTTMs(); rtt < floor {
		rtt = floor
	}
	return rtt
}

// SampleRTTs fills dst with len(dst) end-to-end RTT samples. It is the
// batched form of SampleRTT: draw-for-draw identical to len(dst) sequential
// SampleRTT calls (probe-major order — all of sample i's per-hop draws
// before any of sample i+1's), with the per-sample overheads (field loads,
// kernel lookups) hoisted out of the loop.
func (p *Path) SampleRTTs(r *rng.Source, dst []float64) {
	if p.kern.base == nil {
		for i := range dst {
			dst[i] = p.sampleRTTSlow(r)
		}
		return
	}
	base, jitter := p.kern.base, p.kern.jitter
	extra, floor := p.extraJitterStd, p.kern.floor
	for i := range dst {
		rtt := r.Normal(0, extra)
		for k, b := range base {
			rtt += b + r.Normal(0, jitter[k])
		}
		if rtt < floor {
			rtt = floor
		}
		dst[i] = rtt
	}
}

// HopRTTs returns per-hop cumulative RTTs as a TTL-walking traceroute would
// observe them: entry i is the RTT to hop i, or NaN-like -1 when the hop does
// not answer TTL-expired probes (e.g. the first 5G hops).
func (p *Path) HopRTTs(r *rng.Source) []float64 {
	out := make([]float64, len(p.Hops))
	p.HopRTTsInto(r, out)
	return out
}

// HopRTTsInto is HopRTTs writing into a caller-owned buffer (len(dst) must
// be HopCount()): identical draws and values, no allocation.
func (p *Path) HopRTTsInto(r *rng.Source, dst []float64) {
	if len(dst) != len(p.Hops) {
		panic("netmodel: HopRTTsInto buffer length must equal HopCount")
	}
	// Hop visibility is only consulted here (the cold traceroute path), so
	// it stays on the Hops slice rather than costing the kernel a column.
	if p.kern.base == nil {
		var cum float64
		for i, h := range p.Hops {
			cum += h.BaseRTTMs + r.Normal(0, h.JitterStdMs)
			if h.Visible {
				dst[i] = cum
			} else {
				dst[i] = -1
			}
		}
		return
	}
	base, jitter := p.kern.base, p.kern.jitter
	var cum float64
	for i, b := range base {
		cum += b + r.Normal(0, jitter[i])
		if p.Hops[i].Visible {
			dst[i] = cum
		} else {
			dst[i] = -1
		}
	}
}

// HopShare returns the fraction of the base RTT contributed by the 1st, 2nd,
// 3rd hop and the rest, matching the breakdown of Table 3.
func (p *Path) HopShare() (h1, h2, h3, rest float64) {
	total := p.BaseRTTMs()
	if total == 0 {
		return 0, 0, 0, 0
	}
	for i, h := range p.Hops {
		switch i {
		case 0:
			h1 = h.BaseRTTMs / total
		case 1:
			h2 = h.BaseRTTMs / total
		case 2:
			h3 = h.BaseRTTMs / total
		default:
			rest += h.BaseRTTMs / total
		}
	}
	return h1, h2, h3, rest
}
