package faultinject

import (
	"bytes"
	"reflect"
	"testing"

	"edgescope/internal/scenario"
)

// run pushes n synthetic events through an injector, collecting deliveries.
func run(inj *Injector[int], n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		inj.Offer(i, i%4, func(v int) bool { out = append(out, v); return true })
	}
	inj.Drain(func(v int) bool { out = append(out, v); return true })
	return out
}

func TestInactivePlanIsIdentity(t *testing.T) {
	for _, spec := range []*scenario.FaultSpec{nil, {}} {
		inj := New[int](spec, 1)
		got := run(inj, 100)
		if len(got) != 100 {
			t.Fatalf("inactive plan changed delivery count: %d", len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("inactive plan reordered: got[%d] = %d", i, v)
			}
		}
		if len(inj.Trace()) != 0 {
			t.Fatalf("inactive plan produced a trace: %v", inj.Trace())
		}
	}
}

func TestSameSeedSameTrace(t *testing.T) {
	spec := &scenario.FaultSpec{Drop: 0.05, Duplicate: 0.05, Reorder: 0.05, ShardStall: 0.01}
	a := New[int](spec, 42)
	b := New[int](spec, 42)
	run(a, 2000)
	run(b, 2000)
	ta, tb := a.Trace(), b.Trace()
	if len(ta) == 0 {
		t.Fatal("plan injected nothing at these rates")
	}
	if !reflect.DeepEqual(ta, tb) {
		t.Fatalf("same seed diverged: %d vs %d entries", len(ta), len(tb))
	}
	c := New[int](spec, 43)
	run(c, 2000)
	if reflect.DeepEqual(ta, c.Trace()) {
		t.Fatal("different seeds produced identical traces")
	}
	// The spec's own Seed pins the trace regardless of the scenario seed.
	pinned := *spec
	pinned.Seed = 42
	d := New[int](&pinned, 99)
	run(d, 2000)
	if !reflect.DeepEqual(ta, d.Trace()) {
		t.Fatal("FaultSpec.Seed did not override the scenario seed")
	}
}

func TestDropLosesEvents(t *testing.T) {
	inj := New[int](&scenario.FaultSpec{Drop: 1}, 1)
	if got := run(inj, 50); len(got) != 0 {
		t.Fatalf("drop=1 delivered %d events", len(got))
	}
	if st := inj.Stats(); st.Dropped != 50 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	inj := New[int](&scenario.FaultSpec{Duplicate: 1}, 1)
	if got := run(inj, 50); len(got) != 100 {
		t.Fatalf("duplicate=1 delivered %d events, want 100", len(got))
	}
}

func TestReorderHoldsBackAndRedelivers(t *testing.T) {
	inj := New[int](&scenario.FaultSpec{Reorder: 0.3, ReorderSpan: 5}, 7)
	got := run(inj, 500)
	if len(got) != 500 {
		t.Fatalf("reorder lost events: %d of 500", len(got))
	}
	seen := make([]bool, 500)
	displaced := 0
	for i, v := range got {
		if seen[v] {
			t.Fatalf("event %d delivered twice", v)
		}
		seen[v] = true
		if i != v {
			displaced++
		}
	}
	if displaced == 0 {
		t.Fatal("reorder=0.3 displaced nothing")
	}
}

func TestShardStallRefusesShard(t *testing.T) {
	inj := New[int](&scenario.FaultSpec{ShardStall: 1, StallSpan: 1 << 30}, 1)
	okShard0 := 0
	for i := 0; i < 100; i++ {
		if inj.Offer(i, 0, func(int) bool { return true }) {
			okShard0++
		}
	}
	if okShard0 != 0 {
		t.Fatalf("stalled shard accepted %d offers", okShard0)
	}
	if st := inj.Stats(); st.Stalled != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHeldRedeliveryRefusedCounted: Offer already answered true for a
// held-back event, so a refused redelivery (hard-full queue, shed) is real
// loss — it must surface in Stats.HeldLost, never vanish.
func TestHeldRedeliveryRefusedCounted(t *testing.T) {
	inj := New[int](&scenario.FaultSpec{Reorder: 1, ReorderSpan: 2}, 1)
	refuse := func(int) bool { return false }
	for i := 0; i < 10; i++ {
		if !inj.Offer(i, 0, refuse) {
			t.Fatalf("hold-back offer %d not acknowledged", i)
		}
	}
	inj.Drain(refuse)
	st := inj.Stats()
	if st.Reordered != 10 {
		t.Fatalf("stats = %+v, want 10 reordered", st)
	}
	if st.HeldLost != 10 {
		t.Fatalf("HeldLost = %d, want 10 (every redelivery refused)", st.HeldLost)
	}
	// Accepted redeliveries count nothing.
	ok := New[int](&scenario.FaultSpec{Reorder: 1, ReorderSpan: 2}, 1)
	if got := run(ok, 10); len(got) != 10 {
		t.Fatalf("lossless redelivery delivered %d of 10", len(got))
	}
	if st := ok.Stats(); st.HeldLost != 0 {
		t.Fatalf("HeldLost = %d on an accepting receiver", st.HeldLost)
	}
}

func TestShortWriteCutsAndErrors(t *testing.T) {
	inj := New[int](&scenario.FaultSpec{ShortWrite: 1}, 1)
	var sink bytes.Buffer
	w := inj.WrapWriter()(0, &sink)
	n, err := w.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("short write did not error")
	}
	if n != 5 || sink.String() != "01234" {
		t.Fatalf("wrote %d bytes (%q), want half", n, sink.String())
	}
	if st := inj.Stats(); st.ShortWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Zero rate wraps nothing: the writer passes through untouched.
	clean := New[int](&scenario.FaultSpec{Drop: 0.5}, 1)
	var direct bytes.Buffer
	if w := clean.WrapWriter()(0, &direct); w != &direct {
		t.Fatal("zero short-write rate still wrapped the writer")
	}
}
