package faultinject

import (
	"reflect"
	"testing"

	"edgescope/internal/scenario"
)

// nodeHarness drives a NodeInjector over a synthetic cluster of delivery
// counters, recording crash/restart hook calls.
type nodeHarness struct {
	delivered map[string]int
	crashes   []string
	restarts  []string
	up        map[string]bool
}

func newNodeHarness(nodes ...string) *nodeHarness {
	h := &nodeHarness{delivered: map[string]int{}, up: map[string]bool{}}
	for _, n := range nodes {
		h.up[n] = true
	}
	return h
}

func (h *nodeHarness) hooks() NodeHooks {
	return NodeHooks{
		Crash:   func(n string) { h.crashes = append(h.crashes, n); h.up[n] = false },
		Restart: func(n string) { h.restarts = append(h.restarts, n); h.up[n] = true },
	}
}

func (h *nodeHarness) run(inj *NodeInjector, sends int) {
	nodes := []string{"n0", "n1", "n2"}
	for i := 0; i < sends; i++ {
		node := nodes[i%len(nodes)]
		inj.Send(node, func() bool {
			if !h.up[node] {
				// A crashed node must never see a delivery: the injector
				// refuses before deliver runs.
				panic("delivered to crashed node " + node)
			}
			h.delivered[node]++
			return true
		})
	}
}

func TestNodeInjectorInactiveDeliversEverything(t *testing.T) {
	h := newNodeHarness("n0", "n1", "n2")
	inj := NewNode(&scenario.FaultSpec{}, 7, h.hooks())
	h.run(inj, 300)
	st := inj.Stats()
	if st.Offered != 300 || st.Refused != 0 || st.Crashes != 0 {
		t.Fatalf("inactive plan interfered: %+v", st)
	}
	if total := h.delivered["n0"] + h.delivered["n1"] + h.delivered["n2"]; total != 300 {
		t.Fatalf("delivered %d of 300", total)
	}
	if len(inj.Trace()) != 0 {
		t.Fatal("inactive plan produced a trace")
	}
}

func TestNodeInjectorCrashRefusesThenRestarts(t *testing.T) {
	h := newNodeHarness("n0", "n1", "n2")
	spec := &scenario.FaultSpec{NodeCrash: 0.01, NodeCrashSpan: 30}
	inj := NewNode(spec, 42, h.hooks())
	h.run(inj, 2000)
	inj.RecoverAll()
	st := inj.Stats()
	if st.Crashes == 0 {
		t.Fatalf("no crashes injected: %+v", st)
	}
	if st.Refused == 0 {
		t.Fatalf("crashes refused no sends: %+v", st)
	}
	if st.Restarts != st.Crashes {
		t.Fatalf("crashes %d != restarts %d after RecoverAll", st.Crashes, st.Restarts)
	}
	if len(h.crashes) != int(st.Crashes) || len(h.restarts) != int(st.Restarts) {
		t.Fatalf("hooks fired %d/%d times, stats say %d/%d",
			len(h.crashes), len(h.restarts), st.Crashes, st.Restarts)
	}
	for n, up := range h.up {
		if !up {
			t.Fatalf("node %s still down after RecoverAll", n)
		}
	}
}

func TestNodeInjectorDeterministicTrace(t *testing.T) {
	spec := &scenario.FaultSpec{NodeCrash: 0.005, NodeStall: 0.01, NetPartition: 0.01}
	var traces [2][]TraceEntry
	var stats [2]NodeStats
	for i := range traces {
		h := newNodeHarness("n0", "n1", "n2")
		inj := NewNode(spec, 99, h.hooks())
		h.run(inj, 3000)
		inj.RecoverAll()
		traces[i] = inj.Trace()
		stats[i] = inj.Stats()
	}
	if len(traces[0]) == 0 {
		t.Fatal("plan injected nothing")
	}
	if !reflect.DeepEqual(traces[0], traces[1]) {
		t.Fatalf("same seed produced different traces: %d vs %d entries", len(traces[0]), len(traces[1]))
	}
	if stats[0] != stats[1] {
		t.Fatalf("same seed produced different stats: %+v vs %+v", stats[0], stats[1])
	}
	if stats[0].Stalls == 0 || stats[0].Partitions == 0 || stats[0].Crashes == 0 {
		t.Fatalf("not every fault kind fired: %+v", stats[0])
	}
}

func TestNodeInjectorBlockedTracksOutage(t *testing.T) {
	h := newNodeHarness("n0")
	// Rate 1: the very first send crashes its target.
	inj := NewNode(&scenario.FaultSpec{NodeCrash: 1, NodeCrashSpan: 5}, 1, h.hooks())
	if inj.Send("n0", func() bool { t.Fatal("delivered through a crash"); return true }) {
		t.Fatal("crash trigger reported success")
	}
	if !inj.Blocked("n0") {
		t.Fatal("crashed node not Blocked")
	}
	if inj.Blocked("n-other") {
		t.Fatal("healthy node Blocked")
	}
	// NodeCrash=1 would immediately re-crash a recovered node on the next
	// draw; the refusal path must not draw at all while the outage holds.
	for i := 0; i < 3; i++ {
		if inj.Send("n0", func() bool { return true }) {
			t.Fatal("send succeeded inside outage window")
		}
	}
	if got := inj.Stats().Crashes; got != 1 {
		t.Fatalf("outage window drew again: %d crashes", got)
	}
}
