package faultinject

import (
	"sort"
	"sync"

	"edgescope/internal/rng"
	"edgescope/internal/scenario"
)

// Node-level fault kinds, as recorded in the trace.
const (
	KindNodeCrash    = "node_crash"
	KindNodeStall    = "node_stall"
	KindNetPartition = "net_partition"
	KindNodeRestart  = "node_restart"
)

// Default outage spans applied when a node-fault rate is set but its span
// is zero.
const (
	defaultNodeCrashSpan    = 64
	defaultNodeStallSpan    = 32
	defaultNetPartitionSpan = 64
)

// NodeStats counts injected node-level faults.
type NodeStats struct {
	Offered    uint64 `json:"offered"`
	Crashes    uint64 `json:"crashes"`
	Restarts   uint64 `json:"restarts"`
	Stalls     uint64 `json:"stalls"`
	Partitions uint64 `json:"partitions"`
	// Refused counts sends rejected because the target node was inside an
	// outage window (crashed, stalled or partitioned) — the failures a
	// retrying router must absorb.
	Refused uint64 `json:"refused"`
}

// NodeHooks connect the injector to the cluster under test. Both hooks run
// synchronously inside Send, on the sender's goroutine.
type NodeHooks struct {
	// Crash hard-kills a node — the SIGKILL double: in-memory state and
	// unsynced WAL bytes are gone; only what the node fsynced survives.
	Crash func(node string)
	// Restart brings a crashed node back (WAL/snapshot recovery). Called
	// once the outage span has elapsed, before the triggering delivery.
	Restart func(node string)
}

// outage is one node's current fault window.
type outage struct {
	kind  string
	until uint64 // first event index at which the node is back
}

// NodeInjector applies a fault plan's node-level faults (crash, stall,
// network partition) to a cluster transport. Where Injector shakes the
// *event stream*, NodeInjector shakes the *membership*: a faulted node
// refuses every send for a span of events, and a crashed one additionally
// loses unsynced state through the Crash hook and comes back through
// Restart — the deterministic, event-counted double of kill -9 plus
// supervised restart.
//
// Send must be called from a single goroutine (the routing client);
// Blocked and the accessors may be called from others (a health prober).
// The same determinism contract as Injector holds: one seed pins the whole
// fault trace, and spans are event counts, so tests replay exactly with no
// clock anywhere.
type NodeInjector struct {
	spec   scenario.FaultSpec
	src    *rng.Source
	active bool
	hooks  NodeHooks

	idx uint64 // events offered so far (Send calls)

	mu      sync.Mutex
	outages map[string]outage
	trace   []TraceEntry
	stats   NodeStats
}

// NewNode builds a node-level injector for a fault plan. scenarioSeed seeds
// the draw stream when the plan does not pin its own Seed; the stream is
// forked under "faultinject-node", independent of the event-level
// injector's fork, so the two planes can shake one run without perturbing
// each other's draws. A plan with no node-level rates (NodeActive false)
// injects nothing and draws nothing.
func NewNode(spec *scenario.FaultSpec, scenarioSeed uint64, hooks NodeHooks) *NodeInjector {
	inj := &NodeInjector{outages: map[string]outage{}, hooks: hooks}
	if spec != nil {
		inj.spec = *spec
	}
	inj.active = spec.NodeActive()
	seed := inj.spec.Seed
	if seed == 0 {
		seed = scenarioSeed
	}
	if inj.active {
		inj.src = rng.New(seed).Fork("faultinject-node")
	}
	if inj.spec.NodeCrashSpan == 0 {
		inj.spec.NodeCrashSpan = defaultNodeCrashSpan
	}
	if inj.spec.NodeStallSpan == 0 {
		inj.spec.NodeStallSpan = defaultNodeStallSpan
	}
	if inj.spec.NetPartitionSpan == 0 {
		inj.spec.NetPartitionSpan = defaultNetPartitionSpan
	}
	return inj
}

// Send passes one delivery to node through the fault plan. deliver performs
// the real send; it runs exactly once unless the node is inside an outage
// window or becomes the trigger of a new one (then it is skipped and Send
// returns false, the router's cue to retry or fail over). A crash trigger
// fires hooks.Crash before refusing; an elapsed crash window fires
// hooks.Restart before the delivery is attempted.
func (inj *NodeInjector) Send(node string, deliver func() bool) bool {
	idx := inj.idx
	inj.idx++
	inj.recoverElapsed(idx)
	if !inj.active {
		inj.mu.Lock()
		inj.stats.Offered++
		inj.mu.Unlock()
		return deliver()
	}
	inj.mu.Lock()
	inj.stats.Offered++
	o, down := inj.outages[node]
	inj.mu.Unlock()
	if down && idx < o.until {
		inj.mu.Lock()
		inj.stats.Refused++
		inj.mu.Unlock()
		return false
	}

	// One fixed draw order per send — crash, stall, partition — with
	// zero-rate kinds skipped entirely, so a plan's draw sequence (and its
	// trace) depends only on the rates it sets.
	if inj.spec.NodeCrash > 0 && inj.src.Bernoulli(inj.spec.NodeCrash) {
		span := inj.spec.NodeCrashSpan
		inj.record(TraceEntry{Event: idx, Kind: KindNodeCrash, Span: span, Node: node}, &inj.stats.Crashes)
		inj.setOutage(node, outage{kind: KindNodeCrash, until: idx + uint64(span)})
		if inj.hooks.Crash != nil {
			inj.hooks.Crash(node)
		}
		return false
	}
	if inj.spec.NodeStall > 0 && inj.src.Bernoulli(inj.spec.NodeStall) {
		span := inj.spec.NodeStallSpan
		inj.record(TraceEntry{Event: idx, Kind: KindNodeStall, Span: span, Node: node}, &inj.stats.Stalls)
		inj.setOutage(node, outage{kind: KindNodeStall, until: idx + uint64(span)})
		return false
	}
	if inj.spec.NetPartition > 0 && inj.src.Bernoulli(inj.spec.NetPartition) {
		span := inj.spec.NetPartitionSpan
		inj.record(TraceEntry{Event: idx, Kind: KindNetPartition, Span: span, Node: node}, &inj.stats.Partitions)
		inj.setOutage(node, outage{kind: KindNetPartition, until: idx + uint64(span)})
		return false
	}
	return deliver()
}

// recoverElapsed closes every outage whose span has passed, restarting
// crashed nodes. Nodes are visited in sorted order so the restart sequence
// (hooks and trace) is deterministic even when several windows expire on
// the same event.
func (inj *NodeInjector) recoverElapsed(idx uint64) {
	inj.mu.Lock()
	var expired []string
	for node, o := range inj.outages {
		if o.until <= idx {
			expired = append(expired, node)
		}
	}
	sort.Strings(expired)
	inj.mu.Unlock()
	for _, node := range expired {
		inj.mu.Lock()
		o := inj.outages[node]
		delete(inj.outages, node)
		inj.mu.Unlock()
		if o.kind == KindNodeCrash {
			if inj.hooks.Restart != nil {
				inj.hooks.Restart(node)
			}
			inj.record(TraceEntry{Event: idx, Kind: KindNodeRestart, Node: node}, &inj.stats.Restarts)
		}
	}
}

// RecoverAll force-expires every outstanding outage, restarting crashed
// nodes — the chaos harness's end-of-run settling step, so a stream that
// ends mid-outage still converges to a fully-recovered cluster.
func (inj *NodeInjector) RecoverAll() {
	inj.recoverElapsed(^uint64(0))
}

// Blocked reports whether a send to node would currently be refused — the
// seam for wiring a health prober through the same partition the router
// experiences. It consults outage state without advancing the event clock,
// so probing never perturbs the fault plan.
func (inj *NodeInjector) Blocked(node string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	o, down := inj.outages[node]
	return down && inj.idx < o.until
}

// setOutage records a node's fault window.
func (inj *NodeInjector) setOutage(node string, o outage) {
	inj.mu.Lock()
	inj.outages[node] = o
	inj.mu.Unlock()
}

// record appends a trace entry and bumps its counter.
func (inj *NodeInjector) record(t TraceEntry, n *uint64) {
	inj.mu.Lock()
	inj.trace = append(inj.trace, t)
	*n++
	inj.mu.Unlock()
}

// Trace returns a copy of the node-fault trace so far, in injection order.
func (inj *NodeInjector) Trace() []TraceEntry {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]TraceEntry, len(inj.trace))
	copy(out, inj.trace)
	return out
}

// Stats returns a copy of the node-fault counters.
func (inj *NodeInjector) Stats() NodeStats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}
