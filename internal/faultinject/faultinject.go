// Package faultinject is edgescope's deterministic chaos harness for the
// telemetry ingest path. An Injector wraps an offer function with a
// seed-driven fault plan (scenario.FaultSpec): events are dropped,
// duplicated, held back and re-delivered out of order, or refused wholesale
// while a shard "stalls"; a companion io.Writer wrapper cuts WAL writes
// short to forge torn tails. Every fault is decided by a deterministic draw
// sequence over an rng.Source, so one seed pins the complete fault trace —
// the chaos tests assert byte-identical query answers against a clean run
// AND byte-identical traces across reruns.
//
// The injector deliberately lives outside internal/telemetry and speaks a
// type parameter instead of Envelope: the production ingest path never
// imports its own chaos harness, and the same machinery can shake any
// ordered event stream.
//
// Faults are expressed in event counts, not wall time: a "delay" holds an
// event until N later events have passed it, a "stall" refuses offers for N
// events. Tests therefore run at full speed and replays are exact — there
// is no clock anywhere in the plan.
package faultinject

import (
	"fmt"
	"io"
	"sync"

	"edgescope/internal/rng"
	"edgescope/internal/scenario"
)

// Fault kinds as recorded in the trace.
const (
	KindDrop       = "drop"
	KindDuplicate  = "duplicate"
	KindReorder    = "reorder"
	KindDelay      = "delay"
	KindStall      = "stall"
	KindShortWrite = "short_write"
)

// Default spans applied when a rate is set but its span is zero.
const (
	defaultReorderSpan = 4
	defaultDelaySpan   = 16
	defaultStallSpan   = 32
)

// TraceEntry records one injected fault. Stall entries mark the trigger
// event; the refusals during the stall window are counted, not traced.
// Node is set by the node-level injector (NodeInjector), Shard by the
// event-level one — the trace schema is shared so a chaos run's full fault
// story lands in one stream.
type TraceEntry struct {
	Event uint64 `json:"event"`          // ordinal of the offered event (0-based)
	Kind  string `json:"kind"`           // one of the Kind constants
	Span  int    `json:"span,omitempty"` // hold-back / stall / outage length in events
	Shard int    `json:"shard,omitempty"`
	Node  string `json:"node,omitempty"`
}

func (t TraceEntry) String() string {
	if t.Node != "" {
		return fmt.Sprintf("#%d %s span=%d node=%s", t.Event, t.Kind, t.Span, t.Node)
	}
	return fmt.Sprintf("#%d %s span=%d shard=%d", t.Event, t.Kind, t.Span, t.Shard)
}

// Stats counts injected faults by kind.
type Stats struct {
	Offered     uint64 `json:"offered"`
	Dropped     uint64 `json:"dropped"`
	Duplicated  uint64 `json:"duplicated"`
	Reordered   uint64 `json:"reordered"`
	Delayed     uint64 `json:"delayed"`
	Stalled     uint64 `json:"stalled"` // offers refused inside stall windows
	ShortWrites uint64 `json:"short_writes"`
	// HeldLost counts held-back (reorder/delay) events whose redelivery the
	// receiver refused (hard-full queue, shed). Offer already answered true
	// for these, so a nonzero count is real silent loss the hold-back path
	// caused — harnesses should assert it stays zero.
	HeldLost uint64 `json:"held_lost,omitempty"`
}

// held is an event in flight: taken out of order, re-delivered once the
// offered-event counter passes release.
type held[E any] struct {
	e       E
	release uint64
}

// Injector applies one fault plan to an event stream. Offer must be called
// from a single goroutine (the ingest client); the WrapWriter wrappers may
// run concurrently on shard workers — they draw from independent per-shard
// forks and share only the mutex-guarded trace.
type Injector[E any] struct {
	spec   scenario.FaultSpec
	src    *rng.Source
	active bool
	seed   uint64

	idx   uint64 // events offered so far
	held  []held[E]
	stall map[int]uint64 // shard → event index at which it recovers

	mu    sync.Mutex // guards trace+stats (shared with writer wrappers)
	trace []TraceEntry
	stats Stats
}

// New builds an injector for a fault plan. scenarioSeed seeds the draw
// stream when the plan does not pin its own Seed; the stream is forked
// under "faultinject" so the fault plan never perturbs the scenario's other
// substreams. A nil/zero-rate spec is valid and injects nothing — and draws
// nothing, so wiring an inactive injector through a pipeline leaves every
// byte of its output unchanged.
func New[E any](spec *scenario.FaultSpec, scenarioSeed uint64) *Injector[E] {
	inj := &Injector[E]{stall: map[int]uint64{}}
	if spec != nil {
		inj.spec = *spec
	}
	inj.active = spec.Active()
	inj.seed = inj.spec.Seed
	if inj.seed == 0 {
		inj.seed = scenarioSeed
	}
	if inj.active {
		inj.src = rng.New(inj.seed).Fork("faultinject")
	}
	if inj.spec.ReorderSpan == 0 {
		inj.spec.ReorderSpan = defaultReorderSpan
	}
	if inj.spec.DelaySpan == 0 {
		inj.spec.DelaySpan = defaultDelaySpan
	}
	if inj.spec.StallSpan == 0 {
		inj.spec.StallSpan = defaultStallSpan
	}
	return inj
}

// record appends a trace entry and bumps its counter.
func (inj *Injector[E]) record(t TraceEntry, n *uint64) {
	inj.mu.Lock()
	inj.trace = append(inj.trace, t)
	*n++
	inj.mu.Unlock()
}

// Offer passes one event through the fault plan. deliver is the real send
// (e.g. Ingestor.Offer bound to the event); it may be invoked zero times
// (drop, hold-back), once, or twice (duplicate) — and held-back events are
// delivered during later Offer calls, after their span of successors.
//
// The return value is what the *client* observes: false means the send
// visibly failed (dropped, or the event's shard is stalled) and a retrying
// client should resend; true means the send was accepted — even when the
// plan is still holding the event, because a real network loses and delays
// silently, not with an error. shard routes stall faults; pass 0 when
// sharding is not meaningful.
func (inj *Injector[E]) Offer(e E, shard int, deliver func(E) bool) bool {
	idx := inj.idx
	inj.idx++
	inj.flushHeld(deliver)
	if !inj.active {
		inj.mu.Lock()
		inj.stats.Offered++
		inj.mu.Unlock()
		return deliver(e)
	}
	inj.mu.Lock()
	inj.stats.Offered++
	inj.mu.Unlock()

	// One fixed draw order per event — drop, duplicate, reorder, delay,
	// stall — with zero-rate kinds skipped entirely, so a plan's draw
	// sequence (and therefore its whole trace) depends only on the rates it
	// actually sets.
	if until, ok := inj.stall[shard]; ok {
		if idx < until {
			inj.mu.Lock()
			inj.stats.Stalled++
			inj.mu.Unlock()
			return false
		}
		delete(inj.stall, shard)
	}
	if inj.spec.Drop > 0 && inj.src.Bernoulli(inj.spec.Drop) {
		inj.record(TraceEntry{Event: idx, Kind: KindDrop, Shard: shard}, &inj.stats.Dropped)
		return false
	}
	if inj.spec.Duplicate > 0 && inj.src.Bernoulli(inj.spec.Duplicate) {
		inj.record(TraceEntry{Event: idx, Kind: KindDuplicate, Shard: shard}, &inj.stats.Duplicated)
		deliver(e)
		return deliver(e)
	}
	if inj.spec.Reorder > 0 && inj.src.Bernoulli(inj.spec.Reorder) {
		inj.record(TraceEntry{Event: idx, Kind: KindReorder, Span: inj.spec.ReorderSpan, Shard: shard}, &inj.stats.Reordered)
		inj.held = append(inj.held, held[E]{e: e, release: idx + uint64(inj.spec.ReorderSpan)})
		return true
	}
	if inj.spec.Delay > 0 && inj.src.Bernoulli(inj.spec.Delay) {
		inj.record(TraceEntry{Event: idx, Kind: KindDelay, Span: inj.spec.DelaySpan, Shard: shard}, &inj.stats.Delayed)
		inj.held = append(inj.held, held[E]{e: e, release: idx + uint64(inj.spec.DelaySpan)})
		return true
	}
	if inj.spec.ShardStall > 0 && inj.src.Bernoulli(inj.spec.ShardStall) {
		inj.record(TraceEntry{Event: idx, Kind: KindStall, Span: inj.spec.StallSpan, Shard: shard}, &inj.stats.Stalled)
		inj.stall[shard] = idx + uint64(inj.spec.StallSpan)
		// The trigger event itself is the stall's first casualty.
		return false
	}
	return deliver(e)
}

// flushHeld re-delivers held-back events whose span has elapsed. The
// original Offer already answered true for these, so a refused redelivery
// is silent loss — counted in Stats.HeldLost, never ignored.
func (inj *Injector[E]) flushHeld(deliver func(E) bool) {
	if len(inj.held) == 0 {
		return
	}
	kept := inj.held[:0]
	for _, h := range inj.held {
		if h.release <= inj.idx {
			inj.redeliver(h.e, deliver)
		} else {
			kept = append(kept, h)
		}
	}
	inj.held = kept
}

// redeliver hands a held event back to the receiver, counting a refusal.
func (inj *Injector[E]) redeliver(e E, deliver func(E) bool) {
	if !deliver(e) {
		inj.mu.Lock()
		inj.stats.HeldLost++
		inj.mu.Unlock()
	}
}

// Drain delivers every still-held event, in hold order. Call after the last
// Offer so no event is lost to an expiring test: hold-back faults delay,
// they never drop — but the receiver can still refuse a redelivery, and
// those refusals surface in Stats.HeldLost rather than vanishing.
func (inj *Injector[E]) Drain(deliver func(E) bool) {
	for _, h := range inj.held {
		inj.redeliver(h.e, deliver)
	}
	inj.held = inj.held[:0]
}

// Trace returns a copy of the fault trace so far, in injection order.
func (inj *Injector[E]) Trace() []TraceEntry {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]TraceEntry, len(inj.trace))
	copy(out, inj.trace)
	return out
}

// Stats returns a copy of the fault counters.
func (inj *Injector[E]) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// WrapWriter returns a telemetry WALConfig.WrapWriter-shaped hook that cuts
// writes short with the plan's ShortWrite rate. Each shard's wrapper draws
// from its own fork of the plan seed, so shard workers never contend on one
// stream and each shard's fault sequence is individually reproducible. A
// zero rate returns writers untouched.
func (inj *Injector[E]) WrapWriter() func(shard int, w io.Writer) io.Writer {
	return func(shard int, w io.Writer) io.Writer {
		if inj.spec.ShortWrite <= 0 {
			return w
		}
		return &shortWriter{
			inj:   inj,
			shard: shard,
			src:   rng.New(inj.seed).Fork(fmt.Sprintf("shortwrite-%d", shard)),
			rate:  inj.spec.ShortWrite,
			w:     w,
		}
	}
}

// shortWriter truncates a faulted Write partway through and reports an
// error — the footprint of a crash landing mid-write. The telemetry WAL
// reacts by degrading that shard to memory-only; recovery later finds the
// torn tail and truncates it.
type shortWriter struct {
	inj interface {
		recordShortWrite(shard int)
	}
	shard int
	src   *rng.Source
	rate  float64
	w     io.Writer
}

func (inj *Injector[E]) recordShortWrite(shard int) {
	inj.mu.Lock()
	inj.trace = append(inj.trace, TraceEntry{Event: inj.stats.Offered, Kind: KindShortWrite, Shard: shard})
	inj.stats.ShortWrites++
	inj.mu.Unlock()
}

func (sw *shortWriter) Write(p []byte) (int, error) {
	if sw.src.Bernoulli(sw.rate) {
		sw.inj.recordShortWrite(sw.shard)
		n, err := sw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultinject: short write (%d of %d bytes)", n, len(p))
	}
	return sw.w.Write(p)
}
