package faultinject

import (
	"fmt"
	"sort"
	"sync"

	"edgescope/internal/rng"
	"edgescope/internal/scenario"
)

// Handoff-phase fault kinds, as recorded in the trace.
const (
	KindHandoffKill         = "handoff_kill_gaining"
	KindHandoffPartition    = "handoff_partition_source"
	KindHandoffCrashRecover = "handoff_crash_recover"
	KindHandoffRecover      = "handoff_recover"
)

// defaultHandoffSpan is the outage length, in coordinator steps, when a
// handoff fault rate is set but HandoffSpan is zero.
const defaultHandoffSpan = 4

// HandoffStats counts injected handoff-phase faults.
type HandoffStats struct {
	Steps         uint64 `json:"steps"`
	Kills         uint64 `json:"kills"`
	Partitions    uint64 `json:"partitions"`
	CrashRecovers uint64 `json:"crash_recovers"`
	// Blocked counts steps refused because a participant was inside an
	// outage window — the failures the migrator's retry/rollback machinery
	// must absorb.
	Blocked uint64 `json:"blocked"`
}

// HandoffHooks connect the injector to the cluster under test. All hooks
// run synchronously inside Step, on the coordinator's goroutine.
type HandoffHooks struct {
	// Kill hard-kills the gaining node (telemetry.Ingestor.Crash): memory
	// and unsynced WAL bytes are gone.
	Kill func(node string)
	// Recover brings a killed node back via WAL recovery, once its outage
	// span has elapsed.
	Recover func(node string)
	// CrashRecover crashes the gaining node and reopens it immediately —
	// one step's failure, with whatever the crash left durable still there
	// for the retry to rebuild over.
	CrashRecover func(node string)
}

// HandoffInjector applies a fault plan's handoff-phase faults to a
// rebalance. It plugs into cluster.MigratorConfig.Hook: every coordinator
// step passes through Step, which either lets it proceed (nil) or fails it
// with an error — exactly what a transport failure at that point would do,
// so the migrator's bounded retries and whole-migration rollback are
// exercised by the real code path.
//
// Fault targeting follows the step's role: kill-gaining and crash-recover
// draw at destination rebuild steps, partition-source draws at source
// flush/fetch steps. Spans are counted in steps, the draw order per step
// is fixed (kill, crash-recover, partition) with zero-rate kinds skipped,
// and one seed pins the whole trace — the same determinism contract as the
// event- and node-level injectors.
//
// Step must be called from a single goroutine (the migrator's); accessors
// may be called from others.
type HandoffInjector struct {
	spec   scenario.FaultSpec
	src    *rng.Source
	active bool
	hooks  HandoffHooks

	idx uint64 // steps offered so far

	mu      sync.Mutex
	outages map[string]outage
	trace   []TraceEntry
	stats   HandoffStats
}

// NewHandoff builds a handoff-phase injector for a fault plan.
// scenarioSeed seeds the draw stream when the plan does not pin its own
// Seed; the stream forks under "faultinject-handoff", independent of the
// event- and node-level forks. A plan with no handoff rates injects
// nothing and draws nothing.
func NewHandoff(spec *scenario.FaultSpec, scenarioSeed uint64, hooks HandoffHooks) *HandoffInjector {
	inj := &HandoffInjector{outages: map[string]outage{}, hooks: hooks}
	if spec != nil {
		inj.spec = *spec
	}
	inj.active = spec.HandoffActive()
	seed := inj.spec.Seed
	if seed == 0 {
		seed = scenarioSeed
	}
	if inj.active {
		inj.src = rng.New(seed).Fork("faultinject-handoff")
	}
	if inj.spec.HandoffSpan == 0 {
		inj.spec.HandoffSpan = defaultHandoffSpan
	}
	return inj
}

// Step passes one coordinator step through the fault plan. A nil return
// lets the step proceed; an error fails it the way a transport failure
// would. Phase names follow cluster.HandoffStep.
func (inj *HandoffInjector) Step(phase string, partition int, source, dest string) error {
	idx := inj.idx
	inj.idx++
	inj.recoverElapsed(idx)
	inj.mu.Lock()
	inj.stats.Steps++
	inj.mu.Unlock()
	if !inj.active {
		return nil
	}

	// A participant inside an outage window fails the step before any new
	// draw — the coordinator keeps meeting the same dead node until the
	// span elapses, like a real outage.
	for _, n := range []string{source, dest} {
		if n == "" {
			continue
		}
		inj.mu.Lock()
		o, down := inj.outages[n]
		inj.mu.Unlock()
		if down && idx < o.until {
			inj.mu.Lock()
			inj.stats.Blocked++
			inj.mu.Unlock()
			return fmt.Errorf("faultinject: %s unreachable (%s until step %d)", n, o.kind, o.until)
		}
	}

	rebuildStep := dest != "" && phase == "rebuild"
	sourceStep := source != "" && (phase == "flush" || phase == "fetch")
	if inj.spec.HandoffKillGaining > 0 && rebuildStep && inj.src.Bernoulli(inj.spec.HandoffKillGaining) {
		span := inj.spec.HandoffSpan
		inj.record(TraceEntry{Event: idx, Kind: KindHandoffKill, Span: span, Node: dest}, &inj.stats.Kills)
		inj.setOutage(dest, outage{kind: KindHandoffKill, until: idx + uint64(span)})
		if inj.hooks.Kill != nil {
			inj.hooks.Kill(dest)
		}
		return fmt.Errorf("faultinject: gaining node %s killed mid-transfer (partition %d)", dest, partition)
	}
	if inj.spec.HandoffCrashRecover > 0 && rebuildStep && inj.src.Bernoulli(inj.spec.HandoffCrashRecover) {
		inj.record(TraceEntry{Event: idx, Kind: KindHandoffCrashRecover, Node: dest}, &inj.stats.CrashRecovers)
		if inj.hooks.CrashRecover != nil {
			inj.hooks.CrashRecover(dest)
		}
		return fmt.Errorf("faultinject: gaining node %s crashed and recovered (partition %d)", dest, partition)
	}
	if inj.spec.HandoffPartitionSource > 0 && sourceStep && inj.src.Bernoulli(inj.spec.HandoffPartitionSource) {
		span := inj.spec.HandoffSpan
		inj.record(TraceEntry{Event: idx, Kind: KindHandoffPartition, Span: span, Node: source}, &inj.stats.Partitions)
		inj.setOutage(source, outage{kind: KindHandoffPartition, until: idx + uint64(span)})
		return fmt.Errorf("faultinject: losing owner %s partitioned from coordinator (partition %d)", source, partition)
	}
	return nil
}

// recoverElapsed closes every outage whose span has passed, recovering
// killed nodes in sorted order for a deterministic trace.
func (inj *HandoffInjector) recoverElapsed(idx uint64) {
	inj.mu.Lock()
	var expired []string
	for node, o := range inj.outages {
		if o.until <= idx {
			expired = append(expired, node)
		}
	}
	sort.Strings(expired)
	inj.mu.Unlock()
	for _, node := range expired {
		inj.mu.Lock()
		o := inj.outages[node]
		delete(inj.outages, node)
		inj.mu.Unlock()
		if o.kind == KindHandoffKill {
			if inj.hooks.Recover != nil {
				inj.hooks.Recover(node)
			}
			inj.record(TraceEntry{Event: idx, Kind: KindHandoffRecover, Node: node}, nil)
		}
	}
}

// RecoverAll force-expires every outstanding outage, recovering killed
// nodes — the settling step before a harness retries a rolled-back
// migration.
func (inj *HandoffInjector) RecoverAll() {
	inj.recoverElapsed(^uint64(0))
}

// Blocked reports whether a step touching node would currently be refused,
// without advancing the step clock.
func (inj *HandoffInjector) Blocked(node string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	o, down := inj.outages[node]
	return down && inj.idx < o.until
}

// setOutage records a node's fault window.
func (inj *HandoffInjector) setOutage(node string, o outage) {
	inj.mu.Lock()
	inj.outages[node] = o
	inj.mu.Unlock()
}

// record appends a trace entry and bumps its counter (nil skips counting).
func (inj *HandoffInjector) record(t TraceEntry, n *uint64) {
	inj.mu.Lock()
	inj.trace = append(inj.trace, t)
	if n != nil {
		*n++
	}
	inj.mu.Unlock()
}

// Trace returns a copy of the handoff-fault trace so far, injection order.
func (inj *HandoffInjector) Trace() []TraceEntry {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]TraceEntry, len(inj.trace))
	copy(out, inj.trace)
	return out
}

// Stats returns a copy of the handoff-fault counters.
func (inj *HandoffInjector) Stats() HandoffStats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}
