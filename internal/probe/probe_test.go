package probe

import (
	"math"
	"testing"
	"time"

	"edgescope/internal/emunet"
	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
)

func TestPingAgainstEmulatedLink(t *testing.T) {
	e, err := emunet.NewUDPEcho(emunet.Link{OneWayDelay: 10 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	st, err := Ping(e.Addr(), 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 10 || st.Received != 10 {
		t.Fatalf("sent/received = %d/%d", st.Sent, st.Received)
	}
	if m := st.MedianMs(); m < 19 || m > 60 {
		t.Fatalf("median RTT = %.1f ms, want ~20", m)
	}
	if st.LossRate() != 0 {
		t.Fatalf("loss = %v", st.LossRate())
	}
}

func TestPingMeasuresLoss(t *testing.T) {
	e, err := emunet.NewUDPEcho(emunet.Link{Loss: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st, err := Ping(e.Addr(), 3, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.LossRate() != 1 {
		t.Fatalf("loss = %v, want 1", st.LossRate())
	}
	if st.MedianMs() != 0 || st.CV() != 0 {
		t.Fatal("stats of empty RTT set should be zero")
	}
}

func TestPingRejectsBadCount(t *testing.T) {
	if _, err := Ping("127.0.0.1:9", 0, time.Second); err == nil {
		t.Fatal("expected error for zero count")
	}
}

func TestPingDialError(t *testing.T) {
	if _, err := Ping("bad-address:::", 1, time.Second); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestIperfDownloadShaped(t *testing.T) {
	s, err := emunet.NewThroughputServer(emunet.Link{RateMbps: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := IperfDownload(s.Addr(), 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps < 9 || res.Mbps > 24 {
		t.Fatalf("download = %.1f Mbps, want ~16", res.Mbps)
	}
	if res.Bytes == 0 {
		t.Fatal("no bytes transferred")
	}
}

func TestIperfUploadShaped(t *testing.T) {
	s, err := emunet.NewThroughputServer(emunet.Link{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := IperfUpload(s.Addr(), 300*time.Millisecond, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps < 9 || res.Mbps > 24 {
		t.Fatalf("upload = %.1f Mbps, want ~16", res.Mbps)
	}
}

func TestIperfDialErrors(t *testing.T) {
	if _, err := IperfDownload("bad:::addr", time.Millisecond); err == nil {
		t.Fatal("expected download dial error")
	}
	if _, err := IperfUpload("bad:::addr", time.Millisecond, 1); err == nil {
		t.Fatal("expected upload dial error")
	}
}

func TestVirtualPingMatchesModel(t *testing.T) {
	r := rng.New(3)
	path := netmodel.BuildPath(r, netmodel.WiFi, netmodel.EdgeSite, 60)
	st := VirtualPing(r, path, 30)
	if st.Sent != 30 {
		t.Fatalf("sent = %d", st.Sent)
	}
	if st.Received < 28 { // loss is ~1e-6
		t.Fatalf("received = %d", st.Received)
	}
	base := path.BaseRTTMs()
	if m := st.MedianMs(); math.Abs(m-base) > 0.25*base {
		t.Fatalf("virtual median %.1f far from base %.1f", m, base)
	}
}

// TestVirtualAgainstSocketAgreement is the bridge check: a real socket ping
// over an emunet link parameterised from a model path must agree with the
// virtual ping on the same path, within scheduling tolerance.
func TestVirtualAgainstSocketAgreement(t *testing.T) {
	r := rng.New(4)
	path := netmodel.BuildPath(r, netmodel.WiFi, netmodel.CloudSite, 400)
	link := emunet.FromPathSample(path.BaseRTTMs(), 0.5, 0, 0)
	e, err := emunet.NewUDPEcho(link, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sock, err := Ping(e.Addr(), 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	virt := VirtualPing(r, path, 30)
	diff := math.Abs(sock.MedianMs() - virt.MedianMs())
	if diff > 0.35*virt.MedianMs()+5 {
		t.Fatalf("socket median %.1f vs virtual %.1f disagree", sock.MedianMs(), virt.MedianMs())
	}
}

func TestVirtualTracerouteVisibility(t *testing.T) {
	r := rng.New(6)
	wifi := netmodel.BuildPath(r, netmodel.WiFi, netmodel.EdgeSite, 100)
	hops := VirtualTraceroute(r, wifi)
	if len(hops) != wifi.HopCount() {
		t.Fatalf("WiFi traceroute saw %d of %d hops", len(hops), wifi.HopCount())
	}
	if hops[0].TTL != 1 || hops[0].Kind != netmodel.HopAccess {
		t.Fatalf("first hop = %+v", hops[0])
	}

	fiveg := netmodel.BuildPath(r, netmodel.FiveG, netmodel.EdgeSite, 100)
	fhops := VirtualTraceroute(r, fiveg)
	if len(fhops) != fiveg.HopCount()-2 {
		t.Fatalf("5G traceroute saw %d hops, want %d (first two hidden)",
			len(fhops), fiveg.HopCount()-2)
	}
	if fhops[0].TTL != 3 {
		t.Fatalf("first visible 5G TTL = %d, want 3", fhops[0].TTL)
	}
}

func TestVirtualIperf(t *testing.T) {
	r := rng.New(7)
	path := netmodel.BuildPath(r, netmodel.FiveG, netmodel.EdgeSite, 50)
	res := VirtualIperf(r, path, netmodel.Downlink, 1000)
	if res.Mbps <= 0 || res.Bytes <= 0 {
		t.Fatalf("virtual iperf = %+v", res)
	}
	// 15 s at the measured rate must match the byte count.
	wantBytes := res.Mbps * 1e6 / 8 * 15
	if math.Abs(wantBytes-float64(res.Bytes)) > 1e6 {
		t.Fatalf("bytes %.0f inconsistent with rate", float64(res.Bytes))
	}
}
