// Package probe implements the measurement tools of the paper's methodology:
// a ping client and an iperf3-like throughput client that run over real
// sockets (against internal/emunet endpoints), plus "virtual" equivalents
// that sample internal/netmodel paths directly. The campaign in
// internal/crowd uses the virtual probes to generate the >2M ping dataset in
// milliseconds of CPU time; the socket probes exist so integration tests can
// verify that a real client measuring a shaped link observes what the model
// prescribes.
package probe

import (
	"fmt"
	"net"
	"time"

	"edgescope/internal/stats"
)

// PingStats summarises one ping run against a single destination.
type PingStats struct {
	Addr     string
	Sent     int
	Received int
	// RTTs holds one entry per received reply, in milliseconds.
	RTTs []float64
}

// LossRate returns the fraction of probes that got no reply.
func (p PingStats) LossRate() float64 {
	if p.Sent == 0 {
		return 0
	}
	return float64(p.Sent-p.Received) / float64(p.Sent)
}

// MedianMs returns the median RTT in milliseconds.
func (p PingStats) MedianMs() float64 { return stats.Median(p.RTTs) }

// CV returns the RTT coefficient of variation, the paper's jitter metric.
func (p PingStats) CV() float64 { return stats.CV(p.RTTs) }

// Ping sends count UDP probes to an emunet echo server, one outstanding at a
// time (matching the paper's sequential 30-repeat methodology), waiting up
// to timeout for each reply.
func Ping(addr string, count int, timeout time.Duration) (PingStats, error) {
	if count <= 0 {
		return PingStats{}, fmt.Errorf("probe: ping count %d must be positive", count)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return PingStats{}, fmt.Errorf("probe: dial %s: %w", addr, err)
	}
	defer conn.Close()

	out := PingStats{Addr: addr}
	payload := make([]byte, 16)
	buf := make([]byte, 64)
	for seq := 0; seq < count; seq++ {
		for i := range payload {
			payload[i] = byte(seq + i)
		}
		start := time.Now()
		if _, err := conn.Write(payload); err != nil {
			return out, fmt.Errorf("probe: send seq %d: %w", seq, err)
		}
		out.Sent++
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return out, err
		}
		n, err := conn.Read(buf)
		if err != nil {
			continue // timeout: counted as loss
		}
		_ = n
		out.Received++
		out.RTTs = append(out.RTTs, float64(time.Since(start))/float64(time.Millisecond))
	}
	return out, nil
}
