package probe

import (
	"fmt"
	"net"
	"time"

	"edgescope/internal/emunet"
)

// IperfResult is the outcome of one TCP bulk-transfer measurement.
type IperfResult struct {
	Bytes    int
	Duration time.Duration
	Mbps     float64
}

// IperfDownload measures downlink throughput from an emunet
// ThroughputServer for the given duration. The server shapes the stream.
func IperfDownload(addr string, dur time.Duration) (IperfResult, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return IperfResult{}, fmt.Errorf("probe: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{emunet.ModeDownload}); err != nil {
		return IperfResult{}, err
	}
	deadline := time.Now().Add(dur)
	if err := conn.SetReadDeadline(deadline); err != nil {
		return IperfResult{}, err
	}
	start := time.Now()
	buf := make([]byte, 32*1024)
	var total int
	for time.Now().Before(deadline) {
		n, err := conn.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	elapsed := time.Since(start)
	return result(total, elapsed), nil
}

// IperfUpload measures uplink throughput to an emunet ThroughputServer,
// shaping the stream at rateMbps on the client side (the last-mile uplink is
// the client's constraint). rateMbps <= 0 sends unshaped.
func IperfUpload(addr string, dur time.Duration, rateMbps float64) (IperfResult, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return IperfResult{}, fmt.Errorf("probe: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{emunet.ModeUpload}); err != nil {
		return IperfResult{}, err
	}
	var w interface{ Write([]byte) (int, error) } = conn
	if rateMbps > 0 {
		w = emunet.NewShapedWriter(conn, rateMbps)
	}
	chunk := make([]byte, 8*1024)
	start := time.Now()
	var total int
	for time.Since(start) < dur {
		n, err := w.Write(chunk)
		total += n
		if err != nil {
			return result(total, time.Since(start)), err
		}
	}
	return result(total, time.Since(start)), nil
}

func result(total int, elapsed time.Duration) IperfResult {
	mbps := 0.0
	if elapsed > 0 {
		mbps = float64(total) * 8 / 1e6 / elapsed.Seconds()
	}
	return IperfResult{Bytes: total, Duration: elapsed, Mbps: mbps}
}
