package probe

import (
	"testing"

	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
)

// TestVirtualPingIntoMatchesVirtualPing pins the buffered kernel against its
// scalar predecessor over a (seed, access, class) sweep: identical stats,
// identical RTT values, identical stream position afterwards.
func TestVirtualPingIntoMatchesVirtualPing(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, access := range netmodel.AllAccess() {
			for _, class := range []netmodel.SiteClass{netmodel.EdgeSite, netmodel.CloudSite} {
				p1 := netmodel.BuildPath(rng.New(seed), access, class, 420)
				p2 := netmodel.BuildPath(rng.New(seed), access, class, 420)
				r1, r2 := rng.New(seed*31), rng.New(seed*31)
				var into PingStats
				for rep := 0; rep < 8; rep++ {
					VirtualPingInto(r1, p1, 30, &into)
					want := VirtualPing(r2, p2, 30)
					if into.Sent != want.Sent || into.Received != want.Received || into.Addr != want.Addr {
						t.Fatalf("seed %d %v/%v rep %d: stats %+v, want %+v", seed, access, class, rep, into, want)
					}
					if len(into.RTTs) != len(want.RTTs) {
						t.Fatalf("seed %d rep %d: %d RTTs, want %d", seed, rep, len(into.RTTs), len(want.RTTs))
					}
					for i := range want.RTTs {
						if into.RTTs[i] != want.RTTs[i] {
							t.Fatalf("seed %d rep %d RTT %d: %v, want %v", seed, rep, i, into.RTTs[i], want.RTTs[i])
						}
					}
				}
				if r1.Uint64() != r2.Uint64() {
					t.Fatalf("seed %d %v/%v: stream position diverged", seed, access, class)
				}
			}
		}
	}
}

// TestVirtualPingIntoExactCapacity pins the preallocation contract: a short
// buffer is replaced by one of exactly count capacity, a sufficient buffer
// is kept.
func TestVirtualPingIntoExactCapacity(t *testing.T) {
	p := netmodel.BuildPath(rng.New(2), netmodel.LTE, netmodel.EdgeSite, 50)
	var st PingStats
	VirtualPingInto(rng.New(3), p, 30, &st)
	if cap(st.RTTs) != 30 {
		t.Fatalf("cap(RTTs) = %d, want exactly 30", cap(st.RTTs))
	}
	prev := &st.RTTs[0]
	VirtualPingInto(rng.New(4), p, 20, &st)
	if cap(st.RTTs) != 30 || &st.RTTs[:1][0] != prev {
		t.Fatal("sufficient buffer was not reused")
	}
}

// TestVirtualPingIntoSteadyStateAllocs pins the kernel at zero allocations
// once the RTT buffer has warmed up.
func TestVirtualPingIntoSteadyStateAllocs(t *testing.T) {
	p := netmodel.BuildPath(rng.New(5), netmodel.WiFi, netmodel.CloudSite, 900)
	r := rng.New(6)
	var st PingStats
	VirtualPingInto(r, p, 30, &st) // warm-up allocates the buffer once
	allocs := testing.AllocsPerRun(100, func() {
		VirtualPingInto(r, p, 30, &st)
	})
	if allocs != 0 {
		t.Fatalf("steady-state VirtualPingInto allocs/op = %v, want 0", allocs)
	}
}
