package probe

import (
	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
)

// VirtualPing samples count RTTs from a modelled path, mirroring what a
// socket Ping against an emunet endpoint parameterised from the same path
// would measure. It returns PingStats with loss applied per the path's
// loss rate.
func VirtualPing(r *rng.Source, path *netmodel.Path, count int) PingStats {
	var out PingStats
	VirtualPingInto(r, path, count, &out)
	return out
}

// VirtualPingInto is VirtualPing writing into a caller-owned PingStats: the
// RTT buffer is reused when its capacity suffices and allocated at exactly
// count capacity otherwise, so a steady-state probe loop allocates nothing.
// Draws are identical to VirtualPing's, probe-major: each probe's loss draw
// precedes its RTT sample draws, probes in sequence.
func VirtualPingInto(r *rng.Source, path *netmodel.Path, count int, out *PingStats) {
	out.Addr = "virtual"
	out.Sent = count
	if cap(out.RTTs) < count {
		out.RTTs = make([]float64, 0, count)
	}
	rtts := out.RTTs[:0]
	loss := path.LossRate
	for i := 0; i < count; i++ {
		if r.Bernoulli(loss) {
			continue
		}
		rtts = append(rtts, path.SampleRTT(r))
	}
	out.RTTs = rtts
	out.Received = len(rtts)
}

// TracerouteHop is one visible hop of a virtual traceroute.
type TracerouteHop struct {
	TTL   int
	RTTMs float64
	Kind  netmodel.HopKind
}

// VirtualTraceroute walks the path by TTL, returning only hops that answer
// TTL-expired probes (e.g. the first 5G hops do not, as the paper observed).
func VirtualTraceroute(r *rng.Source, path *netmodel.Path) []TracerouteHop {
	rtts := path.HopRTTs(r)
	var out []TracerouteHop
	for i, v := range rtts {
		if v < 0 {
			continue
		}
		out = append(out, TracerouteHop{TTL: i + 1, RTTMs: v, Kind: path.Hops[i].Kind})
	}
	return out
}

// VirtualIperf models one 15-second bulk TCP transfer over the path, in the
// given direction, against a server with serverMbps of allocated bandwidth.
func VirtualIperf(r *rng.Source, path *netmodel.Path, dir netmodel.Direction, serverMbps float64) IperfResult {
	s := path.SampleThroughput(r, dir, serverMbps)
	const dur = 15 // seconds, matching the paper's per-connection runtime
	bytes := int(s.Mbps * 1e6 / 8 * dur)
	return IperfResult{Bytes: bytes, Duration: 15e9, Mbps: s.Mbps}
}
