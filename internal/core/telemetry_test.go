package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestExtTelemetryDeterministic renders the streaming-vs-batch artifact
// twice through the parallel engine and requires byte-identical output: the
// replay pipeline (fixed shard count, single ordered producer) must be as
// deterministic as every other artifact.
func TestExtTelemetryDeterministic(t *testing.T) {
	render := func(parallelism int) []byte {
		results, err := NewSuite(4, Small).RunArtifacts(context.Background(),
			parallelism, []string{"ext-telemetry"}, true)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, r := range results {
			if r.Artifact == nil {
				continue
			}
			if err := r.Artifact.Render(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	a, b := render(1), render(8)
	if !bytes.Equal(a, b) {
		t.Fatalf("ext-telemetry differs across runs/parallelism:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	out := string(a)
	for _, col := range []string{"stream-p95", "batch-p99", "max-rank-err", "all-access", "WiFi"} {
		if !strings.Contains(out, col) {
			t.Fatalf("artifact missing %q:\n%s", col, out)
		}
	}
}
