package core

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"edgescope/internal/scenario"
)

func TestParseScale(t *testing.T) {
	if sc, err := ParseScale("small"); err != nil || sc != Small {
		t.Fatalf("ParseScale(small) = %v, %v", sc, err)
	}
	if sc, err := ParseScale("paper"); err != nil || sc != PaperScale {
		t.Fatalf("ParseScale(paper) = %v, %v", sc, err)
	}
	if _, err := ParseScale("medium"); err == nil || !strings.Contains(err.Error(), `"medium"`) {
		t.Fatalf("ParseScale(medium) err = %v", err)
	}
}

// TestNewSuiteFromSpecMatchesShim pins the compatibility contract: the
// legacy (seed, Scale) constructor and the scenario-spec constructor build
// byte-identical artifacts, because the former is now a shim over the
// built-in specs.
func TestNewSuiteFromSpecMatchesShim(t *testing.T) {
	sp := scenario.MustGet("small")
	sp.Seed = 5
	fromSpec, err := NewSuiteFromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	shim := NewSuite(5, Small)
	if shim.Name() != "small" || fromSpec.Name() != "small" {
		t.Fatalf("names = %q / %q, want small", shim.Name(), fromSpec.Name())
	}

	var a, b bytes.Buffer
	if err := fromSpec.Figure2a().Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := shim.Figure2a().Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("spec-built and shim-built suites diverge")
	}
}

func TestNewSuiteFromSpecRejects(t *testing.T) {
	if _, err := NewSuiteFromSpec(nil); err == nil {
		t.Fatal("nil spec accepted")
	}
	bad := scenario.MustGet("small")
	bad.Crowd.Users = 0
	_, err := NewSuiteFromSpec(bad)
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	if !strings.Contains(err.Error(), "crowd.users") {
		t.Fatalf("error does not name the field: %v", err)
	}
}

// TestSuiteSpecIsolated pins the copy semantics: mutating the caller's spec
// after construction must not affect the suite.
func TestSuiteSpecIsolated(t *testing.T) {
	sp := scenario.MustGet("small")
	s, err := NewSuiteFromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	sp.Crowd.Users = 1
	sp.Seed = 999
	if s.Spec.Crowd.Users == 1 || s.Seed == 999 {
		t.Fatal("suite shares the caller's spec")
	}
}

func TestResolveScenario(t *testing.T) {
	// -scenario wins over -scale.
	sp, err := ResolveScenario("dense-metro", "paper")
	if err != nil || sp.Name != "dense-metro" {
		t.Fatalf("ResolveScenario = %v, %v", sp, err)
	}
	// Legacy scale fallback.
	sp, err = ResolveScenario("", "paper")
	if err != nil || sp.Name != "paper" {
		t.Fatalf("scale fallback = %v, %v", sp, err)
	}
	if _, err := ResolveScenario("", "huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
	// JSON file path.
	custom := scenario.MustGet("flash-crowd")
	custom.Name = "my-flash"
	path := filepath.Join(t.TempDir(), "my.json")
	if err := scenario.Save(path, custom); err != nil {
		t.Fatal(err)
	}
	sp, err = ResolveScenario(path, "small")
	if err != nil || sp.Name != "my-flash" {
		t.Fatalf("file resolve = %v, %v", sp, err)
	}
}

// TestScenarioSuitesParallelismInvariance extends the engine's headline
// determinism contract to the new built-in scenarios: a representative
// artifact slice (crowd latency, throughput, workload billing) renders
// byte-identically at any parallelism, for every scenario — the property
// that makes `reproall -scenario X > out.txt` diffable.
func TestScenarioSuitesParallelismInvariance(t *testing.T) {
	ctx := context.Background()
	subset := []string{"fig2a", "fig5", "table6"}
	for _, name := range []string{"dense-metro", "rural-sparse", "flash-crowd"} {
		t.Run(name, func(t *testing.T) {
			render := func(parallelism int) map[string][]byte {
				s, err := NewSuiteFromSpec(scenario.MustGet(name))
				if err != nil {
					t.Fatal(err)
				}
				results, err := s.RunArtifacts(ctx, parallelism, subset, false)
				if err != nil {
					t.Fatal(err)
				}
				return renderAll(t, results)
			}
			serial, parallel := render(1), render(4)
			if len(serial) != len(subset) {
				t.Fatalf("artifacts = %d, want %d", len(serial), len(subset))
			}
			for id, sb := range serial {
				if !bytes.Equal(sb, parallel[id]) {
					t.Fatalf("scenario %s artifact %s differs across parallelism", name, id)
				}
			}
		})
	}
}
