package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// render returns the rendered bytes of every artifact in a result set,
// keyed by artifact ID, skipping substrate rows.
func renderAll(t *testing.T, results []ArtifactResult) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, r := range results {
		if r.Artifact == nil {
			continue
		}
		var buf bytes.Buffer
		if err := r.Artifact.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", r.ID, err)
		}
		out[r.ID] = buf.Bytes()
	}
	return out
}

// TestRunAllParallelismInvariance is the PR's headline contract: for a
// fixed seed, every artifact is byte-identical whether built by one worker
// or many.
func TestRunAllParallelismInvariance(t *testing.T) {
	ctx := context.Background()
	serial, err := NewSuite(3, Small).RunAll(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSuite(3, Small).RunAll(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	sr, pr := renderAll(t, serial), renderAll(t, parallel)
	if len(sr) != len(pr) {
		t.Fatalf("artifact counts differ: %d vs %d", len(sr), len(pr))
	}
	for id, sb := range sr {
		pb, ok := pr[id]
		if !ok {
			t.Fatalf("artifact %s missing from parallel run", id)
		}
		if !bytes.Equal(sb, pb) {
			t.Fatalf("artifact %s differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", id, sb, pb)
		}
	}
}

// TestRunAllMatchesSerialAll pins RunAll to the legacy serial path: the
// same registry drives both, so outputs must agree byte for byte.
func TestRunAllMatchesSerialAll(t *testing.T) {
	results, err := NewSuite(5, Small).RunAll(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, results)
	want := NewSuite(5, Small).All()
	if len(got) != len(want) {
		t.Fatalf("RunAll built %d artifacts, All has %d", len(got), len(want))
	}
	for i, a := range want {
		var buf bytes.Buffer
		if err := a.Artifact.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), got[a.ID]) {
			t.Fatalf("artifact %d (%s) differs between All() and RunAll", i, a.ID)
		}
	}
	// Paper order must be preserved in the result list.
	idx := 0
	for _, r := range results {
		if r.Artifact == nil {
			continue
		}
		if r.ID != want[idx].ID {
			t.Fatalf("result %d = %s, want %s (paper order)", idx, r.ID, want[idx].ID)
		}
		idx++
	}
}

func TestRunArtifactsSubset(t *testing.T) {
	results, err := NewSuite(1, Small).RunArtifacts(context.Background(), 2, []string{"fig8", "table7"}, false)
	if err != nil {
		t.Fatal(err)
	}
	var subs, arts []string
	for _, r := range results {
		if r.Artifact == nil {
			subs = append(subs, r.ID)
		} else {
			arts = append(arts, r.ID)
		}
	}
	if len(arts) != 2 || arts[0] != "fig8" || arts[1] != "table7" {
		t.Fatalf("artifacts = %v", arts)
	}
	// fig8 needs both traces; table7 needs nothing; the campaign and the
	// observation sets must not have been scheduled.
	for _, s := range subs {
		if s == subCampaign || s == subLatency || s == subThroughput {
			t.Fatalf("unneeded substrate %s scheduled", s)
		}
	}
	if len(subs) != 2 {
		t.Fatalf("substrates = %v, want the two traces", subs)
	}
}

// TestRunArtifactsUnknownID pins the typo UX: an unknown -only ID fails
// fast and the error names every valid ID so the caller can self-correct.
func TestRunArtifactsUnknownID(t *testing.T) {
	_, err := NewSuite(1, Small).RunArtifacts(context.Background(), 1, []string{"nope"}, false)
	if err == nil {
		t.Fatal("expected error for unknown artifact ID")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nope"`) {
		t.Errorf("error does not name the bad ID: %v", err)
	}
	for _, id := range ArtifactIDs() {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list valid ID %q: %v", id, err)
		}
	}
}

// TestArtifactIDsCoverRegistry keeps the helper honest against the specs.
func TestArtifactIDsCoverRegistry(t *testing.T) {
	ids := ArtifactIDs()
	if len(ids) != len(specs()) {
		t.Fatalf("ArtifactIDs has %d entries, registry %d", len(ids), len(specs()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate artifact ID %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"table1", "fig14", "ext-telemetry"} {
		if !seen[want] {
			t.Fatalf("ArtifactIDs missing %q", want)
		}
	}
}

func TestRunAllWithExtensions(t *testing.T) {
	results, err := NewSuite(1, Small).RunArtifacts(context.Background(), 8, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range results {
		if r.Artifact != nil {
			n++
		}
	}
	if n != 26 { // 21 paper artifacts + 5 extensions
		t.Fatalf("artifacts = %d, want 26", n)
	}
}

func TestRunAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSuite(1, Small).RunAll(ctx, 4); err == nil {
		t.Fatal("expected error from cancelled context")
	}
}

// TestConcurrentSubstrateAccess hammers every lazy accessor from many
// goroutines; run with -race to verify the sync.Once guards. All callers
// must observe the same built substrate.
func TestConcurrentSubstrateAccess(t *testing.T) {
	s := NewSuite(2, Small)
	const n = 16
	var wg sync.WaitGroup
	campaigns := make([]any, n)
	neps := make([]any, n)
	clouds := make([]any, n)
	lats := make([]int, n)
	thrs := make([]int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			campaigns[i] = s.Campaign()
			neps[i] = s.NEPTrace()
			clouds[i] = s.CloudTrace()
			lats[i] = len(s.LatencyObs())
			thrs[i] = len(s.ThroughputObs())
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if campaigns[i] != campaigns[0] || neps[i] != neps[0] || clouds[i] != clouds[0] {
			t.Fatal("substrate pointers differ across goroutines")
		}
		if lats[i] != lats[0] || thrs[i] != thrs[0] {
			t.Fatal("observation counts differ across goroutines")
		}
	}
	if lats[0] == 0 || thrs[0] == 0 {
		t.Fatal("no observations built")
	}
}
