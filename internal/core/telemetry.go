package core

import (
	"math"
	"time"

	"edgescope/internal/netmodel"
	"edgescope/internal/report"
	"edgescope/internal/stats"
	"edgescope/internal/telemetry"
)

// ExtTelemetry replays the deterministic crowd campaign through the
// streaming telemetry pipeline (sharded ingest → windowed quantile-sketch
// rollups → merge query) and cross-checks the streaming p50/p95/p99 of the
// campaign's latency metric against the exact batch stats.Summary, overall
// and per access network. The rank-err columns report each slice's worst
// observed |CDF(streamed pXX) − XX/100| against the sketch's documented
// bound (stats.Sketch.RankErrorBound) — streaming must always land within
// 2× bound, which the telemetry tests also pin.
func (s *Suite) ExtTelemetry() *report.Table {
	st := s.LatencyStore()
	// The streaming side replays whole records: the thin []Observation view.
	events := telemetry.LatencyEvents(st.View(), telemetry.ReplayOptions{})

	ing := telemetry.NewIngestor(telemetry.Config{
		Shards: 4,
		Window: time.Minute,
		Block:  true, // lossless, deterministic replay
	})
	defer ing.Close()
	telemetry.Replay(ing, events)

	t := &report.Table{
		Title: "Extension: streaming telemetry vs batch summary (campaign RTT, ms)",
		Headers: []string{"slice", "events", "windows",
			"batch-p50", "stream-p50", "batch-p95", "stream-p95",
			"batch-p99", "stream-p99", "max-rank-err", "err-bound"},
	}

	slices := []struct {
		name   string
		net    string // query filter; "" = all
		access netmodel.Access
	}{
		{"all-access", "", 0},
		{"WiFi", "WiFi", netmodel.WiFi},
		{"LTE", "LTE", netmodel.LTE},
		{"5G", "5G", netmodel.FiveG},
	}
	for _, sl := range slices {
		// The batch side reads the median-RTT column straight off the
		// columnar substrate instead of re-walking []Observation.
		xs := st.AppendMedianRTTs(nil, sl.access, sl.net == "")
		if len(xs) == 0 {
			continue
		}
		batch := stats.SummarizeInPlace(xs)
		res, err := ing.Query(telemetry.QuerySpec{
			Metric:    telemetry.MetricRTT,
			Net:       sl.net,
			Quantiles: []float64{0.5, 0.95, 0.99},
		})
		if err != nil {
			panic("core: telemetry query failed: " + err.Error())
		}
		maxErr, bound := 0.0, 0.0
		row := []any{sl.name, int(res.Count), res.Windows}
		for _, qe := range res.Quantiles {
			row = append(row, batch.Percentile(qe.Q*100), qe.Value)
			if e := math.Abs(batch.CDFAt(qe.Value) - qe.Q); e > maxErr {
				maxErr = e
			}
			if qe.RankError > bound {
				bound = qe.RankError
			}
		}
		row = append(row, maxErr, bound)
		t.AddRow(row...)
	}
	return t
}
