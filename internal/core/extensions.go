package core

import (
	"fmt"

	"edgescope/internal/elastic"
	"edgescope/internal/geo"
	"edgescope/internal/netmodel"
	"edgescope/internal/placement"
	"edgescope/internal/report"
	"edgescope/internal/stats"
	"edgescope/internal/topology"
)

// The extension experiments quantify the paper's forward-looking
// implications (§3.1, §4.3, §5): denser deployments and MEC sinking,
// migration-based rebalancing, and load-aware request scheduling. They are
// not paper artifacts; run them with `reproall -ext` or the benches.

// ExtDensity sweeps deployment density — from a sparse edge to the paper's
// NEP to a 4× denser build-out to full MEC sinking — and reports the median
// nearest-edge RTT and hop count a WiFi user population would see.
func (s *Suite) ExtDensity() *report.Table {
	r := s.root().Fork("ext-density")
	t := &report.Table{
		Title:   "Extension: deployment density vs nearest-edge latency (WiFi)",
		Headers: []string{"deployment", "sites", "median-rtt-ms", "median-hops", "median-dist-km"},
	}
	users := s.Campaign().Users

	for _, spec := range []struct {
		name  string
		sites int
	}{
		{"sparse-edge", 130},
		{"NEP-today", 520},
		{"denser-4x", 2080},
	} {
		plat := topology.BuildNEP(r.Fork(spec.name), topology.NEPOptions{TargetSites: spec.sites})
		var rtts, hops, dists []float64
		for _, u := range users {
			rank := plat.NearestSites(u.Loc)
			site := plat.Sites[rank[0]]
			dist := geo.Haversine(u.Loc, site.Loc)
			path := netmodel.BuildPath(r, netmodel.WiFi, netmodel.EdgeSite, dist)
			rtts = append(rtts, path.SampleRTT(r))
			hops = append(hops, float64(path.HopCount()))
			dists = append(dists, dist)
		}
		t.AddRow(spec.name, len(plat.Sites),
			stats.SummarizeInPlace(rtts).Median(),
			stats.SummarizeInPlace(hops).Median(),
			stats.SummarizeInPlace(dists).Median())
	}

	// MEC: compute at the access aggregation point — the 1-2 hop vision.
	var rtts, hops []float64
	for range users {
		path := netmodel.BuildSunkPath(r, netmodel.WiFi)
		rtts = append(rtts, path.SampleRTT(r))
		hops = append(hops, float64(path.HopCount()))
	}
	t.AddRow("MEC-sunk", "-",
		stats.SummarizeInPlace(rtts).Median(), stats.SummarizeInPlace(hops).Median(), 0.0)
	return t
}

// ExtMigration quantifies the §5 "dynamic VM migration" opportunity on the
// generated NEP trace: how much the cross-server load gap shrinks per
// migration budget, and what the moves cost.
func (s *Suite) ExtMigration() *report.Table {
	d := s.NEPTrace()
	t := &report.Table{
		Title:   "Extension: migration-based rebalancing (cross-server load gap, P95/P5)",
		Headers: []string{"max-moves", "moves-made", "gap-before", "gap-after", "moved-gb", "est-seconds"},
	}
	for _, budget := range []int{10, 50, 200} {
		res := placement.RebalanceCPU(d, budget, 10)
		t.AddRow(budget, len(res.Migrations), res.GapBefore, res.GapAfter,
			res.MovedGB, res.EstSeconds)
	}
	return t
}

// ExtScheduling compares the customer-side request schedulers of §4.3: the
// DNS-style nearest-site routing NEP customers use today against load-aware
// GSLB at increasing delay slack.
func (s *Suite) ExtScheduling() *report.Table {
	r := s.root().Fork("ext-sched")
	replicas := []placement.Replica{
		{CapacityRPS: 100, DelayMs: 10},
		{CapacityRPS: 100, DelayMs: 13},
		{CapacityRPS: 100, DelayMs: 14},
		{CapacityRPS: 100, DelayMs: 18},
	}
	t := &report.Table{
		Title:   "Extension: request scheduling (4 replicas, skewed demand)",
		Headers: []string{"scheduler", "max-load", "load-gap", "mean-delay-ms", "time-over-80pct"},
	}
	run := func(name string, sched placement.Scheduler) {
		out := placement.SimulateScheduling(r.Fork(name), sched, replicas, 6000)
		gap := out.LoadGap
		gapStr := report.FormatFloat(gap)
		if gap > 1e6 {
			gapStr = "inf"
		}
		t.AddRow(name, out.MaxLoad, gapStr, out.MeanDelayMs, out.OverThresholdFrac)
	}
	run("nearest-site", placement.NearestSite{})
	for _, slack := range []float64{3, 6, 12} {
		run(fmt.Sprintf("load-aware-slack-%gms", slack), placement.LoadAware{DelaySlackMs: slack})
	}
	return t
}

// ExtElastic compares reserved IaaS VMs against a serverless deployment for
// edge apps at different demand intensities — the §5 "decomposing edge
// services" economics, with the cold-start tail the paper warns about.
func (s *Suite) ExtElastic() *report.Table {
	t := &report.Table{
		Title:   "Extension: reserved VMs vs serverless (monthly cost, latency)",
		Headers: []string{"workload", "plan", "monthly-rmb", "mean-ms", "p99-ms", "overload"},
	}
	sl := elastic.DefaultServerless()
	for _, spec := range []struct {
		name     string
		meanRPS  float64
		replicas int
	}{
		{"near-idle (0.05 rps)", 0.05, 1},
		{"moderate (20 rps)", 20, 1},
		{"sustained (150 rps)", 150, 2},
	} {
		w := elastic.DiurnalWorkload(spec.meanRPS, 4, 21)
		vmPlan := elastic.VMPlan{
			Replicas: spec.replicas, CapacityRPS: 100,
			VCPUs: 8, MemGB: 32, ExecMs: 25,
		}
		vo := vmPlan.Evaluate(w)
		so := sl.Evaluate(w)
		t.AddRow(spec.name, "reserved-vm", vo.MonthlyCost, vo.MeanLatencyMs, vo.P99LatencyMs, vo.OverloadFrac)
		t.AddRow(spec.name, "serverless", so.MonthlyCost, so.MeanLatencyMs, so.P99LatencyMs, so.OverloadFrac)
	}
	return t
}
