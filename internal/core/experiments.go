package core

import (
	"fmt"

	"edgescope/internal/analysis"
	"edgescope/internal/billing"
	"edgescope/internal/crowd"
	"edgescope/internal/netmodel"
	"edgescope/internal/predict"
	"edgescope/internal/qoe"
	"edgescope/internal/qoe/gaming"
	"edgescope/internal/qoe/streaming"
	"edgescope/internal/report"
	"edgescope/internal/stats"
	"edgescope/internal/topology"
	"edgescope/internal/vm"
)

// Table1 reproduces the deployment-density comparison.
func (s *Suite) Table1() *report.Table {
	t := &report.Table{
		Title:   "Table 1: deployment density (regions per 10^6 mi^2)",
		Headers: []string{"platform", "regions", "coverage", "density"},
	}
	for _, d := range topology.Table1Deployments(s.NEP()) {
		t.AddRow(d.Platform, d.Regions, d.Coverage, d.Density())
	}
	return t
}

// Table2 reproduces the survey of publicly available cloud/edge workload
// traces and why each was (not) chosen as the comparison counterpart. The
// rows are bibliographic facts from §2.2; the synthetic NEP row reflects
// this reproduction's generated stand-in.
func (s *Suite) Table2() *report.Table {
	t := &report.Table{
		Title:   "Table 2: cloud/edge workload traces considered for comparison",
		Headers: []string{"dataset", "platform", "duration", "scale", "customers", "verdict"},
	}
	t.AddRow("Azure Dataset", "Azure Cloud", "1 month (2017), 1 month (2019)",
		"2.0M / 2.7M VMs", "public", "compared (2019 version)")
	t.AddRow("AliCloud Dataset", "AliCloud ECS", "12 hours (2017), 8 days (2018)",
		"1.3k / 4.0k servers", "public", "not compared: containers only, too short")
	t.AddRow("Google Dataset", "Google Borg", "1 month (2011), 1 month (2019)",
		"12.6k / 96.4k servers", "Google developers", "not compared: BigQuery-only, not a public platform")
	t.AddRow("GWA-T-12", "Bitbrains", "3 months (2013)",
		"1.75k VMs", "enterprises", "not compared: old, small, not public")
	t.AddRow("NEP (this study)", "NEP", "3 months (2020)",
		fmt.Sprintf("complete set (synthetic stand-in: %d VMs)", len(s.NEPTrace().VMs)),
		"public", "the edge side of every comparison")
	return t
}

var latencyAccess = []netmodel.Access{netmodel.WiFi, netmodel.LTE, netmodel.FiveG}

var latencyTargets = []crowd.TargetKind{
	crowd.NearestEdge, crowd.ThirdNearestEdge, crowd.NearestCloud, crowd.CloudMember,
}

// Figure2a reproduces the median-RTT comparison.
func (s *Suite) Figure2a() *report.Table {
	st := s.LatencyStore()
	t := &report.Table{
		Title:   "Figure 2a: median RTT across users (ms)",
		Headers: []string{"access", "nearest-edge", "3rd-nearest-edge", "nearest-cloud", "all-clouds"},
	}
	for _, a := range latencyAccess {
		row := []any{a.String()}
		for _, k := range latencyTargets {
			row = append(row, st.MedianRTTAcrossUsers(a, k))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure2b reproduces the RTT-jitter (CV) comparison.
func (s *Suite) Figure2b() *report.Table {
	st := s.LatencyStore()
	t := &report.Table{
		Title:   "Figure 2b: median RTT coefficient of variation across users",
		Headers: []string{"access", "nearest-edge", "3rd-nearest-edge", "nearest-cloud", "all-clouds"},
	}
	for _, a := range latencyAccess {
		row := []any{a.String()}
		for _, k := range latencyTargets {
			row = append(row, st.MedianCVAcrossUsers(a, k))
		}
		t.AddRow(row...)
	}
	return t
}

// Table3 reproduces the hop-level latency breakdown.
func (s *Suite) Table3() *report.Table {
	st := s.LatencyStore()
	t := &report.Table{
		Title:   "Table 3: hop-level breakdown of network delay (share of RTT)",
		Headers: []string{"access", "target", "hop1", "hop2", "hop3", "rest"},
	}
	for _, a := range latencyAccess {
		for _, k := range []crowd.TargetKind{crowd.NearestEdge, crowd.NearestCloud} {
			row := st.HopBreakdown(a, k)
			t.AddRow(a.String(), k.String(), row.Share1, row.Share2, row.Share3, row.ShareRest)
		}
	}
	return t
}

// Table4 reproduces the co-location RTT/distance table.
func (s *Suite) Table4() *report.Table {
	rows := s.LatencyStore().CoLocationTable()
	t := &report.Table{
		Title: "Table 4: average RTT and city-level distance by co-location",
		Headers: []string{"class", "user-share",
			"rtt-edge-ms", "rtt-cloud-ms", "dist-edge-km", "dist-cloud-km"},
	}
	for _, r := range rows {
		t.AddRow(r.Class.String(), r.UserShare, r.RTTEdgeMs, r.RTTCloudMs, r.DistEdgeKm, r.DistCloudKm)
	}
	return t
}

// Figure3 reproduces the hop-count distributions.
func (s *Suite) Figure3() *report.Figure {
	st := s.LatencyStore()
	f := &report.Figure{
		Title:  "Figure 3: hop count to nearest edge vs clouds",
		XLabel: "hops", YLabel: "CDF",
	}
	f.AddCDF("nearest-edge", st.HopCounts(true))
	f.AddCDF("clouds", st.HopCounts(false))
	return f
}

// Figure4 reproduces inter-site RTT vs distance, plus the nearby-site
// counts quoted in §3.1.
func (s *Suite) Figure4() *report.Figure {
	r := s.root().Fork("fig4")
	pairs := topology.SampleInterSiteRTTs(r, s.NEP(), s.Spec.Sizing.InterSitePairs)
	xs := make([]float64, len(pairs))
	ys := make([]float64, len(pairs))
	for i, p := range pairs {
		xs[i] = p.DistanceKm
		ys[i] = p.RTTMs
	}
	f := &report.Figure{
		Title:  "Figure 4: inter-site RTT vs geographic distance",
		XLabel: "km", YLabel: "RTT ms",
	}
	f.AddSeries("site-pairs", xs, ys)
	counts := topology.NearbySiteCounts(s.NEP(), []float64{5, 10, 20})
	f.AddSeries("nearby-sites-within-5/10/20ms", []float64{5, 10, 20}, counts)
	return f
}

// Figure5 reproduces the throughput-vs-distance study.
func (s *Suite) Figure5() *report.Table {
	rows := crowd.ThroughputCorrelations(s.ThroughputObs())
	t := &report.Table{
		Title:   "Figure 5: TCP throughput vs distance (Pearson correlation)",
		Headers: []string{"access", "direction", "corr", "mean-mbps", "samples"},
	}
	for _, r := range rows {
		t.AddRow(r.Access.String(), r.Dir.String(), r.Corr, r.MeanMbps, r.N)
	}
	return t
}

// Table5 reproduces the QoE backend RTT table.
func (s *Suite) Table5() *report.Table {
	rows := qoe.RTTTable(s.root().Fork("table5"), 4)
	t := &report.Table{
		Title:   "Table 5: RTT to QoE backends (ms)",
		Headers: []string{"access", "Edge", "Cloud-1", "Cloud-2", "Cloud-3"},
	}
	for _, a := range latencyAccess {
		row := []any{a.String()}
		for _, b := range qoe.Backends() {
			v, _ := qoe.MeanRTT(rows, a, b.Name)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}

// Figure6 reproduces the cloud-gaming response-delay study: backends ×
// access networks, devices, and games.
func (s *Suite) Figure6() *report.Table {
	r := s.root().Fork("fig6")
	t := &report.Table{
		Title:   "Figure 6: cloud gaming response delay (ms)",
		Headers: []string{"variant", "median", "p95", "server-stage", "network-stage"},
	}
	add := func(name string, cfg gaming.Config) {
		sum := gaming.Summarize(gaming.Simulate(r, cfg, s.Spec.Sizing.QoESamples))
		t.AddRow(name, sum.MedianMs, sum.P95Ms, sum.Breakdown.Server,
			sum.Breakdown.Uplink+sum.Breakdown.Downlink)
	}
	// (a) network conditions: backends × WiFi/LTE/5G.
	for _, b := range qoe.Backends() {
		for _, a := range latencyAccess {
			add(fmt.Sprintf("%s/%s", b.Name, a), gaming.Config{Access: a, Backend: b})
		}
	}
	// (b) devices (default game/backend/WiFi).
	for _, d := range gaming.Devices() {
		add("device/"+d.Name, gaming.Config{Access: netmodel.WiFi, Device: d})
	}
	// (c) games.
	for _, g := range gaming.Games() {
		add("game/"+g.Name, gaming.Config{Access: netmodel.WiFi, Game: g})
	}
	// Ablations the paper discusses: GPU rendering and core count.
	add("ablation/gpu-rendering", gaming.Config{Access: netmodel.WiFi, GPURendering: true})
	add("ablation/16-cores", gaming.Config{Access: netmodel.WiFi, ServerCores: 16})
	return t
}

// Figure7 reproduces the live-streaming delay study.
func (s *Suite) Figure7() *report.Table {
	r := s.root().Fork("fig7")
	t := &report.Table{
		Title:   "Figure 7: live streaming delay (ms)",
		Headers: []string{"variant", "median", "p95", "network-stage", "capture+render"},
	}
	add := func(name string, cfg streaming.Config) {
		sum := streaming.Summarize(streaming.Simulate(r, cfg, s.Spec.Sizing.QoESamples))
		t.AddRow(name, sum.MedianMs, sum.P95Ms,
			sum.Breakdown.UplinkNet+sum.Breakdown.DownNet,
			sum.Breakdown.Capture+sum.Breakdown.Render)
	}
	for _, b := range qoe.Backends() {
		for _, a := range latencyAccess {
			add(fmt.Sprintf("%s/%s-1080p", b.Name, a),
				streaming.Config{Access: a, Backend: b, Resolution: streaming.R1080p})
		}
	}
	add("WiFi-720p", streaming.Config{Access: netmodel.WiFi, Resolution: streaming.R720p})
	add("WiFi-trans", streaming.Config{Access: netmodel.WiFi, Resolution: streaming.R1080p, Transcode: true})
	add("WiFi-jitterbuf-2MB", streaming.Config{
		Access: netmodel.WiFi, Resolution: streaming.R1080p, JitterBufferMB: 2})
	ff, _ := streaming.PlayerByName("FFplay")
	add("WiFi-ffplay", streaming.Config{Access: netmodel.WiFi, Resolution: streaming.R1080p, Player: ff})
	return t
}

// Figure8 reproduces the VM-size comparison.
func (s *Suite) Figure8() *report.Table {
	sn := analysis.VMSizes(s.NEPTrace())
	sc := analysis.VMSizes(s.CloudTrace())
	t := &report.Table{
		Title: "Figure 8: VM sizes (small ≤4, medium 5-16, large >16)",
		Headers: []string{"platform", "median-vcpus", "median-mem-gb",
			"cpu-small", "cpu-medium", "cpu-large", "mem-small", "mem-medium", "mem-large"},
	}
	t.AddRow("NEP", sn.MedianVCPUs, sn.MedianMemGB, sn.CPUSmall, sn.CPUMedium, sn.CPULarge,
		sn.MemSmall, sn.MemMedium, sn.MemLarge)
	t.AddRow("Azure-like", sc.MedianVCPUs, sc.MedianMemGB, sc.CPUSmall, sc.CPUMedium, sc.CPULarge,
		sc.MemSmall, sc.MemMedium, sc.MemLarge)
	return t
}

// Figure9 reproduces the per-app VM-count CDF.
func (s *Suite) Figure9() *report.Figure {
	f := &report.Figure{
		Title:  "Figure 9: VMs per app",
		XLabel: "VMs", YLabel: "CDF",
	}
	cn := analysis.AppVMCounts(s.NEPTrace())
	cc := analysis.AppVMCounts(s.CloudTrace())
	f.AddCDF(fmt.Sprintf("NEP (>=50 VMs: %.1f%%)", 100*analysis.ShareAtLeast(cn, 50)), cn)
	f.AddCDF(fmt.Sprintf("Azure-like (>=50 VMs: %.1f%%)", 100*analysis.ShareAtLeast(cc, 50)), cc)
	return f
}

// Figure10 reproduces the CPU-utilisation comparison.
func (s *Suite) Figure10() *report.Figure {
	un := analysis.Utilization(s.NEPTrace())
	uc := analysis.Utilization(s.CloudTrace())
	f := &report.Figure{
		Title:  "Figure 10: per-VM CPU utilisation and its temporal variance",
		XLabel: "CPU % (or CV)", YLabel: "CDF",
	}
	f.AddCDF("NEP mean-cpu", un.MeanCPU)
	f.AddCDF("Azure-like mean-cpu", uc.MeanCPU)
	f.AddCDF("NEP p95max-cpu", un.P95MaxCPU)
	f.AddCDF("Azure-like p95max-cpu", uc.P95MaxCPU)
	f.AddCDF("NEP cpu-cv", un.CPUCVs)
	f.AddCDF("Azure-like cpu-cv", uc.CPUCVs)
	return f
}

// Figure11 reproduces the cross-server/site imbalance study (Guangdong).
func (s *Suite) Figure11() *report.Table {
	rep := analysis.Imbalance(s.NEPTrace(), "Guangdong")
	t := &report.Table{
		Title:   "Figure 11: resource imbalance across Guangdong sites/servers (max/min)",
		Headers: []string{"scope", "metric", "gap", "units"},
	}
	t.AddRow("cross-site", "cpu", rep.SiteCPUGap, len(rep.SiteCPU))
	t.AddRow("cross-site", "net", rep.SiteNETGap, len(rep.SiteNET))
	t.AddRow("cross-server", "cpu", rep.ServerCPUGap, len(rep.ServerCPU))
	t.AddRow("cross-server", "net", rep.ServerNETGap, len(rep.ServerNET))
	return t
}

// Figure12 reproduces the per-app cross-VM imbalance CDF and the 11-VM day
// sample.
func (s *Suite) Figure12() *report.Figure {
	f := &report.Figure{
		Title:  "Figure 12: cross-VM usage gap within one app (P95/P5 of mean CPU)",
		XLabel: "gap (x)", YLabel: "CDF",
	}
	gn := analysis.AppGaps(s.NEPTrace(), 5)
	gc := analysis.AppGaps(s.CloudTrace(), 5)
	f.AddCDF(fmt.Sprintf("NEP (>=50x: %.1f%%)", 100*analysis.ShareAtLeast(gn, 50)), gn)
	f.AddCDF(fmt.Sprintf("Azure-like (>=50x: %.1f%%)", 100*analysis.ShareAtLeast(gc, 50)), gc)
	// 12b: one day of the largest app's VMs.
	for i, day := range analysis.AppDaySample(s.NEPTrace(), 11) {
		x := make([]float64, len(day))
		for j := range x {
			x[j] = float64(j)
		}
		f.AddSeries(fmt.Sprintf("day-sample-vm-%02d", i+1), x, day)
	}
	return f
}

// Figure13 reproduces the weekly bandwidth volatility plot.
func (s *Suite) Figure13() *report.Figure {
	d := s.NEPTrace()
	idx := analysis.MostVolatileBW(d, 4)
	f := &report.Figure{
		Title:  "Figure 13: weekly-averaged bandwidth of 4 volatile VMs",
		XLabel: "week", YLabel: "Mbps",
	}
	for i, row := range analysis.WeeklyBandwidth(d, idx) {
		x := make([]float64, len(row))
		for j := range x {
			x[j] = float64(j + 1)
		}
		f.AddSeries(fmt.Sprintf("VM-%d", i+1), x, row)
	}
	return f
}

// Figure14 reproduces the prediction study: Holt-Winters on both platforms
// (all sampled VMs) and the LSTM on a smaller subset (per-VM training).
func (s *Suite) Figure14() *report.Table {
	t := &report.Table{
		Title:   "Figure 14: CPU usage prediction RMSE (pct points)",
		Headers: []string{"platform", "model", "target", "median-rmse", "p90-rmse", "vms"},
	}
	for _, spec := range []struct {
		name string
		d    *vm.Dataset
	}{
		{"NEP", s.NEPTrace()},
		{"Azure-like", s.CloudTrace()},
	} {
		d := spec.d
		hw, err := predict.Evaluate(d, predict.Options{
			MaxVMs: s.Spec.Sizing.PredictVMs, Models: []string{"holt-winters"},
		})
		if err != nil {
			panic("core: " + err.Error())
		}
		lstm, err := predict.Evaluate(d, predict.Options{
			MaxVMs: s.Spec.Sizing.LSTMVMs, Models: []string{"lstm"}, LSTMEpochs: s.Spec.Sizing.LSTMEpochs,
		})
		if err != nil {
			panic("core: " + err.Error())
		}
		for _, target := range []predict.Target{predict.MaxCPU, predict.MeanCPU} {
			hwR := stats.SummarizeInPlace(predict.RMSEs(hw, "holt-winters", target))
			t.AddRow(spec.name, "holt-winters", target.String(),
				hwR.Median(), hwR.Percentile(90), hwR.Len())
			lR := stats.SummarizeInPlace(predict.RMSEs(lstm, "lstm", target))
			if lR.Len() > 0 {
				t.AddRow(spec.name, "lstm", target.String(),
					lR.Median(), lR.Percentile(90), lR.Len())
			}
		}
	}
	return t
}

// Table6 reproduces the monetary-cost comparison.
func (s *Suite) Table6() *report.Table {
	rows := billing.Table6(s.NEPTrace(), s.Spec.Sizing.BillingTopN)
	t := &report.Table{
		Title:   "Table 6: cloud cost normalised to NEP (>1 = NEP cheaper)",
		Headers: []string{"cloud", "network-model", "min", "max", "mean", "median", "cheaper-on-cloud", "apps"},
	}
	for _, r := range rows {
		t.AddRow(r.Cloud, r.Model.String(), r.Min, r.Max, r.Mean, r.Median, r.CheaperOnCloud, r.N)
	}
	b := billing.Breakdown(s.NEPTrace(), s.Spec.Sizing.BillingTopN)
	t.AddRow("breakdown", "mean-network-share", b.MeanNetworkShare, "", "", "", "", "")
	t.AddRow("breakdown", "max-network-share", b.MaxNetworkShare, "", "", "", "", "")
	t.AddRow("breakdown", "hw-ratio-cloud/NEP", b.HardwareRatioCloudOverNEP, "", "", "", "", "")
	t.AddRow("breakdown", "compute-ratio-cloud/NEP", b.ComputeRatioCloudOverNEP, "", "", "", "", "")
	return t
}

// Table7 reproduces the pricing-model worked examples.
func (s *Suite) Table7() *report.Table {
	t := &report.Table{
		Title:   "Table 7: billing model worked examples (RMB/month)",
		Headers: []string{"platform", "item", "example", "cost"},
	}
	v1, v2 := billing.VCloud1Net(), billing.VCloud2Net()
	t.AddRow("vCloud-1", "pre-reserved", "2 Mbps", v1.ReservedMonthly(2))
	t.AddRow("vCloud-1", "pre-reserved", "7 Mbps", v1.ReservedMonthly(7))
	t.AddRow("vCloud-1", "on-demand-bandwidth", "2 Mbps x 720h", v1.OnDemandHourly(2)*720)
	t.AddRow("vCloud-1", "on-demand-bandwidth", "7 Mbps x 720h", v1.OnDemandHourly(7)*720)
	t.AddRow("vCloud-1", "on-demand-quantity", "1 GB", v1.QuantityCost(1))
	t.AddRow("vCloud-2", "pre-reserved", "2 Mbps", v2.ReservedMonthly(2))
	t.AddRow("vCloud-2", "pre-reserved", "7 Mbps", v2.ReservedMonthly(7))
	t.AddRow("vCloud-2", "on-demand-bandwidth", "7 Mbps x 720h", v2.OnDemandHourly(7)*720)
	t.AddRow("NEP", "hardware", "1 vCPU + 1 GB + 1 GB disk", billing.NEPHardware().MonthlyHardware(1, 1, 1))
	t.AddRow("NEP", "network", "guangzhou-telecom 2 Mbps", 2*billing.NEPNetUnitPrice("Guangdong", "telecom"))
	t.AddRow("NEP", "network", "chengdu-telecom 2 Mbps", 2*billing.NEPNetUnitPrice("Sichuan", "telecom"))
	t.AddRow("NEP", "network", "guangzhou-cmcc 2 Mbps", 2*billing.NEPNetUnitPrice("Guangdong", "cmcc"))
	t.AddRow("NEP", "network", "chengdu-cmcc 2 Mbps", 2*billing.NEPNetUnitPrice("Sichuan", "cmcc"))
	return t
}

// NamedArtifact pairs an experiment ID with its rendered artifact.
type NamedArtifact struct {
	ID       string
	Desc     string
	Artifact report.Artifact
}
