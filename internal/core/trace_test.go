package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"edgescope/internal/obs"
)

// TestRunAllTraceCoversEveryNode: a traced RunArtifacts run records one span
// per scheduled node — every artifact and every substrate — under a single
// root, each attributed to a worker, and the trace serializes to valid
// Chrome trace JSON.
func TestRunAllTraceCoversEveryNode(t *testing.T) {
	s := NewSuite(1, Small)
	tr := obs.NewTracer(nil)
	s.SetTracer(tr)
	results, err := s.RunArtifacts(context.Background(), 4, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byName := map[string]obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["runall"]
	if !ok || root.Parent != 0 {
		t.Fatalf("missing root span: %+v", root)
	}
	for _, r := range results {
		sp, ok := byName[r.ID]
		if !ok {
			t.Errorf("no span for scheduled node %s", r.ID)
			continue
		}
		if sp.Parent == 0 {
			t.Errorf("span %s not parented under the run root", r.ID)
		}
		if sp.EndNS < sp.StartNS {
			t.Errorf("span %s ends before it starts: %+v", r.ID, sp)
		}
		if sp.Worker != r.Worker {
			t.Errorf("span %s worker = %d, result says %d", r.ID, sp.Worker, r.Worker)
		}
	}
	// The campaign substrate propagates the tracer into the observation walk.
	found := false
	for _, sp := range spans {
		if sp.Name == "observe-chunk" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no observe-chunk spans: campaign did not inherit the tracer")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(results) {
		t.Fatalf("trace has %d events for %d scheduled nodes", len(doc.TraceEvents), len(results))
	}
}

// TestTracedRunMatchesUntraced pins the observer-effect contract: attaching
// a tracer must not change a single byte of any artifact.
func TestTracedRunMatchesUntraced(t *testing.T) {
	render := func(traced bool) []byte {
		s := NewSuite(1, Small)
		if traced {
			s.SetTracer(obs.NewTracer(nil))
		}
		results, err := s.RunArtifacts(context.Background(), 2, []string{"table1", "fig2a"}, false)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, r := range results {
			if r.Artifact != nil {
				if err := r.Artifact.Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(false), render(true)) {
		t.Fatal("tracing changed artifact output")
	}
}
