// Package core is edgescope's experiment registry: one constructor per
// table and figure of the paper's evaluation, sharing lazily built
// substrates (the crowd campaign, the NEP and cloud workload traces) through
// a Suite. The cmd/ binaries and the repository-level benchmarks are thin
// wrappers over this package.
package core

import (
	"sync"

	"edgescope/internal/crowd"
	"edgescope/internal/rng"
	"edgescope/internal/topology"
	"edgescope/internal/vm"
	"edgescope/internal/workload"
)

// Scale selects experiment sizing.
type Scale int

// Scales: Small keeps every experiment under a second or two for CI and
// benchmarks; PaperScale approaches the paper's parameters (158 users, 30
// repeats, 4-week traces, LSTM sweeps).
const (
	Small Scale = iota
	PaperScale
)

// String names the scale.
func (s Scale) String() string {
	if s == PaperScale {
		return "paper"
	}
	return "small"
}

// params bundles the per-scale experiment sizing.
type params struct {
	users        int
	repeats      int
	nepApps      int
	cloudApps    int
	nepDays      int
	cloudDays    int
	interPairs   int
	qoeSamples   int
	predictVMs   int
	lstmVMs      int
	lstmEpochs   int
	billingTopN  int
	throughUsers int
	throughSites int
}

func paramsFor(s Scale) params {
	if s == PaperScale {
		return params{
			users: 158, repeats: 30,
			nepApps: 100, cloudApps: 500,
			nepDays: 28, cloudDays: 28,
			interPairs: 20000, qoeSamples: 50,
			predictVMs: 150, lstmVMs: 20, lstmEpochs: 8,
			billingTopN:  50,
			throughUsers: 25, throughSites: 20,
		}
	}
	return params{
		users: 60, repeats: 10,
		nepApps: 40, cloudApps: 150,
		nepDays: 14, cloudDays: 8,
		interPairs: 3000, qoeSamples: 30,
		predictVMs: 40, lstmVMs: 3, lstmEpochs: 3,
		billingTopN:  25,
		throughUsers: 15, throughSites: 12,
	}
}

// Suite shares substrates across experiments. All artifacts produced from
// the same (seed, scale) are byte-identical across runs and across
// parallelism levels: every substrate and artifact derives its randomness
// from an independent named fork of the root seed, never from shared stream
// position.
//
// A Suite is safe for concurrent use: each lazily built substrate is a
// sync.OnceValue, so any number of goroutines may request artifacts while
// the first requester builds, and a builder panic re-raises its descriptive
// error on every access instead of later callers observing a zero value.
// Substrates are immutable once built.
type Suite struct {
	Seed  uint64
	Scale Scale
	p     params

	campaign   func() *crowd.Campaign
	latencyObs func() []crowd.Observation
	thrObs     func() []crowd.ThroughputObs
	nepTrace   func() *vm.Dataset
	cloudTrace func() *vm.Dataset
}

// NewSuite builds an experiment suite.
func NewSuite(seed uint64, scale Scale) *Suite {
	s := &Suite{Seed: seed, Scale: scale, p: paramsFor(scale)}
	s.campaign = sync.OnceValue(func() *crowd.Campaign {
		return crowd.NewCampaign(s.root().Fork("campaign"), crowd.Options{
			NumUsers: s.p.users,
			Repeats:  s.p.repeats,
		})
	})
	s.latencyObs = sync.OnceValue(func() []crowd.Observation {
		return s.Campaign().RunLatency(s.root().Fork("latency"))
	})
	s.thrObs = sync.OnceValue(func() []crowd.ThroughputObs {
		return s.Campaign().RunThroughput(s.root().Fork("throughput"), crowd.ThroughputOptions{
			NumUsers: s.p.throughUsers,
			NumSites: s.p.throughSites,
		})
	})
	s.nepTrace = sync.OnceValue(func() *vm.Dataset {
		d, err := workload.GenerateNEP(s.root().Fork("nep-trace"), workload.Options{
			Apps: s.p.nepApps,
			Days: s.p.nepDays,
		})
		if err != nil {
			panic("core: NEP trace generation failed: " + err.Error())
		}
		return d
	})
	s.cloudTrace = sync.OnceValue(func() *vm.Dataset {
		d, err := workload.GenerateCloud(s.root().Fork("cloud-trace"), workload.Options{
			Apps: s.p.cloudApps,
			Days: s.p.cloudDays,
		})
		if err != nil {
			panic("core: cloud trace generation failed: " + err.Error())
		}
		return d
	})
	return s
}

func (s *Suite) root() *rng.Source { return rng.New(s.Seed) }

// Campaign returns (building on first use) the crowd campaign.
func (s *Suite) Campaign() *crowd.Campaign { return s.campaign() }

// LatencyObs returns the cached latency-campaign observations.
func (s *Suite) LatencyObs() []crowd.Observation { return s.latencyObs() }

// ThroughputObs returns the cached throughput-campaign observations.
func (s *Suite) ThroughputObs() []crowd.ThroughputObs { return s.thrObs() }

// NEP returns the edge platform topology of the campaign.
func (s *Suite) NEP() *topology.Platform { return s.Campaign().NEP }

// NEPTrace returns (generating on first use) the edge workload trace.
func (s *Suite) NEPTrace() *vm.Dataset { return s.nepTrace() }

// CloudTrace returns (generating on first use) the Azure-like cloud trace.
func (s *Suite) CloudTrace() *vm.Dataset { return s.cloudTrace() }
