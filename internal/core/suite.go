// Package core is edgescope's experiment registry: one constructor per
// table and figure of the paper's evaluation, sharing lazily built
// substrates (the crowd campaign, the NEP and cloud workload traces) through
// a Suite. The cmd/ binaries and the repository-level benchmarks are thin
// wrappers over this package.
//
// A Suite is configured entirely by a scenario.Spec: the declarative layer
// decides the user population, access mix, probe schedule, trace horizon
// and per-study sizing, and the Suite turns that data into substrates and
// artifacts. The legacy (seed, Scale) constructor survives as a shim over
// the "small" and "paper" built-in scenarios.
package core

import (
	"errors"
	"flag"
	"fmt"
	"sync"

	"edgescope/internal/crowd"
	"edgescope/internal/obs"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/topology"
	"edgescope/internal/vm"
	"edgescope/internal/workload"
)

// Scale selects one of the two legacy experiment sizings. It survives as a
// compatibility shim: each value is now just a name into the scenario
// registry, and every sizing knob lives in the scenario.Spec it resolves to.
type Scale int

// Scales: Small keeps every experiment under a second or two for CI and
// benchmarks; PaperScale approaches the paper's parameters (158 users, 30
// repeats, 4-week traces, LSTM sweeps).
const (
	Small Scale = iota
	PaperScale
)

// String names the scale; the name doubles as the built-in scenario name.
func (s Scale) String() string {
	if s == PaperScale {
		return "paper"
	}
	return "small"
}

// Spec resolves the scale to a copy of its built-in scenario spec.
func (s Scale) Spec() *scenario.Spec { return scenario.MustGet(s.String()) }

// ParseScale is the one place the legacy `-scale small|paper` CLI surface
// is parsed; every binary that still offers the flag goes through it.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "paper":
		return PaperScale, nil
	}
	return Small, fmt.Errorf("core: unknown scale %q (valid: small, paper)", name)
}

// ResolveScenario turns the CLI surface into a validated spec in one place:
// -scenario (a registry name or a path to a JSON spec) wins when set,
// otherwise the legacy -scale value resolves through ParseScale onto the
// matching built-in.
func ResolveScenario(scenarioArg, scaleArg string) (*scenario.Spec, error) {
	if scenarioArg != "" {
		return scenario.Resolve(scenarioArg)
	}
	sc, err := ParseScale(scaleArg)
	if err != nil {
		return nil, err
	}
	return sc.Spec(), nil
}

// SuiteFromFlags is the one entry point the CLI binaries share: it resolves
// -scenario/-scale through ResolveScenario, applies the shared -seed
// precedence rule — a seed flag the user explicitly set on fs (which must
// already be parsed) overrides the scenario's seed, otherwise the spec
// rules — and builds the Suite.
func SuiteFromFlags(fs *flag.FlagSet, scenarioArg, scaleArg, seedFlagName string, seedValue uint64) (*Suite, error) {
	spec, err := ResolveScenario(scenarioArg, scaleArg)
	if err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == seedFlagName {
			spec.Seed = seedValue
		}
	})
	return NewSuiteFromSpec(spec)
}

// Suite shares substrates across experiments. All artifacts produced from
// the same scenario spec (seed included) are byte-identical across runs and
// across parallelism levels: every substrate and artifact derives its
// randomness from an independent named fork of the root seed, never from
// shared stream position.
//
// A Suite is safe for concurrent use: each lazily built substrate is a
// sync.OnceValue, so any number of goroutines may request artifacts while
// the first requester builds, and a builder panic re-raises its descriptive
// error on every access instead of later callers observing a zero value.
// Substrates are immutable once built.
type Suite struct {
	Seed uint64
	// Spec is the validated scenario driving every substrate and sizing.
	// It is a private copy; treat it as immutable.
	Spec *scenario.Spec

	campaign     func() *crowd.Campaign
	latencyStore func() *crowd.ObservationStore
	thrObs       func() []crowd.ThroughputObs
	nepTrace     func() *vm.Dataset
	cloudTrace   func() *vm.Dataset

	// tracer records execution spans (RunArtifacts nodes, crowd chunk
	// fan-outs). nil — the default — records nothing; see SetTracer.
	tracer *obs.Tracer
}

// SetTracer attaches a span tracer to the suite. Call it before the first
// substrate builds: the campaign propagates the tracer to its own chunked
// observation walk when constructed, so a tracer set later sees the
// scheduler's spans but not the already-built substrates' internals. Tracing
// never changes what is computed — artifacts stay byte-identical with and
// without it.
func (s *Suite) SetTracer(t *obs.Tracer) { s.tracer = t }

// Tracer returns the attached span tracer, nil (record nothing) by default.
func (s *Suite) Tracer() *obs.Tracer { return s.tracer }

// NewSuiteFromSpec builds an experiment suite from a declarative scenario.
// The spec is validated and copied, so later caller mutations cannot leak
// into a running suite.
func NewSuiteFromSpec(sp *scenario.Spec) (*Suite, error) {
	if sp == nil {
		return nil, errors.New("core: nil scenario spec")
	}
	cp := sp.Clone()
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	s := &Suite{Seed: cp.Seed, Spec: cp}
	s.campaign = sync.OnceValue(func() *crowd.Campaign {
		c := crowd.NewCampaign(s.root().Fork("campaign"), cp.Crowd)
		c.Tracer = s.tracer
		return c
	})
	s.latencyStore = sync.OnceValue(func() *crowd.ObservationStore {
		return crowd.NewObservationStore(s.Campaign(), s.root().Fork("latency"))
	})
	s.thrObs = sync.OnceValue(func() []crowd.ThroughputObs {
		return s.Campaign().RunThroughput(s.root().Fork("throughput"))
	})
	s.nepTrace = sync.OnceValue(func() *vm.Dataset {
		d, err := workload.GenerateNEP(s.root().Fork("nep-trace"), workload.NEPFromSpec(cp.Workload))
		if err != nil {
			panic("core: NEP trace generation failed: " + err.Error())
		}
		return d
	})
	s.cloudTrace = sync.OnceValue(func() *vm.Dataset {
		d, err := workload.GenerateCloud(s.root().Fork("cloud-trace"), workload.CloudFromSpec(cp.Workload))
		if err != nil {
			panic("core: cloud trace generation failed: " + err.Error())
		}
		return d
	})
	return s, nil
}

// NewSuite is the legacy constructor: the scale's built-in scenario with
// the given seed. Built-ins always validate, so it cannot fail.
func NewSuite(seed uint64, scale Scale) *Suite {
	sp := scale.Spec()
	sp.Seed = seed
	s, err := NewSuiteFromSpec(sp)
	if err != nil {
		panic("core: built-in scenario invalid: " + err.Error())
	}
	return s
}

// Name returns the scenario name the suite runs.
func (s *Suite) Name() string { return s.Spec.Name }

func (s *Suite) root() *rng.Source { return rng.New(s.Seed) }

// Campaign returns (building on first use) the crowd campaign.
func (s *Suite) Campaign() *crowd.Campaign { return s.campaign() }

// LatencyStore returns (building on first use) the columnar latency
// substrate: one observation walk, columnarised once, consumed by every
// latency-family artifact.
func (s *Suite) LatencyStore() *crowd.ObservationStore { return s.latencyStore() }

// LatencyObs returns the cached latency-campaign observations — the
// array-of-structs view over the columnar substrate, in emission order.
func (s *Suite) LatencyObs() []crowd.Observation { return s.latencyStore().View() }

// ThroughputObs returns the cached throughput-campaign observations.
func (s *Suite) ThroughputObs() []crowd.ThroughputObs { return s.thrObs() }

// NEP returns the edge platform topology of the campaign.
func (s *Suite) NEP() *topology.Platform { return s.Campaign().NEP }

// NEPTrace returns (generating on first use) the edge workload trace.
func (s *Suite) NEPTrace() *vm.Dataset { return s.nepTrace() }

// CloudTrace returns (generating on first use) the Azure-like cloud trace.
func (s *Suite) CloudTrace() *vm.Dataset { return s.cloudTrace() }
