package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	artifacts []NamedArtifact
)

func smallSuite(t *testing.T) (*Suite, []NamedArtifact) {
	t.Helper()
	suiteOnce.Do(func() {
		suite = NewSuite(1, Small)
		artifacts = suite.All()
	})
	return suite, artifacts
}

func TestAllExperimentsProduceArtifacts(t *testing.T) {
	_, as := smallSuite(t)
	if len(as) != 21 {
		t.Fatalf("artifacts = %d, want 21 (every table and figure)", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.ID == "" || a.Desc == "" || a.Artifact == nil {
			t.Fatalf("incomplete artifact %+v", a)
		}
		if seen[a.ID] {
			t.Fatalf("duplicate artifact ID %s", a.ID)
		}
		seen[a.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig2a", "fig2b", "table3", "table4",
		"fig3", "fig4", "fig5", "table5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "table6", "table7"} {
		if !seen[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestArtifactsRenderAndExport(t *testing.T) {
	_, as := smallSuite(t)
	for _, a := range as {
		var buf bytes.Buffer
		if err := a.Artifact.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", a.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", a.ID)
		}
		var csv bytes.Buffer
		if err := a.Artifact.WriteCSV(&csv); err != nil {
			t.Fatalf("%s csv: %v", a.ID, err)
		}
		if !strings.Contains(csv.String(), ",") {
			t.Fatalf("%s csv has no columns", a.ID)
		}
	}
}

func TestSuiteCachesSubstrates(t *testing.T) {
	s, _ := smallSuite(t)
	if s.NEPTrace() != s.NEPTrace() {
		t.Fatal("NEP trace not cached")
	}
	if s.Campaign() != s.Campaign() {
		t.Fatal("campaign not cached")
	}
	if len(s.LatencyObs()) == 0 {
		t.Fatal("no latency observations")
	}
}

func TestFigure2aTableShape(t *testing.T) {
	s, _ := smallSuite(t)
	tbl := s.Figure2a()
	if len(tbl.Rows) != 3 { // WiFi, LTE, 5G
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if len(tbl.Headers) != 5 {
		t.Fatalf("headers = %d", len(tbl.Headers))
	}
}

func TestScaleString(t *testing.T) {
	if Small.String() != "small" || PaperScale.String() != "paper" {
		t.Fatal("Scale String broken")
	}
}

func TestDeterministicAcrossSuites(t *testing.T) {
	a := NewSuite(9, Small).Table1()
	b := NewSuite(9, Small).Table1()
	var ba, bb bytes.Buffer
	if err := a.Render(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("Table1 not deterministic")
	}
}

func TestExtensionsProduceArtifacts(t *testing.T) {
	s, _ := smallSuite(t)
	exts := s.Extensions()
	if len(exts) != 5 {
		t.Fatalf("extensions = %d, want 5", len(exts))
	}
	for _, a := range exts {
		var buf bytes.Buffer
		if err := a.Artifact.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", a.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", a.ID)
		}
	}
}

func TestExtDensityMonotone(t *testing.T) {
	s, _ := smallSuite(t)
	tbl := s.ExtDensity()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Denser deployments must not increase the median RTT; MEC is fastest.
	rtt := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[2], "%f", &v); err != nil {
			t.Fatalf("bad rtt cell %q", row[2])
		}
		return v
	}
	sparse, today, denser, mec := rtt(tbl.Rows[0]), rtt(tbl.Rows[1]), rtt(tbl.Rows[2]), rtt(tbl.Rows[3])
	if !(mec < denser && denser <= today && today <= sparse) {
		t.Fatalf("density ordering broken: sparse %.1f today %.1f denser %.1f mec %.1f",
			sparse, today, denser, mec)
	}
}

func TestExtMigrationImproves(t *testing.T) {
	s, _ := smallSuite(t)
	tbl := s.ExtMigration()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		var before, after float64
		if _, err := fmt.Sscanf(row[2], "%f", &before); err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if _, err := fmt.Sscanf(row[3], "%f", &after); err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		if after > before {
			t.Fatalf("migration increased the gap: %v → %v", before, after)
		}
	}
}
