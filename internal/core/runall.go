package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"edgescope/internal/par"
	"edgescope/internal/report"
)

// Substrate identifiers for the dependency graph. Substrates are the shared
// expensive inputs (the crowd campaign and the two workload traces); every
// artifact declares which ones it reads so the scheduler can build them
// first — concurrently with each other — and only then release the
// artifacts that need them.
const (
	subCampaign   = "substrate/campaign"
	subLatency    = "substrate/latency-obs"
	subThroughput = "substrate/throughput-obs"
	subNEPTrace   = "substrate/nep-trace"
	subCloudTrace = "substrate/cloud-trace"
)

// substrateDeps orders substrate construction: the two observation sets
// need the campaign's topology and user population first.
var substrateDeps = map[string][]string{
	subCampaign:   nil,
	subLatency:    {subCampaign},
	subThroughput: {subCampaign},
	subNEPTrace:   nil,
	subCloudTrace: nil,
}

func (s *Suite) buildSubstrate(id string) {
	switch id {
	case subCampaign:
		s.Campaign()
	case subLatency:
		s.LatencyObs()
	case subThroughput:
		s.ThroughputObs()
	case subNEPTrace:
		s.NEPTrace()
	case subCloudTrace:
		s.CloudTrace()
	default:
		panic("core: unknown substrate " + id)
	}
}

// artifactSpec is one entry of the experiment registry: a paper (or
// extension) artifact, the substrates it reads, and its builder. All(),
// Extensions() and RunAll derive from this single list, so the serial and
// parallel paths can never drift apart.
type artifactSpec struct {
	id    string
	desc  string
	deps  []string
	ext   bool
	build func(*Suite) report.Artifact
}

func specs() []artifactSpec {
	return []artifactSpec{
		{id: "table1", desc: "deployment density", deps: []string{subCampaign},
			build: func(s *Suite) report.Artifact { return s.Table1() }},
		{id: "table2", desc: "workload-trace survey", deps: []string{subNEPTrace},
			build: func(s *Suite) report.Artifact { return s.Table2() }},
		{id: "fig2a", desc: "median RTT by access and target", deps: []string{subLatency},
			build: func(s *Suite) report.Artifact { return s.Figure2a() }},
		{id: "fig2b", desc: "RTT jitter (CV)", deps: []string{subLatency},
			build: func(s *Suite) report.Artifact { return s.Figure2b() }},
		{id: "table3", desc: "hop-level latency breakdown", deps: []string{subLatency},
			build: func(s *Suite) report.Artifact { return s.Table3() }},
		{id: "table4", desc: "co-location RTT/distance", deps: []string{subLatency},
			build: func(s *Suite) report.Artifact { return s.Table4() }},
		{id: "fig3", desc: "hop counts", deps: []string{subLatency},
			build: func(s *Suite) report.Artifact { return s.Figure3() }},
		{id: "fig4", desc: "inter-site RTT", deps: []string{subCampaign},
			build: func(s *Suite) report.Artifact { return s.Figure4() }},
		{id: "fig5", desc: "throughput vs distance", deps: []string{subThroughput},
			build: func(s *Suite) report.Artifact { return s.Figure5() }},
		{id: "table5", desc: "QoE backend RTTs",
			build: func(s *Suite) report.Artifact { return s.Table5() }},
		{id: "fig6", desc: "cloud gaming response delay",
			build: func(s *Suite) report.Artifact { return s.Figure6() }},
		{id: "fig7", desc: "live streaming delay",
			build: func(s *Suite) report.Artifact { return s.Figure7() }},
		{id: "fig8", desc: "VM sizes", deps: []string{subNEPTrace, subCloudTrace},
			build: func(s *Suite) report.Artifact { return s.Figure8() }},
		{id: "fig9", desc: "VMs per app", deps: []string{subNEPTrace, subCloudTrace},
			build: func(s *Suite) report.Artifact { return s.Figure9() }},
		{id: "fig10", desc: "CPU utilisation", deps: []string{subNEPTrace, subCloudTrace},
			build: func(s *Suite) report.Artifact { return s.Figure10() }},
		{id: "fig11", desc: "cross-site/server imbalance", deps: []string{subNEPTrace},
			build: func(s *Suite) report.Artifact { return s.Figure11() }},
		{id: "fig12", desc: "per-app cross-VM gap", deps: []string{subNEPTrace, subCloudTrace},
			build: func(s *Suite) report.Artifact { return s.Figure12() }},
		{id: "fig13", desc: "weekly bandwidth volatility", deps: []string{subNEPTrace},
			build: func(s *Suite) report.Artifact { return s.Figure13() }},
		{id: "fig14", desc: "usage prediction RMSE", deps: []string{subNEPTrace, subCloudTrace},
			build: func(s *Suite) report.Artifact { return s.Figure14() }},
		{id: "table6", desc: "monetary cost ratios", deps: []string{subNEPTrace},
			build: func(s *Suite) report.Artifact { return s.Table6() }},
		{id: "table7", desc: "pricing worked examples",
			build: func(s *Suite) report.Artifact { return s.Table7() }},

		{id: "ext-density", desc: "denser deployment and MEC sinking", ext: true,
			deps:  []string{subCampaign},
			build: func(s *Suite) report.Artifact { return s.ExtDensity() }},
		{id: "ext-migration", desc: "migration-based rebalancing", ext: true,
			deps:  []string{subNEPTrace},
			build: func(s *Suite) report.Artifact { return s.ExtMigration() }},
		{id: "ext-scheduling", desc: "nearest-site vs load-aware GSLB", ext: true,
			build: func(s *Suite) report.Artifact { return s.ExtScheduling() }},
		{id: "ext-elastic", desc: "reserved VMs vs serverless", ext: true,
			build: func(s *Suite) report.Artifact { return s.ExtElastic() }},
		{id: "ext-telemetry", desc: "streaming telemetry vs batch summary", ext: true,
			deps:  []string{subLatency},
			build: func(s *Suite) report.Artifact { return s.ExtTelemetry() }},
	}
}

// ArtifactIDs lists every valid artifact ID in registry (paper) order,
// extension IDs last. Callers use it for -only validation messages and CLI
// help.
func ArtifactIDs() []string {
	var out []string
	for _, sp := range specs() {
		out = append(out, sp.id)
	}
	return out
}

// ArtifactResult is one scheduled unit's outcome: a paper artifact with its
// rendered table/figure, or a substrate build (Artifact == nil) timed on its
// own so callers can see where the wall time went. Worker is the pool slot
// that ran the node — attribution for traces and timing reports, never an
// input to the computation.
type ArtifactResult struct {
	ID       string
	Desc     string
	Artifact report.Artifact // nil for substrate builds
	Elapsed  time.Duration
	Worker   int
}

// RunAll builds every paper artifact over a worker pool of the given
// parallelism (<= 0 means one worker per CPU). Substrates are scheduled
// first — concurrently with each other where their own dependencies allow —
// and each artifact is released as soon as the substrates it declares are
// ready. The output is byte-identical for a given (seed, scale) regardless
// of parallelism: artifacts never share random-stream position, only
// immutable substrates.
//
// Results list the substrate builds first (Artifact == nil, timed), then
// every artifact in paper order irrespective of completion order.
func (s *Suite) RunAll(ctx context.Context, parallelism int) ([]ArtifactResult, error) {
	return s.RunArtifacts(ctx, parallelism, nil, false)
}

// RunArtifacts is RunAll restricted to a subset: only lists the artifact
// IDs to build (nil means all), and includeExt adds the extension
// experiments. Unknown IDs are an error. Substrates not needed by the
// selection are neither built nor timed.
func (s *Suite) RunArtifacts(ctx context.Context, parallelism int, only []string, includeExt bool) ([]ArtifactResult, error) {
	all := specs()
	var selected []artifactSpec
	if len(only) > 0 {
		known := map[string]artifactSpec{}
		for _, sp := range all {
			known[sp.id] = sp
		}
		seen := map[string]bool{}
		for _, id := range only {
			sp, ok := known[id]
			if !ok {
				return nil, fmt.Errorf("core: unknown artifact %q (valid: %s)",
					id, strings.Join(ArtifactIDs(), ", "))
			}
			if !seen[id] {
				seen[id] = true
				selected = append(selected, sp)
			}
		}
	} else {
		for _, sp := range all {
			if sp.ext && !includeExt {
				continue
			}
			selected = append(selected, sp)
		}
	}

	// Collect the substrates the selection needs, with transitive deps.
	needed := map[string]bool{}
	var expand func(id string)
	expand = func(id string) {
		if needed[id] {
			return
		}
		needed[id] = true
		for _, d := range substrateDeps[id] {
			expand(d)
		}
	}
	for _, sp := range selected {
		for _, d := range sp.deps {
			expand(d)
		}
	}

	type node struct {
		id   string
		kind string // span annotation: "substrate" or "artifact"
		deps []string
		run  func(worker int)
	}
	var nodes []node
	subOrder := []string{subCampaign, subLatency, subThroughput, subNEPTrace, subCloudTrace}
	subResults := map[string]*ArtifactResult{}
	for _, id := range subOrder {
		if !needed[id] {
			continue
		}
		id := id
		res := &ArtifactResult{ID: id, Desc: "substrate build"}
		subResults[id] = res
		nodes = append(nodes, node{id: id, kind: "substrate", deps: substrateDeps[id], run: func(worker int) {
			start := time.Now()
			s.buildSubstrate(id)
			res.Elapsed = time.Since(start)
			res.Worker = worker
		}})
	}
	artResults := make([]ArtifactResult, len(selected))
	for i, sp := range selected {
		i, sp := i, sp
		nodes = append(nodes, node{id: sp.id, kind: "artifact", deps: sp.deps, run: func(worker int) {
			start := time.Now()
			a := sp.build(s)
			artResults[i] = ArtifactResult{ID: sp.id, Desc: sp.desc, Artifact: a, Elapsed: time.Since(start), Worker: worker}
		}})
	}

	// Schedule the DAG over the worker pool.
	var (
		mu         sync.Mutex
		firstErr   error
		stopped    bool
		remaining  = len(nodes)
		indegree   = map[string]int{}
		dependents = map[string][]int{}
		byID       = map[string]int{}
	)
	ready := make(chan int, len(nodes))
	stop := func(err error) { // call with mu held
		if !stopped {
			stopped = true
			if firstErr == nil {
				firstErr = err
			}
			close(ready)
		}
	}
	for i, n := range nodes {
		byID[n.id] = i
	}
	for i, n := range nodes {
		for _, d := range n.deps {
			if _, ok := byID[d]; !ok {
				return nil, fmt.Errorf("core: artifact %s depends on unscheduled %s", n.id, d)
			}
			indegree[n.id]++
			dependents[d] = append(dependents[d], i)
		}
	}
	for i, n := range nodes {
		if indegree[n.id] == 0 {
			ready <- i
		}
	}

	workers := par.Workers(parallelism)
	if workers > len(nodes) {
		workers = len(nodes)
	}
	// One span per scheduled node under a run root, attributed to the pool
	// slot that ran it — on a nil tracer every call below is a no-op branch.
	s.tracer.Reserve(len(nodes) + 1)
	rootSpan := s.tracer.Begin("runall", 0)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					mu.Lock()
					stop(ctx.Err())
					mu.Unlock()
					return
				case i, ok := <-ready:
					if !ok {
						return
					}
					span := s.tracer.Begin(nodes[i].id, rootSpan)
					s.tracer.SetWorker(span, w)
					s.tracer.Annotate(span, "kind", nodes[i].kind)
					err := runNode(func() { nodes[i].run(w) })
					s.tracer.End(span)
					mu.Lock()
					if err != nil {
						stop(err)
						mu.Unlock()
						return
					}
					remaining--
					for _, di := range dependents[nodes[i].id] {
						indegree[nodes[di].id]--
						if indegree[nodes[di].id] == 0 && !stopped {
							ready <- di
						}
					}
					if remaining == 0 {
						stop(nil)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	s.tracer.End(rootSpan)
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]ArtifactResult, 0, len(subResults)+len(artResults))
	for _, id := range subOrder {
		if r, ok := subResults[id]; ok {
			out = append(out, *r)
		}
	}
	out = append(out, artResults...)
	return out, nil
}

// runNode executes one node, converting a panic in an experiment builder
// into an error so a failure cancels the run instead of killing the
// process from a worker goroutine.
func runNode(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: experiment panicked: %v", r)
		}
	}()
	fn()
	return nil
}

// All runs every paper experiment serially in paper order.
func (s *Suite) All() []NamedArtifact {
	var out []NamedArtifact
	for _, sp := range specs() {
		if sp.ext {
			continue
		}
		out = append(out, NamedArtifact{ID: sp.id, Desc: sp.desc, Artifact: sp.build(s)})
	}
	return out
}

// Extensions lists the non-paper artifacts.
func (s *Suite) Extensions() []NamedArtifact {
	var out []NamedArtifact
	for _, sp := range specs() {
		if !sp.ext {
			continue
		}
		out = append(out, NamedArtifact{ID: sp.id, Desc: sp.desc, Artifact: sp.build(s)})
	}
	return out
}
