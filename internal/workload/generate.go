package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"edgescope/internal/geo"
	"edgescope/internal/mathx"
	"edgescope/internal/placement"
	"edgescope/internal/rng"
	"edgescope/internal/timeseries"
	"edgescope/internal/vm"
)

// Options configures trace generation. Zero values take platform defaults.
type Options struct {
	// Apps is the number of applications (customers × images).
	Apps int
	// Days is the trace length; the paper collected 3 months, the default
	// is 14 days to bound memory while spanning both daily and weekly
	// cycles. Use 28+ for prediction experiments.
	Days int
	// CPUInterval is the CPU sampling period (paper: 1 min; default 5 min).
	CPUInterval time.Duration
	// BWInterval is the bandwidth sampling period (paper and default: 5
	// min, but 15 min by default to bound memory).
	BWInterval time.Duration
	// Start is the trace start; defaults to 2020-06-01 like the dataset.
	Start time.Time
	// Categories overrides the platform's app mix.
	Categories []Category
	// Strategy overrides the placement strategy (default: NEPDefault for
	// edge, Random for cloud).
	Strategy placement.Strategy
}

func (o *Options) fill(defaultApps int) {
	if o.Apps == 0 {
		o.Apps = defaultApps
	}
	if o.Days == 0 {
		o.Days = 14
	}
	if o.CPUInterval == 0 {
		o.CPUInterval = 5 * time.Minute
	}
	if o.BWInterval == 0 {
		o.BWInterval = 15 * time.Minute
	}
	if o.Start.IsZero() {
		o.Start = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	}
}

// provincePops returns provinces with their city-population totals, sorted
// by population descending (the demand-popularity ranking).
func provincePops() ([]string, []float64) {
	totals := map[string]float64{}
	for _, c := range geo.Cities() {
		totals[c.Province] += c.PopulationM
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	pops := make([]float64, len(names))
	for i, n := range names {
		pops[i] = totals[n]
	}
	return names, pops
}

// buildNEPSites creates the edge inventory: per-province site counts grow
// sub-linearly with population (Guangdong ends up with ~11 sites, matching
// the Figure 11 sample).
func buildNEPSites(r *rng.Source) []*vm.Site {
	names, pops := provincePops()
	var sites []*vm.Site
	for i, prov := range names {
		n := int(math.Round(math.Pow(pops[i], 0.8) / 2.5))
		if n < 2 {
			n = 2
		}
		for k := 0; k < n; k++ {
			// Memory-rich servers (8 GB/core) against 4 GB/vCPU subscriptions
			// reproduce the paper's finding that CPU sells at ~2× the rate
			// of memory.
			servers := make([]vm.Server, 6+r.IntN(18))
			for s := range servers {
				servers[s] = vm.Server{CPUCores: 64, MemGB: 512}
			}
			sites = append(sites, &vm.Site{
				Name:     fmt.Sprintf("%s-%02d", prov, k+1),
				Province: prov,
				Servers:  servers,
			})
		}
	}
	return sites
}

// buildCloudSites creates the cloud inventory: 8 large regions.
func buildCloudSites(r *rng.Source) []*vm.Site {
	regions := []string{"Beijing", "Shanghai", "Zhejiang", "Guangdong",
		"Shandong", "Sichuan", "InnerMongolia", "Guangdong"}
	var sites []*vm.Site
	for i, prov := range regions {
		servers := make([]vm.Server, 150)
		for s := range servers {
			servers[s] = vm.Server{CPUCores: 96, MemGB: 384}
		}
		sites = append(sites, &vm.Site{
			Name:     fmt.Sprintf("region-%d", i+1),
			Province: prov,
			Servers:  servers,
		})
	}
	return sites
}

// GenerateNEP synthesises the edge-platform trace.
func GenerateNEP(r *rng.Source, opts Options) (*vm.Dataset, error) {
	opts.fill(100)
	if opts.Categories == nil {
		opts.Categories = NEPCategories()
	}
	if opts.Strategy == nil {
		opts.Strategy = placement.NEPDefault{}
	}
	sites := buildNEPSites(r.Fork("sites"))
	return generate(r, opts, "NEP", sites, true)
}

// GenerateCloud synthesises the Azure-like cloud trace.
func GenerateCloud(r *rng.Source, opts Options) (*vm.Dataset, error) {
	opts.fill(500)
	if opts.Categories == nil {
		opts.Categories = CloudCategories()
	}
	if opts.Strategy == nil {
		opts.Strategy = placement.Random{}
	}
	sites := buildCloudSites(r.Fork("sites"))
	return generate(r, opts, "Cloud", sites, false)
}

func generate(r *rng.Source, opts Options, platform string, sites []*vm.Site, geoSkew bool) (*vm.Dataset, error) {
	st := placement.NewClusterState(sites)
	provNames, provPops := provincePops()
	_ = provPops
	d := &vm.Dataset{
		Platform: platform,
		Start:    opts.Start,
		Duration: time.Duration(opts.Days) * 24 * time.Hour,
		Sites:    sites,
	}

	catWeights := make([]float64, len(opts.Categories))
	for i, c := range opts.Categories {
		catWeights[i] = c.Share
	}
	provZipf := rng.NewZipf(r.Fork("prov"), 1.3, len(provNames))

	vmID := 0
	for app := 0; app < opts.Apps; app++ {
		cat := opts.Categories[r.Choice(catWeights)]
		nVMs := int(r.BoundedPareto(cat.MinVMs, cat.VMAlpha, cat.MaxVMs))
		if nVMs < 1 {
			nVMs = 1
		}
		vcpu := cat.VCPUOptions[r.Choice(cat.VCPUWeights)]
		mem := vcpu * cat.GBPerVCPU

		// Demand geography: edge apps subscribe in a few popular provinces;
		// cloud apps ignore geography.
		var provs []string
		if geoSkew && cat.Provinces > 0 {
			seen := map[string]bool{}
			for len(provs) < cat.Provinces {
				p := provNames[provZipf.Next()]
				if !seen[p] {
					seen[p] = true
					provs = append(provs, p)
				}
			}
		} else {
			provs = []string{""}
		}

		// Split the fleet across provinces (first province dominates).
		perProv := splitCounts(r, nVMs, len(provs))

		// App-level usage parameters shared by its VMs.
		appBase := r.LogNormalMeanMedian(cat.CPUMedianPct, cat.CPUSigma*0.6)
		appAmp := r.Uniform(cat.AmpLo, cat.AmpHi)
		appPeak := cat.PeakHour + r.Normal(0, 1.5)
		crossSigma := r.Uniform(cat.CrossVMSigmaLo, cat.CrossVMSigmaHi)
		appBWBase := float64(vcpu) * r.LogNormalMeanMedian(cat.BWPerVCPUMedian, cat.BWSigma)

		for pi, prov := range provs {
			if perProv[pi] == 0 {
				continue
			}
			req := placement.Request{VCPUs: vcpu, MemGB: mem, Province: prov, Count: perProv[pi]}
			assigns, err := opts.Strategy.Place(r, st, req)
			if err != nil {
				// Province full: fall back to anywhere (NEP would negotiate
				// an adjacent province with the customer).
				req.Province = ""
				var err2 error
				assigns, err2 = opts.Strategy.Place(r, st, req)
				if err2 != nil {
					return nil, fmt.Errorf("workload: placing app %d: %w", app, err2)
				}
			}
			for _, a := range assigns {
				mult := math.Exp(r.Normal(0, crossSigma))
				level := appBase * mult
				cpu := usageSeries(r, seriesParams{
					level: level, amp: appAmp, peakHour: appPeak,
					windowHours: cat.WindowHours, noiseCV: cat.NoiseCV,
					days: opts.Days, interval: opts.CPUInterval,
					start: opts.Start, clampHi: 95, weekendFactor: weekendFactorFor(cat.Name),
				})
				volatile := r.Bernoulli(cat.VolatileBWProb)
				bw := usageSeries(r, seriesParams{
					level: appBWBase * mult, amp: appAmp, peakHour: appPeak,
					windowHours: cat.WindowHours, noiseCV: cat.NoiseCV * 1.3,
					days: opts.Days, interval: opts.BWInterval,
					start: opts.Start, clampHi: 0, weekendFactor: weekendFactorFor(cat.Name),
					volatileWeeks: volatile, volatileSigma: 0.9,
				})
				var priv *timeseries.Series
				if cat.Name == "content-delivery" || cat.Name == "live-streaming" {
					priv = bw.Scale(0.1)
				}
				mean := cpu.Mean()
				st.ObserveUsage(a.Site, a.Server, mean)
				d.VMs = append(d.VMs, &vm.VM{
					ID: vmID, App: app, Customer: app, // 1 app per customer
					Site: a.Site, Server: a.Server,
					VCPUs: vcpu, MemGB: mem,
					DiskGB:    int(r.BoundedPareto(cat.DiskXmGB, cat.DiskAlpha, cat.DiskCapGB)),
					CPU:       cpu,
					PublicBW:  bw,
					PrivateBW: priv,
				})
				vmID++
			}
		}
	}
	return d, nil
}

// splitCounts divides n VMs over k buckets with geometric decay (the first
// province gets roughly half).
func splitCounts(r *rng.Source, n, k int) []int {
	if k <= 1 {
		return []int{n}
	}
	out := make([]int, k)
	remaining := n
	for i := 0; i < k-1; i++ {
		share := int(float64(remaining) * r.Uniform(0.4, 0.7))
		if share < 1 && remaining > 0 {
			share = 1
		}
		out[i] = share
		remaining -= share
		if remaining <= 0 {
			remaining = 0
			break
		}
	}
	out[k-1] += remaining
	return out
}

func weekendFactorFor(category string) float64 {
	switch category {
	case "online-education":
		return 0.55 // classes pause on weekends
	case "live-streaming", "cloud-gaming":
		return 1.2 // leisure peaks on weekends
	default:
		return 1.0
	}
}

type seriesParams struct {
	level         float64 // base level (CPU % or Mbps)
	amp           float64 // diurnal amplitude in [0,1]
	peakHour      float64
	windowHours   float64 // >0: usage confined around the peak
	noiseCV       float64
	days          int
	interval      time.Duration
	start         time.Time
	clampHi       float64 // >0: clamp (CPU is a percentage)
	weekendFactor float64
	volatileWeeks bool
	volatileSigma float64
}

// usageSeries synthesises one usage trace: diurnal cycle × weekly factor ×
// optional weekly regime shifts × multiplicative noise.
//
// This is the workload generator's hot kernel (one call per VM per metric,
// thousands of samples each), so the per-sample work is stripped to the
// irreducible noise draw: the diurnal shape is a pure function of the minute
// of day and is cached per distinct minute (a day of samples shares at most
// 1440 cos/exp evaluations instead of one per sample), and hour/minute/
// weekday come from integer nanosecond arithmetic instead of per-sample
// time.Time decomposition. Values are bit-identical to the direct
// per-sample formula — pinned by TestUsageSeriesFastPathMatchesSlow.
func usageSeries(r *rng.Source, p seriesParams) *timeseries.Series {
	n := int(time.Duration(p.days) * 24 * time.Hour / p.interval)
	vals := make([]float64, n)
	// The integer fast path needs UTC (hour/minute shortcuts assume a fixed
	// zero offset) and a start within UnixNano range; every built-in trace
	// starts 2020-06-01 UTC. Anything else takes the legacy loop.
	if p.start.Location() == time.UTC && p.start.Year() >= 1970 && p.start.Year() <= 2200 {
		usageSeriesUTC(r, p, vals)
	} else {
		usageSeriesSlow(r, p, vals)
	}
	// Prime the running-mean cache while the series is still private to
	// this goroutine: placement feedback and the per-VM summaries read
	// Mean() repeatedly, and a primed cache makes those O(1) without any
	// concurrent-memoization hazard once the dataset is shared.
	return timeseries.New(p.start, p.interval, vals).PrimeStats()
}

// UsageParams is the exported form of the usage-trace parameters, for
// benchmarks and tools that exercise the synthesis kernel directly.
type UsageParams struct {
	Level         float64 // base level (CPU % or Mbps)
	Amp           float64 // diurnal amplitude in [0,1]
	PeakHour      float64
	WindowHours   float64 // >0: usage confined around the peak
	NoiseCV       float64
	Days          int
	Interval      time.Duration
	Start         time.Time
	ClampHi       float64 // >0: clamp (CPU is a percentage)
	WeekendFactor float64
	VolatileWeeks bool
	VolatileSigma float64
}

// SynthUsageSeries synthesises one usage trace through the production
// kernel (bulk draws + batched exponential + fused scale pass).
func SynthUsageSeries(r *rng.Source, p UsageParams) *timeseries.Series {
	return usageSeries(r, seriesParams{
		level: p.Level, amp: p.Amp, peakHour: p.PeakHour,
		windowHours: p.WindowHours, noiseCV: p.NoiseCV,
		days: p.Days, interval: p.Interval, start: p.Start,
		clampHi: p.ClampHi, weekendFactor: p.WeekendFactor,
		volatileWeeks: p.VolatileWeeks, volatileSigma: p.VolatileSigma,
	})
}

// usageSeriesUTC fills vals using cached diurnal shapes and integer time
// arithmetic, batching the per-sample randomness: one bulk ziggurat fill
// per draw segment, one batched exponential over the whole buffer, one
// fused scale-and-clamp pass. Draw order is exactly usageSeriesSlow's —
// on volatile series the weekly regime draw interleaves with the noise
// draws at each week boundary, so the bulk fills run per week segment
// with the regime draw between them — and every float is combined in the
// scalar formula's operation order, so the output is bit-identical
// (pinned by TestUsageSeriesFastPathMatchesSlow).
func usageSeriesUTC(r *rng.Source, p seriesParams, vals []float64) {
	const (
		minuteNs = int64(time.Minute)
		dayNs    = 24 * int64(time.Hour)
	)
	startAbs := p.start.UnixNano() // >= 0 by the fast-path gate
	ivl := int64(p.interval)

	// Pass 1 — randomness, in scalar draw order. vals doubles as the
	// noise buffer: standard-normal segments, then one in-place batched
	// exponential (bit-identical to per-sample math.Exp on the default
	// mathx path).
	type weekSeg struct {
		end  int     // one past the last sample of the segment
		mult float64 // exp(weekly regime draw)
	}
	var segs []weekSeg
	if !p.volatileWeeks {
		r.Normals(vals, 0, p.noiseCV)
	} else {
		weekOf := func(i int) int {
			return int((time.Duration(i) * p.interval).Hours() / (24 * 7))
		}
		segs = make([]weekSeg, 0, 1+len(vals)/max(1, int(7*dayNs/ivl)))
		for i := 0; i < len(vals); {
			week := weekOf(i)
			// Scalar order at a week boundary: regime draw first, then
			// that week's noise draws.
			mult := math.Exp(r.Normal(0, p.volatileSigma))
			j := i + 1
			for j < len(vals) && weekOf(j) == week {
				j++
			}
			r.Normals(vals[i:j], 0, p.noiseCV)
			segs = append(segs, weekSeg{end: j, mult: mult})
			i = j
		}
	}
	mathx.ExpBulk(vals, vals)

	// Pass 2 — deterministic shaping, fused over the buffer.
	// shapeFor computes the raw diurnal shape (before weekend and weekly
	// multipliers) for one minute of day — the exact per-sample formula.
	shapeFor := func(minOfDay int) float64 {
		h := float64(minOfDay/60) + float64(minOfDay%60)/60
		if p.windowHours > 0 {
			// Gaussian bump around the peak: near-zero usage off-window.
			dh := hourDiff(h, p.peakHour)
			sigma := p.windowHours / 2.355 // FWHM → sigma
			return 0.05 + math.Exp(-dh*dh/(2*sigma*sigma))*3.5
		}
		shape := 1 + p.amp*math.Cos((h-p.peakHour)/24*2*math.Pi)
		if shape < 0.05 {
			shape = 0.05
		}
		return shape
	}
	var (
		cache  [24 * 60]float64
		cached [24 * 60]bool
	)
	seg, weekMult := 0, 1.0
	for i := range vals {
		abs := startAbs + int64(i)*ivl
		day := abs / dayNs
		minOfDay := int((abs - day*dayNs) / minuteNs)

		shape := cache[minOfDay]
		if !cached[minOfDay] {
			shape = shapeFor(minOfDay)
			cache[minOfDay] = shape
			cached[minOfDay] = true
		}
		// 1970-01-01 (epoch day 0) was a Thursday; Sunday=0, Saturday=6.
		wd := (day + 4) % 7
		if wd == 6 || wd == 0 {
			shape *= p.weekendFactor
		}
		if p.volatileWeeks {
			for i >= segs[seg].end {
				seg++
			}
			weekMult = segs[seg].mult
			shape *= weekMult
		}
		v := p.level * shape * vals[i]
		if v < 0.01 {
			v = 0.01
		}
		if p.clampHi > 0 && v > p.clampHi {
			v = p.clampHi
		}
		vals[i] = v
	}
}

// usageSeriesSlow is the direct per-sample loop: the reference the fast path
// must match bit for bit, and the fallback for non-UTC starts.
func usageSeriesSlow(r *rng.Source, p seriesParams, vals []float64) {
	weekMult := 1.0
	curWeek := -1
	for i := range vals {
		ts := p.start.Add(time.Duration(i) * p.interval)
		h := float64(ts.Hour()) + float64(ts.Minute())/60

		var shape float64
		if p.windowHours > 0 {
			// Gaussian bump around the peak: near-zero usage off-window.
			dh := hourDiff(h, p.peakHour)
			sigma := p.windowHours / 2.355 // FWHM → sigma
			shape = 0.05 + math.Exp(-dh*dh/(2*sigma*sigma))*3.5
		} else {
			shape = 1 + p.amp*math.Cos((h-p.peakHour)/24*2*math.Pi)
			if shape < 0.05 {
				shape = 0.05
			}
		}
		wd := ts.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			shape *= p.weekendFactor
		}
		if p.volatileWeeks {
			week := int(ts.Sub(p.start).Hours() / (24 * 7))
			if week != curWeek {
				curWeek = week
				weekMult = math.Exp(r.Normal(0, p.volatileSigma))
			}
			shape *= weekMult
		}
		v := p.level * shape * math.Exp(r.Normal(0, p.noiseCV))
		if v < 0.01 {
			v = 0.01
		}
		if p.clampHi > 0 && v > p.clampHi {
			v = p.clampHi
		}
		vals[i] = v
	}
}

// hourDiff returns the circular distance between two hours of day.
func hourDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 12 {
		d = 24 - d
	}
	return d
}
