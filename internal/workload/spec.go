package workload

import "edgescope/internal/scenario"

// NEPFromSpec maps a scenario's workload slice onto edge-trace generation
// options: the app count and trace horizon come from the spec; sampling
// cadence, start date, categories and placement stay platform defaults.
func NEPFromSpec(ws scenario.WorkloadSpec) Options {
	return Options{Apps: ws.NEPApps, Days: ws.NEPDays}
}

// CloudFromSpec is NEPFromSpec for the Azure-like cloud trace.
func CloudFromSpec(ws scenario.WorkloadSpec) Options {
	return Options{Apps: ws.CloudApps, Days: ws.CloudDays}
}
