package workload

import (
	"math"
	"sync"
	"testing"
	"time"

	"edgescope/internal/rng"
	"edgescope/internal/stats"
	"edgescope/internal/vm"
)

// Small traces shared across tests (generation is the expensive part).
var (
	onceTraces sync.Once
	nepTrace   *vm.Dataset
	cloudTrace *vm.Dataset
)

func traces(t *testing.T) (*vm.Dataset, *vm.Dataset) {
	t.Helper()
	onceTraces.Do(func() {
		var err error
		nepTrace, err = GenerateNEP(rng.New(1), Options{Apps: 60, Days: 7})
		if err != nil {
			t.Fatal(err)
		}
		cloudTrace, err = GenerateCloud(rng.New(2), Options{Apps: 250, Days: 7})
		if err != nil {
			t.Fatal(err)
		}
	})
	if nepTrace == nil || cloudTrace == nil {
		t.Skip("trace generation failed earlier")
	}
	return nepTrace, cloudTrace
}

func meanCPUs(d *vm.Dataset) []float64 {
	out := make([]float64, len(d.VMs))
	for i, v := range d.VMs {
		out[i] = v.MeanCPU()
	}
	return out
}

func TestGeneratedTracesValidate(t *testing.T) {
	nep, cloud := traces(t)
	if err := nep.Validate(); err != nil {
		t.Fatalf("NEP trace invalid: %v", err)
	}
	if err := cloud.Validate(); err != nil {
		t.Fatalf("cloud trace invalid: %v", err)
	}
	if len(nep.VMs) < 200 {
		t.Fatalf("NEP trace too small: %d VMs", len(nep.VMs))
	}
	if len(cloud.VMs) < 400 {
		t.Fatalf("cloud trace too small: %d VMs", len(cloud.VMs))
	}
}

func TestFigure8VMSizes(t *testing.T) {
	nep, cloud := traces(t)
	nepCPU := make([]float64, len(nep.VMs))
	for i, v := range nep.VMs {
		nepCPU[i] = float64(v.VCPUs)
	}
	cloudCPU := make([]float64, len(cloud.VMs))
	for i, v := range cloud.VMs {
		cloudCPU[i] = float64(v.VCPUs)
	}
	// Paper: median 8 vs 1 vCPU; 90% of Azure VMs ≤ 4 vCPUs.
	if m := stats.Median(nepCPU); m < 8 {
		t.Fatalf("NEP median vCPUs = %v, want ≥8", m)
	}
	if m := stats.Median(cloudCPU); m > 2 {
		t.Fatalf("cloud median vCPUs = %v, want ~1", m)
	}
	if f := stats.CDFAt(cloudCPU, 4); f < 0.82 {
		t.Fatalf("cloud VMs ≤4 vCPU = %.2f, want ~0.90", f)
	}
	// Memory: NEP median 32 GB vs ~4 GB.
	nepMem := make([]float64, len(nep.VMs))
	for i, v := range nep.VMs {
		nepMem[i] = float64(v.MemGB)
	}
	cloudMem := make([]float64, len(cloud.VMs))
	for i, v := range cloud.VMs {
		cloudMem[i] = float64(v.MemGB)
	}
	if m := stats.Median(nepMem); m < 32 {
		t.Fatalf("NEP median mem = %v GB, want ≥32", m)
	}
	if m := stats.Median(cloudMem); m > 8 {
		t.Fatalf("cloud median mem = %v GB, want ~4", m)
	}
}

func TestNEPDiskSizes(t *testing.T) {
	nep, _ := traces(t)
	disks := make([]float64, len(nep.VMs))
	for i, v := range nep.VMs {
		disks[i] = float64(v.DiskGB)
	}
	med := stats.Median(disks)
	mean := stats.Mean(disks)
	// Paper: median ~100 GB, mean ~650 GB (heavy tail).
	if med < 50 || med > 250 {
		t.Fatalf("disk median = %v GB, want ~100", med)
	}
	if mean < 2*med {
		t.Fatalf("disk mean %v should be ≫ median %v (heavy tail)", mean, med)
	}
}

func TestFigure9PerAppVMCounts(t *testing.T) {
	nep, cloud := traces(t)
	share50 := func(d *vm.Dataset) float64 {
		apps := d.AppVMs()
		big := 0
		for _, vms := range apps {
			if len(vms) >= 50 {
				big++
			}
		}
		return float64(big) / float64(len(apps))
	}
	nepBig, cloudBig := share50(nep), share50(cloud)
	// Paper: 9.6% of NEP apps ≥50 VMs vs 6.1% on Azure.
	if nepBig <= cloudBig {
		t.Fatalf("NEP big-app share %.3f should exceed cloud %.3f", nepBig, cloudBig)
	}
	if nepBig < 0.03 || nepBig > 0.4 {
		t.Fatalf("NEP big-app share = %.3f, want ~0.10", nepBig)
	}
}

func TestFigure10CPUUtilization(t *testing.T) {
	nep, cloud := traces(t)
	nepMeans, cloudMeans := meanCPUs(nep), meanCPUs(cloud)

	nepUnder10 := stats.CDFAt(nepMeans, 10)
	cloudUnder10 := stats.CDFAt(cloudMeans, 10)
	// Paper: 74% of NEP VMs <10% mean CPU vs 47% on Azure.
	if nepUnder10 < 0.6 {
		t.Fatalf("NEP under-10%% share = %.2f, want ~0.74", nepUnder10)
	}
	if cloudUnder10 < 0.3 || cloudUnder10 > 0.65 {
		t.Fatalf("cloud under-10%% share = %.2f, want ~0.47", cloudUnder10)
	}
	if nepUnder10 <= cloudUnder10 {
		t.Fatal("NEP should be colder than cloud")
	}
	// Paper: NEP mean CPU usage is ~6× lower (we assert ≥2.5× — the clamp
	// at 95% softens the synthetic tail; see EXPERIMENTS.md).
	ratio := stats.Mean(cloudMeans) / stats.Mean(nepMeans)
	if ratio < 2.5 {
		t.Fatalf("cloud/NEP mean CPU ratio = %.1f, want ≥2.5", ratio)
	}
}

func TestFigure10bCPUVariance(t *testing.T) {
	nep, cloud := traces(t)
	cvOf := func(d *vm.Dataset) float64 {
		cvs := make([]float64, len(d.VMs))
		for i, v := range d.VMs {
			cvs[i] = v.CPUCV()
		}
		return stats.Median(cvs)
	}
	nepCV, cloudCV := cvOf(nep), cvOf(cloud)
	// Paper: median CV 0.48 (edge) vs 0.24 (cloud).
	if nepCV < 0.3 || nepCV > 0.75 {
		t.Fatalf("NEP median CPU CV = %.2f, want ~0.48", nepCV)
	}
	if cloudCV >= nepCV {
		t.Fatalf("cloud CV %.2f should be below NEP %.2f", cloudCV, nepCV)
	}
}

func TestSeasonalityStrongerOnEdge(t *testing.T) {
	nep, cloud := traces(t)
	strength := func(d *vm.Dataset, n int) float64 {
		var sum float64
		var count int
		for i, v := range d.VMs {
			if i >= n {
				break
			}
			period := int(24 * time.Hour / v.CPU.Interval)
			sum += v.CPU.SeasonalityStrength(period)
			count++
		}
		return sum / float64(count)
	}
	se, sc := strength(nep, 150), strength(cloud, 150)
	// Paper: mean seasonality 0.42 (edge) vs 0.26 (cloud).
	if se <= sc {
		t.Fatalf("edge seasonality %.2f should exceed cloud %.2f", se, sc)
	}
	if se < 0.25 {
		t.Fatalf("edge seasonality = %.2f, too weak", se)
	}
}

func TestSalesRateSkewAndCPUVsMem(t *testing.T) {
	nep, _ := traces(t)
	rates := nep.SiteSalesRates()
	var cpu, mem []float64
	for _, r := range rates {
		cpu = append(cpu, r.CPU)
		mem = append(mem, r.Mem)
	}
	// Paper: P95/P5 sales-rate skew across sites ~5×.
	if g := stats.GapRatio(cpu, 0.005); g < 2 {
		t.Fatalf("CPU sales-rate gap = %.1f, want skewed (~5)", g)
	}
	// Paper: CPU sells ~2× the rate of memory.
	mc, mm := stats.Median(cpu), stats.Median(mem)
	if mc <= mm {
		t.Fatalf("median CPU sales %.2f not above memory %.2f", mc, mm)
	}
}

func TestEducationAppsPeaky(t *testing.T) {
	nep, _ := traces(t)
	// Find education VMs via the windowed usage signature: peak/mean > 5.
	found := false
	for _, v := range nep.VMs {
		peak := v.PublicBW.MaxValue()
		mean := v.PublicBW.Mean()
		if mean > 0 && peak/mean > 8 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no high peak/mean VM found; education window missing")
	}
}

func TestGuangdongHasManySites(t *testing.T) {
	nep, _ := traces(t)
	n := 0
	for _, s := range nep.Sites {
		if s.Province == "Guangdong" {
			n++
		}
	}
	// Figure 11 samples 11 sites from Guangdong.
	if n < 8 {
		t.Fatalf("Guangdong sites = %d, want ~11", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateNEP(rng.New(42), Options{Apps: 8, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateNEP(rng.New(42), Options{Apps: 8, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.VMs) != len(b.VMs) {
		t.Fatal("VM counts differ")
	}
	for i := range a.VMs {
		if a.VMs[i].Site != b.VMs[i].Site || a.VMs[i].VCPUs != b.VMs[i].VCPUs {
			t.Fatalf("VM %d differs", i)
		}
		if math.Abs(a.VMs[i].CPU.Values[0]-b.VMs[i].CPU.Values[0]) > 1e-12 {
			t.Fatalf("VM %d series differ", i)
		}
	}
}

func TestSplitCounts(t *testing.T) {
	r := rng.New(3)
	for n := 1; n < 40; n += 3 {
		for k := 1; k <= 4; k++ {
			parts := splitCounts(r, n, k)
			if len(parts) != k {
				t.Fatalf("parts = %d, want %d", len(parts), k)
			}
			total := 0
			for _, p := range parts {
				if p < 0 {
					t.Fatalf("negative part in %v", parts)
				}
				total += p
			}
			if total != n {
				t.Fatalf("splitCounts(%d,%d) = %v sums to %d", n, k, parts, total)
			}
		}
	}
}

func TestUsageSeriesWindowed(t *testing.T) {
	r := rng.New(4)
	s := usageSeries(r, seriesParams{
		level: 10, amp: 0.8, peakHour: 10.5, windowHours: 4, noiseCV: 0.1,
		days: 2, interval: 30 * time.Minute,
		start:   time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
		clampHi: 95, weekendFactor: 1,
	})
	// Usage at 10:30 must dwarf usage at 22:30.
	at := func(h int) float64 { return s.Values[h*2+1] }
	if at(10) < 5*at(22) {
		t.Fatalf("window not peaky: 10:30=%v 22:30=%v", at(10), at(22))
	}
}

func TestHourDiffCircular(t *testing.T) {
	if hourDiff(23, 1) != 2 {
		t.Fatalf("hourDiff(23,1) = %v", hourDiff(23, 1))
	}
	if hourDiff(5, 5) != 0 {
		t.Fatal("identical hours should differ by 0")
	}
}

// TestUsageSeriesFastPathMatchesSlow pins the cached-shape integer-time fast
// path against the direct per-sample loop, bit for bit, across both diurnal
// branches, weekend factors, volatile weeks and sampling cadences.
func TestUsageSeriesFastPathMatchesSlow(t *testing.T) {
	start := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	cases := []seriesParams{
		{level: 20, amp: 0.6, peakHour: 21, noiseCV: 0.25, days: 14,
			interval: 5 * time.Minute, start: start, clampHi: 95, weekendFactor: 1.2},
		{level: 35, amp: 0.3, peakHour: 10.5, windowHours: 6, noiseCV: 0.4, days: 9,
			interval: 15 * time.Minute, start: start, weekendFactor: 0.55},
		{level: 5, amp: 0.9, peakHour: 2, noiseCV: 0.1, days: 21,
			interval: 7 * time.Minute, start: start.Add(90 * time.Minute), clampHi: 0,
			weekendFactor: 1, volatileWeeks: true, volatileSigma: 0.9},
		{level: 120, amp: 0.2, peakHour: 18, windowHours: 3, noiseCV: 0.6, days: 2,
			interval: 90 * time.Second, start: start, weekendFactor: 1.0},
	}
	for ci, p := range cases {
		n := int(time.Duration(p.days) * 24 * time.Hour / p.interval)
		fast := make([]float64, n)
		slow := make([]float64, n)
		usageSeriesUTC(rng.New(uint64(ci)+1), p, fast)
		usageSeriesSlow(rng.New(uint64(ci)+1), p, slow)
		for i := range slow {
			if fast[i] != slow[i] {
				t.Fatalf("case %d sample %d: fast %v, slow %v", ci, i, fast[i], slow[i])
			}
		}
	}
}

// TestUsageSeriesNonUTCFallsBack pins that a non-UTC start takes the legacy
// loop and produces the legacy values.
func TestUsageSeriesNonUTCFallsBack(t *testing.T) {
	zone := time.FixedZone("UTC+8", 8*3600)
	p := seriesParams{level: 15, amp: 0.5, peakHour: 20, noiseCV: 0.3, days: 3,
		interval: 10 * time.Minute, start: time.Date(2020, 6, 1, 0, 0, 0, 0, zone),
		clampHi: 95, weekendFactor: 1.2}
	got := usageSeries(rng.New(9), p)
	want := make([]float64, got.Len())
	usageSeriesSlow(rng.New(9), p, want)
	for i, v := range got.Values {
		if v != want[i] {
			t.Fatalf("sample %d: %v, want %v", i, v, want[i])
		}
	}
}
