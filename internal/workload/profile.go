// Package workload synthesises platform traces with the statistical
// signatures the paper reports for NEP (§4) and for the Azure 2019 cloud
// dataset it compares against: VM sizes, per-app VM counts, CPU utilisation
// levels and variance, diurnal seasonality, bandwidth intensity, cross-VM
// imbalance, and geographic demand skew. The generator stands in for the
// proprietary 3-month complete trace (and for Azure's 2.7M-VM dataset),
// producing vm.Dataset values the analysis, prediction and billing layers
// consume; those layers would run unchanged on the real traces.
package workload

// Category profiles one application class hosted on the platform.
type Category struct {
	Name string
	// Share is the fraction of apps in this category.
	Share float64

	// Per-app VM count: bounded Pareto (heavy-tailed; NEP's largest app is
	// a ~1000-VM CDN).
	MinVMs, MaxVMs float64
	VMAlpha        float64

	// VM sizing: weighted choice over vCPU options; memory is GBPerVCPU ×
	// vCPUs; disk is Pareto(DiskXmGB, DiskAlpha) capped at DiskCapGB.
	VCPUOptions []int
	VCPUWeights []float64
	GBPerVCPU   int
	DiskXmGB    float64
	DiskAlpha   float64
	DiskCapGB   float64

	// CPU usage: per-VM mean level is log-normal (median CPUMedianPct,
	// sigma CPUSigma, capped at 90); the series follows a diurnal cycle
	// with amplitude in [AmpLo,AmpHi] plus multiplicative noise NoiseCV.
	CPUMedianPct float64
	CPUSigma     float64
	AmpLo, AmpHi float64
	NoiseCV      float64
	// PeakHour is the local-time centre of the daily peak.
	PeakHour float64
	// WindowHours, when non-zero, confines usage to ±WindowHours/2 around
	// PeakHour (the paper's online-education apps run 9:00–12:00 only).
	WindowHours float64

	// Bandwidth: Mbps per vCPU, log-normal around BWPerVCPUMedian. The
	// bandwidth series reuses the CPU shape (video apps move bits when
	// they burn cycles) plus independent noise.
	BWPerVCPUMedian float64
	BWSigma         float64
	// VolatileBWProb is the probability a VM's bandwidth level shifts
	// regime week over week (Figure 13's unpredictable VMs).
	VolatileBWProb float64

	// CrossVMSigmaLo/Hi bound the per-app log-normal sigma of the per-VM
	// level multiplier: large values make VMs of the same app severely
	// unbalanced (Figure 12: 16.3% of NEP apps exceed a 50× gap).
	CrossVMSigmaLo, CrossVMSigmaHi float64

	// Provinces is how many provinces an app's demand concentrates in
	// (edge apps subscribe per province; cloud apps ignore geography).
	Provinces int
}

// NEPCategories returns the edge platform's app mix (§4.1: live streaming,
// content delivery, online education, video/audio communication, video
// surveillance, cloud gaming).
func NEPCategories() []Category {
	big := []int{2, 4, 8, 16, 32}
	return []Category{
		{
			Name: "live-streaming", Share: 0.28,
			MinVMs: 4, MaxVMs: 400, VMAlpha: 0.8,
			VCPUOptions: big, VCPUWeights: []float64{0.05, 0.15, 0.40, 0.30, 0.10}, GBPerVCPU: 4,
			DiskXmGB: 55, DiskAlpha: 1.15, DiskCapGB: 8000,
			CPUMedianPct: 5, CPUSigma: 1.0, AmpLo: 0.55, AmpHi: 0.9, NoiseCV: 0.18, PeakHour: 21,
			BWPerVCPUMedian: 22, BWSigma: 0.8, VolatileBWProb: 0.3,
			CrossVMSigmaLo: 0.5, CrossVMSigmaHi: 1.5, Provinces: 3,
		},
		{
			Name: "content-delivery", Share: 0.20,
			MinVMs: 8, MaxVMs: 1000, VMAlpha: 0.7,
			VCPUOptions: big, VCPUWeights: []float64{0.05, 0.15, 0.35, 0.30, 0.15}, GBPerVCPU: 4,
			DiskXmGB: 120, DiskAlpha: 1.05, DiskCapGB: 16000,
			CPUMedianPct: 3.5, CPUSigma: 1.0, AmpLo: 0.5, AmpHi: 0.8, NoiseCV: 0.15, PeakHour: 20,
			BWPerVCPUMedian: 30, BWSigma: 0.9, VolatileBWProb: 0.35,
			CrossVMSigmaLo: 0.6, CrossVMSigmaHi: 1.5, Provinces: 5,
		},
		{
			Name: "online-education", Share: 0.12,
			MinVMs: 2, MaxVMs: 120, VMAlpha: 0.9,
			VCPUOptions: big, VCPUWeights: []float64{0.10, 0.25, 0.35, 0.20, 0.10}, GBPerVCPU: 4,
			DiskXmGB: 45, DiskAlpha: 1.2, DiskCapGB: 4000,
			CPUMedianPct: 4, CPUSigma: 0.9, AmpLo: 0.7, AmpHi: 0.95, NoiseCV: 0.15, PeakHour: 10.5,
			WindowHours:     4, // 9:00–12:00-ish usage window (peak/mean > 10×)
			BWPerVCPUMedian: 16, BWSigma: 0.8, VolatileBWProb: 0.15,
			CrossVMSigmaLo: 0.4, CrossVMSigmaHi: 1.2, Provinces: 2,
		},
		{
			Name: "video-comm", Share: 0.13,
			MinVMs: 2, MaxVMs: 200, VMAlpha: 0.85,
			VCPUOptions: big, VCPUWeights: []float64{0.10, 0.20, 0.40, 0.20, 0.10}, GBPerVCPU: 4,
			DiskXmGB: 40, DiskAlpha: 1.3, DiskCapGB: 2000,
			CPUMedianPct: 5.5, CPUSigma: 0.95, AmpLo: 0.5, AmpHi: 0.85, NoiseCV: 0.2, PeakHour: 14,
			BWPerVCPUMedian: 14, BWSigma: 0.7, VolatileBWProb: 0.2,
			CrossVMSigmaLo: 0.5, CrossVMSigmaHi: 1.4, Provinces: 3,
		},
		{
			Name: "surveillance", Share: 0.13,
			MinVMs: 2, MaxVMs: 150, VMAlpha: 0.9,
			VCPUOptions: big, VCPUWeights: []float64{0.05, 0.20, 0.40, 0.25, 0.10}, GBPerVCPU: 4,
			DiskXmGB: 150, DiskAlpha: 1.0, DiskCapGB: 16000,
			CPUMedianPct: 6, CPUSigma: 0.8, AmpLo: 0.2, AmpHi: 0.5, NoiseCV: 0.12, PeakHour: 12,
			BWPerVCPUMedian: 10, BWSigma: 0.6, VolatileBWProb: 0.1,
			CrossVMSigmaLo: 0.3, CrossVMSigmaHi: 1.0, Provinces: 2,
		},
		{
			Name: "cloud-gaming", Share: 0.10,
			MinVMs: 2, MaxVMs: 250, VMAlpha: 0.85,
			VCPUOptions: big, VCPUWeights: []float64{0.05, 0.15, 0.35, 0.30, 0.15}, GBPerVCPU: 4,
			DiskXmGB: 60, DiskAlpha: 1.2, DiskCapGB: 4000,
			CPUMedianPct: 7, CPUSigma: 0.9, AmpLo: 0.6, AmpHi: 0.95, NoiseCV: 0.22, PeakHour: 22,
			BWPerVCPUMedian: 12, BWSigma: 0.7, VolatileBWProb: 0.2,
			CrossVMSigmaLo: 0.5, CrossVMSigmaHi: 1.4, Provinces: 3,
		},
		{
			Name: "other", Share: 0.04,
			MinVMs: 1, MaxVMs: 60, VMAlpha: 1.0,
			VCPUOptions: big, VCPUWeights: []float64{0.20, 0.25, 0.30, 0.15, 0.10}, GBPerVCPU: 4,
			DiskXmGB: 40, DiskAlpha: 1.3, DiskCapGB: 2000,
			CPUMedianPct: 4, CPUSigma: 1.0, AmpLo: 0.3, AmpHi: 0.7, NoiseCV: 0.2, PeakHour: 15,
			BWPerVCPUMedian: 5, BWSigma: 0.8, VolatileBWProb: 0.15,
			CrossVMSigmaLo: 0.4, CrossVMSigmaHi: 1.2, Provinces: 2,
		},
	}
}

// CloudCategories returns the Azure-like mix: many small VMs (90% ≤4 vCPU,
// 70% ≤4 GB), higher utilisation, weaker diurnality, small per-app fleets.
func CloudCategories() []Category {
	small := []int{1, 2, 4, 8, 16, 32}
	return []Category{
		{
			Name: "web-service", Share: 0.35,
			MinVMs: 1, MaxVMs: 300, VMAlpha: 0.75,
			VCPUOptions: small, VCPUWeights: []float64{0.50, 0.27, 0.13, 0.06, 0.03, 0.01}, GBPerVCPU: 3,
			DiskXmGB: 30, DiskAlpha: 1.3, DiskCapGB: 2000,
			CPUMedianPct: 11, CPUSigma: 2.6, AmpLo: 0.15, AmpHi: 0.45, NoiseCV: 0.28, PeakHour: 14,
			BWPerVCPUMedian: 2, BWSigma: 0.7, VolatileBWProb: 0.05,
			CrossVMSigmaLo: 0.1, CrossVMSigmaHi: 0.5, Provinces: 0,
		},
		{
			Name: "batch", Share: 0.25,
			MinVMs: 1, MaxVMs: 200, VMAlpha: 0.8,
			VCPUOptions: small, VCPUWeights: []float64{0.45, 0.28, 0.15, 0.07, 0.04, 0.01}, GBPerVCPU: 4,
			DiskXmGB: 40, DiskAlpha: 1.2, DiskCapGB: 4000,
			CPUMedianPct: 16, CPUSigma: 2.4, AmpLo: 0.05, AmpHi: 0.3, NoiseCV: 0.3, PeakHour: 3,
			BWPerVCPUMedian: 1, BWSigma: 0.6, VolatileBWProb: 0.08,
			CrossVMSigmaLo: 0.1, CrossVMSigmaHi: 0.45, Provinces: 0,
		},
		{
			Name: "dev-test", Share: 0.30,
			MinVMs: 1, MaxVMs: 30, VMAlpha: 1.1,
			VCPUOptions: small, VCPUWeights: []float64{0.60, 0.24, 0.10, 0.04, 0.015, 0.005}, GBPerVCPU: 3,
			DiskXmGB: 25, DiskAlpha: 1.4, DiskCapGB: 1000,
			CPUMedianPct: 8, CPUSigma: 2.6, AmpLo: 0.2, AmpHi: 0.5, NoiseCV: 0.35, PeakHour: 11,
			BWPerVCPUMedian: 0.5, BWSigma: 0.6, VolatileBWProb: 0.05,
			CrossVMSigmaLo: 0.1, CrossVMSigmaHi: 0.5, Provinces: 0,
		},
		{
			Name: "database", Share: 0.10,
			MinVMs: 1, MaxVMs: 40, VMAlpha: 1.0,
			VCPUOptions: small, VCPUWeights: []float64{0.30, 0.30, 0.22, 0.10, 0.06, 0.02}, GBPerVCPU: 6,
			DiskXmGB: 100, DiskAlpha: 1.1, DiskCapGB: 8000,
			CPUMedianPct: 14, CPUSigma: 2.0, AmpLo: 0.15, AmpHi: 0.4, NoiseCV: 0.25, PeakHour: 15,
			BWPerVCPUMedian: 1.5, BWSigma: 0.6, VolatileBWProb: 0.05,
			CrossVMSigmaLo: 0.1, CrossVMSigmaHi: 0.4, Provinces: 0,
		},
	}
}
