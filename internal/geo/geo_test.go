package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	bj := MustCity("Beijing").Loc
	sh := MustCity("Shanghai").Loc
	gz := MustCity("Guangzhou").Loc

	// Beijing–Shanghai is ~1070 km, Beijing–Guangzhou ~1890 km.
	if d := Haversine(bj, sh); d < 1000 || d > 1150 {
		t.Fatalf("Beijing-Shanghai = %.0f km, want ~1070", d)
	}
	if d := Haversine(bj, gz); d < 1800 || d > 1980 {
		t.Fatalf("Beijing-Guangzhou = %.0f km, want ~1890", d)
	}
}

func TestHaversineProperties(t *testing.T) {
	gen := func(lat, lon float64) Point {
		return Point{Lat: math.Mod(math.Abs(lat), 90), Lon: math.Mod(math.Abs(lon), 180)}
	}
	if err := quick.Check(func(a1, o1, a2, o2 float64) bool {
		if anyNaN(a1, o1, a2, o2) {
			return true
		}
		p, q := gen(a1, o1), gen(a2, o2)
		d1, d2 := Haversine(p, q), Haversine(q, p)
		if d1 < 0 {
			return false
		}
		if math.Abs(d1-d2) > 1e-9 {
			return false // symmetry
		}
		return Haversine(p, p) < 1e-9 // identity
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	cs := Cities()
	for i := 0; i < len(cs); i += 5 {
		for j := 1; j < len(cs); j += 7 {
			for k := 2; k < len(cs); k += 11 {
				a, b, c := cs[i].Loc, cs[j].Loc, cs[k].Loc
				if Haversine(a, c) > Haversine(a, b)+Haversine(b, c)+1e-6 {
					t.Fatalf("triangle inequality violated for %s %s %s",
						cs[i].Name, cs[j].Name, cs[k].Name)
				}
			}
		}
	}
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestCityDatabaseSanity(t *testing.T) {
	cs := Cities()
	if len(cs) < 40 {
		t.Fatalf("city database too small: %d", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.Name] {
			t.Fatalf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
		if c.PopulationM <= 0 {
			t.Fatalf("%s has non-positive population", c.Name)
		}
		if c.Loc.Lat < 18 || c.Loc.Lat > 54 || c.Loc.Lon < 73 || c.Loc.Lon > 136 {
			t.Fatalf("%s coordinates %v outside China bounding box", c.Name, c.Loc)
		}
		if c.Tier < 1 || c.Tier > 3 {
			t.Fatalf("%s has invalid tier %d", c.Name, c.Tier)
		}
	}
}

func TestCitiesReturnsCopy(t *testing.T) {
	a := Cities()
	a[0].Name = "Mutated"
	if b := Cities(); b[0].Name == "Mutated" {
		t.Fatal("Cities exposes internal slice")
	}
}

func TestCityByName(t *testing.T) {
	c, ok := CityByName("Chengdu")
	if !ok || c.Province != "Sichuan" {
		t.Fatalf("CityByName(Chengdu) = %+v, %v", c, ok)
	}
	if _, ok := CityByName("Atlantis"); ok {
		t.Fatal("found nonexistent city")
	}
}

func TestMustCityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCity did not panic")
		}
	}()
	MustCity("Atlantis")
}

func TestCitiesInProvince(t *testing.T) {
	gd := CitiesInProvince("Guangdong")
	if len(gd) < 4 {
		t.Fatalf("Guangdong should have several cities, got %d", len(gd))
	}
	for _, c := range gd {
		if c.Province != "Guangdong" {
			t.Fatalf("city %s has province %s", c.Name, c.Province)
		}
	}
}

func TestProvincesCoverage(t *testing.T) {
	ps := Provinces()
	if len(ps) < 25 {
		t.Fatalf("province coverage too small: %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1] >= ps[i] {
			t.Fatal("Provinces not sorted/deduplicated")
		}
	}
}

func TestNearestCity(t *testing.T) {
	// A point near Beijing must resolve to Beijing (Tianjin is ~110 km away).
	p := Point{39.95, 116.45}
	if c := NearestCity(p); c.Name != "Beijing" {
		t.Fatalf("NearestCity near Beijing = %s", c.Name)
	}
}

func TestRankByDistance(t *testing.T) {
	bj := MustCity("Beijing").Loc
	pos := []Point{
		MustCity("Guangzhou").Loc, // far
		MustCity("Tianjin").Loc,   // near
		MustCity("Shanghai").Loc,  // middle
	}
	got := RankByDistance(bj, pos)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankByDistance = %v, want %v", got, want)
		}
	}
}

func TestRankByDistanceIsPermutation(t *testing.T) {
	if err := quick.Check(func(n uint8) bool {
		k := int(n%20) + 1
		pos := make([]Point, k)
		for i := range pos {
			pos[i] = Point{Lat: float64(i), Lon: float64(i * 2)}
		}
		r := RankByDistance(Point{10, 10}, pos)
		seen := make([]bool, k)
		for _, v := range r {
			if v < 0 || v >= k || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(r) == k
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalPopulation(t *testing.T) {
	if p := TotalPopulationM(); p < 300 || p > 600 {
		t.Fatalf("total population = %v M, implausible", p)
	}
}
