// Package geo provides geographic primitives for edgescope: great-circle
// distance, a database of major Chinese cities (the deployment footprint of
// the NEP edge platform studied by the paper), and nearest-neighbour queries
// used by the topology builder and the crowd-measurement campaign.
package geo

import (
	"fmt"
	"math"
	"sort"
)

// Point is a geographic coordinate in decimal degrees.
type Point struct {
	Lat float64
	Lon float64
}

// EarthRadiusKm is the mean Earth radius used by Haversine.
const EarthRadiusKm = 6371.0

// Haversine returns the great-circle distance between two points in
// kilometres.
func Haversine(a, b Point) float64 {
	const deg = math.Pi / 180
	la1, lo1 := a.Lat*deg, a.Lon*deg
	la2, lo2 := b.Lat*deg, b.Lon*deg
	dla, dlo := la2-la1, lo2-lo1
	h := sinSq(dla/2) + math.Cos(la1)*math.Cos(la2)*sinSq(dlo/2)
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

func sinSq(x float64) float64 {
	s := math.Sin(x)
	return s * s
}

// City describes one metro area in the deployment footprint.
type City struct {
	Name     string
	Province string
	// PopulationM is the metro population in millions; it weights edge-site
	// density and user-demand skew.
	PopulationM float64
	Loc         Point
	// Tier is the conventional Chinese city tier (1 = largest). Tier-1 metros
	// host multiple NEP sites and the cloud regions.
	Tier int
}

// cities is the built-in database. Coordinates are city centres; populations
// are metro-level estimates. 43 cities across 30 provinces, matching the
// scale of the paper's 41-city crowd campaign.
var cities = []City{
	{"Beijing", "Beijing", 21.5, Point{39.90, 116.40}, 1},
	{"Shanghai", "Shanghai", 24.9, Point{31.23, 121.47}, 1},
	{"Guangzhou", "Guangdong", 15.3, Point{23.13, 113.26}, 1},
	{"Shenzhen", "Guangdong", 17.6, Point{22.54, 114.06}, 1},
	{"Chengdu", "Sichuan", 16.3, Point{30.57, 104.07}, 1},
	{"Chongqing", "Chongqing", 32.1, Point{29.56, 106.55}, 1},
	{"Hangzhou", "Zhejiang", 12.2, Point{30.27, 120.16}, 1},
	{"Wuhan", "Hubei", 11.2, Point{30.59, 114.31}, 1},
	{"Xian", "Shaanxi", 12.9, Point{34.34, 108.94}, 1},
	{"Nanjing", "Jiangsu", 9.3, Point{32.06, 118.80}, 1},
	{"Tianjin", "Tianjin", 13.9, Point{39.13, 117.20}, 1},
	{"Suzhou", "Jiangsu", 12.7, Point{31.30, 120.58}, 2},
	{"Zhengzhou", "Henan", 12.6, Point{34.75, 113.62}, 2},
	{"Changsha", "Hunan", 10.0, Point{28.23, 112.94}, 2},
	{"Dongguan", "Guangdong", 10.5, Point{23.02, 113.75}, 2},
	{"Qingdao", "Shandong", 10.1, Point{36.07, 120.38}, 2},
	{"Shenyang", "Liaoning", 9.1, Point{41.80, 123.43}, 2},
	{"Jinan", "Shandong", 9.2, Point{36.65, 117.12}, 2},
	{"Harbin", "Heilongjiang", 10.0, Point{45.80, 126.53}, 2},
	{"Kunming", "Yunnan", 8.5, Point{25.04, 102.72}, 2},
	{"Dalian", "Liaoning", 7.5, Point{38.91, 121.60}, 2},
	{"Fuzhou", "Fujian", 8.3, Point{26.08, 119.30}, 2},
	{"Xiamen", "Fujian", 5.2, Point{24.48, 118.09}, 2},
	{"Hefei", "Anhui", 9.4, Point{31.82, 117.23}, 2},
	{"Nanning", "Guangxi", 8.7, Point{22.82, 108.37}, 2},
	{"Shijiazhuang", "Hebei", 11.0, Point{38.04, 114.51}, 2},
	{"Taiyuan", "Shanxi", 5.3, Point{37.87, 112.55}, 2},
	{"Guiyang", "Guizhou", 5.9, Point{26.65, 106.63}, 2},
	{"Nanchang", "Jiangxi", 6.3, Point{28.68, 115.86}, 2},
	{"Changchun", "Jilin", 9.1, Point{43.82, 125.32}, 2},
	{"Urumqi", "Xinjiang", 4.1, Point{43.83, 87.62}, 3},
	{"Lanzhou", "Gansu", 4.4, Point{36.06, 103.83}, 3},
	{"Hohhot", "InnerMongolia", 3.4, Point{40.84, 111.75}, 3},
	{"Yinchuan", "Ningxia", 2.9, Point{38.49, 106.23}, 3},
	{"Xining", "Qinghai", 2.5, Point{36.62, 101.78}, 3},
	{"Lhasa", "Tibet", 0.9, Point{29.65, 91.14}, 3},
	{"Haikou", "Hainan", 2.9, Point{20.04, 110.34}, 3},
	{"Ningbo", "Zhejiang", 9.4, Point{29.87, 121.54}, 2},
	{"Wuxi", "Jiangsu", 7.5, Point{31.49, 120.31}, 2},
	{"Foshan", "Guangdong", 9.5, Point{23.02, 113.12}, 2},
	{"Wenzhou", "Zhejiang", 9.6, Point{27.99, 120.70}, 2},
	{"Zhuhai", "Guangdong", 2.4, Point{22.27, 113.58}, 3},
	{"Tangshan", "Hebei", 7.7, Point{39.63, 118.18}, 3},
}

// Cities returns a copy of the built-in city database.
func Cities() []City {
	out := make([]City, len(cities))
	copy(out, cities)
	return out
}

// CityByName looks a city up by name. The second result reports whether the
// city exists in the database.
func CityByName(name string) (City, bool) {
	for _, c := range cities {
		if c.Name == name {
			return c, true
		}
	}
	return City{}, false
}

// MustCity returns the named city or panics; use for static configuration.
func MustCity(name string) City {
	c, ok := CityByName(name)
	if !ok {
		panic(fmt.Sprintf("geo: unknown city %q", name))
	}
	return c
}

// CitiesInProvince returns all database cities in the given province.
func CitiesInProvince(province string) []City {
	var out []City
	for _, c := range cities {
		if c.Province == province {
			out = append(out, c)
		}
	}
	return out
}

// Provinces returns the sorted list of distinct provinces in the database.
func Provinces() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cities {
		if !seen[c.Province] {
			seen[c.Province] = true
			out = append(out, c.Province)
		}
	}
	sort.Strings(out)
	return out
}

// TotalPopulationM returns the summed metro population of the database in
// millions; it normalises population weights.
func TotalPopulationM() float64 {
	var t float64
	for _, c := range cities {
		t += c.PopulationM
	}
	return t
}

// Located is anything with a geographic position.
type Located interface{ Position() Point }

// Position implements Located for City.
func (c City) Position() Point { return c.Loc }

// NearestCity returns the database city closest to p.
func NearestCity(p Point) City {
	best := cities[0]
	bestD := Haversine(p, best.Loc)
	for _, c := range cities[1:] {
		if d := Haversine(p, c.Loc); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// RankByDistance returns indices of items sorted by ascending great-circle
// distance from p. The positions slice supplies each item's location.
func RankByDistance(p Point, positions []Point) []int {
	idx := make([]int, len(positions))
	d := make([]float64, len(positions))
	for i, q := range positions {
		idx[i] = i
		d[i] = Haversine(p, q)
	}
	sort.SliceStable(idx, func(a, b int) bool { return d[idx[a]] < d[idx[b]] })
	return idx
}
