// Package scenario is edgescope's declarative experiment-configuration
// layer: a Spec names one complete measurement scenario — who the users are
// and where they live, what last-mile networks they are on, how the probe
// campaign is scheduled, how big the NEP and cloud workload traces are, and
// how the QoE / prediction / billing studies are sized. Every experiment
// substrate (the crowd campaign, the workload traces) and every sized
// artifact derives its parameters from a Spec, so adding a new workload is a
// data change — register a built-in or load a JSON file — rather than a code
// change.
//
// The package is a leaf: it imports nothing from the rest of edgescope, so
// crowd, workload, netmodel and core can all consume Specs without cycles.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"regexp"
)

// Spec is one named, fully declarative experiment scenario. All fields are
// plain scalars, so a Spec round-trips JSON exactly and copies by value.
type Spec struct {
	// Name identifies the scenario (lowercase letters, digits, dashes). It
	// appears in CLI listings, BENCH.json entries and telemetry replays.
	Name string `json:"name"`
	// Notes is free-form documentation shown by listings.
	Notes string `json:"notes,omitempty"`
	// Seed is the root random seed; every substrate forks deterministically
	// from it, so (Spec, Seed) fully determines every artifact byte.
	Seed uint64 `json:"seed"`

	Crowd    CrowdSpec    `json:"crowd"`
	Workload WorkloadSpec `json:"workload"`
	Sizing   SizingSpec   `json:"sizing"`

	// Fault, when present, declares a deterministic fault-injection plan for
	// the telemetry ingest path (see internal/faultinject). nil — the
	// default for every built-in — means no fault plane at all: the spec
	// JSON omits the block and no fault randomness is ever drawn, so adding
	// this field changed no existing artifact byte.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// FaultSpec declares a seeded fault plan: per-event probabilities for each
// fault kind, plus the spans that shape the time-extended faults. All rates
// are probabilities in [0,1]; a zero-value spec injects nothing and draws no
// randomness, so `"fault": {}` is exactly equivalent to omitting the block.
type FaultSpec struct {
	// Seed seeds the fault plan's random stream. 0 derives it from the
	// scenario Seed (forked under "faultinject"), which is the common case:
	// one scenario seed pins the fault trace along with everything else.
	Seed uint64 `json:"seed,omitempty"`
	// Drop is the probability an offered event is silently dropped before
	// delivery (the retrying client's job to survive).
	Drop float64 `json:"drop,omitempty"`
	// Duplicate is the probability an event is delivered twice (the dedup
	// layer's job to fold once).
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder is the probability an event is held back and re-delivered
	// after ReorderSpan subsequent events have passed it.
	Reorder float64 `json:"reorder,omitempty"`
	// ReorderSpan is how many later events overtake a held-back one.
	// Default 4 when Reorder > 0.
	ReorderSpan int `json:"reorder_span,omitempty"`
	// Delay is like Reorder with its own (typically longer) span — a slow
	// network path rather than local jitter. Default span 16 when > 0.
	Delay float64 `json:"delay,omitempty"`
	// DelaySpan is the hold-back span for Delay faults.
	DelaySpan int `json:"delay_span,omitempty"`
	// ShardStall is the per-event probability that the event's shard goes
	// unresponsive — every offer to it fails — for StallSpan events.
	ShardStall float64 `json:"shard_stall,omitempty"`
	// StallSpan is the stall length in offered events. Default 32 when
	// ShardStall > 0.
	StallSpan int `json:"stall_span,omitempty"`
	// ShortWrite is the per-write probability that a WAL write is cut short
	// (a torn write), exercising recovery's truncation path.
	ShortWrite float64 `json:"short_write,omitempty"`

	// Node-level faults (internal/faultinject.NodeInjector) shake a
	// telemetry *cluster* rather than a single pipeline: the target is the
	// node an event routes to, and spans are counted in offered events —
	// same determinism contract as the event-level faults above.

	// NodeCrash is the per-event probability that the event's target node
	// hard-crashes: it loses everything past its last fsync and refuses all
	// traffic for NodeCrashSpan events, then restarts via WAL recovery.
	NodeCrash float64 `json:"node_crash,omitempty"`
	// NodeCrashSpan is the outage length in offered events. Default 64
	// when NodeCrash > 0.
	NodeCrashSpan int `json:"node_crash_span,omitempty"`
	// NodeStall is the per-event probability the target node stops
	// answering for NodeStallSpan events — alive, state intact, just
	// unresponsive (GC pause, overload).
	NodeStall float64 `json:"node_stall,omitempty"`
	// NodeStallSpan is the stall length in offered events. Default 32.
	NodeStallSpan int `json:"node_stall_span,omitempty"`
	// NetPartition is the per-event probability the link between the
	// router and the event's target node is cut for NetPartitionSpan
	// events: sends and probes through the router fail, while the node
	// itself keeps running undamaged.
	NetPartition float64 `json:"net_partition,omitempty"`
	// NetPartitionSpan is the partition length in offered events. Default 64.
	NetPartitionSpan int `json:"net_partition_span,omitempty"`

	// Handoff-phase faults (internal/faultinject.HandoffInjector) shake a
	// cluster *rebalance* rather than steady-state traffic: the target is
	// a partition handoff's source or destination node, probabilities are
	// per coordinator step, and spans are counted in steps — the same
	// determinism contract as above, applied to the migration plane.

	// HandoffKillGaining is the per-step probability (drawn at destination
	// rebuild steps) that the gaining node is hard-killed mid-transfer,
	// staying dead for HandoffSpan steps before WAL recovery.
	HandoffKillGaining float64 `json:"handoff_kill_gaining,omitempty"`
	// HandoffPartitionSource is the per-step probability (drawn at source
	// flush/fetch steps) that the coordinator loses the losing owner for
	// HandoffSpan steps — the node keeps running undamaged.
	HandoffPartitionSource float64 `json:"handoff_partition_source,omitempty"`
	// HandoffCrashRecover is the per-step probability (drawn at
	// destination rebuild steps) that the gaining node crashes and
	// immediately recovers from its WAL — the attempt fails, the retry
	// meets a node holding whatever the crash left durable.
	HandoffCrashRecover float64 `json:"handoff_crash_recover,omitempty"`
	// HandoffSpan is the outage length in coordinator steps. Default 4.
	HandoffSpan int `json:"handoff_span,omitempty"`
}

// Active reports whether the plan can inject anything at all. Inactive plans
// (nil or all-zero rates) draw no randomness.
func (f *FaultSpec) Active() bool {
	return f != nil && (f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 ||
		f.Delay > 0 || f.ShardStall > 0 || f.ShortWrite > 0 || f.NodeActive())
}

// NodeActive reports whether the plan carries any node-level fault — what
// a cluster harness (faultinject.NodeInjector) can inject.
func (f *FaultSpec) NodeActive() bool {
	return f != nil && (f.NodeCrash > 0 || f.NodeStall > 0 || f.NetPartition > 0)
}

// HandoffActive reports whether the plan carries any handoff-phase fault —
// what a rebalance harness (faultinject.HandoffInjector) can inject.
func (f *FaultSpec) HandoffActive() bool {
	return f != nil && (f.HandoffKillGaining > 0 || f.HandoffPartitionSource > 0 || f.HandoffCrashRecover > 0)
}

// validate appends FaultSpec field errors via bad.
func (f *FaultSpec) validate(bad func(field, format string, args ...any)) {
	for _, r := range []struct {
		field string
		v     float64
	}{
		{"fault.drop", f.Drop},
		{"fault.duplicate", f.Duplicate},
		{"fault.reorder", f.Reorder},
		{"fault.delay", f.Delay},
		{"fault.shard_stall", f.ShardStall},
		{"fault.short_write", f.ShortWrite},
		{"fault.node_crash", f.NodeCrash},
		{"fault.node_stall", f.NodeStall},
		{"fault.net_partition", f.NetPartition},
		{"fault.handoff_kill_gaining", f.HandoffKillGaining},
		{"fault.handoff_partition_source", f.HandoffPartitionSource},
		{"fault.handoff_crash_recover", f.HandoffCrashRecover},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			bad(r.field, "rate %v outside [0,1]", r.v)
		}
	}
	for _, sp := range []struct {
		field string
		v     int
	}{
		{"fault.reorder_span", f.ReorderSpan},
		{"fault.delay_span", f.DelaySpan},
		{"fault.stall_span", f.StallSpan},
		{"fault.node_crash_span", f.NodeCrashSpan},
		{"fault.node_stall_span", f.NodeStallSpan},
		{"fault.net_partition_span", f.NetPartitionSpan},
		{"fault.handoff_span", f.HandoffSpan},
	} {
		if sp.v < 0 {
			bad(sp.field, "span must be non-negative (got %d)", sp.v)
		}
	}
}

// AccessMix weights the last-mile access networks of the user population.
// Weights must be non-negative and sum to ~1. The paper's measured mix was
// 59% WiFi / 34% LTE / 7% 5G.
type AccessMix struct {
	WiFi  float64 `json:"wifi"`
	LTE   float64 `json:"lte"`
	FiveG float64 `json:"five_g"`
}

// Weights returns the mix in canonical WiFi/LTE/5G draw order. Consumers
// must select with exactly one weighted draw over this slice so that a fixed
// random source yields the same access sequence for the same mix.
func (m AccessMix) Weights() []float64 { return []float64{m.WiFi, m.LTE, m.FiveG} }

// Sum returns the total weight.
func (m AccessMix) Sum() float64 { return m.WiFi + m.LTE + m.FiveG }

// IsZero reports an entirely unset mix (used to apply defaults).
func (m AccessMix) IsZero() bool { return m == AccessMix{} }

// CrowdSpec sizes the crowd-sourced measurement campaign: the user
// population and its geography, the access-network mix, and the probe
// schedule for both the ping (latency) and iperf (throughput) studies.
type CrowdSpec struct {
	// Users is the participant count of the latency campaign (paper: 158).
	Users int `json:"users"`
	// Repeats is the per-target ping count per user (paper: 30).
	Repeats int `json:"repeats"`
	// Mix weights the WiFi/LTE/5G split of the population.
	Mix AccessMix `json:"access_mix"`
	// CountyFraction is the probability that a user lives in a county-level
	// town 60–300 km outside the metro proper, and is therefore not
	// co-located with any site city (paper: 69% not co-located).
	CountyFraction float64 `json:"county_fraction"`

	// ThroughputUsers / ThroughputSites size the iperf campaign: a subset of
	// the volunteers measures down/uplink against one edge site per metro.
	ThroughputUsers int `json:"throughput_users"`
	ThroughputSites int `json:"throughput_sites"`
	// ServerMbps is the per-VM bandwidth allocation of the iperf servers
	// (the paper provisioned 1 Gbps VMs).
	ServerMbps float64 `json:"server_mbps"`
	// WiredShare is the fraction of throughput testers on wired access.
	WiredShare float64 `json:"wired_share"`
}

// WithDefaults fills unset fields with the paper's campaign parameters, the
// same defaults the crowd package has always applied: 158 users, 30 repeats,
// the 59/34/7 access mix, 0.7 county fraction, and the 25-user / 20-site /
// 1 Gbps / 20%-wired throughput study.
//
// Zero is ambiguous for CountyFraction and WiredShare — it is both the Go
// zero value and a legitimate scenario choice (everyone co-located; no
// wired testers) that Validate accepts. The tiebreak is whether the access
// mix is declared: a spec that declares its mix (every validated JSON spec
// and built-in does) is complete, and its zeros run as written; a partial
// convenience spec (mix unset, as tests and quickstarts build) gets the
// paper defaults for both.
func (c CrowdSpec) WithDefaults() CrowdSpec {
	declared := !c.Mix.IsZero()
	if c.Users == 0 {
		c.Users = 158
	}
	if c.Repeats == 0 {
		c.Repeats = 30
	}
	if !declared {
		c.Mix = AccessMix{WiFi: 0.59, LTE: 0.34, FiveG: 0.07}
	}
	if c.CountyFraction == 0 && !declared {
		c.CountyFraction = 0.7
	}
	if c.ThroughputUsers == 0 {
		c.ThroughputUsers = 25
	}
	if c.ThroughputSites == 0 {
		c.ThroughputSites = 20
	}
	if c.ServerMbps == 0 {
		c.ServerMbps = 1000
	}
	if c.WiredShare == 0 && !declared {
		c.WiredShare = 0.2
	}
	return c
}

// WorkloadSpec sizes the synthetic VM workload traces: how many apps
// subscribe to each platform and the trace horizon in days. Sampling
// cadence and the app-category mix stay platform defaults.
type WorkloadSpec struct {
	NEPApps   int `json:"nep_apps"`
	CloudApps int `json:"cloud_apps"`
	// NEPDays / CloudDays are the trace horizons. Use 28+ where the
	// prediction experiments need both daily and weekly cycles.
	NEPDays   int `json:"nep_days"`
	CloudDays int `json:"cloud_days"`
}

// SizingSpec bounds the derived studies that are neither crowd nor trace
// substrates: the inter-site RTT sample, QoE simulation depth, the
// prediction sweep, and the billing comparison.
type SizingSpec struct {
	// InterSitePairs is the Figure 4 inter-site RTT sample size.
	InterSitePairs int `json:"inter_site_pairs"`
	// QoESamples is the per-variant simulation count for Figures 6 and 7.
	QoESamples int `json:"qoe_samples"`
	// PredictVMs bounds the Holt-Winters sweep; LSTMVMs and LSTMEpochs bound
	// the (far dearer) LSTM sweep of Figure 14.
	PredictVMs int `json:"predict_vms"`
	LSTMVMs    int `json:"lstm_vms"`
	LSTMEpochs int `json:"lstm_epochs"`
	// BillingTopN is the number of top apps priced in Table 6.
	BillingTopN int `json:"billing_top_n"`
}

// nameRE pins scenario names to CLI- and filename-safe slugs.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate checks a complete Spec, returning one error that names every
// offending field (joined with errors.Join), so a bad JSON scenario reports
// all of its problems in a single run.
func (s *Spec) Validate() error {
	var errs []error
	bad := func(field, format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", field, fmt.Sprintf(format, args...)))
	}

	if s.Name == "" {
		bad("name", "must be set")
	} else if !nameRE.MatchString(s.Name) {
		bad("name", "%q must match %s", s.Name, nameRE)
	}

	c := s.Crowd
	if c.Users <= 0 {
		bad("crowd.users", "must be positive (got %d)", c.Users)
	}
	if c.Repeats <= 0 {
		bad("crowd.repeats", "must be positive (got %d)", c.Repeats)
	}
	for _, w := range []struct {
		field string
		v     float64
	}{
		{"crowd.access_mix.wifi", c.Mix.WiFi},
		{"crowd.access_mix.lte", c.Mix.LTE},
		{"crowd.access_mix.five_g", c.Mix.FiveG},
	} {
		if w.v < 0 || w.v > 1 || math.IsNaN(w.v) {
			bad(w.field, "weight %v outside [0,1]", w.v)
		}
	}
	if sum := c.Mix.Sum(); math.Abs(sum-1) > 0.01 {
		bad("crowd.access_mix", "weights sum to %v, want ~1", sum)
	}
	if c.CountyFraction < 0 || c.CountyFraction > 1 {
		bad("crowd.county_fraction", "%v outside [0,1]", c.CountyFraction)
	}
	if c.ThroughputUsers <= 0 {
		bad("crowd.throughput_users", "must be positive (got %d)", c.ThroughputUsers)
	} else if c.Users > 0 && c.ThroughputUsers > c.Users {
		// The iperf testers are a subset of the latency volunteers; a larger
		// count would silently clamp and the study would be smaller than
		// declared.
		bad("crowd.throughput_users", "%d exceeds crowd.users %d (testers reuse latency volunteers)",
			c.ThroughputUsers, c.Users)
	}
	if c.ThroughputSites <= 0 {
		bad("crowd.throughput_sites", "must be positive (got %d)", c.ThroughputSites)
	}
	if c.ServerMbps <= 0 {
		bad("crowd.server_mbps", "must be positive (got %v)", c.ServerMbps)
	}
	if c.WiredShare < 0 || c.WiredShare > 1 {
		bad("crowd.wired_share", "%v outside [0,1]", c.WiredShare)
	}

	w := s.Workload
	if w.NEPApps <= 0 {
		bad("workload.nep_apps", "must be positive (got %d)", w.NEPApps)
	}
	if w.CloudApps <= 0 {
		bad("workload.cloud_apps", "must be positive (got %d)", w.CloudApps)
	}
	if w.NEPDays <= 0 {
		bad("workload.nep_days", "must be positive (got %d)", w.NEPDays)
	}
	if w.CloudDays <= 0 {
		bad("workload.cloud_days", "must be positive (got %d)", w.CloudDays)
	}

	z := s.Sizing
	if z.InterSitePairs <= 0 {
		bad("sizing.inter_site_pairs", "must be positive (got %d)", z.InterSitePairs)
	}
	if z.QoESamples <= 0 {
		bad("sizing.qoe_samples", "must be positive (got %d)", z.QoESamples)
	}
	if z.PredictVMs <= 0 {
		bad("sizing.predict_vms", "must be positive (got %d)", z.PredictVMs)
	}
	if z.LSTMVMs <= 0 {
		bad("sizing.lstm_vms", "must be positive (got %d)", z.LSTMVMs)
	}
	if z.LSTMEpochs <= 0 {
		bad("sizing.lstm_epochs", "must be positive (got %d)", z.LSTMEpochs)
	}
	if z.BillingTopN <= 0 {
		bad("sizing.billing_top_n", "must be positive (got %d)", z.BillingTopN)
	}

	if s.Fault != nil {
		s.Fault.validate(bad)
	}

	if len(errs) > 0 {
		return fmt.Errorf("scenario %q invalid: %w", s.Name, errors.Join(errs...))
	}
	return nil
}

// Clone returns an independent copy. Specs are all-scalar except the
// optional Fault block, which is copied, so callers may mutate the clone
// (e.g. overriding Seed or fault rates) without corrupting built-ins.
func (s *Spec) Clone() *Spec {
	cp := *s
	if s.Fault != nil {
		f := *s.Fault
		cp.Fault = &f
	}
	return &cp
}
