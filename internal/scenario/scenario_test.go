package scenario

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestBuiltinsValidate pins the catalogue: every built-in validates, small
// and paper are present (the legacy Scale shim depends on them), and at
// least three further scenarios exist beyond the two legacy sizings.
func TestBuiltinsValidate(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("built-ins = %v, want small, paper and >=3 more", names)
	}
	for _, must := range []string{"small", "paper", "dense-metro", "rural-sparse", "flash-crowd", "stress"} {
		sp, ok := Get(must)
		if !ok {
			t.Fatalf("built-in %q missing (have %v)", must, names)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("built-in %q invalid: %v", must, err)
		}
		if sp.Notes == "" {
			t.Errorf("built-in %q has no notes for the catalogue listing", must)
		}
	}
}

// TestJSONRoundTripIdentity is the PR's persistence pin: save→load→Validate
// is the identity for every built-in spec.
func TestJSONRoundTripIdentity(t *testing.T) {
	dir := t.TempDir()
	for _, name := range Names() {
		sp := MustGet(name)
		path := filepath.Join(dir, name+".json")
		if err := Save(path, sp); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := Load(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if *back != *sp {
			t.Fatalf("%s: round trip changed the spec:\n in: %+v\nout: %+v", name, sp, back)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: reloaded spec invalid: %v", name, err)
		}
	}
}

// TestValidateNamesFields pins the error UX: invalid specs are rejected
// with errors that name the offending field, and a multiply-broken spec
// reports every problem in one pass.
func TestValidateNamesFields(t *testing.T) {
	valid := MustGet("small")
	cases := []struct {
		name   string
		mutate func(*Spec)
		field  string
	}{
		{"zero-users", func(s *Spec) { s.Crowd.Users = 0 }, "crowd.users"},
		{"negative-repeats", func(s *Spec) { s.Crowd.Repeats = -3 }, "crowd.repeats"},
		{"negative-mix-weight", func(s *Spec) { s.Crowd.Mix.LTE = -0.1 }, "crowd.access_mix.lte"},
		{"mix-sum-off", func(s *Spec) { s.Crowd.Mix = AccessMix{WiFi: 0.5, LTE: 0.1, FiveG: 0.1} }, "crowd.access_mix"},
		{"county-out-of-range", func(s *Spec) { s.Crowd.CountyFraction = 1.5 }, "crowd.county_fraction"},
		{"zero-throughput-sites", func(s *Spec) { s.Crowd.ThroughputSites = 0 }, "crowd.throughput_sites"},
		{"throughput-users-exceed-users", func(s *Spec) { s.Crowd.ThroughputUsers = s.Crowd.Users + 1 }, "crowd.throughput_users"},
		{"zero-nep-apps", func(s *Spec) { s.Workload.NEPApps = 0 }, "workload.nep_apps"},
		{"negative-cloud-days", func(s *Spec) { s.Workload.CloudDays = -1 }, "workload.cloud_days"},
		{"zero-qoe-samples", func(s *Spec) { s.Sizing.QoESamples = 0 }, "sizing.qoe_samples"},
		{"zero-billing-topn", func(s *Spec) { s.Sizing.BillingTopN = 0 }, "sizing.billing_top_n"},
		{"bad-name", func(s *Spec) { s.Name = "Bad Name!" }, "name"},
		{"empty-name", func(s *Spec) { s.Name = "" }, "name"},
	}
	for _, tc := range cases {
		sp := valid.Clone()
		tc.mutate(sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error does not name field %q: %v", tc.name, tc.field, err)
		}
	}

	// Multiple defects are all reported at once.
	sp := valid.Clone()
	sp.Crowd.Users = 0
	sp.Workload.NEPDays = 0
	sp.Sizing.PredictVMs = -2
	err := sp.Validate()
	if err == nil {
		t.Fatal("multiply-broken spec accepted")
	}
	for _, field := range []string{"crowd.users", "workload.nep_days", "sizing.predict_vms"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("joined error missing %q: %v", field, err)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"name":"x","typo_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestGetReturnsClone guards the registry against caller mutation: the
// standard flow (Get then override Seed) must not corrupt the built-in.
func TestGetReturnsClone(t *testing.T) {
	a := MustGet("small")
	a.Seed = 999
	a.Crowd.Users = 1
	b := MustGet("small")
	if b.Seed == 999 || b.Crowd.Users == 1 {
		t.Fatal("mutating a Get result corrupted the registry")
	}
}

func TestRegisterRejects(t *testing.T) {
	if err := Register(MustGet("small")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	bad := MustGet("small")
	bad.Name = "broken-reg"
	bad.Crowd.Users = 0
	if err := Register(bad); err == nil {
		t.Fatal("invalid spec registered")
	}
	if _, ok := Get("broken-reg"); ok {
		t.Fatal("invalid spec reached the registry")
	}
}

func TestResolve(t *testing.T) {
	if sp, err := Resolve("paper"); err != nil || sp.Name != "paper" {
		t.Fatalf("Resolve(paper) = %v, %v", sp, err)
	}

	// A JSON file resolves by path.
	dir := t.TempDir()
	custom := MustGet("small")
	custom.Name = "my-custom"
	custom.Seed = 7
	path := filepath.Join(dir, "custom.json")
	if err := Save(path, custom); err != nil {
		t.Fatal(err)
	}
	sp, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "my-custom" || sp.Seed != 7 {
		t.Fatalf("resolved file spec = %+v", sp)
	}

	// Unknown names list the catalogue.
	_, err = Resolve("no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range []string{"small", "paper", "dense-metro"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list built-in %q: %v", name, err)
		}
	}

	if _, err := Resolve(""); err == nil {
		t.Fatal("empty scenario accepted")
	}
}

func TestWithDefaultsMatchesLegacyFill(t *testing.T) {
	got := CrowdSpec{}.WithDefaults()
	want := CrowdSpec{
		Users: 158, Repeats: 30,
		Mix:             AccessMix{WiFi: 0.59, LTE: 0.34, FiveG: 0.07},
		CountyFraction:  0.7,
		ThroughputUsers: 25, ThroughputSites: 20,
		ServerMbps: 1000, WiredShare: 0.2,
	}
	if got != want {
		t.Fatalf("defaults = %+v, want %+v", got, want)
	}
	// Set fields survive.
	partial := CrowdSpec{Users: 12, Repeats: 4}.WithDefaults()
	if partial.Users != 12 || partial.Repeats != 4 || partial.Mix != want.Mix {
		t.Fatalf("partial defaults = %+v", partial)
	}
}

// TestWithDefaultsKeepsExplicitZeros pins the declarative contract: once a
// spec declares its access mix (every validated spec does), an explicit
// zero CountyFraction or WiredShare is a choice — everyone co-located, no
// wired testers — and must run as written, not be swapped for the paper
// defaults.
func TestWithDefaultsKeepsExplicitZeros(t *testing.T) {
	declared := CrowdSpec{
		Users: 50, Repeats: 5,
		Mix:             AccessMix{WiFi: 0.6, LTE: 0.3, FiveG: 0.1},
		CountyFraction:  0,
		ThroughputUsers: 10, ThroughputSites: 8,
		ServerMbps: 500, WiredShare: 0,
	}
	got := declared.WithDefaults()
	if got != declared {
		t.Fatalf("declared spec rewritten by defaults:\n in: %+v\nout: %+v", declared, got)
	}
	// The full spec validates, so the zeros are a legal declarative choice.
	sp := MustGet("small")
	sp.Crowd = declared
	if err := sp.Validate(); err != nil {
		t.Fatalf("explicit-zero spec invalid: %v", err)
	}
}
