package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Decode reads one JSON Spec. Unknown fields are rejected (a typoed field
// in a hand-written scenario should fail loudly, not silently fall back to
// a default), and the decoded spec must validate.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Load reads and validates a JSON scenario file.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	sp, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return sp, nil
}

// Encode writes a Spec as indented JSON, the same form Save produces and
// Load accepts. Specs are all finite scalars, so encoding cannot fail for a
// validated spec.
func Encode(w io.Writer, sp *Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sp); err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Save writes a validated Spec to a JSON file.
func Save(path string, sp *Spec) error {
	var buf bytes.Buffer
	if err := Encode(&buf, sp); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}
