package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// The registry maps scenario names to specs. Built-ins are registered at
// init; user code may Register more (e.g. loaded from JSON at startup).
var (
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
)

// Register adds a scenario to the registry. The spec must validate and its
// name must be unused.
func Register(sp *Spec) error {
	if sp == nil {
		return fmt.Errorf("scenario: Register(nil)")
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[sp.Name]; ok {
		return fmt.Errorf("scenario: %q already registered", sp.Name)
	}
	registry[sp.Name] = sp.Clone()
	return nil
}

// Get returns a copy of the named scenario, so callers may override fields
// (typically Seed) without mutating the registry.
func Get(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sp, ok := registry[name]
	if !ok {
		return nil, false
	}
	return sp.Clone(), true
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Notes returns the one-line description of a registered scenario ("" when
// unknown), for CLI listings.
func Notes(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	if sp, ok := registry[name]; ok {
		return sp.Notes
	}
	return ""
}

// MustGet returns a copy of a registered scenario, panicking when absent.
// Use for the built-in names only.
func MustGet(name string) *Spec {
	sp, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("scenario: built-in %q not registered", name))
	}
	return sp
}

// Resolve is the single CLI entry point for `-scenario NAME|file.json`: a
// registered name returns that scenario; anything else is treated as a path
// to a JSON spec file. Unknown names that are not files error with the full
// catalogue so the caller can self-correct.
func Resolve(arg string) (*Spec, error) {
	if arg == "" {
		return nil, fmt.Errorf("scenario: empty scenario name")
	}
	if sp, ok := Get(arg); ok {
		return sp, nil
	}
	if looksLikePath(arg) {
		return Load(arg)
	}
	if _, err := os.Stat(arg); err == nil {
		return Load(arg)
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (built-ins: %s; or pass a path to a JSON spec)",
		arg, strings.Join(Names(), ", "))
}

func looksLikePath(arg string) bool {
	return strings.HasSuffix(arg, ".json") || strings.ContainsAny(arg, "/\\")
}

// The built-in catalogue. `small` and `paper` are the two sizings the repo
// has always shipped (CI-fast vs the paper's parameters); the rest open new
// workloads purely as data. All built-ins use seed 1 by default.
func init() {
	builtins := []*Spec{
		{
			Name:  "small",
			Notes: "CI-fast sizing of the paper campaign: every experiment in a second or two",
			Seed:  1,
			Crowd: CrowdSpec{
				Users: 60, Repeats: 10,
				Mix:             AccessMix{WiFi: 0.59, LTE: 0.34, FiveG: 0.07},
				CountyFraction:  0.7,
				ThroughputUsers: 15, ThroughputSites: 12,
				ServerMbps: 1000, WiredShare: 0.2,
			},
			Workload: WorkloadSpec{NEPApps: 40, CloudApps: 150, NEPDays: 14, CloudDays: 8},
			Sizing: SizingSpec{
				InterSitePairs: 3000, QoESamples: 30,
				PredictVMs: 40, LSTMVMs: 3, LSTMEpochs: 3,
				BillingTopN: 25,
			},
		},
		{
			Name:  "paper",
			Notes: "the paper's parameters: 158 users, 30 repeats, 4-week traces, full LSTM sweep",
			Seed:  1,
			Crowd: CrowdSpec{
				Users: 158, Repeats: 30,
				Mix:             AccessMix{WiFi: 0.59, LTE: 0.34, FiveG: 0.07},
				CountyFraction:  0.7,
				ThroughputUsers: 25, ThroughputSites: 20,
				ServerMbps: 1000, WiredShare: 0.2,
			},
			Workload: WorkloadSpec{NEPApps: 100, CloudApps: 500, NEPDays: 28, CloudDays: 28},
			Sizing: SizingSpec{
				InterSitePairs: 20000, QoESamples: 50,
				PredictVMs: 150, LSTMVMs: 20, LSTMEpochs: 8,
				BillingTopN: 50,
			},
		},
		{
			Name:  "dense-metro",
			Notes: "tier-1 metro population: 5G-heavy access, almost everyone co-located with a site city",
			Seed:  1,
			Crowd: CrowdSpec{
				Users: 90, Repeats: 8,
				Mix:             AccessMix{WiFi: 0.40, LTE: 0.30, FiveG: 0.30},
				CountyFraction:  0.10,
				ThroughputUsers: 18, ThroughputSites: 10,
				ServerMbps: 1000, WiredShare: 0.25,
			},
			Workload: WorkloadSpec{NEPApps: 60, CloudApps: 150, NEPDays: 10, CloudDays: 6},
			Sizing: SizingSpec{
				InterSitePairs: 4000, QoESamples: 30,
				PredictVMs: 40, LSTMVMs: 3, LSTMEpochs: 3,
				BillingTopN: 25,
			},
		},
		{
			Name:  "rural-sparse",
			Notes: "county-town population far from every site: LTE-dominated, long last miles",
			Seed:  1,
			Crowd: CrowdSpec{
				Users: 70, Repeats: 12,
				Mix:             AccessMix{WiFi: 0.30, LTE: 0.65, FiveG: 0.05},
				CountyFraction:  0.95,
				ThroughputUsers: 10, ThroughputSites: 12,
				ServerMbps: 1000, WiredShare: 0.1,
			},
			Workload: WorkloadSpec{NEPApps: 30, CloudApps: 100, NEPDays: 14, CloudDays: 8},
			Sizing: SizingSpec{
				InterSitePairs: 2500, QoESamples: 25,
				PredictVMs: 30, LSTMVMs: 2, LSTMEpochs: 3,
				BillingTopN: 20,
			},
		},
		{
			Name:  "flash-crowd",
			Notes: "live-event surge: a large burst of users probing briefly, short trace horizon",
			Seed:  1,
			Crowd: CrowdSpec{
				Users: 240, Repeats: 3,
				Mix:             AccessMix{WiFi: 0.55, LTE: 0.38, FiveG: 0.07},
				CountyFraction:  0.5,
				ThroughputUsers: 20, ThroughputSites: 12,
				ServerMbps: 1000, WiredShare: 0.2,
			},
			Workload: WorkloadSpec{NEPApps: 50, CloudApps: 120, NEPDays: 7, CloudDays: 5},
			Sizing: SizingSpec{
				InterSitePairs: 3000, QoESamples: 40,
				PredictVMs: 30, LSTMVMs: 2, LSTMEpochs: 2,
				BillingTopN: 25,
			},
		},
		{
			Name:  "stress",
			Notes: "everything scaled past paper defaults except the LSTM: a load test for the engine",
			Seed:  1,
			Crowd: CrowdSpec{
				Users: 320, Repeats: 12,
				Mix:             AccessMix{WiFi: 0.59, LTE: 0.34, FiveG: 0.07},
				CountyFraction:  0.7,
				ThroughputUsers: 30, ThroughputSites: 20,
				ServerMbps: 1000, WiredShare: 0.2,
			},
			Workload: WorkloadSpec{NEPApps: 120, CloudApps: 250, NEPDays: 14, CloudDays: 8},
			Sizing: SizingSpec{
				InterSitePairs: 8000, QoESamples: 60,
				PredictVMs: 60, LSTMVMs: 4, LSTMEpochs: 3,
				BillingTopN: 40,
			},
		},
	}
	for _, sp := range builtins {
		if err := Register(sp); err != nil {
			panic("scenario: built-in registration failed: " + err.Error())
		}
	}
}
