package mathx

import (
	"math"
	"math/rand/v2"
	"testing"
)

// edgeInputs covers the full special-value surface plus the
// range-reduction and ldexp boundaries.
func edgeInputs() []float64 {
	xs := []float64{
		0, math.Copysign(0, -1),
		1, -1, 0.5, -0.5, 2, -2,
		math.Inf(1), math.Inf(-1), math.NaN(),
		expOverflow, math.Nextafter(expOverflow, 710), math.Nextafter(expOverflow, 0),
		709.782712893384, 709.7827128933841,
		-expOverflow,
		// underflow-to-zero and denormal-result band
		-745.1332191019411, -745.1332191019412, -744.44007192138122,
		-708.396418532264, -709, -710, -745, -746, -747, -1000, -1e6, -1e300,
		708, 708.5, 709, -708.5,
		// |x| just above/below the bulk fast gate
		math.Nextafter(fastAbsBound, 1000), math.Nextafter(fastAbsBound, 0),
		-math.Nextafter(fastAbsBound, 1000), -math.Nextafter(fastAbsBound, 0),
		// denormal and tiny inputs
		5e-324, -5e-324, 1e-308, -1e-308, 1e-17, -1e-17,
		math.Ln2, -math.Ln2, math.Ln2 / 2, -math.Ln2 / 2,
	}
	for _, m := range []float64{0.5, 1.5, 2.5, 3.5, -0.5, -1.5, -2.5, 511.5, 512.5, -511.5, -1021.5} {
		xs = append(xs, m*math.Ln2)
	}
	return xs
}

func TestExpBulkBitIdenticalDefault(t *testing.T) {
	if CurrentMode() != ModeAuto {
		t.Skip("EDGESCOPE_EXP_MODE overrides default mode")
	}
	r := rand.New(rand.NewPCG(7, 11))
	xs := edgeInputs()
	for i := 0; i < 200000; i++ {
		xs = append(xs, (r.Float64()-0.5)*1500)
	}
	for i := 0; i < 50000; i++ {
		xs = append(xs, (r.Float64()-0.5)*4) // noise-sized draws, the hot band
	}
	got := make([]float64, len(xs))
	ExpBulk(got, xs)
	for i, x := range xs {
		want := math.Exp(x)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("ExpBulk(%g) = %x want %x (math.Exp bits)",
				x, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
	// Scalar wrapper obeys the same contract.
	for _, x := range edgeInputs() {
		if math.Float64bits(Exp(x)) != math.Float64bits(math.Exp(x)) {
			t.Fatalf("Exp(%g) != math.Exp bits", x)
		}
	}
}

func TestExpBulkInPlaceAndAliasing(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 9))
	xs := make([]float64, 1027) // odd length: exercises the tail loop
	for i := range xs {
		xs[i] = (r.Float64() - 0.5) * 20
	}
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = math.Exp(x)
	}
	buf := append([]float64(nil), xs...)
	ExpBulk(buf, buf) // in-place
	for i := range buf {
		if math.Float64bits(buf[i]) != math.Float64bits(want[i]) {
			t.Fatalf("in-place ExpBulk[%d] mismatch", i)
		}
	}
	// dst longer than src: only the prefix is written.
	long := make([]float64, len(xs)+5)
	for i := range long {
		long[i] = -1
	}
	ExpBulk(long, xs)
	for i := len(xs); i < len(long); i++ {
		if long[i] != -1 {
			t.Fatalf("ExpBulk wrote past len(src) at %d", i)
		}
	}
}

func TestExpBulkPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short dst")
		}
	}()
	ExpBulk(make([]float64, 3), make([]float64, 4))
}

// TestExpKernelPortsExactOnVerifiedPlatforms pins the porting claim
// itself: whenever the probe verified a core, both scalar cores' full
// wrappers and both bulk loops must agree with math.Exp everywhere we
// can cheaply check, including the specials that bypass the core.
func TestExpKernelPortsExactOnVerifiedPlatforms(t *testing.T) {
	if !KernelVerified() {
		t.Skip("no polynomial core verified against math.Exp on this platform")
	}
	full := expFullSSE
	bulk := bulkSSE
	if kernelPick > 0 {
		full = expFullFMA
		bulk = bulkFMA
	}
	r := rand.New(rand.NewPCG(17, 29))
	xs := edgeInputs()
	for i := 0; i < 300000; i++ {
		switch i % 3 {
		case 0:
			xs = append(xs, (r.Float64()-0.5)*1500)
		case 1:
			xs = append(xs, (r.Float64()-0.5)*2)
		default: // denormal-result band
			xs = append(xs, -745.2+r.Float64()*37)
		}
	}
	dst := make([]float64, len(xs))
	bulk(dst, xs)
	for i, x := range xs {
		want := math.Float64bits(math.Exp(x))
		if got := math.Float64bits(full(x)); got != want {
			t.Fatalf("scalar core(%g) = %x want %x", x, got, want)
		}
		if got := math.Float64bits(dst[i]); got != want {
			t.Fatalf("bulk core(%g) = %x want %x", x, got, want)
		}
	}
}

// ulpDiff returns the distance in representable float64 steps, treating
// the ±0 pair as adjacent. Infinite when only one side is NaN/Inf.
func ulpDiff(a, b float64) uint64 {
	if a == b {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.MaxUint64
	}
	oa, ob := orderBits(a), orderBits(b)
	if oa > ob {
		return oa - ob
	}
	return ob - oa
}

func orderBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&signMask != 0 {
		return signMask - (b &^ signMask)
	}
	return signMask + b
}

// TestExpFastULPBound is the documented accuracy budget for the opt-in
// fast mode on platforms where the probe cannot verify bit-identity:
// every result within 4 ULP of math.Exp, specials handled exactly.
func TestExpFastULPBound(t *testing.T) {
	const maxULP = 4
	r := rand.New(rand.NewPCG(23, 41))
	xs := edgeInputs()
	for i := 0; i < 300000; i++ {
		xs = append(xs, (r.Float64()-0.5)*1500)
	}
	for _, core := range []struct {
		name string
		f    func(float64) float64
	}{{"fma", expFullFMA}, {"sse", expFullSSE}} {
		worst := uint64(0)
		for _, x := range xs {
			want := math.Exp(x)
			got := core.f(x)
			if math.IsNaN(want) {
				if !math.IsNaN(got) {
					t.Fatalf("%s(%g) = %g want NaN", core.name, x, got)
				}
				continue
			}
			if math.IsInf(want, 1) || want == 0 {
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s(%g) = %g want %g exactly", core.name, x, got, want)
				}
				continue
			}
			if d := ulpDiff(got, want); d > worst {
				worst = d
				if d > maxULP {
					t.Fatalf("%s(%g): %d ULP from math.Exp (budget %d)", core.name, x, d, maxULP)
				}
			}
		}
		t.Logf("%s core: worst %d ULP over %d inputs", core.name, worst, len(xs))
	}
}

// TestExpModeFastAndStdlib exercises the mode knob end to end.
func TestExpModeFastAndStdlib(t *testing.T) {
	orig := CurrentMode()
	defer SetMode(orig)

	xs := []float64{-1.5, 0, 0.25, 3, -300, 700, 709.9, -800, math.Inf(1), math.NaN()}
	dst := make([]float64, len(xs))

	SetMode(ModeStdlib)
	ExpBulk(dst, xs)
	for i, x := range xs {
		if !sameFloatBits(dst[i], math.Exp(x)) {
			t.Fatalf("stdlib mode mismatch at %g", x)
		}
	}

	SetMode(ModeFast)
	ExpBulk(dst, xs)
	for i, x := range xs {
		want := math.Exp(x)
		if math.IsNaN(want) {
			if !math.IsNaN(dst[i]) {
				t.Fatalf("fast mode: Exp(NaN) = %g", dst[i])
			}
			continue
		}
		if math.IsInf(want, 1) || want == 0 {
			if !sameFloatBits(dst[i], want) {
				t.Fatalf("fast mode special mismatch at %g", x)
			}
			continue
		}
		if ulpDiff(dst[i], want) > 4 {
			t.Fatalf("fast mode: %g is %d ULP from math.Exp", x, ulpDiff(dst[i], want))
		}
	}
}

func sameFloatBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}
