// Package mathx provides batched math kernels for the synthesis hot
// paths: a bulk exponential (ExpBulk) that the workload, elastic and
// rng planes share instead of calling math.Exp one sample at a time.
//
// Bit-exactness contract: on the default path ExpBulk produces bytes
// identical to a math.Exp loop. The package ports the two variants of
// the Go runtime's amd64 assembly exp (the SLEEF/Shibata kernel behind
// math.Exp: an FMA form and a plain-SSE form) to pure Go, then proves
// at init time — against math.Exp itself, over a deterministic probe
// set covering range-reduction boundaries, denormal results and random
// draws — which port reproduces the platform's math.Exp bit-for-bit.
// Only a proven kernel is used; if neither port matches (non-amd64
// platforms use a different algorithm entirely), ExpBulk degrades to a
// plain math.Exp loop and stays byte-identical by construction.
//
// The polynomial kernel can also be forced on unverified platforms via
// the opt-in fast mode (SetMode(ModeFast) or EDGESCOPE_EXP_MODE=fast).
// That path is NOT guaranteed bit-identical to math.Exp; its accuracy
// is bounded by a tested max-ULP budget (see TestExpFastULPBound).
package mathx

import (
	"math"
	"os"
	"sync"
)

// Mode selects how ExpBulk evaluates.
type Mode int

const (
	// ModeAuto (default): use the polynomial kernel only when the init
	// probe proves it bit-identical to math.Exp, else fall back to a
	// math.Exp loop. Always byte-identical to math.Exp.
	ModeAuto Mode = iota
	// ModeStdlib: always the math.Exp loop. Byte-identical, no speedup.
	ModeStdlib
	// ModeFast: always the polynomial kernel, even when the probe could
	// not verify it against math.Exp. Opt-in; bounded-ULP, not bit-exact.
	ModeFast
)

var (
	modeMu sync.Mutex
	mode   = ModeAuto

	kernelOnce sync.Once
	// kernelFMA reports which scalar core the probe verified:
	// +1 → FMA core matches math.Exp, -1 → SSE core matches, 0 → neither.
	kernelPick int
)

func init() {
	switch os.Getenv("EDGESCOPE_EXP_MODE") {
	case "stdlib":
		mode = ModeStdlib
	case "fast":
		mode = ModeFast
	}
}

// SetMode sets the evaluation mode. Safe to call at any time; intended
// for tests and for scenario wiring of the opt-in fast path.
func SetMode(m Mode) {
	modeMu.Lock()
	mode = m
	modeMu.Unlock()
}

// CurrentMode returns the evaluation mode.
func CurrentMode() Mode {
	modeMu.Lock()
	defer modeMu.Unlock()
	return mode
}

// KernelVerified reports whether the init probe proved one of the
// polynomial cores bit-identical to this platform's math.Exp.
func KernelVerified() bool {
	kernelOnce.Do(pickKernel)
	return kernelPick != 0
}

// Constants of the SLEEF/Shibata kernel, verbatim from the Go runtime's
// exp_amd64.s.
const (
	log2e = 1.4426950408889634073599246810018920                  // 1/ln(2)
	ln2u  = 0.69314718055966295651160180568695068359375           // upper half ln(2)
	ln2l  = 0.28235290563031577122588448175013436025525412068e-12 // lower half ln(2)

	expOverflow = 7.09782712893384e+02

	// Adding then subtracting 2^52+2^51 rounds a float64 in (-2^51, 2^51)
	// to the nearest integer under round-half-even — the same result as
	// the assembly's CVTSD2SL.
	roundMagic = 6755399441055744.0

	c9 = 2.4801587301587301587e-5
	c8 = 1.9841269841269841270e-4
	c7 = 1.3888888888888888889e-3
	c6 = 8.3333333333333333333e-3
	c5 = 4.1666666666666666667e-2
	c4 = 1.6666666666666666667e-1

	signMask   = 1 << 63
	posInfBits = 0x7FF0000000000000
	negInfBits = 0xFFF0000000000000

	// |x| at or below this bound takes the branch-free core: the scaled
	// exponent k stays within [-1022, 1022], so ldexp is a single
	// multiply with no overflow or denormal handling.
	fastAbsBound = 708.0
)

var fastAbsBoundBits = math.Float64bits(fastAbsBound)

// expSSE is the non-FMA scalar core: every operation rounds separately,
// matching the MULSD/ADDSD sequence in exp_amd64.s when useFMA is off.
// Caller guarantees x is finite, x <= expOverflow and x >= -746 (so the
// round-to-int magic stays in range).
func expSSE(x float64) float64 {
	kd := float64(x*log2e+roundMagic) - roundMagic
	k := int(kd)
	fr := float64(x - float64(ln2u*kd))
	fr = float64(fr - float64(ln2l*kd))
	fr *= 0.0625
	p := float64(c9 * fr)
	p = float64(float64(p+c8) * fr)
	p = float64(float64(p+c7) * fr)
	p = float64(float64(p+c6) * fr)
	p = float64(float64(p+c5) * fr)
	p = float64(float64(p+c4) * fr)
	p = float64(float64(p+0.5) * fr)
	p = float64(p + 1.0)
	fr = float64(fr * p)
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = float64(fr + 1.0)
	return ldexpK(fr, k)
}

// expFMA is the FMA scalar core, matching the VFNMADD/VFMADD sequence
// in exp_amd64.s when useFMA is on. math.FMA is correctly rounded on
// every platform, so the port is exact whether or not the hardware has
// fused multiply-add. Same domain contract as expSSE.
func expFMA(x float64) float64 {
	kd := float64(x*log2e+roundMagic) - roundMagic
	k := int(kd)
	fr := math.FMA(-kd, ln2u, x)
	fr = math.FMA(-kd, ln2l, fr)
	fr *= 0.0625
	p := math.FMA(fr, c9, c8)
	p = math.FMA(fr, p, c7)
	p = math.FMA(fr, p, c6)
	p = math.FMA(fr, p, c5)
	p = math.FMA(fr, p, c4)
	p = math.FMA(fr, p, 0.5)
	p = math.FMA(fr, p, 1.0)
	fr = float64(fr * p)
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = math.FMA(fr, float64(2+fr), 1.0)
	return ldexpK(fr, k)
}

// ldexpK scales fr by 2**k exactly as the assembly's ldexp tail does,
// including the two-step denormal squeeze and the overflow-to-+Inf edge.
func ldexpK(fr float64, k int) float64 {
	n := k + 0x3FF
	if n <= 0 {
		if n < -52 {
			return 0
		}
		fr *= math.Float64frombits(uint64(n+0x3FE) << 52)
		return fr * math.Float64frombits(1<<52)
	}
	if n >= 0x7FF {
		return math.Inf(1)
	}
	return fr * math.Float64frombits(uint64(n)<<52)
}

// expFullSSE handles the complete math.Exp domain through the SSE core.
func expFullSSE(x float64) float64 {
	b := math.Float64bits(x)
	if b&^uint64(signMask) >= posInfBits { // NaN or ±Inf
		if b == negInfBits {
			return 0
		}
		return x
	}
	if x > expOverflow {
		return math.Inf(1)
	}
	if x < -746 {
		// k would be < -1075: the assembly's denormal path underflows
		// to zero for every such input, and the round-to-int magic is
		// only exercised inside its valid range.
		return 0
	}
	return expSSE(x)
}

// expFullFMA is expFullSSE with the FMA core.
func expFullFMA(x float64) float64 {
	b := math.Float64bits(x)
	if b&^uint64(signMask) >= posInfBits {
		if b == negInfBits {
			return 0
		}
		return x
	}
	if x > expOverflow {
		return math.Inf(1)
	}
	if x < -746 {
		return 0
	}
	return expFMA(x)
}

// probeSet returns deterministic inputs that distinguish the two cores
// from each other and from non-SLEEF implementations: range-reduction
// boundaries (half-odd multiples of ln 2, where round-half-even bites),
// overflow/underflow edges, denormal results, and a seeded LCG sweep of
// the practical domain.
func probeSet() []float64 {
	xs := []float64{
		0, 1, -1, 0.5, -0.5, 1e-9, -1e-9, 2.3025850929940457, // ln(10)
		expOverflow, expOverflow - 1e-10, -expOverflow,
		-708.396418532264, // ~ln(smallest denormal)
		-745.1332191019411, -745.2, -744.44007192138122,
		709.0, -709.0, 0.0625, -0.0625,
	}
	// Half-odd multiples of ln 2: LOG2E*x lands on .5, exercising the
	// round-half-even tie behaviour of the k computation.
	for _, m := range []float64{0.5, 1.5, 2.5, -0.5, -1.5, -2.5, 511.5, -511.5} {
		xs = append(xs, m*math.Ln2)
	}
	// Seeded LCG sweep over (-710, 710).
	s := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 4096; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		u := float64(s>>11) / (1 << 53) // [0,1)
		xs = append(xs, (u-0.5)*1420)
	}
	// Dense sweep near zero where the Taylor tail dominates.
	for i := 0; i < 512; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		u := float64(s>>11) / (1 << 53)
		xs = append(xs, (u-0.5)*0.25)
	}
	return xs
}

func pickKernel() {
	fmaOK, sseOK := true, true
	for _, x := range probeSet() {
		want := math.Exp(x)
		if fmaOK && math.Float64bits(expFullFMA(x)) != math.Float64bits(want) {
			fmaOK = false
		}
		if sseOK && math.Float64bits(expFullSSE(x)) != math.Float64bits(want) {
			sseOK = false
		}
		if !fmaOK && !sseOK {
			break
		}
	}
	switch {
	case fmaOK:
		kernelPick = 1
	case sseOK:
		kernelPick = -1
	default:
		kernelPick = 0
	}
}

// Exp is a scalar convenience wrapper with the same mode semantics as
// ExpBulk. The bulk form is the performance surface; use this only where
// a single value is needed and mode consistency matters.
func Exp(x float64) float64 {
	kernelOnce.Do(pickKernel)
	switch {
	case CurrentMode() == ModeStdlib:
		return math.Exp(x)
	case kernelPick > 0 || (kernelPick == 0 && CurrentMode() == ModeFast):
		return expFullFMA(x)
	case kernelPick < 0:
		return expFullSSE(x)
	default:
		return math.Exp(x)
	}
}

// ExpBulk writes exp(src[i]) into dst[i] for every element of src.
// dst must be at least as long as src; dst and src may be the same
// slice (in-place) or otherwise alias element-for-element.
//
// Draw-order/bit contract: in ModeAuto and ModeStdlib the output is
// bit-identical to `for i, x := range src { dst[i] = math.Exp(x) }`.
// ModeFast trades that for speed on unverified platforms within the
// tested max-ULP bound.
func ExpBulk(dst, src []float64) {
	if len(dst) < len(src) {
		panic("mathx: ExpBulk dst shorter than src")
	}
	dst = dst[:len(src)]
	kernelOnce.Do(pickKernel)
	pick := kernelPick
	if CurrentMode() == ModeStdlib {
		pick = 0
	} else if pick == 0 && CurrentMode() == ModeFast {
		pick = 1 // unverified: prefer the FMA core (correctly rounded FMA everywhere)
	}
	switch {
	case pick > 0:
		bulkFMA(dst, src)
	case pick < 0:
		bulkSSE(dst, src)
	default:
		for i, x := range src {
			dst[i] = math.Exp(x)
		}
	}
}

// bulkFMA runs the FMA core over the buffer four elements at a time.
// The in-range gate (|x| <= fastAbsBound, compared on bits so NaN and
// infinities fail it too) guarantees ldexp needs only one multiply, so
// the unrolled body is branch-free and the four dependency chains
// overlap in the pipeline. Out-of-range elements fall back one by one
// to the full-domain scalar.
func bulkFMA(dst, src []float64) {
	dst = dst[:len(src)]
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		x0, x1, x2, x3 := s[0], s[1], s[2], s[3]
		b0 := math.Float64bits(x0) &^ uint64(signMask)
		b1 := math.Float64bits(x1) &^ uint64(signMask)
		b2 := math.Float64bits(x2) &^ uint64(signMask)
		b3 := math.Float64bits(x3) &^ uint64(signMask)
		if b0 > fastAbsBoundBits || b1 > fastAbsBoundBits ||
			b2 > fastAbsBoundBits || b3 > fastAbsBoundBits {
			d[0] = expFullFMA(x0)
			d[1] = expFullFMA(x1)
			d[2] = expFullFMA(x2)
			d[3] = expFullFMA(x3)
			continue
		}
		kd0 := float64(x0*log2e+roundMagic) - roundMagic
		kd1 := float64(x1*log2e+roundMagic) - roundMagic
		kd2 := float64(x2*log2e+roundMagic) - roundMagic
		kd3 := float64(x3*log2e+roundMagic) - roundMagic
		f0 := math.FMA(-kd0, ln2u, x0)
		f1 := math.FMA(-kd1, ln2u, x1)
		f2 := math.FMA(-kd2, ln2u, x2)
		f3 := math.FMA(-kd3, ln2u, x3)
		f0 = math.FMA(-kd0, ln2l, f0) * 0.0625
		f1 = math.FMA(-kd1, ln2l, f1) * 0.0625
		f2 = math.FMA(-kd2, ln2l, f2) * 0.0625
		f3 = math.FMA(-kd3, ln2l, f3) * 0.0625
		p0 := math.FMA(f0, c9, c8)
		p1 := math.FMA(f1, c9, c8)
		p2 := math.FMA(f2, c9, c8)
		p3 := math.FMA(f3, c9, c8)
		p0 = math.FMA(f0, p0, c7)
		p1 = math.FMA(f1, p1, c7)
		p2 = math.FMA(f2, p2, c7)
		p3 = math.FMA(f3, p3, c7)
		p0 = math.FMA(f0, p0, c6)
		p1 = math.FMA(f1, p1, c6)
		p2 = math.FMA(f2, p2, c6)
		p3 = math.FMA(f3, p3, c6)
		p0 = math.FMA(f0, p0, c5)
		p1 = math.FMA(f1, p1, c5)
		p2 = math.FMA(f2, p2, c5)
		p3 = math.FMA(f3, p3, c5)
		p0 = math.FMA(f0, p0, c4)
		p1 = math.FMA(f1, p1, c4)
		p2 = math.FMA(f2, p2, c4)
		p3 = math.FMA(f3, p3, c4)
		p0 = math.FMA(f0, p0, 0.5)
		p1 = math.FMA(f1, p1, 0.5)
		p2 = math.FMA(f2, p2, 0.5)
		p3 = math.FMA(f3, p3, 0.5)
		p0 = math.FMA(f0, p0, 1.0)
		p1 = math.FMA(f1, p1, 1.0)
		p2 = math.FMA(f2, p2, 1.0)
		p3 = math.FMA(f3, p3, 1.0)
		f0 = float64(f0 * p0)
		f1 = float64(f1 * p1)
		f2 = float64(f2 * p2)
		f3 = float64(f3 * p3)
		f0 = float64(f0 * float64(2+f0))
		f1 = float64(f1 * float64(2+f1))
		f2 = float64(f2 * float64(2+f2))
		f3 = float64(f3 * float64(2+f3))
		f0 = float64(f0 * float64(2+f0))
		f1 = float64(f1 * float64(2+f1))
		f2 = float64(f2 * float64(2+f2))
		f3 = float64(f3 * float64(2+f3))
		f0 = float64(f0 * float64(2+f0))
		f1 = float64(f1 * float64(2+f1))
		f2 = float64(f2 * float64(2+f2))
		f3 = float64(f3 * float64(2+f3))
		f0 = math.FMA(f0, float64(2+f0), 1.0)
		f1 = math.FMA(f1, float64(2+f1), 1.0)
		f2 = math.FMA(f2, float64(2+f2), 1.0)
		f3 = math.FMA(f3, float64(2+f3), 1.0)
		d[0] = f0 * math.Float64frombits(uint64(int(kd0)+0x3FF)<<52)
		d[1] = f1 * math.Float64frombits(uint64(int(kd1)+0x3FF)<<52)
		d[2] = f2 * math.Float64frombits(uint64(int(kd2)+0x3FF)<<52)
		d[3] = f3 * math.Float64frombits(uint64(int(kd3)+0x3FF)<<52)
	}
	for ; i < n; i++ {
		dst[i] = expFullFMA(src[i])
	}
}

// bulkSSE is bulkFMA with the separately-rounded core.
func bulkSSE(dst, src []float64) {
	dst = dst[:len(src)]
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		x0, x1, x2, x3 := s[0], s[1], s[2], s[3]
		b0 := math.Float64bits(x0) &^ uint64(signMask)
		b1 := math.Float64bits(x1) &^ uint64(signMask)
		b2 := math.Float64bits(x2) &^ uint64(signMask)
		b3 := math.Float64bits(x3) &^ uint64(signMask)
		if b0 > fastAbsBoundBits || b1 > fastAbsBoundBits ||
			b2 > fastAbsBoundBits || b3 > fastAbsBoundBits {
			d[0] = expFullSSE(x0)
			d[1] = expFullSSE(x1)
			d[2] = expFullSSE(x2)
			d[3] = expFullSSE(x3)
			continue
		}
		d[0] = expInRangeSSE(x0)
		d[1] = expInRangeSSE(x1)
		d[2] = expInRangeSSE(x2)
		d[3] = expInRangeSSE(x3)
	}
	for ; i < n; i++ {
		dst[i] = expFullSSE(src[i])
	}
}

// expInRangeSSE is expSSE with the single-multiply ldexp, valid only
// for |x| <= fastAbsBound. Small enough for the compiler to inline into
// bulkSSE so the four calls per block schedule together.
func expInRangeSSE(x float64) float64 {
	kd := float64(x*log2e+roundMagic) - roundMagic
	fr := float64(x - float64(ln2u*kd))
	fr = float64(fr - float64(ln2l*kd))
	fr *= 0.0625
	p := float64(c9 * fr)
	p = float64(float64(p+c8) * fr)
	p = float64(float64(p+c7) * fr)
	p = float64(float64(p+c6) * fr)
	p = float64(float64(p+c5) * fr)
	p = float64(float64(p+c4) * fr)
	p = float64(float64(p+0.5) * fr)
	p = float64(p + 1.0)
	fr = float64(fr * p)
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = float64(fr * float64(2+fr))
	fr = float64(fr + 1.0)
	return fr * math.Float64frombits(uint64(int(kd)+0x3FF)<<52)
}
