// Package qoe holds the shared scaffolding of the paper's application-level
// QoE experiments (§3.3): the four backend VMs (one nearest edge, three
// clouds at 670/1300/2000 km) and their access-network RTTs (Table 5). The
// cloud-gaming and live-streaming pipelines live in the gaming and streaming
// subpackages.
package qoe

import (
	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

// Backend is one of the QoE experiment's server VMs. Each VM has 8 vCPUs,
// 16 GB memory and ample bandwidth (§2.1.1).
type Backend struct {
	Name       string
	Class      netmodel.SiteClass
	DistanceKm float64
	VCPUs      int
	MemGB      int
}

// Backends returns the experiment's four server VMs: the nearest edge site
// and three cloud regions at increasing distance, as deployed in §2.1.1.
func Backends() []Backend {
	return []Backend{
		{Name: "Edge", Class: netmodel.EdgeSite, DistanceKm: 25, VCPUs: 8, MemGB: 16},
		{Name: "Cloud-1", Class: netmodel.CloudSite, DistanceKm: 670, VCPUs: 8, MemGB: 16},
		{Name: "Cloud-2", Class: netmodel.CloudSite, DistanceKm: 1300, VCPUs: 8, MemGB: 16},
		{Name: "Cloud-3", Class: netmodel.CloudSite, DistanceKm: 2000, VCPUs: 8, MemGB: 16},
	}
}

// RTTRow is one cell of Table 5: the mean RTT from the experiment location
// to a backend over one access network.
type RTTRow struct {
	Access  netmodel.Access
	Backend string
	MeanMs  float64
}

// RTTTable measures the mean RTT to each backend over each mobile access
// type, averaged over several location setups (the paper repeated each test
// at four locations in the same city) — Table 5.
func RTTTable(r *rng.Source, locations int) []RTTRow {
	if locations <= 0 {
		locations = 4
	}
	const perLocation = 10
	var rows []RTTRow
	for _, a := range []netmodel.Access{netmodel.WiFi, netmodel.LTE, netmodel.FiveG} {
		for _, b := range Backends() {
			// Each location's repeats are one pure run of RTT draws on a
			// stable path — the batched kernel's case (draw-for-draw equal
			// to the scalar loop this replaced).
			samples := make([]float64, locations*perLocation)
			for l := 0; l < locations; l++ {
				p := netmodel.BuildPath(r, a, b.Class, b.DistanceKm)
				p.SampleRTTs(r, samples[l*perLocation:(l+1)*perLocation])
			}
			rows = append(rows, RTTRow{Access: a, Backend: b.Name, MeanMs: stats.Mean(samples)})
		}
	}
	return rows
}

// MeanRTT looks the (access, backend) cell up in a Table 5 result; ok is
// false when absent.
func MeanRTT(rows []RTTRow, a netmodel.Access, backend string) (float64, bool) {
	for _, row := range rows {
		if row.Access == a && row.Backend == backend {
			return row.MeanMs, true
		}
	}
	return 0, false
}
