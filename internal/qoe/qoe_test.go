package qoe

import (
	"testing"

	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
)

func TestBackendsInventory(t *testing.T) {
	bs := Backends()
	if len(bs) != 4 {
		t.Fatalf("backends = %d, want 4 (1 edge + 3 clouds)", len(bs))
	}
	if bs[0].Class != netmodel.EdgeSite {
		t.Fatal("first backend must be the edge VM")
	}
	for i := 1; i < 4; i++ {
		if bs[i].Class != netmodel.CloudSite {
			t.Fatalf("backend %d should be cloud", i)
		}
		if bs[i].DistanceKm <= bs[i-1].DistanceKm {
			t.Fatal("backends must be ordered by distance")
		}
	}
	for _, b := range bs {
		if b.VCPUs != 8 || b.MemGB != 16 {
			t.Fatalf("backend %s spec %d vCPU/%d GB, paper used 8/16", b.Name, b.VCPUs, b.MemGB)
		}
	}
}

func TestRTTTableShape(t *testing.T) {
	r := rng.New(1)
	rows := RTTTable(r, 4)
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 3 access × 4 backends", len(rows))
	}
	for _, a := range []netmodel.Access{netmodel.WiFi, netmodel.LTE, netmodel.FiveG} {
		var prev float64
		for _, b := range Backends() {
			m, ok := MeanRTT(rows, a, b.Name)
			if !ok {
				t.Fatalf("missing cell %v/%s", a, b.Name)
			}
			if m <= prev {
				t.Fatalf("%v: RTT to %s (%.1f) not above previous (%.1f)", a, b.Name, m, prev)
			}
			prev = m
		}
	}
	// Paper Table 5: WiFi edge ≈ 11.4 ms, LTE edge ≈ 22.2 ms.
	if m, _ := MeanRTT(rows, netmodel.WiFi, "Edge"); m < 7 || m > 17 {
		t.Fatalf("WiFi edge RTT = %.1f, want ~11.4", m)
	}
	if m, _ := MeanRTT(rows, netmodel.LTE, "Edge"); m < 16 || m > 45 {
		t.Fatalf("LTE edge RTT = %.1f, want ~22-34", m)
	}
	// LTE is slower than WiFi for each backend.
	for _, b := range Backends() {
		w, _ := MeanRTT(rows, netmodel.WiFi, b.Name)
		l, _ := MeanRTT(rows, netmodel.LTE, b.Name)
		if l <= w {
			t.Fatalf("%s: LTE RTT %.1f not above WiFi %.1f", b.Name, l, w)
		}
	}
}

func TestRTTTableDefaultLocations(t *testing.T) {
	rows := RTTTable(rng.New(2), 0)
	if len(rows) != 12 {
		t.Fatal("default locations should still produce a full table")
	}
}

func TestMeanRTTMissing(t *testing.T) {
	if _, ok := MeanRTT(nil, netmodel.WiFi, "nope"); ok {
		t.Fatal("MeanRTT on empty rows should report missing")
	}
}
