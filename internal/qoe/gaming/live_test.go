package gaming

import (
	"math"
	"testing"

	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

func livePath(t *testing.T, backend qoe.Backend) *netmodel.Path {
	t.Helper()
	return netmodel.BuildPath(rng.New(99), netmodel.WiFi, backend.Class, backend.DistanceKm)
}

func TestLiveServerRejectsBadConfig(t *testing.T) {
	if _, err := NewLiveServer(LiveConfig{TimeScale: 1}); err == nil {
		t.Fatal("missing path accepted")
	}
	p := livePath(t, qoe.Backends()[0])
	if _, err := NewLiveServer(LiveConfig{Path: p, TimeScale: 0}); err == nil {
		t.Fatal("zero time scale accepted")
	}
}

func TestLiveMeasurementAgreesWithModel(t *testing.T) {
	backend := qoe.Backends()[0] // nearest edge
	p := livePath(t, backend)
	srv, err := NewLiveServer(LiveConfig{Path: p, TimeScale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dev, _ := DeviceByName("SamsungNote10+")
	res, err := MeasureLive(srv.Addr(), dev, 12, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 12 {
		t.Fatalf("interactions = %d", len(res))
	}
	socketMedian := stats.Median(Delays(res))

	model := Summarize(Simulate(rng.New(3), Config{Access: netmodel.WiFi, Backend: backend}, 50))
	// At 0.05 time scale every 1 ms of emulated sleep costs 50 µs of wall
	// time, so scheduler noise inflates the unscaled measurement; accept a
	// generous band around the model (which itself targets ~91 ms).
	if math.Abs(socketMedian-model.MedianMs) > 0.8*model.MedianMs {
		t.Fatalf("socket median %.0f ms vs model %.0f ms disagree", socketMedian, model.MedianMs)
	}
	if socketMedian < 40 {
		t.Fatalf("socket median %.0f ms implausibly low", socketMedian)
	}
}

func TestLiveFartherBackendSlower(t *testing.T) {
	near := qoe.Backends()[0]
	far := qoe.Backends()[3]
	measure := func(b qoe.Backend, seed uint64) float64 {
		srv, err := NewLiveServer(LiveConfig{Path: livePath(t, b), TimeScale: 0.05, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		dev, _ := DeviceByName("SamsungNote10+")
		res, err := MeasureLive(srv.Addr(), dev, 10, 0.05, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Median(Delays(res))
	}
	n := measure(near, 10)
	f := measure(far, 20)
	if f <= n {
		t.Fatalf("far backend (%.0f ms) not slower than near (%.0f ms)", f, n)
	}
}

func TestMeasureLiveValidation(t *testing.T) {
	if _, err := MeasureLive("127.0.0.1:1", Device{}, 1, 0, 1); err == nil {
		t.Fatal("zero timescale accepted")
	}
	if _, err := MeasureLive("bad:::addr", Device{}, 1, 1, 1); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestLiveServerCloseTwice(t *testing.T) {
	srv, err := NewLiveServer(LiveConfig{Path: livePath(t, qoe.Backends()[0]), TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err == nil {
		t.Fatal("second close should error")
	}
}
