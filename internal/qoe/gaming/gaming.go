// Package gaming simulates the paper's cloud-gaming QoE experiment (§3.3.1):
// a GamingAnywhere-style pipeline where the backend VM receives player
// actions, runs the game logic, renders, encodes the frame, and streams it
// back to the user equipment for decode and display. The measured metric is
// the response delay — the interval between a touch event and the in-game
// action appearing on screen — reproduced per network condition, device and
// game (Figure 6) with a server-side breakdown matching the paper's
// analysis (the ~70 ms server stage, not the network, is the bottleneck on
// nearby edge backends).
package gaming

import (
	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

// Game profiles the server-side logic+render cost of one of the paper's
// three desktop games.
type Game struct {
	Name string
	// LogicRenderMs is the mean CPU time to advance the game state and
	// render one response frame on the backend.
	LogicRenderMs float64
	// JitterMs is the standard deviation of that cost.
	JitterMs float64
}

// Games returns the three titles of the experiment. Pingus carries the most
// complex game logic and shows slightly higher delay and jitter (Fig 6c).
func Games() []Game {
	return []Game{
		{Name: "BattleTanks", LogicRenderMs: 56, JitterMs: 5},
		{Name: "Pingus", LogicRenderMs: 66, JitterMs: 9},
		{Name: "Flare", LogicRenderMs: 58, JitterMs: 6},
	}
}

// GameByName returns the named game profile; ok is false when unknown.
func GameByName(name string) (Game, bool) {
	for _, g := range Games() {
		if g.Name == name {
			return g, true
		}
	}
	return Game{}, false
}

// Device profiles a user equipment: hardware-accelerated decode latency and
// input-path latency. All devices refresh at 60 Hz.
type Device struct {
	Name     string
	DecodeMs float64
	InputMs  float64
}

// Devices returns the experiment's UEs. Decode is hardware-accelerated and
// fast on all of them (<10 ms at the default 800×600), which is why device
// choice barely moves the response delay (Fig 6b).
func Devices() []Device {
	return []Device{
		{Name: "SamsungNote10+", DecodeMs: 4, InputMs: 3},
		{Name: "RedmiNote8", DecodeMs: 6.5, InputMs: 4},
		{Name: "Nexus6", DecodeMs: 9, InputMs: 5},
		{Name: "MacBookPro", DecodeMs: 3, InputMs: 2},
	}
}

// DeviceByName returns the named device profile; ok is false when unknown.
func DeviceByName(name string) (Device, bool) {
	for _, d := range Devices() {
		if d.Name == name {
			return d, true
		}
	}
	return Device{}, false
}

// Config describes one experiment cell of Figure 6.
type Config struct {
	Game    Game
	Device  Device
	Access  netmodel.Access
	Backend qoe.Backend
	// ServerCores is the VM's vCPU count. GamingAnywhere's game loop is
	// effectively single-threaded, so cores beyond the first do not reduce
	// the server stage — the paper observed all but one core near-idle.
	ServerCores int
	// GPURendering offloads rendering to a GPU, saving 10–20 ms (the
	// paper's laptop micro-experiment).
	GPURendering bool
	// FrameKB is the encoded response-frame size; the 800×600 default is
	// ~25 KB.
	FrameKB float64
}

// fill applies the paper's default setting: Flare on a Samsung Note 10+
// over WiFi with an 8-core backend.
func (c *Config) fill() {
	if c.Game.Name == "" {
		c.Game, _ = GameByName("Flare")
	}
	if c.Device.Name == "" {
		c.Device, _ = DeviceByName("SamsungNote10+")
	}
	if c.Backend.Name == "" {
		c.Backend = qoe.Backends()[0]
	}
	if c.ServerCores == 0 {
		c.ServerCores = 8
	}
	if c.FrameKB == 0 {
		c.FrameKB = 25
	}
}

// Sample is one measured interaction with its stage breakdown (ms).
type Sample struct {
	Input    float64 // UE input capture and injection
	Uplink   float64 // player action to the backend
	Server   float64 // game logic + rendering
	Encode   float64 // frame encoding on the backend
	Downlink float64 // frame propagation + transmission to the UE
	Decode   float64 // hardware decode on the UE
	Display  float64 // wait for the next 60 Hz refresh
}

// Total returns the end-to-end response delay of the sample.
func (s Sample) Total() float64 {
	return s.Input + s.Uplink + s.Server + s.Encode + s.Downlink + s.Decode + s.Display
}

const (
	encodeMs       = 8.0
	encodeJitterMs = 1.2
	gpuSavingMs    = 15.0
	refreshMs      = 1000.0 / 60
)

// Simulate runs n interactions (the paper collected 50 per cell) and
// returns their stage breakdowns.
func Simulate(r *rng.Source, cfg Config, n int) []Sample {
	cfg.fill()
	path := netmodel.BuildPath(r, cfg.Access, cfg.Backend.Class, cfg.Backend.DistanceKm)
	prof := netmodel.ProfileFor(cfg.Access)
	out := make([]Sample, n)
	for i := range out {
		rtt := path.SampleRTT(r)
		server := r.NormalPos(cfg.Game.LogicRenderMs, cfg.Game.JitterMs)
		if cfg.GPURendering {
			server -= gpuSavingMs
			if server < 5 {
				server = 5
			}
		}
		// The game loop is single-threaded: ServerCores does not speed it
		// up (it only caps at least one core being available).
		txMs := cfg.FrameKB * 8 / prof.DownMbpsMedian // frame serialisation
		out[i] = Sample{
			Input:    r.NormalPos(cfg.Device.InputMs, 0.8),
			Uplink:   rtt / 2,
			Server:   server,
			Encode:   r.NormalPos(encodeMs, encodeJitterMs),
			Downlink: rtt/2 + txMs,
			Decode:   r.NormalPos(cfg.Device.DecodeMs, 0.6),
			Display:  r.Uniform(0, refreshMs),
		}
	}
	return out
}

// Summary aggregates samples into the statistics Figure 6 plots.
type Summary struct {
	MedianMs float64
	MeanMs   float64
	P95Ms    float64
	// Mean per-stage breakdown.
	Breakdown Sample
}

// Summarize reduces a sample set.
func Summarize(samples []Sample) Summary {
	totals := make([]float64, len(samples))
	var b Sample
	for i, s := range samples {
		totals[i] = s.Total()
		b.Input += s.Input
		b.Uplink += s.Uplink
		b.Server += s.Server
		b.Encode += s.Encode
		b.Downlink += s.Downlink
		b.Decode += s.Decode
		b.Display += s.Display
	}
	if n := float64(len(samples)); n > 0 {
		b.Input /= n
		b.Uplink /= n
		b.Server /= n
		b.Encode /= n
		b.Downlink /= n
		b.Decode /= n
		b.Display /= n
	}
	sum := stats.SummarizeInPlace(totals)
	return Summary{
		MedianMs:  sum.Median(),
		MeanMs:    sum.Mean(),
		P95Ms:     sum.Percentile(95),
		Breakdown: b,
	}
}
