package gaming

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
)

// This file is the real-socket counterpart of the pipeline model: a
// GamingAnywhere-lite server that accepts input events over TCP, emulates
// the uplink propagation, game logic, rendering and encoding stages with
// wall-clock sleeps, and streams the encoded frame back; and a client that
// measures the end-to-end response delay the way the paper did (input event
// timestamp → frame fully displayed). Integration tests verify the socket
// measurement agrees with the statistical pipeline.

// LiveConfig configures a live gaming server.
type LiveConfig struct {
	Game   Game
	Access netmodel.Access
	// Path supplies the emulated network (uplink propagation is slept
	// server-side; downlink propagation is slept before the frame write).
	Path *netmodel.Path
	// FrameBytes is the encoded response-frame size (default 25 KB).
	FrameBytes int
	// TimeScale scales all emulated stage durations (1.0 = real time;
	// tests use ~0.1 to stay fast). Must be positive.
	TimeScale float64
	// Seed drives the server's stage-duration sampling.
	Seed uint64
}

func (c *LiveConfig) fill() error {
	if c.Game.Name == "" {
		c.Game, _ = GameByName("Flare")
	}
	if c.Path == nil {
		return errors.New("gaming: LiveConfig needs a Path")
	}
	if c.FrameBytes == 0 {
		c.FrameBytes = 25 * 1024
	}
	if c.TimeScale <= 0 {
		return fmt.Errorf("gaming: TimeScale %v must be positive", c.TimeScale)
	}
	return nil
}

// LiveServer is a running gaming backend.
type LiveServer struct {
	ln  net.Listener
	cfg LiveConfig

	mu     sync.Mutex
	r      *rng.Source
	closed bool
	wg     sync.WaitGroup
}

// NewLiveServer starts the backend on a loopback ephemeral port.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &LiveServer{ln: ln, cfg: cfg, r: rng.New(cfg.Seed)}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the dialable address.
func (s *LiveServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *LiveServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("gaming: server already closed")
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *LiveServer) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func(c net.Conn) {
			defer s.wg.Done()
			defer c.Close()
			s.session(c)
		}(conn)
	}
}

// sample draws the per-interaction stage durations under the mutex (one
// rng serves all sessions).
func (s *LiveServer) sample() (rtt, server, encode float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rtt = s.cfg.Path.SampleRTT(s.r)
	server = s.r.NormalPos(s.cfg.Game.LogicRenderMs, s.cfg.Game.JitterMs)
	encode = s.r.NormalPos(encodeMs, encodeJitterMs)
	return
}

func (s *LiveServer) session(c net.Conn) {
	frame := make([]byte, s.cfg.FrameBytes)
	event := make([]byte, 8)
	for {
		if _, err := io.ReadFull(c, event); err != nil {
			return // client hung up
		}
		rtt, server, encode := s.sample()
		scale := s.cfg.TimeScale
		// Uplink propagation + game logic + render + encode, then downlink
		// propagation; serialisation happens on the real socket.
		sleepMs((rtt/2 + server + encode + rtt/2) * scale)
		binary.BigEndian.PutUint64(frame[:8], binary.BigEndian.Uint64(event))
		if _, err := c.Write(frame); err != nil {
			return
		}
	}
}

func sleepMs(ms float64) {
	if ms <= 0 {
		return
	}
	time.Sleep(time.Duration(ms * float64(time.Millisecond)))
}

// LiveResult is one measured interaction.
type LiveResult struct {
	ResponseDelayMs float64
}

// MeasureLive plays n interactions against a live server from the given
// device, returning per-interaction response delays in *unscaled*
// milliseconds (wall measurements are divided by timeScale, and the
// client-side input/decode/display stages are added at model scale, since
// they happen on the UE rather than over the socket).
func MeasureLive(addr string, device Device, n int, timeScale float64, seed uint64) ([]LiveResult, error) {
	if timeScale <= 0 {
		return nil, fmt.Errorf("gaming: timeScale %v must be positive", timeScale)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gaming: dial %s: %w", addr, err)
	}
	defer conn.Close()

	r := rng.New(seed)
	event := make([]byte, 8)
	buf := make([]byte, 64*1024)
	out := make([]LiveResult, 0, n)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(event, uint64(i))
		start := time.Now()
		if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return out, err
		}
		if _, err := conn.Write(event); err != nil {
			return out, fmt.Errorf("gaming: send event %d: %w", i, err)
		}
		// Read exactly one frame (25 KB by default).
		remaining := 25 * 1024
		for remaining > 0 {
			k := remaining
			if k > len(buf) {
				k = len(buf)
			}
			m, err := conn.Read(buf[:k])
			if err != nil {
				return out, fmt.Errorf("gaming: read frame %d: %w", i, err)
			}
			remaining -= m
		}
		wallMs := float64(time.Since(start)) / float64(time.Millisecond) / timeScale
		ueMs := r.NormalPos(device.InputMs, 0.8) +
			r.NormalPos(device.DecodeMs, 0.6) +
			r.Uniform(0, refreshMs)
		out = append(out, LiveResult{ResponseDelayMs: wallMs + ueMs})
	}
	return out, nil
}

// Delays extracts the response delays from results.
func Delays(rs []LiveResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.ResponseDelayMs
	}
	return out
}
