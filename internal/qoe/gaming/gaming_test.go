package gaming

import (
	"math"
	"testing"

	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/rng"
)

func run(seed uint64, cfg Config) Summary {
	return Summarize(Simulate(rng.New(seed), cfg, 50))
}

func TestDefaultEdgeUnder100ms(t *testing.T) {
	// Paper: nearby backends + WiFi ⇒ <100 ms response delay (≈91 ms edge).
	s := run(1, Config{Access: netmodel.WiFi})
	if s.MedianMs < 75 || s.MedianMs > 110 {
		t.Fatalf("edge WiFi median = %.0f ms, want ~91", s.MedianMs)
	}
}

func TestFartherCloudsSlower(t *testing.T) {
	// Paper Fig 6a: Cloud-3 ≈ 145 ms; distance lengthens delay by up to 60 ms.
	backends := qoe.Backends()
	var meds []float64
	for i, b := range backends {
		s := run(uint64(10+i), Config{Access: netmodel.WiFi, Backend: b})
		meds = append(meds, s.MedianMs)
	}
	for i := 1; i < len(meds); i++ {
		if meds[i] <= meds[i-1] {
			t.Fatalf("medians not increasing with distance: %v", meds)
		}
	}
	if meds[3] < 115 || meds[3] > 175 {
		t.Fatalf("Cloud-3 median = %.0f ms, want ~145", meds[3])
	}
	if gap := meds[3] - meds[0]; gap < 25 || gap > 80 {
		t.Fatalf("edge→Cloud-3 gap = %.0f ms, paper reports up to ~60", gap)
	}
}

func TestServerStageDominatesOnEdge(t *testing.T) {
	// Paper: on the nearest edge the ~70 ms server stage, not the network,
	// is the bottleneck.
	s := run(2, Config{Access: netmodel.WiFi})
	b := s.Breakdown
	if b.Server < b.Uplink+b.Downlink {
		t.Fatalf("server %.0f ms should dominate network %.0f ms on edge",
			b.Server, b.Uplink+b.Downlink)
	}
	if b.Server < 45 || b.Server > 80 {
		t.Fatalf("server stage = %.0f ms, want ~60-70", b.Server)
	}
	if b.Decode > 10 {
		t.Fatalf("decode = %.1f ms, paper reports <10 ms", b.Decode)
	}
}

func TestDeviceDifferencesSmall(t *testing.T) {
	// Paper Fig 6b: Note 10+ is slightly better but differences are small
	// because HW decode is fast everywhere.
	var meds []float64
	for i, d := range Devices() {
		s := run(uint64(20+i), Config{Access: netmodel.WiFi, Device: d})
		meds = append(meds, s.MedianMs)
	}
	for i := 1; i < len(meds); i++ {
		if math.Abs(meds[i]-meds[0]) > 15 {
			t.Fatalf("device deltas too large: %v", meds)
		}
	}
}

func TestPingusSlowestGame(t *testing.T) {
	// Paper Fig 6c: Pingus has slightly higher delay and jitter.
	games := Games()
	var pingus, tanks Summary
	for i, g := range games {
		s := run(uint64(30+i), Config{Access: netmodel.WiFi, Game: g})
		switch g.Name {
		case "Pingus":
			pingus = s
		case "BattleTanks":
			tanks = s
		}
	}
	if pingus.MedianMs <= tanks.MedianMs {
		t.Fatalf("Pingus (%.0f) should be slower than BattleTanks (%.0f)",
			pingus.MedianMs, tanks.MedianMs)
	}
	if pingus.P95Ms-pingus.MedianMs <= tanks.P95Ms-tanks.MedianMs {
		t.Fatal("Pingus should show more jitter")
	}
}

func TestGPURenderingSaves(t *testing.T) {
	// Paper: GPU rendering cuts ~10-20 ms.
	base := run(3, Config{Access: netmodel.WiFi})
	gpu := run(3, Config{Access: netmodel.WiFi, GPURendering: true})
	saved := base.MedianMs - gpu.MedianMs
	if saved < 8 || saved > 25 {
		t.Fatalf("GPU saving = %.0f ms, want ~15", saved)
	}
}

func TestMoreCoresDoNotHelp(t *testing.T) {
	// Paper: the game loop is single-threaded; extra vCPUs sit idle.
	few := run(4, Config{Access: netmodel.WiFi, ServerCores: 2})
	many := run(4, Config{Access: netmodel.WiFi, ServerCores: 16})
	if math.Abs(few.MedianMs-many.MedianMs) > 6 {
		t.Fatalf("core count changed delay: 2 cores %.0f vs 16 cores %.0f",
			few.MedianMs, many.MedianMs)
	}
}

func TestLTEWorseThanWiFi(t *testing.T) {
	wifi := run(5, Config{Access: netmodel.WiFi})
	lte := run(5, Config{Access: netmodel.LTE})
	if lte.MedianMs <= wifi.MedianMs {
		t.Fatalf("LTE (%.0f) should be slower than WiFi (%.0f)", lte.MedianMs, wifi.MedianMs)
	}
}

func TestSampleTotalIsSumOfStages(t *testing.T) {
	s := Sample{Input: 1, Uplink: 2, Server: 3, Encode: 4, Downlink: 5, Decode: 6, Display: 7}
	if s.Total() != 28 {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestLookupHelpers(t *testing.T) {
	if _, ok := GameByName("Flare"); !ok {
		t.Fatal("Flare missing")
	}
	if _, ok := GameByName("Doom"); ok {
		t.Fatal("unknown game found")
	}
	if _, ok := DeviceByName("Nexus6"); !ok {
		t.Fatal("Nexus6 missing")
	}
	if _, ok := DeviceByName("iPhone"); ok {
		t.Fatal("unknown device found")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.MedianMs != 0 || s.MeanMs != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(rng.New(9), Config{Access: netmodel.WiFi}, 10)
	b := Simulate(rng.New(9), Config{Access: netmodel.WiFi}, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}
