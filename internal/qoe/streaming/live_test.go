package streaming

import (
	"testing"
	"time"

	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

func relayPath(t *testing.T, backend qoe.Backend) *netmodel.Path {
	t.Helper()
	return netmodel.BuildPath(rng.New(77), netmodel.WiFi, backend.Class, backend.DistanceKm)
}

// runRelay pushes n chunks through a relay and returns the per-chunk
// push→pull latencies in unscaled milliseconds.
func runRelay(t *testing.T, cfg RelayConfig, n int) []float64 {
	t.Helper()
	rl, err := NewRelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	type pullRes struct {
		arrivals map[uint64]time.Time
		err      error
	}
	ch := make(chan pullRes, 1)
	go func() {
		arr, err := PullChunks(rl.Addr(), n, 30*time.Second)
		ch <- pullRes{arr, err}
	}()
	// Let the puller register before pushing.
	time.Sleep(50 * time.Millisecond)

	sent, err := PushChunks(rl.Addr(), n, 8*1024, cfg.TimeScale)
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	var lats []float64
	for seq, at := range res.arrivals {
		if int(seq) >= len(sent) {
			t.Fatalf("unknown sequence %d", seq)
		}
		lats = append(lats, float64(at.Sub(sent[seq]))/float64(time.Millisecond)/cfg.TimeScale)
	}
	if len(lats) != n {
		t.Fatalf("received %d of %d chunks", len(lats), n)
	}
	return lats
}

func TestRelayValidation(t *testing.T) {
	if _, err := NewRelay(RelayConfig{TimeScale: 1}); err == nil {
		t.Fatal("missing path accepted")
	}
	if _, err := NewRelay(RelayConfig{Path: relayPath(t, qoe.Backends()[0]), TimeScale: 0}); err == nil {
		t.Fatal("zero timescale accepted")
	}
}

func TestRelayLatencyMatchesNetworkStages(t *testing.T) {
	cfg := RelayConfig{Path: relayPath(t, qoe.Backends()[0]), TimeScale: 0.05, Seed: 1}
	lats := runRelay(t, cfg, 8)
	med := stats.Median(lats)
	// Expected: RTT (≈10 ms, both halves) + relay (≈10 ms) ≈ 20 ms, plus
	// socket/scheduler overhead inflated by the 0.05 scale divisor.
	if med < 10 || med > 120 {
		t.Fatalf("relay median latency = %.0f ms, want ~20-60", med)
	}
}

func TestRelayTranscodeAddsDelay(t *testing.T) {
	base := runRelay(t, RelayConfig{
		Path: relayPath(t, qoe.Backends()[0]), TimeScale: 0.05, Seed: 2,
	}, 6)
	trans := runRelay(t, RelayConfig{
		Path: relayPath(t, qoe.Backends()[0]), TimeScale: 0.05, Seed: 2, Transcode: true,
	}, 6)
	diff := stats.Median(trans) - stats.Median(base)
	// The transcode stage is ~380 ms, but chunks arrive every 100 ms and
	// queue behind the transcoder — the paper makes the same observation
	// ("this overhead includes both the transcoding time and server waiting
	// time for a video segment"), so the added delay exceeds the raw stage.
	if diff < 250 || diff > 2500 {
		t.Fatalf("transcode added %.0f ms, want ≥380 including queueing", diff)
	}
}

func TestRelayFartherBackendSlower(t *testing.T) {
	near := runRelay(t, RelayConfig{
		Path: relayPath(t, qoe.Backends()[0]), TimeScale: 0.05, Seed: 3,
	}, 6)
	far := runRelay(t, RelayConfig{
		Path: relayPath(t, qoe.Backends()[3]), TimeScale: 0.05, Seed: 3,
	}, 6)
	if stats.Median(far) <= stats.Median(near) {
		t.Fatalf("far relay (%.0f) not slower than near (%.0f)",
			stats.Median(far), stats.Median(near))
	}
}

func TestRelayCloseTwice(t *testing.T) {
	rl, err := NewRelay(RelayConfig{Path: relayPath(t, qoe.Backends()[0]), TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rl.Close(); err == nil {
		t.Fatal("second close should error")
	}
}
