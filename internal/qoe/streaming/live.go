package streaming

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
)

// This file is the real-socket counterpart of the streaming pipeline: an
// RTMP-lite relay server that accepts chunk pushes from a sender connection
// and forwards them to a puller connection, emulating propagation and
// (optional) transcoding with wall-clock sleeps. The integration tests
// measure the chunk's push-to-pull latency the way the paper measured its
// wall-clock streaming delay.

// RelayConfig configures a live relay.
type RelayConfig struct {
	// Path supplies the emulated network between UEs and the relay (both
	// directions traverse it, as sender and receiver are in the same city).
	Path *netmodel.Path
	// Transcode adds the server-side re-encoding stage.
	Transcode bool
	// TimeScale scales emulated stage durations (tests use ~0.05).
	TimeScale float64
	// Seed drives stage sampling.
	Seed uint64
}

func (c *RelayConfig) fill() error {
	if c.Path == nil {
		return errors.New("streaming: RelayConfig needs a Path")
	}
	if c.TimeScale <= 0 {
		return fmt.Errorf("streaming: TimeScale %v must be positive", c.TimeScale)
	}
	return nil
}

// Relay is a running RTMP-lite relay: the first connection that sends mode
// 'P' (push) feeds chunks; connections sending 'L' (pull) receive them.
type Relay struct {
	ln  net.Listener
	cfg RelayConfig

	mu      sync.Mutex
	r       *rng.Source
	closed  bool
	pullers []net.Conn
	wg      sync.WaitGroup
}

// Push/pull protocol modes.
const (
	ModePush byte = 'P'
	ModePull byte = 'L'
)

// NewRelay starts a relay on a loopback ephemeral port.
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rl := &Relay{ln: ln, cfg: cfg, r: rng.New(cfg.Seed)}
	rl.wg.Add(1)
	go rl.serve()
	return rl, nil
}

// Addr returns the dialable address.
func (rl *Relay) Addr() string { return rl.ln.Addr().String() }

// Close stops the relay.
func (rl *Relay) Close() error {
	rl.mu.Lock()
	if rl.closed {
		rl.mu.Unlock()
		return errors.New("streaming: relay already closed")
	}
	rl.closed = true
	pullers := rl.pullers
	rl.pullers = nil
	rl.mu.Unlock()
	for _, p := range pullers {
		p.Close()
	}
	err := rl.ln.Close()
	rl.wg.Wait()
	return err
}

func (rl *Relay) serve() {
	defer rl.wg.Done()
	for {
		conn, err := rl.ln.Accept()
		if err != nil {
			return
		}
		rl.wg.Add(1)
		go func(c net.Conn) {
			defer rl.wg.Done()
			rl.handle(c)
		}(conn)
	}
}

func (rl *Relay) handle(c net.Conn) {
	mode := make([]byte, 1)
	if _, err := io.ReadFull(c, mode); err != nil {
		c.Close()
		return
	}
	switch mode[0] {
	case ModePull:
		rl.mu.Lock()
		rl.pullers = append(rl.pullers, c)
		rl.mu.Unlock()
		// The pull connection stays open; chunks arrive from the pusher.
	case ModePush:
		defer c.Close()
		rl.pump(c)
	default:
		c.Close()
	}
}

// pump reads length-prefixed chunks from the pusher and forwards them to
// every puller after the emulated relay stages.
func (rl *Relay) pump(c net.Conn) {
	header := make([]byte, 4)
	for {
		if _, err := io.ReadFull(c, header); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(header)
		if n > 16*1024*1024 {
			return // refuse absurd chunks
		}
		chunk := make([]byte, n)
		if _, err := io.ReadFull(c, chunk); err != nil {
			return
		}
		rl.mu.Lock()
		upHalf := rl.cfg.Path.SampleRTT(rl.r) / 2
		downHalf := rl.cfg.Path.SampleRTT(rl.r) / 2
		server := rl.r.NormalPos(relayMs, relayJitterMs)
		if rl.cfg.Transcode {
			server += rl.r.NormalPos(transcodeMs, transcodeJitter)
		}
		pullers := append([]net.Conn(nil), rl.pullers...)
		rl.mu.Unlock()

		sleepMs((upHalf + server + downHalf) * rl.cfg.TimeScale)
		for _, p := range pullers {
			_, _ = p.Write(header)
			_, _ = p.Write(chunk)
		}
	}
}

func sleepMs(ms float64) {
	if ms <= 0 {
		return
	}
	time.Sleep(time.Duration(ms * float64(time.Millisecond)))
}

// PushChunks connects as a sender and pushes n chunks of chunkBytes,
// spaced by the chunk duration scaled by timeScale, embedding a sequence
// number in each chunk. It returns the send timestamps indexed by sequence.
func PushChunks(addr string, n, chunkBytes int, timeScale float64) ([]time.Time, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("streaming: dial: %w", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{ModePush}); err != nil {
		return nil, err
	}
	header := make([]byte, 4)
	chunk := make([]byte, chunkBytes)
	sent := make([]time.Time, n)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(header, uint32(chunkBytes))
		binary.BigEndian.PutUint64(chunk[:8], uint64(i))
		sent[i] = time.Now()
		if _, err := conn.Write(header); err != nil {
			return sent[:i], err
		}
		if _, err := conn.Write(chunk); err != nil {
			return sent[:i], err
		}
		time.Sleep(time.Duration(chunkDurationSec * float64(time.Second) * timeScale))
	}
	// Give the relay a moment to flush the last chunk before closing.
	time.Sleep(50 * time.Millisecond)
	return sent, nil
}

// PullChunks connects as a receiver and reads n chunks, returning the
// arrival time per sequence number.
func PullChunks(addr string, n int, timeout time.Duration) (map[uint64]time.Time, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("streaming: dial: %w", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{ModePull}); err != nil {
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	header := make([]byte, 4)
	out := make(map[uint64]time.Time, n)
	for len(out) < n {
		if _, err := io.ReadFull(conn, header); err != nil {
			return out, fmt.Errorf("streaming: read header: %w", err)
		}
		size := binary.BigEndian.Uint32(header)
		chunk := make([]byte, size)
		if _, err := io.ReadFull(conn, chunk); err != nil {
			return out, fmt.Errorf("streaming: read chunk: %w", err)
		}
		seq := binary.BigEndian.Uint64(chunk[:8])
		out[seq] = time.Now()
	}
	return out, nil
}
