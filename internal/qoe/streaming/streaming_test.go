package streaming

import (
	"testing"

	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/rng"
)

func run(seed uint64, cfg Config) Summary {
	return Summarize(Simulate(rng.New(seed), cfg, 50))
}

func TestBaselineAround400ms(t *testing.T) {
	// Paper: without jitter buffer or transcoding the streaming delay stays
	// ~400 ms.
	s := run(1, Config{Access: netmodel.WiFi, Resolution: R1080p})
	if s.MedianMs < 330 || s.MedianMs > 480 {
		t.Fatalf("baseline delay = %.0f ms, want ~400", s.MedianMs)
	}
}

func TestNetworkIsNotTheBottleneck(t *testing.T) {
	// Paper: network ≈ 50 ms; capture + software stack dominate.
	s := run(2, Config{Access: netmodel.WiFi, Resolution: R1080p})
	b := s.Breakdown
	network := b.UplinkNet + b.DownNet
	if network > 90 {
		t.Fatalf("network stages = %.0f ms, paper reports ~50", network)
	}
	if b.Capture < 100 || b.Capture > 180 {
		t.Fatalf("capture = %.0f ms, paper reports ~140", b.Capture)
	}
	if b.Capture+b.Render <= network {
		t.Fatal("capture+render should dominate the network")
	}
}

func TestEdgeImprovementModest(t *testing.T) {
	// Paper: edge saves at most ~24% of streaming delay vs farthest cloud.
	edge := run(3, Config{Access: netmodel.FiveG, Resolution: R1080p})
	far := run(4, Config{Access: netmodel.FiveG, Resolution: R1080p, Backend: qoe.Backends()[3]})
	if far.MedianMs <= edge.MedianMs {
		t.Fatal("farther cloud should be slower")
	}
	saving := 1 - edge.MedianMs/far.MedianMs
	if saving < 0.03 || saving > 0.30 {
		t.Fatalf("edge saving = %.0f%%, paper reports up to 24%%", saving*100)
	}
}

func TestLowerResolutionFaster(t *testing.T) {
	// Paper: 1080p→720p saves ~67 ms (transmission + rendering).
	hi := run(5, Config{Access: netmodel.WiFi, Resolution: R1080p})
	lo := run(5, Config{Access: netmodel.WiFi, Resolution: R720p})
	saved := hi.MedianMs - lo.MedianMs
	if saved < 25 || saved > 110 {
		t.Fatalf("720p saving = %.0f ms, paper reports ~67", saved)
	}
}

func TestTranscodeDoublesDelay(t *testing.T) {
	// Paper: transcoding adds ~400 ms (2× total under WiFi).
	base := run(6, Config{Access: netmodel.WiFi, Resolution: R1080p})
	trans := run(6, Config{Access: netmodel.WiFi, Resolution: R1080p, Transcode: true})
	added := trans.MedianMs - base.MedianMs
	if added < 280 || added > 500 {
		t.Fatalf("transcode overhead = %.0f ms, paper reports ~400", added)
	}
}

func TestJitterBufferErasesEdgeAdvantage(t *testing.T) {
	// Paper: with a 2 MB jitter buffer delay reaches ~2 s and the
	// edge/cloud difference becomes trivial.
	cfgE := Config{Access: netmodel.WiFi, Resolution: R1080p, JitterBufferMB: 2}
	cfgC := cfgE
	cfgC.Backend = qoe.Backends()[3]
	edge := run(7, cfgE)
	cloud := run(8, cfgC)
	if edge.MedianMs < 1500 {
		t.Fatalf("buffered delay = %.0f ms, paper reports ~2 s", edge.MedianMs)
	}
	rel := (cloud.MedianMs - edge.MedianMs) / edge.MedianMs
	if rel > 0.08 {
		t.Fatalf("buffered edge/cloud gap = %.1f%%, should be trivial", rel*100)
	}
}

func TestFFplayFasterThanMPlayer(t *testing.T) {
	// Paper: FFplay cuts ~90 ms off the streaming delay.
	mp, _ := PlayerByName("MPlayer")
	ff, _ := PlayerByName("FFplay")
	a := run(9, Config{Access: netmodel.WiFi, Resolution: R1080p, Player: mp})
	b := run(9, Config{Access: netmodel.WiFi, Resolution: R1080p, Player: ff})
	saved := a.MedianMs - b.MedianMs
	if saved < 50 || saved > 130 {
		t.Fatalf("FFplay saving = %.0f ms, paper reports ~90", saved)
	}
}

func TestLANDelta(t *testing.T) {
	// Paper: moving the server onto the LAN saves only ~40 ms.
	d := LANDelta(rng.New(10), Config{Access: netmodel.WiFi, Resolution: R1080p}, 50)
	if d < 10 || d > 90 {
		t.Fatalf("LAN delta = %.0f ms, paper reports ~40", d)
	}
}

func TestResolutionHelpers(t *testing.T) {
	if R1080p.String() != "1080p" || R720p.String() != "720p" {
		t.Fatal("Resolution String broken")
	}
	if R1080p.BitrateMbps() <= R720p.BitrateMbps() {
		t.Fatal("1080p must have higher bitrate")
	}
	if _, ok := PlayerByName("VLC"); ok {
		t.Fatal("unknown player found")
	}
}

func TestSampleTotal(t *testing.T) {
	s := Sample{Capture: 1, Encode: 2, UplinkNet: 3, Server: 4, DownNet: 5, Buffer: 6, Decode: 7, Render: 8}
	if s.Total() != 36 {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.MeanMs != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(rng.New(11), Config{Access: netmodel.WiFi}, 5)
	b := Simulate(rng.New(11), Config{Access: netmodel.WiFi}, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}
