// Package streaming simulates the paper's live-streaming QoE experiment
// (§3.3.2): an RTMP pipeline where a sender UE captures and encodes video,
// pushes it to an edge/cloud relay (optionally transcoding), and a receiver
// UE pulls, decodes and renders the stream. The measured metric is the
// streaming delay — wall-clock event to on-screen display — reproduced per
// network, resolution, transcoding and jitter-buffer setting (Figure 7),
// with the breakdown showing the paper's conclusion: capture and the
// software stack, not the network, dominate.
package streaming

import (
	"edgescope/internal/netmodel"
	"edgescope/internal/qoe"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

// Resolution of the streamed video.
type Resolution int

// Supported resolutions.
const (
	R1080p Resolution = iota
	R720p
)

// String names the resolution.
func (r Resolution) String() string {
	if r == R1080p {
		return "1080p"
	}
	return "720p"
}

// BitrateMbps returns the encoded stream bitrate (the paper streams 1080p
// at ~5 Mbps).
func (r Resolution) BitrateMbps() float64 {
	if r == R1080p {
		return 5
	}
	return 2.5
}

// Player profiles the receiver-side pull/display software. The paper found
// switching MPlayer to FFplay cuts ~90 ms of player-internal buffering.
type Player struct {
	Name       string
	InternalMs float64
}

// Players returns the two receiver players compared in the paper.
func Players() []Player {
	return []Player{
		{Name: "MPlayer", InternalMs: 150},
		{Name: "FFplay", InternalMs: 60},
	}
}

// PlayerByName returns the named player profile; ok is false when unknown.
func PlayerByName(name string) (Player, bool) {
	for _, p := range Players() {
		if p.Name == name {
			return p, true
		}
	}
	return Player{}, false
}

// Config describes one experiment cell of Figure 7. Sender and receiver are
// in the same city (the paper's online-education scenario); both hops
// traverse the same access network to the backend.
type Config struct {
	Access     netmodel.Access
	Backend    qoe.Backend
	Resolution Resolution
	// Transcode re-encodes on the server (720p→1080p in the paper's
	// "WiFi-trans" condition), adding transcoding plus segment-wait time.
	Transcode bool
	// JitterBufferMB enables a receiver-side jitter buffer; the paper's
	// 2 MB buffer pushes the delay to ~2 s and erases the edge advantage.
	JitterBufferMB float64
	// Player is the receiver software; defaults to MPlayer.
	Player Player
}

func (c *Config) fill() {
	if c.Backend.Name == "" {
		c.Backend = qoe.Backends()[0]
	}
	if c.Player.Name == "" {
		c.Player, _ = PlayerByName("MPlayer")
	}
}

// Sample is one measured event with its stage breakdown (ms).
type Sample struct {
	Capture   float64 // camera ISP + system software stack on the sender
	Encode    float64 // sender-side encoding
	UplinkNet float64 // RTMP push: propagation + chunk transmission
	Server    float64 // relay (and transcode, when enabled)
	DownNet   float64 // pull: propagation + chunk transmission
	Buffer    float64 // receiver jitter buffer
	Decode    float64 // receiver decode
	Render    float64 // player-internal buffering + display
}

// Total returns the end-to-end streaming delay of the sample.
func (s Sample) Total() float64 {
	return s.Capture + s.Encode + s.UplinkNet + s.Server + s.DownNet + s.Buffer + s.Decode + s.Render
}

// Stage constants calibrated to the paper's breakdown: capture+render
// ≈140 ms, encode 25 ms / decode 10 ms, relay small, transcode ≈380 ms
// including segment wait, LAN delta ≈40 ms.
const (
	captureMs        = 140.0
	captureJitterMs  = 18.0
	encodeMs         = 25.0
	encodeJitterMs   = 3.0
	decodeMs         = 10.0
	decodeJitterMs   = 1.5
	relayMs          = 10.0
	relayJitterMs    = 2.0
	transcodeMs      = 380.0
	transcodeJitter  = 45.0
	chunkDurationSec = 0.1  // RTMP chunk ≈ 100 ms of video
	resolutionRender = 40.0 // extra render cost of 1080p over 720p
)

// Simulate runs n events (the paper collected 50 per cell over 20-second
// runs) and returns their stage breakdowns.
func Simulate(r *rng.Source, cfg Config, n int) []Sample {
	cfg.fill()
	up := netmodel.BuildPath(r, cfg.Access, cfg.Backend.Class, cfg.Backend.DistanceKm)
	down := netmodel.BuildPath(r, cfg.Access, cfg.Backend.Class, cfg.Backend.DistanceKm)
	prof := netmodel.ProfileFor(cfg.Access)
	bitrate := cfg.Resolution.BitrateMbps()
	chunkKb := bitrate * 1000 * chunkDurationSec // kilobits per chunk

	out := make([]Sample, n)
	for i := range out {
		upTx := chunkKb / prof.UpMbpsMedian // ms to serialise one chunk uplink
		downTx := chunkKb / prof.DownMbpsMedian
		server := r.NormalPos(relayMs, relayJitterMs)
		if cfg.Transcode {
			server += r.NormalPos(transcodeMs, transcodeJitter)
		}
		render := r.NormalPos(cfg.Player.InternalMs, 10)
		if cfg.Resolution == R1080p {
			render += resolutionRender
		}
		var buffer float64
		if cfg.JitterBufferMB > 0 {
			// Buffer delay = time to fill ~60% of the buffer at the stream
			// bitrate (players start draining before the buffer is full).
			buffer = cfg.JitterBufferMB * 8 * 0.6 / bitrate * 1000
		}
		out[i] = Sample{
			Capture:   r.NormalPos(captureMs, captureJitterMs),
			Encode:    r.NormalPos(encodeMs, encodeJitterMs),
			UplinkNet: up.SampleRTT(r)/2 + upTx,
			Server:    server,
			DownNet:   down.SampleRTT(r)/2 + downTx,
			Buffer:    buffer,
			Decode:    r.NormalPos(decodeMs, decodeJitterMs),
			Render:    render,
		}
	}
	return out
}

// Summary aggregates samples into the statistics Figure 7 plots.
type Summary struct {
	MedianMs  float64
	MeanMs    float64
	P95Ms     float64
	Breakdown Sample // mean per-stage breakdown
}

// Summarize reduces a sample set.
func Summarize(samples []Sample) Summary {
	totals := make([]float64, len(samples))
	var b Sample
	for i, s := range samples {
		totals[i] = s.Total()
		b.Capture += s.Capture
		b.Encode += s.Encode
		b.UplinkNet += s.UplinkNet
		b.Server += s.Server
		b.DownNet += s.DownNet
		b.Buffer += s.Buffer
		b.Decode += s.Decode
		b.Render += s.Render
	}
	if n := float64(len(samples)); n > 0 {
		b.Capture /= n
		b.Encode /= n
		b.UplinkNet /= n
		b.Server /= n
		b.DownNet /= n
		b.Buffer /= n
		b.Decode /= n
		b.Render /= n
	}
	sum := stats.SummarizeInPlace(totals)
	return Summary{
		MedianMs:  sum.Median(),
		MeanMs:    sum.Mean(),
		P95Ms:     sum.Percentile(95),
		Breakdown: b,
	}
}

// LANDelta estimates the delay saved by moving the backend onto the local
// network (the paper's laptop-on-LAN micro-experiment, ≈40 ms): the mean
// network stages of the given config minus a ~2 ms LAN round trip.
func LANDelta(r *rng.Source, cfg Config, n int) float64 {
	s := Summarize(Simulate(r, cfg, n))
	lanNet := 2.0
	return s.Breakdown.UplinkNet + s.Breakdown.DownNet - lanNet
}
