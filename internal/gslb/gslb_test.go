package gslb

import (
	"net/http"
	"strings"
	"testing"

	"edgescope/internal/placement"
)

func threeBackends(t *testing.T, b *Balancer) {
	t.Helper()
	for _, be := range []Backend{
		{ID: "gz-1", URL: "http://edge-gz-1.example/app", DelayMs: 10, CapacityRPS: 100},
		{ID: "gz-2", URL: "http://edge-gz-2.example/app", DelayMs: 13, CapacityRPS: 100},
		{ID: "sz-1", URL: "http://edge-sz-1.example/app", DelayMs: 15, CapacityRPS: 100},
	} {
		if err := b.Register(be); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	b := New(placement.NearestSite{}, 1)
	if err := b.Register(Backend{ID: "", URL: "x", CapacityRPS: 1}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := b.Register(Backend{ID: "a", URL: "x", CapacityRPS: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := b.Register(Backend{ID: "a", URL: "x", CapacityRPS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Backend{ID: "a", URL: "y", CapacityRPS: 1}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestPickEmpty(t *testing.T) {
	b := New(placement.NearestSite{}, 1)
	if _, err := b.Pick(); err == nil {
		t.Fatal("expected error with no backends")
	}
}

func TestNearestSitePinsHotReplica(t *testing.T) {
	b := New(placement.NearestSite{}, 2)
	threeBackends(t, b)
	for i := 0; i < 300; i++ {
		if _, err := b.Pick(); err != nil {
			t.Fatal(err)
		}
	}
	counts := b.PickCounts()
	if counts["gz-1"] != 300 {
		t.Fatalf("nearest-site should pin gz-1, got %v", counts)
	}
}

func TestLoadAwareSpreads(t *testing.T) {
	b := New(placement.LoadAware{DelaySlackMs: 6}, 3)
	threeBackends(t, b)
	for i := 0; i < 300; i++ {
		if _, err := b.Pick(); err != nil {
			t.Fatal(err)
		}
	}
	counts := b.PickCounts()
	// gz-1, gz-2 and sz-1 are within the 6 ms slack; load-aware should use
	// all three.
	for _, id := range []string{"gz-1", "gz-2", "sz-1"} {
		if counts[id] < 50 {
			t.Fatalf("load-aware left %s cold: %v", id, counts)
		}
	}
}

func TestReportLoadShiftsRouting(t *testing.T) {
	b := New(placement.LoadAware{DelaySlackMs: 6}, 4)
	threeBackends(t, b)
	if err := b.ReportLoad("gz-1", 0.95); err != nil {
		t.Fatal(err)
	}
	be, err := b.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if be.ID == "gz-1" {
		t.Fatal("hot replica still picked")
	}
	if err := b.ReportLoad("nope", 0.5); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestHTTPRedirectEndToEnd(t *testing.T) {
	b := New(placement.NearestSite{}, 5)
	threeBackends(t, b)
	srv, err := Serve(b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	url, id, err := Resolve(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if id != "gz-1" || !strings.Contains(url, "edge-gz-1") {
		t.Fatalf("resolved %s → %s, want gz-1", id, url)
	}

	// Load reports over HTTP shift subsequent routing under a load-aware
	// policy.
	b2 := New(placement.LoadAware{DelaySlackMs: 6}, 6)
	threeBackends(t, b2)
	srv2, err := Serve(b2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Post(srv2.Addr()+"/report?id=gz-1&load=0.99", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	_, id2, err := Resolve(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if id2 == "gz-1" {
		t.Fatal("routing ignored the load report")
	}
}

func TestHTTPErrors(t *testing.T) {
	b := New(placement.NearestSite{}, 7)
	srv, err := Serve(b)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// No backends: 503.
	resp, err := http.Get(srv.Addr() + "/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty route status = %d", resp.StatusCode)
	}
	// Bad load value: 400.
	resp, err = http.Post(srv.Addr()+"/report?id=x&load=notanumber", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad report status = %d", resp.StatusCode)
	}
	// Wrong methods: 405.
	resp, err = http.Post(srv.Addr()+"/route", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /route status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.Addr() + "/report?id=x&load=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /report status = %d", resp.StatusCode)
	}
}

func TestConcurrentPicks(t *testing.T) {
	b := New(placement.LoadAware{DelaySlackMs: 10}, 8)
	threeBackends(t, b)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				if _, err := b.Pick(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, c := range b.PickCounts() {
		total += c
	}
	if total != 800 {
		t.Fatalf("picks = %d, want 800", total)
	}
}
