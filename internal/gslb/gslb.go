// Package gslb implements the customer-side end-user traffic scheduling the
// paper describes in §2 ("edge customers typically route user requests to
// their nearby sites based on DNS or HTTP 302") as a real HTTP-redirect
// service: clients GET /route and receive a 302 Location pointing at the
// chosen replica; replicas POST load reports. The routing policy plugs in
// from internal/placement, so the same NearestSite / LoadAware schedulers
// studied offline in §4.3 can be exercised over real sockets.
package gslb

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"

	"edgescope/internal/placement"
	"edgescope/internal/rng"
)

// Backend is one schedulable replica of the customer's app.
type Backend struct {
	// ID names the replica in load reports.
	ID string
	// URL is the Location clients are redirected to.
	URL string
	// DelayMs is the modelled network delay from the user population.
	DelayMs float64
	// CapacityRPS is the replica's service capacity.
	CapacityRPS float64
}

// Balancer routes requests to backends under a placement.Scheduler policy.
// It is safe for concurrent use.
type Balancer struct {
	policy placement.Scheduler

	mu       sync.Mutex
	r        *rng.Source
	backends []Backend
	loads    []float64
	picks    []int
}

// New creates a balancer with the given policy and RNG seed.
func New(policy placement.Scheduler, seed uint64) *Balancer {
	return &Balancer{policy: policy, r: rng.New(seed)}
}

// Register adds a backend. It returns an error on duplicate IDs.
func (b *Balancer) Register(be Backend) error {
	if be.ID == "" || be.URL == "" {
		return errors.New("gslb: backend needs ID and URL")
	}
	if be.CapacityRPS <= 0 {
		return fmt.Errorf("gslb: backend %s needs positive capacity", be.ID)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, cur := range b.backends {
		if cur.ID == be.ID {
			return fmt.Errorf("gslb: duplicate backend %s", be.ID)
		}
	}
	b.backends = append(b.backends, be)
	b.loads = append(b.loads, 0)
	b.picks = append(b.picks, 0)
	return nil
}

// ReportLoad records a replica's current utilisation in [0,1+).
func (b *Balancer) ReportLoad(id string, load float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, be := range b.backends {
		if be.ID == id {
			b.loads[i] = load
			return nil
		}
	}
	return fmt.Errorf("gslb: unknown backend %s", id)
}

// Pick chooses a backend under the policy, bumping its load slightly to
// reflect the admitted request.
func (b *Balancer) Pick() (Backend, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.backends) == 0 {
		return Backend{}, errors.New("gslb: no backends registered")
	}
	reps := make([]placement.Replica, len(b.backends))
	for i, be := range b.backends {
		reps[i] = placement.Replica{
			CapacityRPS: be.CapacityRPS,
			DelayMs:     be.DelayMs,
			Load:        b.loads[i],
		}
	}
	idx := b.policy.Pick(b.r, reps)
	if idx < 0 || idx >= len(b.backends) {
		idx = 0
	}
	b.loads[idx] += 1 / b.backends[idx].CapacityRPS
	b.picks[idx]++
	return b.backends[idx], nil
}

// PickCounts returns how many requests each backend received, keyed by ID.
func (b *Balancer) PickCounts() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.backends))
	for i, be := range b.backends {
		out[be.ID] = b.picks[i]
	}
	return out
}

// Handler serves the routing protocol:
//
//	GET  /route                → 302 Location: <backend URL>
//	POST /report?id=X&load=0.7 → 204
func (b *Balancer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		be, err := b.Pick()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Backend-ID", be.ID)
		http.Redirect(w, r, be.URL, http.StatusFound)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id := r.URL.Query().Get("id")
		load, err := strconv.ParseFloat(r.URL.Query().Get("load"), 64)
		if err != nil {
			http.Error(w, "bad load", http.StatusBadRequest)
			return
		}
		if err := b.ReportLoad(id, load); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// Server wraps a Balancer in a loopback HTTP listener.
type Server struct {
	Balancer *Balancer
	ln       net.Listener
	srv      *http.Server
}

// Serve starts the balancer on a loopback ephemeral port.
func Serve(b *Balancer) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{Balancer: b, ln: ln, srv: &http.Server{Handler: b.Handler()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's base URL.
func (s *Server) Addr() string { return "http://" + s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Resolve asks a running balancer for a backend, without following the
// redirect, returning the backend URL and ID.
func Resolve(baseURL string) (url, id string, err error) {
	client := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	resp, err := client.Get(baseURL + "/route")
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		return "", "", fmt.Errorf("gslb: unexpected status %d", resp.StatusCode)
	}
	return resp.Header.Get("Location"), resp.Header.Get("X-Backend-ID"), nil
}
