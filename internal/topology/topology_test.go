package topology

import (
	"strings"
	"testing"

	"edgescope/internal/geo"
	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
	"edgescope/internal/stats"
)

func buildNEP(seed uint64) *Platform {
	return BuildNEP(rng.New(seed), NEPOptions{})
}

func TestBuildNEPScale(t *testing.T) {
	p := buildNEP(1)
	// Paper: >500 sites, two orders of magnitude more than clouds.
	if n := len(p.Sites); n < 450 || n > 620 {
		t.Fatalf("NEP site count = %d, want ~520", n)
	}
	if p.Class != netmodel.EdgeSite {
		t.Fatal("NEP must be an edge platform")
	}
}

func TestNEPSiteProperties(t *testing.T) {
	p := buildNEP(2)
	ids := map[string]bool{}
	for _, s := range p.Sites {
		if ids[s.ID] {
			t.Fatalf("duplicate site ID %s", s.ID)
		}
		ids[s.ID] = true
		if !strings.HasPrefix(s.ID, "nep-") {
			t.Fatalf("bad site ID %s", s.ID)
		}
		// Paper: a NEP site hosts tens to hundreds of servers.
		if s.Servers < 20 || s.Servers > 300 {
			t.Fatalf("site %s has %d servers, want tens-to-hundreds", s.ID, s.Servers)
		}
		if s.GatewayGbps <= 0 {
			t.Fatalf("site %s has no gateway bandwidth", s.ID)
		}
		// Sites are scattered but must stay near their metro (≤ ~4×100 km).
		if d := geo.Haversine(s.Loc, s.City.Loc); d > 440 {
			t.Fatalf("site %s is %0.f km from its metro", s.ID, d)
		}
	}
}

func TestNEPCoversAllCities(t *testing.T) {
	p := buildNEP(3)
	byCity := p.SitesByCity()
	if len(byCity) != len(geo.Cities()) {
		t.Fatalf("NEP covers %d metros, want %d", len(byCity), len(geo.Cities()))
	}
	// Big metros get more sites than small ones.
	if len(byCity["Chongqing"]) <= len(byCity["Lhasa"]) {
		t.Fatalf("site allocation not population-weighted: Chongqing=%d Lhasa=%d",
			len(byCity["Chongqing"]), len(byCity["Lhasa"]))
	}
}

func TestBuildNEPDeterministic(t *testing.T) {
	a, b := buildNEP(7), buildNEP(7)
	if len(a.Sites) != len(b.Sites) {
		t.Fatal("site counts differ across identical seeds")
	}
	for i := range a.Sites {
		if a.Sites[i].ID != b.Sites[i].ID || a.Sites[i].Loc != b.Sites[i].Loc {
			t.Fatalf("site %d differs across identical seeds", i)
		}
	}
}

func TestBuildAliCloud(t *testing.T) {
	p := BuildAliCloud()
	if len(p.Sites) != 8 {
		t.Fatalf("AliCloud regions = %d, want 8", len(p.Sites))
	}
	if p.Class != netmodel.CloudSite {
		t.Fatal("AliCloud must be a cloud platform")
	}
	for _, s := range p.Sites {
		if s.Servers < 10000 {
			t.Fatalf("cloud region %s too small", s.ID)
		}
	}
}

func TestHuaweiCloud(t *testing.T) {
	if got := len(HuaweiCloud().Sites); got != 5 {
		t.Fatalf("Huawei regions = %d, want 5", got)
	}
}

func TestInterSiteRTTSlope(t *testing.T) {
	// Figure 4: RTT ≈ 100 ms at 3000 km; grows with distance.
	r := rng.New(4)
	a := &Site{Loc: geo.MustCity("Harbin").Loc}
	b := &Site{Loc: geo.MustCity("Guangzhou").Loc} // ~2800 km
	var sum float64
	const n = 200
	for i := 0; i < n; i++ {
		sum += InterSiteRTTMs(r, a, b)
	}
	mean := sum / n
	if mean < 70 || mean > 120 {
		t.Fatalf("Harbin-Guangzhou inter-site RTT = %.0f ms, want ~90", mean)
	}
}

func TestSampleInterSiteRTTsCorrelation(t *testing.T) {
	p := buildNEP(5)
	pairs := SampleInterSiteRTTs(rng.New(5), p, 3000)
	if len(pairs) != 3000 {
		t.Fatalf("pair count = %d", len(pairs))
	}
	var ds, rs []float64
	for _, pr := range pairs {
		ds = append(ds, pr.DistanceKm)
		rs = append(rs, pr.RTTMs)
	}
	if c := stats.Pearson(ds, rs); c < 0.9 {
		t.Fatalf("inter-site distance/RTT correlation = %.2f, want strong", c)
	}
}

func TestSampleInterSiteRTTsFullCross(t *testing.T) {
	p := &Platform{Sites: []*Site{
		{Loc: geo.MustCity("Beijing").Loc},
		{Loc: geo.MustCity("Tianjin").Loc},
		{Loc: geo.MustCity("Shanghai").Loc},
	}}
	pairs := SampleInterSiteRTTs(rng.New(1), p, 0)
	if len(pairs) != 3 {
		t.Fatalf("full cross pairs = %d, want 3", len(pairs))
	}
}

func TestNearbySiteCounts(t *testing.T) {
	p := buildNEP(6)
	counts := NearbySiteCounts(p, []float64{5, 10, 20})
	// Paper: on average 1/3/11 sites within 5/10/20 ms. The exact values
	// depend on deployment details; assert the ordering and rough scale.
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("nearby counts not increasing: %v", counts)
	}
	// Our 43-metro database clusters sites more than NEP's ~300-city
	// footprint, so the absolute counts run higher than the paper's 1/3/11;
	// the property that matters is "several sites within a few ms".
	if counts[0] < 0.2 || counts[0] > 18 {
		t.Fatalf("within-5ms count = %.1f, want small positive", counts[0])
	}
	if counts[2] < 3 || counts[2] > 150 {
		t.Fatalf("within-20ms count = %.1f, want ~tens", counts[2])
	}
}

func TestNearbySiteCountsEmpty(t *testing.T) {
	counts := NearbySiteCounts(&Platform{}, []float64{5})
	if counts[0] != 0 {
		t.Fatal("empty platform should have zero nearby sites")
	}
}

func TestTable1Deployments(t *testing.T) {
	nep := buildNEP(8)
	rows := Table1Deployments(nep)
	if len(rows) != 12 {
		t.Fatalf("Table 1 rows = %d, want 12", len(rows))
	}
	var nepRow, aliChina Deployment
	for _, row := range rows {
		if row.Platform == "NEP" {
			nepRow = row
		}
		if row.Platform == "Alibaba Cloud" && row.Coverage == "China" {
			aliChina = row
		}
	}
	// Paper: NEP density >135 per 10^6 mi² vs 3.23 for AliCloud China —
	// about two orders of magnitude.
	if nepRow.Density() < 100 {
		t.Fatalf("NEP density = %.1f, want >100", nepRow.Density())
	}
	if ratio := nepRow.Density() / aliChina.Density(); ratio < 30 {
		t.Fatalf("NEP/AliCloud density ratio = %.0f, want ≫30", ratio)
	}
	if d := (Deployment{AreaMi2: 0}); d.Density() != 0 {
		t.Fatal("zero-area density should be 0")
	}
}

func TestNearestSitesOrdering(t *testing.T) {
	p := BuildAliCloud()
	idx := p.NearestSites(geo.MustCity("Beijing").Loc)
	if len(idx) != len(p.Sites) {
		t.Fatal("NearestSites must rank all sites")
	}
	if p.Sites[idx[0]].City.Name != "Beijing" {
		t.Fatalf("nearest AliCloud region to Beijing = %s", p.Sites[idx[0]].City.Name)
	}
	// Distances must be non-decreasing.
	var last float64 = -1
	here := geo.MustCity("Beijing").Loc
	for _, i := range idx {
		d := geo.Haversine(here, p.Sites[i].Loc)
		if d < last {
			t.Fatal("NearestSites not sorted")
		}
		last = d
	}
}

func TestTotalServers(t *testing.T) {
	p := &Platform{Sites: []*Site{{Servers: 3}, {Servers: 4}}}
	if p.TotalServers() != 7 {
		t.Fatal("TotalServers wrong")
	}
}

func TestCityNamesSorted(t *testing.T) {
	p := buildNEP(9)
	names := p.CityNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("CityNames not sorted")
		}
	}
}
