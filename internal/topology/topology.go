// Package topology instantiates the deployment geometry of the platforms the
// paper compares: NEP, the densely deployed public edge platform (>500 sites
// across China, most built atop CDN PoPs in county-level IDCs), and a sparse
// AliCloud-like cloud platform with a handful of large regions. It also
// models inter-site RTTs (Figure 4) and the deployment-density comparison of
// Table 1.
package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"edgescope/internal/geo"
	"edgescope/internal/netmodel"
	"edgescope/internal/rng"
)

// Site is one datacenter of a platform. Edge sites are micro-DCs with tens
// of servers; cloud regions host effectively unbounded capacity.
type Site struct {
	ID       string
	Platform string
	Class    netmodel.SiteClass
	// City is the metro the site belongs to; Loc is the actual location,
	// which for edge sites is scattered into the surrounding county-level
	// area (NEP sites live in third-party IDCs, not city centres).
	City geo.City
	Loc  geo.Point
	// Servers is the number of physical servers; ServerCPU/ServerMemGB the
	// per-server capacity.
	Servers     int
	ServerCPU   int
	ServerMemGB int
	// GatewayGbps is the site's Internet egress capacity.
	GatewayGbps float64
}

// Position implements geo.Located.
func (s *Site) Position() geo.Point { return s.Loc }

// Platform is a set of sites operated by one provider. Sites are immutable
// once the platform is built.
type Platform struct {
	Name  string
	Class netmodel.SiteClass
	Sites []*Site

	locsOnce sync.Once
	locs     []geo.Point
}

// Locations returns the positions of all sites, aligned with Sites. The
// slice is built once and cached — the crowd campaign ranks sites per user,
// and rebuilding a platform-wide position slice for every user dominated
// that walk's allocations. Callers must not mutate the result.
func (p *Platform) Locations() []geo.Point {
	p.locsOnce.Do(func() {
		out := make([]geo.Point, len(p.Sites))
		for i, s := range p.Sites {
			out[i] = s.Loc
		}
		p.locs = out
	})
	return p.locs
}

// TotalServers sums servers across sites.
func (p *Platform) TotalServers() int {
	var t int
	for _, s := range p.Sites {
		t += s.Servers
	}
	return t
}

// NEPOptions configures BuildNEP.
type NEPOptions struct {
	// TargetSites is the approximate total number of edge sites; the paper
	// reports >500. Defaults to 520.
	TargetSites int
	// ScatterKm is the mean distance from the metro centre at which sites
	// are placed (exponentially distributed, capped at 4× the mean).
	// Defaults to 60 km.
	ScatterKm float64
}

func (o *NEPOptions) fill() {
	if o.TargetSites == 0 {
		o.TargetSites = 520
	}
	if o.ScatterKm == 0 {
		o.ScatterKm = 100
	}
}

// BuildNEP creates the edge platform: sites distributed over the city
// database, with the per-metro count growing sub-linearly with population
// (flattened with an exponent of 0.6, because NEP expands breadth-first into
// county-level IDCs rather than concentrating in tier-1 metros). Each site
// hosts tens to a couple of hundred servers, the physical-infrastructure
// constraint the paper describes.
func BuildNEP(r *rng.Source, opts NEPOptions) *Platform {
	opts.fill()
	cities := geo.Cities()
	weights := make([]float64, len(cities))
	var totalW float64
	for i, c := range cities {
		weights[i] = math.Pow(c.PopulationM, 0.6)
		totalW += weights[i]
	}
	p := &Platform{Name: "NEP", Class: netmodel.EdgeSite}
	for i, c := range cities {
		n := int(math.Round(weights[i] / totalW * float64(opts.TargetSites)))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			loc := scatter(r, c.Loc, opts.ScatterKm)
			servers := int(r.BoundedPareto(24, 1.6, 300))
			p.Sites = append(p.Sites, &Site{
				ID:          fmt.Sprintf("nep-%s-%02d", c.Name, k+1),
				Platform:    "NEP",
				Class:       netmodel.EdgeSite,
				City:        c,
				Loc:         loc,
				Servers:     servers,
				ServerCPU:   64,
				ServerMemGB: 256,
				GatewayGbps: 10 + r.Float64()*30,
			})
		}
	}
	return p
}

// scatter displaces a point by an exponentially distributed distance (mean
// meanKm, capped at 4× mean) in a uniform random bearing.
func scatter(r *rng.Source, c geo.Point, meanKm float64) geo.Point {
	d := r.Exponential(meanKm)
	if d > 4*meanKm {
		d = 4 * meanKm
	}
	theta := r.Uniform(0, 2*math.Pi)
	dlat := d * math.Cos(theta) / 111.0
	dlon := d * math.Sin(theta) / (111.0 * math.Cos(c.Lat*math.Pi/180))
	return geo.Point{Lat: c.Lat + dlat, Lon: c.Lon + dlon}
}

// aliCloudRegionCities mirrors AliCloud's Chinese region footprint.
var aliCloudRegionCities = []string{
	"Beijing", "Shanghai", "Hangzhou", "Shenzhen",
	"Qingdao", "Chengdu", "Hohhot", "Guangzhou",
}

// BuildAliCloud creates the cloud baseline: 8 large regions at major metros.
func BuildAliCloud() *Platform {
	p := &Platform{Name: "AliCloud", Class: netmodel.CloudSite}
	for i, name := range aliCloudRegionCities {
		c := geo.MustCity(name)
		p.Sites = append(p.Sites, &Site{
			ID:          fmt.Sprintf("alicloud-%s-%d", c.Name, i+1),
			Platform:    "AliCloud",
			Class:       netmodel.CloudSite,
			City:        c,
			Loc:         c.Loc,
			Servers:     50000,
			ServerCPU:   96,
			ServerMemGB: 384,
			GatewayGbps: 4000,
		})
	}
	return p
}

// HuaweiCloud creates the second virtual cloud baseline used by the billing
// comparison (vCloud-2): 5 Chinese regions.
func HuaweiCloud() *Platform {
	p := &Platform{Name: "HuaweiCloud", Class: netmodel.CloudSite}
	for i, name := range []string{"Beijing", "Shanghai", "Guangzhou", "Guiyang", "Hohhot"} {
		c := geo.MustCity(name)
		p.Sites = append(p.Sites, &Site{
			ID:          fmt.Sprintf("huawei-%s-%d", c.Name, i+1),
			Platform:    "HuaweiCloud",
			Class:       netmodel.CloudSite,
			City:        c,
			Loc:         c.Loc,
			Servers:     40000,
			ServerCPU:   96,
			ServerMemGB: 384,
			GatewayGbps: 4000,
		})
	}
	return p
}

// InterSiteRTTMs models the RTT between two sites over the provider/carrier
// backbone: a small switching base plus ~0.031 ms/km (Figure 4 reaches
// ~100 ms at 3000 km), with log-normal path noise.
func InterSiteRTTMs(r *rng.Source, a, b *Site) float64 {
	d := geo.Haversine(a.Loc, b.Loc)
	base := 1.5 + 0.031*d
	// Same single draw and multiply order as the shared helper, so this
	// rewiring is bit-neutral: base * exp(Normal(0, sigma)).
	return r.LogNormalMeanMedian(base, 0.12)
}

// SitePairRTT is one measured site pair for Figure 4.
type SitePairRTT struct {
	A, B       int // indices into the platform's Sites
	DistanceKm float64
	RTTMs      float64
}

// SampleInterSiteRTTs measures every site pair once (or a random subset of
// maxPairs pairs when the full cross-product is larger).
func SampleInterSiteRTTs(r *rng.Source, p *Platform, maxPairs int) []SitePairRTT {
	n := len(p.Sites)
	total := n * (n - 1) / 2
	var out []SitePairRTT
	if maxPairs <= 0 || total <= maxPairs {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, pairRTT(r, p, i, j))
			}
		}
		return out
	}
	for k := 0; k < maxPairs; k++ {
		i := r.IntN(n)
		j := r.IntN(n)
		if i == j {
			k--
			continue
		}
		out = append(out, pairRTT(r, p, i, j))
	}
	return out
}

func pairRTT(r *rng.Source, p *Platform, i, j int) SitePairRTT {
	return SitePairRTT{
		A: i, B: j,
		DistanceKm: geo.Haversine(p.Sites[i].Loc, p.Sites[j].Loc),
		RTTMs:      InterSiteRTTMs(r, p.Sites[i], p.Sites[j]),
	}
}

// NearbySiteCounts returns, for each RTT threshold, the mean number of other
// sites reachable within that RTT, averaged across all sites (the paper
// reports 1/3/11 sites within 5/10/20 ms). To keep this O(n²) computation
// deterministic it uses the noise-free RTT model.
func NearbySiteCounts(p *Platform, thresholdsMs []float64) []float64 {
	n := len(p.Sites)
	counts := make([]float64, len(thresholdsMs))
	if n < 2 {
		return counts
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			rtt := 1.5 + 0.031*geo.Haversine(p.Sites[i].Loc, p.Sites[j].Loc)
			for t, th := range thresholdsMs {
				if rtt <= th {
					counts[t]++
				}
			}
		}
	}
	for t := range counts {
		counts[t] /= float64(n)
	}
	return counts
}

// Deployment is one row of the Table 1 comparison.
type Deployment struct {
	Platform string
	Regions  int
	Coverage string // "Global", "U.S.", "China"
	// AreaMi2 is the covered area in millions of square miles.
	AreaMi2 float64
}

// Density returns regions per million square miles.
func (d Deployment) Density() float64 {
	if d.AreaMi2 == 0 {
		return 0
	}
	return float64(d.Regions) / d.AreaMi2
}

// Areas in millions of square miles.
const (
	areaGlobal = 196.9 // Earth surface
	areaUS     = 3.80
	areaChina  = 3.71
)

// Table1Deployments returns the deployment comparison of Table 1 with NEP's
// row filled from the built platform.
func Table1Deployments(nep *Platform) []Deployment {
	return []Deployment{
		{"AWS EC2", 24, "Global", areaGlobal},
		{"AWS EC2", 6, "U.S.", areaUS},
		{"MS Azure", 33, "Global", areaGlobal},
		{"MS Azure", 8, "U.S.", areaUS},
		{"Google Cloud", 24, "Global", areaGlobal},
		{"Google Cloud", 8, "U.S.", areaUS},
		{"Alibaba Cloud", 23, "Global", areaGlobal},
		{"Alibaba Cloud", 12, "China", areaChina},
		{"Azure Edge Zones", 5, "U.S.", areaUS},
		{"Huawei Cloud", 5, "China", areaChina},
		{"AWS Wavelength + Local Zones", 14, "U.S.", areaUS},
		{"NEP", len(nep.Sites), "China", areaChina},
	}
}

// NearestSites returns the indices of the platform's sites ordered by
// ascending great-circle distance from p.
func (pl *Platform) NearestSites(p geo.Point) []int {
	return geo.RankByDistance(p, pl.Locations())
}

// SitesByCity groups site indices by metro name.
func (pl *Platform) SitesByCity() map[string][]int {
	out := make(map[string][]int)
	for i, s := range pl.Sites {
		out[s.City.Name] = append(out[s.City.Name], i)
	}
	return out
}

// CityNames returns the sorted distinct metro names with at least one site.
func (pl *Platform) CityNames() []string {
	m := pl.SitesByCity()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
