// Package report renders edgescope's experiment outputs: ASCII tables that
// mirror the paper's tables, simple textual figures (CDFs and scatter
// summaries) for its plots, and CSV export for external plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"edgescope/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be useful.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == float64(int64(v)) && av < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes the table as CSV (naive quoting: cells with commas are
// quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named data series of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a titled collection of series (a paper plot).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddCDF appends a series holding the empirical CDF of values.
func (f *Figure) AddCDF(name string, values []float64) {
	pts := stats.CDF(values)
	s := Series{Name: name, X: make([]float64, len(pts)), Y: make([]float64, len(pts))}
	for i, p := range pts {
		s.X[i] = p.X
		s.Y[i] = p.P
	}
	f.Series = append(f.Series, s)
}

// AddSeries appends a raw series.
func (f *Figure) AddSeries(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// Render writes a textual summary of the figure: per series, the quartiles
// of Y and the X range — enough to eyeball the reproduced shape in a
// terminal.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	b.WriteString("== " + f.Title + " ==\n")
	if f.XLabel != "" || f.YLabel != "" {
		fmt.Fprintf(&b, "   (x: %s, y: %s)\n", f.XLabel, f.YLabel)
	}
	for _, s := range f.Series {
		if len(s.X) == 0 {
			fmt.Fprintf(&b, "  %-28s (empty)\n", s.Name)
			continue
		}
		sx := stats.Summarize(s.X)
		qs := sx.Percentiles(25, 50, 75)
		fmt.Fprintf(&b, "  %-28s n=%-5d x: p25=%s p50=%s p75=%s [%s, %s]  y: p50=%s\n",
			s.Name, len(s.X),
			FormatFloat(qs[0]), FormatFloat(qs[1]), FormatFloat(qs[2]),
			FormatFloat(sx.Min()), FormatFloat(sx.Max()),
			FormatFloat(stats.Percentile(s.Y, 50)))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the figure in long form: series,x,y.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Artifact is anything renderable to a terminal and exportable as CSV.
type Artifact interface {
	Render(io.Writer) error
	WriteCSV(io.Writer) error
}

// Interface checks.
var (
	_ Artifact = (*Table)(nil)
	_ Artifact = (*Figure)(nil)
)
