package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("x", 1.5)
	tbl.AddRow("longer", 42)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== T ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "longer") || !strings.Contains(out, "1.50") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("has,comma", `has"quote`)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"has,comma"`) {
		t.Fatalf("comma not quoted: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"has""quote"`) {
		t.Fatalf("quote not escaped: %s", buf.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1234:    "1234",
		123.46:  "123",
		3.14159: "3.14",
		0.1234:  "0.1234",
		-2.5:    "-2.50",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFigureCDFAndRender(t *testing.T) {
	f := &Figure{Title: "F", XLabel: "x", YLabel: "p"}
	f.AddCDF("s1", []float64{3, 1, 2})
	f.AddSeries("s2", []float64{1, 2}, []float64{10, 20})
	f.AddCDF("empty", nil)
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== F ==", "s1", "s2", "(empty)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// CDF is sorted with final probability 1.
	s1 := f.Series[0]
	if s1.X[0] != 1 || s1.X[2] != 3 || s1.Y[2] != 1 {
		t.Fatalf("CDF series wrong: %+v", s1)
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{Title: "F"}
	f.AddSeries("a", []float64{1}, []float64{2})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\na,1,2\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
