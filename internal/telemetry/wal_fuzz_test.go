package telemetry

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALSegmentReplay: readWALSegment over arbitrary bytes must never
// panic, and its verdict must be consistent — a clean read (no error, no
// torn tail) must re-read identically, and a torn tail must truncate to a
// clean segment with the same records.
func FuzzWALSegmentReplay(f *testing.F) {
	var seed []byte
	e := ev(time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli(), MetricRTT, "Beijing", "WiFi", 12.5)
	seed, _ = AppendJSONL(nil, e)
	f.Add(seed)                                       // one valid record
	f.Add(append(append([]byte{}, seed...), seed...)) // two records
	f.Add(append(append([]byte{}, seed...), 'x'))     // torn tail
	f.Add(seed[:len(seed)/2])                         // torn only record
	f.Add([]byte("{\"v\":99}\n"))                     // corrupt line
	f.Add([]byte("\n\n\n"))                           // blanks
	f.Add([]byte{})                                   // empty file
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', 'a', 0x01})  // binary garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walPrefix+"0"+walSuffix)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		records, validEnd, torn, err := readWALSegment(path, func(Envelope) {}, func(walCtl) {})
		if err != nil {
			return // corruption detected loudly — acceptable, no panic
		}
		if validEnd < 0 || validEnd > int64(len(data)) {
			t.Fatalf("validEnd %d outside file of %d bytes", validEnd, len(data))
		}
		if torn {
			// Truncating the torn tail must yield a clean segment with the
			// same durable records — the recovery path's exact action.
			if err := os.Truncate(path, validEnd); err != nil {
				t.Fatal(err)
			}
		}
		again, _, torn2, err2 := readWALSegment(path, func(Envelope) {}, func(walCtl) {})
		if err2 != nil || torn2 || again != records {
			t.Fatalf("re-read after handling diverged: records %d->%d torn=%v err=%v",
				records, again, torn2, err2)
		}
	})
}

// FuzzSnapshotDecode: decodeSnapshot over arbitrary bytes must never panic
// and must either reject the input or return a self-consistent state.
func FuzzSnapshotDecode(f *testing.F) {
	// A real snapshot as the structured seed.
	dir := f.TempDir()
	cfg := Config{Shards: 1, QueueLen: 16, Block: true, WAL: WALConfig{Dir: dir, SyncEvery: 1}}
	ing := NewIngestor(cfg)
	e := ev(time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli(), MetricRTT, "Beijing", "WiFi", 12.5)
	e.Seq = 1
	ing.Offer(e)
	ing.Flush()
	ing.Close()
	valid, err := os.ReadFile(filepath.Join(shardDir(dir, 0), snapshotFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add(append([]byte{}, snapMagic[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if st.shards <= 0 || st.windowMs <= 0 {
			t.Fatalf("accepted snapshot with invalid header: %d shards %dms", st.shards, st.windowMs)
		}
		for wk, sk := range st.windows {
			// Accepted sketches must be usable, not booby-trapped.
			sk.Quantile(0.5)
			if sk.Count() < 0 {
				t.Fatalf("window %v: negative count", wk)
			}
		}
	})
}
