package telemetry

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// handoffEvents returns a deterministic spread of envelopes across several
// keys and windows; seq numbers make them dedup-tracked like cluster traffic.
func handoffEvents() []Envelope {
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	var out []Envelope
	regions := []string{"Beijing", "Shanghai", "Chengdu"}
	nets := []string{"WiFi", "4G"}
	seq := map[string]uint64{}
	for i := 0; i < 240; i++ {
		r, n := regions[i%len(regions)], nets[(i/3)%len(nets)]
		user := i % 7
		sk := r + "/" + n + "/" + strconv.Itoa(user)
		seq[sk]++
		out = append(out, Envelope{
			V: 1, TS: base + int64(i)*500, Metric: MetricRTT,
			Region: r, Net: n, Value: 10 + float64(i%37),
			User: user, Seq: seq[sk],
		})
	}
	return out
}

func offerAllFlush(t *testing.T, ing *Ingestor, events []Envelope) {
	t.Helper()
	if n := ing.OfferAll(events); n != len(events) {
		t.Fatalf("offered %d of %d", n, len(events))
	}
	ing.Flush()
}

func handoffFingerprint(t *testing.T, ing *Ingestor) string {
	t.Helper()
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	if err := enc.Encode(ing.Keys()); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []QuerySpec{
		{Metric: MetricRTT},
		{Metric: MetricRTT, Region: "Beijing"},
		{Metric: MetricRTT, Net: "4G", Quantiles: []float64{0.1, 0.5, 0.9, 0.99}, CDFAt: []float64{15, 30}},
	} {
		res, err := ing.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// partitionCounts returns rollup counts per partition for a given split.
func partitionRollups(ing *Ingestor, of int) map[int]int {
	counts := map[int]int{}
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk := range s.windows {
			counts[wk.Key.ShardOf(of)]++
		}
		s.mu.Unlock()
	}
	return counts
}

// TestPartitionHandoffByteIdentical pins the core handoff property: moving
// one partition from a source to an (empty-for-that-partition) destination
// via PartitionPages → AbsorbPages → DropPartition leaves the pair's
// combined state answering byte-identically to a single node that ingested
// everything — including after both sides crash and recover from their WALs.
func TestPartitionHandoffByteIdentical(t *testing.T) {
	const parts = 8
	events := handoffEvents()

	single := NewIngestor(Config{Shards: 3, Block: true, Window: time.Minute})
	offerAllFlush(t, single, events)
	defer single.Close()
	want := handoffFingerprint(t, single)

	srcDir, dstDir := t.TempDir(), t.TempDir()
	cfg := func(dir string) Config {
		return Config{Shards: 3, Block: true, Window: time.Minute, WAL: WALConfig{Dir: dir, SyncEvery: 4}}
	}
	src := NewIngestor(cfg(srcDir))
	dst := NewIngestor(cfg(dstDir))

	// Split ingest by partition: partitions 0..3 to src, 4..7 to dst.
	for _, e := range events {
		p := e.Key().ShardOf(parts)
		tgt := src
		if p >= 4 {
			tgt = dst
		}
		if !tgt.Offer(e) {
			t.Fatalf("offer refused")
		}
	}
	src.Flush()
	dst.Flush()

	merged := func() string {
		t.Helper()
		var sb strings.Builder
		pages := make(map[string][]SketchPage)
		for _, spec := range []QuerySpec{
			{Metric: MetricRTT},
			{Metric: MetricRTT, Region: "Beijing"},
			{Metric: MetricRTT, Net: "4G", Quantiles: []float64{0.1, 0.5, 0.9, 0.99}, CDFAt: []float64{15, 30}},
		} {
			for _, ing := range []*Ingestor{src, dst} {
				pg, err := ing.MatchSketches(spec)
				if err != nil {
					t.Fatal(err)
				}
				k, _ := json.Marshal(spec)
				pages[string(k)] = append(pages[string(k)], pg)
			}
		}
		// Keys across both nodes.
		acc := map[Key]float64{}
		for _, ing := range []*Ingestor{src, dst} {
			for _, kc := range ing.Keys() {
				acc[kc.Key] += kc.Count
			}
		}
		keys := single.Keys() // canonical order template
		out := make([]KeyCount, 0, len(keys))
		for _, kc := range keys {
			out = append(out, KeyCount{Key: kc.Key, Count: acc[kc.Key]})
		}
		enc := json.NewEncoder(&sb)
		if err := enc.Encode(out); err != nil {
			t.Fatal(err)
		}
		for _, spec := range []QuerySpec{
			{Metric: MetricRTT},
			{Metric: MetricRTT, Region: "Beijing"},
			{Metric: MetricRTT, Net: "4G", Quantiles: []float64{0.1, 0.5, 0.9, 0.99}, CDFAt: []float64{15, 30}},
		} {
			k, _ := json.Marshal(spec)
			res, err := MergeSketchPages(spec, pages[string(k)])
			if err != nil {
				t.Fatal(err)
			}
			if err := enc.Encode(res); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String()
	}

	if got := merged(); got != want {
		t.Fatalf("pre-handoff split cluster diverged from single node:\n got %s\nwant %s", got, want)
	}

	// Hand a populated src-side partition to dst.
	mover := -1
	for p, n := range partitionRollups(src, parts) {
		if p < 4 && n > 0 {
			mover = p
			break
		}
	}
	if mover < 0 {
		t.Fatal("no populated partition on src")
	}
	pages, err := src.PartitionPages(mover, parts)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := dst.AbsorbPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Rollups == 0 || ack.Count == 0 {
		t.Fatalf("absorb ack empty: %+v", ack)
	}
	if dropped, err := src.DropPartition(mover, parts); err != nil || dropped != ack.Rollups {
		t.Fatalf("dropped %d (err %v), want %d", dropped, err, ack.Rollups)
	}
	if counts := partitionRollups(src, parts); counts[mover] != 0 {
		t.Fatalf("source still holds %d rollups of partition %d", counts[mover], mover)
	}

	if got := merged(); got != want {
		t.Fatalf("post-handoff cluster diverged from single node:\n got %s\nwant %s", got, want)
	}

	// Crash both and recover: the absorb and the drop must both be durable.
	src.Crash()
	dst.Crash()
	var rst RecoveryStats
	src, rst, err = Open(cfg(srcDir))
	if err != nil {
		t.Fatal(err)
	}
	_ = rst
	dst, _, err = Open(cfg(dstDir))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	defer dst.Close()
	if counts := partitionRollups(src, parts); counts[mover] != 0 {
		t.Fatalf("recovered source resurrected %d rollups of partition %d", counts[mover], mover)
	}
	if got := merged(); got != want {
		t.Fatalf("post-recovery cluster diverged from single node:\n got %s\nwant %s", got, want)
	}
}

// TestAbsorbPagesValidatesBeforeMutating pins that a malformed transfer
// mutates nothing: mismatched window length, misaligned starts and corrupt
// sketch bytes are all rejected upfront.
func TestAbsorbPagesValidatesBeforeMutating(t *testing.T) {
	ing := NewIngestor(Config{Shards: 2, Block: true, Window: time.Minute})
	defer ing.Close()
	good := SketchPage{Metric: MetricRTT, Compression: ing.cfg.Compression, WindowMs: time.Minute.Milliseconds()}

	cases := []struct {
		name string
		page SketchPage
		want string
	}{
		{"no-metric", SketchPage{Compression: good.Compression, WindowMs: good.WindowMs}, "without metric"},
		{"window-mismatch", SketchPage{Metric: MetricRTT, Compression: good.Compression, WindowMs: 5}, "window"},
		{"compression-mismatch", SketchPage{Metric: MetricRTT, Compression: good.Compression * 2, WindowMs: good.WindowMs}, "compression"},
		{"unaligned-start", func() SketchPage {
			p := good
			p.Matches = []WindowSketch{{Start: 37, Region: "r", Net: "n", Sketch: nil}}
			return p
		}(), "not window-aligned"},
		{"corrupt-sketch", func() SketchPage {
			p := good
			p.Matches = []WindowSketch{{Start: 0, Region: "r", Net: "n", Sketch: []byte("nope")}}
			return p
		}(), "sketch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ing.AbsorbPages([]SketchPage{tc.page}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
			if n := ing.TotalStats().Rollups; n != 0 {
				t.Fatalf("rejected absorb left %d rollups behind", n)
			}
		})
	}
}

// TestDropPartitionRejectsBadRange covers the argument gate shared by
// PartitionPages and DropPartition.
func TestDropPartitionRejectsBadRange(t *testing.T) {
	ing := NewIngestor(Config{Shards: 1, Block: true})
	defer ing.Close()
	for _, bad := range [][2]int{{0, 0}, {-1, 4}, {4, 4}, {9, 4}} {
		if _, err := ing.DropPartition(bad[0], bad[1]); err == nil {
			t.Fatalf("DropPartition(%d,%d) accepted", bad[0], bad[1])
		}
		if _, err := ing.PartitionPages(bad[0], bad[1]); err == nil {
			t.Fatalf("PartitionPages(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

// TestCtlRecordsSurviveSnapshotCycle pins the recover(snapshot+WAL) ==
// recover(WAL-only) invariant with control records in the log: a snapshot
// taken after an absorb+drop must skip exactly the records it covers.
func TestCtlRecordsSurviveSnapshotCycle(t *testing.T) {
	const parts = 4
	events := handoffEvents()
	dir := t.TempDir()
	cfg := Config{Shards: 2, Block: true, Window: time.Minute, WAL: WALConfig{Dir: dir, SyncEvery: 4}}
	ing := NewIngestor(cfg)
	offerAllFlush(t, ing, events)

	// Self-absorb a partition exported from a twin, then drop another: both
	// kinds of control record land in the WAL.
	twin := NewIngestor(Config{Shards: 2, Block: true, Window: time.Minute})
	offerAllFlush(t, twin, events)
	pages, err := twin.PartitionPages(1, parts)
	if err != nil {
		t.Fatal(err)
	}
	twin.Close()
	if _, err := ing.AbsorbPages(pages); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.DropPartition(3, parts); err != nil {
		t.Fatal(err)
	}
	want := handoffFingerprint(t, ing)

	// Route A: snapshot + crash → recovery from snapshot skips ctl records.
	if err := ing.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ing.Crash()
	rec, rst, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Snapshots == 0 {
		t.Fatalf("recovery ignored the snapshot: %+v", rst)
	}
	if got := handoffFingerprint(t, rec); got != want {
		t.Fatalf("snapshot+WAL recovery diverged:\n got %s\nwant %s", got, want)
	}
	rec.Crash()

	// Route B: delete snapshots → full WAL replay must land identically.
	for i := 0; i < cfg.Shards; i++ {
		if err := os.Remove(filepath.Join(shardDir(dir, i), snapshotFile)); err != nil {
			t.Fatal(err)
		}
	}
	rec2, rst2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if rst2.Snapshots != 0 {
		t.Fatalf("expected WAL-only recovery, got %+v", rst2)
	}
	if got := handoffFingerprint(t, rec2); got != want {
		t.Fatalf("WAL-only recovery diverged:\n got %s\nwant %s", got, want)
	}
}

// TestCtlDecodeRejectsGarbage pins loud failure for durable control records
// that cannot be applied.
func TestCtlDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"ctl":"absorb"}`, // no metric
		`{"ctl":"absorb","metric":"m","sketch":"eHg="}`, // corrupt sketch
		`{"ctl":"drop","partition":4,"of":4}`,           // partition out of range
		`{"ctl":"drop","partition":0,"of":0}`,           // zero split
		`{"ctl":"nonsense"}`,                            // unknown kind
		`{"ctl":42}`,                                    // wrong type
	}
	for _, line := range cases {
		if _, err := decodeCtl([]byte(line)); !errors.Is(err, ErrInvalid) {
			t.Fatalf("decodeCtl(%s) = %v, want ErrInvalid", line, err)
		}
	}
}

// TestSetNodeInfoLive pins that a runtime identity swap is what /healthz
// reports afterwards.
func TestSetNodeInfoLive(t *testing.T) {
	ing := NewIngestor(Config{Shards: 1, Node: &NodeInfo{Role: "node", ID: "n0", Partitions: []int{0, 1}}})
	defer ing.Close()
	if got := ing.Health().Node; got == nil || got.ID != "n0" {
		t.Fatalf("initial node = %+v", got)
	}
	ing.SetNodeInfo(&NodeInfo{Role: "node", ID: "n0", Partitions: []int{0}})
	if got := ing.Health().Node; got == nil || len(got.Partitions) != 1 {
		t.Fatalf("updated node = %+v", got)
	}
}
