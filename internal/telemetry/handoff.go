package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"edgescope/internal/stats"
)

// Sketch-page handoff. A cluster rebalance moves whole partitions between
// nodes by shipping their rollups in exact binary sketch form — the same
// wire format /sketches serves — and folding them into the gaining node's
// state. Three primitives make that loss-free and crash-safe:
//
//   - PartitionPages exports every rollup of one partition (the stable
//     FNV-1a Key hash modulo the cluster's partition count) as SketchPages.
//   - AbsorbPages folds pages into this ingestor. Each absorbed rollup is
//     logged to the WAL first as a control record, so a crashed gaining
//     node recovers absorbed state exactly like enveloped state.
//   - DropPartition deletes one partition's rollups, WAL-logged the same
//     way, which is what makes a retried handoff idempotent: the
//     coordinator drops, then re-absorbs from a fresh source cut.
//
// Control records ride inside the ordinary per-window WAL segments, at
// their fold position, so per-segment replay order stays exactly fold
// order and the recover(snapshot+WAL) == recover(WAL-only) invariant is
// untouched. A rollup absorbed as a page insert is bit-identical to the
// source's sketch state, which is what keeps post-rebalance cluster
// answers byte-identical to a single node's.

// Control record kinds.
const (
	ctlAbsorb = "absorb"
	ctlDrop   = "drop"
)

// ctlPrefix distinguishes control records from envelope records inside a
// WAL segment. Control records are always encoded with "ctl" as the first
// field; envelope JSON starts with "v", so the prefix test is exact for
// records this package wrote.
var ctlPrefix = []byte(`{"ctl":`)

// walCtl is one WAL control record: an absorbed rollup (with its exact
// binary sketch state) or a partition drop. The window start is implied by
// the segment the record lives in.
type walCtl struct {
	Ctl    string `json:"ctl"`
	Metric string `json:"metric,omitempty"`
	Region string `json:"region,omitempty"`
	Net    string `json:"net,omitempty"`
	Sketch []byte `json:"sketch,omitempty"`
	// Partition/Of scope a drop: delete every rollup whose key hashes to
	// Partition under Of partitions.
	Partition int `json:"partition,omitempty"`
	Of        int `json:"of,omitempty"`

	// sk is the decoded Sketch payload, filled by decodeCtl for absorb
	// records so replay never re-parses and corruption fails loudly at read
	// time.
	sk *stats.Sketch
}

// decodeCtl parses and validates one control line. Any structural problem
// is an error — a durable control record that cannot be applied must fail
// recovery loudly, exactly like a corrupt envelope.
func decodeCtl(body []byte) (walCtl, error) {
	var c walCtl
	if err := json.Unmarshal(body, &c); err != nil {
		return walCtl{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	switch c.Ctl {
	case ctlAbsorb:
		if c.Metric == "" {
			return walCtl{}, fmt.Errorf("%w: absorb record without metric", ErrInvalid)
		}
		c.sk = new(stats.Sketch)
		if err := c.sk.UnmarshalBinary(c.Sketch); err != nil {
			return walCtl{}, fmt.Errorf("%w: absorb sketch: %v", ErrInvalid, err)
		}
	case ctlDrop:
		if c.Of <= 0 || c.Partition < 0 || c.Partition >= c.Of {
			return walCtl{}, fmt.Errorf("%w: drop record partition %d of %d", ErrInvalid, c.Partition, c.Of)
		}
	default:
		return walCtl{}, fmt.Errorf("%w: unknown control record %q", ErrInvalid, c.Ctl)
	}
	return c, nil
}

// appendCtl logs one control record to a window's segment — the control
// twin of append, with the same sticky-error and fsync-cadence behaviour.
func (w *shardWAL) appendCtl(start int64, c walCtl) {
	if w.err != nil {
		return
	}
	seg, err := w.openSeg(start)
	if err != nil {
		w.err = err
		return
	}
	line, err := json.Marshal(c)
	if err != nil {
		w.err = err
		return
	}
	if !bytes.HasPrefix(line, ctlPrefix) {
		// Field order is encode-stable in encoding/json; this guards the
		// prefix dispatch against a struct reordering ever silently turning
		// control records into "corrupt envelopes".
		w.err = fmt.Errorf("telemetry: control record encoded without ctl prefix: %s", line)
		return
	}
	if _, err := seg.bw.Write(append(line, '\n')); err != nil {
		w.err = err
		return
	}
	w.records[start]++
	w.appended++
	w.appendedC.Inc()
	w.unsynced++
	if w.syncEvery > 0 && w.unsynced >= w.syncEvery {
		w.sync()
	}
}

// applyCtl replays one control record into a shard — the recovery twin of
// the live absorb/drop paths, applied at the record's exact fold position.
func (ing *Ingestor) applyCtl(s *shard, start int64, c walCtl) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch c.Ctl {
	case ctlAbsorb:
		wk := windowKey{Start: start, Key: Key{Metric: c.Metric, Region: c.Region, Net: c.Net}}
		ing.absorbLocked(s, wk, c.sk, foldReplay)
	case ctlDrop:
		dropWindowLocked(s, start, c.Partition, c.Of)
	}
}

// absorbLocked folds one rollup's sketch into the shard state: a pure
// insert when the (window, key) is new — bit-identical to the source, the
// property the byte-identity pins need — or a deterministic sketch merge
// when data already accumulated there (dual-written traffic, or a catch-up
// straddling a window boundary). Called with s.mu held.
func (ing *Ingestor) absorbLocked(s *shard, wk windowKey, sk *stats.Sketch, mode foldMode) {
	if existing := s.windows[wk]; existing != nil {
		existing.Absorb(sk)
		return
	}
	s.windows[wk] = sk
	if s.starts[wk.Start]++; s.starts[wk.Start] == 1 && mode == foldLive {
		ing.enforceRetention(s)
	}
}

// dropWindowLocked deletes one window's rollups in one partition. Dedup
// trackers are kept: their (key, user, seq) memory is harmless across a
// drop (a re-absorbed partition arrives as sketches, not as sequenced
// envelopes), and keeping them means live drops and segment replay agree
// without cross-segment ordering. Called with s.mu held.
func dropWindowLocked(s *shard, start int64, p, of int) int {
	dropped := 0
	for wk := range s.windows {
		if wk.Start != start || wk.Key.ShardOf(of) != p {
			continue
		}
		delete(s.windows, wk)
		dropped++
		if s.starts[start]--; s.starts[start] <= 0 {
			delete(s.starts, start)
		}
	}
	return dropped
}

// PartitionPages exports every rollup whose key hashes to partition p of
// `of` as sketch pages — one page per metric, metrics sorted, matches in
// the canonical (start, region, net) order — the exact wire shape
// /sketches serves and MergeSketchPages consumes. Sketches are cloned
// under the shard locks and encoded outside them.
func (ing *Ingestor) PartitionPages(p, of int) ([]SketchPage, error) {
	if of <= 0 || p < 0 || p >= of {
		return nil, fmt.Errorf("telemetry: partition %d of %d", p, of)
	}
	var matches []sketchMatch
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk, sk := range s.windows {
			if wk.Key.ShardOf(of) != p {
				continue
			}
			matches = append(matches, sketchMatch{wk, sk.Clone()})
		}
		s.mu.Unlock()
	}
	byMetric := map[string][]sketchMatch{}
	var metrics []string
	for _, m := range matches {
		if _, ok := byMetric[m.wk.Metric]; !ok {
			metrics = append(metrics, m.wk.Metric)
		}
		byMetric[m.wk.Metric] = append(byMetric[m.wk.Metric], m)
	}
	sort.Strings(metrics)
	pages := make([]SketchPage, 0, len(metrics))
	var buf []byte
	for _, metric := range metrics {
		ms := byMetric[metric]
		sortMatches(ms)
		page := SketchPage{
			Metric:      metric,
			Compression: ing.cfg.Compression,
			WindowMs:    ing.cfg.Window.Milliseconds(),
			Matches:     make([]WindowSketch, 0, len(ms)),
		}
		for _, m := range ms {
			buf, _ = m.sk.AppendBinary(buf[:0]) // encoding a live sketch cannot fail
			page.Matches = append(page.Matches, WindowSketch{
				Start:  m.wk.Start,
				Region: m.wk.Region,
				Net:    m.wk.Net,
				Sketch: append([]byte(nil), buf...),
			})
		}
		pages = append(pages, page)
	}
	return pages, nil
}

// AbsorbAck acknowledges one AbsorbPages call: what was folded, durably,
// before the ack was produced. The handoff coordinator gates epoch
// activation on it.
type AbsorbAck struct {
	// Pages and Rollups count the absorbed input.
	Pages   int `json:"pages"`
	Rollups int `json:"rollups"`
	// Windows counts the distinct window starts touched.
	Windows int `json:"windows"`
	// Count is the total event weight absorbed.
	Count float64 `json:"count"`
}

// AbsorbPages folds exported sketch pages into this ingestor — the gaining
// side of a partition handoff. Every page is validated and decoded before
// anything is folded, so a malformed transfer mutates nothing; each rollup
// is WAL-logged (control record, at its fold position) before folding, and
// the WAL is fsynced before the ack returns, so an acked absorb survives a
// crash. Pages must match this ingestor's compression and window length —
// a cluster must be homogeneously configured.
func (ing *Ingestor) AbsorbPages(pages []SketchPage) (AbsorbAck, error) {
	windowMs := ing.cfg.Window.Milliseconds()
	type pending struct {
		wk windowKey
		sk *stats.Sketch
		ws WindowSketch
	}
	var todo []pending
	for i, p := range pages {
		if p.Metric == "" {
			return AbsorbAck{}, fmt.Errorf("telemetry: absorb page %d without metric", i)
		}
		if p.Compression != ing.cfg.Compression || p.WindowMs != windowMs {
			return AbsorbAck{}, fmt.Errorf(
				"telemetry: absorb page %d is compression %v/window %dms, ingestor configured %v/%dms",
				i, p.Compression, p.WindowMs, ing.cfg.Compression, windowMs)
		}
		for _, m := range p.Matches {
			if m.Start%windowMs != 0 {
				return AbsorbAck{}, fmt.Errorf("telemetry: absorb page %d start %d not window-aligned", i, m.Start)
			}
			sk := new(stats.Sketch)
			if err := sk.UnmarshalBinary(m.Sketch); err != nil {
				return AbsorbAck{}, fmt.Errorf("telemetry: absorb page %d sketch (start=%d %s/%s): %w",
					i, m.Start, m.Region, m.Net, err)
			}
			todo = append(todo, pending{
				wk: windowKey{Start: m.Start, Key: Key{Metric: p.Metric, Region: m.Region, Net: m.Net}},
				sk: sk,
				ws: m,
			})
		}
	}
	ack := AbsorbAck{Pages: len(pages)}
	starts := map[int64]bool{}
	for _, t := range todo {
		s := ing.shards[t.wk.Key.ShardOf(len(ing.shards))]
		s.mu.Lock()
		if s.wal != nil {
			s.wal.appendCtl(t.wk.Start, walCtl{
				Ctl:    ctlAbsorb,
				Metric: t.wk.Metric,
				Region: t.ws.Region,
				Net:    t.ws.Net,
				Sketch: t.ws.Sketch,
			})
		}
		ing.absorbLocked(s, t.wk, t.sk, foldLive)
		s.mu.Unlock()
		ack.Rollups++
		ack.Count += t.sk.Count()
		starts[t.wk.Start] = true
	}
	ack.Windows = len(starts)
	if err := ing.SyncWAL(); err != nil {
		return ack, fmt.Errorf("telemetry: absorb fsync: %w", err)
	}
	return ack, nil
}

// DropPartition deletes every rollup whose key hashes to partition p of
// `of`, WAL-logging a drop control record into each affected window's
// segment first (and fsyncing before returning), so recovery replays the
// drop at its exact position. Dedup trackers survive — see
// dropWindowLocked. Returns the number of rollups dropped.
func (ing *Ingestor) DropPartition(p, of int) (int, error) {
	if of <= 0 || p < 0 || p >= of {
		return 0, fmt.Errorf("telemetry: partition %d of %d", p, of)
	}
	dropped := 0
	for _, s := range ing.shards {
		s.mu.Lock()
		affected := map[int64]bool{}
		for wk := range s.windows {
			if wk.Key.ShardOf(of) == p {
				affected[wk.Start] = true
			}
		}
		starts := make([]int64, 0, len(affected))
		for start := range affected {
			starts = append(starts, start)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		for _, start := range starts {
			if s.wal != nil {
				s.wal.appendCtl(start, walCtl{Ctl: ctlDrop, Partition: p, Of: of})
			}
			dropped += dropWindowLocked(s, start, p, of)
		}
		s.mu.Unlock()
	}
	if err := ing.SyncWAL(); err != nil {
		return dropped, fmt.Errorf("telemetry: drop fsync: %w", err)
	}
	return dropped, nil
}

// FreezePartition makes the ingestor refuse envelopes whose key hashes to
// partition p of `of` — the source side of a handoff's exact cut. The
// freeze is installed under the same writer lock Offer holds across its
// enqueue, so when FreezePartition returns, every already-accepted
// envelope is countable by Flush and every later Offer of the partition
// returns false (the routing client's bounded backoff absorbs the pause).
// That ordering is what guarantees an acked envelope is either in the
// flushed page cut or retried into the dual-write phase — never lost
// between them. Only one partition split may be frozen at a time.
func (ing *Ingestor) FreezePartition(p, of int) error {
	if of <= 0 || p < 0 || p >= of {
		return fmt.Errorf("telemetry: partition %d of %d", p, of)
	}
	ing.offerMu.Lock()
	defer ing.offerMu.Unlock()
	if len(ing.frozen) > 0 && ing.frozenOf != of {
		return fmt.Errorf("telemetry: freeze split %d conflicts with active split %d", of, ing.frozenOf)
	}
	if ing.frozen == nil {
		ing.frozen = map[int]bool{}
	}
	ing.frozenOf = of
	ing.frozen[p] = true
	return nil
}

// UnfreezePartition lifts a partition freeze (idempotent).
func (ing *Ingestor) UnfreezePartition(p, of int) {
	ing.offerMu.Lock()
	defer ing.offerMu.Unlock()
	if ing.frozenOf == of {
		delete(ing.frozen, p)
	}
}

// frozenFor reports whether an envelope's partition is frozen. Called with
// offerMu read-held (Offer's existing hold spans the check and the
// enqueue, which is what makes the freeze an exact cut).
func (ing *Ingestor) frozenFor(e Envelope) bool {
	if len(ing.frozen) == 0 {
		return false
	}
	return ing.frozen[e.Key().ShardOf(ing.frozenOf)]
}

// SetNodeInfo replaces the ingestor's cluster identity (Config.Node) —
// called when an epoch activation reassigns this node's partitions, so
// /healthz keeps describing the live layout without a restart.
func (ing *Ingestor) SetNodeInfo(info *NodeInfo) {
	ing.nodeMu.Lock()
	ing.node = info
	ing.nodeMu.Unlock()
}

// nodeInfo returns the current cluster identity.
func (ing *Ingestor) nodeInfo() *NodeInfo {
	ing.nodeMu.Lock()
	defer ing.nodeMu.Unlock()
	return ing.node
}
