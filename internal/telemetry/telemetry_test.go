package telemetry

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"edgescope/internal/crowd"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/stats"
)

func ev(ts int64, metric, region, net string, v float64) Envelope {
	return Envelope{V: SchemaVersion, TS: ts, Kind: KindPing, Metric: metric,
		Region: region, Net: net, Value: v}
}

// --- Envelope / JSONL ---

func TestEnvelopeRoundTrip(t *testing.T) {
	events := []Envelope{
		{V: 1, TS: 1633046400000, Kind: "ping", Metric: "rtt_ms", User: 7,
			Region: "Beijing", Net: "WiFi", Target: "nearest-edge", Value: 12.25},
		{V: 1, TS: 1633046400250, Kind: "iperf", Metric: "tput_mbps", User: 9,
			Region: "downlink", Net: "LTE", Value: 87.5},
		{V: 1, TS: 1633046400500, Kind: "ping", Metric: "hop_count", User: 0,
			Region: "Wuhan", Net: "5G", Value: 11},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(events) {
		t.Fatalf("lines = %d, want %d", got, len(events))
	}
	var back []Envelope
	st, err := ReadJSONL(&buf, func(e Envelope) { back = append(back, e) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Malformed != 0 || st.Decoded != len(events) {
		t.Fatalf("stats = %+v", st)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("round trip changed events:\n in: %+v\nout: %+v", events, back)
	}
}

func TestDecodeLineRejects(t *testing.T) {
	cases := []struct {
		name string
		line string
		want error
	}{
		{"empty-object", `{}`, ErrVersion},
		{"future-version", `{"v":99,"ts":1,"metric":"m","value":1}`, ErrVersion},
		{"no-metric", `{"v":1,"ts":1,"value":1}`, ErrInvalid},
		{"zero-ts", `{"v":1,"ts":0,"metric":"m","value":1}`, ErrInvalid},
		{"negative-ts", `{"v":1,"ts":-5,"metric":"m","value":1}`, ErrInvalid},
		{"not-json", `not json at all`, ErrInvalid},
		{"wrong-type", `{"v":1,"ts":"yesterday","metric":"m","value":1}`, ErrInvalid},
		{"truncated", `{"v":1,"ts":1,"metric":"m","va`, ErrInvalid},
	}
	for _, tc := range cases {
		if _, err := DecodeLine([]byte(tc.line)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Unknown fields are forward-compatible, not errors.
	e, err := DecodeLine([]byte(`{"v":1,"ts":1,"metric":"m","value":2,"extra":"ok"}`))
	if err != nil || e.Value != 2 {
		t.Errorf("unknown field rejected: %v %+v", err, e)
	}
}

func TestAppendJSONLRejectsNonFinite(t *testing.T) {
	e := ev(1, "m", "r", "n", math.NaN())
	if _, err := AppendJSONL(nil, e); !errors.Is(err, ErrInvalid) {
		t.Fatalf("NaN encode err = %v, want ErrInvalid", err)
	}
}

func TestReadJSONLSkipsMalformedLines(t *testing.T) {
	in := `{"v":1,"ts":1,"metric":"m","value":1}
garbage line
{"v":1,"ts":2,"metric":"m","value":2}

{"v":2,"ts":3,"metric":"m","value":3}
`
	var got []float64
	st, err := ReadJSONL(strings.NewReader(in), func(e Envelope) { got = append(got, e.Value) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded != 2 || st.Malformed != 2 {
		t.Fatalf("stats = %+v, want 2 decoded / 2 malformed", st)
	}
	if !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("values = %v", got)
	}
}

// --- sharding ---

func TestShardOfStableAndInRange(t *testing.T) {
	k := Key{Metric: "rtt_ms", Region: "Beijing", Net: "WiFi"}
	first := k.ShardOf(8)
	for i := 0; i < 10; i++ {
		if got := k.ShardOf(8); got != first {
			t.Fatal("ShardOf not stable")
		}
	}
	// Field-boundary confusion must not collapse distinct tuples.
	a := Key{Metric: "ab", Region: "c", Net: ""}.ShardOf(1 << 16)
	b := Key{Metric: "a", Region: "bc", Net: ""}.ShardOf(1 << 16)
	if a == b {
		t.Error("field boundaries not separated in shard hash")
	}
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		k := Key{Metric: "m", Region: string(rune('a' + r.IntN(26))), Net: string(rune('A' + r.IntN(26)))}
		for _, n := range []int{1, 2, 7, 16} {
			if s := k.ShardOf(n); s < 0 || s >= n {
				t.Fatalf("ShardOf(%d) = %d out of range", n, s)
			}
		}
	}
}

// --- ingest + query ---

func TestIngestQueryMatchesBatchSummary(t *testing.T) {
	ing := NewIngestor(Config{Shards: 4, Window: time.Minute, Block: true})
	defer ing.Close()

	r := rng.New(21)
	const n = 8000
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	xs := make([]float64, n)
	regions := []string{"Beijing", "Shanghai", "Wuhan"}
	nets := []string{"WiFi", "LTE"}
	for i := range xs {
		xs[i] = r.LogNormal(3, 0.6)
		ok := ing.Offer(ev(base+int64(i)*100, MetricRTT,
			regions[i%len(regions)], nets[i%len(nets)], xs[i]))
		if !ok {
			t.Fatal("blocking offer refused")
		}
	}
	ing.Flush()

	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != n {
		t.Fatalf("Count = %v, want %d", res.Count, n)
	}
	sum := stats.Summarize(xs)
	if res.Min != sum.Min() || res.Max != sum.Max() {
		t.Errorf("Min/Max = %v/%v, want %v/%v", res.Min, res.Max, sum.Min(), sum.Max())
	}
	for _, qe := range res.Quantiles {
		if got := math.Abs(sum.CDFAt(qe.Value) - qe.Q); got > 2*qe.RankError {
			t.Errorf("q=%v: rank error %.5f exceeds 2×bound %.5f", qe.Q, got, 2*qe.RankError)
		}
	}

	// Dimension filter: only Beijing/WiFi events (i ≡ 0 mod 6).
	var filtered []float64
	for i := 0; i < n; i += 6 {
		filtered = append(filtered, xs[i])
	}
	fres, err := ing.Query(QuerySpec{Metric: MetricRTT, Region: "Beijing", Net: "WiFi"})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Count != float64(len(filtered)) {
		t.Fatalf("filtered Count = %v, want %d", fres.Count, len(filtered))
	}

	// Unknown metric: empty result, not an error.
	empty, err := ing.Query(QuerySpec{Metric: "nope"})
	if err != nil || empty.Count != 0 || empty.Windows != 0 {
		t.Fatalf("unknown metric: %+v err=%v", empty, err)
	}
	if _, err := ing.Query(QuerySpec{}); err == nil {
		t.Fatal("metric-less query accepted")
	}
	if _, err := ing.Query(QuerySpec{Metric: "m", Quantiles: []float64{1.5}}); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
}

func TestWindowRangeQueries(t *testing.T) {
	ing := NewIngestor(Config{Shards: 2, Window: time.Minute, Block: true})
	defer ing.Close()

	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC)
	// 10 events per minute for 10 minutes, value = minute index.
	for m := 0; m < 10; m++ {
		for i := 0; i < 10; i++ {
			ing.Offer(ev(base.Add(time.Duration(m)*time.Minute+time.Duration(i)*time.Second).UnixMilli(),
				MetricRTT, "r", "n", float64(m)))
		}
	}
	ing.Flush()

	full, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count != 100 || full.Windows != 10 {
		t.Fatalf("full query = count %v windows %d, want 100/10", full.Count, full.Windows)
	}

	// Only minutes [3,7).
	part, err := ing.Query(QuerySpec{
		Metric: MetricRTT,
		From:   base.Add(3 * time.Minute),
		To:     base.Add(7 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if part.Count != 40 || part.Windows != 4 {
		t.Fatalf("range query = count %v windows %d, want 40/4", part.Count, part.Windows)
	}
	if part.Min != 3 || part.Max != 6 {
		t.Fatalf("range Min/Max = %v/%v, want 3/6", part.Min, part.Max)
	}

	// Unaligned bounds select every overlapping window whole: [3m30s, 6m30s)
	// overlaps windows 3,4,5,6 exactly like the aligned [3m, 7m).
	unaligned, err := ing.Query(QuerySpec{
		Metric: MetricRTT,
		From:   base.Add(3*time.Minute + 30*time.Second),
		To:     base.Add(6*time.Minute + 30*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if unaligned.Count != 40 || unaligned.Windows != 4 {
		t.Fatalf("unaligned range = count %v windows %d, want 40/4", unaligned.Count, unaligned.Windows)
	}
	// A To on an exact boundary stays exclusive of the window it starts.
	excl, err := ing.Query(QuerySpec{Metric: MetricRTT, To: base.Add(1 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if excl.Windows != 1 || excl.Max != 0 {
		t.Fatalf("boundary To = windows %d max %v, want 1 window of minute 0", excl.Windows, excl.Max)
	}

	from, to := ing.WindowRange()
	if !from.Equal(base) || !to.Equal(base.Add(10*time.Minute)) {
		t.Fatalf("WindowRange = %v..%v", from, to)
	}

	keys := ing.Keys()
	if len(keys) != 1 || keys[0].Key != (Key{Metric: MetricRTT, Region: "r", Net: "n"}) || keys[0].Count != 100 {
		t.Fatalf("Keys = %+v", keys)
	}
}

// TestIngestDropAccounting fills a tiny queue with no consumer progress
// guaranteed and checks accepted+dropped always equals offered, and that a
// blocking ingestor never drops.
func TestIngestDropAccounting(t *testing.T) {
	ing := NewIngestor(Config{Shards: 1, QueueLen: 8})
	const offered = 5000
	accepted := 0
	for i := 0; i < offered; i++ {
		if ing.Offer(ev(int64(i+1), MetricRTT, "r", "n", 1)) {
			accepted++
		}
	}
	ing.Flush()
	st := ing.TotalStats()
	ing.Close()
	if int(st.Accepted) != accepted {
		t.Errorf("Accepted = %d, want %d", st.Accepted, accepted)
	}
	if st.Accepted+st.Dropped != offered {
		t.Errorf("accepted(%d) + dropped(%d) != offered(%d)", st.Accepted, st.Dropped, offered)
	}
	if st.Processed != st.Accepted {
		t.Errorf("Processed = %d, want %d after Flush", st.Processed, st.Accepted)
	}

	// Invalid envelopes are refused before any queue.
	ing2 := NewIngestor(Config{Shards: 1, Block: true})
	defer ing2.Close()
	if ing2.Offer(Envelope{V: 99, TS: 1, Metric: "m", Value: 1}) {
		t.Error("invalid envelope accepted")
	}
	if ing2.Offer(ev(1, "m", "r", "n", math.Inf(1))) {
		t.Error("non-finite value accepted")
	}
	if st := ing2.TotalStats(); st.Accepted != 0 {
		t.Errorf("invalid envelopes counted as accepted: %+v", st)
	}
}

// TestWindowRetention pins the MaxWindows memory contract: on an endless
// stream each shard keeps at most the cap, evicting whole oldest windows
// with the evictions counted.
func TestWindowRetention(t *testing.T) {
	ing := NewIngestor(Config{Shards: 1, Window: time.Minute, Block: true, MaxWindows: 3})
	defer ing.Close()
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC)
	const minutes = 10
	for m := 0; m < minutes; m++ {
		for i := 0; i < 5; i++ {
			ing.Offer(ev(base.Add(time.Duration(m)*time.Minute+time.Duration(i)*time.Second).UnixMilli(),
				MetricRTT, "r", "n", float64(m)))
		}
	}
	ing.Flush()
	st := ing.TotalStats()
	if st.Windows != 3 {
		t.Fatalf("retained windows = %d, want 3", st.Windows)
	}
	if st.EvictedWindows != minutes-3 {
		t.Fatalf("evicted = %d, want %d", st.EvictedWindows, minutes-3)
	}
	// Only the newest three minutes remain queryable.
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 15 || res.Min != minutes-3 || res.Max != minutes-1 {
		t.Fatalf("after eviction: count %v min %v max %v, want 15/%d/%d",
			res.Count, res.Min, res.Max, minutes-3, minutes-1)
	}
}

// TestWindowRetentionManyKeys pins that the cap counts time windows, not
// (window, key) rollup entries: with more dimension keys per window than
// MaxWindows, whole recent windows — every key — must survive.
func TestWindowRetentionManyKeys(t *testing.T) {
	const maxWin, keys, minutes = 3, 5, 8
	ing := NewIngestor(Config{Shards: 1, Window: time.Minute, Block: true, MaxWindows: maxWin})
	defer ing.Close()
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC)
	regions := []string{"Beijing", "Shanghai", "Wuhan", "Chengdu", "Xian"}
	for m := 0; m < minutes; m++ {
		for k := 0; k < keys; k++ {
			ing.Offer(ev(base.Add(time.Duration(m)*time.Minute).UnixMilli()+int64(k),
				MetricRTT, regions[k], "WiFi", float64(m)))
		}
	}
	ing.Flush()
	st := ing.TotalStats()
	if st.Windows != maxWin || st.Rollups != maxWin*keys {
		t.Fatalf("windows/rollups = %d/%d, want %d/%d", st.Windows, st.Rollups, maxWin, maxWin*keys)
	}
	if st.EvictedWindows != minutes-maxWin {
		t.Fatalf("evicted = %d, want %d windows", st.EvictedWindows, minutes-maxWin)
	}
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		t.Fatal(err)
	}
	// The newest cap windows survive in full: every key, every event.
	if res.Count != float64(maxWin*keys) || res.Min != minutes-maxWin || res.Max != minutes-1 {
		t.Fatalf("after eviction: count %v min %v max %v, want %d/%d/%d",
			res.Count, res.Min, res.Max, maxWin*keys, minutes-maxWin, minutes-1)
	}
	for _, reg := range regions {
		pr, err := ing.Query(QuerySpec{Metric: MetricRTT, Region: reg})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Count != maxWin {
			t.Fatalf("region %s count = %v, want %d", reg, pr.Count, maxWin)
		}
	}
}

// TestReplayCampaignLatencyMatchesBatch pins the streaming emission path:
// driving crowd.StreamLatency straight into the ingestor yields exactly the
// rollup state of replaying the materialised batch observations.
func TestReplayCampaignLatencyMatchesBatch(t *testing.T) {
	const seed = 6
	mkCampaign := func() *crowd.Campaign {
		return crowd.NewCampaign(rng.New(seed).Fork("campaign"), scenario.CrowdSpec{Users: 20, Repeats: 5})
	}
	query := func(ing *Ingestor) QueryResult {
		res, err := ing.Query(QuerySpec{Metric: MetricRTT, CDFAt: []float64{20, 40, 80}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	streamed := NewIngestor(Config{Shards: 4, Window: time.Minute, Block: true})
	defer streamed.Close()
	st := ReplayCampaignLatency(streamed, mkCampaign(), rng.New(seed).Fork("latency"), ReplayOptions{})
	if st.Dropped != 0 || st.Events == 0 || st.Accepted != st.Events {
		t.Fatalf("streaming replay stats: %+v", st)
	}

	batch := NewIngestor(Config{Shards: 4, Window: time.Minute, Block: true})
	defer batch.Close()
	obs := mkCampaign().RunLatency(rng.New(seed).Fork("latency"))
	Replay(batch, LatencyEvents(obs, ReplayOptions{}))

	if 2*len(obs) != st.Events {
		t.Fatalf("streamed %d events, batch path has %d", st.Events, 2*len(obs))
	}
	if got, want := query(streamed), query(batch); !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed and batch rollups diverge:\nstream: %+v\n batch: %+v", got, want)
	}
}

// TestIngestDeterministicForFixedShardCount pins the replay determinism
// contract: same event stream + same shard count ⇒ identical query answers,
// run to run.
func TestIngestDeterministicForFixedShardCount(t *testing.T) {
	events := campaignEvents(t)
	answer := func() []QuantileEstimate {
		ing := NewIngestor(Config{Shards: 4, Window: time.Minute, Block: true})
		defer ing.Close()
		Replay(ing, events)
		res, err := ing.Query(QuerySpec{Metric: MetricRTT})
		if err != nil {
			t.Fatal(err)
		}
		return res.Quantiles
	}
	first := answer()
	for i := 0; i < 3; i++ {
		if got := answer(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged: %+v vs %+v", i, got, first)
		}
	}
}

// --- replay cross-check (acceptance criterion) ---

func campaignEvents(t *testing.T) []Envelope {
	t.Helper()
	r := rng.New(1)
	c := crowd.NewCampaign(r.Fork("campaign"), scenario.CrowdSpec{Users: 40, Repeats: 8})
	obs := c.RunLatency(r.Fork("latency"))
	return LatencyEvents(obs, ReplayOptions{})
}

// TestStreamLatencyMatchesRunLatency pins the crowd emission hook: the
// streaming path emits exactly the batch path's observations, in order.
func TestStreamLatencyMatchesRunLatency(t *testing.T) {
	mk := func() (*crowd.Campaign, *rng.Source) {
		r := rng.New(3)
		return crowd.NewCampaign(r.Fork("campaign"), scenario.CrowdSpec{Users: 12, Repeats: 4}), r.Fork("latency")
	}
	c1, r1 := mk()
	batch := c1.RunLatency(r1)
	c2, r2 := mk()
	var streamed []crowd.Observation
	c2.StreamLatency(r2, func(o crowd.Observation) { streamed = append(streamed, o) })
	if !reflect.DeepEqual(batch, streamed) {
		t.Fatalf("StreamLatency diverged from RunLatency: %d vs %d observations",
			len(batch), len(streamed))
	}
}

// TestReplayMatchesBatchSummary is the PR's acceptance pin: streaming
// p50/p95/p99 over the replayed campaign latency match the exact batch
// stats.Summary within twice the sketch's documented rank-error bound.
func TestReplayMatchesBatchSummary(t *testing.T) {
	r := rng.New(1)
	c := crowd.NewCampaign(r.Fork("campaign"), scenario.CrowdSpec{Users: 60, Repeats: 10})
	obs := c.RunLatency(r.Fork("latency"))
	events := LatencyEvents(obs, ReplayOptions{})

	ing := NewIngestor(Config{Shards: 4, Window: time.Minute, Block: true})
	defer ing.Close()
	st := Replay(ing, events)
	if st.Dropped != 0 || st.Accepted != len(events) {
		t.Fatalf("lossless replay violated: %+v", st)
	}

	var rtts []float64
	for _, o := range obs {
		rtts = append(rtts, o.MedianRTTMs)
	}
	batch := stats.Summarize(rtts)

	res, err := ing.Query(QuerySpec{Metric: MetricRTT, Quantiles: []float64{0.5, 0.95, 0.99}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != float64(len(obs)) {
		t.Fatalf("streamed count %v != batch %d", res.Count, len(obs))
	}
	for _, qe := range res.Quantiles {
		rankErr := math.Abs(batch.CDFAt(qe.Value) - qe.Q)
		if rankErr > 2*qe.RankError {
			t.Errorf("p%g: streaming=%.3f batch=%.3f rank error %.5f exceeds 2×bound %.5f",
				qe.Q*100, qe.Value, batch.Percentile(qe.Q*100), rankErr, 2*qe.RankError)
		}
	}

	// Per-dimension cross-check: each access network separately.
	for _, net := range []string{"WiFi", "LTE"} {
		var sub []float64
		for _, o := range obs {
			if o.Access.String() == net {
				sub = append(sub, o.MedianRTTMs)
			}
		}
		if len(sub) == 0 {
			continue
		}
		bsum := stats.Summarize(sub)
		nres, err := ing.Query(QuerySpec{Metric: MetricRTT, Net: net})
		if err != nil {
			t.Fatal(err)
		}
		if nres.Count != float64(len(sub)) {
			t.Fatalf("%s count %v != %d", net, nres.Count, len(sub))
		}
		for _, qe := range nres.Quantiles {
			if got := math.Abs(bsum.CDFAt(qe.Value) - qe.Q); got > 2*qe.RankError {
				t.Errorf("%s p%g: rank error %.5f exceeds 2×bound %.5f", net, qe.Q*100, got, 2*qe.RankError)
			}
		}
	}
}

// TestQueryDuringIngest exercises the live path: queries racing a producer
// must observe a consistent (locked) rollup state. Run under -race this
// also proves the ingest/query locking.
func TestQueryDuringIngest(t *testing.T) {
	ing := NewIngestor(Config{Shards: 4, Window: time.Minute, Block: true})
	defer ing.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4000; i++ {
			ing.Offer(ev(int64(i+1)*50, MetricRTT, "r", "n", float64(i%100)))
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := ing.Query(QuerySpec{Metric: MetricRTT}); err != nil {
			t.Fatal(err)
		}
		ing.Keys()
		ing.Stats()
	}
	<-done
	ing.Flush()
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 4000 {
		t.Fatalf("final count = %v, want 4000", res.Count)
	}
}
