package cluster

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"edgescope/internal/faultinject"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/telemetry"
)

// add stands up an ingestor for a joining member — the harness half of an
// elastic join (the daemon boot; Migrator.Join is the cluster half).
func (c *testCluster) add(node string) {
	cfg := telemetry.Config{Shards: 2, QueueLen: 1024, Block: true, Node: &telemetry.NodeInfo{Role: "node", ID: node}}
	if c.walDir != "" {
		cfg.WAL = telemetry.WALConfig{Dir: filepath.Join(c.walDir, node), SyncEvery: 1}
	}
	c.mu.Lock()
	c.cfgs[node] = cfg
	c.ings[node] = telemetry.NewIngestor(cfg)
	c.mu.Unlock()
}

// testAdmin adapts a harness member to NodeAdmin, resolving the live
// ingestor per call (so crashes and recoveries are observed) and erroring
// while the member is down.
type testAdmin struct {
	c    *testCluster
	node string
}

func (a testAdmin) ing() (*telemetry.Ingestor, error) {
	ing := a.c.get(a.node)
	if ing == nil {
		return nil, fmt.Errorf("node %s down", a.node)
	}
	return ing, nil
}

func (a testAdmin) Flush(context.Context) error {
	ing, err := a.ing()
	if err != nil {
		return err
	}
	ing.Flush()
	return nil
}

func (a testAdmin) FreezePartition(_ context.Context, p, of int) error {
	ing, err := a.ing()
	if err != nil {
		return err
	}
	return ing.FreezePartition(p, of)
}

func (a testAdmin) UnfreezePartition(_ context.Context, p, of int) error {
	ing, err := a.ing()
	if err != nil {
		return err
	}
	ing.UnfreezePartition(p, of)
	return nil
}

func (a testAdmin) PartitionPages(_ context.Context, p, of int) ([]telemetry.SketchPage, error) {
	ing, err := a.ing()
	if err != nil {
		return nil, err
	}
	return ing.PartitionPages(p, of)
}

func (a testAdmin) AbsorbPages(_ context.Context, pages []telemetry.SketchPage) (telemetry.AbsorbAck, error) {
	ing, err := a.ing()
	if err != nil {
		return telemetry.AbsorbAck{}, err
	}
	return ing.AbsorbPages(pages)
}

func (a testAdmin) DropPartition(_ context.Context, p, of int) (int, error) {
	ing, err := a.ing()
	if err != nil {
		return 0, err
	}
	return ing.DropPartition(p, of)
}

func (a testAdmin) PushAssignment(_ context.Context, as Assignment) error {
	ing, err := a.ing()
	if err != nil {
		return err
	}
	ing.SetNodeInfo(as.NodeInfo(a.node))
	return nil
}

// newTestMigrator wires a Migrator over every current harness member.
func newTestMigrator(c *testCluster, pm *PartitionMap, h *HealthTracker, hook StepHook) *Migrator {
	admins := map[string]NodeAdmin{}
	for _, n := range pm.Nodes() {
		admins[n] = testAdmin{c: c, node: n}
	}
	return NewMigrator(pm, admins, MigratorConfig{Health: h, Hook: hook})
}

// TestJoinDrainLeaveByteIdenticalAcrossScenarios is the elastic-membership
// acceptance pin: for every built-in scenario, a 3-node cluster ingests
// two thirds of the stream, a 4th node joins (live handoff), the rest of
// the stream routes on the new epoch, then a member drains and leaves —
// and after every membership change the full query surface stays
// byte-identical to a single-node replay of the whole stream.
func TestJoinDrainLeaveByteIdenticalAcrossScenarios(t *testing.T) {
	for _, name := range builtinScenarios {
		t.Run(name, func(t *testing.T) {
			sp := scenario.MustGet(name)
			events := scenarioEvents(t, sp)
			ctx := context.Background()

			single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
			defer single.Close()
			if st := telemetry.Replay(single, events); st.Dropped != 0 {
				t.Fatalf("single-node replay dropped %d", st.Dropped)
			}
			want := singleFingerprint(t, single)

			pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
			c := newTestCluster(t, pm, "")
			tracker := alwaysUpTracker(pm.Nodes())
			router := NewRouter(pm, tracker, c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
				Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
			})
			f := NewFrontend(pm, c.clients(), FrontendConfig{})
			mig := newTestMigrator(c, pm, tracker, nil)

			cut := len(events) * 2 / 3
			if sent := router.SendAll(events[:cut]); sent != cut {
				t.Fatalf("pre-join replay delivered %d of %d", sent, cut)
			}

			// Live join: boot the member, wire its query client, migrate.
			c.add("n3")
			f.AddClient("n3", liveNode{c: c, node: "n3"})
			next, err := mig.Join(ctx, "n3", testAdmin{c: c, node: "n3"})
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			if next.Epoch != 2 || pm.Epoch() != 2 {
				t.Fatalf("post-join epoch = %d/%d", next.Epoch, pm.Epoch())
			}
			if owned := pm.OwnedBy("n3"); len(owned) != 4 {
				t.Fatalf("n3 owns %v, want its quota of 4", owned)
			}
			if mig := pm.Migrating(); mig != nil {
				t.Fatalf("join left migration residue: %v", mig)
			}

			if sent := router.SendAll(events[cut:]); sent != len(events)-cut {
				t.Fatalf("post-join replay delivered %d of %d", sent, len(events)-cut)
			}
			c.flushAll()
			if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
				t.Fatal("post-join answers diverged from single-node replay")
			}

			// Drain then leave: the drained member's partitions hand off,
			// the subsequent leave moves nothing.
			if _, err := mig.Drain(ctx, "n2"); err != nil {
				t.Fatalf("Drain: %v", err)
			}
			if owned := pm.OwnedBy("n2"); len(owned) != 0 {
				t.Fatalf("drained n2 still owns %v", owned)
			}
			if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
				t.Fatal("post-drain answers diverged from single-node replay")
			}
			left, err := mig.Leave(ctx, "n2")
			if err != nil {
				t.Fatalf("Leave: %v", err)
			}
			if left.Member("n2") || pm.Epoch() != 4 {
				t.Fatalf("post-leave state: member=%v epoch=%d", left.Member("n2"), pm.Epoch())
			}
			if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
				t.Fatal("post-leave answers diverged from single-node replay")
			}
		})
	}
}

// TestJoinMidMigrationFreezeAndDualWrites pins the migration-window ingest
// contract: a send racing a partition's exact-cut freeze is refused (and
// lands cleanly when retried after cutover), and sends between cutover and
// activation are dual-written to both epochs' owners — with the final
// answers still byte-identical to a single node.
func TestJoinMidMigrationFreezeAndDualWrites(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, "")
	tracker := alwaysUpTracker(pm.Nodes())
	var router *Router
	f := NewFrontend(pm, c.clients(), FrontendConfig{})

	cut := len(events) / 2
	rest := events[cut:]

	// The hook drives traffic into the migration window from the
	// coordinator's own goroutine (the send contract is single-goroutine):
	// one probe against a frozen partition, then the whole remaining
	// stream between the last cutover and activation.
	var frozenProbe *telemetry.Envelope
	probedFrozen, sentRest := false, false
	hook := func(s HandoffStep) error {
		switch s.Phase {
		case "rebuild":
			if probedFrozen {
				return nil
			}
			for i := range rest {
				if rest[i].Key().ShardOf(16) == s.Partition {
					if router.Send(rest[i]) {
						t.Errorf("send to frozen partition %d was acked", s.Partition)
					}
					frozenProbe = &rest[i]
					probedFrozen = true
					break
				}
			}
		case "activate":
			for i := range rest {
				if frozenProbe != nil && &rest[i] == frozenProbe {
					continue // resent separately below, after the freeze probe failed
				}
				if !router.Send(rest[i]) {
					t.Errorf("mid-migration send refused after cutover")
				}
			}
			sentRest = true
		}
		return nil
	}
	mig := newTestMigrator(c, pm, tracker, hook)
	router = NewRouter(pm, tracker, c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	})

	if sent := router.SendAll(events[:cut]); sent != cut {
		t.Fatalf("pre-join replay delivered %d of %d", sent, cut)
	}
	c.add("n3")
	f.AddClient("n3", liveNode{c: c, node: "n3"})
	if _, err := mig.Join(ctx, "n3", testAdmin{c: c, node: "n3"}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !probedFrozen || !sentRest {
		t.Fatalf("migration window not exercised: frozen=%v rest=%v", probedFrozen, sentRest)
	}
	// The refused envelope retries after the migration — a fresh sequence
	// number, folded exactly once.
	if frozenProbe != nil && !router.Send(*frozenProbe) {
		t.Fatal("post-migration resend refused")
	}
	c.flushAll()

	st := router.Stats()
	if st.Frozen == 0 {
		t.Fatalf("freeze refusal not observed: %+v", st)
	}
	if st.DualWrites == 0 {
		t.Fatalf("dual-write phase not observed: %+v", st)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("mid-migration traffic diverged from single-node replay")
	}
}

// TestHandoffKillGainingRollsBackThenRetryConverges: the gaining node is
// hard-killed mid-transfer (seeded handoff fault). The migration must roll
// back — the cluster keeps answering on the old epoch, byte-identical,
// nothing partial — and a retried join after recovery must converge.
func TestHandoffKillGainingRollsBackThenRetryConverges(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, t.TempDir())
	tracker := alwaysUpTracker(pm.Nodes())
	router := NewRouter(pm, tracker, c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
	})
	f := NewFrontend(pm, c.clients(), FrontendConfig{})

	inj := faultinject.NewHandoff(&scenario.FaultSpec{HandoffKillGaining: 1, HandoffSpan: 64}, sp.Seed, faultinject.HandoffHooks{
		Kill:    func(node string) { c.crash(node) },
		Recover: func(node string) { c.recover(node) },
	})
	chaos := true
	mig := newTestMigrator(c, pm, tracker, func(s HandoffStep) error {
		if !chaos {
			return nil
		}
		return inj.Step(s.Phase, s.Partition, s.Source, s.Dest)
	})

	if sent := router.SendAll(events); sent != len(events) {
		t.Fatalf("replay delivered %d of %d", sent, len(events))
	}
	c.flushAll()

	c.add("n3")
	f.AddClient("n3", liveNode{c: c, node: "n3"})
	if _, err := mig.Join(ctx, "n3", testAdmin{c: c, node: "n3"}); err == nil {
		t.Fatal("join with the gaining node killed mid-transfer must fail")
	}
	if st := inj.Stats(); st.Kills == 0 {
		t.Fatalf("no kill injected: %+v", st)
	}
	// Rolled back: old epoch, old membership, complete answers.
	if pm.Epoch() != 1 || pm.Pending() != nil {
		t.Fatalf("rollback left epoch=%d pending=%v", pm.Epoch(), pm.Pending())
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("rolled-back cluster diverged from single-node replay")
	}

	// Recover the victim and retry: the join is idempotent — the retry
	// rebuilds the destination from scratch and converges.
	inj.RecoverAll()
	chaos = false
	if _, err := mig.Join(ctx, "n3", testAdmin{c: c, node: "n3"}); err != nil {
		t.Fatalf("retried join: %v", err)
	}
	if pm.Epoch() != 2 || len(pm.OwnedBy("n3")) != 4 {
		t.Fatalf("retried join state: epoch=%d owned=%v", pm.Epoch(), pm.OwnedBy("n3"))
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-retry cluster diverged from single-node replay")
	}
}

// TestHandoffCrashRecoverRetryIsIdempotent: the gaining node already holds
// a stale partial copy of a moving partition (a previous attempt the
// coordinator lost track of), and crashes-then-recovers durably mid-
// migration. The retry must rebuild drop-then-absorb — wiping both the
// pollution and whatever the crash left — and converge byte-identically,
// never double-counting.
func TestHandoffCrashRecoverRetryIsIdempotent(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, t.TempDir())
	tracker := alwaysUpTracker(pm.Nodes())
	router := NewRouter(pm, tracker, c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
	})
	f := NewFrontend(pm, c.clients(), FrontendConfig{})

	if sent := router.SendAll(events); sent != len(events) {
		t.Fatalf("replay delivered %d of %d", sent, len(events))
	}
	c.flushAll()

	c.add("n3")
	f.AddClient("n3", liveNode{c: c, node: "n3"})

	// Pollute: stage one moving partition's full pages onto n3 as if an
	// earlier attempt had absorbed them and then been forgotten.
	next, err := Rebalance(pm.Current(), []string{"n0", "n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	moves := Moves(pm.Current(), next)
	if len(moves) == 0 {
		t.Fatal("no moves planned")
	}
	polluted := moves[0].Partition
	pages, err := c.get(moves[0].From).PartitionPages(polluted, 16)
	if err != nil || len(pages) == 0 {
		t.Fatalf("cutting pollution pages: %v (%d pages)", err, len(pages))
	}
	if _, err := c.get("n3").AbsorbPages(pages); err != nil {
		t.Fatalf("staging pollution: %v", err)
	}

	// One crash-recover fault at the first rebuild step, through the
	// injector; the recovered node keeps its durable (polluted) state.
	inj := faultinject.NewHandoff(&scenario.FaultSpec{HandoffCrashRecover: 1}, sp.Seed, faultinject.HandoffHooks{
		CrashRecover: func(node string) { c.crash(node); c.recover(node) },
	})
	fired := false
	mig := newTestMigrator(c, pm, tracker, func(s HandoffStep) error {
		if s.Phase != "rebuild" || fired {
			return nil
		}
		fired = true
		return inj.Step(s.Phase, s.Partition, s.Source, s.Dest)
	})

	if _, err := mig.Join(ctx, "n3", testAdmin{c: c, node: "n3"}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if st := inj.Stats(); st.CrashRecovers != 1 {
		t.Fatalf("crash-recover not injected: %+v", st)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("crash-recover retry double-counted or lost data")
	}
	// And the whole thing is durable: kill every member, recover, re-check.
	for _, n := range pm.Nodes() {
		c.crash(n)
		c.recover(n)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-recovery answers diverged")
	}
}

// TestHandoffPartitionSourceRollsBack: the coordinator loses the losing
// owner mid-handoff. The migration rolls back (old epoch keeps serving,
// complete answers), and a retried join after the link heals converges.
func TestHandoffPartitionSourceRollsBack(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, "")
	tracker := alwaysUpTracker(pm.Nodes())
	router := NewRouter(pm, tracker, c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
	})
	f := NewFrontend(pm, c.clients(), FrontendConfig{})
	inj := faultinject.NewHandoff(&scenario.FaultSpec{HandoffPartitionSource: 1, HandoffSpan: 64}, sp.Seed, faultinject.HandoffHooks{})
	chaos := true
	mig := newTestMigrator(c, pm, tracker, func(s HandoffStep) error {
		if !chaos {
			return nil
		}
		return inj.Step(s.Phase, s.Partition, s.Source, s.Dest)
	})

	if sent := router.SendAll(events); sent != len(events) {
		t.Fatalf("replay delivered %d of %d", sent, len(events))
	}
	c.flushAll()
	c.add("n3")
	f.AddClient("n3", liveNode{c: c, node: "n3"})

	if _, err := mig.Join(ctx, "n3", testAdmin{c: c, node: "n3"}); err == nil {
		t.Fatal("join with the source partitioned away must fail")
	}
	if st := inj.Stats(); st.Partitions == 0 {
		t.Fatalf("no source partition injected: %+v", st)
	}
	if pm.Epoch() != 1 {
		t.Fatalf("epoch advanced despite rollback: %d", pm.Epoch())
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("rolled-back cluster diverged from single-node replay")
	}

	inj.RecoverAll()
	chaos = false
	if _, err := mig.Join(ctx, "n3", testAdmin{c: c, node: "n3"}); err != nil {
		t.Fatalf("retried join: %v", err)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-retry cluster diverged from single-node replay")
	}
}

// TestReplicaCatchUpAfterMarkdown is the RF2 re-sync pin: the owner of a
// partition set is marked down for exactly one rollup window, its traffic
// fails over to replicas (window-aligned divergence), and after CatchUp
// consolidates each partition back onto its owner — rebuilding the owner
// from its own durable state plus the replica's slice — the replicas are
// empty, the answers are byte-identical to a single node, and the result
// survives crash-recovery of every member.
func TestReplicaCatchUpAfterMarkdown(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()
	const winMs = int64(60_000) // telemetry.Config.Window default

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	c := newTestCluster(t, pm, t.TempDir())
	f := NewFrontend(pm, c.clients(), FrontendConfig{})

	// Pick the markdown window: the median distinct rollup window in the
	// stream, so traffic exists on both sides of it.
	seen := map[int64]bool{}
	var windows []int64
	for _, e := range events {
		w := e.TS / winMs
		if !seen[w] {
			seen[w] = true
			windows = append(windows, w)
		}
	}
	if len(windows) < 3 {
		t.Fatalf("scenario too narrow: %d windows", len(windows))
	}
	markdown := windows[len(windows)/2]

	const victim = "n1"
	ownerDown := false
	tracker := NewHealthTracker(pm.Nodes(), func(node string) ProbeResult {
		return ProbeResult{Reachable: !(ownerDown && node == victim)}
	}, HealthConfig{DownAfter: 1, UpAfter: 1})
	router := NewRouter(pm, tracker, c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
	})

	// Window-aligned markdown: the victim is down for every event of the
	// markdown window and up for every other, so each (key, window) slice
	// lands wholly on one node — owner or failover replica, never split.
	for _, e := range events {
		down := e.TS/winMs == markdown
		if down != ownerDown {
			ownerDown = down
			tracker.ProbeOnce()
		}
		if !router.Send(e) {
			t.Fatal("send refused despite live failover target")
		}
	}
	c.flushAll()
	if st := router.Stats(); st.FailedOver == 0 {
		t.Fatalf("markdown never failed over: %+v", st)
	}

	// Divergence is real: some replica holds a failover slice for a
	// victim-owned partition — and the merged answer is already complete.
	diverged := 0
	for _, p := range pm.OwnedBy(victim) {
		r, _ := pm.Replica(p)
		if pages, err := c.get(r).PartitionPages(p, 16); err == nil && len(pages) > 0 {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("no replica diverged — markdown window carried no victim traffic")
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("pre-catch-up merged answers diverged from single node")
	}

	// Re-sync: consolidate every victim partition back onto its owner.
	mig := newTestMigrator(c, pm, tracker, nil)
	for _, p := range pm.OwnedBy(victim) {
		if err := mig.CatchUp(ctx, p); err != nil {
			t.Fatalf("CatchUp(%d): %v", p, err)
		}
	}
	if mg := pm.Migrating(); mg != nil {
		t.Fatalf("catch-up left suspects: %v", mg)
	}
	for _, p := range pm.OwnedBy(victim) {
		r, _ := pm.Replica(p)
		if pages, err := c.get(r).PartitionPages(p, 16); err != nil || len(pages) != 0 {
			t.Fatalf("replica %s still holds %d pages of partition %d (err %v)", r, len(pages), p, err)
		}
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-catch-up answers diverged from single node")
	}

	// Durability: the consolidation went through WAL control records, so a
	// full crash-recovery cycle preserves it.
	for _, n := range pm.Nodes() {
		c.crash(n)
		c.recover(n)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-recovery answers diverged")
	}
}

// TestCatchUpSuspectThenSettle: when the replica's post-merge drop fails,
// the partition is marked suspect — queries exclude the stale copy (no
// double count) and disclose partiality — until Settle retries the drop.
func TestCatchUpSuspectThenSettle(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()
	const winMs = int64(60_000)

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	c := newTestCluster(t, pm, "")
	f := NewFrontend(pm, c.clients(), FrontendConfig{})

	const victim = "n0"
	ownerDown := false
	tracker := NewHealthTracker(pm.Nodes(), func(node string) ProbeResult {
		return ProbeResult{Reachable: !(ownerDown && node == victim)}
	}, HealthConfig{DownAfter: 1, UpAfter: 1})
	router := NewRouter(pm, tracker, c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
	})
	seen := map[int64]bool{}
	var windows []int64
	for _, e := range events {
		if w := e.TS / winMs; !seen[w] {
			seen[w] = true
			windows = append(windows, w)
		}
	}
	markdown := windows[len(windows)/2]
	for _, e := range events {
		down := e.TS/winMs == markdown
		if down != ownerDown {
			ownerDown = down
			tracker.ProbeOnce()
		}
		router.Send(e)
	}
	c.flushAll()

	// Find a diverged partition, then catch it up with the stale drop
	// failing (hook error at drop_stale).
	target := -1
	for _, p := range pm.OwnedBy(victim) {
		r, _ := pm.Replica(p)
		if pages, _ := c.get(r).PartitionPages(p, 16); len(pages) > 0 {
			target = p
			break
		}
	}
	if target < 0 {
		t.Fatal("no diverged partition")
	}
	failDrops := true
	mig := newTestMigrator(c, pm, tracker, func(s HandoffStep) error {
		if failDrops && s.Phase == "drop_stale" {
			return fmt.Errorf("injected drop failure")
		}
		return nil
	})
	if err := mig.CatchUp(ctx, target); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	replica, _ := pm.Replica(target)
	if sus := pm.Suspects(); sus[target] != replica {
		t.Fatalf("suspects = %v, want %d→%s", sus, target, replica)
	}

	// Suspect contract: the stale copy is excluded (answers correct, not
	// doubled) and the query discloses partiality naming the partition.
	res, err := f.Query(ctx, fingerprintSpecs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.MigratingPartitions) != 1 || res.MigratingPartitions[0] != target {
		t.Fatalf("suspect query: partial=%v migrating=%v", res.Partial, res.MigratingPartitions)
	}

	failDrops = false
	if still := mig.Settle(ctx); still != nil {
		t.Fatalf("Settle left suspects: %v", still)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-settle answers diverged from single node")
	}
}

// TestMigratorValidation pins the admission guards.
func TestMigratorValidation(t *testing.T) {
	ctx := context.Background()
	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, "")
	mig := newTestMigrator(c, pm, alwaysUpTracker(pm.Nodes()), nil)

	if _, err := mig.Join(ctx, "n1", testAdmin{c: c, node: "n1"}); err == nil {
		t.Fatal("joining an existing member must error")
	}
	if _, err := mig.Join(ctx, "n9", nil); err == nil {
		t.Fatal("joining with no admin transport must error")
	}
	if _, err := mig.Leave(ctx, "ghost"); err == nil {
		t.Fatal("leaving a non-member must error")
	}
	if _, err := mig.Drain(ctx, "ghost"); err == nil {
		t.Fatal("draining a non-member must error")
	}
	if err := mig.CatchUp(ctx, 3); err == nil {
		t.Fatal("catch-up under RF1 must error")
	}
	pm2 := mustMap(t, MapConfig{Partitions: 8, Nodes: []string{"a", "b"}, ReplicationFactor: 2})
	c2 := newTestCluster(t, pm2, "")
	mig2 := newTestMigrator(c2, pm2, alwaysUpTracker(pm2.Nodes()), nil)
	if err := mig2.CatchUp(ctx, 99); err == nil {
		t.Fatal("catch-up of an out-of-range partition must error")
	}
}
