package cluster

import (
	"testing"
	"time"

	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
)

// clusterEnv builds a valid envelope for the given key dimensions.
func clusterEnv(metric, region, net string, v float64) telemetry.Envelope {
	return telemetry.Envelope{
		V: telemetry.SchemaVersion, TS: 1700000000000, Kind: telemetry.KindPing,
		Metric: metric, User: 1, Region: region, Net: net, Value: v,
	}
}

// keyOwnedBy finds a key whose partition the given node owns — chaos and
// routing tests need traffic pinned to a specific target.
func keyOwnedBy(t *testing.T, m *PartitionMap, node string) telemetry.Envelope {
	t.Helper()
	regions := []string{"Beijing", "Shanghai", "Shenzhen", "Chengdu", "Wuhan", "Xian", "Tianjin", "Nanjing"}
	nets := []string{"WiFi", "5G", "4G", "Ethernet"}
	for _, r := range regions {
		for _, n := range nets {
			e := clusterEnv("rtt_ms", r, n, 10)
			if m.Owner(m.PartitionOf(e.Key())) == node {
				return e
			}
		}
	}
	t.Fatalf("no sample key owned by %s", node)
	return telemetry.Envelope{}
}

// routerHarness wires a Router over a recording in-memory transport and a
// scripted health tracker.
type routerHarness struct {
	deliveries map[string][]telemetry.Envelope
	refuse     map[string]int // refuse the next N sends to a node
	prober     *scriptedProber
	health     *HealthTracker
	router     *Router
}

func newRouterHarness(t *testing.T, cfg MapConfig) *routerHarness {
	t.Helper()
	m := mustMap(t, cfg)
	h := &routerHarness{deliveries: map[string][]telemetry.Envelope{}, refuse: map[string]int{}}
	h.prober = &scriptedProber{res: map[string]ProbeResult{}}
	for _, n := range cfg.Nodes {
		h.prober.res[n] = ProbeResult{Reachable: true}
	}
	h.health = NewHealthTracker(cfg.Nodes, h.prober.probe, HealthConfig{DownAfter: 3})
	transport := func(node string, e telemetry.Envelope) bool {
		if h.refuse[node] > 0 {
			h.refuse[node]--
			return false
		}
		h.deliveries[node] = append(h.deliveries[node], e)
		return true
	}
	h.router = NewRouter(m, h.health, transport, rng.New(7), RouterConfig{
		Retry: telemetry.RetryConfig{MaxAttempts: 4, Sleep: func(time.Duration) {}},
	})
	return h
}

// markDown drives the tracker until a node is Down.
func (h *routerHarness) markDown(node string) {
	h.prober.res[node] = ProbeResult{}
	for i := 0; i < 3; i++ {
		h.health.ProbeOnce()
	}
}

func TestRouterSendsToOwner(t *testing.T) {
	cfg := MapConfig{Partitions: 8, Nodes: []string{"n0", "n1"}, ReplicationFactor: 2}
	h := newRouterHarness(t, cfg)
	m := h.router.pm
	e := keyOwnedBy(t, m, "n1")
	if !h.router.Send(e) {
		t.Fatal("send failed")
	}
	if len(h.deliveries["n1"]) != 1 || len(h.deliveries["n0"]) != 0 {
		t.Fatalf("deliveries: n0=%d n1=%d", len(h.deliveries["n0"]), len(h.deliveries["n1"]))
	}
	st := h.router.Stats()
	if st.Routed != 1 || st.FailedOver != 0 || st.Unroutable != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := h.deliveries["n1"][0].Seq; got != 1 {
		t.Fatalf("routed envelope seq = %d, want 1 (retry client numbering)", got)
	}
}

// TestRouterTransientFailureRetriesOwner: a failed send against an
// up-marked owner is retried against the owner, never failed over — only
// the health state machine moves a partition's traffic.
func TestRouterTransientFailureRetriesOwner(t *testing.T) {
	cfg := MapConfig{Partitions: 8, Nodes: []string{"n0", "n1"}, ReplicationFactor: 2}
	h := newRouterHarness(t, cfg)
	e := keyOwnedBy(t, h.router.pm, "n0")
	h.refuse["n0"] = 2
	if !h.router.Send(e) {
		t.Fatal("send failed despite owner recovering")
	}
	if len(h.deliveries["n1"]) != 0 {
		t.Fatal("transient owner failure leaked to the replica")
	}
	st := h.router.Stats()
	if st.Routed != 1 || st.FailedOver != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Client.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Client.Retries)
	}
}

// TestRouterFailsOverWhenOwnerDown: a down-marked owner diverts the
// partition's writes to the replica.
func TestRouterFailsOverWhenOwnerDown(t *testing.T) {
	cfg := MapConfig{Partitions: 8, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2}
	h := newRouterHarness(t, cfg)
	m := h.router.pm
	e := keyOwnedBy(t, m, "n0")
	p := m.PartitionOf(e.Key())
	replica, _ := m.Replica(p)

	h.markDown("n0")
	if !h.router.Send(e) {
		t.Fatal("failover send failed")
	}
	if len(h.deliveries["n0"]) != 0 {
		t.Fatal("delivered to a down owner")
	}
	if len(h.deliveries[replica]) != 1 {
		t.Fatalf("replica %s got %d deliveries", replica, len(h.deliveries[replica]))
	}
	st := h.router.Stats()
	if st.Routed != 0 || st.FailedOver != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRouterUnroutableWithoutReplica: RF1 + down owner = bounded retries,
// then a clean failure the caller can collect and resend after recovery.
func TestRouterUnroutableWithoutReplica(t *testing.T) {
	cfg := MapConfig{Partitions: 8, Nodes: []string{"n0", "n1"}}
	h := newRouterHarness(t, cfg)
	e := keyOwnedBy(t, h.router.pm, "n0")
	h.markDown("n0")
	if h.router.Send(e) {
		t.Fatal("send succeeded with owner down and no replica")
	}
	if len(h.deliveries["n0"])+len(h.deliveries["n1"]) != 0 {
		t.Fatal("unroutable envelope delivered somewhere")
	}
	st := h.router.Stats()
	if st.Unroutable != 4 { // one per attempt
		t.Fatalf("unroutable = %d, want 4", st.Unroutable)
	}
	if st.Client.Failed != 1 {
		t.Fatalf("client stats = %+v", st.Client)
	}

	// After recovery the same stream resumes and the resend lands.
	h.prober.res["n0"] = ProbeResult{Reachable: true}
	h.health.ProbeOnce()
	h.health.ProbeOnce()
	if !h.router.Send(e) {
		t.Fatal("resend after recovery failed")
	}
	if len(h.deliveries["n0"]) != 1 {
		t.Fatalf("owner got %d deliveries after recovery", len(h.deliveries["n0"]))
	}
}

// TestRouterFailoverSkipsDownReplica: both copies down → unroutable, even
// under RF2.
func TestRouterFailoverSkipsDownReplica(t *testing.T) {
	cfg := MapConfig{Partitions: 8, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2}
	h := newRouterHarness(t, cfg)
	m := h.router.pm
	e := keyOwnedBy(t, m, "n0")
	replica, _ := m.Replica(m.PartitionOf(e.Key()))
	h.markDown("n0")
	h.markDown(replica)
	if h.router.Send(e) {
		t.Fatal("send succeeded with owner and replica down")
	}
	if st := h.router.Stats(); st.Unroutable == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
