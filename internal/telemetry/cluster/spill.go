package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"edgescope/internal/telemetry"
)

// Coordinator-side handoff spills. A partition rebuild is destructive at
// its destination — DropPartition durably deletes whatever the node holds
// before the replacement cut is absorbed — and for a destination that
// already held the partition (a consolidating owner, a promoted replica,
// a catch-up owner) the replacement's only other copy lives in this
// coordinator's memory during that window. When MigratorConfig.SpillDir is
// set, the destination's own pre-handoff cut is persisted here before the
// first drop, and cleared once the staged copy is safe: the epoch
// activated, the catch-up merge became durable, or the restore landed. A
// coordinator that crashes inside the window finds the spill at the next
// boot and RecoverSpills puts the destination back to its pre-handoff
// state — the state consistent with the epoch the cluster resumed at.

// spillRecord is one partition's persisted restore point.
type spillRecord struct {
	// Epoch is the epoch the interrupted transition was migrating TO. A
	// spill found while the map is already at (or past) this epoch is
	// stale — the transition activated, the staged copy is live — and is
	// deleted instead of restored.
	Epoch     uint64 `json:"epoch"`
	Partition int    `json:"partition"`
	Of        int    `json:"of"`
	Dst       string `json:"dst"`
	// Own is the destination's own pre-handoff page cut; empty when the
	// destination held nothing (a fresh joiner), in which case restoring
	// is just the drop.
	Own []telemetry.SketchPage `json:"own,omitempty"`
}

// spillPath names one partition's spill file.
func (m *Migrator) spillPath(p int) string {
	return filepath.Join(m.cfg.SpillDir, fmt.Sprintf("spill-p%d.json", p))
}

// spillEpoch resolves the epoch a spill written right now should record:
// the pending epoch when a migration is in flight, otherwise (catch-up,
// which moves data within an epoch) the first epoch that does not exist
// yet — either way, the smallest epoch whose presence in the map proves
// the spilled rebuild completed.
func (m *Migrator) spillEpoch() uint64 {
	if pend := m.pm.Pending(); pend != nil {
		return pend.Epoch
	}
	return m.pm.Epoch() + 1
}

// writeSpill persists a partition's restore point before its destructive
// rebuild: temp file, fsync, rename — a torn write can only lose the temp.
// A no-op when SpillDir is unset.
func (m *Migrator) writeSpill(pl partPlan, own []telemetry.SketchPage) error {
	if m.cfg.SpillDir == "" {
		return nil
	}
	if err := os.MkdirAll(m.cfg.SpillDir, 0o755); err != nil {
		return err
	}
	rec := spillRecord{
		Epoch:     m.spillEpoch(),
		Partition: pl.p,
		Of:        m.pm.Partitions(),
		Dst:       pl.dst,
		Own:       own,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(m.cfg.SpillDir, "spill-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), m.spillPath(pl.p))
}

// clearSpill removes a partition's spill once its staged copy is safe.
func (m *Migrator) clearSpill(p int) {
	if m.cfg.SpillDir == "" {
		return
	}
	_ = os.Remove(m.spillPath(p))
}

// RecoverSpills restores the destinations an interrupted coordinator left
// mid-rebuild: for every spill whose transition never activated, the
// destination's copy is dropped and its own pre-handoff cut re-absorbed —
// the state consistent with the epoch the cluster is serving. Stale spills
// (their epoch activated before the crash) are deleted untouched. Returns
// the partitions restored; the error aggregates partitions whose
// destination could not be repaired, their spills kept for a retry.
// Call it at coordinator boot, before serving admin traffic; migrations
// and catch-ups also refuse to start over an unrecoverable spill.
func (m *Migrator) RecoverSpills(ctx context.Context) ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoverSpillsList(ctx)
}

// recoverSpills is the callers-hold-m.mu form used by migrate and CatchUp.
func (m *Migrator) recoverSpills(ctx context.Context) error {
	_, err := m.recoverSpillsList(ctx)
	return err
}

func (m *Migrator) recoverSpillsList(ctx context.Context) ([]int, error) {
	if m.cfg.SpillDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(m.cfg.SpillDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var restored []int
	var failures []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "spill-p") || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(m.cfg.SpillDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		var rec spillRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if m.pm.Epoch() >= rec.Epoch {
			// The transition this spill guarded activated: the staged copy
			// is the partition's live truth, the restore point is obsolete.
			_ = os.Remove(path)
			continue
		}
		if rec.Of != m.pm.Partitions() {
			failures = append(failures, fmt.Sprintf("%s: partition split %d does not match map's %d", name, rec.Of, m.pm.Partitions()))
			continue
		}
		pl := partPlan{p: rec.Partition, dst: rec.Dst}
		m.restoreDst(ctx, pl, rec.Own)
		if _, err := os.Stat(m.spillPath(rec.Partition)); err == nil {
			// restoreDst clears the spill only when the repair lands; the
			// file surviving means the destination is still broken.
			failures = append(failures, fmt.Sprintf("partition %d at %q not restored", rec.Partition, rec.Dst))
			continue
		}
		restored = append(restored, rec.Partition)
	}
	sort.Ints(restored)
	if len(failures) > 0 {
		return restored, fmt.Errorf("cluster: spill recovery incomplete: %s", strings.Join(failures, "; "))
	}
	return restored, nil
}
