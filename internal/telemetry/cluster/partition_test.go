package cluster

import (
	"reflect"
	"testing"

	"edgescope/internal/telemetry"
)

func mustMap(t *testing.T, cfg MapConfig) *PartitionMap {
	t.Helper()
	m, err := NewMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMapValidation(t *testing.T) {
	bad := []MapConfig{
		{},                          // no nodes
		{Nodes: []string{"a", ""}},  // empty id
		{Nodes: []string{"a", "a"}}, // duplicate id
		{Nodes: []string{"a"}, ReplicationFactor: 2},      // RF2 needs 2 nodes
		{Nodes: []string{"a", "b"}, ReplicationFactor: 3}, // unsupported RF
	}
	for i, cfg := range bad {
		if _, err := NewMap(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	m := mustMap(t, MapConfig{Nodes: []string{"a", "b"}})
	if got := m.Partitions(); got != DefaultPartitions {
		t.Fatalf("default partitions = %d", got)
	}
	if got := m.Config().ReplicationFactor; got != 1 {
		t.Fatalf("default replication factor = %d", got)
	}
}

// TestPartitionOfMatchesShardHash: the key→partition map is the pipeline's
// stable FNV-1a shard hash — the property that lets every router, node and
// replay agree with no coordination.
func TestPartitionOfMatchesShardHash(t *testing.T) {
	m := mustMap(t, MapConfig{Partitions: 8, Nodes: []string{"a", "b", "c"}})
	keys := []telemetry.Key{
		{Metric: "rtt_ms", Region: "Beijing", Net: "WiFi"},
		{Metric: "rtt_ms", Region: "Shanghai", Net: "5G"},
		{Metric: "hop_count", Region: "Beijing", Net: "WiFi"},
	}
	for _, k := range keys {
		if got, want := m.PartitionOf(k), k.ShardOf(8); got != want {
			t.Fatalf("PartitionOf(%v) = %d, ShardOf = %d", k, got, want)
		}
	}
}

// TestPlacementCoversEveryPartition: owner sets partition the whole space
// disjointly; replicas are distinct from owners.
func TestPlacementCoversEveryPartition(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	m := mustMap(t, MapConfig{Partitions: 16, Nodes: nodes, ReplicationFactor: 2})
	seen := map[int]string{}
	for _, n := range nodes {
		for _, p := range m.OwnedBy(n) {
			if prev, dup := seen[p]; dup {
				t.Fatalf("partition %d owned by %s and %s", p, prev, n)
			}
			seen[p] = n
			if m.Owner(p) != n {
				t.Fatalf("Owner(%d) = %s, OwnedBy says %s", p, m.Owner(p), n)
			}
		}
	}
	if len(seen) != 16 {
		t.Fatalf("owners cover %d of 16 partitions", len(seen))
	}
	for p := 0; p < 16; p++ {
		rep, ok := m.Replica(p)
		if !ok {
			t.Fatalf("RF2 map has no replica for partition %d", p)
		}
		if rep == m.Owner(p) {
			t.Fatalf("partition %d replica == owner (%s)", p, rep)
		}
	}
	if m.OwnedBy("stranger") != nil || m.ReplicatedBy("stranger") != nil {
		t.Fatal("unknown node assigned partitions")
	}
}

func TestReplicaAbsentUnderRF1(t *testing.T) {
	m := mustMap(t, MapConfig{Partitions: 4, Nodes: []string{"a", "b"}})
	if _, ok := m.Replica(0); ok {
		t.Fatal("RF1 map produced a replica")
	}
	if m.ReplicatedBy("a") != nil {
		t.Fatal("RF1 map reports replicated partitions")
	}
}

func TestNodeInfoDescribesPlacement(t *testing.T) {
	m := mustMap(t, MapConfig{Partitions: 6, Nodes: []string{"a", "b", "c"}, ReplicationFactor: 2})
	info := m.NodeInfo("b")
	if info.Role != "node" || info.ID != "b" {
		t.Fatalf("info = %+v", info)
	}
	if !reflect.DeepEqual(info.Partitions, m.OwnedBy("b")) {
		t.Fatalf("Partitions = %v, OwnedBy = %v", info.Partitions, m.OwnedBy("b"))
	}
	if !reflect.DeepEqual(info.Replicates, m.ReplicatedBy("b")) {
		t.Fatalf("Replicates = %v, ReplicatedBy = %v", info.Replicates, m.ReplicatedBy("b"))
	}
}
