package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"edgescope/internal/telemetry"
)

// HTTPNode speaks to one cluster node over its telemetryd HTTP surface:
// POST /ingest for the router, GET /sketches and /keys for the front-end,
// GET /healthz for the prober. It implements NodeClient and supplies the
// Router's per-node Transport leg.
type HTTPNode struct {
	base   string
	client *http.Client
	ingest func(telemetry.Envelope) bool
}

// NewHTTPNode builds a client for one node's base URL (no trailing slash
// needed). client == nil uses http.DefaultClient.
func NewHTTPNode(base string, client *http.Client) *HTTPNode {
	if client == nil {
		client = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	return &HTTPNode{
		base:   base,
		client: client,
		ingest: telemetry.HTTPSender(client, base+"/ingest"),
	}
}

// Ingest delivers one envelope to the node, true when acknowledged —
// telemetry.HTTPSender semantics.
func (n *HTTPNode) Ingest(e telemetry.Envelope) bool { return n.ingest(e) }

// HTTPTransport adapts a set of per-node clients to the Router's Transport.
func HTTPTransport(nodes map[string]*HTTPNode) Transport {
	return func(node string, e telemetry.Envelope) bool {
		n := nodes[node]
		if n == nil {
			return false
		}
		return n.Ingest(e)
	}
}

// Sketches fetches the node's matching rollups: GET /sketches with the
// same query parameters /query takes.
func (n *HTTPNode) Sketches(ctx context.Context, spec telemetry.QuerySpec) (telemetry.SketchPage, error) {
	var page telemetry.SketchPage
	err := n.getJSON(ctx, "/sketches?"+specParams(spec), &page)
	return page, err
}

// Keys fetches the node's key inventory: GET /keys.
func (n *HTTPNode) Keys(ctx context.Context) ([]telemetry.KeyCount, error) {
	var keys []telemetry.KeyCount
	err := n.getJSON(ctx, "/keys", &keys)
	return keys, err
}

// Probe checks the node's /healthz: reachable on any well-formed answer,
// degraded when the node says so itself.
func (n *HTTPNode) Probe() ProbeResult {
	resp, err := n.client.Get(n.base + "/healthz")
	if err != nil {
		return ProbeResult{}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return ProbeResult{}
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return ProbeResult{}
	}
	return ProbeResult{Reachable: true, Degraded: body.Status != "ok"}
}

// HTTPProber builds the health tracker's Prober over per-node clients.
// Unknown node ids probe unreachable.
func HTTPProber(nodes map[string]*HTTPNode) Prober {
	return func(node string) ProbeResult {
		n := nodes[node]
		if n == nil {
			return ProbeResult{}
		}
		return n.Probe()
	}
}

// --- Admin plane (NodeAdmin over HTTP: cmd/telemetryd's /admin/*) ---

// Flush settles the node's queues into rollups: POST /admin/flush.
func (n *HTTPNode) Flush(ctx context.Context) error {
	return n.postJSON(ctx, "/admin/flush", nil, nil)
}

// FreezePartition starts a partition's exact-cut ingest freeze:
// POST /admin/freeze?partition=&of=.
func (n *HTTPNode) FreezePartition(ctx context.Context, p, of int) error {
	return n.postJSON(ctx, "/admin/freeze?"+partParams(p, of), nil, nil)
}

// UnfreezePartition lifts a freeze: POST /admin/unfreeze?partition=&of=.
func (n *HTTPNode) UnfreezePartition(ctx context.Context, p, of int) error {
	return n.postJSON(ctx, "/admin/unfreeze?"+partParams(p, of), nil, nil)
}

// PartitionPages fetches one partition's durable state in sketch-page wire
// form: GET /sketches/partition?partition=&of=.
func (n *HTTPNode) PartitionPages(ctx context.Context, p, of int) ([]telemetry.SketchPage, error) {
	var pages []telemetry.SketchPage
	err := n.getJSON(ctx, "/sketches/partition?"+partParams(p, of), &pages)
	return pages, err
}

// AbsorbPages ships pages into the node's rollups: POST /admin/absorb.
func (n *HTTPNode) AbsorbPages(ctx context.Context, pages []telemetry.SketchPage) (telemetry.AbsorbAck, error) {
	var ack telemetry.AbsorbAck
	err := n.postJSON(ctx, "/admin/absorb", pages, &ack)
	return ack, err
}

// DropPartition removes the node's copy of one partition:
// POST /admin/drop?partition=&of=.
func (n *HTTPNode) DropPartition(ctx context.Context, p, of int) (int, error) {
	var out struct {
		Dropped int `json:"dropped"`
	}
	err := n.postJSON(ctx, "/admin/drop?"+partParams(p, of), nil, &out)
	return out.Dropped, err
}

// PushAssignment installs an activated epoch's table:
// POST /admin/assignment.
func (n *HTTPNode) PushAssignment(ctx context.Context, a Assignment) error {
	return n.postJSON(ctx, "/admin/assignment", a, nil)
}

// partParams encodes the partition selector shared by the admin legs.
func partParams(p, of int) string {
	q := url.Values{}
	q.Set("partition", strconv.Itoa(p))
	q.Set("of", strconv.Itoa(of))
	return q.Encode()
}

// postJSON runs one POST leg: body (when non-nil) is JSON-encoded, the
// answer (when out is non-nil) JSON-decoded; non-2xx is an error.
func (n *HTTPNode) postJSON(ctx context.Context, path string, body, out any) error {
	var rdr io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = strings.NewReader(string(raw))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s%s: %s: %s", n.base, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getJSON runs one GET leg and decodes the JSON answer.
func (n *HTTPNode) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s%s: %s: %s", n.base, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// specParams encodes a QuerySpec as /query-style URL parameters — the
// inverse of telemetryd's spec parsing, shared by /sketches.
func specParams(spec telemetry.QuerySpec) string {
	q := url.Values{}
	q.Set("metric", spec.Metric)
	if spec.Region != "" {
		q.Set("region", spec.Region)
	}
	if spec.Net != "" {
		q.Set("net", spec.Net)
	}
	if !spec.From.IsZero() {
		q.Set("from", spec.From.UTC().Format(time.RFC3339Nano))
	}
	if !spec.To.IsZero() {
		q.Set("to", spec.To.UTC().Format(time.RFC3339Nano))
	}
	if len(spec.Quantiles) > 0 {
		q.Set("q", joinFloats(spec.Quantiles))
	}
	if len(spec.CDFAt) > 0 {
		q.Set("cdf", joinFloats(spec.CDFAt))
	}
	return q.Encode()
}

func joinFloats(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
