package cluster

import (
	"fmt"
	"sort"

	"edgescope/internal/telemetry"
)

// Epoch-versioned partition assignments. An Assignment is the full
// partition → owner (and replica) table at one point in the cluster's
// membership history, stamped with a monotonically increasing epoch. It is
// a value — JSON-serializable, comparable field by field — so the frontend
// can persist it, push it to nodes, and every component can agree on "the
// current epoch" without a coordination service: there is exactly one
// writer of new epochs (the frontend's migrator) and activation is atomic.
//
// Epoch 1 is always InitialAssignment, which reproduces the arithmetic
// round-robin placement the static cluster used (owner = nodes[p%N],
// replica = nodes[(p+1)%N]), so a cluster that never rebalances routes
// exactly as it always did. Later epochs come from Rebalance, which moves
// the minimum number of partitions needed to re-level the cluster.

// Assignment is one epoch's placement table.
type Assignment struct {
	// Epoch versions the table; strictly increasing, starting at 1.
	Epoch uint64 `json:"epoch"`
	// Partitions is the keyspace partition count — immutable across epochs
	// (the key hash depends on it; changing it would remap every key).
	Partitions int `json:"partitions"`
	// ReplicationFactor is 1 or 2, immutable across epochs.
	ReplicationFactor int `json:"replication_factor"`
	// Nodes is the member list in canonical order. Placement ties break by
	// this order, so every component must hold the same list — the
	// assignment itself ships it.
	Nodes []string `json:"nodes"`
	// Owners[p] names the node owning partition p.
	Owners []string `json:"owners"`
	// Replicas[p] names partition p's failover node; empty slice under
	// replication factor 1.
	Replicas []string `json:"replicas,omitempty"`
}

// InitialAssignment is epoch 1 for a validated layout: the arithmetic
// round-robin placement (owner = nodes[p%N], replica = nodes[(p+1)%N]).
func InitialAssignment(cfg MapConfig) Assignment {
	if cfg.Partitions <= 0 {
		cfg.Partitions = DefaultPartitions
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 1
	}
	n := len(cfg.Nodes)
	a := Assignment{
		Epoch:             1,
		Partitions:        cfg.Partitions,
		ReplicationFactor: cfg.ReplicationFactor,
		Nodes:             append([]string(nil), cfg.Nodes...),
		Owners:            make([]string, cfg.Partitions),
	}
	if cfg.ReplicationFactor >= 2 {
		a.Replicas = make([]string, cfg.Partitions)
	}
	for p := 0; p < cfg.Partitions; p++ {
		a.Owners[p] = cfg.Nodes[p%n]
		if a.Replicas != nil {
			a.Replicas[p] = cfg.Nodes[(p+1)%n]
		}
	}
	return a
}

// Validate checks an assignment's internal consistency — the gate a node
// runs before accepting a pushed table.
func (a Assignment) Validate() error {
	if a.Epoch == 0 {
		return fmt.Errorf("cluster: assignment epoch 0")
	}
	if a.Partitions <= 0 {
		return fmt.Errorf("cluster: assignment with %d partitions", a.Partitions)
	}
	if a.ReplicationFactor < 1 || a.ReplicationFactor > 2 {
		return fmt.Errorf("cluster: assignment replication factor %d (supported: 1, 2)", a.ReplicationFactor)
	}
	if len(a.Nodes) == 0 {
		return fmt.Errorf("cluster: assignment with no nodes")
	}
	if a.ReplicationFactor == 2 && len(a.Nodes) < 2 {
		return fmt.Errorf("cluster: replication factor 2 needs >= 2 nodes, have %d", len(a.Nodes))
	}
	members := make(map[string]bool, len(a.Nodes))
	for i, n := range a.Nodes {
		if n == "" {
			return fmt.Errorf("cluster: empty node id at position %d", i)
		}
		if members[n] {
			return fmt.Errorf("cluster: duplicate node id %q", n)
		}
		members[n] = true
	}
	if len(a.Owners) != a.Partitions {
		return fmt.Errorf("cluster: %d owners for %d partitions", len(a.Owners), a.Partitions)
	}
	for p, o := range a.Owners {
		if !members[o] {
			return fmt.Errorf("cluster: partition %d owned by unknown node %q", p, o)
		}
	}
	if a.ReplicationFactor == 2 {
		if len(a.Replicas) != a.Partitions {
			return fmt.Errorf("cluster: %d replicas for %d partitions", len(a.Replicas), a.Partitions)
		}
		for p, r := range a.Replicas {
			if !members[r] {
				return fmt.Errorf("cluster: partition %d replicated by unknown node %q", p, r)
			}
			if r == a.Owners[p] {
				return fmt.Errorf("cluster: partition %d replicated by its own owner %q", p, r)
			}
		}
	} else if len(a.Replicas) != 0 {
		return fmt.Errorf("cluster: replicas listed under replication factor 1")
	}
	return nil
}

// clone deep-copies the assignment (the slices are shared nowhere).
func (a Assignment) clone() Assignment {
	a.Nodes = append([]string(nil), a.Nodes...)
	a.Owners = append([]string(nil), a.Owners...)
	if a.Replicas != nil {
		a.Replicas = append([]string(nil), a.Replicas...)
	}
	return a
}

// Move is one partition changing owners between two epochs.
type Move struct {
	Partition int    `json:"partition"`
	From      string `json:"from"`
	To        string `json:"to"`
}

// Member reports whether a node is in the assignment's member list.
func (a Assignment) Member(node string) bool {
	for _, n := range a.Nodes {
		if n == node {
			return true
		}
	}
	return false
}

// NodeInfo builds the self-describing identity a node surfaces through
// telemetry.Config.Node under this assignment — what PushAssignment
// installs on every member at activation.
func (a Assignment) NodeInfo(node string) *telemetry.NodeInfo {
	info := &telemetry.NodeInfo{Role: "node", ID: node}
	for p, o := range a.Owners {
		if o == node {
			info.Partitions = append(info.Partitions, p)
		}
	}
	for p, r := range a.Replicas {
		if r == node {
			info.Replicates = append(info.Replicates, p)
		}
	}
	return info
}

// Moves lists the owner changes from one assignment to its successor,
// ascending by partition — the handoff work list a migration executes.
func Moves(from, to Assignment) []Move {
	var out []Move
	for p := 0; p < to.Partitions && p < from.Partitions; p++ {
		if from.Owners[p] != to.Owners[p] {
			out = append(out, Move{Partition: p, From: from.Owners[p], To: to.Owners[p]})
		}
	}
	return out
}

// Rebalance computes the next epoch for a new member list, moving as few
// partitions as possible: every partition whose owner survives stays put
// unless its owner is over quota, over-quota owners shed their
// highest-numbered partitions, and the freed pool fills under-quota nodes
// in canonical order. Quotas are ⌊P/N⌋ with the remainder going to the
// first P%N nodes in canonical order — the same totals round-robin
// produces, so a from-scratch Rebalance and InitialAssignment level the
// cluster identically. Replicas are re-derived (next member after the
// owner in canonical order); replica placement needs no data movement —
// replicas hold only failover traffic, which stays queryable wherever it
// landed.
func Rebalance(cur Assignment, nodes []string) (Assignment, error) {
	next, err := rebalance(cur, nodes, "")
	if err != nil {
		return Assignment{}, err
	}
	return next, nil
}

// RebalanceDrain computes the next epoch with one member's quota forced to
// zero — the node stays a member (it can still serve reads while its data
// migrates away) but owns and replicates nothing, so a subsequent
// Rebalance without it moves nothing at all.
func RebalanceDrain(cur Assignment, drain string) (Assignment, error) {
	found := false
	for _, n := range cur.Nodes {
		if n == drain {
			found = true
			break
		}
	}
	if !found {
		return Assignment{}, fmt.Errorf("cluster: drain of non-member %q", drain)
	}
	return rebalance(cur, cur.Nodes, drain)
}

// rebalance is the shared minimal-movement engine. drain, when non-empty,
// names a member whose quota is zero.
func rebalance(cur Assignment, nodes []string, drain string) (Assignment, error) {
	next := Assignment{
		Epoch:             cur.Epoch + 1,
		Partitions:        cur.Partitions,
		ReplicationFactor: cur.ReplicationFactor,
		Nodes:             append([]string(nil), nodes...),
		Owners:            make([]string, cur.Partitions),
	}
	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		if n == "" {
			return Assignment{}, fmt.Errorf("cluster: empty node id at position %d", i)
		}
		if _, dup := index[n]; dup {
			return Assignment{}, fmt.Errorf("cluster: duplicate node id %q", n)
		}
		index[n] = i
	}
	if len(nodes) == 0 {
		return Assignment{}, fmt.Errorf("cluster: rebalance to an empty cluster")
	}
	// Quota-bearing nodes: everyone but the drained member.
	bearing := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != drain {
			bearing = append(bearing, n)
		}
	}
	if len(bearing) == 0 {
		return Assignment{}, fmt.Errorf("cluster: drain of the only node %q", drain)
	}
	if cur.ReplicationFactor == 2 && len(bearing) < 2 {
		return Assignment{}, fmt.Errorf("cluster: replication factor 2 needs >= 2 quota-bearing nodes, have %d", len(bearing))
	}
	// Quotas: ⌊P/N⌋ each, remainder to the first P%N bearing nodes.
	quota := make(map[string]int, len(bearing))
	base, extra := cur.Partitions/len(bearing), cur.Partitions%len(bearing)
	for i, n := range bearing {
		quota[n] = base
		if i < extra {
			quota[n]++
		}
	}
	// Keep surviving owners' partitions where they are, up to quota; owners
	// shed their highest-numbered partitions first (ascending keeps are the
	// deterministic choice).
	owned := make(map[string][]int, len(bearing))
	var pool []int
	for p := 0; p < cur.Partitions; p++ {
		o := cur.Owners[p]
		if _, member := index[o]; member && o != drain {
			owned[o] = append(owned[o], p)
		} else {
			pool = append(pool, p)
		}
	}
	for _, n := range bearing {
		if len(owned[n]) > quota[n] {
			pool = append(pool, owned[n][quota[n]:]...)
			owned[n] = owned[n][:quota[n]]
		}
	}
	sort.Ints(pool)
	// Fill under-quota nodes in canonical order, pool ascending.
	for _, n := range bearing {
		for len(owned[n]) < quota[n] {
			owned[n] = append(owned[n], pool[0])
			pool = pool[1:]
		}
	}
	if len(pool) != 0 {
		return Assignment{}, fmt.Errorf("cluster: rebalance left %d partitions unplaced", len(pool))
	}
	for n, ps := range owned {
		for _, p := range ps {
			next.Owners[p] = n
		}
	}
	// Replicas: the next quota-bearing member after the owner in canonical
	// order — matches InitialAssignment when nothing has moved.
	if cur.ReplicationFactor == 2 {
		next.Replicas = make([]string, cur.Partitions)
		bearingIdx := make(map[string]int, len(bearing))
		for i, n := range bearing {
			bearingIdx[n] = i
		}
		for p := 0; p < cur.Partitions; p++ {
			i := bearingIdx[next.Owners[p]]
			next.Replicas[p] = bearing[(i+1)%len(bearing)]
		}
	}
	if err := next.Validate(); err != nil {
		return Assignment{}, err
	}
	return next, nil
}
