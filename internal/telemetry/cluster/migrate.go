package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"edgescope/internal/telemetry"
)

// The rebalance coordinator. A Migrator turns a membership change
// (join/leave/drain) into an epoch transition executed against live nodes:
//
//	propose   next = Rebalance(cur, members±node); pm.BeginMigration(next)
//	per part  freeze → flush sources → fetch pages → drop dest →
//	          absorb → cutover (dual-epoch writes on)
//	activate  pm.Activate() — routing flips atomically to the new owners
//	settle    drop the stale pre-migration copies on losing nodes
//
// Data moves as sketch pages — the same binary wire format /sketches
// serves — cut under a two-level freeze (router-side refusal plus the
// source ingestor's own partition freeze) so the page cut is exact: every
// acked envelope is either inside the shipped pages or redelivered into
// the dual-write phase, never lost between them. The destination is
// rebuilt drop-then-absorb from coordinator-held pages on every attempt,
// which is what makes a retry after a mid-transfer crash idempotent
// instead of double-counting. Because that rebuild is destructive, a
// destination that already holds the partition (a consolidating owner, a
// promoted replica) is always one of the cut's sources — its own pages go
// back in with everyone else's — and the cut is spilled durably on the
// coordinator (MigratorConfig.SpillDir) before the first drop, so neither
// a failed rebuild nor a coordinator crash between the drop and the
// absorb can orphan the only copy. If a partition's handoff cannot
// complete within the attempt budget, the destination is restored to its
// pre-handoff state and the whole migration rolls back: the pending epoch
// is discarded, freezes lift, and the cluster keeps routing on the old
// epoch exactly as before.

// NodeAdmin is the rebalance control plane's transport to one node:
// LocalAdmin in-process, HTTPAdmin over the wire (cmd/telemetryd's
// /admin/* endpoints) — either optionally wrapped in a fault injector.
type NodeAdmin interface {
	// Flush settles every accepted envelope into queryable rollups (and
	// the WAL), so a page cut taken after it is complete.
	Flush(ctx context.Context) error
	// FreezePartition makes the node refuse ingest for one partition — the
	// source side of the exact cut (telemetry.Ingestor.FreezePartition).
	FreezePartition(ctx context.Context, p, of int) error
	// UnfreezePartition lifts a partition freeze (idempotent).
	UnfreezePartition(ctx context.Context, p, of int) error
	// PartitionPages returns the node's durable state for one partition in
	// sketch-page wire form.
	PartitionPages(ctx context.Context, p, of int) ([]telemetry.SketchPage, error)
	// AbsorbPages folds pages into the node's rollups, durably (WAL
	// control records). The ack reports what was applied.
	AbsorbPages(ctx context.Context, pages []telemetry.SketchPage) (telemetry.AbsorbAck, error)
	// DropPartition removes the node's copy of one partition, durably.
	DropPartition(ctx context.Context, p, of int) (int, error)
	// PushAssignment installs an activated epoch's table on the node, so
	// its /healthz self-description tracks the placement it serves.
	PushAssignment(ctx context.Context, a Assignment) error
}

// LocalAdmin adapts an in-process Ingestor to NodeAdmin — the test and
// benchmark transport. Ing is resolved on every call so a harness that
// crash-recovers a node (swapping the Ingestor) keeps the same admin.
type LocalAdmin struct {
	Node string
	Ing  func() *telemetry.Ingestor
}

func (l LocalAdmin) Flush(context.Context) error {
	l.Ing().Flush()
	return nil
}

func (l LocalAdmin) FreezePartition(_ context.Context, p, of int) error {
	return l.Ing().FreezePartition(p, of)
}

func (l LocalAdmin) UnfreezePartition(_ context.Context, p, of int) error {
	l.Ing().UnfreezePartition(p, of)
	return nil
}

func (l LocalAdmin) PartitionPages(_ context.Context, p, of int) ([]telemetry.SketchPage, error) {
	return l.Ing().PartitionPages(p, of)
}

func (l LocalAdmin) AbsorbPages(_ context.Context, pages []telemetry.SketchPage) (telemetry.AbsorbAck, error) {
	return l.Ing().AbsorbPages(pages)
}

func (l LocalAdmin) DropPartition(_ context.Context, p, of int) (int, error) {
	return l.Ing().DropPartition(p, of)
}

func (l LocalAdmin) PushAssignment(_ context.Context, a Assignment) error {
	l.Ing().SetNodeInfo(a.NodeInfo(l.Node))
	return nil
}

// HandoffStep names one point in a partition's handoff, for fault
// injection and tracing. Phases, in order: "freeze", "flush", "fetch",
// "rebuild" (drop+absorb at the destination), "cutover"; then per
// migration "activate" and per stale copy "drop_stale".
type HandoffStep struct {
	Phase     string
	Partition int
	Source    string
	Dest      string
}

// StepHook intercepts handoff steps. Returning an error fails that step
// exactly as a transport failure would — the attempt retries or the
// migration rolls back. The chaos harness injects handoff-phase faults
// through this seam.
type StepHook func(HandoffStep) error

// MigratorConfig tunes the rebalance coordinator.
type MigratorConfig struct {
	// Attempts bounds per-partition rebuild tries (each a full
	// drop-then-absorb at the destination). Default 3.
	Attempts int
	// SpillDir, when set, persists each partition's fetched page cut to
	// this directory before the destructive rebuild begins, and clears it
	// once the staged copy is safe (epoch activated, or destination
	// restored). A coordinator that crashes mid-rebuild recovers the
	// destinations' pre-handoff state with RecoverSpills at boot. When
	// empty, restore-after-failure still works from the in-memory cut, but
	// a coordinator crash between a drop and its absorb can orphan data.
	SpillDir string
	// Health, when set, gains/loses probed members as the migrator
	// admits/removes them — a joining node must be probed (and start Up)
	// before dual writes can target it.
	Health *HealthTracker
	// Hook, when set, intercepts every handoff step (fault injection).
	Hook StepHook
	// OnActivate, when set, observes each activated epoch — the frontend
	// persists its cluster state here.
	OnActivate func(Assignment)
}

func (c *MigratorConfig) fill() {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
}

// Migrator executes epoch transitions. One migration runs at a time
// (Join/Leave/Drain/CatchUp serialize on an internal mutex); ingest and
// queries keep flowing throughout, per-partition freezes excepted.
type Migrator struct {
	pm  *PartitionMap
	cfg MigratorConfig

	mu sync.Mutex // serializes migrations

	adminMu sync.RWMutex
	admins  map[string]NodeAdmin
}

// NewMigrator builds a coordinator over a partition map and one admin
// transport per current member.
func NewMigrator(pm *PartitionMap, admins map[string]NodeAdmin, cfg MigratorConfig) *Migrator {
	cfg.fill()
	m := &Migrator{pm: pm, cfg: cfg, admins: make(map[string]NodeAdmin, len(admins))}
	for n, a := range admins {
		m.admins[n] = a
	}
	return m
}

// AddAdmin wires (or replaces) a node's admin transport.
func (m *Migrator) AddAdmin(node string, a NodeAdmin) {
	m.adminMu.Lock()
	m.admins[node] = a
	m.adminMu.Unlock()
}

// RemoveAdmin unwires a departed node's admin transport.
func (m *Migrator) RemoveAdmin(node string) {
	m.adminMu.Lock()
	delete(m.admins, node)
	m.adminMu.Unlock()
}

// Admin returns the admin transport wired for a node, if any.
func (m *Migrator) Admin(node string) (NodeAdmin, bool) {
	m.adminMu.RLock()
	defer m.adminMu.RUnlock()
	a, ok := m.admins[node]
	return a, ok
}

// Migrating reports whether a migration is in flight right now.
func (m *Migrator) Migrating() bool {
	if !m.mu.TryLock() {
		return true
	}
	m.mu.Unlock()
	return false
}

// Join admits a new member: wires its admin, computes the minimal-movement
// next epoch, migrates, activates. On failure everything rolls back —
// admin unwired, health untracked, old epoch routing untouched. The
// caller wires the node's query client (Frontend.AddClient) before Join
// so the member is queryable the moment its epoch activates.
func (m *Migrator) Join(ctx context.Context, node string, admin NodeAdmin) (Assignment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.pm.Current()
	if cur.Member(node) {
		return Assignment{}, fmt.Errorf("cluster: %q is already a member", node)
	}
	if admin != nil {
		m.AddAdmin(node, admin)
	}
	if _, ok := m.Admin(node); !ok {
		return Assignment{}, fmt.Errorf("cluster: no admin transport for joining node %q", node)
	}
	next, err := Rebalance(cur, append(append([]string(nil), cur.Nodes...), node))
	if err != nil {
		return Assignment{}, err
	}
	if m.cfg.Health != nil {
		m.cfg.Health.Add(node) // must be probed (and Up) before dual writes target it
	}
	if err := m.migrate(ctx, cur, next); err != nil {
		if m.cfg.Health != nil {
			m.cfg.Health.Remove(node)
		}
		m.RemoveAdmin(node)
		return Assignment{}, err
	}
	return next, nil
}

// Leave removes a member: its partitions hand off to the survivors, the
// epoch activates, and only then is the node unwired. The node's daemon
// can shut down once Leave returns — nothing routes to it anymore.
func (m *Migrator) Leave(ctx context.Context, node string) (Assignment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.pm.Current()
	if !cur.Member(node) {
		return Assignment{}, fmt.Errorf("cluster: %q is not a member", node)
	}
	survivors := make([]string, 0, len(cur.Nodes)-1)
	for _, n := range cur.Nodes {
		if n != node {
			survivors = append(survivors, n)
		}
	}
	next, err := Rebalance(cur, survivors)
	if err != nil {
		return Assignment{}, err
	}
	if err := m.migrate(ctx, cur, next); err != nil {
		return Assignment{}, err
	}
	if m.cfg.Health != nil {
		m.cfg.Health.Remove(node)
	}
	m.RemoveAdmin(node)
	// Any suspect entry pinned on the departed node can never settle (its
	// admin is gone) and no longer needs to: the assignment filter already
	// hides non-member copies from every query.
	m.pm.ClearSuspectsOf(node)
	return next, nil
}

// Drain empties a member without removing it: its quota drops to zero and
// every partition it held hands off, but it stays probed and wired — the
// prelude to a clean Leave, which then moves nothing.
func (m *Migrator) Drain(ctx context.Context, node string) (Assignment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.pm.Current()
	next, err := RebalanceDrain(cur, node)
	if err != nil {
		return Assignment{}, err
	}
	return next, m.migrate(ctx, cur, next)
}

// step runs the fault-injection hook, if any.
func (m *Migrator) step(phase string, p int, src, dst string) error {
	if m.cfg.Hook == nil {
		return nil
	}
	return m.cfg.Hook(HandoffStep{Phase: phase, Partition: p, Source: src, Dest: dst})
}

// partPlan is one partition's work inside a migration: rebuild its data
// at the destination owner from the listed sources' pages. Sources are
// the current owner and — when the slice must consolidate — the current
// replica holding failover traffic that would otherwise strand. The
// rebuild is drop-then-absorb at the destination, so a destination that
// already holds the partition in the current epoch (a consolidating
// owner, a promoted replica) is ALWAYS among the sources: its own pages
// are cut before the drop and re-absorbed with everyone else's, never
// destroyed.
type partPlan struct {
	p        int
	dst      string   // next epoch's owner
	srcOwner string   // current owner ("" when dst == current owner)
	sources  []string // nodes whose pages rebuild dst, canonical order
}

// plan lists the partitions a migration must move, ascending. A partition
// needs work when its owner changes, or when (under replication factor 2)
// its replica changes while holding failover data — the consolidation
// case; replica emptiness is only discoverable at fetch time, so replica
// changes always plan and the rebuild is skipped later if the fetched
// pages turn out empty.
func plan(cur, next Assignment) []partPlan {
	var out []partPlan
	for p := 0; p < cur.Partitions; p++ {
		ownerMoved := cur.Owners[p] != next.Owners[p]
		replicaMoved := cur.ReplicationFactor == 2 && cur.Replicas[p] != next.Replicas[p]
		if !ownerMoved && !replicaMoved {
			continue
		}
		pl := partPlan{p: p, dst: next.Owners[p]}
		if ownerMoved {
			pl.srcOwner = cur.Owners[p]
			pl.sources = append(pl.sources, cur.Owners[p])
		} else {
			// Replica-only move: the destination IS the current owner, and
			// the rebuild drops it first — its live partition must be in the
			// cut or the drop would destroy the only copy.
			pl.sources = append(pl.sources, pl.dst)
		}
		if cur.ReplicationFactor == 2 {
			// The current replica's failover slice must fold into the new
			// owner whenever the partition moves at all — it belongs with
			// the data it shadowed. That includes a promotion (the replica
			// IS the new owner): its own slice is cut into the held pages
			// before the rebuild drops it, so nothing strands.
			if r := cur.Replicas[p]; r != pl.sources[0] {
				pl.sources = append(pl.sources, r)
			}
		}
		out = append(out, pl)
	}
	return out
}

// migrate drives one epoch transition end to end. On error the pending
// epoch is aborted, every completed handoff's destination is restored to
// its pre-handoff state, and the cluster keeps serving the current epoch.
func (m *Migrator) migrate(ctx context.Context, cur, next Assignment) error {
	// An outstanding spill means an earlier rebuild's restore never landed:
	// some destination's durable state is not the current epoch's truth.
	// Repair it first — migrating over it would cut the broken state as a
	// "source" and launder the loss into the new epoch.
	if err := m.recoverSpills(ctx); err != nil {
		return fmt.Errorf("cluster: unrecovered handoff spill blocks migration: %w", err)
	}
	if err := m.pm.BeginMigration(next); err != nil {
		return err
	}
	work := plan(cur, next)
	var done []handoffState
	for _, pl := range work {
		hs, err := m.handoff(ctx, pl)
		if err != nil {
			m.rollback(done)
			return fmt.Errorf("cluster: handoff of partition %d (%s → %s) failed, rolled back to epoch %d: %w",
				pl.p, pl.srcOwner, pl.dst, cur.Epoch, err)
		}
		done = append(done, hs)
	}
	if err := m.step("activate", -1, "", ""); err != nil {
		m.rollback(done)
		return fmt.Errorf("cluster: activation of epoch %d failed, rolled back: %w", next.Epoch, err)
	}
	if _, err := m.pm.Activate(); err != nil {
		m.rollback(done)
		return err
	}
	// The epoch is live: routing, ownership filtering and partiality all
	// flip atomically, and the staged copies are the partitions' truth —
	// their spills are obsolete. What remains is cleanup that can no
	// longer fail the migration — push the table to members, then drop the
	// stale pre-migration copies on losing nodes.
	for _, pl := range work {
		m.clearSpill(pl.p)
	}
	for _, n := range next.Nodes {
		if a, ok := m.Admin(n); ok {
			_ = a.PushAssignment(ctx, next) // best-effort: /healthz self-description only
		}
	}
	if m.cfg.OnActivate != nil {
		m.cfg.OnActivate(next)
	}
	m.dropStale(ctx, next, work)
	return nil
}

// dropStale removes losing nodes' copies of moved partitions after
// activation. A failed drop on a node the new epoch still assigns the
// partition to is marked suspect — the copy would double-count in a
// merge, so queries exclude it and stay partial until Settle drops it. A
// failed drop on an unassigned (or departed) node is harmless: the
// ownership filter already hides the copy.
func (m *Migrator) dropStale(ctx context.Context, next Assignment, work []partPlan) {
	for _, pl := range work {
		for _, src := range pl.sources {
			if src == pl.dst {
				continue
			}
			failed := m.step("drop_stale", pl.p, src, pl.dst) != nil
			if !failed {
				a, ok := m.Admin(src)
				if ok {
					_, err := a.DropPartition(ctx, pl.p, next.Partitions)
					failed = err != nil
				} else {
					failed = true
				}
			}
			if failed && next.Member(src) && assignedIn(next, src, pl.p) {
				m.pm.MarkSuspect(pl.p, src)
			}
		}
	}
}

// assignedIn reports whether an assignment places partition p on node.
func assignedIn(a Assignment, node string, p int) bool {
	if a.Owners[p] == node {
		return true
	}
	return a.ReplicationFactor == 2 && a.Replicas[p] == node
}

// Settle retries the suspect drops a past activation left behind. It
// returns the partitions still suspect afterwards (nil means queries are
// no longer partial on this account).
func (m *Migrator) Settle(ctx context.Context) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	parts := m.pm.Partitions()
	cur := m.pm.Current()
	for p, node := range m.pm.Suspects() {
		if !cur.Member(node) {
			// The holder left the membership: the assignment filter hides
			// non-member copies already, and there is no transport left to
			// drop through — the entry would pin partiality forever.
			m.pm.ClearSuspect(p)
			continue
		}
		a, ok := m.Admin(node)
		if !ok {
			continue
		}
		if _, err := a.DropPartition(ctx, p, parts); err == nil {
			m.pm.ClearSuspect(p)
		}
	}
	var still []int
	for p := range m.pm.Suspects() {
		still = append(still, p)
	}
	sort.Ints(still)
	return still
}

// handoffState records what one partition's handoff did to its
// destination, so a later rollback can undo it: whether the destructive
// rebuild was reached, and the destination's own pre-handoff page cut
// (non-empty exactly when the destination already held the partition —
// a consolidating owner or a promoted replica).
type handoffState struct {
	pl      partPlan
	touched bool // a drop was issued at the destination
	own     []telemetry.SketchPage
}

// handoff rebuilds one partition at its destination. The freeze and the
// page fetch happen once; the destination rebuild (drop, then absorb the
// held pages) retries up to the attempt budget — drop-then-rebuild from
// an immutable cut is what makes a retry after a destination crash
// idempotent. Before the first drop the cut is spilled durably (when
// configured), so a coordinator crash mid-rebuild is recoverable. Any
// failure restores the destination to its pre-handoff state, unfreezes
// and reports; the caller rolls the migration back.
func (m *Migrator) handoff(ctx context.Context, pl partPlan) (hs handoffState, err error) {
	hs.pl = pl
	dst, ok := m.Admin(pl.dst)
	if !ok {
		return hs, fmt.Errorf("no admin transport for destination %q", pl.dst)
	}
	parts := m.pm.Partitions()

	// Freeze: router-side first (new sends refuse and back off), then each
	// source node-side (the exact cut — an envelope accepted before the
	// node freeze is flushed into the pages; one accepted after cutover is
	// dual-written; the freeze window admits nothing).
	if err := m.step("freeze", pl.p, pl.srcOwner, pl.dst); err != nil {
		return hs, err
	}
	m.pm.Freeze(pl.p)
	frozen := make([]NodeAdmin, 0, len(pl.sources))
	unfreeze := func() {
		m.pm.Unfreeze(pl.p)
		for _, a := range frozen {
			_ = a.UnfreezePartition(ctx, pl.p, parts) // best-effort; a crash clears it anyway
		}
	}
	defer func() {
		if err != nil {
			// Undo before lifting the freeze, so no write can land at the
			// destination between the staged copy and its restoration.
			if hs.touched {
				m.restoreDst(ctx, pl, hs.own)
			}
			unfreeze()
		}
	}()
	srcAdmins := make([]NodeAdmin, len(pl.sources))
	for i, src := range pl.sources {
		a, ok := m.Admin(src)
		if !ok {
			return hs, fmt.Errorf("no admin transport for source %q", src)
		}
		if err := a.FreezePartition(ctx, pl.p, parts); err != nil {
			return hs, fmt.Errorf("freeze %q: %w", src, err)
		}
		srcAdmins[i], frozen = a, append(frozen, a)
	}

	// Flush + fetch: settle every accepted envelope into rollups, then cut
	// the pages. The cut is immutable for the rest of the handoff — the
	// freeze guarantees nothing lands behind it. The destination's own
	// slice (when it is a source) is kept apart: it is the state a failed
	// rebuild must restore.
	var pages []telemetry.SketchPage
	moved := 0 // pages cut from sources other than the destination itself
	for i, a := range srcAdmins {
		if err := m.step("flush", pl.p, pl.sources[i], pl.dst); err != nil {
			return hs, err
		}
		if err := a.Flush(ctx); err != nil {
			return hs, fmt.Errorf("flush %q: %w", pl.sources[i], err)
		}
		if err := m.step("fetch", pl.p, pl.sources[i], pl.dst); err != nil {
			return hs, err
		}
		pp, err := a.PartitionPages(ctx, pl.p, parts)
		if err != nil {
			return hs, fmt.Errorf("fetch %q: %w", pl.sources[i], err)
		}
		pages = append(pages, pp...)
		if pl.sources[i] == pl.dst {
			hs.own = pp
		} else {
			moved += len(pp)
		}
	}

	// Plans whose destination keeps its ownership (replica-only moves,
	// catch-up) rebuild only to fold the other sources' pages in; when
	// those turn out empty there is nothing to do — and skipping matters,
	// because the rebuild is destructive at the destination.
	if moved == 0 && (pl.srcOwner == "" || pl.srcOwner == pl.dst) {
		unfreeze()
		return hs, nil
	}

	// Rebuild: drop whatever the destination holds (its own pre-handoff
	// slice — already inside the cut — a partial earlier attempt, a
	// recovered crash's remnant) and absorb the held cut. Every attempt
	// starts from empty, so retries converge instead of double-counting.
	// The spill lands first: the drop durably deletes state whose
	// replacement otherwise exists only in this coordinator's memory.
	if err := m.writeSpill(pl, hs.own); err != nil {
		return hs, fmt.Errorf("spill for partition %d: %w", pl.p, err)
	}
	rebuilt := false
	for attempt := 0; attempt < m.cfg.Attempts; attempt++ {
		if err := m.step("rebuild", pl.p, pl.srcOwner, pl.dst); err != nil {
			continue
		}
		hs.touched = true
		if _, err := dst.DropPartition(ctx, pl.p, parts); err != nil {
			continue
		}
		if _, err := dst.AbsorbPages(ctx, pages); err != nil {
			continue
		}
		rebuilt = true
		break
	}
	if !rebuilt {
		return hs, fmt.Errorf("destination %q rebuild did not complete in %d attempts", pl.dst, m.cfg.Attempts)
	}

	// Cutover: lift the router-side freeze and start dual-epoch writes
	// (both owners must ack every envelope for this partition until
	// activation), then unfreeze the sources so held-back traffic drains.
	if err := m.step("cutover", pl.p, pl.srcOwner, pl.dst); err != nil {
		return hs, err
	}
	m.pm.Cutover(pl.p)
	for _, a := range frozen {
		_ = a.UnfreezePartition(ctx, pl.p, parts)
	}
	return hs, nil
}

// restoreDst returns a destination to its pre-handoff state after a failed
// or rolled-back rebuild: drop whatever the rebuild staged, then re-absorb
// the destination's own pre-handoff cut (non-empty exactly when the
// current epoch already assigned it the partition). On success the
// partition's spill clears and any suspect mark on the destination lifts.
// On failure, a destination the current epoch assigns is marked suspect —
// its copy is in an unknown intermediate state, so queries must exclude it
// (and disclose partiality) until Settle or spill recovery repairs it; an
// unassigned staged copy is invisible to queries anyway, so the failed
// restore costs disk, not correctness.
func (m *Migrator) restoreDst(ctx context.Context, pl partPlan, own []telemetry.SketchPage) {
	parts := m.pm.Partitions()
	if a, ok := m.Admin(pl.dst); ok {
		for attempt := 0; attempt < m.cfg.Attempts; attempt++ {
			if _, err := a.DropPartition(ctx, pl.p, parts); err != nil {
				continue
			}
			if len(own) > 0 {
				if _, err := a.AbsorbPages(ctx, own); err != nil {
					continue
				}
			}
			if m.pm.Suspects()[pl.p] == pl.dst {
				m.pm.ClearSuspect(pl.p)
			}
			m.clearSpill(pl.p)
			return
		}
	}
	if assignedIn(m.pm.Current(), pl.dst, pl.p) {
		m.pm.MarkSuspect(pl.p, pl.dst)
	}
}

// rollback discards a failed migration: the pending epoch aborts (routing
// never left the current one), then every completed handoff's destination
// is restored to its pre-handoff state — the staged copy is dropped and
// the destination's own cut, if it had one (a promoted replica's failover
// slice, a consolidating owner's live partition), is re-absorbed. Each
// restore runs under a fresh router-side freeze so a failover write
// cannot land at the destination mid-restore and be destroyed.
func (m *Migrator) rollback(done []handoffState) {
	m.pm.Abort()
	ctx := context.Background()
	for _, hs := range done {
		if !hs.touched {
			continue
		}
		m.pm.Freeze(hs.pl.p)
		m.restoreDst(ctx, hs.pl, hs.own)
		m.pm.Unfreeze(hs.pl.p)
	}
}

// CatchUp consolidates one partition's failover slice back onto its owner
// — the replica re-sync after a markdown window under replication factor
// 2. The owner's durable state and the replica's slice are cut under the
// same freeze, the owner is rebuilt from both (its own pages re-insert
// bit-exactly; the replica's windows merge), and the replica's copy is
// dropped. When the markdown covered whole rollup windows the two cuts
// are window-disjoint, so the rebuilt owner — and every query after it —
// is byte-identical to a single node that ingested the whole stream.
func (m *Migrator) CatchUp(ctx context.Context, p int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.pm.Current()
	if p < 0 || p >= cur.Partitions {
		return fmt.Errorf("cluster: partition %d of %d", p, cur.Partitions)
	}
	if cur.ReplicationFactor != 2 {
		return fmt.Errorf("cluster: catch-up needs replication factor 2")
	}
	if err := m.recoverSpills(ctx); err != nil {
		return fmt.Errorf("cluster: unrecovered handoff spill blocks catch-up: %w", err)
	}
	owner, replica := cur.Owners[p], cur.Replicas[p]
	pl := partPlan{p: p, dst: owner, srcOwner: owner, sources: []string{owner, replica}}
	if _, err := m.handoff(ctx, pl); err != nil {
		return err
	}
	// The owner's rebuilt copy is durable (AbsorbPages acks behind a WAL
	// fsync), so its spill is obsolete. Clear it before dropping the
	// replica's slice: a spill restore replaying after that drop would
	// regress the owner to its pre-merge cut with the slice's only other
	// copy already gone.
	m.clearSpill(p)
	// handoff left a dual-write shadow only under a pending epoch; here
	// there is none, so Cutover was a plain unfreeze. Drop the replica's
	// now-merged slice; a failure leaves it suspect (it would
	// double-count) until Settle.
	if err := m.step("drop_stale", p, replica, owner); err == nil {
		if a, ok := m.Admin(replica); ok {
			if _, err := a.DropPartition(ctx, p, cur.Partitions); err == nil {
				return nil
			}
		}
	}
	m.pm.MarkSuspect(p, replica)
	return nil
}
