package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/telemetry"
)

// NodeClient is the query-side transport to one node. Implementations:
// HTTPNode over the wire, LocalNode for in-process tests and benchmarks —
// either optionally wrapped in a fault injector.
type NodeClient interface {
	// Sketches returns the node's matching rollups in wire form
	// (GET /sketches on a cluster node).
	Sketches(ctx context.Context, spec telemetry.QuerySpec) (telemetry.SketchPage, error)
	// Keys returns the node's key inventory (GET /keys).
	Keys(ctx context.Context) ([]telemetry.KeyCount, error)
}

// LocalNode adapts an in-process Ingestor to NodeClient — the test and
// benchmark transport, with the HTTP hop removed and nothing else changed.
type LocalNode struct {
	Ing *telemetry.Ingestor
}

func (n LocalNode) Sketches(_ context.Context, spec telemetry.QuerySpec) (telemetry.SketchPage, error) {
	return n.Ing.MatchSketches(spec)
}

func (n LocalNode) Keys(context.Context) ([]telemetry.KeyCount, error) {
	return n.Ing.Keys(), nil
}

// FrontendConfig tunes the scatter-gather query tier.
type FrontendConfig struct {
	// Timeout bounds each node's gather leg. Default 2s. A node that
	// cannot answer in time is reported missing, not waited for — partial
	// answers beat hung queries.
	Timeout time.Duration
	// Metrics, when set, registers the front-end families (cluster_frontend_*).
	Metrics *obs.Registry
}

func (c *FrontendConfig) fill() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
}

// Result is a cluster query answer. QueryResult is embedded and the
// cluster fields carry omitempty, so a complete answer marshals
// byte-identically to a single-node /query response — the cluster is
// invisible until it has something to disclose.
type Result struct {
	telemetry.QueryResult
	// Partial is set when at least one node could not be gathered, or when
	// a rebalance is moving partitions right now; the statistics cover only
	// the partitions that answered, at the current epoch's placement.
	Partial bool `json:"partial,omitempty"`
	// MissingPartitions lists every partition with no surviving copy in
	// this answer — all partitions assigned (as owner or replica) only to
	// nodes that failed to answer. Ascending, deduplicated.
	MissingPartitions []int `json:"missing_partitions,omitempty"`
	// MissingNodes lists the nodes that failed to answer, canonical order.
	MissingNodes []string `json:"missing_nodes,omitempty"`
	// MigratingPartitions lists the partitions a live rebalance is moving
	// (or whose stale pre-migration copies are not yet dropped). Their data
	// is answered from the current epoch's owners — never silently wrong —
	// but a racing handoff means the answer may lag the newest writes, so
	// the query is marked Partial and says exactly which partitions.
	MigratingPartitions []int `json:"migrating_partitions,omitempty"`
}

// Frontend is the scatter-gather query tier: it fans a query out to every
// node, gathers sketch pages under per-node timeouts, and merges them on
// the same sorted path the single-node query uses. Nodes that cannot be
// reached do not fail the query — the answer covers what was gathered and
// says exactly which partitions are missing.
//
// Gathered pages are filtered by the current epoch's assignment: a node's
// matches count only for partitions it is assigned (owner, or replica —
// replicas hold failover traffic). That is what makes membership elastic
// without lying: staged copies on a joining node are invisible until their
// epoch activates, and stale copies on a leaving node are invisible the
// moment it does, so a query never double-counts a partition that exists
// on two nodes mid-rebalance.
type Frontend struct {
	pm  *PartitionMap
	cfg FrontendConfig

	mu      sync.RWMutex
	clients map[string]NodeClient

	queries    *obs.Counter
	partials   *obs.Counter
	nodeErrors *obs.CounterVec
}

// NewFrontend builds the query tier over a partition map and one client
// per node. Every node in the map must have a client; AddClient wires
// nodes that join later.
func NewFrontend(pm *PartitionMap, clients map[string]NodeClient, cfg FrontendConfig) *Frontend {
	cfg.fill()
	f := &Frontend{pm: pm, cfg: cfg, clients: make(map[string]NodeClient, len(clients))}
	for n, c := range clients {
		f.clients[n] = c
	}
	if cfg.Metrics != nil {
		f.queries = cfg.Metrics.Counter("cluster_frontend_queries_total", "scatter-gather queries served")
		f.partials = cfg.Metrics.Counter("cluster_frontend_partial_total", "queries answered with missing partitions")
		f.nodeErrors = cfg.Metrics.CounterVec("cluster_frontend_node_errors_total", "gather legs that failed", "node")
	} else {
		f.queries = &obs.Counter{}
		f.partials = &obs.Counter{}
	}
	return f
}

// AddClient wires (or replaces) the query transport for a node — how a
// joining member becomes queryable without restarting the frontend.
func (f *Frontend) AddClient(node string, c NodeClient) {
	f.mu.Lock()
	f.clients[node] = c
	f.mu.Unlock()
}

// RemoveClient unwires a departed node's transport.
func (f *Frontend) RemoveClient(node string) {
	f.mu.Lock()
	delete(f.clients, node)
	f.mu.Unlock()
}

// Client returns the query transport wired for a node, if any.
func (f *Frontend) Client(node string) (NodeClient, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	c, ok := f.clients[node]
	return c, ok
}

// gather runs fn against every current member concurrently, each leg under
// the front-end timeout, and reports which nodes failed (canonical order).
// The member list is the current epoch's — nodes that joined or left take
// effect the moment their epoch activates.
func (f *Frontend) gather(ctx context.Context, nodes []string, fn func(ctx context.Context, node string, c NodeClient) error) (missing []string) {
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		c, ok := f.Client(n)
		if !ok {
			errs[i] = context.Canceled // no client wired: the node is unreachable by construction
			continue
		}
		wg.Add(1)
		go func(i int, n string, c NodeClient) {
			defer wg.Done()
			legCtx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
			defer cancel()
			errs[i] = fn(legCtx, n, c)
		}(i, n, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			missing = append(missing, nodes[i])
			if f.nodeErrors != nil {
				f.nodeErrors.With(nodes[i]).Inc()
			}
		}
	}
	return missing
}

// missingPartitions resolves unreachable nodes to the partitions that have
// no surviving copy: a partition is missing when every node it is assigned
// to (owner, and replica under replication factor 2) failed to answer.
func (f *Frontend) missingPartitions(missing []string) []int {
	if len(missing) == 0 {
		return nil
	}
	down := make(map[string]bool, len(missing))
	for _, n := range missing {
		down[n] = true
	}
	var out []int
	for p := 0; p < f.pm.Partitions(); p++ {
		if !down[f.pm.Owner(p)] {
			continue
		}
		if rep, ok := f.pm.Replica(p); ok && !down[rep] {
			continue
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// countsFor reports whether a node's copy of a partition belongs in this
// answer: the node must be assigned the partition in the current epoch and
// must not be the suspect holder of a stale pre-migration copy.
func (f *Frontend) countsFor(node string, p int, suspects map[int]string) bool {
	if suspects[p] == node {
		return false
	}
	return f.pm.Assigned(node, p)
}

// filterPage drops the matches a node is not assigned, in place.
func (f *Frontend) filterPage(node string, page telemetry.SketchPage, parts int, suspects map[int]string) telemetry.SketchPage {
	kept := page.Matches[:0]
	for _, m := range page.Matches {
		k := telemetry.Key{Metric: page.Metric, Region: m.Region, Net: m.Net}
		if f.countsFor(node, k.ShardOf(parts), suspects) {
			kept = append(kept, m)
		}
	}
	page.Matches = kept
	return page
}

// finalize stamps the cluster disclosure fields onto a result.
func (f *Frontend) finalize(out *Result, missing []string) {
	out.MigratingPartitions = f.pm.Migrating()
	if len(missing) > 0 {
		out.Partial = true
		out.MissingNodes = missing
		out.MissingPartitions = f.missingPartitions(missing)
	}
	if len(out.MigratingPartitions) > 0 {
		out.Partial = true
	}
	if out.Partial {
		f.partials.Inc()
	}
}

// Query scatter-gathers one query. The error return covers spec problems
// and merge-level config mismatches only; unreachable nodes and live
// rebalances surface in the Result's partial fields instead.
func (f *Frontend) Query(ctx context.Context, spec telemetry.QuerySpec) (Result, error) {
	f.queries.Inc()
	if err := telemetry.ValidateQuerySpec(spec); err != nil {
		return Result{}, err
	}
	nodes := f.pm.Nodes()
	parts := f.pm.Partitions()
	suspects := f.pm.Suspects()
	pages := make([]telemetry.SketchPage, len(nodes))
	gathered := make([]bool, len(nodes))
	idx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	missing := f.gather(ctx, nodes, func(ctx context.Context, node string, c NodeClient) error {
		page, err := c.Sketches(ctx, spec)
		if err != nil {
			return err
		}
		i := idx[node]
		pages[i], gathered[i] = f.filterPage(node, page, parts, suspects), true
		return nil
	})
	// Keep only answered pages, in canonical node order — so the merge
	// input (and therefore the answer bytes) never depends on goroutine
	// finish order.
	kept := pages[:0]
	for i, ok := range gathered {
		if ok {
			kept = append(kept, pages[i])
		}
	}
	res, err := telemetry.MergeSketchPages(spec, kept)
	if err != nil {
		return Result{}, err
	}
	out := Result{QueryResult: res}
	f.finalize(&out, missing)
	return out, nil
}

// Keys scatter-gathers the cluster's key inventory: per-key counts summed
// across nodes — each node contributing only the keys of partitions it is
// assigned — sorted exactly like Ingestor.Keys. The second return lists
// nodes that failed to answer (empty means the inventory is complete).
func (f *Frontend) Keys(ctx context.Context) ([]telemetry.KeyCount, []string) {
	nodes := f.pm.Nodes()
	parts := f.pm.Partitions()
	suspects := f.pm.Suspects()
	perNode := make([][]telemetry.KeyCount, len(nodes))
	idx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	missing := f.gather(ctx, nodes, func(ctx context.Context, node string, c NodeClient) error {
		keys, err := c.Keys(ctx)
		if err != nil {
			return err
		}
		kept := keys[:0]
		for _, kc := range keys {
			if f.countsFor(node, kc.Key.ShardOf(parts), suspects) {
				kept = append(kept, kc)
			}
		}
		perNode[idx[node]] = kept
		return nil
	})
	acc := map[telemetry.Key]float64{}
	for _, keys := range perNode {
		for _, kc := range keys {
			acc[kc.Key] += kc.Count
		}
	}
	out := make([]telemetry.KeyCount, 0, len(acc))
	for k, n := range acc {
		out = append(out, telemetry.KeyCount{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Net < b.Net
	})
	return out, missing
}
