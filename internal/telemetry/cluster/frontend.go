package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/telemetry"
)

// NodeClient is the query-side transport to one node. Implementations:
// HTTPNode over the wire, LocalNode for in-process tests and benchmarks —
// either optionally wrapped in a fault injector.
type NodeClient interface {
	// Sketches returns the node's matching rollups in wire form
	// (GET /sketches on a cluster node).
	Sketches(ctx context.Context, spec telemetry.QuerySpec) (telemetry.SketchPage, error)
	// Keys returns the node's key inventory (GET /keys).
	Keys(ctx context.Context) ([]telemetry.KeyCount, error)
}

// LocalNode adapts an in-process Ingestor to NodeClient — the test and
// benchmark transport, with the HTTP hop removed and nothing else changed.
type LocalNode struct {
	Ing *telemetry.Ingestor
}

func (n LocalNode) Sketches(_ context.Context, spec telemetry.QuerySpec) (telemetry.SketchPage, error) {
	return n.Ing.MatchSketches(spec)
}

func (n LocalNode) Keys(context.Context) ([]telemetry.KeyCount, error) {
	return n.Ing.Keys(), nil
}

// FrontendConfig tunes the scatter-gather query tier.
type FrontendConfig struct {
	// Timeout bounds each node's gather leg. Default 2s. A node that
	// cannot answer in time is reported missing, not waited for — partial
	// answers beat hung queries.
	Timeout time.Duration
	// Metrics, when set, registers the front-end families (cluster_frontend_*).
	Metrics *obs.Registry
}

func (c *FrontendConfig) fill() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
}

// Result is a cluster query answer. QueryResult is embedded and the
// cluster fields carry omitempty, so a complete answer marshals
// byte-identically to a single-node /query response — the cluster is
// invisible until it has something to disclose.
type Result struct {
	telemetry.QueryResult
	// Partial is set when at least one node could not be gathered; the
	// statistics cover only the partitions that answered.
	Partial bool `json:"partial,omitempty"`
	// MissingPartitions lists every partition with no surviving copy in
	// this answer — all partitions assigned (as owner or replica) only to
	// nodes that failed to answer. Ascending, deduplicated.
	MissingPartitions []int `json:"missing_partitions,omitempty"`
	// MissingNodes lists the nodes that failed to answer, canonical order.
	MissingNodes []string `json:"missing_nodes,omitempty"`
}

// Frontend is the scatter-gather query tier: it fans a query out to every
// node, gathers sketch pages under per-node timeouts, and merges them on
// the same sorted path the single-node query uses. Nodes that cannot be
// reached do not fail the query — the answer covers what was gathered and
// says exactly which partitions are missing.
type Frontend struct {
	pm      *PartitionMap
	clients map[string]NodeClient
	cfg     FrontendConfig

	queries    *obs.Counter
	partials   *obs.Counter
	nodeErrors *obs.CounterVec
}

// NewFrontend builds the query tier over a partition map and one client
// per node. Every node in the map must have a client.
func NewFrontend(pm *PartitionMap, clients map[string]NodeClient, cfg FrontendConfig) *Frontend {
	cfg.fill()
	f := &Frontend{pm: pm, clients: clients, cfg: cfg}
	if cfg.Metrics != nil {
		f.queries = cfg.Metrics.Counter("cluster_frontend_queries_total", "scatter-gather queries served")
		f.partials = cfg.Metrics.Counter("cluster_frontend_partial_total", "queries answered with missing partitions")
		f.nodeErrors = cfg.Metrics.CounterVec("cluster_frontend_node_errors_total", "gather legs that failed", "node")
	} else {
		f.queries = &obs.Counter{}
		f.partials = &obs.Counter{}
	}
	return f
}

// gather runs fn against every node concurrently, each leg under the
// front-end timeout, and reports which nodes failed (canonical order).
func (f *Frontend) gather(ctx context.Context, fn func(ctx context.Context, node string, c NodeClient) error) (missing []string) {
	nodes := f.pm.cfg.Nodes
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		c, ok := f.clients[n]
		if !ok {
			errs[i] = context.Canceled // no client wired: the node is unreachable by construction
			continue
		}
		wg.Add(1)
		go func(i int, n string, c NodeClient) {
			defer wg.Done()
			legCtx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
			defer cancel()
			errs[i] = fn(legCtx, n, c)
		}(i, n, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			missing = append(missing, nodes[i])
			if f.nodeErrors != nil {
				f.nodeErrors.With(nodes[i]).Inc()
			}
		}
	}
	return missing
}

// missingPartitions resolves unreachable nodes to the partitions that have
// no surviving copy: a partition is missing when every node it is assigned
// to (owner, and replica under replication factor 2) failed to answer.
func (f *Frontend) missingPartitions(missing []string) []int {
	if len(missing) == 0 {
		return nil
	}
	down := make(map[string]bool, len(missing))
	for _, n := range missing {
		down[n] = true
	}
	var out []int
	for p := 0; p < f.pm.Partitions(); p++ {
		if !down[f.pm.Owner(p)] {
			continue
		}
		if rep, ok := f.pm.Replica(p); ok && !down[rep] {
			continue
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Query scatter-gathers one query. The error return covers spec problems
// and merge-level config mismatches only; unreachable nodes surface in the
// Result's partial fields instead.
func (f *Frontend) Query(ctx context.Context, spec telemetry.QuerySpec) (Result, error) {
	f.queries.Inc()
	if err := telemetry.ValidateQuerySpec(spec); err != nil {
		return Result{}, err
	}
	pages := make([]telemetry.SketchPage, len(f.pm.cfg.Nodes))
	gathered := make([]bool, len(f.pm.cfg.Nodes))
	missing := f.gather(ctx, func(ctx context.Context, node string, c NodeClient) error {
		page, err := c.Sketches(ctx, spec)
		if err != nil {
			return err
		}
		i := f.pm.index[node]
		pages[i], gathered[i] = page, true
		return nil
	})
	// Keep only answered pages, in canonical node order — so the merge
	// input (and therefore the answer bytes) never depends on goroutine
	// finish order.
	kept := pages[:0]
	for i, ok := range gathered {
		if ok {
			kept = append(kept, pages[i])
		}
	}
	res, err := telemetry.MergeSketchPages(spec, kept)
	if err != nil {
		return Result{}, err
	}
	out := Result{QueryResult: res}
	if len(missing) > 0 {
		f.partials.Inc()
		out.Partial = true
		out.MissingNodes = missing
		out.MissingPartitions = f.missingPartitions(missing)
	}
	return out, nil
}

// Keys scatter-gathers the cluster's key inventory: per-key counts summed
// across nodes, sorted exactly like Ingestor.Keys. The second return lists
// nodes that failed to answer (empty means the inventory is complete).
func (f *Frontend) Keys(ctx context.Context) ([]telemetry.KeyCount, []string) {
	perNode := make([][]telemetry.KeyCount, len(f.pm.cfg.Nodes))
	missing := f.gather(ctx, func(ctx context.Context, node string, c NodeClient) error {
		keys, err := c.Keys(ctx)
		if err != nil {
			return err
		}
		perNode[f.pm.index[node]] = keys
		return nil
	})
	acc := map[telemetry.Key]float64{}
	for _, keys := range perNode {
		for _, kc := range keys {
			acc[kc.Key] += kc.Count
		}
	}
	out := make([]telemetry.KeyCount, 0, len(acc))
	for k, n := range acc {
		out = append(out, telemetry.KeyCount{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Net < b.Net
	})
	return out, missing
}
