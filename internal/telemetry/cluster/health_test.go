package cluster

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/rng"
)

// scriptedProber answers probes from a per-node state the test flips.
type scriptedProber struct {
	res map[string]ProbeResult
}

func (p *scriptedProber) probe(node string) ProbeResult { return p.res[node] }

func newHealthHarness(cfg HealthConfig, nodes ...string) (*HealthTracker, *scriptedProber) {
	p := &scriptedProber{res: map[string]ProbeResult{}}
	for _, n := range nodes {
		p.res[n] = ProbeResult{Reachable: true}
	}
	return NewHealthTracker(nodes, p.probe, cfg), p
}

func TestHealthStartsUpAndHoldsUp(t *testing.T) {
	h, _ := newHealthHarness(HealthConfig{}, "a", "b")
	if h.State("a") != StateUp || h.State("b") != StateUp {
		t.Fatal("cold tracker not optimistic")
	}
	for i := 0; i < 5; i++ {
		h.ProbeOnce()
	}
	if h.State("a") != StateUp {
		t.Fatal("healthy node left Up")
	}
	if h.State("unknown") != StateDown {
		t.Fatal("unknown node not Down")
	}
}

// TestHealthMarkdownAfterConsecutiveFailures: one missed probe degrades,
// DownAfter misses down — and recovery needs UpAfter consecutive successes.
func TestHealthMarkdownAfterConsecutiveFailures(t *testing.T) {
	h, p := newHealthHarness(HealthConfig{DownAfter: 3, UpAfter: 2}, "a")
	p.res["a"] = ProbeResult{}

	h.ProbeOnce()
	if got := h.State("a"); got != StateDegraded {
		t.Fatalf("after 1 miss: %v", got)
	}
	h.ProbeOnce()
	if got := h.State("a"); got != StateDegraded {
		t.Fatalf("after 2 misses: %v", got)
	}
	h.ProbeOnce()
	if got := h.State("a"); got != StateDown {
		t.Fatalf("after 3 misses: %v", got)
	}

	// One good probe is not enough to requalify...
	p.res["a"] = ProbeResult{Reachable: true}
	h.ProbeOnce()
	if got := h.State("a"); got != StateDown {
		t.Fatalf("down node routable after 1 success: %v", got)
	}
	// ...the second is.
	h.ProbeOnce()
	if got := h.State("a"); got != StateUp {
		t.Fatalf("after UpAfter successes: %v", got)
	}
}

// TestHealthFlappingHeldDown: a node alternating answer/miss while down
// never accumulates UpAfter consecutive successes, so it stays down.
func TestHealthFlappingHeldDown(t *testing.T) {
	h, p := newHealthHarness(HealthConfig{DownAfter: 2, UpAfter: 2}, "a")
	p.res["a"] = ProbeResult{}
	h.ProbeOnce()
	h.ProbeOnce()
	if h.State("a") != StateDown {
		t.Fatal("setup: node not down")
	}
	for i := 0; i < 4; i++ {
		p.res["a"] = ProbeResult{Reachable: true}
		h.ProbeOnce()
		p.res["a"] = ProbeResult{}
		h.ProbeOnce()
		if got := h.State("a"); got != StateDown {
			t.Fatalf("flap cycle %d: %v", i, got)
		}
	}
}

// TestHealthSelfReportedDegraded: a node answering "degraded" is Degraded
// (still routable) without any markdown counting.
func TestHealthSelfReportedDegraded(t *testing.T) {
	h, p := newHealthHarness(HealthConfig{}, "a")
	p.res["a"] = ProbeResult{Reachable: true, Degraded: true}
	for i := 0; i < 5; i++ {
		h.ProbeOnce()
		if got := h.State("a"); got != StateDegraded {
			t.Fatalf("probe %d: %v", i, got)
		}
	}
	p.res["a"] = ProbeResult{Reachable: true}
	h.ProbeOnce()
	if got := h.State("a"); got != StateUp {
		t.Fatalf("recovered self-report: %v", got)
	}
}

func TestHealthSnapshotAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := &scriptedProber{res: map[string]ProbeResult{
		"a": {Reachable: true},
		"b": {},
	}}
	h := NewHealthTracker([]string{"b", "a"}, p.probe, HealthConfig{DownAfter: 2, Metrics: reg})
	h.ProbeOnce()
	h.ProbeOnce()

	snap := h.Snapshot()
	if len(snap) != 2 || snap[0].Node != "a" || snap[1].Node != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].State != "up" || snap[1].State != "down" {
		t.Fatalf("states = %s/%s", snap[0].State, snap[1].State)
	}
	if snap[1].ConsecutiveFailures != 2 {
		t.Fatalf("b failures = %d", snap[1].ConsecutiveFailures)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`cluster_node_state{node="b"} 2`,
		`cluster_probe_failures_total{node="b"} 2`,
		`cluster_node_transitions_total{node="b"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHealthStartStop(t *testing.T) {
	h, _ := newHealthHarness(HealthConfig{Interval: time.Millisecond}, "a")
	h.Start()
	h.Stop()
	// Stop without Start must not hang either.
	h2, _ := newHealthHarness(HealthConfig{}, "a")
	h2.Stop()
}

// TestHealthJitterDeterministicAndBounded: with an injected rng the
// jittered probe schedule is a pure function of the seed, and every wait
// stays inside [0.9, 1.1) × Interval — the thundering-herd spread.
func TestHealthJitterDeterministicAndBounded(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		h := NewHealthTracker([]string{"a"}, func(string) ProbeResult { return ProbeResult{Reachable: true} },
			HealthConfig{Interval: time.Second, Jitter: rng.New(seed).Fork("probe")})
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = h.nextWait()
		}
		return out
	}
	a, b := draw(7), draw(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different schedules")
	}
	c := draw(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical schedules")
	}
	for _, w := range a {
		if w < 900*time.Millisecond || w >= 1100*time.Millisecond {
			t.Fatalf("wait %v outside ±10%% of 1s", w)
		}
	}
}

// TestHealthJitteredLoopProbes: Start with Jitter set actually drives
// probes through the timer loop.
func TestHealthJitteredLoopProbes(t *testing.T) {
	var n atomic.Int64
	h := NewHealthTracker([]string{"a"}, func(string) ProbeResult {
		n.Add(1)
		return ProbeResult{Reachable: true}
	}, HealthConfig{Interval: time.Millisecond, Jitter: rng.New(1).Fork("probe")})
	h.Start()
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	if n.Load() < 3 {
		t.Fatalf("jittered loop probed %d times", n.Load())
	}
}

// TestHealthAddRemoveElastic: membership is elastic — an added node is
// probed and starts Up, a removed one is forgotten and reads Down.
func TestHealthAddRemoveElastic(t *testing.T) {
	probed := map[string]int{}
	h := NewHealthTracker([]string{"a"}, func(n string) ProbeResult {
		probed[n]++
		return ProbeResult{Reachable: true}
	}, HealthConfig{})
	h.Add("b")
	h.Add("b") // idempotent
	if got := h.State("b"); got != StateUp {
		t.Fatalf("joined node state = %v", got)
	}
	h.ProbeOnce()
	if probed["b"] != 1 {
		t.Fatalf("joined node probed %d times", probed["b"])
	}
	if got := len(h.Snapshot()); got != 2 {
		t.Fatalf("snapshot has %d members", got)
	}
	h.Remove("b")
	h.ProbeOnce()
	if probed["b"] != 1 {
		t.Fatal("removed node still probed")
	}
	if got := h.State("b"); got != StateDown {
		t.Fatalf("removed node state = %v, want down", got)
	}
}
