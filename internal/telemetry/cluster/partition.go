// Package cluster turns the single-process telemetry pipeline into a
// partitioned, fault-tolerant serving tier: a static partition map over the
// (metric, region, network) keyspace, health-checked membership, a routing
// ingest client with replica failover, and a scatter-gather query front-end
// with explicit partial-result semantics.
//
// The layering mirrors the Periscope analytics pipeline: stateless routers
// fan ingest out to partitioned stateful nodes (each an ordinary
// telemetry.Ingestor with its own WAL — PR 6's durability is the per-node
// substrate), and the query tier merges window sketches across nodes.
// Because every (window, key) rollup lives on exactly one node and the
// front-end merges sketches on the same sorted path the single-node query
// uses (telemetry.MergeSketchPages), a clean clustered run answers every
// query byte-identically to one process that ingested the whole stream —
// the property the chaos tests pin.
package cluster

import (
	"fmt"
	"sort"

	"edgescope/internal/telemetry"
)

// DefaultPartitions is the partition count when a MapConfig names none.
// Partitions are the unit of placement and of partial-result reporting;
// more partitions than nodes keeps rebalancing (a config change) granular.
const DefaultPartitions = 16

// MapConfig declares a cluster's static layout.
type MapConfig struct {
	// Partitions is the keyspace partition count. Default DefaultPartitions.
	Partitions int `json:"partitions"`
	// Nodes lists the node ids in canonical order. Placement depends on
	// this order, so every router and front-end must share it — ship the
	// same config everywhere (it is a deployment artifact, not discovery).
	Nodes []string `json:"nodes"`
	// ReplicationFactor is 1 (owner only) or 2 (owner + one replica, the
	// ingest failover target). Default 1.
	ReplicationFactor int `json:"replication_factor,omitempty"`
}

// PartitionMap is the resolved placement: partition → owner (and replica,
// under replication factor 2). The key→partition hash is the pipeline's
// stable FNV-1a (telemetry.Key.ShardOf), so a key's partition depends only
// on the key and the partition count — replays, routers and recovered
// nodes always agree, with no coordination service anywhere.
type PartitionMap struct {
	cfg   MapConfig
	index map[string]int // node id → position in cfg.Nodes
}

// NewMap validates and resolves a layout.
func NewMap(cfg MapConfig) (*PartitionMap, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = DefaultPartitions
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: map needs at least one node")
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor < 1 || cfg.ReplicationFactor > 2 {
		return nil, fmt.Errorf("cluster: replication factor %d (supported: 1, 2)", cfg.ReplicationFactor)
	}
	if cfg.ReplicationFactor == 2 && len(cfg.Nodes) < 2 {
		return nil, fmt.Errorf("cluster: replication factor 2 needs >= 2 nodes, have %d", len(cfg.Nodes))
	}
	index := make(map[string]int, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id at position %d", i)
		}
		if _, dup := index[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
		index[n] = i
	}
	return &PartitionMap{cfg: cfg, index: index}, nil
}

// Config returns the resolved (default-filled) layout.
func (m *PartitionMap) Config() MapConfig { return m.cfg }

// Partitions returns the partition count.
func (m *PartitionMap) Partitions() int { return m.cfg.Partitions }

// Nodes returns the node ids in canonical order.
func (m *PartitionMap) Nodes() []string { return append([]string(nil), m.cfg.Nodes...) }

// PartitionOf maps a key to its partition: the same FNV-1a hash the
// in-process shard router uses, taken modulo the partition count.
func (m *PartitionMap) PartitionOf(k telemetry.Key) int {
	return k.ShardOf(m.cfg.Partitions)
}

// Owner returns the node owning a partition: round-robin over the node
// list, so every node owns ⌈P/N⌉ or ⌊P/N⌋ partitions.
func (m *PartitionMap) Owner(p int) string {
	return m.cfg.Nodes[p%len(m.cfg.Nodes)]
}

// Replica returns the partition's failover node — the next node in
// canonical order — and whether the layout has one (replication factor 2).
func (m *PartitionMap) Replica(p int) (string, bool) {
	if m.cfg.ReplicationFactor < 2 {
		return "", false
	}
	return m.cfg.Nodes[(p+1)%len(m.cfg.Nodes)], true
}

// OwnedBy returns the partitions a node owns, ascending. Unknown nodes own
// nothing.
func (m *PartitionMap) OwnedBy(node string) []int {
	return m.assigned(node, 0)
}

// ReplicatedBy returns the partitions a node stands replica for,
// ascending; empty under replication factor 1.
func (m *PartitionMap) ReplicatedBy(node string) []int {
	if m.cfg.ReplicationFactor < 2 {
		return nil
	}
	return m.assigned(node, 1)
}

// assigned collects the partitions placed on node at the given replica
// offset (0 = owner, 1 = replica).
func (m *PartitionMap) assigned(node string, offset int) []int {
	i, ok := m.index[node]
	if !ok {
		return nil
	}
	var out []int
	n := len(m.cfg.Nodes)
	for p := 0; p < m.cfg.Partitions; p++ {
		if (p+offset)%n == i {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// NodeInfo builds the self-describing health identity a cluster node
// surfaces through telemetry.Config.Node.
func (m *PartitionMap) NodeInfo(node string) *telemetry.NodeInfo {
	return &telemetry.NodeInfo{
		Role:       "node",
		ID:         node,
		Partitions: m.OwnedBy(node),
		Replicates: m.ReplicatedBy(node),
	}
}
