// Package cluster turns the single-process telemetry pipeline into a
// partitioned, fault-tolerant serving tier: epoch-versioned partition
// assignments over the (metric, region, network) keyspace, health-checked
// membership, a routing ingest client with replica failover and dual-epoch
// migration writes, and a scatter-gather query front-end with explicit
// partial-result semantics.
//
// The layering mirrors the Periscope analytics pipeline: stateless routers
// fan ingest out to partitioned stateful nodes (each an ordinary
// telemetry.Ingestor with its own WAL — PR 6's durability is the per-node
// substrate), and the query tier merges window sketches across nodes.
// Because every (window, key) rollup lives on exactly one assigned node and
// the front-end merges sketches on the same sorted path the single-node
// query uses (telemetry.MergeSketchPages), a clean clustered run answers
// every query byte-identically to one process that ingested the whole
// stream — the property the chaos tests pin, including across join/leave
// rebalances (migrate.go).
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"edgescope/internal/telemetry"
)

// DefaultPartitions is the partition count when a MapConfig names none.
// Partitions are the unit of placement, of handoff and of partial-result
// reporting; more partitions than nodes keeps rebalancing granular.
const DefaultPartitions = 16

// MapConfig declares a cluster's boot layout — the input to epoch 1.
type MapConfig struct {
	// Partitions is the keyspace partition count. Default DefaultPartitions.
	Partitions int `json:"partitions"`
	// Nodes lists the node ids in canonical order. Epoch-1 placement
	// depends on this order, so every router and front-end must boot with
	// the same list; later epochs ship the member list inside the
	// Assignment itself.
	Nodes []string `json:"nodes"`
	// ReplicationFactor is 1 (owner only) or 2 (owner + one replica, the
	// ingest failover target). Default 1.
	ReplicationFactor int `json:"replication_factor,omitempty"`
}

// PartitionMap holds the cluster's live placement: the current epoch's
// Assignment, plus the transient migration state (pending epoch, frozen
// partitions, dual-write targets, suspect stale copies) a rebalance moves
// through. The key→partition hash is the pipeline's stable FNV-1a
// (telemetry.Key.ShardOf), so a key's partition depends only on the key
// and the partition count — replays, routers and recovered nodes always
// agree, with no coordination service anywhere.
//
// All methods are safe for concurrent use; readers (the router's hot path,
// the front-end's filters) take a read lock only.
type PartitionMap struct {
	mu    sync.RWMutex
	cur   Assignment
	index map[string]int // node id → position in cur.Nodes

	// pending is the proposed next epoch while a migration runs, nil
	// otherwise. frozen partitions refuse ingest (the handoff's exact-cut
	// window); dual maps a cut-over partition to the pending owner that
	// must also ack every write until activation.
	pending *Assignment
	frozen  map[int]bool
	dual    map[int]string
	// suspect maps partitions to a still-assigned node holding a stale
	// pre-migration copy whose post-activation drop has not succeeded yet.
	// Queries stay partial for these until the drop lands — the copy would
	// otherwise double-count in a merge.
	suspect map[int]string
}

// NewMap validates a boot layout and resolves it to epoch 1.
func NewMap(cfg MapConfig) (*PartitionMap, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = DefaultPartitions
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: map needs at least one node")
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor < 1 || cfg.ReplicationFactor > 2 {
		return nil, fmt.Errorf("cluster: replication factor %d (supported: 1, 2)", cfg.ReplicationFactor)
	}
	if cfg.ReplicationFactor == 2 && len(cfg.Nodes) < 2 {
		return nil, fmt.Errorf("cluster: replication factor 2 needs >= 2 nodes, have %d", len(cfg.Nodes))
	}
	index := make(map[string]int, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id at position %d", i)
		}
		if _, dup := index[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
		index[n] = i
	}
	m := &PartitionMap{index: index}
	m.resetLocked(InitialAssignment(cfg))
	return m, nil
}

// NewMapFromAssignment resumes a map at a persisted assignment — how a
// restarted frontend rejoins at the epoch it last activated instead of
// regressing to epoch 1.
func NewMapFromAssignment(a Assignment) (*PartitionMap, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	m := &PartitionMap{}
	m.resetLocked(a.clone())
	return m, nil
}

// resetLocked installs an assignment as current and clears migration state.
// Callers hold m.mu (or own m exclusively during construction).
func (m *PartitionMap) resetLocked(a Assignment) {
	m.cur = a
	m.index = make(map[string]int, len(a.Nodes))
	for i, n := range a.Nodes {
		m.index[n] = i
	}
	m.pending = nil
	m.frozen = map[int]bool{}
	m.dual = map[int]string{}
	if m.suspect == nil {
		m.suspect = map[int]string{}
	}
}

// Config returns the current epoch's layout in MapConfig form.
func (m *PartitionMap) Config() MapConfig {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return MapConfig{
		Partitions:        m.cur.Partitions,
		Nodes:             append([]string(nil), m.cur.Nodes...),
		ReplicationFactor: m.cur.ReplicationFactor,
	}
}

// Current returns the current epoch's assignment (a deep copy).
func (m *PartitionMap) Current() Assignment {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur.clone()
}

// Epoch returns the current epoch number.
func (m *PartitionMap) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur.Epoch
}

// Pending returns the in-flight next epoch's assignment, or nil.
func (m *PartitionMap) Pending() *Assignment {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.pending == nil {
		return nil
	}
	p := m.pending.clone()
	return &p
}

// Partitions returns the partition count.
func (m *PartitionMap) Partitions() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur.Partitions
}

// Nodes returns the current member ids in canonical order.
func (m *PartitionMap) Nodes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.cur.Nodes...)
}

// PartitionOf maps a key to its partition: the same FNV-1a hash the
// in-process shard router uses, taken modulo the partition count.
func (m *PartitionMap) PartitionOf(k telemetry.Key) int {
	m.mu.RLock()
	p := m.cur.Partitions
	m.mu.RUnlock()
	return k.ShardOf(p)
}

// Owner returns the node owning a partition in the current epoch.
func (m *PartitionMap) Owner(p int) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur.Owners[p]
}

// Replica returns the partition's failover node and whether the layout has
// one (replication factor 2).
func (m *PartitionMap) Replica(p int) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.cur.ReplicationFactor < 2 {
		return "", false
	}
	return m.cur.Replicas[p], true
}

// OwnedBy returns the partitions a node owns, ascending. Unknown nodes own
// nothing.
func (m *PartitionMap) OwnedBy(node string) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for p, o := range m.cur.Owners {
		if o == node {
			out = append(out, p)
		}
	}
	return out
}

// ReplicatedBy returns the partitions a node stands replica for,
// ascending; empty under replication factor 1.
func (m *PartitionMap) ReplicatedBy(node string) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for p, r := range m.cur.Replicas {
		if r == node {
			out = append(out, p)
		}
	}
	return out
}

// Assigned reports whether a node holds partition p in the current epoch,
// as owner or replica — the front-end's query-time ownership filter.
func (m *PartitionMap) Assigned(node string, p int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.cur.Owners[p] == node {
		return true
	}
	return m.cur.ReplicationFactor == 2 && m.cur.Replicas[p] == node
}

// NodeInfo builds the self-describing health identity a cluster node
// surfaces through telemetry.Config.Node.
func (m *PartitionMap) NodeInfo(node string) *telemetry.NodeInfo {
	return &telemetry.NodeInfo{
		Role:       "node",
		ID:         node,
		Partitions: m.OwnedBy(node),
		Replicates: m.ReplicatedBy(node),
	}
}

// --- Migration state machine (driven by Migrator, migrate.go) ---

// BeginMigration stages the next epoch. It refuses a table that is not the
// direct successor of the current epoch or that changes the immutable
// layout parameters, and refuses to stack migrations.
func (m *PartitionMap) BeginMigration(next Assignment) error {
	if err := next.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending != nil {
		return fmt.Errorf("cluster: migration to epoch %d already in flight", m.pending.Epoch)
	}
	if next.Epoch != m.cur.Epoch+1 {
		return fmt.Errorf("cluster: epoch %d does not succeed %d", next.Epoch, m.cur.Epoch)
	}
	if next.Partitions != m.cur.Partitions || next.ReplicationFactor != m.cur.ReplicationFactor {
		return fmt.Errorf("cluster: epoch %d changes partitions/replication (%d/%d → %d/%d)",
			next.Epoch, m.cur.Partitions, m.cur.ReplicationFactor, next.Partitions, next.ReplicationFactor)
	}
	staged := next.clone()
	m.pending = &staged
	return nil
}

// Freeze marks a partition's ingest frozen: the router refuses it (retry
// backoff absorbs the pause) while the handoff cuts and ships its pages.
func (m *PartitionMap) Freeze(p int) {
	m.mu.Lock()
	m.frozen[p] = true
	m.mu.Unlock()
}

// Cutover ends a partition's freeze and starts dual-epoch writes: from now
// until activation, every write to the partition must be acked by both the
// current owner and the pending owner.
func (m *PartitionMap) Cutover(p int) {
	m.mu.Lock()
	delete(m.frozen, p)
	if m.pending != nil && m.pending.Owners[p] != m.cur.Owners[p] {
		m.dual[p] = m.pending.Owners[p]
	}
	m.mu.Unlock()
}

// Unfreeze lifts a freeze without starting dual writes — the rollback path.
func (m *PartitionMap) Unfreeze(p int) {
	m.mu.Lock()
	delete(m.frozen, p)
	m.mu.Unlock()
}

// Frozen reports whether a partition currently refuses ingest.
func (m *PartitionMap) Frozen(p int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.frozen[p]
}

// DualTarget returns the extra node that must ack writes to partition p
// during migration, if any.
func (m *PartitionMap) DualTarget(p int) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.dual[p]
	return n, ok
}

// RouteTarget is one partition's routing state, snapshotted atomically:
// the owner (and failover replica) to deliver to, the dual-write target
// that must also ack while a migration is in flight, and whether ingest is
// frozen mid-handoff. The router must read all of these under one lock —
// read piecemeal, an Activate could land between the owner read and the
// dual-target read, clearing the dual map so an envelope is acked having
// reached only the losing owner, whose copy the migrator then drops.
type RouteTarget struct {
	Owner      string
	Replica    string
	HasReplica bool
	Dual       string
	HasDual    bool
	Frozen     bool
}

// Route snapshots partition p's routing state under a single read lock.
func (m *PartitionMap) Route(p int) RouteTarget {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rt := RouteTarget{Owner: m.cur.Owners[p], Frozen: m.frozen[p]}
	if m.cur.ReplicationFactor == 2 {
		rt.Replica, rt.HasReplica = m.cur.Replicas[p], true
	}
	rt.Dual, rt.HasDual = m.dual[p]
	return rt
}

// Activate atomically installs the pending epoch as current, ending the
// migration: routing flips to the new owners, freezes and dual writes
// clear. Returns the moves that changed owners — whose sources now hold
// stale copies the migrator must drop (marking them suspect until done).
func (m *PartitionMap) Activate() ([]Move, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending == nil {
		return nil, fmt.Errorf("cluster: no migration in flight")
	}
	moves := Moves(m.cur, *m.pending)
	m.resetLocked(*m.pending)
	return moves, nil
}

// Abort discards the pending epoch and clears all migration state — the
// rollback path; the cluster keeps routing on the current epoch exactly as
// before BeginMigration.
func (m *PartitionMap) Abort() {
	m.mu.Lock()
	m.pending = nil
	m.frozen = map[int]bool{}
	m.dual = map[int]string{}
	m.mu.Unlock()
}

// Migrating lists the partitions whose answers may be incomplete right
// now: every owner-changing partition while a migration is in flight, plus
// any suspect partitions (stale copies not yet dropped). Ascending,
// deduplicated, nil when settled.
func (m *PartitionMap) Migrating() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	set := map[int]bool{}
	if m.pending != nil {
		for _, mv := range Moves(m.cur, *m.pending) {
			set[mv.Partition] = true
		}
	}
	for p := range m.suspect {
		set[p] = true
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// MarkSuspect records that node still holds partition p's pre-migration
// copy (its post-activation drop failed); queries stay partial for p until
// ClearSuspect.
func (m *PartitionMap) MarkSuspect(p int, node string) {
	m.mu.Lock()
	m.suspect[p] = node
	m.mu.Unlock()
}

// ClearSuspect removes a suspect entry once the stale copy is gone.
func (m *PartitionMap) ClearSuspect(p int) {
	m.mu.Lock()
	delete(m.suspect, p)
	m.mu.Unlock()
}

// ClearSuspectsOf removes every suspect entry pinned on one node — called
// when the node leaves the membership. A non-member's copies are invisible
// to queries anyway (the assignment filter skips them) and its admin
// transport is gone, so the entries could otherwise never clear and would
// pin every query partial forever.
func (m *PartitionMap) ClearSuspectsOf(node string) {
	m.mu.Lock()
	for p, n := range m.suspect {
		if n == node {
			delete(m.suspect, p)
		}
	}
	m.mu.Unlock()
}

// Suspects returns the current suspect set (partition → holding node).
func (m *PartitionMap) Suspects() map[int]string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[int]string, len(m.suspect))
	for p, n := range m.suspect {
		out[p] = n
	}
	return out
}
