package cluster

import (
	"edgescope/internal/obs"
	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
)

// Transport delivers one envelope to one node, returning whether the node
// acknowledged it. Implementations: HTTPNode.Ingest over the wire, a
// direct Ingestor.Offer in tests, or either wrapped in a fault injector.
type Transport func(node string, e telemetry.Envelope) bool

// RouterConfig tunes the routing ingest client.
type RouterConfig struct {
	// Retry is handed to the underlying telemetry.RetryClient — the same
	// bounded-backoff machinery the single-node client uses, now wrapped
	// around partition routing. Its dedup sequence numbers make failover
	// safe: a resend that lands twice folds once server-side.
	Retry telemetry.RetryConfig
	// Metrics, when set, registers the routing families (cluster_router_*).
	Metrics *obs.Registry
}

// RouterStats counts routing decisions.
type RouterStats struct {
	// Routed counts envelopes delivered to their partition's owner.
	Routed uint64 `json:"routed"`
	// FailedOver counts envelopes delivered to the replica because the
	// owner was marked down.
	FailedOver uint64 `json:"failed_over"`
	// Unroutable counts attempts with no live target — owner down and no
	// (live) replica. The retry client backs off and retries these, so one
	// envelope can count several times while an outage lasts.
	Unroutable uint64 `json:"unroutable"`
	// Frozen counts attempts refused because the partition was mid-handoff
	// (its exact-cut freeze window); the retry client's backoff absorbs
	// the pause and redelivers after cutover.
	Frozen uint64 `json:"frozen,omitempty"`
	// DualWrites counts deliveries duplicated to the pending epoch's owner
	// during a migration's dual-write phase.
	DualWrites uint64 `json:"dual_writes,omitempty"`
	// Client is the underlying retry client's view (sent/retries/failed).
	Client telemetry.ClientStats `json:"client"`
}

// Router is the ingest front door: it maps each envelope's key to its
// partition, sends to the owning node, and — when the health tracker has
// marked the owner down and the map has a replica — fails over to the
// replica. Everything rides inside a telemetry.RetryClient, so transient
// refusals (including the whole failover window under replication factor
// 1) get bounded exponential backoff and per-key sequence numbers that
// make duplicates from retries fold away server-side.
//
// Failover is markdown-gated on purpose: a transport failure against an
// owner still marked up is treated as transient (return false → retry),
// not as a cue to scatter a partition's writes across nodes. Only the
// health state machine — evidence accumulated over consecutive probes —
// moves a partition's traffic, which keeps each (window, key) rollup on
// one node in the common case and preserves single-node byte-identity.
//
// Send/SendAll must be called from a single goroutine, like the
// RetryClient they wrap.
type Router struct {
	pm        *PartitionMap
	health    *HealthTracker
	transport Transport
	client    *telemetry.RetryClient

	routed     *obs.Counter
	failedOver *obs.Counter
	unroutable *obs.Counter
	frozen     *obs.Counter
	dualWrites *obs.Counter
}

// NewRouter wires a routing client over a partition map, a health tracker
// and a node transport. src seeds the retry client's backoff jitter.
func NewRouter(pm *PartitionMap, health *HealthTracker, transport Transport, src *rng.Source, cfg RouterConfig) *Router {
	r := &Router{pm: pm, health: health, transport: transport}
	if cfg.Metrics != nil {
		r.routed = cfg.Metrics.Counter("cluster_router_routed_total", "envelopes delivered to their partition owner")
		r.failedOver = cfg.Metrics.Counter("cluster_router_failed_over_total", "envelopes delivered to the replica while the owner was down")
		r.unroutable = cfg.Metrics.Counter("cluster_router_unroutable_total", "send attempts with no live target node")
		r.frozen = cfg.Metrics.Counter("cluster_router_frozen_total", "send attempts refused during a partition's handoff freeze")
		r.dualWrites = cfg.Metrics.Counter("cluster_router_dual_writes_total", "deliveries duplicated to the pending epoch's owner")
	} else {
		r.routed = &obs.Counter{}
		r.failedOver = &obs.Counter{}
		r.unroutable = &obs.Counter{}
		r.frozen = &obs.Counter{}
		r.dualWrites = &obs.Counter{}
	}
	r.client = telemetry.NewRetryClient(r.route, src, cfg.Retry)
	return r
}

// route is the RetryClient's send function: one delivery attempt. Owner,
// freeze state and dual-write target are snapshotted atomically under one
// lock (PartitionMap.Route) before anything is transported — read
// piecemeal, an epoch activation could clear the dual map between the
// owner read and the dual check, and the envelope would be acked having
// landed only on the losing owner, whose copy the migrator then drops.
func (r *Router) route(e telemetry.Envelope) bool {
	p := r.pm.PartitionOf(e.Key())
	rt := r.pm.Route(p)
	if rt.Frozen {
		// Mid-handoff exact cut: refuse so the retry client backs off and
		// redelivers after cutover. Nothing may land on either side while
		// the pages are being shipped, or the page and the live write could
		// double-count.
		r.frozen.Inc()
		return false
	}
	if r.health.State(rt.Owner) != StateDown {
		// A transport failure against an owner marked routable is transient:
		// deliver returns false and the retry client backs off rather than
		// failing over on a single error.
		return r.deliver(p, rt, rt.Owner, e, r.routed)
	}
	if rt.HasReplica && r.health.State(rt.Replica) != StateDown {
		return r.deliver(p, rt, rt.Replica, e, r.failedOver)
	}
	r.unroutable.Inc()
	return false
}

// deliver transports one envelope to the chosen node, duplicates it to the
// pending epoch's owner during a migration's dual-write phase, and guards
// the ack against a migration racing the delivery. The attempt only
// succeeds when every required copy acks: a false makes the retry client
// resend, and the per-key sequence numbers fold the duplicate away on
// whichever node already folded it — idempotent convergence instead of
// divergent copies.
func (r *Router) deliver(p int, rt RouteTarget, target string, e telemetry.Envelope, delivered *obs.Counter) bool {
	if !r.transport(target, e) {
		return false
	}
	if rt.HasDual {
		// The snapshot saw the dual-write phase, so both epochs' owners must
		// ack. Once both have, the envelope is safe against any outcome:
		// activation keeps the pending owner's copy, rollback keeps the
		// current owner's.
		if rt.Dual != target {
			if !r.transport(rt.Dual, e) {
				return false
			}
			r.dualWrites.Inc()
		}
		delivered.Inc()
		return true
	}
	// No dual target when the snapshot was taken, so nothing guaranteed the
	// pending owner a copy. If a cutover or activation landed while the
	// envelope was in flight it may exist only on a node whose copy is
	// about to be dropped — refuse the ack and let the retry client
	// redeliver under the new routing state; sequence dedup folds the
	// duplicate on whichever node already folded it.
	if after := r.pm.Route(p); after.Owner != rt.Owner || after.HasDual {
		return false
	}
	delivered.Inc()
	return true
}

// Send routes one envelope, retrying with backoff until acknowledged or
// the attempt budget is spent. Reports whether the envelope was acked.
func (r *Router) Send(e telemetry.Envelope) bool { return r.client.Send(e) }

// SendAll routes a batch in order, returning how many were acked.
func (r *Router) SendAll(events []telemetry.Envelope) int { return r.client.SendAll(events) }

// SeqState exposes the retry client's per-key sequence state (checkpoint
// support — see telemetry.RetryClient.SeqState).
func (r *Router) SeqState() []telemetry.SeqRecord { return r.client.SeqState() }

// RestoreSeqState seeds sequence numbering from a checkpoint.
func (r *Router) RestoreSeqState(recs []telemetry.SeqRecord) { r.client.RestoreSeqState(recs) }

// Stats returns a snapshot of routing counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Routed:     r.routed.Value(),
		FailedOver: r.failedOver.Value(),
		Unroutable: r.unroutable.Value(),
		Frozen:     r.frozen.Value(),
		DualWrites: r.dualWrites.Value(),
		Client:     r.client.Stats(),
	}
}
