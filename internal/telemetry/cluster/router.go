package cluster

import (
	"edgescope/internal/obs"
	"edgescope/internal/rng"
	"edgescope/internal/telemetry"
)

// Transport delivers one envelope to one node, returning whether the node
// acknowledged it. Implementations: HTTPNode.Ingest over the wire, a
// direct Ingestor.Offer in tests, or either wrapped in a fault injector.
type Transport func(node string, e telemetry.Envelope) bool

// RouterConfig tunes the routing ingest client.
type RouterConfig struct {
	// Retry is handed to the underlying telemetry.RetryClient — the same
	// bounded-backoff machinery the single-node client uses, now wrapped
	// around partition routing. Its dedup sequence numbers make failover
	// safe: a resend that lands twice folds once server-side.
	Retry telemetry.RetryConfig
	// Metrics, when set, registers the routing families (cluster_router_*).
	Metrics *obs.Registry
}

// RouterStats counts routing decisions.
type RouterStats struct {
	// Routed counts envelopes delivered to their partition's owner.
	Routed uint64 `json:"routed"`
	// FailedOver counts envelopes delivered to the replica because the
	// owner was marked down.
	FailedOver uint64 `json:"failed_over"`
	// Unroutable counts attempts with no live target — owner down and no
	// (live) replica. The retry client backs off and retries these, so one
	// envelope can count several times while an outage lasts.
	Unroutable uint64 `json:"unroutable"`
	// Frozen counts attempts refused because the partition was mid-handoff
	// (its exact-cut freeze window); the retry client's backoff absorbs
	// the pause and redelivers after cutover.
	Frozen uint64 `json:"frozen,omitempty"`
	// DualWrites counts deliveries duplicated to the pending epoch's owner
	// during a migration's dual-write phase.
	DualWrites uint64 `json:"dual_writes,omitempty"`
	// Client is the underlying retry client's view (sent/retries/failed).
	Client telemetry.ClientStats `json:"client"`
}

// Router is the ingest front door: it maps each envelope's key to its
// partition, sends to the owning node, and — when the health tracker has
// marked the owner down and the map has a replica — fails over to the
// replica. Everything rides inside a telemetry.RetryClient, so transient
// refusals (including the whole failover window under replication factor
// 1) get bounded exponential backoff and per-key sequence numbers that
// make duplicates from retries fold away server-side.
//
// Failover is markdown-gated on purpose: a transport failure against an
// owner still marked up is treated as transient (return false → retry),
// not as a cue to scatter a partition's writes across nodes. Only the
// health state machine — evidence accumulated over consecutive probes —
// moves a partition's traffic, which keeps each (window, key) rollup on
// one node in the common case and preserves single-node byte-identity.
//
// Send/SendAll must be called from a single goroutine, like the
// RetryClient they wrap.
type Router struct {
	pm        *PartitionMap
	health    *HealthTracker
	transport Transport
	client    *telemetry.RetryClient

	routed     *obs.Counter
	failedOver *obs.Counter
	unroutable *obs.Counter
	frozen     *obs.Counter
	dualWrites *obs.Counter
}

// NewRouter wires a routing client over a partition map, a health tracker
// and a node transport. src seeds the retry client's backoff jitter.
func NewRouter(pm *PartitionMap, health *HealthTracker, transport Transport, src *rng.Source, cfg RouterConfig) *Router {
	r := &Router{pm: pm, health: health, transport: transport}
	if cfg.Metrics != nil {
		r.routed = cfg.Metrics.Counter("cluster_router_routed_total", "envelopes delivered to their partition owner")
		r.failedOver = cfg.Metrics.Counter("cluster_router_failed_over_total", "envelopes delivered to the replica while the owner was down")
		r.unroutable = cfg.Metrics.Counter("cluster_router_unroutable_total", "send attempts with no live target node")
		r.frozen = cfg.Metrics.Counter("cluster_router_frozen_total", "send attempts refused during a partition's handoff freeze")
		r.dualWrites = cfg.Metrics.Counter("cluster_router_dual_writes_total", "deliveries duplicated to the pending epoch's owner")
	} else {
		r.routed = &obs.Counter{}
		r.failedOver = &obs.Counter{}
		r.unroutable = &obs.Counter{}
		r.frozen = &obs.Counter{}
		r.dualWrites = &obs.Counter{}
	}
	r.client = telemetry.NewRetryClient(r.route, src, cfg.Retry)
	return r
}

// route is the RetryClient's send function: one delivery attempt.
func (r *Router) route(e telemetry.Envelope) bool {
	p := r.pm.PartitionOf(e.Key())
	if r.pm.Frozen(p) {
		// Mid-handoff exact cut: refuse so the retry client backs off and
		// redelivers after cutover. Nothing may land on either side while
		// the pages are being shipped, or the page and the live write could
		// double-count.
		r.frozen.Inc()
		return false
	}
	owner := r.pm.Owner(p)
	if r.health.State(owner) != StateDown {
		if r.transport(owner, e) {
			r.routed.Inc()
			return r.dualWrite(p, owner, e)
		}
		// The owner is marked routable but the send failed: transient.
		// Let the retry client back off rather than failing over on a
		// single error.
		return false
	}
	if replica, ok := r.pm.Replica(p); ok && r.health.State(replica) != StateDown {
		if r.transport(replica, e) {
			r.failedOver.Inc()
			return r.dualWrite(p, replica, e)
		}
		return false
	}
	r.unroutable.Inc()
	return false
}

// dualWrite duplicates a delivered envelope to the pending epoch's owner
// during a migration's dual-write phase. The attempt only succeeds when
// BOTH copies ack: a false here makes the retry client resend, and the
// per-key sequence numbers fold the duplicate away on whichever node
// already folded it — idempotent convergence instead of divergent copies.
func (r *Router) dualWrite(p int, delivered string, e telemetry.Envelope) bool {
	dual, ok := r.pm.DualTarget(p)
	if !ok || dual == delivered {
		return true
	}
	if !r.transport(dual, e) {
		return false
	}
	r.dualWrites.Inc()
	return true
}

// Send routes one envelope, retrying with backoff until acknowledged or
// the attempt budget is spent. Reports whether the envelope was acked.
func (r *Router) Send(e telemetry.Envelope) bool { return r.client.Send(e) }

// SendAll routes a batch in order, returning how many were acked.
func (r *Router) SendAll(events []telemetry.Envelope) int { return r.client.SendAll(events) }

// SeqState exposes the retry client's per-key sequence state (checkpoint
// support — see telemetry.RetryClient.SeqState).
func (r *Router) SeqState() []telemetry.SeqRecord { return r.client.SeqState() }

// RestoreSeqState seeds sequence numbering from a checkpoint.
func (r *Router) RestoreSeqState(recs []telemetry.SeqRecord) { r.client.RestoreSeqState(recs) }

// Stats returns a snapshot of routing counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Routed:     r.routed.Value(),
		FailedOver: r.failedOver.Value(),
		Unroutable: r.unroutable.Value(),
		Frozen:     r.frozen.Value(),
		DualWrites: r.dualWrites.Value(),
		Client:     r.client.Stats(),
	}
}
