package cluster

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/telemetry"
)

// markdownDivergeRF2 replays a scenario stream into an RF2 cluster with a
// one-rollup-window markdown of the victim, so the victim's partitions
// fail over and their replicas end up holding non-empty failover slices —
// the precondition every destination-restore pin needs.
func markdownDivergeRF2(t *testing.T, c *testCluster, pm *PartitionMap, events []telemetry.Envelope, victim string, seed uint64) {
	t.Helper()
	const winMs = int64(60_000) // telemetry.Config.Window default
	ownerDown := false
	tracker := NewHealthTracker(pm.Nodes(), func(node string) ProbeResult {
		return ProbeResult{Reachable: !(ownerDown && node == victim)}
	}, HealthConfig{DownAfter: 1, UpAfter: 1})
	router := NewRouter(pm, tracker, c.transport, rng.New(seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
	})
	seen := map[int64]bool{}
	var windows []int64
	for _, e := range events {
		if w := e.TS / winMs; !seen[w] {
			seen[w] = true
			windows = append(windows, w)
		}
	}
	if len(windows) < 3 {
		t.Fatalf("scenario too narrow: %d windows", len(windows))
	}
	markdown := windows[len(windows)/2]
	for _, e := range events {
		down := e.TS/winMs == markdown
		if down != ownerDown {
			ownerDown = down
			tracker.ProbeOnce()
		}
		if !router.Send(e) {
			t.Fatal("send refused despite live failover target")
		}
	}
	c.flushAll()
}

// divergedPartition picks a victim-owned partition whose replica holds a
// non-empty failover slice.
func divergedPartition(t *testing.T, c *testCluster, pm *PartitionMap, victim string) int {
	t.Helper()
	for _, p := range pm.OwnedBy(victim) {
		r, _ := pm.Replica(p)
		if pages, err := c.get(r).PartitionPages(p, pm.Partitions()); err == nil && len(pages) > 0 {
			return p
		}
	}
	t.Fatal("no replica diverged — markdown window carried no victim traffic")
	return -1
}

// TestReplicaOnlyMovePreservesOwnerData pins the replica-move plan: when a
// partition's replica moves while its owner stays put, the rebuild at the
// owner must include the owner's OWN pages in the cut — the rebuild is
// drop-then-absorb, and a cut holding only the old replica's failover
// slice would durably destroy the owner's entire live partition.
func TestReplicaOnlyMovePreservesOwnerData(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	c := newTestCluster(t, pm, "")
	f := NewFrontend(pm, c.clients(), FrontendConfig{})
	const victim = "n1"
	markdownDivergeRF2(t, c, pm, events, victim, sp.Seed)
	target := divergedPartition(t, c, pm, victim)

	// Craft the next epoch moving ONLY the target's replica: owner stays,
	// the old replica's failover slice consolidates onto it, a third node
	// becomes the fresh replica.
	cur := pm.Current()
	owner, oldReplica := cur.Owners[target], cur.Replicas[target]
	next := cur.clone()
	next.Epoch++
	for _, n := range cur.Nodes {
		if n != owner && n != oldReplica {
			next.Replicas[target] = n
			break
		}
	}

	// The plan must list the owner (the rebuild destination) as a source.
	pls := plan(cur, next)
	if len(pls) != 1 || pls[0].p != target {
		t.Fatalf("plan = %+v, want exactly partition %d", pls, target)
	}
	if pls[0].dst != owner || len(pls[0].sources) != 2 || pls[0].sources[0] != owner || pls[0].sources[1] != oldReplica {
		t.Fatalf("plan sources = %+v, want dst %s rebuilt from [%s %s]", pls[0], owner, owner, oldReplica)
	}

	mig := newTestMigrator(c, pm, alwaysUpTracker(pm.Nodes()), nil)
	if err := mig.migrate(ctx, cur, next); err != nil {
		t.Fatalf("replica-only migration: %v", err)
	}
	if pm.Epoch() != cur.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", pm.Epoch(), cur.Epoch+1)
	}
	if mg := pm.Migrating(); mg != nil {
		t.Fatalf("migration residue: %v", mg)
	}
	if pages, err := c.get(oldReplica).PartitionPages(target, 16); err != nil || len(pages) != 0 {
		t.Fatalf("old replica still holds %d pages (err %v)", len(pages), err)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("replica-only move destroyed or duplicated owner data")
	}
}

// TestPromotionRollbackRestoresReplicaSlice pins rollback for a promotion:
// the rebuild stages the full partition on the current replica (dropping
// its failover slice in the process), then the migration fails at
// activation. Rollback must put the replica's own slice back — dropping
// the staged copy wholesale would durably destroy the slice's only copy —
// and the cluster must answer byte-identically on the old epoch, with a
// clean retry still converging.
func TestPromotionRollbackRestoresReplicaSlice(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	c := newTestCluster(t, pm, "")
	f := NewFrontend(pm, c.clients(), FrontendConfig{})
	const victim = "n1"
	markdownDivergeRF2(t, c, pm, events, victim, sp.Seed)
	target := divergedPartition(t, c, pm, victim)

	// Promotion: the diverged replica becomes the owner, the old owner its
	// replica.
	cur := pm.Current()
	owner, replica := cur.Owners[target], cur.Replicas[target]
	next := cur.clone()
	next.Epoch++
	next.Owners[target], next.Replicas[target] = replica, owner

	failActivate := true
	mig := newTestMigrator(c, pm, alwaysUpTracker(pm.Nodes()), func(s HandoffStep) error {
		if failActivate && s.Phase == "activate" {
			return fmt.Errorf("injected activation failure")
		}
		return nil
	})
	if err := mig.migrate(ctx, cur, next); err == nil {
		t.Fatal("migration with failing activation must error")
	}
	if pm.Epoch() != cur.Epoch || pm.Pending() != nil {
		t.Fatalf("rollback left epoch=%d pending=%v", pm.Epoch(), pm.Pending())
	}
	if mg := pm.Migrating(); mg != nil {
		t.Fatalf("rollback left suspects: %v", mg)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("rollback destroyed the promoted replica's failover slice")
	}

	// Clean retry of the same promotion converges.
	failActivate = false
	if err := mig.migrate(ctx, pm.Current(), next); err != nil {
		t.Fatalf("retried promotion: %v", err)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-retry answers diverged from single node")
	}
}

// flakyAbsorbAdmin fails the next *fails AbsorbPages calls — the seam for
// rebuild-exhaustion pins.
type flakyAbsorbAdmin struct {
	NodeAdmin
	fails *int
}

func (a flakyAbsorbAdmin) AbsorbPages(ctx context.Context, pages []telemetry.SketchPage) (telemetry.AbsorbAck, error) {
	if *a.fails > 0 {
		*a.fails--
		return telemetry.AbsorbAck{}, fmt.Errorf("injected absorb failure")
	}
	return a.NodeAdmin.AbsorbPages(ctx, pages)
}

// TestCatchUpAbsorbFailureRestoresOwner pins the failed-rebuild restore: a
// catch-up drops the owner's partition and then every absorb attempt
// fails. The owner's own cut must be re-absorbed before the handoff
// reports failure — the drop is durable and the replacement existed only
// in the coordinator's memory — leaving answers byte-identical and
// nothing suspect.
func TestCatchUpAbsorbFailureRestoresOwner(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	c := newTestCluster(t, pm, "")
	f := NewFrontend(pm, c.clients(), FrontendConfig{})
	const victim = "n1"
	markdownDivergeRF2(t, c, pm, events, victim, sp.Seed)
	target := divergedPartition(t, c, pm, victim)

	// Fail exactly the rebuild's attempt budget, so the rebuild exhausts
	// and the restore's own absorb succeeds.
	mig := newTestMigrator(c, pm, alwaysUpTracker(pm.Nodes()), nil)
	fails := mig.cfg.Attempts
	mig.AddAdmin(victim, flakyAbsorbAdmin{NodeAdmin: testAdmin{c: c, node: victim}, fails: &fails})
	if err := mig.CatchUp(ctx, target); err == nil {
		t.Fatal("catch-up with failing absorbs must error")
	}
	if mg := pm.Migrating(); mg != nil {
		t.Fatalf("restore left suspects: %v", mg)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("failed rebuild destroyed the owner's partition")
	}
	// And the retry converges now that absorbs work again.
	if err := mig.CatchUp(ctx, target); err != nil {
		t.Fatalf("retried catch-up: %v", err)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-retry answers diverged from single node")
	}
}

// TestSpillRecoveryRestoresOwnerAfterFailedRestore pins the durable spill:
// when both the rebuild AND the in-line restore fail, the destination is
// left suspect (queries exclude its broken copy and disclose partiality),
// further migrations refuse to run over the wound, and the spill written
// before the first drop lets RecoverSpills — the coordinator-reboot path —
// put the destination back byte-identically.
func TestSpillRecoveryRestoresOwnerAfterFailedRestore(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	ctx := context.Background()

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	c := newTestCluster(t, pm, "")
	f := NewFrontend(pm, c.clients(), FrontendConfig{})
	const victim = "n1"
	markdownDivergeRF2(t, c, pm, events, victim, sp.Seed)
	target := divergedPartition(t, c, pm, victim)

	spillDir := t.TempDir()
	admins := map[string]NodeAdmin{}
	for _, n := range pm.Nodes() {
		admins[n] = testAdmin{c: c, node: n}
	}
	mig := NewMigrator(pm, admins, MigratorConfig{SpillDir: spillDir})
	fails := 1 << 20 // every absorb fails: rebuild exhausts AND restore fails
	mig.AddAdmin(victim, flakyAbsorbAdmin{NodeAdmin: testAdmin{c: c, node: victim}, fails: &fails})

	if err := mig.CatchUp(ctx, target); err == nil {
		t.Fatal("catch-up with failing absorbs must error")
	}
	// The owner's copy is broken (dropped, restore failed): suspect, spill
	// kept, queries partial but never double-counting.
	if sus := pm.Suspects(); sus[target] != pm.Current().Owners[target] {
		t.Fatalf("suspects = %v, want %d on the owner", sus, target)
	}
	if _, err := os.Stat(mig.spillPath(target)); err != nil {
		t.Fatalf("spill not kept after failed restore: %v", err)
	}
	res, err := f.Query(ctx, fingerprintSpecs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("broken owner copy not disclosed as partial")
	}
	// Migrations refuse to run over the unrecovered wound.
	if _, err := mig.Drain(ctx, "n2"); err == nil || !strings.Contains(err.Error(), "spill") {
		t.Fatalf("migration over an unrecovered spill must refuse, got %v", err)
	}

	// Coordinator reboot: a fresh migrator over the same spill dir (and
	// healed transports) restores the owner's pre-handoff state.
	reborn := NewMigrator(pm, admins, MigratorConfig{SpillDir: spillDir})
	restored, err := reborn.RecoverSpills(ctx)
	if err != nil {
		t.Fatalf("RecoverSpills: %v", err)
	}
	if len(restored) != 1 || restored[0] != target {
		t.Fatalf("restored = %v, want [%d]", restored, target)
	}
	if _, err := os.Stat(mig.spillPath(target)); !os.IsNotExist(err) {
		t.Fatalf("spill survived recovery: %v", err)
	}
	if mg := pm.Migrating(); mg != nil {
		t.Fatalf("recovery left suspects: %v", mg)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("spill recovery did not restore the owner byte-identically")
	}
	// And the catch-up itself now completes.
	if err := reborn.CatchUp(ctx, target); err != nil {
		t.Fatalf("post-recovery catch-up: %v", err)
	}
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-recovery catch-up diverged")
	}
}

// TestRouterActivationRaceNeverAcksOldOwnerOnly pins the routing snapshot
// against an epoch activation racing a delivery: whichever side of the
// cutover the snapshot lands on, an acked envelope must exist on the new
// epoch's owner — never only on the old owner, whose copy the migrator
// drops right after activation.
func TestRouterActivationRaceNeverAcksOldOwnerOnly(t *testing.T) {
	e := telemetry.Envelope{V: 1, TS: 60_000, Kind: "ping", Metric: telemetry.MetricRTT, User: 7, Region: "metro-a", Net: "fiber", Value: 12.5}

	build := func(t *testing.T) (*PartitionMap, int, Assignment) {
		pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"a", "b"}})
		p := pm.PartitionOf(e.Key())
		cur := pm.Current()
		next := cur.clone()
		next.Epoch++
		// Move the envelope's partition a→b (wherever it currently lives).
		if cur.Owners[p] == "a" {
			next.Owners[p] = "b"
		} else {
			next.Owners[p] = "a"
		}
		if err := pm.BeginMigration(next); err != nil {
			t.Fatal(err)
		}
		return pm, p, next
	}

	t.Run("activation between delivery and dual check", func(t *testing.T) {
		// The dual-write phase is on; the old owner's ack triggers the
		// activation before the router looks at the dual target again. The
		// snapshot taken before the transport must already have committed
		// the router to delivering both copies.
		pm, p, next := build(t)
		pm.Cutover(p)
		oldOwner, newOwner := pm.Owner(p), next.Owners[p]
		delivered := map[string]int{}
		transport := func(node string, ev telemetry.Envelope) bool {
			delivered[node]++
			if node == oldOwner && pm.Pending() != nil {
				if _, err := pm.Activate(); err != nil {
					t.Fatal(err)
				}
			}
			return true
		}
		r := NewRouter(pm, alwaysUpTracker(pm.Nodes()), transport, rng.New(1), RouterConfig{
			Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
		})
		if !r.Send(e) {
			t.Fatal("send not acked")
		}
		if delivered[newOwner] == 0 {
			t.Fatalf("acked envelope never reached the new owner %q: %v", newOwner, delivered)
		}
	})

	t.Run("cutover and activation during delivery", func(t *testing.T) {
		// The snapshot predates the dual-write phase entirely; cutover AND
		// activation land while the envelope is in flight to the old owner.
		// The router must refuse that ack and redeliver to the new owner.
		pm, p, next := build(t)
		oldOwner, newOwner := pm.Owner(p), next.Owners[p]
		delivered := map[string]int{}
		transport := func(node string, ev telemetry.Envelope) bool {
			delivered[node]++
			if node == oldOwner && pm.Pending() != nil {
				pm.Cutover(p)
				if _, err := pm.Activate(); err != nil {
					t.Fatal(err)
				}
			}
			return true
		}
		r := NewRouter(pm, alwaysUpTracker(pm.Nodes()), transport, rng.New(1), RouterConfig{
			Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
		})
		if !r.Send(e) {
			t.Fatal("send not acked after retry")
		}
		if delivered[newOwner] == 0 {
			t.Fatalf("acked envelope never reached the new owner %q: %v", newOwner, delivered)
		}
	})
}

// TestSuspectsClearWhenHolderLeaves pins the departed-holder fix: a
// suspect entry pinned on a node that leaves the membership (or is simply
// gone by Settle time) clears instead of keeping every query partial
// forever against a copy no query can see.
func TestSuspectsClearWhenHolderLeaves(t *testing.T) {
	ctx := context.Background()
	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, "")
	mig := newTestMigrator(c, pm, alwaysUpTracker(pm.Nodes()), nil)

	// Leave clears the departing holder's entries.
	pm.MarkSuspect(3, "n2")
	if _, err := mig.Leave(ctx, "n2"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if mg := pm.Migrating(); mg != nil {
		t.Fatalf("departed holder still pins partiality: %v", mg)
	}

	// Settle clears entries whose holder is no longer a member, even with
	// no admin transport left to drop through.
	pm.MarkSuspect(5, "ghost")
	if still := mig.Settle(ctx); still != nil {
		t.Fatalf("Settle left suspects: %v", still)
	}
	if sus := pm.Suspects(); len(sus) != 0 {
		t.Fatalf("non-member suspect survived Settle: %v", sus)
	}
}
