package cluster

import (
	"sort"
	"sync"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/rng"
)

// NodeState is a member's routability as seen by the health tracker.
type NodeState int32

const (
	// StateUp: probes answer and the node reports healthy.
	StateUp NodeState = iota
	// StateDegraded: the node answers but reports degraded (WAL trouble,
	// saturated queues), or has missed fewer probes than the down
	// threshold. Degraded nodes are still routed to — they hold their
	// partitions' data and accept writes.
	StateDegraded
	// StateDown: DownAfter consecutive probes failed. The router stops
	// sending (failing over to replicas where the map has them) and the
	// front-end reports the node's partitions as missing until it is back.
	StateDown
)

func (s NodeState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// ProbeResult is one health probe's outcome.
type ProbeResult struct {
	// Reachable: the probe got an answer at all.
	Reachable bool
	// Degraded: the node answered and self-reported degraded (the
	// /healthz "status" field). Meaningless when unreachable.
	Degraded bool
}

// Prober checks one node now. Implementations: HTTPProber (GET /healthz),
// or any test double — the chaos harness probes through the same fault
// injector the router sends through, so a partitioned node looks down from
// the router's vantage even though it is alive.
type Prober func(node string) ProbeResult

// HealthConfig tunes the membership state machine. The zero value gets the
// documented defaults.
type HealthConfig struct {
	// Interval is Start's probe period. Default 1s. Tests that need
	// deterministic schedules skip Start and call ProbeOnce directly.
	Interval time.Duration
	// DownAfter is the consecutive unreachable probes that mark a node
	// down. Default 3 — one lost probe degrades, a run of them downs.
	DownAfter int
	// UpAfter is the consecutive successful probes a down node needs
	// before it is routable again. Default 2 — a flapping node must hold
	// still briefly before traffic returns.
	UpAfter int
	// Jitter, when set, spreads Start's probe schedule: each wait is drawn
	// uniformly from [0.9, 1.1) × Interval, so N trackers booted together
	// (every node probing every other) drift apart instead of probing in
	// synchronized bursts — the thundering-herd fix. The seeded source
	// makes the schedule deterministic under test. nil keeps the fixed
	// ticker.
	Jitter *rng.Source
	// Metrics, when set, registers the membership families (cluster_node_*).
	Metrics *obs.Registry
}

func (c *HealthConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
}

// nodeHealth is one member's state-machine cell.
type nodeHealth struct {
	state       NodeState
	fails       int // consecutive unreachable probes
	oks         int // consecutive reachable probes
	transitions uint64

	stateG   *obs.Gauge   // 0 up / 1 degraded / 2 down
	failures *obs.Counter // unreachable probes
	transC   *obs.Counter // state transitions
}

// NodeHealth is one member's reported state.
type NodeHealth struct {
	Node                string `json:"node"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	Transitions         uint64 `json:"transitions,omitempty"`
}

// HealthTracker drives the up/degraded/down state machine over periodic
// probes. Every node starts Up — a cluster boots optimistic and marks down
// from evidence, so a cold start routes immediately. Membership is
// elastic: Add and Remove adjust the probed set live (join/leave).
type HealthTracker struct {
	probe Prober
	cfg   HealthConfig

	mu    sync.Mutex
	nodes []string
	st    map[string]*nodeHealth

	// Vector families for Add to bind late-joining nodes' cells to; nil
	// without a registry.
	stateG *obs.GaugeVec
	failC  *obs.CounterVec
	transC *obs.CounterVec

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewHealthTracker builds a tracker over the given members.
func NewHealthTracker(nodes []string, probe Prober, cfg HealthConfig) *HealthTracker {
	cfg.fill()
	h := &HealthTracker{
		nodes: append([]string(nil), nodes...),
		probe: probe,
		cfg:   cfg,
		st:    make(map[string]*nodeHealth, len(nodes)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if cfg.Metrics != nil {
		h.stateG = cfg.Metrics.GaugeVec("cluster_node_state", "membership state: 0 up, 1 degraded, 2 down", "node")
		h.failC = cfg.Metrics.CounterVec("cluster_probe_failures_total", "health probes that got no answer", "node")
		h.transC = cfg.Metrics.CounterVec("cluster_node_transitions_total", "membership state transitions", "node")
	}
	for _, n := range h.nodes {
		h.st[n] = h.newCell(n)
	}
	return h
}

// newCell builds one member's state cell, bound to the registered vector
// families when metrics are on.
func (h *HealthTracker) newCell(n string) *nodeHealth {
	cell := &nodeHealth{}
	if h.stateG != nil {
		cell.stateG = h.stateG.With(n)
		cell.failures = h.failC.With(n)
		cell.transC = h.transC.With(n)
	} else {
		cell.failures = &obs.Counter{}
		cell.transC = &obs.Counter{}
	}
	return cell
}

// Add starts tracking a joining member (idempotent). The node starts Up,
// like every boot member — it joined by answering the admin plane, which
// is evidence enough until probes say otherwise.
func (h *HealthTracker) Add(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.st[node]; ok {
		return
	}
	h.nodes = append(h.nodes, node)
	h.st[node] = h.newCell(node)
}

// Remove stops tracking a departed member. Its state is forgotten: a
// removed node reads as Down (unknown), which is what the router must see.
func (h *HealthTracker) Remove(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.st, node)
	for i, n := range h.nodes {
		if n == node {
			h.nodes = append(h.nodes[:i], h.nodes[i+1:]...)
			break
		}
	}
}

// ProbeOnce probes every member once, in canonical node order, and advances
// the state machine — the deterministic unit Start loops on. The member
// list is snapshotted first, so Add/Remove during a pass are safe.
func (h *HealthTracker) ProbeOnce() {
	h.mu.Lock()
	nodes := append([]string(nil), h.nodes...)
	h.mu.Unlock()
	for _, n := range nodes {
		res := h.probe(n)
		h.observe(n, res)
	}
}

// observe folds one probe result into a node's cell.
func (h *HealthTracker) observe(node string, res ProbeResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.st[node]
	if c == nil {
		return
	}
	var next NodeState
	switch {
	case !res.Reachable:
		c.fails++
		c.oks = 0
		c.failures.Inc()
		if c.fails >= h.cfg.DownAfter || c.state == StateDown {
			next = StateDown
		} else {
			next = StateDegraded
		}
	default:
		c.fails = 0
		c.oks++
		switch {
		case c.state == StateDown && c.oks < h.cfg.UpAfter:
			next = StateDown // hold a flapping node out until it proves stable
		case res.Degraded:
			next = StateDegraded
		default:
			next = StateUp
		}
	}
	if next != c.state {
		c.state = next
		c.transitions++
		c.transC.Inc()
	}
	if c.stateG != nil {
		c.stateG.Set(float64(c.state))
	}
}

// Start launches the periodic probe loop. Stop ends it; both are
// idempotent. Deterministic tests skip Start and drive ProbeOnce. With
// HealthConfig.Jitter set, each wait is a fresh draw from [0.9, 1.1) ×
// Interval so co-booted trackers desynchronize; otherwise a fixed ticker.
func (h *HealthTracker) Start() {
	h.startOnce.Do(func() {
		go func() {
			defer close(h.done)
			if h.cfg.Jitter == nil {
				t := time.NewTicker(h.cfg.Interval)
				defer t.Stop()
				for {
					select {
					case <-h.stop:
						return
					case <-t.C:
						h.ProbeOnce()
					}
				}
			}
			t := time.NewTimer(h.nextWait())
			defer t.Stop()
			for {
				select {
				case <-h.stop:
					return
				case <-t.C:
					h.ProbeOnce()
					t.Reset(h.nextWait())
				}
			}
		}()
	})
}

// nextWait draws one jittered probe interval: Interval × [0.9, 1.1).
func (h *HealthTracker) nextWait() time.Duration {
	f := 0.9 + 0.2*h.cfg.Jitter.Float64()
	return time.Duration(float64(h.cfg.Interval) * f)
}

// Stop ends the probe loop started by Start and waits for it to exit.
func (h *HealthTracker) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.startOnce.Do(func() { close(h.done) }) // never started: done must still close
	<-h.done
}

// State returns a member's current state. Unknown nodes are Down: the
// router must never send to an address the map does not know.
func (h *HealthTracker) State(node string) NodeState {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.st[node]
	if c == nil {
		return StateDown
	}
	return c.state
}

// Snapshot reports every member, canonical node order.
func (h *HealthTracker) Snapshot() []NodeHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NodeHealth, 0, len(h.nodes))
	for _, n := range h.nodes {
		c := h.st[n]
		out = append(out, NodeHealth{
			Node:                n,
			State:               c.state.String(),
			ConsecutiveFailures: c.fails,
			Transitions:         c.transitions,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
