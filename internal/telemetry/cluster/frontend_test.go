package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"edgescope/internal/telemetry"
)

// fakeNode is a scriptable NodeClient.
type fakeNode struct {
	ing  *telemetry.Ingestor
	err  error
	hang bool // block until the gather leg's context expires
}

func (n *fakeNode) Sketches(ctx context.Context, spec telemetry.QuerySpec) (telemetry.SketchPage, error) {
	if n.hang {
		<-ctx.Done()
		return telemetry.SketchPage{}, ctx.Err()
	}
	if n.err != nil {
		return telemetry.SketchPage{}, n.err
	}
	return n.ing.MatchSketches(spec)
}

func (n *fakeNode) Keys(ctx context.Context) ([]telemetry.KeyCount, error) {
	if n.hang {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if n.err != nil {
		return nil, n.err
	}
	return n.ing.Keys(), nil
}

// frontendHarness: three in-memory nodes behind a partition-routed ingest,
// so the gather has real sketches to merge.
type frontendHarness struct {
	m     *PartitionMap
	nodes map[string]*fakeNode
	f     *Frontend
}

func newFrontendHarness(t *testing.T, rf int) *frontendHarness {
	t.Helper()
	m := mustMap(t, MapConfig{Partitions: 12, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: rf})
	h := &frontendHarness{m: m, nodes: map[string]*fakeNode{}}
	clients := map[string]NodeClient{}
	for _, n := range m.Nodes() {
		fn := &fakeNode{ing: telemetry.NewIngestor(telemetry.Config{Shards: 2, QueueLen: 256, Block: true})}
		t.Cleanup(func() { fn.ing.Close() })
		h.nodes[n] = fn
		clients[n] = fn
	}
	h.f = NewFrontend(m, clients, FrontendConfig{Timeout: 200 * time.Millisecond})

	// Seed deterministic traffic across all partitions.
	for i, region := range []string{"Beijing", "Shanghai", "Shenzhen", "Chengdu", "Wuhan", "Xian"} {
		for j, net := range []string{"WiFi", "5G", "4G"} {
			for k := 0; k < 5; k++ {
				e := clusterEnv("rtt_ms", region, net, float64(5+i*7+j*3+k))
				owner := m.Owner(m.PartitionOf(e.Key()))
				if !h.nodes[owner].ing.Offer(e) {
					t.Fatal("seed offer refused")
				}
			}
		}
	}
	for _, fn := range h.nodes {
		fn.ing.Flush()
	}
	return h
}

var frontSpec = telemetry.QuerySpec{
	Metric:    "rtt_ms",
	Quantiles: []float64{0.5, 0.95},
	CDFAt:     []float64{10, 30},
}

// TestFrontendCompleteMatchesDirectMerge: with every node answering the
// result is complete and equals merging every node's rollups into one
// ingestor-equivalent answer.
func TestFrontendCompleteMatchesDirectMerge(t *testing.T) {
	h := newFrontendHarness(t, 1)
	res, err := h.f.Query(context.Background(), frontSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.MissingPartitions != nil || res.MissingNodes != nil {
		t.Fatalf("complete answer flagged partial: %+v", res)
	}
	// Reference: gather the pages by hand and merge on the library path.
	var pages []telemetry.SketchPage
	for _, n := range h.m.Nodes() {
		page, err := h.nodes[n].ing.MatchSketches(frontSpec)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, page)
	}
	want, err := telemetry.MergeSketchPages(frontSpec, pages)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.QueryResult, want) {
		t.Fatalf("frontend merge diverged:\n got %+v\nwant %+v", res.QueryResult, want)
	}
	if res.Count == 0 || res.Windows == 0 {
		t.Fatalf("empty answer: %+v", res.QueryResult)
	}
}

// TestFrontendPartialNamesMissingPartitions: an unreachable node yields
// Partial plus exactly its owned partitions (RF1).
func TestFrontendPartialNamesMissingPartitions(t *testing.T) {
	h := newFrontendHarness(t, 1)
	h.nodes["n1"].err = errors.New("connection refused")
	res, err := h.f.Query(context.Background(), frontSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("missing node did not flag partial")
	}
	if !reflect.DeepEqual(res.MissingNodes, []string{"n1"}) {
		t.Fatalf("missing nodes = %v", res.MissingNodes)
	}
	if !reflect.DeepEqual(res.MissingPartitions, h.m.OwnedBy("n1")) {
		t.Fatalf("missing partitions = %v, n1 owns %v", res.MissingPartitions, h.m.OwnedBy("n1"))
	}
	if res.Count == 0 {
		t.Fatal("partial answer lost the surviving partitions' data")
	}
}

// TestFrontendReplicaCoversMissingNode: under RF2 a partition is missing
// only when owner AND replica are both unreachable.
func TestFrontendReplicaCoversMissingNode(t *testing.T) {
	h := newFrontendHarness(t, 2)
	h.nodes["n1"].err = errors.New("down")
	res, err := h.f.Query(context.Background(), frontSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("missing node did not flag partial")
	}
	// Every n1-owned partition has its replica on a live node, and every
	// partition n1 replicates has a live owner: nothing is fully missing.
	if res.MissingPartitions != nil {
		t.Fatalf("missing partitions = %v, want none under RF2", res.MissingPartitions)
	}

	h.nodes["n2"].err = errors.New("down")
	res, err = h.f.Query(context.Background(), frontSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Partitions owned by n1 with replica on n2 (and vice versa) now have
	// no surviving copy.
	if len(res.MissingPartitions) == 0 {
		t.Fatal("two dead nodes under RF2 left nothing missing")
	}
	for _, p := range res.MissingPartitions {
		owner := h.m.Owner(p)
		rep, _ := h.m.Replica(p)
		if owner == "n0" || rep == "n0" {
			t.Fatalf("partition %d has a copy on live n0 but was reported missing", p)
		}
	}
}

// TestFrontendTimeoutBoundsGather: a hung node costs one timeout, not a
// hung query, and is reported missing.
func TestFrontendTimeoutBoundsGather(t *testing.T) {
	h := newFrontendHarness(t, 1)
	h.nodes["n2"].hang = true
	start := time.Now()
	res, err := h.f.Query(context.Background(), frontSpec)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("gather took %v with a 200ms leg timeout", elapsed)
	}
	if !res.Partial || !reflect.DeepEqual(res.MissingNodes, []string{"n2"}) {
		t.Fatalf("hung node not reported missing: %+v", res)
	}
}

// TestFrontendResultJSONShape: a complete cluster answer marshals
// byte-identically to the embedded single-node QueryResult — the partial
// fields are invisible until set.
func TestFrontendResultJSONShape(t *testing.T) {
	h := newFrontendHarness(t, 1)
	res, err := h.f.Query(context.Background(), frontSpec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.QueryResult)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("complete Result JSON differs from QueryResult JSON:\n%s\n%s", got, want)
	}
}

func TestFrontendRejectsBadSpec(t *testing.T) {
	h := newFrontendHarness(t, 1)
	if _, err := h.f.Query(context.Background(), telemetry.QuerySpec{}); err == nil {
		t.Fatal("metric-less spec accepted")
	}
	if _, err := h.f.Query(context.Background(), telemetry.QuerySpec{
		Metric: "rtt_ms", Quantiles: []float64{1.5},
	}); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
}

// TestFrontendKeysMergesInventory: per-key counts sum across nodes and
// come back in canonical order; a dead node is reported.
func TestFrontendKeysMergesInventory(t *testing.T) {
	h := newFrontendHarness(t, 1)
	keys, missing := h.f.Keys(context.Background())
	if missing != nil {
		t.Fatalf("missing = %v", missing)
	}
	if len(keys) != 18 { // 6 regions x 3 nets
		t.Fatalf("key count = %d, want 18", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1].Key, keys[i].Key
		if a.Metric > b.Metric || (a.Metric == b.Metric && (a.Region > b.Region ||
			(a.Region == b.Region && a.Net >= b.Net))) {
			t.Fatalf("keys out of order at %d: %v then %v", i, a, b)
		}
	}
	var total float64
	for _, kc := range keys {
		total += kc.Count
	}
	if total != 6*3*5 {
		t.Fatalf("total count = %v, want %d", total, 6*3*5)
	}

	h.nodes["n0"].err = errors.New("down")
	_, missing = h.f.Keys(context.Background())
	if !reflect.DeepEqual(missing, []string{"n0"}) {
		t.Fatalf("missing = %v", missing)
	}
}
