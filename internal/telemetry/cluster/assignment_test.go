package cluster

import (
	"encoding/json"
	"reflect"
	"testing"
)

func mustRebalance(t *testing.T, cur Assignment, nodes []string) Assignment {
	t.Helper()
	next, err := Rebalance(cur, nodes)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	return next
}

// TestInitialAssignmentMatchesArithmetic pins epoch 1 to the static
// cluster's arithmetic placement: a cluster that never rebalances routes
// exactly as PR 9's p%N layout did.
func TestInitialAssignmentMatchesArithmetic(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	a := InitialAssignment(MapConfig{Partitions: 16, Nodes: nodes, ReplicationFactor: 2})
	if a.Epoch != 1 {
		t.Fatalf("epoch = %d", a.Epoch)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for p := 0; p < 16; p++ {
		if a.Owners[p] != nodes[p%3] {
			t.Fatalf("owner[%d] = %s, want %s", p, a.Owners[p], nodes[p%3])
		}
		if a.Replicas[p] != nodes[(p+1)%3] {
			t.Fatalf("replica[%d] = %s, want %s", p, a.Replicas[p], nodes[(p+1)%3])
		}
	}
}

// TestRebalanceMinimalMovement: a join moves only partitions TO the new
// node (exactly its quota), a leave moves only partitions FROM the
// departed one, and a no-op member list moves nothing at all.
func TestRebalanceMinimalMovement(t *testing.T) {
	cur := InitialAssignment(MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})

	join := mustRebalance(t, cur, []string{"n0", "n1", "n2", "n3"})
	if join.Epoch != cur.Epoch+1 {
		t.Fatalf("join epoch = %d", join.Epoch)
	}
	moves := Moves(cur, join)
	if len(moves) != 4 { // 16/4 = 4: exactly the newcomer's quota
		t.Fatalf("join moved %d partitions (%v), want 4", len(moves), moves)
	}
	for _, mv := range moves {
		if mv.To != "n3" {
			t.Fatalf("join moved %v — only the newcomer may gain", mv)
		}
	}

	same := mustRebalance(t, join, join.Nodes)
	if got := Moves(join, same); len(got) != 0 {
		t.Fatalf("identity rebalance moved %v", got)
	}

	leave := mustRebalance(t, join, []string{"n0", "n1", "n3"})
	for _, mv := range Moves(join, leave) {
		if mv.From != "n2" {
			t.Fatalf("leave moved %v — only the departing node may lose", mv)
		}
	}
	for p, o := range leave.Owners {
		if o == "n2" {
			t.Fatalf("partition %d still owned by departed n2", p)
		}
	}
}

// TestRebalanceLevels: after any membership change, per-node ownership
// counts differ by at most one.
func TestRebalanceLevels(t *testing.T) {
	cur := InitialAssignment(MapConfig{Partitions: 16, Nodes: []string{"a", "b", "c", "d", "e"}})
	for _, nodes := range [][]string{
		{"a", "b", "c", "d", "e", "f"},
		{"a", "c", "e"},
		{"a", "b", "c", "d", "e", "f", "g", "h"},
	} {
		next := mustRebalance(t, cur, nodes)
		counts := map[string]int{}
		for _, o := range next.Owners {
			counts[o]++
		}
		min, max := next.Partitions, 0
		for _, n := range nodes {
			c := counts[n]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("nodes %v: ownership skew %v", nodes, counts)
		}
		cur = next
	}
}

// TestRebalanceDrain: the drained node stays a member but owns and
// replicates nothing, and a subsequent leave moves zero partitions.
func TestRebalanceDrain(t *testing.T) {
	cur := InitialAssignment(MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	drained, err := RebalanceDrain(cur, "n1")
	if err != nil {
		t.Fatalf("RebalanceDrain: %v", err)
	}
	if !drained.Member("n1") {
		t.Fatal("drained node dropped from membership")
	}
	for p := range drained.Owners {
		if drained.Owners[p] == "n1" || drained.Replicas[p] == "n1" {
			t.Fatalf("partition %d still placed on drained n1", p)
		}
	}
	leave := mustRebalance(t, drained, []string{"n0", "n2"})
	if got := Moves(drained, leave); len(got) != 0 {
		t.Fatalf("leave after drain moved %v, want nothing", got)
	}
	if _, err := RebalanceDrain(cur, "ghost"); err == nil {
		t.Fatal("draining a non-member must error")
	}
}

// TestRebalanceDeterministic: same inputs, same table — byte for byte.
func TestRebalanceDeterministic(t *testing.T) {
	cur := InitialAssignment(MapConfig{Partitions: 32, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	a := mustRebalance(t, cur, []string{"n0", "n1", "n2", "n3", "n4"})
	b := mustRebalance(t, cur, []string{"n0", "n1", "n2", "n3", "n4"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rebalance is not deterministic")
	}
}

// TestAssignmentJSONRoundTrip: the table survives the wire intact — what
// lets the frontend persist it and push it to nodes.
func TestAssignmentJSONRoundTrip(t *testing.T) {
	cur := InitialAssignment(MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}, ReplicationFactor: 2})
	next := mustRebalance(t, cur, []string{"n0", "n1", "n2", "n3"})
	raw, err := json.Marshal(next)
	if err != nil {
		t.Fatal(err)
	}
	var back Assignment
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, back) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", next, back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped table invalid: %v", err)
	}
}

// TestAssignmentValidateRejects pins the malformed-table guards.
func TestAssignmentValidateRejects(t *testing.T) {
	good := InitialAssignment(MapConfig{Partitions: 4, Nodes: []string{"a", "b"}, ReplicationFactor: 2})
	for name, mutate := range map[string]func(*Assignment){
		"zero epoch":      func(a *Assignment) { a.Epoch = 0 },
		"no partitions":   func(a *Assignment) { a.Partitions = 0 },
		"bad rf":          func(a *Assignment) { a.ReplicationFactor = 3 },
		"empty node":      func(a *Assignment) { a.Nodes[1] = "" },
		"duplicate node":  func(a *Assignment) { a.Nodes[1] = "a" },
		"unknown owner":   func(a *Assignment) { a.Owners[0] = "ghost" },
		"short owners":    func(a *Assignment) { a.Owners = a.Owners[:2] },
		"replica==owner":  func(a *Assignment) { a.Replicas[0] = a.Owners[0] },
		"unknown replica": func(a *Assignment) { a.Replicas[0] = "ghost" },
	} {
		a := good.clone()
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted %+v", name, a)
		}
	}
}

// TestAssignmentNodeInfo: the pushed identity matches the table.
func TestAssignmentNodeInfo(t *testing.T) {
	a := InitialAssignment(MapConfig{Partitions: 6, Nodes: []string{"a", "b", "c"}, ReplicationFactor: 2})
	info := a.NodeInfo("b")
	if info.ID != "b" || info.Role != "node" {
		t.Fatalf("info = %+v", info)
	}
	if !reflect.DeepEqual(info.Partitions, []int{1, 4}) {
		t.Fatalf("Partitions = %v", info.Partitions)
	}
	if !reflect.DeepEqual(info.Replicates, []int{0, 3}) {
		t.Fatalf("Replicates = %v", info.Replicates)
	}
}
