package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"edgescope/internal/crowd"
	"edgescope/internal/faultinject"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
	"edgescope/internal/telemetry"
)

// builtinScenarios are the six registered experiment scenarios the cluster
// acceptance criterion runs over.
var builtinScenarios = []string{
	"small", "paper", "dense-metro", "rural-sparse", "flash-crowd", "stress",
}

// scenarioEvents materialises a scenario's latency campaign as envelopes —
// the same substrate telemetryd -replay streams.
func scenarioEvents(t *testing.T, sp *scenario.Spec) []telemetry.Envelope {
	t.Helper()
	r := rng.New(sp.Seed)
	c := crowd.NewCampaign(r.Fork("campaign"), sp.Crowd)
	return telemetry.LatencyEvents(c.RunLatency(r.Fork("latency")), telemetry.ReplayOptions{})
}

// fingerprintSpecs are the answer surfaces the identity pins compare.
var fingerprintSpecs = []telemetry.QuerySpec{
	{Metric: telemetry.MetricRTT, Quantiles: []float64{0.5, 0.9, 0.95, 0.99}, CDFAt: []float64{5, 20, 50, 100}},
	{Metric: telemetry.MetricHops, Quantiles: []float64{0.5, 0.9, 0.95, 0.99}, CDFAt: []float64{5, 20, 50, 100}},
}

// singleFingerprint marshals a single ingestor's full answer surface.
func singleFingerprint(t *testing.T, ing *telemetry.Ingestor) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(ing.Keys()); err != nil {
		t.Fatal(err)
	}
	for _, spec := range fingerprintSpecs {
		res, err := ing.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	return bytes.Clone(buf.Bytes())
}

// clusterFingerprint marshals the front-end's answers the same way. The
// encoded types differ (cluster.Result vs telemetry.QueryResult) but a
// complete Result marshals byte-identically to its embedded QueryResult,
// so equal fingerprints mean a client cannot tell the cluster from one
// process — the headline property.
func clusterFingerprint(t *testing.T, f *Frontend) []byte {
	t.Helper()
	ctx := context.Background()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	keys, missing := f.Keys(ctx)
	if missing != nil {
		t.Fatalf("key inventory incomplete: missing %v", missing)
	}
	if err := enc.Encode(keys); err != nil {
		t.Fatal(err)
	}
	for _, spec := range fingerprintSpecs {
		res, err := f.Query(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial {
			t.Fatalf("fingerprint query partial: missing %v", res.MissingPartitions)
		}
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	return bytes.Clone(buf.Bytes())
}

// testCluster is the in-process 3-node harness: each member is a real
// telemetry.Ingestor (optionally durable), swapped out on crash and back
// in on recovery.
type testCluster struct {
	t      *testing.T
	pm     *PartitionMap
	walDir string
	cfgs   map[string]telemetry.Config

	mu   sync.Mutex
	ings map[string]*telemetry.Ingestor // nil while crashed
}

// newTestCluster stands up one ingestor per node. walDir == "" keeps the
// members memory-only; otherwise each gets its own WAL directory with
// SyncEvery 1, so everything acked is durable — the substrate the
// kill/recover pin needs.
func newTestCluster(t *testing.T, pm *PartitionMap, walDir string) *testCluster {
	t.Helper()
	c := &testCluster{t: t, pm: pm, walDir: walDir, cfgs: map[string]telemetry.Config{}, ings: map[string]*telemetry.Ingestor{}}
	for _, n := range pm.Nodes() {
		cfg := telemetry.Config{Shards: 2, QueueLen: 1024, Block: true, Node: pm.NodeInfo(n)}
		if walDir != "" {
			cfg.WAL = telemetry.WALConfig{Dir: filepath.Join(walDir, n), SyncEvery: 1}
		}
		c.cfgs[n] = cfg
		c.ings[n] = telemetry.NewIngestor(cfg)
	}
	t.Cleanup(func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, ing := range c.ings {
			if ing != nil {
				ing.Close()
			}
		}
	})
	return c
}

func (c *testCluster) get(node string) *telemetry.Ingestor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ings[node]
}

// crash hard-kills a member (telemetry.Ingestor.Crash — no flush, no final
// fsync, no snapshot).
func (c *testCluster) crash(node string) {
	c.mu.Lock()
	ing := c.ings[node]
	c.ings[node] = nil
	c.mu.Unlock()
	if ing != nil {
		ing.Crash()
	}
}

// recover reopens a crashed member from its WAL.
func (c *testCluster) recover(node string) {
	ing, _, err := telemetry.Open(c.cfgs[node])
	if err != nil {
		c.t.Fatalf("recover %s: %v", node, err)
	}
	c.mu.Lock()
	c.ings[node] = ing
	c.mu.Unlock()
}

// transport delivers to the live member, refusing while it is crashed.
func (c *testCluster) transport(node string, e telemetry.Envelope) bool {
	ing := c.get(node)
	if ing == nil {
		return false
	}
	return ing.Offer(e)
}

// clients adapts the members to the front-end, resolving the live ingestor
// per call so queries observe crashes and recoveries.
func (c *testCluster) clients() map[string]NodeClient {
	out := map[string]NodeClient{}
	for _, n := range c.pm.Nodes() {
		out[n] = liveNode{c: c, node: n}
	}
	return out
}

type liveNode struct {
	c    *testCluster
	node string
}

func (l liveNode) Sketches(_ context.Context, spec telemetry.QuerySpec) (telemetry.SketchPage, error) {
	ing := l.c.get(l.node)
	if ing == nil {
		return telemetry.SketchPage{}, fmt.Errorf("node %s down", l.node)
	}
	return ing.MatchSketches(spec)
}

func (l liveNode) Keys(context.Context) ([]telemetry.KeyCount, error) {
	ing := l.c.get(l.node)
	if ing == nil {
		return nil, fmt.Errorf("node %s down", l.node)
	}
	return ing.Keys(), nil
}

func (c *testCluster) flushAll() {
	for _, n := range c.pm.Nodes() {
		if ing := c.get(n); ing != nil {
			ing.Flush()
		}
	}
}

// alwaysUpTracker builds a health tracker whose members never miss a probe
// — for fault-free runs.
func alwaysUpTracker(nodes []string) *HealthTracker {
	return NewHealthTracker(nodes, func(string) ProbeResult {
		return ProbeResult{Reachable: true}
	}, HealthConfig{})
}

// TestClusterQueryByteIdenticalAcrossScenarios is the tentpole acceptance
// pin: for every built-in scenario, a 3-node cluster replay answers the
// full query surface byte-identically to a single-node replay of the same
// stream.
func TestClusterQueryByteIdenticalAcrossScenarios(t *testing.T) {
	for _, name := range builtinScenarios {
		t.Run(name, func(t *testing.T) {
			sp := scenario.MustGet(name)
			events := scenarioEvents(t, sp)

			single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
			defer single.Close()
			if st := telemetry.Replay(single, events); st.Dropped != 0 {
				t.Fatalf("single-node replay dropped %d", st.Dropped)
			}
			want := singleFingerprint(t, single)

			pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
			c := newTestCluster(t, pm, "")
			router := NewRouter(pm, alwaysUpTracker(pm.Nodes()), c.transport, rng.New(sp.Seed).Fork("router"), RouterConfig{
				Retry: telemetry.RetryConfig{Sleep: func(time.Duration) {}},
			})
			if sent := router.SendAll(events); sent != len(events) {
				t.Fatalf("cluster replay delivered %d of %d", sent, len(events))
			}
			c.flushAll()
			st := router.Stats()
			if st.Routed != uint64(len(events)) || st.FailedOver != 0 || st.Unroutable != 0 {
				t.Fatalf("router stats = %+v", st)
			}

			f := NewFrontend(pm, c.clients(), FrontendConfig{})
			got := clusterFingerprint(t, f)
			if !bytes.Equal(got, want) {
				t.Fatalf("cluster answers diverged from single-node replay (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestClusterNodeCrashPartialThenConverges is the kill/recover acceptance
// pin: seeded node-crash faults hard-kill members mid-replay; while a
// member is down the front-end answers Partial with exactly its partitions
// missing; after the fault plan restarts it (WAL recovery) and the sender
// re-delivers what was refused, the cluster's answers converge
// byte-identically to a single-node replay.
func TestClusterNodeCrashPartialThenConverges(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, t.TempDir())
	f := NewFrontend(pm, c.clients(), FrontendConfig{})

	crashed := map[string]bool{}
	partialChecks := 0
	inj := faultinject.NewNode(&scenario.FaultSpec{NodeCrash: 0.002, NodeCrashSpan: 96}, sp.Seed, faultinject.NodeHooks{
		Crash: func(node string) {
			c.crash(node)
			crashed[node] = true
			// The mid-outage contract: a query right now is partial and
			// names exactly the dead member's partitions.
			res, err := f.Query(context.Background(), fingerprintSpecs[0])
			if err != nil {
				t.Errorf("query during %s outage: %v", node, err)
				return
			}
			var missingParts []int
			var missingNodes []string
			for n := range crashed {
				missingNodes = append(missingNodes, n)
				missingParts = append(missingParts, pm.OwnedBy(n)...)
			}
			if !res.Partial {
				t.Errorf("query during %s outage not partial", node)
			}
			if len(crashed) == 1 { // exact-set check is deterministic with one member down
				if !reflect.DeepEqual(res.MissingNodes, missingNodes) {
					t.Errorf("missing nodes = %v, want %v", res.MissingNodes, missingNodes)
				}
				if !reflect.DeepEqual(res.MissingPartitions, missingParts) {
					t.Errorf("missing partitions = %v, want %v", res.MissingPartitions, missingParts)
				}
			}
			partialChecks++
		},
		Restart: func(node string) {
			c.recover(node)
			delete(crashed, node)
		},
	})

	// The prober sees exactly what the router sees: a member inside an
	// outage window misses its probes.
	tracker := NewHealthTracker(pm.Nodes(), func(node string) ProbeResult {
		if inj.Blocked(node) {
			return ProbeResult{}
		}
		return ProbeResult{Reachable: true}
	}, HealthConfig{DownAfter: 3})

	router := NewRouter(pm, tracker, func(node string, e telemetry.Envelope) bool {
		return inj.Send(node, func() bool { return c.transport(node, e) })
	}, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{MaxAttempts: 8, Sleep: func(time.Duration) {}},
	})

	// Replay through the shaken transport. RF1: while a member is down its
	// partitions are unroutable, so bounded retries can exhaust — those
	// envelopes are collected and re-sent once the cluster has healed,
	// exactly what a WAL-backed edge producer does after a backend outage.
	var lost []telemetry.Envelope
	for i, e := range events {
		if i%16 == 0 {
			tracker.ProbeOnce()
		}
		if !router.Send(e) {
			lost = append(lost, e)
		}
	}
	inj.RecoverAll()

	st := inj.Stats()
	if st.Crashes == 0 {
		t.Fatalf("fault plan injected no crashes: %+v", st)
	}
	if st.Restarts != st.Crashes {
		t.Fatalf("crashes %d != restarts %d after RecoverAll", st.Crashes, st.Restarts)
	}
	if partialChecks == 0 {
		t.Fatal("no mid-outage partial query was exercised")
	}
	if len(lost) == 0 {
		t.Fatal("outages cost nothing — the refused-send path was not exercised")
	}

	// Heal the tracker and re-deliver. Each resend takes a fresh sequence
	// number on its stream, so even a retry whose original secretly landed
	// would fold once server-side.
	for i := 0; i < 3; i++ {
		tracker.ProbeOnce()
	}
	for i, e := range lost {
		if !router.Send(e) {
			t.Fatalf("resend %d refused after full recovery", i)
		}
	}
	c.flushAll()

	got := clusterFingerprint(t, f)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered cluster diverged from single-node replay\nfaults: %+v\nlost then resent: %d", st, len(lost))
	}
}

// TestClusterNetPartitionHealsTransparently: partition faults (member
// alive, unreachable from the router) refuse sends but lose no durable
// state; after the window closes, retried traffic converges with no
// recovery at all.
func TestClusterNetPartitionHealsTransparently(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)

	single := telemetry.NewIngestor(telemetry.Config{Shards: 4, QueueLen: 1024, Block: true})
	defer single.Close()
	telemetry.Replay(single, events)
	want := singleFingerprint(t, single)

	pm := mustMap(t, MapConfig{Partitions: 16, Nodes: []string{"n0", "n1", "n2"}})
	c := newTestCluster(t, pm, "")
	inj := faultinject.NewNode(&scenario.FaultSpec{NetPartition: 0.005, NetPartitionSpan: 48}, sp.Seed, faultinject.NodeHooks{})
	router := NewRouter(pm, alwaysUpTracker(pm.Nodes()), func(node string, e telemetry.Envelope) bool {
		return inj.Send(node, func() bool { return c.transport(node, e) })
	}, rng.New(sp.Seed).Fork("router"), RouterConfig{
		Retry: telemetry.RetryConfig{MaxAttempts: 8, Sleep: func(time.Duration) {}},
	})

	var lost []telemetry.Envelope
	for _, e := range events {
		if !router.Send(e) {
			lost = append(lost, e)
		}
	}
	inj.RecoverAll()
	if st := inj.Stats(); st.Partitions == 0 {
		t.Fatalf("no partitions injected: %+v", st)
	}
	for i, e := range lost {
		if !router.Send(e) {
			t.Fatalf("resend %d refused after partition healed", i)
		}
	}
	c.flushAll()

	f := NewFrontend(pm, c.clients(), FrontendConfig{})
	if got := clusterFingerprint(t, f); !bytes.Equal(got, want) {
		t.Fatal("post-partition cluster diverged from single-node replay")
	}
}
