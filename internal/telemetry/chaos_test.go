package telemetry

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"edgescope/internal/crowd"
	"edgescope/internal/faultinject"
	"edgescope/internal/rng"
	"edgescope/internal/scenario"
)

// builtinScenarios are the six registered experiment scenarios the chaos
// acceptance criterion runs over.
var builtinScenarios = []string{
	"small", "paper", "dense-metro", "rural-sparse", "flash-crowd", "stress",
}

// scenarioEvents materialises a scenario's latency campaign as envelopes —
// the same substrate telemetryd -replay streams.
func scenarioEvents(t *testing.T, sp *scenario.Spec) []Envelope {
	t.Helper()
	r := rng.New(sp.Seed)
	c := crowd.NewCampaign(r.Fork("campaign"), sp.Crowd)
	return LatencyEvents(c.RunLatency(r.Fork("latency")), ReplayOptions{})
}

// chaosRun streams events through a fault injector + retrying client into a
// fresh ingestor and returns the ingestor's fingerprint and fault trace.
func chaosRun(t *testing.T, events []Envelope, fault *scenario.FaultSpec, seed uint64, shards int) ([]byte, []faultinject.TraceEntry, faultinject.Stats) {
	t.Helper()
	ing := NewIngestor(Config{Shards: shards, QueueLen: 1024, Block: true})
	defer ing.Close()
	inj := faultinject.New[Envelope](fault, seed)
	client := NewRetryClient(func(e Envelope) bool {
		return inj.Offer(e, e.Key().ShardOf(shards), ing.Offer)
	}, rng.New(seed).Fork("client"), RetryConfig{
		MaxAttempts: 32,
		Sleep:       func(time.Duration) {}, // faults are event-counted; no wall-clock backoff needed
	})
	for i, e := range events {
		if !client.Send(e) {
			t.Fatalf("event %d lost despite retries", i)
		}
	}
	inj.Drain(ing.Offer)
	if lost := inj.Stats().HeldLost; lost != 0 {
		t.Fatalf("%d held-back events refused on redelivery (silent loss)", lost)
	}
	ing.Flush()
	return queryFingerprint(t, ing), inj.Trace(), inj.Stats()
}

// TestChaosEquivalenceAcrossScenarios is the chaos acceptance pin: for each
// built-in scenario, a seeded fault plan injecting >=1% drops, duplicates
// and reorders — survived by the retrying client and the sequence dedup —
// answers every quantile/CDF/count query byte-identically to a clean run,
// and the same seed reproduces the same fault trace.
func TestChaosEquivalenceAcrossScenarios(t *testing.T) {
	for _, name := range builtinScenarios {
		t.Run(name, func(t *testing.T) {
			sp := scenario.MustGet(name)
			events := scenarioEvents(t, sp)
			const shards = 4

			clean := NewIngestor(Config{Shards: shards, QueueLen: 1024, Block: true})
			defer clean.Close()
			if st := Replay(clean, events); st.Dropped != 0 {
				t.Fatalf("clean replay dropped %d", st.Dropped)
			}
			want := queryFingerprint(t, clean)

			fault := &scenario.FaultSpec{Drop: 0.02, Duplicate: 0.02, Reorder: 0.02}
			got, trace, fst := chaosRun(t, events, fault, sp.Seed, shards)
			if fst.Dropped == 0 || fst.Duplicated == 0 || fst.Reordered == 0 {
				t.Fatalf("fault plan under-injected: %+v", fst)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("chaos run diverged from clean run under %+v\nfaults: %+v", *fault, fst)
			}

			got2, trace2, _ := chaosRun(t, events, fault, sp.Seed, shards)
			if !bytes.Equal(got2, want) {
				t.Fatal("chaos rerun diverged")
			}
			if !reflect.DeepEqual(trace, trace2) {
				t.Fatalf("same seed produced different fault traces: %d vs %d entries",
					len(trace), len(trace2))
			}
		})
	}
}

// TestChaosStallSurvivedByRetry: a stalled shard refuses whole spans of
// offers; with enough attempts the client outlasts every stall and delivery
// is still exactly-once.
func TestChaosStallSurvivedByRetry(t *testing.T) {
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	const shards = 4

	clean := NewIngestor(Config{Shards: shards, QueueLen: 1024, Block: true})
	defer clean.Close()
	Replay(clean, events)
	want := queryFingerprint(t, clean)

	fault := &scenario.FaultSpec{ShardStall: 0.01, StallSpan: 8}
	got, _, fst := chaosRun(t, events, fault, sp.Seed, shards)
	if fst.Stalled == 0 {
		t.Fatalf("no stalls injected: %+v", fst)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stall chaos diverged from clean run")
	}
}

// TestChaosShortWriteNeverCorruptsRecovery: torn WAL writes degrade
// durability (the shard goes memory-only and Health says so) but never
// poison recovery — a later Open must succeed on whatever reached disk.
func TestChaosShortWriteNeverCorruptsRecovery(t *testing.T) {
	dir := t.TempDir()
	sp := scenario.MustGet("small")
	events := scenarioEvents(t, sp)
	cfg := Config{Shards: 2, QueueLen: 1024, Block: true,
		WAL: WALConfig{Dir: dir, SyncEvery: 16}}

	// The wrapper sits under the WAL's bufio layer, so it sees one write
	// per flush (every SyncEvery records), not per record — the rate is per
	// flushed batch.
	inj := faultinject.New[Envelope](&scenario.FaultSpec{ShortWrite: 0.25}, sp.Seed)
	cfg.WAL.WrapWriter = inj.WrapWriter()
	ing := NewIngestor(cfg)
	ing.OfferAll(events)
	ing.Flush()
	if inj.Stats().ShortWrites == 0 {
		t.Fatal("no short writes injected")
	}
	if h := ing.Health(); h.Status != "degraded" {
		t.Fatalf("health = %s after WAL short write, want degraded", h.Status)
	}
	// Live answers are unaffected: ingest carried on memory-only.
	clean := NewIngestor(Config{Shards: 2, QueueLen: 1024, Block: true})
	defer clean.Close()
	Replay(clean, events)
	if got, want := queryFingerprint(t, ing), queryFingerprint(t, clean); !bytes.Equal(got, want) {
		t.Fatal("degraded ingest lost live data")
	}
	ing.Crash()

	// Recovery over the torn logs: a valid (possibly partial) state, never
	// a corruption error or panic.
	cfg.WAL.WrapWriter = nil
	rec2, recStats, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery after short-write chaos: %v", err)
	}
	defer rec2.Close()
	if got := rec2.TotalStats().Processed; got > uint64(len(events)) {
		t.Fatalf("recovered %d events from a %d-event stream", got, len(events))
	}
	_ = recStats
}
