package telemetry

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"edgescope/internal/obs"
)

// Write-ahead log. Each ingest shard owns an append-only JSONL log of the
// envelopes it folded (the Envelope wire codec, reused verbatim), split into
// one segment file per rollup window — wal-<windowStartMs>.jsonl under
// <dir>/shard-<i>/ — so retention eviction can unlink a whole window's
// durability in one operation and recovery can replay windows independently.
// The worker appends under the shard lock immediately before folding, so
// per-segment record order IS fold order, which is what makes replay
// reconstruct every sketch bit-for-bit.
//
// Durability contract: a record is durable once the shard has fsynced past
// it (every SyncEvery appends, on SyncWAL, and on Close). A crash loses at
// most the unsynced suffix; a torn final record (a write cut mid-line) is
// detected and truncated on recovery, never replayed and never allowed to
// corrupt subsequent appends.

// walSuffix and walPrefix name segment files.
const (
	walPrefix = "wal-"
	walSuffix = ".jsonl"
)

// maxOpenSegments bounds per-shard file handles. Appends target the current
// window almost always; a late event reopens its older segment on demand.
const maxOpenSegments = 8

// walBufSize is the per-segment write buffer. Large enough that the fsync
// cadence, not buffer pressure, decides when bytes reach the OS.
const walBufSize = 64 * 1024

type walSeg struct {
	f  *os.File
	bw *bufio.Writer
}

// shardWAL is one shard's log. All methods are called with the owning
// shard's mutex held (or before the shard's worker starts), so there is no
// internal locking.
type shardWAL struct {
	dir       string
	syncEvery int
	wrap      func(io.Writer) io.Writer // fault-injection hook; nil = identity

	open map[int64]*walSeg // open segment handles by window start
	// records counts valid records per segment, disk + buffered. Snapshots
	// fsync before encoding these as applied counts, so a snapshot never
	// claims more records on disk than are actually there.
	records map[int64]uint64
	line    []byte // encode scratch

	appended uint64 // records appended this process
	synced   uint64 // value of appended at the last successful fsync
	unsynced int    // appends since the last fsync (drives syncEvery)
	err      error  // sticky write/sync error: shard degrades to memory-only

	// Observability instruments (metrics.go bindWAL), nil without a registry.
	// Updated under the shard lock like everything else here.
	appendedC *obs.Counter
	fsyncsC   *obs.Counter
	fsyncHist *obs.Histogram
}

func newShardWAL(dir string, syncEvery int, wrap func(io.Writer) io.Writer) (*shardWAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: wal: %w", err)
	}
	return &shardWAL{
		dir:       dir,
		syncEvery: syncEvery,
		wrap:      wrap,
		open:      map[int64]*walSeg{},
		records:   map[int64]uint64{},
	}, nil
}

func (w *shardWAL) segPath(start int64) string {
	return filepath.Join(w.dir, walPrefix+strconv.FormatInt(start, 10)+walSuffix)
}

// openSeg returns the segment for a window start, opening (append mode) or
// creating it, and closing the least-recent segment past the handle cap.
func (w *shardWAL) openSeg(start int64) (*walSeg, error) {
	if seg, ok := w.open[start]; ok {
		return seg, nil
	}
	if len(w.open) >= maxOpenSegments {
		oldest := int64(0)
		first := true
		for s := range w.open {
			if first || s < oldest {
				oldest = s
			}
			first = false
		}
		// Flush and fsync before closing so a closed segment is never
		// dirty; sync() then only needs to visit open handles.
		seg := w.open[oldest]
		if err := seg.bw.Flush(); err != nil {
			w.err = err
		} else if err := seg.f.Sync(); err != nil {
			w.err = err
		}
		seg.f.Close()
		delete(w.open, oldest)
	}
	f, err := os.OpenFile(w.segPath(start), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	var out io.Writer = f
	if w.wrap != nil {
		out = w.wrap(f)
	}
	seg := &walSeg{f: f, bw: bufio.NewWriterSize(out, walBufSize)}
	w.open[start] = seg
	return seg, nil
}

// append logs one envelope to its window's segment. Errors are sticky: the
// first failure degrades the shard to memory-only ingest (reported via
// Health) rather than stalling the pipeline, and every later append is a
// cheap no-op.
func (w *shardWAL) append(e Envelope, start int64) {
	if w.err != nil {
		return
	}
	seg, err := w.openSeg(start)
	if err != nil {
		w.err = err
		return
	}
	w.line, err = AppendJSONL(w.line[:0], e)
	if err != nil {
		w.err = err
		return
	}
	if _, err := seg.bw.Write(w.line); err != nil {
		w.err = err
		return
	}
	w.records[start]++
	w.appended++
	w.appendedC.Inc()
	w.unsynced++
	if w.syncEvery > 0 && w.unsynced >= w.syncEvery {
		w.sync()
	}
}

// sync flushes every open segment to the OS and fsyncs it. On success the
// durability watermark advances to everything appended so far.
func (w *shardWAL) sync() error {
	if w.err != nil {
		return w.err
	}
	var began time.Time
	if w.fsyncHist != nil {
		began = time.Now()
	}
	for _, seg := range w.open {
		if err := seg.bw.Flush(); err != nil {
			w.err = err
			return err
		}
		if err := seg.f.Sync(); err != nil {
			w.err = err
			return err
		}
	}
	w.synced = w.appended
	w.unsynced = 0
	w.fsyncsC.Inc()
	if w.fsyncHist != nil {
		w.fsyncHist.ObserveDuration(time.Since(began))
	}
	return nil
}

// dropSegment removes a window's durability when retention evicts it: the
// handle is closed unflushed (the data is being discarded) and the file
// unlinked.
func (w *shardWAL) dropSegment(start int64) {
	if seg, ok := w.open[start]; ok {
		seg.f.Close()
		delete(w.open, start)
	}
	delete(w.records, start)
	if err := os.Remove(w.segPath(start)); err != nil && !errors.Is(err, os.ErrNotExist) && w.err == nil {
		w.err = err
	}
}

// closeFiles syncs and closes every open handle (graceful shutdown).
func (w *shardWAL) closeFiles() error {
	err := w.sync()
	for _, seg := range w.open {
		seg.f.Close()
	}
	w.open = map[int64]*walSeg{}
	return err
}

// abort closes handles WITHOUT flushing buffered writes — the test double
// for a process crash: bytes not yet pushed to the OS are lost, exactly the
// unsynced suffix the durability contract allows to disappear.
func (w *shardWAL) abort() {
	for _, seg := range w.open {
		seg.f.Close()
	}
	w.open = map[int64]*walSeg{}
}

// lag reports records appended but not yet fsynced — the data a crash right
// now would lose.
func (w *shardWAL) lag() uint64 { return w.appended - w.synced }

// listSegments returns the window starts of every segment file in the
// shard's directory, ascending. Unparseable names are ignored (they are not
// WAL segments).
func listSegments(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var starts []int64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		start, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix), 10, 64)
		if err != nil {
			continue
		}
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// errWALCorrupt marks mid-segment corruption (vs a tolerable torn tail).
var errWALCorrupt = errors.New("telemetry: wal segment corrupt")

// readWALSegment replays one segment, calling fn for every valid envelope
// record and ctlFn for every control record (handoff.go: absorbed rollups
// and partition drops), in append order; both kinds count toward records,
// so snapshot applied counts cover them uniformly. Two failure shapes are
// distinguished:
//
//   - A torn tail — trailing bytes with no final newline, the footprint of a
//     write cut by a crash — is tolerated: replay stops at the last durable
//     record and returns torn=true with validEnd positioned after it, so the
//     caller can truncate before appending again. A record is only ever
//     acknowledged as durable after its newline reached the OS, so nothing
//     acknowledged is ever dropped here.
//   - A malformed line that IS newline-terminated, or any decode failure
//     before the tail, is real corruption: a positioned error wrapping
//     errWALCorrupt, never a silent skip — durable data that cannot be
//     replayed must fail recovery loudly.
func readWALSegment(path string, fn func(Envelope), ctlFn func(walCtl)) (records uint64, validEnd int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, walBufSize)
	var offset int64
	lineNo := 0
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return records, validEnd, false, fmt.Errorf("telemetry: wal %s: %w", path, rerr)
		}
		if rerr == io.EOF {
			if len(line) > 0 {
				// No trailing newline: a torn final write. Never durable
				// (acks follow the newline), so truncating it is loss-free.
				return records, validEnd, true, nil
			}
			return records, validEnd, false, nil
		}
		lineNo++
		lineLen := int64(len(line))
		body := line[:len(line)-1] // strip newline
		if len(body) > 0 {
			if bytes.HasPrefix(body, ctlPrefix) {
				c, derr := decodeCtl(body)
				if derr != nil {
					return records, validEnd, false, fmt.Errorf("%w: %s line %d (byte offset %d): %v",
						errWALCorrupt, path, lineNo, offset, derr)
				}
				ctlFn(c)
				records++
			} else {
				e, derr := DecodeLine(body)
				if derr != nil {
					return records, validEnd, false, fmt.Errorf("%w: %s line %d (byte offset %d): %v",
						errWALCorrupt, path, lineNo, offset, derr)
				}
				fn(e)
				records++
			}
		}
		offset += lineLen
		validEnd = offset
	}
}
