package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Recovery. Open (and NewIngestor, when Config.WAL.Dir is set) rebuilds
// each shard's rollup state from its snapshot plus the WAL suffix the
// snapshot does not cover, before the shard workers start. Because WAL
// order per segment is fold order and sketch deserialization is exact, a
// recovered ingestor answers every /query byte-for-byte as the crashed
// process would have, for all state up to the last fsync.

// RecoveryStats reports one recovery pass, aggregated over shards.
type RecoveryStats struct {
	// Snapshots counts shards restored from a valid snapshot;
	// SnapshotErrors counts snapshots rejected (corrupt/incompatible) and
	// recovered by full WAL replay instead.
	Snapshots      int `json:"snapshots"`
	SnapshotErrors int `json:"snapshot_errors,omitempty"`
	// SegmentsScanned / RecordsReplayed / RecordsSkipped count WAL work:
	// skipped records were already folded into a snapshot.
	SegmentsScanned int    `json:"segments_scanned"`
	RecordsReplayed uint64 `json:"records_replayed"`
	RecordsSkipped  uint64 `json:"records_skipped"`
	// TornTails counts segments that ended in a truncated (torn) write and
	// were trimmed back to their last durable record.
	TornTails int `json:"torn_tails,omitempty"`
	// Windows is the rollup count after recovery (and after retention).
	Windows int `json:"windows"`
	// DurationMs is the wall time of the whole recovery pass.
	DurationMs int64 `json:"duration_ms"`
}

// shardDir names one shard's data directory under the WAL root. The shard
// count is part of the layout: recovering with a different Shards value
// would scatter keys to the wrong logs, so Open refuses a mismatched
// snapshot rather than mixing placements.
func shardDir(root string, shard int) string {
	return filepath.Join(root, "shard-"+strconv.Itoa(shard))
}

// recoverShard rebuilds one shard from its directory (s.wal must already be
// open on it). Seeds s.wal.records with what each segment holds so future
// snapshots record correct applied counts and appends continue in place.
func (ing *Ingestor) recoverShard(s *shard, st *RecoveryStats) error {
	dir := s.wal.dir
	snap, err := loadSnapshot(dir)
	if err != nil {
		// A corrupt snapshot is recoverable: the WAL retains every record
		// of every live window (segments are only unlinked on eviction), so
		// full replay reconstructs the same state the snapshot summarised.
		st.SnapshotErrors++
		snap = nil
	}
	applied := map[int64]uint64{}
	if snap != nil {
		if snap.shards != ing.cfg.Shards || snap.windowMs != ing.cfg.Window.Milliseconds() {
			return fmt.Errorf("telemetry: %s: snapshot is for %d shards / %dms windows, ingestor configured %d / %dms",
				dir, snap.shards, snap.windowMs, ing.cfg.Shards, ing.cfg.Window.Milliseconds())
		}
		for wk, sk := range snap.windows {
			s.windows[wk] = sk
			s.starts[wk.Start]++
		}
		s.seen = snap.seen
		applied = snap.applied
		st.Snapshots++
	}

	starts, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, start := range starts {
		path := filepath.Join(dir, walPrefix+strconv.FormatInt(start, 10)+walSuffix)
		skip := applied[start]
		var idx uint64
		n, validEnd, torn, err := readWALSegment(path, func(e Envelope) {
			if idx < skip {
				idx++
				st.RecordsSkipped++
				return
			}
			idx++
			st.RecordsReplayed++
			ing.fold(s, e, foldReplay)
		}, func(c walCtl) {
			// Control records share the per-segment index clock with
			// envelopes, so snapshot applied counts skip both uniformly.
			if idx < skip {
				idx++
				st.RecordsSkipped++
				return
			}
			idx++
			st.RecordsReplayed++
			ing.applyCtl(s, start, c)
		})
		if err != nil {
			return err
		}
		st.SegmentsScanned++
		if torn {
			// Trim the torn write so future appends start on a clean line.
			if err := os.Truncate(path, validEnd); err != nil {
				return fmt.Errorf("telemetry: wal %s: truncate torn tail: %w", path, err)
			}
			st.TornTails++
		}
		s.wal.records[start] = n
	}

	// Retention is applied once, after every segment is in: replay visits
	// windows in ascending start order, so evicting past the cap here keeps
	// exactly the newest MaxWindows windows — the same set the live path
	// retains for an in-order stream — and unlinks the evicted segments.
	s.mu.Lock()
	ing.enforceRetention(s)
	s.mu.Unlock()

	// Rewrite the checkpoint so on-disk applied counts describe what
	// recovery actually found — torn tails trimmed, evicted segments gone,
	// any counts a prior-format snapshot over-claimed reset. Without this, a
	// second crash before the next periodic snapshot would replay against
	// the stale snapshot and skip records this generation durably appended
	// below its applied counts. Skipped on a pure cold start (nothing to
	// describe yet).
	if snap != nil || len(starts) > 0 {
		s.mu.Lock()
		payload := encodeSnapshot(s, ing.cfg)
		s.mu.Unlock()
		if err := writeSnapshot(dir, payload); err != nil {
			return err
		}
	}
	return nil
}
