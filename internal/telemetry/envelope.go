// Package telemetry is edgescope's streaming measurement pipeline: a
// versioned JSONL event schema (Envelope), a sharded single-writer ingest
// stage with bounded queues and explicit drop accounting (Ingestor),
// time-windowed quantile-sketch rollups per (metric, region, network), and
// a query layer that answers percentile/CDF/count questions over arbitrary
// window ranges by merging sketches. cmd/telemetryd serves it over HTTP;
// Replay streams the paper's deterministic crowd campaign through the full
// pipeline so the streaming answers can be cross-checked against the batch
// stats.Summary within the sketch's documented error bound.
//
// The batch reproduction (internal/core) computes each figure from a full
// in-memory observation set; this package is the serving-system counterpart:
// events arrive one at a time, memory per (dimension, window) stays bounded
// at O(sketch compression), and queries are answered live while ingestion
// continues.
package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// SchemaVersion is the current Envelope schema version. Decoders accept
// exactly this version: an unknown version is a hard error rather than a
// silent misread, which is what lets the schema evolve under old data files.
const SchemaVersion = 1

// Envelope is one telemetry event: a single metric observation tagged with
// the dimensions the rollup layer aggregates by. The wire format is JSONL —
// one compact JSON object per line — matching the monitor→JSONL→analysis
// pipelines of real measurement platforms.
type Envelope struct {
	V      int    `json:"v"`                // schema version (SchemaVersion)
	TS     int64  `json:"ts"`               // event time, Unix milliseconds
	Kind   string `json:"kind"`             // probe kind: "ping", "iperf", ...
	Metric string `json:"metric"`           // metric id: "rtt_ms", "tput_mbps", ...
	User   int    `json:"user"`             // originating user id
	Region string `json:"region"`           // site/metro dimension
	Net    string `json:"net"`              // access-network dimension
	Target string `json:"target,omitempty"` // probe target class (informational)

	Value float64 `json:"value"` // the observation
}

// Key returns the envelope's rollup dimensions.
func (e Envelope) Key() Key {
	return Key{Metric: e.Metric, Region: e.Region, Net: e.Net}
}

// Time returns the event timestamp as a time.Time.
func (e Envelope) Time() time.Time { return time.UnixMilli(e.TS) }

// Decode errors. ErrVersion and ErrInvalid wrap the specific cause;
// errors.Is works against both.
var (
	ErrVersion = errors.New("telemetry: unsupported envelope version")
	ErrInvalid = errors.New("telemetry: invalid envelope")
)

// Validate checks the semantic invariants the ingest layer relies on:
// supported version, a metric name, a positive timestamp and a finite value.
func (e Envelope) Validate() error {
	if e.V != SchemaVersion {
		return fmt.Errorf("%w: v=%d", ErrVersion, e.V)
	}
	if e.Metric == "" {
		return fmt.Errorf("%w: empty metric", ErrInvalid)
	}
	if e.TS <= 0 {
		return fmt.Errorf("%w: non-positive ts %d", ErrInvalid, e.TS)
	}
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return fmt.Errorf("%w: non-finite value", ErrInvalid)
	}
	return nil
}

// DecodeLine parses and validates one JSONL line. Unknown JSON fields are
// ignored (forward compatibility within a schema version); structural and
// semantic errors wrap ErrInvalid or ErrVersion.
func DecodeLine(line []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(line, &e); err != nil {
		return Envelope{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := e.Validate(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// AppendJSONL appends the envelope's JSONL encoding (one line, trailing
// newline) to dst and returns the extended slice. Encoding a validated
// envelope never fails; the error covers programmatic misuse (non-finite
// values would otherwise serialise as invalid JSON).
func AppendJSONL(dst []byte, e Envelope) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return dst, err
	}
	b, err := json.Marshal(e)
	if err != nil {
		return dst, fmt.Errorf("telemetry: encode: %w", err)
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

// WriteJSONL writes envelopes as JSONL to w.
func WriteJSONL(w io.Writer, events []Envelope) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, e := range events {
		var err error
		if line, err = AppendJSONL(line[:0], e); err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeStats summarises one JSONL read pass.
type DecodeStats struct {
	Decoded   int // valid envelopes yielded
	Malformed int // lines rejected (bad JSON, bad version, bad fields)
}

// ReadJSONL streams JSONL from r, calling fn for every valid envelope.
// Malformed lines are counted, not fatal — one corrupt line must not take
// down an ingest batch — but an I/O error ends the pass. Blank lines are
// skipped.
func ReadJSONL(r io.Reader, fn func(Envelope)) (DecodeStats, error) {
	var st DecodeStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := DecodeLine(line)
		if err != nil {
			st.Malformed++
			continue
		}
		st.Decoded++
		fn(e)
	}
	return st, sc.Err()
}
