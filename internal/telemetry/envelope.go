// Package telemetry is edgescope's streaming measurement pipeline: a
// versioned JSONL event schema (Envelope), a sharded single-writer ingest
// stage with bounded queues and explicit drop accounting (Ingestor),
// time-windowed quantile-sketch rollups per (metric, region, network), and
// a query layer that answers percentile/CDF/count questions over arbitrary
// window ranges by merging sketches. cmd/telemetryd serves it over HTTP;
// Replay streams the paper's deterministic crowd campaign through the full
// pipeline so the streaming answers can be cross-checked against the batch
// stats.Summary within the sketch's documented error bound.
//
// The batch reproduction (internal/core) computes each figure from a full
// in-memory observation set; this package is the serving-system counterpart:
// events arrive one at a time, memory per (dimension, window) stays bounded
// at O(sketch compression), and queries are answered live while ingestion
// continues.
package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// SchemaVersion is the current Envelope schema version. Decoders accept
// exactly this version: an unknown version is a hard error rather than a
// silent misread, which is what lets the schema evolve under old data files.
const SchemaVersion = 1

// Envelope is one telemetry event: a single metric observation tagged with
// the dimensions the rollup layer aggregates by. The wire format is JSONL —
// one compact JSON object per line — matching the monitor→JSONL→analysis
// pipelines of real measurement platforms.
type Envelope struct {
	V      int    `json:"v"`                // schema version (SchemaVersion)
	TS     int64  `json:"ts"`               // event time, Unix milliseconds
	Kind   string `json:"kind"`             // probe kind: "ping", "iperf", ...
	Metric string `json:"metric"`           // metric id: "rtt_ms", "tput_mbps", ...
	User   int    `json:"user"`             // originating user id
	Region string `json:"region"`           // site/metro dimension
	Net    string `json:"net"`              // access-network dimension
	Target string `json:"target,omitempty"` // probe target class (informational)

	// Seq is an optional per-source sequence number for idempotent ingest:
	// a retrying client numbers the envelopes it sends (scoped per source
	// user and rollup key, starting at 1), and the ingest shard folds each
	// (key, user, seq) at most once, so retries and network duplicates
	// cannot double-count. 0 means unsequenced — no dedup.
	Seq uint64 `json:"seq,omitempty"`

	Value float64 `json:"value"` // the observation
}

// Key returns the envelope's rollup dimensions.
func (e Envelope) Key() Key {
	return Key{Metric: e.Metric, Region: e.Region, Net: e.Net}
}

// Time returns the event timestamp as a time.Time.
func (e Envelope) Time() time.Time { return time.UnixMilli(e.TS) }

// Decode errors. ErrVersion and ErrInvalid wrap the specific cause;
// errors.Is works against both.
var (
	ErrVersion = errors.New("telemetry: unsupported envelope version")
	ErrInvalid = errors.New("telemetry: invalid envelope")
)

// Validate checks the semantic invariants the ingest layer relies on:
// supported version, a metric name, a positive timestamp and a finite value.
func (e Envelope) Validate() error {
	if e.V != SchemaVersion {
		return fmt.Errorf("%w: v=%d", ErrVersion, e.V)
	}
	if e.Metric == "" {
		return fmt.Errorf("%w: empty metric", ErrInvalid)
	}
	if e.TS <= 0 {
		return fmt.Errorf("%w: non-positive ts %d", ErrInvalid, e.TS)
	}
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return fmt.Errorf("%w: non-finite value", ErrInvalid)
	}
	return nil
}

// DecodeLine parses and validates one JSONL line. Unknown JSON fields are
// ignored (forward compatibility within a schema version); structural and
// semantic errors wrap ErrInvalid or ErrVersion.
func DecodeLine(line []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(line, &e); err != nil {
		return Envelope{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := e.Validate(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// AppendJSONL appends the envelope's JSONL encoding (one line, trailing
// newline) to dst and returns the extended slice. Encoding a validated
// envelope never fails; the error covers programmatic misuse (non-finite
// values would otherwise serialise as invalid JSON).
func AppendJSONL(dst []byte, e Envelope) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return dst, err
	}
	b, err := json.Marshal(e)
	if err != nil {
		return dst, fmt.Errorf("telemetry: encode: %w", err)
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

// WriteJSONL writes envelopes as JSONL to w.
func WriteJSONL(w io.Writer, events []Envelope) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, e := range events {
		var err error
		if line, err = AppendJSONL(line[:0], e); err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeStats summarises one JSONL read pass.
type DecodeStats struct {
	Decoded   int // valid envelopes yielded
	Malformed int // lines rejected (bad JSON, bad version, bad fields)
}

// ReadOptions tune a JSONL read pass.
type ReadOptions struct {
	// MaxConsecutiveMalformed aborts the pass with a positioned error once
	// this many malformed lines arrive back to back. 0 means unlimited —
	// every malformed line is counted and skipped, the historical behaviour.
	// A corrupt or truncated file tail otherwise degrades into a silent
	// skip-to-EOF: every remaining "line" is garbage, each one is counted,
	// and the pass ends looking merely lossy instead of broken.
	MaxConsecutiveMalformed int
}

// ErrMalformedRun is wrapped by the abort error ReadJSONLOpts returns when
// MaxConsecutiveMalformed is exceeded; errors.Is distinguishes it from I/O
// errors.
var ErrMalformedRun = errors.New("telemetry: too many consecutive malformed lines")

// ReadJSONL streams JSONL from r, calling fn for every valid envelope.
// Malformed lines are counted, not fatal — one corrupt line must not take
// down an ingest batch — but an I/O error ends the pass. Blank lines are
// skipped. For a bounded-tolerance pass (fail fast on a corrupt tail), use
// ReadJSONLOpts.
func ReadJSONL(r io.Reader, fn func(Envelope)) (DecodeStats, error) {
	return ReadJSONLOpts(r, ReadOptions{}, fn)
}

// ReadJSONLOpts is ReadJSONL with explicit options. With a
// MaxConsecutiveMalformed cap, a run of that many malformed lines aborts
// the pass with an error wrapping ErrMalformedRun that positions the run —
// first bad line number and its byte offset — so a corrupt or torn WAL/data
// file fails fast and names where, instead of silently skipping to EOF. The
// stats cover everything consumed up to the abort.
func ReadJSONLOpts(r io.Reader, opts ReadOptions, fn func(Envelope)) (DecodeStats, error) {
	var st DecodeStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		lineNo     int   // 1-based line number
		offset     int64 // byte offset of the current line's start
		runLen     int   // consecutive malformed lines so far
		runLine    int   // line number of the run's first bad line
		runOffset  int64 // byte offset of the run's first bad line
		runLastErr error
	)
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		lineStart := offset
		offset += int64(len(line)) + 1 // +1 for the newline Scan consumed
		if len(line) == 0 {
			continue
		}
		e, err := DecodeLine(line)
		if err != nil {
			st.Malformed++
			if runLen == 0 {
				runLine, runOffset = lineNo, lineStart
			}
			runLen++
			runLastErr = err
			if opts.MaxConsecutiveMalformed > 0 && runLen >= opts.MaxConsecutiveMalformed {
				return st, fmt.Errorf("%w: %d starting at line %d (byte offset %d): last: %v",
					ErrMalformedRun, runLen, runLine, runOffset, runLastErr)
			}
			continue
		}
		runLen = 0
		st.Decoded++
		fn(e)
	}
	return st, sc.Err()
}
