package telemetry

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"edgescope/internal/stats"
)

// Key is the rollup dimension tuple. Every envelope maps to exactly one Key,
// every Key maps to exactly one shard (stable FNV-1a hash), and each shard's
// worker is the only goroutine that ever writes that Key's rollups — the
// single-writer discipline that keeps the hot path lock-cheap and the
// pipeline deterministic for an ordered event stream.
type Key struct {
	Metric string
	Region string
	Net    string
}

// String renders the key as metric/region/net.
func (k Key) String() string { return k.Metric + "/" + k.Region + "/" + k.Net }

// ShardOf returns the shard index for a key under the pipeline's stable
// hash: FNV-1a over the dimension tuple with a 0 byte between fields (so
// ("ab","c") and ("a","bc") differ). The mapping depends only on the key
// and the shard count, never on process state, so replays and multi-process
// deployments agree on placement.
func (k Key) ShardOf(shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	hash := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0
		h *= prime64
	}
	hash(k.Metric)
	hash(k.Region)
	hash(k.Net)
	return int(h % uint64(shards))
}

// Config sizes an Ingestor. The zero value is usable: every field has a
// documented default.
type Config struct {
	// Shards is the number of single-writer ingest workers. Default 4.
	Shards int
	// QueueLen is each shard's bounded channel capacity. Default 1024.
	QueueLen int
	// Window is the rollup window length. Events are bucketed by
	// ts - ts mod Window. Default 1 minute.
	Window time.Duration
	// Compression is the per-window quantile-sketch δ parameter
	// (stats.NewSketch). Default stats.DefaultCompression.
	Compression float64
	// Block selects backpressure over loss: when true, Offer blocks until
	// the shard queue has room instead of dropping. Replay uses this so a
	// deterministic stream is ingested losslessly.
	Block bool
	// MaxWindows caps the distinct time windows retained per shard
	// (independent of how many dimension keys each window holds); when a
	// new window start would exceed it, the shard's oldest window is
	// evicted whole — all its per-key rollups — and counted once in
	// ShardStats.EvictedWindows. 0 retains everything — right for replay
	// and tests, unbounded for a daemon on an endless stream, so
	// cmd/telemetryd sets a cap.
	MaxWindows int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Compression <= 0 {
		c.Compression = stats.DefaultCompression
	}
}

// windowKey identifies one rollup: a window start (Unix ms, aligned to the
// configured window length) plus the dimension tuple.
type windowKey struct {
	Start int64
	Key
}

// shard is one single-writer ingest worker: a bounded queue, the rollup map
// it alone writes, and its accounting. The mutex guards the rollup map only
// against query-time readers; the hot path contends on it solely while a
// query merge is in flight.
type shard struct {
	ch      chan Envelope
	mu      sync.Mutex
	windows map[windowKey]*stats.Sketch
	// starts indexes windows by start time: start → number of rollup
	// entries in it. Retention counts and evicts *time windows* (distinct
	// starts), never individual (window, key) entries, so a cap smaller
	// than the key cardinality still retains MaxWindows whole windows.
	starts map[int64]int

	accepted  atomic.Uint64 // enqueued into this shard
	dropped   atomic.Uint64 // rejected at the queue (only when !Block)
	processed atomic.Uint64 // folded into a rollup
	evicted   atomic.Uint64 // time windows evicted under MaxWindows retention
}

// ShardStats is one shard's accounting snapshot. Windows counts distinct
// time windows (what MaxWindows caps); Rollups counts (window, key)
// sketches (memory is proportional to this × sketch compression).
type ShardStats struct {
	Accepted       uint64 `json:"accepted"`
	Dropped        uint64 `json:"dropped"`
	Processed      uint64 `json:"processed"`
	EvictedWindows uint64 `json:"evicted_windows"`
	Queued         int    `json:"queued"`
	Windows        int    `json:"windows"`
	Rollups        int    `json:"rollups"`
}

// Ingestor is the sharded ingest stage. Producers call Offer (or OfferAll);
// each envelope hashes by its dimension Key to one shard, whose worker
// goroutine folds it into the (window, key) quantile sketch. Close drains
// and stops the workers; Query (query.go) answers over the accumulated
// rollups at any time.
type Ingestor struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	closeOnce sync.Once
}

// NewIngestor starts the shard workers.
func NewIngestor(cfg Config) *Ingestor {
	cfg.fill()
	ing := &Ingestor{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range ing.shards {
		s := &shard{
			ch:      make(chan Envelope, cfg.QueueLen),
			windows: make(map[windowKey]*stats.Sketch),
			starts:  make(map[int64]int),
		}
		ing.shards[i] = s
		ing.wg.Add(1)
		go func() {
			defer ing.wg.Done()
			ing.run(s)
		}()
	}
	return ing
}

// Config returns the ingestor's effective (default-filled) configuration.
func (ing *Ingestor) Config() Config { return ing.cfg }

// windowStart aligns a Unix-ms timestamp down to its window.
func (ing *Ingestor) windowStart(ts int64) int64 {
	w := ing.cfg.Window.Milliseconds()
	return ts - ts%w
}

// run is one shard worker: the sole writer of s.windows.
func (ing *Ingestor) run(s *shard) {
	for e := range s.ch {
		wk := windowKey{Start: ing.windowStart(e.TS), Key: e.Key()}
		s.mu.Lock()
		sk := s.windows[wk]
		if sk == nil {
			sk = stats.NewSketch(ing.cfg.Compression)
			s.windows[wk] = sk
			if s.starts[wk.Start]++; s.starts[wk.Start] == 1 {
				ing.enforceRetention(s)
			}
		}
		// Add cannot fail here: Offer validated the envelope, and a finite
		// value is the only thing the sketch requires.
		_ = sk.Add(e.Value)
		s.mu.Unlock()
		s.processed.Add(1)
	}
}

// enforceRetention evicts whole oldest time windows while the shard holds
// more distinct window starts than MaxWindows. Called with s.mu held, only
// when a new *start* appears (not per rollup entry or event), so the
// eviction scans are paid once per window rollover. A late event older
// than the retention horizon opens a window that is immediately the
// eviction victim — its data is discarded, the standard retention trade.
func (ing *Ingestor) enforceRetention(s *shard) {
	for ing.cfg.MaxWindows > 0 && len(s.starts) > ing.cfg.MaxWindows {
		oldest := int64(math.MaxInt64)
		for start := range s.starts {
			if start < oldest {
				oldest = start
			}
		}
		for wk := range s.windows {
			if wk.Start == oldest {
				delete(s.windows, wk)
			}
		}
		delete(s.starts, oldest)
		s.evicted.Add(1)
	}
}

// Offer submits one envelope. It returns false — and counts the event as
// dropped on its shard — when the shard queue is full and the ingestor is
// not configured to Block. Invalid envelopes are rejected (false) without
// reaching a queue; use Validate/DecodeLine upstream to distinguish.
func (ing *Ingestor) Offer(e Envelope) bool {
	if e.Validate() != nil {
		return false
	}
	s := ing.shards[e.Key().ShardOf(len(ing.shards))]
	if ing.cfg.Block {
		s.ch <- e
		s.accepted.Add(1)
		return true
	}
	select {
	case s.ch <- e:
		s.accepted.Add(1)
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// OfferAll submits a batch, returning how many were accepted.
func (ing *Ingestor) OfferAll(events []Envelope) int {
	n := 0
	for _, e := range events {
		if ing.Offer(e) {
			n++
		}
	}
	return n
}

// Flush blocks until every accepted envelope has been folded into a rollup.
// It does not stop the workers; producers may keep offering afterwards.
// Flush only settles if producers pause — it is a barrier for batch-style
// use (replay, tests, HTTP ingest handlers), not a fence against concurrent
// writers.
func (ing *Ingestor) Flush() {
	for _, s := range ing.shards {
		for s.processed.Load() < s.accepted.Load() {
			runtime.Gosched()
		}
	}
}

// Close drains the queues, stops the workers and waits for them. Offers
// after Close panic (send on closed channel), matching the pipeline's
// lifecycle: producers stop first.
func (ing *Ingestor) Close() {
	ing.closeOnce.Do(func() {
		for _, s := range ing.shards {
			close(s.ch)
		}
		ing.wg.Wait()
	})
}

// Stats snapshots per-shard accounting, shard index order.
func (ing *Ingestor) Stats() []ShardStats {
	out := make([]ShardStats, len(ing.shards))
	for i, s := range ing.shards {
		s.mu.Lock()
		rollups, wins := len(s.windows), len(s.starts)
		s.mu.Unlock()
		out[i] = ShardStats{
			Accepted:       s.accepted.Load(),
			Dropped:        s.dropped.Load(),
			Processed:      s.processed.Load(),
			EvictedWindows: s.evicted.Load(),
			Queued:         len(s.ch),
			Windows:        wins,
			Rollups:        rollups,
		}
	}
	return out
}

// TotalStats folds Stats into one aggregate.
func (ing *Ingestor) TotalStats() ShardStats {
	var t ShardStats
	for _, s := range ing.Stats() {
		t.Accepted += s.Accepted
		t.Dropped += s.Dropped
		t.Processed += s.Processed
		t.EvictedWindows += s.EvictedWindows
		t.Queued += s.Queued
		t.Windows += s.Windows
		t.Rollups += s.Rollups
	}
	return t
}

// String summarises the ingestor for logs.
func (ing *Ingestor) String() string {
	t := ing.TotalStats()
	return fmt.Sprintf("telemetry: %d shards, window %v: accepted=%d dropped=%d processed=%d windows=%d",
		len(ing.shards), ing.cfg.Window, t.Accepted, t.Dropped, t.Processed, t.Windows)
}
