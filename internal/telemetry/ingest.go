package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/stats"
)

// Key is the rollup dimension tuple. Every envelope maps to exactly one Key,
// every Key maps to exactly one shard (stable FNV-1a hash), and each shard's
// worker is the only goroutine that ever writes that Key's rollups — the
// single-writer discipline that keeps the hot path lock-cheap and the
// pipeline deterministic for an ordered event stream.
type Key struct {
	Metric string
	Region string
	Net    string
}

// String renders the key as metric/region/net.
func (k Key) String() string { return k.Metric + "/" + k.Region + "/" + k.Net }

// ShardOf returns the shard index for a key under the pipeline's stable
// hash: FNV-1a over the dimension tuple with a 0 byte between fields (so
// ("ab","c") and ("a","bc") differ). The mapping depends only on the key
// and the shard count, never on process state, so replays and multi-process
// deployments agree on placement.
func (k Key) ShardOf(shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	hash := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0
		h *= prime64
	}
	hash(k.Metric)
	hash(k.Region)
	hash(k.Net)
	return int(h % uint64(shards))
}

// WALConfig enables and tunes durability. The zero value disables it
// entirely (process-lifetime state, the historical behaviour).
type WALConfig struct {
	// Dir is the data directory root. Setting it turns on the write-ahead
	// log and snapshots: accepted envelopes are logged per shard (segment
	// per rollup window) before folding, snapshots checkpoint the sketch
	// state, and Open/NewIngestor recover snapshot+WAL on startup.
	Dir string
	// SyncEvery is the fsync cadence in appended records per shard; the
	// durability floor is "everything up to the last fsync". Default 256.
	SyncEvery int
	// SnapshotEvery checkpoints a shard after this many folded records,
	// bounding recovery replay work. 0 snapshots only at Close.
	SnapshotEvery int
	// WrapWriter, when set, wraps every WAL segment writer — the
	// fault-injection seam (internal/faultinject short writes). Production
	// leaves it nil.
	WrapWriter func(shard int, w io.Writer) io.Writer
}

// Config sizes an Ingestor. The zero value is usable: every field has a
// documented default.
type Config struct {
	// Shards is the number of single-writer ingest workers. Default 4.
	Shards int
	// QueueLen is each shard's bounded channel capacity. Default 1024.
	QueueLen int
	// Window is the rollup window length. Events are bucketed by
	// ts - ts mod Window. Default 1 minute.
	Window time.Duration
	// Compression is the per-window quantile-sketch δ parameter
	// (stats.NewSketch). Default stats.DefaultCompression.
	Compression float64
	// Block selects backpressure over loss: when true, Offer blocks until
	// the shard queue has room instead of dropping. Replay uses this so a
	// deterministic stream is ingested losslessly.
	Block bool
	// MaxWindows caps the distinct time windows retained per shard
	// (independent of how many dimension keys each window holds); when a
	// new window start would exceed it, the shard's oldest window is
	// evicted whole — all its per-key rollups and its WAL segment — and
	// counted once in ShardStats.EvictedWindows. 0 retains everything —
	// right for replay and tests, unbounded for a daemon on an endless
	// stream, so cmd/telemetryd sets a cap.
	MaxWindows int
	// Metrics, when set, registers the pipeline's instrument families on
	// the registry (see metrics.go for the catalogue) and binds every
	// shard's accounting to registered series, so a /metrics scrape and
	// Stats()/Health() read the same cells. At most one Ingestor may use a
	// given registry (families register once). nil keeps the accounting in
	// standalone cells: same hot-path cost, no exposition.
	Metrics *obs.Registry
	// Node, when set, names this ingestor's place in a telemetry cluster —
	// role, node id and the partitions it owns or replicates — and is
	// echoed verbatim by Health(), so a cluster node's /healthz answer is
	// self-describing: an operator (or the front-end's health prober)
	// learns who they are talking to from the answer alone. nil for the
	// single-process deployment.
	Node *NodeInfo
	// ShedPriority enables drop-priority load shedding on a non-Block
	// ingestor: when a shard queue passes its high-water mark (3/4 full),
	// envelopes whose priority is <= 0 are shed — counted in
	// ShardStats.Shed, Offer returns false — so saturation sacrifices the
	// least important traffic first instead of whatever arrives when the
	// queue finally fills. Higher values survive until the queue is hard
	// full. nil sheds nothing early (historical behaviour).
	ShedPriority func(Envelope) int
	// WAL configures durability; see WALConfig.
	WAL WALConfig
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Compression <= 0 {
		c.Compression = stats.DefaultCompression
	}
	if c.WAL.Dir != "" && c.WAL.SyncEvery <= 0 {
		c.WAL.SyncEvery = 256
	}
}

// windowKey identifies one rollup: a window start (Unix ms, aligned to the
// configured window length) plus the dimension tuple.
type windowKey struct {
	Start int64
	Key
}

// shard is one single-writer ingest worker: a bounded queue, the rollup map
// it alone writes, the idempotency trackers, its WAL, and its accounting.
// The mutex guards the rollup/dedup/WAL state against query-time readers
// and SyncWAL/snapshot callers; the hot path contends on it solely while
// one of those is in flight.
type shard struct {
	ch      chan Envelope
	mu      sync.Mutex
	windows map[windowKey]*stats.Sketch
	// starts indexes windows by start time: start → number of rollup
	// entries in it. Retention counts and evicts *time windows* (distinct
	// starts), never individual (window, key) entries, so a cap smaller
	// than the key cardinality still retains MaxWindows whole windows.
	starts map[int64]int
	// seen dedups sequenced envelopes per (key, user); see dedup.go.
	seen map[dedupKey]*seqTracker
	// wal is the shard's write-ahead log, nil when durability is off.
	wal *shardWAL
	// snapMu serialises whole snapshot writes (encode + tmp file + rename):
	// the worker's periodic checkpoint and the public Snapshot may run
	// concurrently, and two writers on the same tmp path would interleave
	// bytes and rename a corrupt (wasted) checkpoint into place.
	snapMu sync.Mutex
	// sinceSnapshot counts folds since the last checkpoint (worker-only).
	sinceSnapshot int

	// Accounting cells (metrics.go): registered series when Config.Metrics
	// is set, standalone obs.Counters otherwise — either way one atomic op
	// on the hot path, and the single source Stats() and /metrics share.
	accepted    *obs.Counter // enqueued into this shard
	dropped     *obs.Counter // rejected at a hard-full queue (only when !Block)
	shed        *obs.Counter // rejected by priority shedding at high water
	processed   *obs.Counter // consumed from the queue (folded or deduped)
	deduped     *obs.Counter // sequenced duplicates folded zero times
	compactions *obs.Counter // dedup tracker sparse-window compactions
	evicted     *obs.Counter // time windows evicted under MaxWindows retention

	// Latency instruments, nil without a registry — fold skips the clock
	// reads entirely then.
	walAppendHist *obs.Histogram
	snapshotHist  *obs.Histogram
}

// ShardStats is one shard's accounting snapshot. Windows counts distinct
// time windows (what MaxWindows caps); Rollups counts (window, key)
// sketches (memory is proportional to this × sketch compression). The WAL
// fields are zero when durability is off; WALLag is the records appended
// but not yet fsynced — what a crash right now would lose.
type ShardStats struct {
	Accepted         uint64 `json:"accepted"`
	Dropped          uint64 `json:"dropped"`
	Shed             uint64 `json:"shed,omitempty"`
	Processed        uint64 `json:"processed"`
	Deduped          uint64 `json:"deduped,omitempty"`
	DedupCompactions uint64 `json:"dedup_compactions,omitempty"`
	EvictedWindows   uint64 `json:"evicted_windows"`
	Queued           int    `json:"queued"`
	Windows          int    `json:"windows"`
	Rollups          int    `json:"rollups"`
	WALAppended      uint64 `json:"wal_appended,omitempty"`
	WALLag           uint64 `json:"wal_lag,omitempty"`
	WALError         string `json:"wal_error,omitempty"`
}

// Ingestor is the sharded ingest stage. Producers call Offer (or OfferAll);
// each envelope hashes by its dimension Key to one shard, whose worker
// goroutine folds it into the (window, key) quantile sketch — after logging
// it to the shard WAL when durability is on. Close drains and stops the
// workers (then fsyncs and snapshots); Query (query.go) answers over the
// accumulated rollups at any time, including after Close.
type Ingestor struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	// offerMu serialises Offer against Close: Offer holds the read side
	// across its queue send, Close takes the write side to flip closed and
	// close the queues, so an Offer racing Close returns false instead of
	// panicking on a closed channel.
	offerMu sync.RWMutex
	closed  bool

	recovery  *RecoveryStats
	closeOnce sync.Once
	closeErr  error

	// node is the live cluster identity, seeded from Config.Node and
	// replaceable at runtime (SetNodeInfo) when an epoch activation
	// reassigns this node's partitions; nodeMu guards it against /healthz
	// readers racing an activation.
	nodeMu sync.Mutex
	node   *NodeInfo

	// frozen marks partitions (under the frozenOf split) refusing ingest
	// while a handoff cuts their pages; guarded by offerMu so the freeze
	// and Offer's enqueue serialize (see FreezePartition).
	frozen   map[int]bool
	frozenOf int

	// m holds the registered instrument families, nil without Config.Metrics.
	m *ingestMetrics
}

// NewIngestor starts the shard workers, recovering from Config.WAL.Dir
// first when durability is configured. It panics if recovery fails (corrupt
// mid-WAL data, unreadable directory, mismatched shard layout); use Open to
// handle those errors.
func NewIngestor(cfg Config) *Ingestor {
	ing, _, err := Open(cfg)
	if err != nil {
		panic("telemetry: " + err.Error())
	}
	return ing
}

// Open builds an Ingestor and, when Config.WAL.Dir is set, first recovers
// the rollup state a previous process persisted there: each shard loads its
// snapshot (if any, and falling back to full WAL replay if it is corrupt),
// replays the WAL records the snapshot does not cover, truncates torn
// tails, and reopens its log for appending. The returned stats describe
// that pass; a recovered ingestor answers queries byte-for-byte as the
// previous process would have, for everything durable at its last fsync.
func Open(cfg Config) (*Ingestor, RecoveryStats, error) {
	cfg.fill()
	began := time.Now()
	ing := &Ingestor{cfg: cfg, shards: make([]*shard, cfg.Shards), node: cfg.Node}
	var im *ingestMetrics
	if cfg.Metrics != nil {
		im = newIngestMetrics(cfg.Metrics)
	}
	var rst RecoveryStats
	for i := range ing.shards {
		s := &shard{
			ch:      make(chan Envelope, cfg.QueueLen),
			windows: make(map[windowKey]*stats.Sketch),
			starts:  make(map[int64]int),
			seen:    make(map[dedupKey]*seqTracker),
		}
		// Bind the accounting cells before recovery: replayed folds count.
		if im != nil {
			im.bind(s, i)
		} else {
			bindStandalone(s)
		}
		ing.shards[i] = s
		if cfg.WAL.Dir != "" {
			wrap := func(w io.Writer) io.Writer { return w }
			if cfg.WAL.WrapWriter != nil {
				shardIdx := i
				wrap = func(w io.Writer) io.Writer { return cfg.WAL.WrapWriter(shardIdx, w) }
			}
			wal, err := newShardWAL(shardDir(cfg.WAL.Dir, i), cfg.WAL.SyncEvery, wrap)
			if err != nil {
				return nil, rst, err
			}
			s.wal = wal
			if im != nil {
				im.bindWAL(wal, i)
			}
			if err := ing.recoverShard(s, &rst); err != nil {
				return nil, rst, err
			}
		}
	}
	if cfg.WAL.Dir != "" {
		for _, s := range ing.shards {
			rst.Windows += len(s.starts)
		}
		rst.DurationMs = time.Since(began).Milliseconds()
		ing.recovery = &rst
	}
	if im != nil {
		ing.m = im
		ing.installCollectHook(cfg.Metrics, im)
		if ing.recovery != nil {
			im.recoveryReplayed.Set(float64(rst.RecordsReplayed))
			im.recoverySkipped.Set(float64(rst.RecordsSkipped))
			im.recoveryDuration.Set(float64(rst.DurationMs) / 1e3)
		}
	}
	for i := range ing.shards {
		s := ing.shards[i]
		ing.wg.Add(1)
		go func() {
			defer ing.wg.Done()
			ing.run(s)
		}()
	}
	return ing, rst, nil
}

// Config returns the ingestor's effective (default-filled) configuration.
func (ing *Ingestor) Config() Config { return ing.cfg }

// Recovery returns the startup recovery stats, nil when durability is off.
func (ing *Ingestor) Recovery() *RecoveryStats { return ing.recovery }

// windowStart aligns a Unix-ms timestamp down to its window.
func (ing *Ingestor) windowStart(ts int64) int64 {
	w := ing.cfg.Window.Milliseconds()
	return ts - ts%w
}

// run is one shard worker: the sole writer of s.windows.
func (ing *Ingestor) run(s *shard) {
	for e := range s.ch {
		ing.fold(s, e, foldLive)
		s.processed.Inc()
		if s.wal != nil && ing.cfg.WAL.SnapshotEvery > 0 {
			if s.sinceSnapshot++; s.sinceSnapshot >= ing.cfg.WAL.SnapshotEvery {
				s.sinceSnapshot = 0
				ing.snapshotShard(s)
			}
		}
	}
}

// foldMode distinguishes live ingest from recovery replay: replay must not
// re-log events (they came from the WAL) and defers retention to the end of
// the pass (recover.go) so segment replays see every window.
type foldMode int

const (
	foldLive foldMode = iota
	foldReplay
)

// fold applies one envelope to the shard state: dedup sequenced duplicates,
// log to the WAL (live mode), then fold into the (window, key) sketch. WAL
// append precedes the fold and shares its lock hold, so per-segment record
// order is exactly fold order — the invariant recovery replay relies on.
func (ing *Ingestor) fold(s *shard, e Envelope, mode foldMode) {
	wk := windowKey{Start: ing.windowStart(e.TS), Key: e.Key()}
	s.mu.Lock()
	if e.Seq > 0 {
		dk := dedupKey{Key: wk.Key, User: e.User}
		t := s.seen[dk]
		if t == nil {
			t = &seqTracker{}
			s.seen[dk] = t
		}
		dup, compacted := t.seen(e.Seq)
		if compacted {
			s.compactions.Inc()
		}
		if dup {
			s.mu.Unlock()
			s.deduped.Inc()
			return
		}
		// Advance the tracker's retention clock only on folds (duplicates
		// are not WAL-logged; replay must rebuild identical state).
		if wk.Start > t.last {
			t.last = wk.Start
		}
	}
	if mode == foldLive && s.wal != nil {
		if s.walAppendHist != nil {
			began := time.Now()
			s.wal.append(e, wk.Start)
			s.walAppendHist.ObserveDuration(time.Since(began))
		} else {
			s.wal.append(e, wk.Start)
		}
	}
	sk := s.windows[wk]
	if sk == nil {
		sk = stats.NewSketch(ing.cfg.Compression)
		s.windows[wk] = sk
		if s.starts[wk.Start]++; s.starts[wk.Start] == 1 && mode == foldLive {
			ing.enforceRetention(s)
		}
	}
	// Add cannot fail here: Offer validated the envelope, and a finite
	// value is the only thing the sketch requires.
	_ = sk.Add(e.Value)
	s.mu.Unlock()
}

// enforceRetention evicts whole oldest time windows while the shard holds
// more distinct window starts than MaxWindows, unlinking their WAL segments
// with them. Called with s.mu held, only when a new *start* appears (not
// per rollup entry or event), so the eviction scans are paid once per
// window rollover. A late event older than the retention horizon opens a
// window that is immediately the eviction victim — its data is discarded,
// the standard retention trade.
func (ing *Ingestor) enforceRetention(s *shard) {
	for ing.cfg.MaxWindows > 0 && len(s.starts) > ing.cfg.MaxWindows {
		oldest := int64(math.MaxInt64)
		for start := range s.starts {
			if start < oldest {
				oldest = start
			}
		}
		for wk := range s.windows {
			if wk.Start == oldest {
				delete(s.windows, wk)
			}
		}
		delete(s.starts, oldest)
		// Age out dedup trackers whose streams went idle at or before the
		// evicted window: their folds all landed in discarded windows, so
		// keeping their receive state would grow s.seen (and every snapshot)
		// without bound on a long-running daemon. A stream outliving the
		// retention horizon restarts with a fresh tracker — its dedup memory
		// is scoped to the data the pipeline still holds.
		for dk, t := range s.seen {
			if t.last <= oldest {
				delete(s.seen, dk)
			}
		}
		if s.wal != nil {
			s.wal.dropSegment(oldest)
		}
		s.evicted.Inc()
	}
}

// Offer submits one envelope. It returns false — with the reason counted on
// its shard — when the shard queue is hard full (Dropped) or past its
// high-water mark with a sheddable (priority <= 0) envelope (Shed), both
// only when the ingestor is not configured to Block, or when the ingestor
// is closed. Invalid envelopes are rejected (false) without reaching a
// queue; use Validate/DecodeLine upstream to distinguish.
func (ing *Ingestor) Offer(e Envelope) bool {
	if e.Validate() != nil {
		return false
	}
	ing.offerMu.RLock()
	defer ing.offerMu.RUnlock()
	if ing.closed || ing.frozenFor(e) {
		return false
	}
	s := ing.shards[e.Key().ShardOf(len(ing.shards))]
	if ing.cfg.Block {
		s.ch <- e
		s.accepted.Inc()
		return true
	}
	if ing.cfg.ShedPriority != nil && len(s.ch) >= ing.shedWater() && ing.cfg.ShedPriority(e) <= 0 {
		s.shed.Inc()
		return false
	}
	select {
	case s.ch <- e:
		s.accepted.Inc()
		return true
	default:
		s.dropped.Inc()
		return false
	}
}

// shedWater is the queue depth at which priority shedding starts: 3/4 of
// capacity, leaving headroom for priority traffic while the queue drains.
func (ing *Ingestor) shedWater() int {
	return ing.cfg.QueueLen - ing.cfg.QueueLen/4
}

// OfferAll submits a batch, returning how many were accepted.
func (ing *Ingestor) OfferAll(events []Envelope) int {
	n := 0
	for _, e := range events {
		if ing.Offer(e) {
			n++
		}
	}
	return n
}

// Flush blocks until every accepted envelope has been folded into a rollup.
// It does not stop the workers; producers may keep offering afterwards.
// Flush only settles if producers pause — it is a barrier for batch-style
// use (replay, tests, HTTP ingest handlers), not a fence against concurrent
// writers.
func (ing *Ingestor) Flush() {
	for _, s := range ing.shards {
		for s.processed.Value() < s.accepted.Value() {
			runtime.Gosched()
		}
	}
}

// SyncWAL flushes and fsyncs every shard's WAL, advancing the durability
// floor to everything folded so far. A no-op (nil) without durability.
func (ing *Ingestor) SyncWAL() error {
	var first error
	for _, s := range ing.shards {
		if s.wal == nil {
			continue
		}
		s.mu.Lock()
		err := s.wal.sync()
		s.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// snapshotShard checkpoints one shard: the WAL is fsynced and the state
// encoded under the shard lock (one consistent cut of sketches, dedup
// trackers and WAL positions), then written and atomically renamed outside
// it; snapMu serialises concurrent checkpointers on the shared tmp path.
func (ing *Ingestor) snapshotShard(s *shard) error {
	var began time.Time
	if s.snapshotHist != nil {
		began = time.Now()
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.Lock()
	// A snapshot may only describe fsynced state: its applied counts promise
	// that many records are on disk, and recovery skips exactly that many.
	// Encoding buffered-but-unsynced appends would, across two crashes,
	// make replay skip past records that ARE durable — silent loss. So sync
	// first, and fail the checkpoint if the WAL cannot.
	if err := s.wal.sync(); err != nil {
		s.mu.Unlock()
		return err
	}
	payload := encodeSnapshot(s, ing.cfg)
	dir := s.wal.dir
	s.mu.Unlock()
	err := writeSnapshot(dir, payload)
	if err == nil && s.snapshotHist != nil {
		s.snapshotHist.ObserveDuration(time.Since(began))
	}
	return err
}

// Snapshot checkpoints every shard now (Close does this automatically).
func (ing *Ingestor) Snapshot() error {
	var first error
	for _, s := range ing.shards {
		if s.wal == nil {
			continue
		}
		if err := ing.snapshotShard(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close is idempotent: the first call drains the queues, stops and waits
// for the workers, then — with durability on — fsyncs every WAL and writes
// a final snapshot, so a clean shutdown loses nothing and restarts
// instantly from the checkpoint. Offers during and after Close return
// false; queries keep answering over the final state. Later calls return
// the first call's error.
func (ing *Ingestor) Close() error {
	ing.closeOnce.Do(func() {
		ing.offerMu.Lock()
		ing.closed = true
		for _, s := range ing.shards {
			close(s.ch)
		}
		ing.offerMu.Unlock()
		ing.wg.Wait()
		for _, s := range ing.shards {
			if s.wal == nil {
				continue
			}
			if err := ing.snapshotShard(s); err != nil && ing.closeErr == nil {
				ing.closeErr = err
			}
			s.mu.Lock()
			if err := s.wal.closeFiles(); err != nil && ing.closeErr == nil {
				ing.closeErr = err
			}
			s.mu.Unlock()
		}
	})
	return ing.closeErr
}

// Crash is the test double for SIGKILL: it stops the workers and closes the
// WAL file handles without flushing buffered writes, final fsync or a
// snapshot, so the on-disk state is exactly what the durability contract
// promises after a hard crash — everything up to the last fsync, plus
// whatever later bytes the OS already had (possibly ending in a torn line).
// Exported for chaos harnesses (the cluster tests hard-kill member nodes
// through it); production shutdown is Close.
func (ing *Ingestor) Crash() {
	ing.closeOnce.Do(func() {
		ing.offerMu.Lock()
		ing.closed = true
		for _, s := range ing.shards {
			close(s.ch)
		}
		ing.offerMu.Unlock()
		ing.wg.Wait()
		for _, s := range ing.shards {
			if s.wal != nil {
				s.wal.abort()
			}
		}
	})
}

// Stats snapshots per-shard accounting, shard index order.
func (ing *Ingestor) Stats() []ShardStats {
	out := make([]ShardStats, len(ing.shards))
	for i, s := range ing.shards {
		s.mu.Lock()
		rollups, wins := len(s.windows), len(s.starts)
		var walAppended, walLag uint64
		var walErr string
		if s.wal != nil {
			walAppended, walLag = s.wal.appended, s.wal.lag()
			if s.wal.err != nil {
				walErr = s.wal.err.Error()
			}
		}
		s.mu.Unlock()
		out[i] = ShardStats{
			Accepted:         s.accepted.Value(),
			Dropped:          s.dropped.Value(),
			Shed:             s.shed.Value(),
			Processed:        s.processed.Value(),
			Deduped:          s.deduped.Value(),
			DedupCompactions: s.compactions.Value(),
			EvictedWindows:   s.evicted.Value(),
			Queued:           len(s.ch),
			Windows:          wins,
			Rollups:          rollups,
			WALAppended:      walAppended,
			WALLag:           walLag,
			WALError:         walErr,
		}
	}
	return out
}

// TotalStats folds Stats into one aggregate.
func (ing *Ingestor) TotalStats() ShardStats {
	var t ShardStats
	for _, s := range ing.Stats() {
		t.Accepted += s.Accepted
		t.Dropped += s.Dropped
		t.Shed += s.Shed
		t.Processed += s.Processed
		t.Deduped += s.Deduped
		t.DedupCompactions += s.DedupCompactions
		t.EvictedWindows += s.EvictedWindows
		t.Queued += s.Queued
		t.Windows += s.Windows
		t.Rollups += s.Rollups
		t.WALAppended += s.WALAppended
		t.WALLag += s.WALLag
	}
	return t
}

// NodeInfo identifies an ingestor's place in a telemetry cluster. It is
// descriptive only — the ingestor never routes by it — but surfacing it
// through Health() makes every /healthz answer self-describing.
type NodeInfo struct {
	// Role is "single", "node" or "frontend" (cmd/telemetryd's -role).
	Role string `json:"role"`
	// ID is the node's cluster-wide id (cmd/telemetryd's -node-id).
	ID string `json:"id,omitempty"`
	// Partitions lists the partition indexes this node owns, ascending.
	Partitions []int `json:"partitions,omitempty"`
	// Replicates lists the partitions this node stands replica for
	// (replication factor 2), ascending.
	Replicates []int `json:"replicates,omitempty"`
}

// HealthState is the pipeline's liveness/degradation report, served by
// cmd/telemetryd's /healthz.
type HealthState struct {
	// Status is "ok", or "degraded" when any shard has lost durability (a
	// sticky WAL error) or sits at a hard-full queue.
	Status string `json:"status"`
	// Reasons names each degradation, per shard.
	Reasons []string `json:"reasons,omitempty"`
	// Durable reports whether a WAL is configured at all.
	Durable bool `json:"durable"`
	// Node is the cluster identity (Config.Node), nil for a single process.
	Node   *NodeInfo    `json:"node,omitempty"`
	Shards []ShardStats `json:"shards"`
	Total  ShardStats   `json:"total"`
	// Recovery is the startup recovery pass, when durability is on.
	Recovery *RecoveryStats `json:"recovery,omitempty"`
}

// Health assembles the current HealthState.
func (ing *Ingestor) Health() HealthState {
	h := HealthState{
		Status:   "ok",
		Durable:  ing.cfg.WAL.Dir != "",
		Node:     ing.nodeInfo(),
		Shards:   ing.Stats(),
		Recovery: ing.recovery,
	}
	for i, s := range h.Shards {
		if s.WALError != "" {
			h.Reasons = append(h.Reasons, fmt.Sprintf("shard %d: wal degraded to memory-only: %s", i, s.WALError))
		}
		if s.Queued >= ing.cfg.QueueLen {
			h.Reasons = append(h.Reasons, fmt.Sprintf("shard %d: queue saturated (%d/%d)", i, s.Queued, ing.cfg.QueueLen))
		}
	}
	if len(h.Reasons) > 0 {
		h.Status = "degraded"
	}
	h.Total = ing.TotalStats()
	return h
}

// String summarises the ingestor for logs.
func (ing *Ingestor) String() string {
	t := ing.TotalStats()
	return fmt.Sprintf("telemetry: %d shards, window %v: accepted=%d dropped=%d processed=%d windows=%d",
		len(ing.shards), ing.cfg.Window, t.Accepted, t.Dropped, t.Processed, t.Windows)
}
