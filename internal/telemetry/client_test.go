package telemetry

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"edgescope/internal/rng"
)

// noSleep collects the computed backoff delays without waiting them out.
func noSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

func TestRetryClientRetriesUntilAck(t *testing.T) {
	fails := 3
	var delivered []Envelope
	transport := func(e Envelope) bool {
		if fails > 0 {
			fails--
			return false
		}
		delivered = append(delivered, e)
		return true
	}
	var delays []time.Duration
	c := NewRetryClient(transport, rng.New(1), RetryConfig{Sleep: noSleep(&delays)})
	e := ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 1)
	if !c.Send(e) {
		t.Fatal("Send failed despite transport recovering")
	}
	if len(delivered) != 1 {
		t.Fatalf("delivered %d copies, want 1", len(delivered))
	}
	st := c.Stats()
	if st.Sent != 1 || st.Retries != 3 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(delays) != 3 {
		t.Fatalf("slept %d times, want 3", len(delays))
	}
	// Backoff grows and jitter keeps every delay in [base/2, base).
	base := 5 * time.Millisecond
	for i, d := range delays {
		if d < base/2 || d >= base {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, d, base/2, base)
		}
		if base *= 2; base > 500*time.Millisecond {
			base = 500 * time.Millisecond
		}
	}
}

func TestRetryClientGivesUp(t *testing.T) {
	attempts := 0
	var delays []time.Duration
	c := NewRetryClient(func(Envelope) bool { attempts++; return false },
		rng.New(1), RetryConfig{MaxAttempts: 4, Sleep: noSleep(&delays)})
	if c.Send(ev(time.Now().UnixMilli(), MetricRTT, "x", "y", 1)) {
		t.Fatal("Send succeeded on an always-failing transport")
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if st := c.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetryClientSequencesPerStream: sequences are contiguous per
// (key, user) — the contract that keeps the server-side trackers compact.
func TestRetryClientSequencesPerStream(t *testing.T) {
	var got []Envelope
	c := NewRetryClient(func(e Envelope) bool { got = append(got, e); return true },
		rng.New(1), RetryConfig{})
	ts := time.Now().UnixMilli()
	for i := 0; i < 3; i++ {
		for user := 0; user < 2; user++ {
			e := ev(ts, MetricRTT, "Beijing", "WiFi", 1)
			e.User = user
			c.Send(e)
		}
	}
	next := map[int]uint64{}
	for _, e := range got {
		if want := next[e.User] + 1; e.Seq != want {
			t.Fatalf("user %d got seq %d, want %d", e.User, e.Seq, want)
		}
		next[e.User] = e.Seq
	}
	// A pre-sequenced envelope keeps its number.
	e := ev(ts, MetricRTT, "Beijing", "WiFi", 1)
	e.Seq = 99
	c.Send(e)
	if last := got[len(got)-1]; last.Seq != 99 {
		t.Fatalf("pre-sequenced envelope renumbered to %d", last.Seq)
	}
}

// TestRetryClientSeqStatePersistsAcrossRestart pins the ownership contract:
// a restarted producer that restores its sequence cursors continues its
// streams seamlessly, while one that skips the restore restarts at Seq=1
// and loses its first sends to the server's durable dedup state — the
// documented hazard SeqState exists to prevent.
func TestRetryClientSeqStatePersistsAcrossRestart(t *testing.T) {
	ing := NewIngestor(Config{Shards: 2, QueueLen: 64, Block: true})
	defer ing.Close()
	ts := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	mk := func(i int) Envelope {
		e := ev(ts+int64(i), MetricRTT, "Beijing", "WiFi", float64(i))
		e.User = 3
		return e
	}

	c1 := NewRetryClient(ing.Offer, rng.New(1), RetryConfig{})
	for i := 0; i < 5; i++ {
		if !c1.Send(mk(i)) {
			t.Fatal("send failed")
		}
	}
	saved := c1.SeqState() // what a producer persists at shutdown
	if len(saved) != 1 || saved[0].LastSeq != 5 || saved[0].User != 3 {
		t.Fatalf("SeqState = %+v, want one stream cursor at 5", saved)
	}

	c2 := NewRetryClient(ing.Offer, rng.New(2), RetryConfig{})
	c2.RestoreSeqState(saved)
	for i := 5; i < 10; i++ {
		if !c2.Send(mk(i)) {
			t.Fatal("send failed")
		}
	}
	ing.Flush()
	if tot := ing.TotalStats(); tot.Deduped != 0 {
		t.Fatalf("restored client had %d events deduped away", tot.Deduped)
	}
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil || res.Count != 10 {
		t.Fatalf("count = %v err = %v, want 10 (both incarnations folded)", res.Count, err)
	}

	// The hazard itself: a third incarnation without the restore collides
	// with the durable trackers and its sends fold zero times.
	c3 := NewRetryClient(ing.Offer, rng.New(3), RetryConfig{})
	for i := 10; i < 15; i++ {
		c3.Send(mk(i))
	}
	ing.Flush()
	if tot := ing.TotalStats(); tot.Deduped != 5 {
		t.Fatalf("unrestored client deduped %d, want 5 (the ownership hazard)", tot.Deduped)
	}
}

// TestHTTPSenderEndToEnd drives a RetryClient through a real HTTP hop into
// an Ingestor — the telemetryd /ingest shape — with the first request of
// each pair refused at the HTTP layer to force retries.
func TestHTTPSenderEndToEnd(t *testing.T) {
	ing := NewIngestor(Config{Shards: 2, QueueLen: 64, Block: true})
	defer ing.Close()
	flaky := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if flaky++; flaky%2 == 1 {
			http.Error(w, "try again", http.StatusServiceUnavailable)
			return
		}
		accepted := 0
		if _, err := ReadJSONL(r.Body, func(e Envelope) {
			if ing.Offer(e) {
				accepted++
			}
		}); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d}`, accepted)
	}))
	defer srv.Close()

	c := NewRetryClient(HTTPSender(srv.Client(), srv.URL), rng.New(7),
		RetryConfig{Sleep: func(time.Duration) {}})
	const n = 20
	ts := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	for i := 0; i < n; i++ {
		if !c.Send(ev(ts+int64(i), MetricRTT, "Beijing", "WiFi", float64(i))) {
			t.Fatalf("send %d failed", i)
		}
	}
	ing.Flush()
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != n {
		t.Fatalf("count = %v, want %d (every send exactly once)", res.Count, n)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatalf("flaky server produced no retries: %+v", st)
	}
}

// TestReadJSONLAbortsOnMalformedRun: satellite 3 — a bounded-tolerance read
// fails fast on a corrupt tail, with the run's position in the error.
func TestReadJSONLAbortsOnMalformedRun(t *testing.T) {
	good := `{"v":1,"ts":1,"kind":"ping","metric":"rtt_ms","user":0,"region":"a","net":"b","value":1}`
	input := good + "\nnot json\nstill not json\nnope\n" + good + "\n"

	// Unlimited (default): every bad line skipped, both good lines decoded.
	st, err := ReadJSONL(strings.NewReader(input), func(Envelope) {})
	if err != nil || st.Decoded != 2 || st.Malformed != 3 {
		t.Fatalf("default read: stats=%+v err=%v", st, err)
	}

	// Capped: the third consecutive bad line aborts, positioned at the run.
	st, err = ReadJSONLOpts(strings.NewReader(input), ReadOptions{MaxConsecutiveMalformed: 3}, func(Envelope) {})
	if !errors.Is(err, ErrMalformedRun) {
		t.Fatalf("err = %v, want ErrMalformedRun", err)
	}
	if st.Decoded != 1 || st.Malformed != 3 {
		t.Fatalf("aborted stats = %+v", st)
	}
	for _, want := range []string{"line 2", "byte offset 89"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not position the run (%s)", err, want)
		}
	}

	// Good lines reset the run: interleaved corruption below the cap never
	// aborts.
	interleaved := strings.Repeat("bad\nworse\n"+good+"\n", 5)
	st, err = ReadJSONLOpts(strings.NewReader(interleaved), ReadOptions{MaxConsecutiveMalformed: 3}, func(Envelope) {})
	if err != nil || st.Decoded != 5 || st.Malformed != 10 {
		t.Fatalf("interleaved: stats=%+v err=%v", st, err)
	}
}

// TestReadJSONLTornFinalLine: a truncated final line — the torn-write
// footprint — is one malformed line, not an abort or a silent success.
func TestReadJSONLTornFinalLine(t *testing.T) {
	good := `{"v":1,"ts":1,"kind":"ping","metric":"rtt_ms","user":0,"region":"a","net":"b","value":1}`
	torn := good + "\n" + good[:40] // cut mid-record, no newline
	st, err := ReadJSONL(strings.NewReader(torn), func(Envelope) {})
	if err != nil {
		t.Fatalf("torn tail errored the pass: %v", err)
	}
	if st.Decoded != 1 || st.Malformed != 1 {
		t.Fatalf("stats = %+v, want 1 decoded + 1 malformed", st)
	}
	// With a cap of 1 the torn tail aborts instead, naming the line.
	_, err = ReadJSONLOpts(strings.NewReader(torn), ReadOptions{MaxConsecutiveMalformed: 1}, func(Envelope) {})
	if !errors.Is(err, ErrMalformedRun) || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("capped torn tail: err = %v", err)
	}
}
