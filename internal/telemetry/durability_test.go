package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// durCfg is the durability tests' base config: blocking ingest (lossless),
// every record fsynced (SyncEvery 1), so the durable horizon is "everything
// offered" and recovery must reproduce it exactly.
func durCfg(dir string) Config {
	return Config{
		Shards:   3,
		QueueLen: 64,
		Block:    true,
		WAL:      WALConfig{Dir: dir, SyncEvery: 1},
	}
}

// queryFingerprint marshals every answer surface of the ingestor — per-key
// counts plus quantile/CDF answers per metric — into one byte slice.
// Byte-equal fingerprints mean a client could not distinguish the two
// ingestors.
func queryFingerprint(t *testing.T, ing *Ingestor) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(ing.Keys()); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{MetricRTT, MetricHops} {
		res, err := ing.Query(QuerySpec{
			Metric:    metric,
			Quantiles: []float64{0.5, 0.9, 0.95, 0.99},
			CDFAt:     []float64{5, 20, 50, 100},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	return bytes.Clone(buf.Bytes())
}

// TestKillAndRecoverByteIdentical is the tentpole acceptance pin: hard-kill
// a durable ingestor (no final flush, fsync or snapshot) and a restarted
// one answers the same queries byte-for-byte.
func TestKillAndRecoverByteIdentical(t *testing.T) {
	dir := t.TempDir()
	events := campaignEvents(t)
	cfg := durCfg(dir)

	ing := NewIngestor(cfg)
	if got := ing.OfferAll(events); got != len(events) {
		t.Fatalf("accepted %d of %d", got, len(events))
	}
	ing.Flush()
	want := queryFingerprint(t, ing)
	ing.Crash()

	ing2, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer ing2.Close()
	if rec.RecordsReplayed != uint64(len(events)) {
		t.Fatalf("replayed %d records, want %d", rec.RecordsReplayed, len(events))
	}
	if got := queryFingerprint(t, ing2); !bytes.Equal(got, want) {
		t.Fatalf("recovered answers diverge:\n got %s\nwant %s", got, want)
	}
}

// TestCleanShutdownRecoversFromSnapshot: Close writes a final snapshot, so
// the next Open replays zero WAL records and still answers identically.
func TestCleanShutdownRecoversFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	events := campaignEvents(t)
	cfg := durCfg(dir)

	ing := NewIngestor(cfg)
	ing.OfferAll(events)
	ing.Flush()
	want := queryFingerprint(t, ing)
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	ing2, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer ing2.Close()
	if rec.Snapshots == 0 {
		t.Fatal("no snapshot loaded after clean shutdown")
	}
	if rec.RecordsReplayed != 0 {
		t.Fatalf("replayed %d records after clean shutdown, want 0", rec.RecordsReplayed)
	}
	if got := queryFingerprint(t, ing2); !bytes.Equal(got, want) {
		t.Fatal("post-shutdown recovery diverges from pre-shutdown answers")
	}
}

// TestRecoverSnapshotEquivalentToWALOnly is the property pin: a snapshot is
// only a replay accelerator, so deleting every snapshot and recovering from
// the WAL alone must produce byte-identical answers AND byte-identical
// dedup behaviour.
func TestRecoverSnapshotEquivalentToWALOnly(t *testing.T) {
	dir := t.TempDir()
	events := campaignEvents(t)
	cfg := durCfg(dir)
	cfg.WAL.SnapshotEvery = 37 // frequent mid-stream snapshots

	ing := NewIngestor(cfg)
	// Sequence half the events so dedup trackers are part of the state.
	for i, e := range events {
		if i%2 == 0 {
			e.Seq = uint64(i/2 + 1)
		}
		if !ing.Offer(e) {
			t.Fatal("offer refused")
		}
	}
	ing.Flush()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	open := func() (*Ingestor, []byte) {
		ing, _, err := Open(cfg)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		return ing, queryFingerprint(t, ing)
	}

	withSnap, fpSnap := open()
	defer withSnap.Close()

	// Strip every snapshot; only the WAL remains.
	for i := 0; i < cfg.Shards; i++ {
		path := filepath.Join(shardDir(dir, i), snapshotFile)
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			t.Fatal(err)
		}
	}
	walOnly, fpWAL := open()
	defer walOnly.Close()

	if !bytes.Equal(fpSnap, fpWAL) {
		t.Fatalf("snapshot+WAL and WAL-only recoveries diverge:\n snap %s\n wal  %s", fpSnap, fpWAL)
	}

	// Dedup state must have been reconstructed identically too: resending
	// an already-folded sequence is a duplicate on both.
	dup := events[0]
	dup.Seq = 1
	for _, ing := range []*Ingestor{withSnap, walOnly} {
		before := ing.TotalStats().Deduped
		if !ing.Offer(dup) {
			t.Fatal("offer refused")
		}
		ing.Flush()
		if got := ing.TotalStats().Deduped; got != before+1 {
			t.Fatalf("resent duplicate folded (deduped %d -> %d)", before, got)
		}
	}
}

// TestCorruptSnapshotFallsBackToWAL: a bit-flipped snapshot is detected by
// its checksum and recovery silently falls back to full WAL replay.
func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	events := campaignEvents(t)
	cfg := durCfg(dir)

	ing := NewIngestor(cfg)
	ing.OfferAll(events)
	ing.Flush()
	want := queryFingerprint(t, ing)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(shardDir(dir, 0), snapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ing2, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("recover with corrupt snapshot: %v", err)
	}
	defer ing2.Close()
	if rec.SnapshotErrors != 1 {
		t.Fatalf("SnapshotErrors = %d, want 1", rec.SnapshotErrors)
	}
	if rec.RecordsReplayed == 0 {
		t.Fatal("corrupt snapshot should force WAL replay for its shard")
	}
	if got := queryFingerprint(t, ing2); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery diverges")
	}
}

// TestTornTailTruncated: a torn final record (crash mid-write) is detected,
// trimmed, and never replayed — and the trim survives re-recovery.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	events := campaignEvents(t)
	cfg := durCfg(dir)

	ing := NewIngestor(cfg)
	ing.OfferAll(events)
	ing.Flush()
	want := queryFingerprint(t, ing)
	ing.Crash()

	// Forge the torn write: valid JSON prefix, cut before its newline.
	segs, err := listSegments(shardDir(dir, 0))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in shard 0 (err=%v)", err)
	}
	path := filepath.Join(shardDir(dir, 0), walPrefix+strconv.FormatInt(segs[0], 10)+walSuffix)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"ts":1633046400000,"kind":"ping","met`)
	f.Close()

	ing2, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("recover with torn tail: %v", err)
	}
	if rec.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", rec.TornTails)
	}
	if got := queryFingerprint(t, ing2); !bytes.Equal(got, want) {
		t.Fatal("torn-tail recovery diverges")
	}
	ing2.Close()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("torn tail not truncated back: %d bytes, want %d", len(after), len(clean))
	}
}

// TestCorruptWALRecordFailsLoudly: a malformed but newline-terminated WAL
// line is durable data that cannot be replayed — recovery must fail with a
// positioned error, not skip it.
func TestCorruptWALRecordFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	cfg := durCfg(dir)

	ing := NewIngestor(cfg)
	ing.OfferAll(campaignEvents(t))
	ing.Flush()
	ing.Crash()

	segs, err := listSegments(shardDir(dir, 1))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in shard 1 (err=%v)", err)
	}
	path := filepath.Join(shardDir(dir, 1), walPrefix+strconv.FormatInt(segs[0], 10)+walSuffix)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"v\":99,\"not\":\"an envelope\"}\n")
	f.Close()

	if _, _, err := Open(cfg); !errors.Is(err, errWALCorrupt) {
		t.Fatalf("Open = %v, want errWALCorrupt", err)
	}
}

// TestRecoveredIngestorContinuesStream: recovery is not just a read-only
// restore — the reopened ingestor keeps accepting, WAL-logging and
// snapshotting, and a second recovery sees the union.
func TestRecoveredIngestorContinuesStream(t *testing.T) {
	dir := t.TempDir()
	events := campaignEvents(t)
	half := len(events) / 2
	cfg := durCfg(dir)

	ing := NewIngestor(cfg)
	ing.OfferAll(events[:half])
	ing.Flush()
	ing.Crash()

	ing2, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ing2.OfferAll(events[half:])
	ing2.Flush()
	want := queryFingerprint(t, ing2)
	ing2.Crash()

	ing3, rec, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ing3.Close()
	// Recovery #1 rewrote a checkpoint covering the first half, so recovery
	// #2 skips those records and replays only generation 2's appends —
	// together they must cover the whole stream.
	if total := rec.RecordsReplayed + rec.RecordsSkipped; total != uint64(len(events)) {
		t.Fatalf("replayed %d + skipped %d, want %d total", rec.RecordsReplayed, rec.RecordsSkipped, len(events))
	}
	if rec.RecordsReplayed != uint64(len(events)-half) {
		t.Fatalf("replayed %d, want %d (second generation's appends)", rec.RecordsReplayed, len(events)-half)
	}
	if got := queryFingerprint(t, ing3); !bytes.Equal(got, want) {
		t.Fatal("two-generation recovery diverges")
	}

	// The whole stream must also match a never-crashed ingestor: crashes
	// with per-record fsync lose nothing.
	clean := NewIngestor(Config{Shards: cfg.Shards, QueueLen: cfg.QueueLen, Block: true})
	defer clean.Close()
	clean.OfferAll(events)
	clean.Flush()
	if got := queryFingerprint(t, clean); !bytes.Equal(got, want) {
		t.Fatal("recovered stream diverges from a never-crashed ingestor")
	}
}

// TestRetentionUnlinksWALSegments: evicting a window removes its segment
// file, so disk usage tracks MaxWindows and recovery replays only retained
// windows.
func TestRetentionUnlinksWALSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:     1,
		QueueLen:   64,
		Block:      true,
		MaxWindows: 2,
		Window:     time.Minute,
		WAL:        WALConfig{Dir: dir, SyncEvery: 1},
	}
	ing := NewIngestor(cfg)
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	for w := 0; w < 5; w++ {
		for i := 0; i < 10; i++ {
			e := ev(base+int64(w)*60_000+int64(i), MetricRTT, "Beijing", "WiFi", float64(i))
			if !ing.Offer(e) {
				t.Fatal("offer refused")
			}
		}
	}
	ing.Flush()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(shardDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("retained %d segments, want 2 (MaxWindows)", len(segs))
	}

	ing2, rec, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	if rec.Windows != 2 {
		t.Fatalf("recovered %d windows, want 2", rec.Windows)
	}
}

// TestSnapshotNeverClaimsUnsyncedRecords is the stale-applied-counts pin: a
// snapshot's applied counts must cover only fsynced records. Generation 1
// buffers its WAL (huge SyncEvery) while snapshotting frequently — each
// checkpoint must fsync first, or it claims records that never reached
// disk. If it over-claimed, generation 2 (which appends and fsyncs new
// records at the segment's true disk offsets, then crashes before its own
// snapshot) would be recovered by generation 3 skipping past those durable
// records — silent loss of fsynced data.
func TestSnapshotNeverClaimsUnsyncedRecords(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	mk := func(i int) Envelope {
		return ev(base+int64(i), MetricRTT, "Beijing", "WiFi", float64(i%17))
	}

	cfg1 := Config{Shards: 1, QueueLen: 64, Block: true,
		WAL: WALConfig{Dir: dir, SyncEvery: 1 << 30, SnapshotEvery: 25}}
	ing1 := NewIngestor(cfg1)
	for i := 0; i < 100; i++ {
		if !ing1.Offer(mk(i)) {
			t.Fatal("offer refused")
		}
	}
	ing1.Flush()
	ing1.Crash() // buffered WAL bytes beyond the last checkpoint are lost

	cfg2 := Config{Shards: 1, QueueLen: 64, Block: true,
		WAL: WALConfig{Dir: dir, SyncEvery: 1}}
	ing2, _, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		if !ing2.Offer(mk(i)) {
			t.Fatal("offer refused")
		}
	}
	ing2.Flush() // SyncEvery 1: every generation-2 record is fsynced
	want := queryFingerprint(t, ing2)
	ing2.Crash() // before any generation-2 snapshot

	ing3, _, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer ing3.Close()
	if got := queryFingerprint(t, ing3); !bytes.Equal(got, want) {
		t.Fatal("recovery lost fsynced records: snapshot applied counts covered unsynced appends")
	}
}

// TestConcurrentSnapshotSafe: the public Snapshot and the worker's periodic
// checkpoint share one tmp path per shard, so concurrent checkpointers must
// serialise — no interleaved write may ever rename a corrupt snapshot into
// place. Run under -race; the surviving snapshot must decode cleanly.
func TestConcurrentSnapshotSafe(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, QueueLen: 256, Block: true,
		WAL: WALConfig{Dir: dir, SyncEvery: 8, SnapshotEvery: 7}}
	ing := NewIngestor(cfg)
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ing.Snapshot()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if !ing.Offer(ev(base+int64(i), MetricRTT, "Beijing", "WiFi", float64(i%13))) {
			t.Fatal("offer refused")
		}
	}
	wg.Wait()
	ing.Flush()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(shardDir(dir, 0)); err != nil {
		t.Fatalf("snapshot corrupt after concurrent checkpoints: %v", err)
	}
	ing2, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer ing2.Close()
	if rec.SnapshotErrors != 0 {
		t.Fatalf("recovery rejected %d snapshots written under contention", rec.SnapshotErrors)
	}
}

// TestDedupFoldsOnce: sequenced duplicates fold exactly once, are counted,
// and never deadlock Flush.
func TestDedupFoldsOnce(t *testing.T) {
	ing := NewIngestor(Config{Shards: 2, QueueLen: 64, Block: true})
	defer ing.Close()
	const n = 50
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	for i := 0; i < n; i++ {
		e := ev(base+int64(i), MetricRTT, "Beijing", "WiFi", float64(i))
		e.User = 7
		e.Seq = uint64(i + 1)
		if !ing.Offer(e) || !ing.Offer(e) { // every event sent twice
			t.Fatal("offer refused")
		}
	}
	ing.Flush()
	tot := ing.TotalStats()
	if tot.Deduped != n {
		t.Fatalf("deduped = %d, want %d", tot.Deduped, n)
	}
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != n {
		t.Fatalf("count = %v, want %d (duplicates folded)", res.Count, n)
	}
}

// seenDup adapts seen for tests that only care about the duplicate verdict.
func seenDup(tr *seqTracker, seq uint64) bool {
	dup, _ := tr.seen(seq)
	return dup
}

// TestDedupTrackerCompacts: contiguous sequences collapse into the floor —
// the tracker must not grow with the stream.
func TestDedupTrackerCompacts(t *testing.T) {
	var tr seqTracker
	// Deliver 1..1000 with local reordering (pairs swapped).
	for i := uint64(1); i <= 1000; i += 2 {
		if seenDup(&tr, i+1) || seenDup(&tr, i) {
			t.Fatalf("fresh seq reported seen at %d", i)
		}
	}
	if tr.floor != 1000 {
		t.Fatalf("floor = %d, want 1000", tr.floor)
	}
	if len(tr.sparse) != 0 {
		t.Fatalf("sparse holds %d entries after contiguous delivery, want 0", len(tr.sparse))
	}
	if !seenDup(&tr, 500) || !seenDup(&tr, 1000) {
		t.Fatal("replayed seq not recognised")
	}
}

// TestDedupTrackerSparseCapped: a permanent gap (an abandoned send whose
// sequence never arrives) must not pin sparse entries forever — past the
// cap the tracker advances its floor over the gap and stays bounded, while
// in-order traffic above it still dedups.
func TestDedupTrackerSparseCapped(t *testing.T) {
	var tr seqTracker
	// Seq 1 never arrives; everything above it does.
	compactions := 0
	for seq := uint64(2); seq <= maxTrackerSparse+100; seq++ {
		dup, compacted := tr.seen(seq)
		if dup {
			t.Fatalf("fresh seq %d reported seen", seq)
		}
		if compacted {
			compactions++
		}
	}
	if compactions == 0 {
		t.Fatal("compaction not reported past the sparse cap")
	}
	if len(tr.sparse) > maxTrackerSparse {
		t.Fatalf("sparse grew to %d entries past the cap %d", len(tr.sparse), maxTrackerSparse)
	}
	if tr.floor == 0 {
		t.Fatal("cap did not advance the floor over the permanent gap")
	}
	next := uint64(maxTrackerSparse + 101)
	if seenDup(&tr, next) {
		t.Fatal("new seq reported seen after compaction")
	}
	if !seenDup(&tr, next) {
		t.Fatal("duplicate not recognised after compaction")
	}
}

// TestDedupTrackerAgedOutByRetention: trackers for streams idle past the
// retention horizon are pruned with the windows they fed, so the per-shard
// seen map (and every snapshot) stays bounded alongside MaxWindows.
func TestDedupTrackerAgedOutByRetention(t *testing.T) {
	ing := NewIngestor(Config{Shards: 1, QueueLen: 64, Block: true,
		MaxWindows: 2, Window: time.Minute})
	defer ing.Close()
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	// Each window is fed by its own (key, user) stream: user w sends only
	// inside window w, then goes idle forever.
	for w := 0; w < 6; w++ {
		for i := 0; i < 5; i++ {
			e := ev(base+int64(w)*60_000+int64(i), MetricRTT, "Beijing", "WiFi", float64(i))
			e.User = w
			e.Seq = uint64(i + 1)
			if !ing.Offer(e) {
				t.Fatal("offer refused")
			}
		}
	}
	ing.Flush()
	s := ing.shards[0]
	s.mu.Lock()
	trackers := len(s.seen)
	s.mu.Unlock()
	if trackers > 2 {
		t.Fatalf("%d trackers retained with MaxWindows=2, want <=2 (idle streams not aged out)", trackers)
	}
}

// TestOfferAfterCloseSafe: satellite 1 — Offer/OfferAll on a closed
// ingestor return false/0, never panic, and Close is idempotent.
func TestOfferAfterCloseSafe(t *testing.T) {
	ing := NewIngestor(Config{Shards: 2, QueueLen: 8, Block: true})
	e := ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 1)
	if !ing.Offer(e) {
		t.Fatal("offer refused before close")
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if ing.Offer(e) {
		t.Fatal("Offer accepted after Close")
	}
	if got := ing.OfferAll([]Envelope{e, e}); got != 0 {
		t.Fatalf("OfferAll accepted %d after Close", got)
	}
	// Queries still answer over the final state.
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil || res.Count != 1 {
		t.Fatalf("post-close query: count=%v err=%v", res.Count, err)
	}
}

// TestQueryOfferCloseRace: satellite 1's race pin — concurrent Offer, Query
// and Close must be clean under -race and leave the ingestor consistent.
func TestQueryOfferCloseRace(t *testing.T) {
	ing := NewIngestor(Config{Shards: 4, QueueLen: 32, Block: true})
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ing.Offer(ev(base+int64(i), MetricRTT, "Beijing", "WiFi", float64(i)))
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ing.Query(QuerySpec{Metric: MetricRTT, Quantiles: []float64{0.5}})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ing.Close()
	}()
	wg.Wait()
	ing.Close()
	tot := ing.TotalStats()
	if tot.Processed != tot.Accepted {
		t.Fatalf("accepted %d but processed %d after close", tot.Accepted, tot.Processed)
	}
}

// TestLoadShedding: past the high-water mark a non-blocking ingestor sheds
// priority<=0 envelopes first while priority traffic still lands.
func TestLoadShedding(t *testing.T) {
	ing := NewIngestor(Config{
		Shards:   1,
		QueueLen: 8,
		ShedPriority: func(e Envelope) int {
			if e.Metric == MetricRTT {
				return 1 // latency is load-bearing
			}
			return 0 // hop counts are sheddable
		},
	})
	defer ing.Close()

	// Park the shard worker by holding the fold lock, then fill the queue.
	s := ing.shards[0]
	s.mu.Lock()
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	hi := func(i int) Envelope { return ev(base+int64(i), MetricRTT, "Beijing", "WiFi", 1) }
	lo := func(i int) Envelope { return ev(base+int64(i), MetricHops, "Beijing", "WiFi", 1) }
	for i := 0; ; i++ {
		if !ing.Offer(hi(i)) {
			break // queue hard full
		}
	}
	// Read the counters directly: Stats() takes s.mu, which this test holds.
	if s.dropped.Value() == 0 {
		t.Fatal("expected hard-full drop")
	}
	if ing.Offer(lo(0)) {
		t.Fatal("sheddable envelope accepted past high water")
	}
	if s.shed.Value() == 0 {
		t.Fatal("shed not counted")
	}
	s.mu.Unlock()
	ing.Flush()
	// Once the queue drains below high water, sheddable traffic lands again.
	if !ing.Offer(lo(1)) {
		t.Fatal("sheddable envelope refused on an idle queue")
	}
}

// TestHealthReportsDegradedWAL: a shard whose WAL write fails degrades to
// memory-only and Health says so.
func TestHealthReportsDegradedWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := durCfg(dir)
	cfg.Shards = 1
	cfg.WAL.WrapWriter = func(shard int, w io.Writer) io.Writer {
		return failingWriter{}
	}
	ing := NewIngestor(cfg)
	defer ing.Close()
	if h := ing.Health(); h.Status != "ok" {
		t.Fatalf("fresh ingestor health = %s (%v)", h.Status, h.Reasons)
	}
	ing.Offer(ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 1))
	ing.Flush()
	ing.SyncWAL()
	h := ing.Health()
	if h.Status != "degraded" || len(h.Reasons) == 0 {
		t.Fatalf("health = %s %v, want degraded with a reason", h.Status, h.Reasons)
	}
	// Ingest keeps working memory-only.
	ing.Offer(ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 2))
	ing.Flush()
	res, err := ing.Query(QuerySpec{Metric: MetricRTT})
	if err != nil || res.Count != 2 {
		t.Fatalf("degraded ingest lost data: count=%v err=%v", res.Count, err)
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, errors.New("disk on fire")
}
