package telemetry

import (
	"strconv"

	"edgescope/internal/obs"
)

// Self-observability wiring. When Config.Metrics names an obs.Registry, the
// ingestor registers its instrument families there and binds every shard's
// accounting cells to registered series — the same cells Stats()/Health()
// read, so /metrics and /healthz can never disagree. Without a registry each
// shard gets standalone obs.Counter cells: identical hot-path cost (one
// atomic add), no exposition.
//
// Hot-path discipline: counters are pre-resolved at Open (no label lookup
// per event), gauges that mirror live state (queue depth, WAL lag, rollup
// counts) are refreshed by an OnCollect hook only when something scrapes,
// and latency histograms are nil — skipping their clock reads entirely —
// unless a registry is configured.

// ingestMetrics holds the registered families and per-ingestor instruments.
type ingestMetrics struct {
	accepted, dropped, shed, processed, deduped, compactions, evicted *obs.CounterVec
	walAppended, walFsyncs                                            *obs.CounterVec
	queueDepth, walLag, windows, rollups                              *obs.GaugeVec
	walAppend, walFsync, snapshot                                     *obs.HistogramVec
	query                                                             *obs.Histogram

	recoveryReplayed, recoverySkipped, recoveryDuration *obs.Gauge
}

// walLatencyBuckets resolve microsecond-scale buffered appends and
// millisecond-scale fsyncs: 1µs..~4s, ×4 per step.
var walLatencyBuckets = obs.ExpBuckets(1e-6, 4, 12)

// newIngestMetrics registers the telemetry families on reg. One Ingestor
// per registry: families are registered once, so a second Ingestor sharing
// the registry would panic on the duplicate.
func newIngestMetrics(reg *obs.Registry) *ingestMetrics {
	return &ingestMetrics{
		accepted:    reg.CounterVec("telemetry_ingest_accepted_total", "envelopes enqueued into the shard", "shard"),
		dropped:     reg.CounterVec("telemetry_ingest_dropped_total", "envelopes rejected at a hard-full queue", "shard"),
		shed:        reg.CounterVec("telemetry_ingest_shed_total", "sheddable envelopes rejected past the queue high-water mark", "shard"),
		processed:   reg.CounterVec("telemetry_ingest_processed_total", "envelopes consumed from the queue (folded or deduped)", "shard"),
		deduped:     reg.CounterVec("telemetry_ingest_deduped_total", "sequenced duplicates folded zero times", "shard"),
		compactions: reg.CounterVec("telemetry_dedup_compactions_total", "dedup tracker sparse-window compactions (floor advanced over a gap)", "shard"),
		evicted:     reg.CounterVec("telemetry_windows_evicted_total", "time windows evicted under MaxWindows retention", "shard"),
		walAppended: reg.CounterVec("telemetry_wal_appended_total", "records appended to the write-ahead log", "shard"),
		walFsyncs:   reg.CounterVec("telemetry_wal_fsyncs_total", "WAL fsync batches completed", "shard"),
		queueDepth:  reg.GaugeVec("telemetry_shard_queue_depth", "envelopes waiting in the shard's bounded queue", "shard"),
		walLag:      reg.GaugeVec("telemetry_wal_lag_records", "records appended but not yet fsynced (lost if the process crashes now)", "shard"),
		windows:     reg.GaugeVec("telemetry_shard_rollup_windows", "distinct time windows held by the shard", "shard"),
		rollups:     reg.GaugeVec("telemetry_shard_rollups", "(window, key) sketches held by the shard", "shard"),
		walAppend:   reg.HistogramVec("telemetry_wal_append_seconds", "WAL append latency (includes the fsync when the append crosses the SyncEvery cadence)", walLatencyBuckets, "shard"),
		walFsync:    reg.HistogramVec("telemetry_wal_fsync_seconds", "WAL fsync batch latency", walLatencyBuckets, "shard"),
		snapshot:    reg.HistogramVec("telemetry_snapshot_seconds", "shard checkpoint latency (WAL fsync + encode + atomic rename)", nil, "shard"),
		query:       reg.Histogram("telemetry_query_seconds", "Query latency: match scan, sketch clone and merge", nil),

		recoveryReplayed: reg.Gauge("telemetry_recovery_records_replayed", "WAL records replayed by the startup recovery pass"),
		recoverySkipped:  reg.Gauge("telemetry_recovery_records_skipped", "WAL records skipped at recovery (already in the snapshot)"),
		recoveryDuration: reg.Gauge("telemetry_recovery_duration_seconds", "wall time of the startup recovery pass"),
	}
}

// bind points one shard's accounting cells at the registered series.
func (m *ingestMetrics) bind(s *shard, i int) {
	l := strconv.Itoa(i)
	s.accepted = m.accepted.With(l)
	s.dropped = m.dropped.With(l)
	s.shed = m.shed.With(l)
	s.processed = m.processed.With(l)
	s.deduped = m.deduped.With(l)
	s.compactions = m.compactions.With(l)
	s.evicted = m.evicted.With(l)
	s.walAppendHist = m.walAppend.With(l)
	s.snapshotHist = m.snapshot.With(l)
}

// bindWAL points one shard WAL's instruments at the registered series.
func (m *ingestMetrics) bindWAL(w *shardWAL, i int) {
	l := strconv.Itoa(i)
	w.appendedC = m.walAppended.With(l)
	w.fsyncsC = m.walFsyncs.With(l)
	w.fsyncHist = m.walFsync.With(l)
}

// bindStandalone gives a shard unregistered accounting cells — the
// no-registry configuration. Gauges and histograms stay nil (their methods
// are no-ops), so the hot path never times anything.
func bindStandalone(s *shard) {
	s.accepted = &obs.Counter{}
	s.dropped = &obs.Counter{}
	s.shed = &obs.Counter{}
	s.processed = &obs.Counter{}
	s.deduped = &obs.Counter{}
	s.compactions = &obs.Counter{}
	s.evicted = &obs.Counter{}
}

// installCollectHook registers the scrape-time gauge refresh: queue depth,
// WAL lag and rollup population per shard, read under each shard's lock only
// when something actually collects.
func (ing *Ingestor) installCollectHook(reg *obs.Registry, m *ingestMetrics) {
	gauges := make([]struct{ queue, lag, windows, rollups *obs.Gauge }, len(ing.shards))
	for i := range ing.shards {
		l := strconv.Itoa(i)
		gauges[i].queue = m.queueDepth.With(l)
		gauges[i].lag = m.walLag.With(l)
		gauges[i].windows = m.windows.With(l)
		gauges[i].rollups = m.rollups.With(l)
	}
	reg.OnCollect(func() {
		for i, s := range ing.shards {
			gauges[i].queue.Set(float64(len(s.ch)))
			s.mu.Lock()
			gauges[i].windows.Set(float64(len(s.starts)))
			gauges[i].rollups.Set(float64(len(s.windows)))
			if s.wal != nil {
				gauges[i].lag.Set(float64(s.wal.lag()))
			}
			s.mu.Unlock()
		}
	})
}
