package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/rng"
)

// TestIngestorExposesMetrics pins the pipeline's exposition contract: after a
// workload exercising ingest, dedup, WAL, eviction and a query, /metrics-style
// output covers every subsystem, lints clean, and agrees with Stats().
func TestIngestorExposesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ing := NewIngestor(Config{
		Shards:   2,
		Window:   time.Minute,
		Block:    true,
		Metrics:  reg,
		WAL:      WALConfig{Dir: t.TempDir(), SyncEvery: 4},
		QueueLen: 64,
	})
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	for i := 0; i < 50; i++ {
		e := Envelope{V: SchemaVersion, TS: base + int64(i)*1000, Metric: MetricRTT, Region: "Beijing", Net: "WiFi", User: 1, Seq: uint64(i + 1), Value: float64(i)}
		if !ing.Offer(e) {
			t.Fatalf("offer %d refused", i)
		}
	}
	// A duplicate for the dedup counter.
	dup := Envelope{V: SchemaVersion, TS: base, Metric: MetricRTT, Region: "Beijing", Net: "WiFi", User: 1, Seq: 1, Value: 0}
	ing.Offer(dup)
	ing.Flush()
	if err := ing.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Query(QuerySpec{Metric: MetricRTT}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"telemetry_ingest_accepted_total",
		"telemetry_ingest_processed_total",
		"telemetry_ingest_deduped_total",
		"telemetry_wal_appended_total",
		"telemetry_wal_fsyncs_total",
		"telemetry_wal_lag_records",
		"telemetry_shard_queue_depth",
		"telemetry_shard_rollup_windows",
		"telemetry_query_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}

	samples := reg.Snapshot()
	total := ing.TotalStats()
	var accepted, deduped, walAppended float64
	for _, s := range samples {
		switch s.Name {
		case "telemetry_ingest_accepted_total":
			accepted += s.Value
		case "telemetry_ingest_deduped_total":
			deduped += s.Value
		case "telemetry_wal_appended_total":
			walAppended += s.Value
		}
	}
	if uint64(accepted) != total.Accepted {
		t.Errorf("metrics accepted = %v, Stats = %d", accepted, total.Accepted)
	}
	if uint64(deduped) != total.Deduped || deduped == 0 {
		t.Errorf("metrics deduped = %v, Stats = %d (want nonzero)", deduped, total.Deduped)
	}
	if uint64(walAppended) != total.WALAppended {
		t.Errorf("metrics wal appended = %v, Stats = %d", walAppended, total.WALAppended)
	}
	if s, ok := obs.Find(samples, "telemetry_query_seconds_count"); !ok || s.Value != 1 {
		t.Errorf("query latency count = %+v ok=%v, want 1", s, ok)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShedCounterExposed covers the shedding counter: a full queue with a
// parked worker sheds low-priority traffic into telemetry_ingest_shed_total.
func TestShedCounterExposed(t *testing.T) {
	reg := obs.NewRegistry()
	ing := NewIngestor(Config{
		Shards:       1,
		QueueLen:     8,
		Metrics:      reg,
		ShedPriority: func(e Envelope) int { return map[string]int{MetricRTT: 1}[e.Metric] },
	})
	defer ing.Close()
	s := ing.shards[0]
	s.mu.Lock()
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	for i := 0; ; i++ {
		if !ing.Offer(Envelope{V: SchemaVersion, TS: base + int64(i), Metric: MetricRTT, Region: "Beijing", Net: "WiFi", Value: 1}) {
			break
		}
	}
	ing.Offer(Envelope{V: SchemaVersion, TS: base, Metric: MetricHops, Region: "Beijing", Net: "WiFi", Value: 1})
	s.mu.Unlock()
	if smp, ok := obs.Find(reg.Snapshot(), "telemetry_ingest_shed_total", "shard", "0"); !ok || smp.Value == 0 {
		t.Fatalf("shed counter = %+v ok=%v, want nonzero", smp, ok)
	}
}

// TestRetryClientStatsRaceFree is the -race pin for the Stats data race: a
// monitor goroutine polls Stats while SendAll retries against a flaky
// transport. Before the counters became atomics this was a write/read race
// on plain uint64 fields.
func TestRetryClientStatsRaceFree(t *testing.T) {
	reg := obs.NewRegistry()
	flip := false
	transport := func(Envelope) bool { flip = !flip; return flip }
	c := NewRetryClient(transport, rng.New(7).Fork("client-race"), RetryConfig{
		Sleep:   func(time.Duration) {},
		Metrics: reg,
	})
	base := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	events := make([]Envelope, 200)
	for i := range events {
		events[i] = Envelope{V: SchemaVersion, TS: base + int64(i), Metric: MetricRTT, Region: "Beijing", Net: "WiFi", User: 1, Value: 1}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = c.Stats()
				reg.Snapshot()
			}
		}
	}()
	if n := c.SendAll(events); n != len(events) {
		t.Fatalf("acknowledged %d of %d", n, len(events))
	}
	close(done)
	wg.Wait()
	st := c.Stats()
	if st.Sent != 200 || st.Retries == 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 200 sent, some retries, 0 failed", st)
	}
	if s, ok := obs.Find(reg.Snapshot(), "telemetry_client_retries_total"); !ok || uint64(s.Value) != st.Retries {
		t.Fatalf("registry retries = %+v ok=%v, stats %d", s, ok, st.Retries)
	}
	if s, ok := obs.Find(reg.Snapshot(), "telemetry_client_backoff_seconds_count"); !ok || uint64(s.Value) != st.Retries {
		t.Fatalf("backoff observations = %+v ok=%v, want %d", s, ok, st.Retries)
	}
}
