package telemetry

import (
	"fmt"
	"sort"
	"time"

	"edgescope/internal/stats"
)

// QuerySpec selects rollups and the statistics to compute over them.
// Metric is required; empty Region/Net match every value of that dimension.
// The range [From, To) is evaluated at window granularity: every rollup
// window overlapping it is merged whole (From aligns down to its window's
// start, To up to the next boundary), because events inside a window are
// already folded into one sketch and cannot be split. Zero bounds are open.
type QuerySpec struct {
	Metric string    `json:"metric"`
	Region string    `json:"region,omitempty"`
	Net    string    `json:"net,omitempty"`
	From   time.Time `json:"from,omitempty"`
	To     time.Time `json:"to,omitempty"`

	// Quantiles to evaluate, each in [0,1]. Defaults to p50/p95/p99.
	Quantiles []float64 `json:"quantiles,omitempty"`
	// CDFAt lists values at which to evaluate the empirical CDF estimate.
	CDFAt []float64 `json:"cdf_at,omitempty"`
}

// QuantileEstimate is one quantile answer with the sketch's documented
// worst-case rank error at that point (stats.Sketch.RankErrorBound).
type QuantileEstimate struct {
	Q         float64 `json:"q"`
	Value     float64 `json:"value"`
	RankError float64 `json:"rank_error"`
}

// CDFEstimate is one CDF evaluation.
type CDFEstimate struct {
	X float64 `json:"x"`
	P float64 `json:"p"`
}

// QueryResult is the merged answer over every rollup the spec matched.
type QueryResult struct {
	Count     float64            `json:"count"`
	Windows   int                `json:"windows"` // rollups merged
	Min       float64            `json:"min"`
	Max       float64            `json:"max"`
	Quantiles []QuantileEstimate `json:"quantiles"`
	CDF       []CDFEstimate      `json:"cdf,omitempty"`
}

// DefaultQuantiles are evaluated when a spec names none.
var DefaultQuantiles = []float64{0.5, 0.95, 0.99}

// Query merges every matching (window, key) sketch — across all shards and
// the requested window range — and evaluates the spec's statistics on the
// merged sketch. Merging is ordered (windows sorted by start time then key,
// shards visited in index order), so the answer is deterministic for a
// given rollup state. Ingestion may continue concurrently; each shard is
// locked only while its matching sketches are copied out.
func (ing *Ingestor) Query(spec QuerySpec) (QueryResult, error) {
	if spec.Metric == "" {
		return QueryResult{}, fmt.Errorf("telemetry: query needs a metric")
	}
	if ing.m != nil {
		began := time.Now()
		defer func() { ing.m.query.ObserveDuration(time.Since(began)) }()
	}
	qs := spec.Quantiles
	if len(qs) == 0 {
		qs = DefaultQuantiles
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			return QueryResult{}, fmt.Errorf("telemetry: quantile %v outside [0,1]", q)
		}
	}
	// Align the bounds to whole windows: a window is selected iff it
	// overlaps [From, To), matching the spec's documented granularity.
	var fromMs, toMs int64
	if !spec.From.IsZero() {
		fromMs = ing.windowStart(spec.From.UnixMilli())
	}
	if spec.To.IsZero() {
		toMs = int64(1) << 62
	} else {
		w := ing.cfg.Window.Milliseconds()
		toMs = ing.windowStart(spec.To.UnixMilli()-1) + w
	}

	// Collect matching sketches under each shard's lock, then merge outside
	// the locks in a deterministic order. The lock is held for the rollup
	// scan plus a centroid memcpy per match (a few KB each) — that stalls
	// the shard's writer for the scan's duration, the price of a
	// consistent snapshot without epoch machinery; MaxWindows bounds the
	// scan length.
	type match struct {
		wk windowKey
		sk *stats.Sketch
	}
	var matches []match
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk, sk := range s.windows {
			if wk.Metric != spec.Metric {
				continue
			}
			if spec.Region != "" && wk.Region != spec.Region {
				continue
			}
			if spec.Net != "" && wk.Net != spec.Net {
				continue
			}
			if wk.Start < fromMs || wk.Start >= toMs {
				continue
			}
			matches = append(matches, match{wk, sk.Clone()})
		}
		s.mu.Unlock()
	}
	sort.Slice(matches, func(i, j int) bool {
		a, b := matches[i].wk, matches[j].wk
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Net < b.Net
	})

	// Absorb defers compaction so merging W windows costs one merge pass
	// per ~8δ absorbed centroids, not one sort per window.
	merged := stats.NewSketch(ing.cfg.Compression)
	for _, m := range matches {
		merged.Absorb(m.sk)
	}
	res := QueryResult{
		Count:   merged.Count(),
		Windows: len(matches),
	}
	if merged.Count() > 0 {
		res.Min, res.Max = merged.Min(), merged.Max()
	}
	for _, q := range qs {
		res.Quantiles = append(res.Quantiles, QuantileEstimate{
			Q:         q,
			Value:     merged.Quantile(q),
			RankError: merged.RankErrorBound(q),
		})
	}
	for _, x := range spec.CDFAt {
		res.CDF = append(res.CDF, CDFEstimate{X: x, P: merged.CDFAt(x)})
	}
	return res, nil
}

// Keys lists every distinct dimension tuple with at least one rollup,
// sorted, with its total event count — the pipeline's "what can I query"
// introspection.
func (ing *Ingestor) Keys() []KeyCount {
	acc := map[Key]float64{}
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk, sk := range s.windows {
			acc[wk.Key] += sk.Count()
		}
		s.mu.Unlock()
	}
	out := make([]KeyCount, 0, len(acc))
	for k, n := range acc {
		out = append(out, KeyCount{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Net < b.Net
	})
	return out
}

// KeyCount pairs a dimension tuple with its accumulated event count.
type KeyCount struct {
	Key   Key     `json:"key"`
	Count float64 `json:"count"`
}

// WindowRange reports the earliest window start and the end of the latest
// window across all rollups (zero times when empty) — useful for building
// full-range queries.
func (ing *Ingestor) WindowRange() (from, to time.Time) {
	var lo, hi int64
	first := true
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk := range s.windows {
			if first || wk.Start < lo {
				lo = wk.Start
			}
			if first || wk.Start > hi {
				hi = wk.Start
			}
			first = false
		}
		s.mu.Unlock()
	}
	if first {
		return time.Time{}, time.Time{}
	}
	return time.UnixMilli(lo), time.UnixMilli(hi + ing.cfg.Window.Milliseconds())
}
