package telemetry

import (
	"fmt"
	"sort"
	"time"

	"edgescope/internal/stats"
)

// QuerySpec selects rollups and the statistics to compute over them.
// Metric is required; empty Region/Net match every value of that dimension.
// The range [From, To) is evaluated at window granularity: every rollup
// window overlapping it is merged whole (From aligns down to its window's
// start, To up to the next boundary), because events inside a window are
// already folded into one sketch and cannot be split. Zero bounds are open.
type QuerySpec struct {
	Metric string    `json:"metric"`
	Region string    `json:"region,omitempty"`
	Net    string    `json:"net,omitempty"`
	From   time.Time `json:"from,omitempty"`
	To     time.Time `json:"to,omitempty"`

	// Quantiles to evaluate, each in [0,1]. Defaults to p50/p95/p99.
	Quantiles []float64 `json:"quantiles,omitempty"`
	// CDFAt lists values at which to evaluate the empirical CDF estimate.
	CDFAt []float64 `json:"cdf_at,omitempty"`
}

// QuantileEstimate is one quantile answer with the sketch's documented
// worst-case rank error at that point (stats.Sketch.RankErrorBound).
type QuantileEstimate struct {
	Q         float64 `json:"q"`
	Value     float64 `json:"value"`
	RankError float64 `json:"rank_error"`
}

// CDFEstimate is one CDF evaluation.
type CDFEstimate struct {
	X float64 `json:"x"`
	P float64 `json:"p"`
}

// QueryResult is the merged answer over every rollup the spec matched.
type QueryResult struct {
	Count     float64            `json:"count"`
	Windows   int                `json:"windows"` // rollups merged
	Min       float64            `json:"min"`
	Max       float64            `json:"max"`
	Quantiles []QuantileEstimate `json:"quantiles"`
	CDF       []CDFEstimate      `json:"cdf,omitempty"`
}

// DefaultQuantiles are evaluated when a spec names none.
var DefaultQuantiles = []float64{0.5, 0.95, 0.99}

// checkedQuantiles validates the spec's quantiles, substituting
// DefaultQuantiles for an empty list — one shared gate so the single-node
// query and the cluster front-end reject exactly the same specs.
func checkedQuantiles(spec QuerySpec) ([]float64, error) {
	qs := spec.Quantiles
	if len(qs) == 0 {
		qs = DefaultQuantiles
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("telemetry: quantile %v outside [0,1]", q)
		}
	}
	return qs, nil
}

// ValidateQuerySpec applies the validation every query path shares —
// metric required, quantiles in [0,1] — without touching any rollup state.
// The cluster front-end runs it before fanning a spec out, so a bad spec
// fails fast at the front door with the same error a node would return,
// instead of being mistaken for an unreachable cluster.
func ValidateQuerySpec(spec QuerySpec) error {
	if spec.Metric == "" {
		return fmt.Errorf("telemetry: query needs a metric")
	}
	_, err := checkedQuantiles(spec)
	return err
}

// sketchMatch is one matching (window, key) rollup pulled out of a shard.
type sketchMatch struct {
	wk windowKey
	sk *stats.Sketch
}

// sortMatches orders matches by (start, region, net) — a total order,
// because a query's matches share one metric and a (window, key) rollup
// exists exactly once. Every consumer that merges matches MUST use this
// order: it is what makes single-node answers, recovered-node answers and
// the cluster front-end's scatter-gather merge byte-identical.
func sortMatches(matches []sketchMatch) {
	sort.Slice(matches, func(i, j int) bool {
		a, b := matches[i].wk, matches[j].wk
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Net < b.Net
	})
}

// collectMatches clones every (window, key) sketch the spec selects, sorted
// by sortMatches. Each shard is locked only while its rollups are scanned
// and the matching sketches copied out — a few KB memcpy per match, the
// price of a consistent cut without epoch machinery; MaxWindows bounds the
// scan length.
func (ing *Ingestor) collectMatches(spec QuerySpec) ([]sketchMatch, error) {
	if spec.Metric == "" {
		return nil, fmt.Errorf("telemetry: query needs a metric")
	}
	// Align the bounds to whole windows: a window is selected iff it
	// overlaps [From, To), matching the spec's documented granularity.
	var fromMs, toMs int64
	if !spec.From.IsZero() {
		fromMs = ing.windowStart(spec.From.UnixMilli())
	}
	if spec.To.IsZero() {
		toMs = int64(1) << 62
	} else {
		w := ing.cfg.Window.Milliseconds()
		toMs = ing.windowStart(spec.To.UnixMilli()-1) + w
	}
	var matches []sketchMatch
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk, sk := range s.windows {
			if wk.Metric != spec.Metric {
				continue
			}
			if spec.Region != "" && wk.Region != spec.Region {
				continue
			}
			if spec.Net != "" && wk.Net != spec.Net {
				continue
			}
			if wk.Start < fromMs || wk.Start >= toMs {
				continue
			}
			matches = append(matches, sketchMatch{wk, sk.Clone()})
		}
		s.mu.Unlock()
	}
	sortMatches(matches)
	return matches, nil
}

// evaluateMatches merges already-sorted matches into one sketch and
// evaluates the requested statistics. This is THE merge+evaluate path: the
// single-node query and the cluster scatter-gather both end here, with the
// same compression and the same absorb order, which is why their answers
// are byte-identical over the same rollups.
func evaluateMatches(matches []sketchMatch, qs, cdfAt []float64, compression float64) QueryResult {
	// Absorb defers compaction so merging W windows costs one merge pass
	// per ~8δ absorbed centroids, not one sort per window.
	merged := stats.NewSketch(compression)
	for _, m := range matches {
		merged.Absorb(m.sk)
	}
	res := QueryResult{
		Count:   merged.Count(),
		Windows: len(matches),
	}
	if merged.Count() > 0 {
		res.Min, res.Max = merged.Min(), merged.Max()
	}
	for _, q := range qs {
		res.Quantiles = append(res.Quantiles, QuantileEstimate{
			Q:         q,
			Value:     merged.Quantile(q),
			RankError: merged.RankErrorBound(q),
		})
	}
	for _, x := range cdfAt {
		res.CDF = append(res.CDF, CDFEstimate{X: x, P: merged.CDFAt(x)})
	}
	return res
}

// Query merges every matching (window, key) sketch — across all shards and
// the requested window range — and evaluates the spec's statistics on the
// merged sketch. Merging is ordered (windows sorted by start time then key,
// shards visited in index order), so the answer is deterministic for a
// given rollup state. Ingestion may continue concurrently; each shard is
// locked only while its matching sketches are copied out.
func (ing *Ingestor) Query(spec QuerySpec) (QueryResult, error) {
	if ing.m != nil {
		began := time.Now()
		defer func() { ing.m.query.ObserveDuration(time.Since(began)) }()
	}
	qs, err := checkedQuantiles(spec)
	if err != nil {
		return QueryResult{}, err
	}
	matches, err := ing.collectMatches(spec)
	if err != nil {
		return QueryResult{}, err
	}
	return evaluateMatches(matches, qs, spec.CDFAt, ing.cfg.Compression), nil
}

// WindowSketch is one matching (window, key) rollup in wire form: the
// window start, the key's free dimensions (the metric is the query's, so it
// is carried on the page, not per match) and the sketch's exact binary
// state (stats.Sketch.MarshalBinary — JSON encodes it as base64). Because
// the codec round-trips bit-for-bit, a front-end merging decoded
// WindowSketches computes exactly what the node itself would.
type WindowSketch struct {
	Start  int64  `json:"start"`
	Region string `json:"region"`
	Net    string `json:"net"`
	Sketch []byte `json:"sketch"`
}

// SketchPage is one node's answer to a sketch-collection request: every
// rollup the spec matched, in the canonical (start, region, net) order,
// plus the parameters a merger must agree on. It is the scatter half of the
// cluster's scatter-gather query (cluster.Frontend gathers and merges).
type SketchPage struct {
	Metric      string         `json:"metric"`
	Compression float64        `json:"compression"`
	WindowMs    int64          `json:"window_ms"`
	Matches     []WindowSketch `json:"matches"`
}

// MatchSketches collects the spec's matching rollups in wire form. The spec
// is validated exactly as Query validates it (so a front-end fanning out a
// bad spec fails fast at every node the same way), but only the selection
// fields matter — quantiles/CDF points are evaluated by whoever merges.
func (ing *Ingestor) MatchSketches(spec QuerySpec) (SketchPage, error) {
	if _, err := checkedQuantiles(spec); err != nil {
		return SketchPage{}, err
	}
	matches, err := ing.collectMatches(spec)
	if err != nil {
		return SketchPage{}, err
	}
	page := SketchPage{
		Metric:      spec.Metric,
		Compression: ing.cfg.Compression,
		WindowMs:    ing.cfg.Window.Milliseconds(),
		Matches:     make([]WindowSketch, 0, len(matches)),
	}
	var buf []byte
	for _, m := range matches {
		buf, _ = m.sk.AppendBinary(buf[:0]) // encoding a live sketch cannot fail
		page.Matches = append(page.Matches, WindowSketch{
			Start:  m.wk.Start,
			Region: m.wk.Region,
			Net:    m.wk.Net,
			Sketch: append([]byte(nil), buf...),
		})
	}
	return page, nil
}

// MergeSketchPages merges the pages of a scatter-gather fan-out and
// evaluates the spec on the merged sketch — the gather half of a cluster
// query. All pages must agree on metric, compression and window length (a
// cluster must be homogeneously configured; a mismatch is a deployment
// error, reported loudly). Matches are ordered by the same (start, region,
// net) comparator the single-node query uses, with the page index breaking
// the (cross-node duplicate) ties replica failover can create, so the merge
// is deterministic — and, when every (window, key) lives on exactly one
// node, byte-identical to a single node that ingested the whole stream.
func MergeSketchPages(spec QuerySpec, pages []SketchPage) (QueryResult, error) {
	qs, err := checkedQuantiles(spec)
	if err != nil {
		return QueryResult{}, err
	}
	type pageMatch struct {
		sketchMatch
		page int
	}
	var (
		all         []pageMatch
		compression float64
		windowMs    int64
	)
	for i, p := range pages {
		if i == 0 {
			compression, windowMs = p.Compression, p.WindowMs
		} else if p.Compression != compression || p.WindowMs != windowMs {
			return QueryResult{}, fmt.Errorf(
				"telemetry: heterogeneous cluster pages: compression %v/window %dms vs %v/%dms",
				compression, windowMs, p.Compression, p.WindowMs)
		}
		if p.Metric != spec.Metric {
			return QueryResult{}, fmt.Errorf("telemetry: page metric %q, want %q", p.Metric, spec.Metric)
		}
		for _, m := range p.Matches {
			sk := new(stats.Sketch)
			if err := sk.UnmarshalBinary(m.Sketch); err != nil {
				return QueryResult{}, fmt.Errorf("telemetry: page %d sketch (start=%d %s/%s): %w",
					i, m.Start, m.Region, m.Net, err)
			}
			all = append(all, pageMatch{
				sketchMatch: sketchMatch{
					wk: windowKey{Start: m.Start, Key: Key{Metric: p.Metric, Region: m.Region, Net: m.Net}},
					sk: sk,
				},
				page: i,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].wk, all[j].wk
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return all[i].page < all[j].page
	})
	matches := make([]sketchMatch, len(all))
	for i, m := range all {
		matches[i] = m.sketchMatch
	}
	if compression == 0 {
		compression = stats.DefaultCompression
	}
	return evaluateMatches(matches, qs, spec.CDFAt, compression), nil
}

// Keys lists every distinct dimension tuple with at least one rollup,
// sorted, with its total event count — the pipeline's "what can I query"
// introspection.
func (ing *Ingestor) Keys() []KeyCount {
	acc := map[Key]float64{}
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk, sk := range s.windows {
			acc[wk.Key] += sk.Count()
		}
		s.mu.Unlock()
	}
	out := make([]KeyCount, 0, len(acc))
	for k, n := range acc {
		out = append(out, KeyCount{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Net < b.Net
	})
	return out
}

// KeyCount pairs a dimension tuple with its accumulated event count.
type KeyCount struct {
	Key   Key     `json:"key"`
	Count float64 `json:"count"`
}

// WindowRange reports the earliest window start and the end of the latest
// window across all rollups (zero times when empty) — useful for building
// full-range queries.
func (ing *Ingestor) WindowRange() (from, to time.Time) {
	var lo, hi int64
	first := true
	for _, s := range ing.shards {
		s.mu.Lock()
		for wk := range s.windows {
			if first || wk.Start < lo {
				lo = wk.Start
			}
			if first || wk.Start > hi {
				hi = wk.Start
			}
			first = false
		}
		s.mu.Unlock()
	}
	if first {
		return time.Time{}, time.Time{}
	}
	return time.UnixMilli(lo), time.UnixMilli(hi + ing.cfg.Window.Milliseconds())
}
