package telemetry

// Idempotent-ingest state. A retrying client cannot distinguish "my send
// was lost" from "my send landed but the ack was lost", so retries may
// deliver the same event twice; the fault plan's duplicate injection does
// the same on purpose. The shard therefore folds each sequenced envelope at
// most once, keyed by (rollup Key, source user, sequence number), and the
// WAL records only the folded (first) copy, so recovery rebuilds exactly
// this dedup state by replaying it.

// dedupKey scopes sequence numbers: each source user numbers its envelopes
// independently per rollup key, so distinct sources sharing a dimension
// tuple never collide.
type dedupKey struct {
	Key
	User int
}

// maxTrackerSparse caps one tracker's out-of-order window. The designed
// workload is duplicates plus the fault plan's bounded reordering (spans of
// 4–32 events), so a sparse set orders of magnitude wider than any real
// reorder depth marks a permanent gap — an abandoned send whose sequence
// will never arrive. Past the cap the tracker advances its floor over the
// oldest gap (deterministically, smallest entry first), trading "a very late
// straggler from before the gap could be folded twice" for bounded memory —
// without the cap a single gap pins every later sparse entry forever.
const maxTrackerSparse = 1024

// seqTracker records which sequence numbers of one (key, user) stream have
// been folded. It is a receive-window: floor covers the contiguous prefix
// [1..floor] and sparse holds the out-of-order arrivals above it, so memory
// stays O(reorder depth) for a mostly-in-order stream — duplicates and the
// fault plan's bounded reordering, not arbitrary gaps, are the workload.
type seqTracker struct {
	floor  uint64
	sparse map[uint64]struct{}
	// last is the window start (Unix ms) of the stream's most recent folded
	// event — the retention clock that ages idle trackers out alongside
	// window eviction (ingest.go enforceRetention). Only folds advance it:
	// duplicates are not WAL-logged, and recovery replay must rebuild the
	// identical tracker state from folds alone.
	last int64
}

// seen reports whether seq was already recorded, recording it when new, and
// whether recording it forced a sparse-window compaction (a permanent gap
// written off — the event ingest counts per shard).
func (t *seqTracker) seen(seq uint64) (dup, compacted bool) {
	if seq <= t.floor {
		return true, false
	}
	if _, ok := t.sparse[seq]; ok {
		return true, false
	}
	if seq == t.floor+1 {
		t.floor++
		// Compact: fold any sparse entries that are now contiguous.
		for len(t.sparse) > 0 {
			if _, ok := t.sparse[t.floor+1]; !ok {
				break
			}
			delete(t.sparse, t.floor+1)
			t.floor++
		}
		return false, false
	}
	if t.sparse == nil {
		t.sparse = make(map[uint64]struct{})
	}
	t.sparse[seq] = struct{}{}
	if len(t.sparse) > maxTrackerSparse {
		t.compact()
		return false, true
	}
	return false, false
}

// compact bounds the sparse set by advancing the floor over the oldest gap:
// the smallest sparse entry becomes the new floor (its gap below is written
// off as seen), then any now-contiguous run folds in. Deterministic — always
// the minimum, never map order — so live ingest and WAL replay converge on
// identical tracker state.
func (t *seqTracker) compact() {
	for len(t.sparse) > maxTrackerSparse {
		min := uint64(0)
		first := true
		for seq := range t.sparse {
			if first || seq < min {
				min = seq
			}
			first = false
		}
		t.floor = min
		delete(t.sparse, min)
		for {
			if _, ok := t.sparse[t.floor+1]; !ok {
				break
			}
			t.floor++
			delete(t.sparse, t.floor)
		}
	}
}
