package telemetry

// Idempotent-ingest state. A retrying client cannot distinguish "my send
// was lost" from "my send landed but the ack was lost", so retries may
// deliver the same event twice; the fault plan's duplicate injection does
// the same on purpose. The shard therefore folds each sequenced envelope at
// most once, keyed by (rollup Key, source user, sequence number), and the
// WAL records only the folded (first) copy, so recovery rebuilds exactly
// this dedup state by replaying it.

// dedupKey scopes sequence numbers: each source user numbers its envelopes
// independently per rollup key, so distinct sources sharing a dimension
// tuple never collide.
type dedupKey struct {
	Key
	User int
}

// seqTracker records which sequence numbers of one (key, user) stream have
// been folded. It is a receive-window: floor covers the contiguous prefix
// [1..floor] and sparse holds the out-of-order arrivals above it, so memory
// stays O(reorder depth) for a mostly-in-order stream — duplicates and the
// fault plan's bounded reordering, not arbitrary gaps, are the workload.
type seqTracker struct {
	floor  uint64
	sparse map[uint64]struct{}
}

// seen reports whether seq was already recorded, recording it when new.
func (t *seqTracker) seen(seq uint64) bool {
	if seq <= t.floor {
		return true
	}
	if _, ok := t.sparse[seq]; ok {
		return true
	}
	if seq == t.floor+1 {
		t.floor++
		// Compact: fold any sparse entries that are now contiguous.
		for len(t.sparse) > 0 {
			if _, ok := t.sparse[t.floor+1]; !ok {
				break
			}
			delete(t.sparse, t.floor+1)
			t.floor++
		}
		return false
	}
	if t.sparse == nil {
		t.sparse = make(map[uint64]struct{})
	}
	t.sparse[seq] = struct{}{}
	return false
}
