package telemetry

import (
	"bytes"
	"testing"
)

// FuzzEnvelopeDecode guards the JSONL decoder against malformed input: no
// panic on any byte sequence, and every accepted envelope must satisfy its
// own validation contract and re-encode/re-decode to itself.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add([]byte(`{"v":1,"ts":1633046400000,"kind":"ping","metric":"rtt_ms","user":7,"region":"Beijing","net":"WiFi","target":"nearest-edge","value":12.25}`))
	f.Add([]byte(`{"v":1,"ts":1,"metric":"m","value":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":99,"ts":1,"metric":"m","value":1}`))
	f.Add([]byte(`{"v":1,"ts":-1,"metric":"m","value":1}`))
	f.Add([]byte(`{"v":1,"ts":1,"metric":"","value":1}`))
	f.Add([]byte(`{"v":1,"ts":1,"metric":"m","value":1e309}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"v\":1,\"ts\":1,\"metric\":\"é\",\"value\":1}"))
	f.Fuzz(func(t *testing.T, line []byte) {
		e, err := DecodeLine(line)
		if err != nil {
			return
		}
		// Accepted envelopes uphold the validation contract...
		if verr := e.Validate(); verr != nil {
			t.Fatalf("decoded envelope fails Validate: %v (%+v)", verr, e)
		}
		// ...and survive an encode/decode round trip unchanged.
		out, err := AppendJSONL(nil, e)
		if err != nil {
			t.Fatalf("re-encode failed: %v (%+v)", err, e)
		}
		back, err := DecodeLine(bytes.TrimSuffix(out, []byte("\n")))
		if err != nil {
			t.Fatalf("re-decode failed: %v (%s)", err, out)
		}
		if back != e {
			t.Fatalf("round trip changed envelope:\n in: %+v\nout: %+v", e, back)
		}
	})
}
