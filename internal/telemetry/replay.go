package telemetry

import (
	"time"

	"edgescope/internal/crowd"
	"edgescope/internal/rng"
)

// Replay turns the paper's deterministic batch campaign into the streaming
// pipeline's input: each crowd observation becomes one Envelope with a
// synthetic, deterministic timestamp, and the stream is offered to an
// Ingestor in order from a single producer. With a Block-configured
// ingestor and a fixed shard count the whole pipeline is then deterministic
// end to end: each shard's queue receives its events in producer order, so
// every (window, key) sketch — and every query answer — is identical across
// runs, which is what lets tests pin streaming percentiles against the
// batch stats.Summary.

// Metric and kind names used by the replay emitters.
const (
	MetricRTT  = "rtt_ms"
	MetricHops = "hop_count"
	MetricTput = "tput_mbps"
	KindPing   = "ping"
	KindIperf  = "iperf"
)

// ReplayOptions shape the synthetic event-time axis.
type ReplayOptions struct {
	// Base is the first event's timestamp. Defaults to 2021-10-01T00:00:00Z
	// (the paper's measurement era); any fixed instant keeps replay
	// deterministic.
	Base time.Time
	// Spacing is the event-time gap between consecutive observations,
	// spreading the campaign over multiple rollup windows. Default 250ms.
	Spacing time.Duration
}

func (o *ReplayOptions) fill() {
	if o.Base.IsZero() {
		o.Base = time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC)
	}
	if o.Spacing <= 0 {
		o.Spacing = 250 * time.Millisecond
	}
}

// latencyEnvelopes converts the i-th latency observation into its ping
// envelopes: the user's median RTT (MetricRTT) and hop count (MetricHops),
// dimensioned by the probed site's metro and the user's access network.
func latencyEnvelopes(o crowd.Observation, i int, opts ReplayOptions) [2]Envelope {
	ts := opts.Base.Add(time.Duration(i) * opts.Spacing).UnixMilli()
	return [2]Envelope{
		{
			V: SchemaVersion, TS: ts, Kind: KindPing, Metric: MetricRTT,
			User: o.UserID, Region: o.SiteMetro, Net: o.Access.String(),
			Target: o.Target.String(), Value: o.MedianRTTMs,
		},
		{
			V: SchemaVersion, TS: ts, Kind: KindPing, Metric: MetricHops,
			User: o.UserID, Region: o.SiteMetro, Net: o.Access.String(),
			Target: o.Target.String(), Value: float64(o.HopCount),
		},
	}
}

// LatencyEvents converts already-materialised latency observations into
// ping envelopes — the batch-side bridge used where the observation set
// already exists as a substrate (the ext-telemetry cross-check artifact).
// For event-at-a-time replay without materialising the campaign, use
// ReplayCampaignLatency.
func LatencyEvents(obs []crowd.Observation, opts ReplayOptions) []Envelope {
	opts.fill()
	out := make([]Envelope, 0, 2*len(obs))
	for i, o := range obs {
		es := latencyEnvelopes(o, i, opts)
		out = append(out, es[0], es[1])
	}
	return out
}

// ReplayCampaignLatency drives the campaign's crowd.StreamLatency emission
// hook straight into the ingestor: each observation is measured, converted
// and offered one at a time, so the full campaign is never held in memory.
// The hook's randomness contract makes this produce exactly the envelopes
// LatencyEvents(campaign.RunLatency(r)) would, pinned by test.
func ReplayCampaignLatency(ing *Ingestor, c *crowd.Campaign, r *rng.Source, opts ReplayOptions) ReplayStats {
	st := ReplayCampaignLatencyFunc(ing.Offer, c, r, opts)
	ing.Flush()
	return st
}

// ReplayCampaignLatencyFunc is ReplayCampaignLatency over any send function
// — a cluster router, an HTTP sender, a fault injector — instead of a local
// ingestor. The emission order and envelope bytes are identical; only the
// delivery path changes, so a clustered replay feeds every node exactly the
// stream a single process would have folded. The caller owns whatever flush
// or drain its transport needs.
func ReplayCampaignLatencyFunc(send func(Envelope) bool, c *crowd.Campaign, r *rng.Source, opts ReplayOptions) ReplayStats {
	opts.fill()
	var st ReplayStats
	i := 0
	c.StreamLatency(r, func(o crowd.Observation) {
		for _, e := range latencyEnvelopes(o, i, opts) {
			st.Events++
			if send(e) {
				st.Accepted++
			} else {
				st.Dropped++
			}
		}
		i++
	})
	return st
}

// ThroughputEvents converts iperf observations into envelopes. Throughput
// observations carry no site metro, so the region dimension is the
// direction label — still a stable, queryable partition.
func ThroughputEvents(obs []crowd.ThroughputObs, opts ReplayOptions) []Envelope {
	opts.fill()
	out := make([]Envelope, 0, len(obs))
	for i, o := range obs {
		out = append(out, Envelope{
			V: SchemaVersion, TS: opts.Base.Add(time.Duration(i) * opts.Spacing).UnixMilli(),
			Kind: KindIperf, Metric: MetricTput,
			User: o.UserID, Region: o.Dir.String(), Net: o.Access.String(),
			Value: o.Mbps,
		})
	}
	return out
}

// ReplayStats reports one replay pass.
type ReplayStats struct {
	Events   int `json:"events"`
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
}

// Replay offers events to the ingestor in order from this goroutine and
// flushes, so rollups are fully settled on return. With a Block ingestor
// nothing is dropped and the resulting rollup state is deterministic for a
// fixed event stream and shard count.
func Replay(ing *Ingestor, events []Envelope) ReplayStats {
	st := ReplayFunc(ing.Offer, events)
	ing.Flush()
	return st
}

// ReplayFunc offers events in order to any send function — the transport-
// agnostic sibling of Replay. The caller owns its transport's flush.
func ReplayFunc(send func(Envelope) bool, events []Envelope) ReplayStats {
	st := ReplayStats{Events: len(events)}
	for _, e := range events {
		if send(e) {
			st.Accepted++
		} else {
			st.Dropped++
		}
	}
	return st
}
