package telemetry

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"edgescope/internal/rng"
)

// flakyServer is an /ingest endpoint with scriptable misbehaviour: it
// answers the first `failures` requests according to `mode`, then behaves.
type flakyServer struct {
	t        *testing.T
	mode     string // "5xx", "reset", "slow"
	failures int32  // remaining misbehaving requests
	requests int32  // total requests seen
	accepted int32  // envelopes actually acknowledged
	delay    time.Duration
	srv      *httptest.Server
}

func newFlakyServer(t *testing.T, mode string, failures int) *flakyServer {
	t.Helper()
	f := &flakyServer{t: t, mode: mode, failures: int32(failures), delay: 200 * time.Millisecond}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&f.requests, 1)
		if atomic.AddInt32(&f.failures, -1) >= 0 {
			switch f.mode {
			case "5xx":
				http.Error(w, "try later", http.StatusServiceUnavailable)
			case "reset":
				// Kill the TCP connection mid-request: the client sees a
				// transport error, not an HTTP status.
				hj, ok := w.(http.Hijacker)
				if !ok {
					f.t.Error("response writer cannot hijack")
					return
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					f.t.Errorf("hijack: %v", err)
					return
				}
				conn.Close()
			case "slow":
				// Outlast the client's timeout, then answer into the void.
				time.Sleep(f.delay)
				w.WriteHeader(http.StatusOK)
				w.Write([]byte(`{"accepted":1}`))
			}
			return
		}
		atomic.AddInt32(&f.accepted, 1)
		w.Write([]byte(`{"accepted":1}`))
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func flakyClient(f *flakyServer, httpClient *http.Client, maxAttempts int) *RetryClient {
	return NewRetryClient(HTTPSender(httpClient, f.srv.URL+"/ingest"), rng.New(11), RetryConfig{
		MaxAttempts: maxAttempts,
		Sleep:       func(time.Duration) {},
	})
}

// TestHTTPSenderSurvives5xxBurst: a burst of 503s is retried through and
// the envelope lands exactly once, with the stats counting every attempt.
func TestHTTPSenderSurvives5xxBurst(t *testing.T) {
	f := newFlakyServer(t, "5xx", 4)
	c := flakyClient(f, nil, 8)
	if !c.Send(ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 12)) {
		t.Fatal("send failed despite the burst ending")
	}
	if got := atomic.LoadInt32(&f.accepted); got != 1 {
		t.Fatalf("server accepted %d envelopes, want 1", got)
	}
	if got := atomic.LoadInt32(&f.requests); got != 5 {
		t.Fatalf("server saw %d requests, want 5 (4 refused + 1 accepted)", got)
	}
	st := c.Stats()
	if st.Sent != 1 || st.Retries != 4 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want sent=1 retries=4 failed=0", st)
	}
}

// TestHTTPSenderSurvivesConnectionResets: a transport that kills the TCP
// connection is indistinguishable from loss — retried, not fatal.
func TestHTTPSenderSurvivesConnectionResets(t *testing.T) {
	f := newFlakyServer(t, "reset", 3)
	c := flakyClient(f, nil, 8)
	if !c.Send(ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 12)) {
		t.Fatal("send failed despite resets ending")
	}
	st := c.Stats()
	if st.Retries != 3 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want retries=3 failed=0", st)
	}
	if got := atomic.LoadInt32(&f.accepted); got != 1 {
		t.Fatalf("server accepted %d envelopes, want 1", got)
	}
}

// TestHTTPSenderSurvivesSlowResponses: answers slower than the client
// timeout count as failures and are retried; delivery converges once the
// server speeds up. The slow phase may or may not land server-side (the
// response died, not necessarily the request) — the sequence number makes
// the retry idempotent, so dedup-aware ingest never double-counts. Here we
// only pin the client-side contract: bounded retries, eventual ack.
func TestHTTPSenderSurvivesSlowResponses(t *testing.T) {
	f := newFlakyServer(t, "slow", 2)
	hc := &http.Client{Timeout: 30 * time.Millisecond}
	c := flakyClient(f, hc, 8)
	if !c.Send(ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 12)) {
		t.Fatal("send failed despite server recovering")
	}
	st := c.Stats()
	if st.Retries != 2 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want retries=2 failed=0", st)
	}
}

// TestHTTPSenderBoundedRetries: a server that never recovers costs exactly
// MaxAttempts requests, then a clean failure — no unbounded hammering.
func TestHTTPSenderBoundedRetries(t *testing.T) {
	f := newFlakyServer(t, "5xx", 1<<30)
	c := flakyClient(f, nil, 5)
	if c.Send(ev(time.Now().UnixMilli(), MetricRTT, "Beijing", "WiFi", 12)) {
		t.Fatal("send succeeded against an always-failing server")
	}
	if got := atomic.LoadInt32(&f.requests); got != 5 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=5", got)
	}
	st := c.Stats()
	if st.Sent != 1 || st.Retries != 4 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want sent=1 retries=4 failed=1", st)
	}
}

// TestHTTPSenderStatsAccurateAcrossBatch: ClientStats adds up exactly over
// a mixed batch — every envelope accounted as delivered or failed, with
// the server's view agreeing.
func TestHTTPSenderStatsAccurateAcrossBatch(t *testing.T) {
	f := newFlakyServer(t, "5xx", 7)
	c := flakyClient(f, nil, 3)
	events := make([]Envelope, 6)
	for i := range events {
		events[i] = ev(time.Now().UnixMilli()+int64(i), MetricRTT, "Beijing", "WiFi", float64(10+i))
	}
	delivered := c.SendAll(events)
	st := c.Stats()
	if st.Sent != 6 {
		t.Fatalf("sent = %d, want 6", st.Sent)
	}
	// 7 failing requests at <=3 attempts each: envelopes 0,1 exhaust (3+3),
	// envelope 2 eats the last 503 and lands on attempt 2, the rest sail.
	if delivered != 4 || st.Failed != 2 {
		t.Fatalf("delivered=%d failed=%d, want 4/2", delivered, st.Failed)
	}
	if st.Retries != 5 { // 2+2 exhausted retries, 1 for envelope 2
		t.Fatalf("retries = %d, want 5", st.Retries)
	}
	if got := atomic.LoadInt32(&f.accepted); got != 4 {
		t.Fatalf("server accepted %d, client says %d", got, delivered)
	}
	if got := atomic.LoadInt32(&f.requests); got != 7+4 {
		t.Fatalf("server saw %d requests, want 11", got)
	}
}
