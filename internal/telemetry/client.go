package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"edgescope/internal/obs"
	"edgescope/internal/rng"
)

// RetryConfig tunes a RetryClient. The zero value gets the documented
// defaults.
type RetryConfig struct {
	// MaxAttempts bounds sends per event, first try included. Default 8.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each later retry
	// doubles it up to MaxDelay. Default 5ms / 500ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep replaces time.Sleep, letting tests (and the chaos harness,
	// whose faults are event-counted, not timed) run backoff at full speed
	// with the delay sequence still computed — and still drawn from the
	// jitter stream — exactly as in production.
	Sleep func(time.Duration)
	// Metrics, when set, registers the client's instrument families there
	// (telemetry_client_*): sends, retries, failures, and the computed
	// backoff delay distribution. One client per registry.
	Metrics *obs.Registry
}

func (c *RetryConfig) fill() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 5 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 500 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
}

// ClientStats counts a RetryClient's work.
type ClientStats struct {
	Sent    uint64 `json:"sent"`    // events handed to Send
	Retries uint64 `json:"retries"` // extra attempts beyond the first
	Failed  uint64 `json:"failed"`  // events abandoned after MaxAttempts
}

// clientMetrics are the client's accounting cells. Always populated with
// obs.Counters (registered series when RetryConfig.Metrics is set, standalone
// otherwise) so Stats() reads atomics — safe to call while SendAll runs in
// the producer goroutine. backoff is nil without a registry.
type clientMetrics struct {
	sent    *obs.Counter
	retries *obs.Counter
	failed  *obs.Counter
	backoff *obs.Histogram
}

func newClientMetrics(reg *obs.Registry) clientMetrics {
	if reg == nil {
		return clientMetrics{sent: &obs.Counter{}, retries: &obs.Counter{}, failed: &obs.Counter{}}
	}
	return clientMetrics{
		sent:    reg.Counter("telemetry_client_sent_total", "events handed to Send"),
		retries: reg.Counter("telemetry_client_retries_total", "extra send attempts beyond the first"),
		failed:  reg.Counter("telemetry_client_failed_total", "events abandoned after MaxAttempts"),
		backoff: reg.Histogram("telemetry_client_backoff_seconds", "computed jittered backoff delay before each retry", walLatencyBuckets),
	}
}

// RetryClient is the loss-surviving ingest producer: it numbers each
// envelope with a per-(key, user) sequence and resends refused envelopes
// under bounded exponential backoff with jitter. Sequencing makes retries
// idempotent — a resend whose original actually landed is folded once, by
// the shard's (key, user, seq) dedup — so the client can safely treat every
// false from the transport as "maybe lost" and hammer until acknowledged.
//
// Sequences are assigned contiguously per (key, user) stream. That
// contiguity is load-bearing for the server's memory: the shard tracker
// keeps only a floor plus out-of-order arrivals above it, so a client that
// skipped numbers would pin sparse entries forever.
//
// OWNERSHIP CONTRACT: each (key, user) stream must be owned by exactly one
// client incarnation at a time. The server's trackers live for the process
// and are durably recovered (snapshot+WAL), but this client's cursors are
// in-memory only — a restarted or second producer reusing a stream would
// restart at Seq=1 and have its first events silently folded zero times
// (counted as Deduped server-side, with no error anywhere). A producer that
// restarts against the same durable server must carry its cursors forward:
// persist SeqState on shutdown (or periodically) and RestoreSeqState before
// the first Send — or take over under fresh User ids.
//
// A RetryClient is not safe for concurrent use; run one per producer
// goroutine (each with its own rng fork), like any rng.Source consumer.
type RetryClient struct {
	send func(Envelope) bool
	cfg  RetryConfig
	src  *rng.Source
	next map[dedupKey]uint64
	m    clientMetrics
}

// NewRetryClient wraps a transport — any "offer one envelope, true if
// acknowledged" function: Ingestor.Offer directly, an HTTP POST to
// /ingest (HTTPSender), or a fault injector standing in front of either.
// src drives retry jitter; it is drawn from only when a retry actually
// happens, so a fault-free run consumes no randomness.
func NewRetryClient(send func(Envelope) bool, src *rng.Source, cfg RetryConfig) *RetryClient {
	cfg.fill()
	return &RetryClient{send: send, cfg: cfg, src: src, next: map[dedupKey]uint64{}, m: newClientMetrics(cfg.Metrics)}
}

// Send delivers one envelope, retrying refusals, and reports whether it was
// ever acknowledged. An envelope with Seq == 0 is assigned the next
// sequence of its (key, user) stream; a pre-sequenced envelope (an
// application-level resend) keeps its number.
func (c *RetryClient) Send(e Envelope) bool {
	if e.Seq == 0 {
		k := dedupKey{Key: e.Key(), User: e.User}
		c.next[k]++
		e.Seq = c.next[k]
	}
	c.m.sent.Inc()
	if c.send(e) {
		return true
	}
	d := c.cfg.BaseDelay
	for attempt := 1; attempt < c.cfg.MaxAttempts; attempt++ {
		// Jittered backoff: uniform in [d/2, d). Decorrelates producers
		// that fail together without ever collapsing the delay to zero.
		delay := d/2 + time.Duration(c.src.Float64()*float64(d/2))
		c.m.backoff.ObserveDuration(delay)
		c.cfg.Sleep(delay)
		c.m.retries.Inc()
		if c.send(e) {
			return true
		}
		if d *= 2; d > c.cfg.MaxDelay {
			d = c.cfg.MaxDelay
		}
	}
	c.m.failed.Inc()
	return false
}

// SeqRecord is one (key, user) stream's persisted sequence cursor. LastSeq
// is the highest sequence the client has assigned to that stream; the next
// event gets LastSeq+1.
type SeqRecord struct {
	Metric  string `json:"metric"`
	Region  string `json:"region"`
	Net     string `json:"net"`
	User    int    `json:"user"`
	LastSeq uint64 `json:"last_seq"`
}

// SeqState exports the client's per-stream sequence cursors in a stable
// (sorted) order, ready to persist (e.g. as JSON) across client restarts.
// Restoring them into the next incarnation (RestoreSeqState) is what keeps
// a restarted producer's events from colliding with the server's durable
// dedup trackers — see the ownership contract on RetryClient.
func (c *RetryClient) SeqState() []SeqRecord {
	out := make([]SeqRecord, 0, len(c.next))
	for k, last := range c.next {
		out = append(out, SeqRecord{Metric: k.Metric, Region: k.Region, Net: k.Net, User: k.User, LastSeq: last})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.User < b.User
	})
	return out
}

// RestoreSeqState merges persisted cursors into the client, keeping the
// higher cursor where both sides know a stream. Call it before the first
// Send of a restarted producer; restoring afterwards could rewind a cursor
// the current incarnation already advanced past.
func (c *RetryClient) RestoreSeqState(recs []SeqRecord) {
	for _, r := range recs {
		k := dedupKey{Key: Key{Metric: r.Metric, Region: r.Region, Net: r.Net}, User: r.User}
		if r.LastSeq > c.next[k] {
			c.next[k] = r.LastSeq
		}
	}
}

// SendAll delivers a batch, returning how many were acknowledged.
func (c *RetryClient) SendAll(events []Envelope) int {
	n := 0
	for _, e := range events {
		if c.Send(e) {
			n++
		}
	}
	return n
}

// Stats snapshots the client's counters. Unlike the client itself, Stats is
// safe to call from another goroutine while a Send is in flight: the
// counters are atomics, so a monitor can poll mid-batch without a race.
func (c *RetryClient) Stats() ClientStats {
	return ClientStats{
		Sent:    c.m.sent.Value(),
		Retries: c.m.retries.Value(),
		Failed:  c.m.failed.Value(),
	}
}

// HTTPSender adapts telemetryd's POST /ingest endpoint to the RetryClient
// transport shape: one envelope per request, acknowledged only when the
// daemon reports it accepted — an HTTP error, a transport error, or a
// "decoded but dropped" response all return false and so get retried.
// client == nil uses http.DefaultClient.
func HTTPSender(client *http.Client, url string) func(Envelope) bool {
	if client == nil {
		client = http.DefaultClient
	}
	var buf []byte
	return func(e Envelope) bool {
		var err error
		if buf, err = AppendJSONL(buf[:0], e); err != nil {
			return false
		}
		resp, err := client.Post(url, "application/jsonl", bytes.NewReader(buf))
		if err != nil {
			return false
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		var body struct {
			Accepted int `json:"accepted"`
		}
		if err := decodeJSONBody(resp.Body, &body); err != nil {
			return false
		}
		return body.Accepted == 1
	}
}

// decodeJSONBody reads and decodes one JSON response body.
func decodeJSONBody(r io.Reader, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("telemetry: bad ingest response: %w", err)
	}
	return nil
}
