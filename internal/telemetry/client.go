package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"edgescope/internal/rng"
)

// RetryConfig tunes a RetryClient. The zero value gets the documented
// defaults.
type RetryConfig struct {
	// MaxAttempts bounds sends per event, first try included. Default 8.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each later retry
	// doubles it up to MaxDelay. Default 5ms / 500ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep replaces time.Sleep, letting tests (and the chaos harness,
	// whose faults are event-counted, not timed) run backoff at full speed
	// with the delay sequence still computed — and still drawn from the
	// jitter stream — exactly as in production.
	Sleep func(time.Duration)
}

func (c *RetryConfig) fill() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 5 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 500 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
}

// ClientStats counts a RetryClient's work.
type ClientStats struct {
	Sent    uint64 `json:"sent"`    // events handed to Send
	Retries uint64 `json:"retries"` // extra attempts beyond the first
	Failed  uint64 `json:"failed"`  // events abandoned after MaxAttempts
}

// RetryClient is the loss-surviving ingest producer: it numbers each
// envelope with a per-(key, user) sequence and resends refused envelopes
// under bounded exponential backoff with jitter. Sequencing makes retries
// idempotent — a resend whose original actually landed is folded once, by
// the shard's (key, user, seq) dedup — so the client can safely treat every
// false from the transport as "maybe lost" and hammer until acknowledged.
//
// Sequences are assigned contiguously per (key, user) stream. That
// contiguity is load-bearing for the server's memory: the shard tracker
// keeps only a floor plus out-of-order arrivals above it, so a client that
// skipped numbers would pin sparse entries forever.
//
// A RetryClient is not safe for concurrent use; run one per producer
// goroutine (each with its own rng fork), like any rng.Source consumer.
type RetryClient struct {
	send  func(Envelope) bool
	cfg   RetryConfig
	src   *rng.Source
	next  map[dedupKey]uint64
	stats ClientStats
}

// NewRetryClient wraps a transport — any "offer one envelope, true if
// acknowledged" function: Ingestor.Offer directly, an HTTP POST to
// /ingest (HTTPSender), or a fault injector standing in front of either.
// src drives retry jitter; it is drawn from only when a retry actually
// happens, so a fault-free run consumes no randomness.
func NewRetryClient(send func(Envelope) bool, src *rng.Source, cfg RetryConfig) *RetryClient {
	cfg.fill()
	return &RetryClient{send: send, cfg: cfg, src: src, next: map[dedupKey]uint64{}}
}

// Send delivers one envelope, retrying refusals, and reports whether it was
// ever acknowledged. An envelope with Seq == 0 is assigned the next
// sequence of its (key, user) stream; a pre-sequenced envelope (an
// application-level resend) keeps its number.
func (c *RetryClient) Send(e Envelope) bool {
	if e.Seq == 0 {
		k := dedupKey{Key: e.Key(), User: e.User}
		c.next[k]++
		e.Seq = c.next[k]
	}
	c.stats.Sent++
	if c.send(e) {
		return true
	}
	d := c.cfg.BaseDelay
	for attempt := 1; attempt < c.cfg.MaxAttempts; attempt++ {
		// Jittered backoff: uniform in [d/2, d). Decorrelates producers
		// that fail together without ever collapsing the delay to zero.
		c.cfg.Sleep(d/2 + time.Duration(c.src.Float64()*float64(d/2)))
		c.stats.Retries++
		if c.send(e) {
			return true
		}
		if d *= 2; d > c.cfg.MaxDelay {
			d = c.cfg.MaxDelay
		}
	}
	c.stats.Failed++
	return false
}

// SendAll delivers a batch, returning how many were acknowledged.
func (c *RetryClient) SendAll(events []Envelope) int {
	n := 0
	for _, e := range events {
		if c.Send(e) {
			n++
		}
	}
	return n
}

// Stats returns a copy of the client's counters.
func (c *RetryClient) Stats() ClientStats { return c.stats }

// HTTPSender adapts telemetryd's POST /ingest endpoint to the RetryClient
// transport shape: one envelope per request, acknowledged only when the
// daemon reports it accepted — an HTTP error, a transport error, or a
// "decoded but dropped" response all return false and so get retried.
// client == nil uses http.DefaultClient.
func HTTPSender(client *http.Client, url string) func(Envelope) bool {
	if client == nil {
		client = http.DefaultClient
	}
	var buf []byte
	return func(e Envelope) bool {
		var err error
		if buf, err = AppendJSONL(buf[:0], e); err != nil {
			return false
		}
		resp, err := client.Post(url, "application/jsonl", bytes.NewReader(buf))
		if err != nil {
			return false
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		var body struct {
			Accepted int `json:"accepted"`
		}
		if err := decodeJSONBody(resp.Body, &body); err != nil {
			return false
		}
		return body.Accepted == 1
	}
}

// decodeJSONBody reads and decodes one JSON response body.
func decodeJSONBody(r io.Reader, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("telemetry: bad ingest response: %w", err)
	}
	return nil
}
