package telemetry

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"edgescope/internal/stats"
)

// Window snapshots. A snapshot is one shard's complete rollup state —
// every (window, key) sketch in exact binary form (stats.Sketch
// MarshalBinary, unflushed buffer included), the idempotency trackers, and
// a per-WAL-segment applied count recording how many of each segment's
// records are already folded into those sketches. Applied counts are only
// ever encoded after an fsync (snapshotShard syncs under the shard lock
// first), so they never exceed what is actually on disk — recovery loads
// the snapshot and replays only each segment's suffix past its applied
// count, and snapshot+WAL reconstructs the same state as replaying the WAL
// alone — the snapshot is purely a replay accelerator, never a second
// source of truth (pinned by TestRecoverSnapshotEquivalentToWALOnly).
//
// The file is written whole to a temp name, fsynced and renamed, so a crash
// mid-snapshot leaves the previous snapshot intact; a CRC32 over the
// payload rejects bitrot, and a rejected snapshot simply falls back to full
// WAL replay.

// snapshotFile is the per-shard snapshot name (atomic-replace target).
const snapshotFile = "snapshot.bin"

// snapMagic versions the snapshot format; loaders accept exactly this.
// Version 2 added the per-tracker last-activity window (tracker aging).
var snapMagic = [8]byte{'e', 's', 's', 'n', 'a', 'p', '0', 2}

// snapState is a decoded snapshot.
type snapState struct {
	shards   int
	windowMs int64
	windows  map[windowKey]*stats.Sketch
	seen     map[dedupKey]*seqTracker
	applied  map[int64]uint64
}

type snapWriter struct{ b []byte }

func (w *snapWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *snapWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *snapWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *snapWriter) str(s string) { w.u32(uint32(len(s))); w.b = append(w.b, s...) }
func (w *snapWriter) key(k Key)    { w.str(k.Metric); w.str(k.Region); w.str(k.Net) }

// encodeSnapshot serializes a shard's state. Called with the shard mutex
// held, so sketches, trackers and WAL record counts are one consistent cut.
// Map iteration order is canonicalised by sorting, making snapshot bytes
// deterministic for a given state.
func encodeSnapshot(s *shard, cfg Config) []byte {
	w := &snapWriter{b: make([]byte, 0, 4096)}
	w.b = append(w.b, snapMagic[:]...)
	w.u32(uint32(cfg.Shards))
	w.i64(cfg.Window.Milliseconds())

	wks := make([]windowKey, 0, len(s.windows))
	for wk := range s.windows {
		wks = append(wks, wk)
	}
	sort.Slice(wks, func(i, j int) bool {
		a, b := wks[i], wks[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Net < b.Net
	})
	w.u32(uint32(len(wks)))
	var skBuf []byte
	for _, wk := range wks {
		w.i64(wk.Start)
		w.key(wk.Key)
		skBuf, _ = s.windows[wk].AppendBinary(skBuf[:0])
		w.u32(uint32(len(skBuf)))
		w.b = append(w.b, skBuf...)
	}

	var segs []int64
	if s.wal != nil {
		for start := range s.wal.records {
			segs = append(segs, start)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	w.u32(uint32(len(segs)))
	for _, start := range segs {
		w.i64(start)
		w.u64(s.wal.records[start])
	}

	dks := make([]dedupKey, 0, len(s.seen))
	for dk := range s.seen {
		dks = append(dks, dk)
	}
	sort.Slice(dks, func(i, j int) bool {
		a, b := dks[i], dks[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.User < b.User
	})
	w.u32(uint32(len(dks)))
	for _, dk := range dks {
		w.key(dk.Key)
		w.i64(int64(dk.User))
		t := s.seen[dk]
		w.u64(t.floor)
		w.i64(t.last)
		sparse := make([]uint64, 0, len(t.sparse))
		for seq := range t.sparse {
			sparse = append(sparse, seq)
		}
		sort.Slice(sparse, func(i, j int) bool { return sparse[i] < sparse[j] })
		w.u32(uint32(len(sparse)))
		for _, seq := range sparse {
			w.u64(seq)
		}
	}

	w.u32(crc32.ChecksumIEEE(w.b))
	return w.b
}

// writeSnapshot atomically replaces the shard's snapshot file.
func writeSnapshot(dir string, payload []byte) error {
	path := filepath.Join(dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) fail() bool { return r.off < 0 }
func (r *snapReader) need(n int) bool {
	if r.fail() || n < 0 || len(r.b)-r.off < n {
		r.off = -1
		return false
	}
	return true
}
func (r *snapReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}
func (r *snapReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}
func (r *snapReader) i64() int64 { return int64(r.u64()) }
func (r *snapReader) str() string {
	n := int(r.u32())
	if !r.need(n) {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}
func (r *snapReader) key() Key {
	return Key{Metric: r.str(), Region: r.str(), Net: r.str()}
}
func (r *snapReader) bytes() []byte {
	n := int(r.u32())
	if !r.need(n) {
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// decodeSnapshot parses and validates a snapshot payload. Corrupt input of
// any shape errors — never panics, never partially applies.
func decodeSnapshot(data []byte) (*snapState, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("telemetry: snapshot: %d bytes, too short", len(data))
	}
	if [8]byte(data[:8]) != snapMagic {
		return nil, fmt.Errorf("telemetry: snapshot: bad magic/version %q", data[:8])
	}
	payload, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("telemetry: snapshot: checksum mismatch")
	}
	r := &snapReader{b: payload, off: 8}
	st := &snapState{
		windows: map[windowKey]*stats.Sketch{},
		seen:    map[dedupKey]*seqTracker{},
		applied: map[int64]uint64{},
	}
	st.shards = int(r.u32())
	st.windowMs = r.i64()

	nWindows := int(r.u32())
	for i := 0; i < nWindows && !r.fail(); i++ {
		start := r.i64()
		key := r.key()
		raw := r.bytes()
		if r.fail() {
			break
		}
		sk := &stats.Sketch{}
		if err := sk.UnmarshalBinary(raw); err != nil {
			return nil, fmt.Errorf("telemetry: snapshot window %d/%s: %w", start, key, err)
		}
		st.windows[windowKey{Start: start, Key: key}] = sk
	}

	nSegs := int(r.u32())
	for i := 0; i < nSegs && !r.fail(); i++ {
		start := r.i64()
		st.applied[start] = r.u64()
	}

	nTrackers := int(r.u32())
	for i := 0; i < nTrackers && !r.fail(); i++ {
		dk := dedupKey{Key: r.key(), User: int(r.i64())}
		t := &seqTracker{}
		t.floor = r.u64()
		t.last = r.i64()
		nSparse := int(r.u32())
		// Bound the allocation by the remaining payload (8 bytes/entry).
		if !r.need(0) || nSparse < 0 || nSparse*8 > len(r.b)-r.off {
			r.off = -1
			break
		}
		if nSparse > 0 {
			t.sparse = make(map[uint64]struct{}, nSparse)
			for j := 0; j < nSparse; j++ {
				t.sparse[r.u64()] = struct{}{}
			}
		}
		st.seen[dk] = t
	}

	if r.fail() || r.off != len(payload) {
		return nil, fmt.Errorf("telemetry: snapshot: truncated or trailing payload")
	}
	if st.shards <= 0 || st.windowMs <= 0 {
		return nil, fmt.Errorf("telemetry: snapshot: invalid config header (%d shards, %dms window)",
			st.shards, st.windowMs)
	}
	return st, nil
}

// loadSnapshot reads a shard directory's snapshot. A missing file returns
// (nil, nil): cold start or WAL-only recovery.
func loadSnapshot(dir string) (*snapState, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return decodeSnapshot(data)
}
