package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(<=0) should default to GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit worker count not honoured")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachPanicPropagatesToCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEach(100, workers, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ForEach(-1, 4, func(int) { t.Fatal("fn called for n<0") })
}
