// Package par holds the small concurrency helpers behind edgescope's
// parallel experiment engine. Work is always *indexed*: callers pre-derive
// any per-item random sub-streams deterministically (in index order, via
// rng.Fork) before fanning out, and workers write results into per-index
// slots, so outputs are byte-identical regardless of worker count or
// scheduling order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a parallelism request: n <= 0 means one worker per
// available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0,n) over workers goroutines (Workers
// semantics: <=0 means GOMAXPROCS). Items are claimed from an atomic
// counter, so there is no per-item channel overhead; the call returns when
// every item is done. fn must confine its writes to per-index data.
//
// A panic in fn stops the fan-out and is re-raised on the calling
// goroutine, so failure behavior is identical at any worker count (a bare
// goroutine panic would kill the process and bypass the caller's recover).
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Bool
		mu       sync.Mutex
		pval     any
		wg       sync.WaitGroup
	)
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicked.Store(true)
				mu.Lock()
				if pval == nil {
					pval = r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for !panicked.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}
