package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs processed")
	g := r.Gauge("depth", "queue depth")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(3.5)
	g.Add(-1)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var reg *Registry
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	reg.OnCollect(func() {})
	id := tr.Begin("x", 0)
	tr.End(id)
	tr.SetWorker(id, 1)
	tr.Annotate(id, "k", "v")
	tr.Reserve(10)
	tr.Reset()
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must be empty")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	samples := r.Snapshot()
	wantCum := map[string]float64{"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
	for le, want := range wantCum {
		s, ok := Find(samples, "lat_seconds_bucket", "le", le)
		if !ok || s.Value != want {
			t.Fatalf("bucket le=%s = %+v ok=%v, want %v", le, s, ok, want)
		}
	}
	if s, ok := Find(samples, "lat_seconds_count"); !ok || s.Value != 5 {
		t.Fatalf("count sample = %+v ok=%v", s, ok)
	}
}

func TestLabeledFamiliesResolveOnce(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("shard_events_total", "events per shard", "shard")
	a, b := v.With("0"), v.With("0")
	if a != b {
		t.Fatal("With must resolve one series per label tuple")
	}
	v.With("1").Add(7)
	a.Inc()
	samples := r.Snapshot()
	if s, ok := Find(samples, "shard_events_total", "shard", "1"); !ok || s.Value != 7 {
		t.Fatalf("shard 1 = %+v ok=%v, want 7", s, ok)
	}
	if s, ok := Find(samples, "shard_events_total", "shard", "0"); !ok || s.Value != 1 {
		t.Fatalf("shard 0 = %+v ok=%v, want 1", s, ok)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("b_total", "with \"quotes\" and\nnewline", "region")
	v.With("cn\"north\"").Inc()
	r.Gauge("a_depth", "a gauge").Set(1.5)
	r.Histogram("c_seconds", "hist", []float64{0.5}).Observe(0.25)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP a_depth a gauge
# TYPE a_depth gauge
a_depth 1.5
# HELP b_total with "quotes" and\nnewline
# TYPE b_total counter
b_total{region="cn\"north\""} 1
# HELP c_seconds hist
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="+Inf"} 1
c_seconds_sum 0.25
c_seconds_count 1
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := LintExposition(strings.NewReader(got)); err != nil {
		t.Fatalf("own exposition must lint clean: %v", err)
	}
}

func TestLintExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_declared 1\n",
		"# TYPE x counter\nx one\n",
		"# TYPE x counter\nx{le=\"oops} 1\n",
		"# TYPE x counter\nx{bad name=\"v\"} 1\n",
		"# TYPE x wat\nx 1\n",
		"# TYPE x counter\n# TYPE x counter\nx 1\n",
		"",
	}
	for _, tc := range bad {
		if err := LintExposition(strings.NewReader(tc)); err == nil {
			t.Fatalf("lint accepted malformed exposition %q", tc)
		}
	}
	good := "# HELP x ok\n# TYPE x counter\nx 1\nx{a=\"b\",c=\"d\"} 2.5e3 1700000000000\n"
	if err := LintExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("lint rejected valid exposition: %v", err)
	}
}

func TestOnCollectRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("live_depth", "refreshed at scrape")
	depth := 0
	r.OnCollect(func() { g.Set(float64(depth)) })
	depth = 42
	if s, ok := Find(r.Snapshot(), "live_depth"); !ok || s.Value != 42 {
		t.Fatalf("collect hook did not run: %+v ok=%v", s, ok)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("9starts_with_digit", "") },
		func() { r.Counter("has-dash", "") },
		func() { r.CounterVec("ok_total", "", "le") },
		func() { r.Histogram("bad_buckets", "", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("alloc_total", "", "shard").With("3")
	g := r.Gauge("alloc_depth", "")
	h := r.Histogram("alloc_seconds", "", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}

// TestConcurrentScrapeDuringWrites is the -race pin: scraping must be safe
// while every instrument is being hammered.
func TestConcurrentScrapeDuringWrites(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("rc_total", "", "w").With("0")
	g := r.Gauge("rc_depth", "")
	h := r.Histogram("rc_seconds", "", nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					g.Add(1)
					h.Observe(0.01)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
		if err := LintExposition(strings.NewReader(sb.String())); err != nil {
			t.Errorf("mid-run exposition malformed: %v", err)
		}
		r.Snapshot()
	}
	close(stop)
	wg.Wait()
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
