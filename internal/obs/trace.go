package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span tracer. Spans are explicit-clock records — name, parent, worker
// (track) attribution, start/end, attrs — appended to a flat in-memory
// store. With the default monotonic clock a trace shows real wall time;
// with an explicit clock (a counter in tests) the whole record set is
// deterministic, which is what makes trace-shape assertions exact. The
// store serializes to Chrome trace-event JSON (WriteChromeTrace), viewable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.

// SpanID identifies one span within its tracer: a 1-based index into the
// span store. 0 means "no span" and is a safe parent/operand everywhere.
type SpanID uint32

// Attr is one span annotation.
type Attr struct {
	Key, Val string
}

// Span is one recorded interval. EndNS == 0 marks a span never ended
// (rendered with zero duration).
type Span struct {
	Name    string
	Parent  SpanID
	Worker  int
	StartNS int64
	EndNS   int64
	Attrs   []Attr
}

// Tracer records spans. All methods are safe for concurrent use and are
// no-ops on a nil receiver, so instrumented code calls unconditionally and
// an untraced run pays one branch per call site. Begin/End over reserved
// capacity are allocation-free (pinned by BenchmarkObsSpan).
type Tracer struct {
	mu    sync.Mutex
	clock func() int64
	spans []Span
}

// NewTracer builds a tracer over an explicit clock returning nanoseconds on
// any fixed, monotonic axis. nil uses wall time relative to the tracer's
// creation (monotonic under the hood).
func NewTracer(clock func() int64) *Tracer {
	if clock == nil {
		epoch := time.Now()
		clock = func() int64 { return int64(time.Since(epoch)) }
	}
	return &Tracer{clock: clock}
}

// Reserve grows the span store's capacity to at least n spans, making the
// next n Begin calls allocation-free.
func (t *Tracer) Reserve(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if cap(t.spans)-len(t.spans) < n {
		grown := make([]Span, len(t.spans), len(t.spans)+n)
		copy(grown, t.spans)
		t.spans = grown
	}
	t.mu.Unlock()
}

// Begin starts a span under parent (0 = root) and returns its ID.
func (t *Tracer) Begin(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	now := t.clock()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Parent: parent, StartNS: now})
	id := SpanID(len(t.spans))
	t.mu.Unlock()
	return id
}

// End closes a span. Ending span 0 (or an already-ended span again) is a
// no-op; the second End of a span keeps the first end time.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	now := t.clock()
	t.mu.Lock()
	if sp := &t.spans[id-1]; sp.EndNS == 0 {
		sp.EndNS = now
	}
	t.mu.Unlock()
}

// SetWorker attributes a span to a worker (a Chrome trace track), so the
// rendered timeline shows which pool slot ran what.
func (t *Tracer) SetWorker(id SpanID, worker int) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	t.spans[id-1].Worker = worker
	t.mu.Unlock()
}

// Annotate attaches one key/value attr to a span (rendered as Chrome trace
// args).
func (t *Tracer) Annotate(id SpanID, key, val string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	t.spans[id-1].Attrs = append(t.spans[id-1].Attrs, Attr{key, val})
	t.mu.Unlock()
}

// Len reports how many spans have been recorded (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of every recorded span, in Begin order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Reset drops every recorded span, keeping the store's capacity.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.mu.Unlock()
}

// chromeEvent is one Chrome trace-event object. Complete events ("ph":"X")
// carry ts/dur in microseconds; metadata events ("ph":"M") name the tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serializes the span store as Chrome trace-event JSON
// ({"traceEvents":[...]}), one complete ("X") event per span on the track of
// its worker, with parent name/ID and attrs in args, preceded by
// thread_name metadata naming each worker track. Perfetto and
// chrome://tracing open the output directly. The output depends only on the
// recorded spans, so an explicit-clock trace is byte-deterministic.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans)+8)

	workers := map[int]bool{}
	for _, sp := range spans {
		workers[sp.Worker] = true
	}
	wids := make([]int, 0, len(workers))
	for id := range workers {
		wids = append(wids, id)
	}
	sort.Ints(wids)
	for _, id := range wids {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]any{"name": fmt.Sprintf("worker-%d", id)},
		})
	}

	for i, sp := range spans {
		end := sp.EndNS
		if end < sp.StartNS {
			end = sp.StartNS
		}
		dur := float64(end-sp.StartNS) / 1e3
		args := map[string]any{"id": i + 1}
		if sp.Parent != 0 {
			args["parent"] = int(sp.Parent)
			args["parent_name"] = spans[sp.Parent-1].Name
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Val
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Ph: "X",
			TS: float64(sp.StartNS) / 1e3, Dur: &dur,
			PID: 1, TID: sp.Worker, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
