package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition validates Prometheus text-format exposition data line by
// line: comments must be well-formed # HELP/# TYPE headers with known types,
// sample lines must parse as <name>[{labels}] <value>, every sample's base
// family must have been TYPE-declared first, and a family must not be
// declared twice. It returns a positioned error on the first malformed line
// — the contract ci.sh's /metrics smoke-scrape enforces.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := lintSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(typed) == 0 {
		return fmt.Errorf("no metric families in exposition")
	}
	return nil
}

func lintComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !validName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	case "TYPE":
		if !validName(fields[2]) {
			return fmt.Errorf("TYPE for invalid metric name %q", fields[2])
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE %s missing type", fields[2])
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s has unknown type %q", fields[2], fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("metric %s TYPE-declared twice", fields[2])
		}
		typed[fields[2]] = fields[3]
	default:
		return fmt.Errorf("malformed comment %q", line)
	}
	return nil
}

func lintSample(line string, typed map[string]string) error {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name := rest[:i]
	if !validName(name) {
		return fmt.Errorf("invalid metric name in sample %q", line)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := lintLabels(rest[1:end]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("missing value separator in %q", line)
	}
	val := strings.TrimPrefix(rest, " ")
	// The grammar allows an optional trailing timestamp; this registry never
	// emits one, but tolerate it for generality.
	if sp := strings.IndexByte(val, ' '); sp >= 0 {
		ts := val[sp+1:]
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q in %q", ts, line)
		}
		val = val[:sp]
	}
	switch val {
	case "+Inf", "-Inf", "NaN":
	default:
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("bad value %q in %q", val, line)
		}
	}
	// Samples must belong to a TYPE-declared family (histogram samples to
	// their _bucket/_sum/_count base name).
	base := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if t := typed[strings.TrimSuffix(name, suffix)]; t == "histogram" || t == "summary" {
			base = strings.TrimSuffix(name, suffix)
			break
		}
	}
	if _, ok := typed[base]; !ok {
		return fmt.Errorf("sample %q precedes its TYPE declaration", name)
	}
	return nil
}

func lintLabels(s string) error {
	if s == "" {
		return fmt.Errorf("empty label set")
	}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 || !validName(s[:eq]) {
			return fmt.Errorf("bad label name")
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted label value")
		}
		s = s[1:]
		// Scan to the closing quote, honouring escapes.
		i := 0
		for i < len(s) {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label value")
				}
				if c := s[i+1]; c != '\\' && c != '"' && c != 'n' {
					return fmt.Errorf("bad escape \\%c in label value", c)
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value")
		}
		s = s[i+1:]
		if s == "" {
			return nil
		}
		if !strings.HasPrefix(s, ",") {
			return fmt.Errorf("missing comma between labels")
		}
		s = s[1:]
	}
	return fmt.Errorf("trailing comma in label set")
}
