// Package obs is edgescope's self-observability plane: a zero-dependency,
// low-overhead metrics registry with Prometheus text-format exposition
// (metrics.go) and an explicit-clock span tracer that serializes to Chrome
// trace-event JSON (trace.go).
//
// Design constraints, in order:
//
//   - Allocation-free hot paths. Instrument handles are resolved once at
//     setup (Registry.CounterVec(...).With(...)); the per-event operations —
//     Counter.Inc/Add, Gauge.Set, Histogram.Observe, Tracer.Begin/End over
//     reserved capacity — are a nil check plus atomic ops, zero allocations,
//     pinned by BenchmarkObsCounterInc/BenchmarkObsSpan and the CI alloc gate.
//   - Nil-safety everywhere. Every instrument method is a no-op on a nil
//     receiver, so instrumented code never branches on "is observability
//     configured" — an unconfigured component pays one predictable branch.
//   - Observation must not perturb the experiment. Nothing in this package
//     draws randomness, touches the ambient clock on the metrics path, or
//     writes to stdout; reproall output stays byte-identical with tracing on.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the exposition metric types.
type Kind int

// The three instrument kinds the registry serves.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as Prometheus TYPE text.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing uint64 cell. The zero value is ready
// to use; a standalone (unregistered) counter is a valid accounting cell —
// internal/telemetry uses them when no registry is configured. All methods
// are safe on a nil receiver and for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 cell that may go up and down. Zero value ready; nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; use Set from a single writer when possible).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: per-bucket atomic counts over
// ascending upper bounds plus an implicit +Inf bucket, a count, and a sum.
// Observe is allocation-free: a linear scan over the (short, cache-resident)
// bounds slice and three atomic ops. Nil-safe.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram validates and copies the bounds.
func newHistogram(buckets []float64) *Histogram {
	b := make([]float64, len(buckets))
	copy(b, buckets)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", buckets))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus base unit,
// so *_seconds histograms read naturally in standard dashboards.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefBuckets are general-purpose latency buckets in seconds (Prometheus's
// defaults): 5µs-scale WAL appends through multi-second recoveries all land
// mid-range somewhere.
var DefBuckets = []float64{.000005, .00001, .000025, .00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// series is one label-value tuple's instrument within a family.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is one metric name: its type, help, label schema and series set.
type family struct {
	name, help string
	kind       Kind
	labels     []string
	buckets    []float64

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// resolve returns (creating once) the series for a label-value tuple.
func (f *family) resolve(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = newHistogram(f.buckets)
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Registry holds metric families and renders them. A Registry is safe for
// concurrent registration, instrument operations and exposition. Instrument
// names are registered at most once: re-registering a name (even with a
// different type or label schema) panics, because two owners of one series
// is always a wiring bug.
type Registry struct {
	mu      sync.Mutex
	fams    map[string]*family
	ordered []*family
	hooks   []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// OnCollect registers a hook run before every Snapshot/WritePrometheus —
// the place to refresh gauges that mirror live state (queue depths, WAL
// lag) without paying for them on the hot path. Hooks run in registration
// order, outside the registry lock, so they may freely touch instruments.
func (r *Registry) OnCollect(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// register validates and installs a family.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic("obs: invalid label name " + strconv.Quote(l) + " on metric " + name)
		}
	}
	f := &family{name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: buckets,
		byKey: map[string]*series{}}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic("obs: metric " + name + " registered twice")
	}
	r.fams[name] = f
	r.ordered = append(r.ordered, f)
	return f
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers an unlabeled counter and returns its handle.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).resolve(nil).c
}

// Gauge registers an unlabeled gauge and returns its handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).resolve(nil).g
}

// Histogram registers an unlabeled histogram over the given ascending bucket
// upper bounds (nil = DefBuckets) and returns its handle.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, KindHistogram, nil, buckets).resolve(nil).h
}

// CounterVec is a labeled counter family; With resolves one series.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With returns (creating once) the counter for a label-value tuple. Resolve
// once at setup and keep the handle: With itself takes the family lock.
func (v *CounterVec) With(vals ...string) *Counter { return v.f.resolve(vals).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With returns (creating once) the gauge for a label-value tuple.
func (v *GaugeVec) With(vals ...string) *Gauge { return v.f.resolve(vals).g }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family (nil buckets =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns (creating once) the histogram for a label-value tuple.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.f.resolve(vals).h }

// Label is one exposition label pair.
type Label struct {
	Name, Value string
}

// Sample is one exposed time-series point. Histograms expand exactly as in
// the text format: <name>_bucket with cumulative counts per "le" bound
// (+Inf included), <name>_sum and <name>_count.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of a label by name ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Snapshot runs the collect hooks and returns every sample in exposition
// order (families by name, series by label values) — the in-process consumer
// API the HTTP endpoint and future control loops share.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	r.collect(func(s Sample) { out = append(out, s) }, nil)
	return out
}

// Find returns the first snapshot sample matching name and every given
// label pair, and whether one matched — a test/consumer convenience.
func Find(samples []Sample, name string, labelPairs ...string) (Sample, bool) {
	if len(labelPairs)%2 != 0 {
		panic("obs: Find wants name, k1, v1, k2, v2, ...")
	}
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(labelPairs); i += 2 {
			if s.Label(labelPairs[i]) != labelPairs[i+1] {
				continue next
			}
		}
		return s, true
	}
	return Sample{}, false
}

// collect walks families in sorted-name order, series in sorted label-value
// order, invoking emit per sample and (when non-nil) fam once per family.
func (r *Registry) collect(emit func(Sample), fam func(name, help string, kind Kind)) {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := append([]*family{}, r.ordered...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.mu.Lock()
		series := append([]*series{}, f.series...)
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool {
			a, b := series[i].labelVals, series[j].labelVals
			for k := range a {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
		if fam != nil {
			fam(f.name, f.help, f.kind)
		}
		for _, s := range series {
			base := make([]Label, len(f.labels))
			for i, l := range f.labels {
				base[i] = Label{l, s.labelVals[i]}
			}
			switch f.kind {
			case KindCounter:
				emit(Sample{f.name, base, float64(s.c.Value())})
			case KindGauge:
				emit(Sample{f.name, base, s.g.Value()})
			case KindHistogram:
				// Cumulative buckets, as the text format requires.
				var cum uint64
				for i, ub := range s.h.bounds {
					cum += s.h.counts[i].Load()
					emit(Sample{f.name + "_bucket",
						append(append([]Label{}, base...), Label{"le", formatFloat(ub)}),
						float64(cum)})
				}
				cum += s.h.inf.Load()
				emit(Sample{f.name + "_bucket",
					append(append([]Label{}, base...), Label{"le", "+Inf"}),
					float64(cum)})
				emit(Sample{f.name + "_sum", base, s.h.Sum()})
				emit(Sample{f.name + "_count", base, float64(s.h.count.Load())})
			}
		}
	}
}

// ExpositionContentType is the Content-Type of the Prometheus text format.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with its # HELP and
// # TYPE header, series sorted by label values, histogram buckets cumulative
// with the +Inf bound explicit.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	r.collect(func(s Sample) {
		b.WriteString(s.Name)
		if len(s.Labels) > 0 {
			b.WriteByte('{')
			for i, l := range s.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(l.Name)
				b.WriteString(`="`)
				b.WriteString(escapeLabel(l.Value))
				b.WriteByte('"')
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.Value))
		b.WriteByte('\n')
	}, func(name, help string, kind Kind) {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(help))
		b.WriteString("\n# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(kind.String())
		b.WriteByte('\n')
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a sample value: integral values without an exponent
// (counters read naturally), everything else in Go's shortest 'g' form,
// which the exposition grammar accepts.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash, quote
// and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes help text: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
