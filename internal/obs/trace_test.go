package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fakeClock is the explicit deterministic clock: each call advances 1µs.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1000
		return t
	}
}

func buildTrace(t *Tracer) {
	root := t.Begin("runall", 0)
	a := t.Begin("substrate/campaign", root)
	t.SetWorker(a, 1)
	t.Annotate(a, "kind", "substrate")
	t.End(a)
	b := t.Begin("table1", root)
	t.SetWorker(b, 2)
	t.Annotate(b, "kind", "artifact")
	t.End(b)
	t.End(root)
}

func TestTracerRecordsSpanTree(t *testing.T) {
	tr := NewTracer(fakeClock())
	buildTrace(tr)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	root, a, b := spans[0], spans[1], spans[2]
	if root.Name != "runall" || root.Parent != 0 {
		t.Fatalf("bad root: %+v", root)
	}
	if a.Parent != 1 || b.Parent != 1 {
		t.Fatalf("children must point at root: %+v %+v", a, b)
	}
	if a.Worker != 1 || b.Worker != 2 {
		t.Fatalf("worker attribution lost: %+v %+v", a, b)
	}
	if a.EndNS <= a.StartNS || root.EndNS <= b.EndNS {
		t.Fatalf("clock ordering violated: %+v %+v", a, root)
	}
	if len(a.Attrs) != 1 || a.Attrs[0] != (Attr{"kind", "substrate"}) {
		t.Fatalf("attrs lost: %+v", a.Attrs)
	}
}

func TestExplicitClockTraceIsDeterministic(t *testing.T) {
	render := func() []byte {
		tr := NewTracer(fakeClock())
		buildTrace(tr)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("explicit-clock traces differ:\n%s\n%s", a, b)
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(fakeClock())
	buildTrace(tr)
	unfinished := tr.Begin("never-ended", 0)
	_ = unfinished
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var meta, complete int
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			byName[ev.Name] = i
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event %s without non-negative dur", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta != 3 { // workers 0, 1, 2
		t.Fatalf("thread_name events = %d, want 3", meta)
	}
	ev := doc.TraceEvents[byName["table1"]]
	if ev.TID != 2 || ev.Args["parent_name"] != "runall" || ev.Args["kind"] != "artifact" {
		t.Fatalf("table1 event lost attribution: %+v", ev)
	}
	if nv := doc.TraceEvents[byName["never-ended"]]; *nv.Dur != 0 {
		t.Fatalf("unfinished span must render zero duration, got %v", *nv.Dur)
	}
}

func TestBeginEndAllocationFreeAfterReserve(t *testing.T) {
	tr := NewTracer(fakeClock())
	tr.Reserve(2100)
	if n := testing.AllocsPerRun(1000, func() {
		id := tr.Begin("span", 0)
		tr.End(id)
	}); n != 0 {
		t.Fatalf("Begin/End over reserved capacity allocates %v/op", n)
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	tr := NewTracer(fakeClock())
	tr.Reserve(8)
	for i := 0; i < 8; i++ {
		tr.End(tr.Begin("s", 0))
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
	if n := testing.AllocsPerRun(8, func() { tr.Reset(); tr.End(tr.Begin("s", 0)) }); n != 0 {
		t.Fatalf("Reset dropped capacity: %v allocs/op", n)
	}
}
