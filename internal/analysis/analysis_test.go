package analysis

import (
	"sync"
	"testing"

	"edgescope/internal/rng"
	"edgescope/internal/stats"
	"edgescope/internal/vm"
	"edgescope/internal/workload"
)

var (
	once       sync.Once
	nepTrace   *vm.Dataset
	cloudTrace *vm.Dataset
)

func traces(t *testing.T) (*vm.Dataset, *vm.Dataset) {
	t.Helper()
	once.Do(func() {
		var err error
		// 14 days so weekly resampling (Figure 13) has ≥2 windows.
		nepTrace, err = workload.GenerateNEP(rng.New(11), workload.Options{Apps: 60, Days: 14})
		if err != nil {
			panic(err)
		}
		cloudTrace, err = workload.GenerateCloud(rng.New(12), workload.Options{Apps: 250, Days: 7})
		if err != nil {
			panic(err)
		}
	})
	return nepTrace, cloudTrace
}

func TestVMSizesFigure8(t *testing.T) {
	nep, cloud := traces(t)
	sn, sc := VMSizes(nep), VMSizes(cloud)
	if sn.MedianVCPUs < 8 || sc.MedianVCPUs > 2 {
		t.Fatalf("median vCPUs: NEP %.0f (want ≥8), cloud %.0f (want ~1)",
			sn.MedianVCPUs, sc.MedianVCPUs)
	}
	if sn.MedianMemGB < 32 || sc.MedianMemGB > 8 {
		t.Fatalf("median mem: NEP %.0f, cloud %.0f", sn.MedianMemGB, sc.MedianMemGB)
	}
	// Paper: 90% of Azure VMs are small (≤4 vCPU); NEP skews medium/large.
	if sc.CPUSmall < 0.8 {
		t.Fatalf("cloud small-CPU share = %.2f, want ~0.9", sc.CPUSmall)
	}
	if sn.CPUSmall > 0.4 {
		t.Fatalf("NEP small-CPU share = %.2f, should be minor", sn.CPUSmall)
	}
	// Bucket shares sum to 1.
	for _, s := range []SizeDistribution{sn, sc} {
		if tot := s.CPUSmall + s.CPUMedium + s.CPULarge; tot < 0.999 || tot > 1.001 {
			t.Fatalf("CPU shares sum to %v", tot)
		}
		if tot := s.MemSmall + s.MemMedium + s.MemLarge; tot < 0.999 || tot > 1.001 {
			t.Fatalf("mem shares sum to %v", tot)
		}
	}
}

func TestVMSizesEmpty(t *testing.T) {
	if s := VMSizes(&vm.Dataset{}); s.MedianVCPUs != 0 {
		t.Fatal("empty dataset should be zero")
	}
}

func TestAppVMCountsFigure9(t *testing.T) {
	nep, cloud := traces(t)
	cn, cc := AppVMCounts(nep), AppVMCounts(cloud)
	for i := 1; i < len(cn); i++ {
		if cn[i-1] > cn[i] {
			t.Fatal("counts not sorted")
		}
	}
	// Paper: more big fleets on NEP (9.6% vs 6.1% with ≥50 VMs).
	if ShareAtLeast(cn, 50) <= ShareAtLeast(cc, 50) {
		t.Fatalf("NEP ≥50-VM share %.3f not above cloud %.3f",
			ShareAtLeast(cn, 50), ShareAtLeast(cc, 50))
	}
	if ShareAtLeast(nil, 1) != 0 {
		t.Fatal("empty ShareAtLeast should be 0")
	}
}

func TestUtilizationFigure10(t *testing.T) {
	nep, cloud := traces(t)
	un, uc := Utilization(nep), Utilization(cloud)
	if len(un.MeanCPU) != len(nep.VMs) {
		t.Fatal("wrong length")
	}
	// P95Max ≥ mean for every VM.
	for i := range un.MeanCPU {
		if un.P95MaxCPU[i] < un.MeanCPU[i]-1e-9 {
			t.Fatalf("VM %d: P95 max %.1f below mean %.1f", i, un.P95MaxCPU[i], un.MeanCPU[i])
		}
	}
	if stats.CDFAt(un.MeanCPU, 10) <= stats.CDFAt(uc.MeanCPU, 10) {
		t.Fatal("NEP should have more cold VMs than cloud")
	}
	if stats.Median(un.CPUCVs) <= stats.Median(uc.CPUCVs) {
		t.Fatal("NEP CPU CV should exceed cloud")
	}
}

func TestImbalanceFigure11(t *testing.T) {
	nep, _ := traces(t)
	rep := Imbalance(nep, "Guangdong")
	if len(rep.SiteCPU) < 3 {
		t.Fatalf("Guangdong sites with VMs = %d, want several", len(rep.SiteCPU))
	}
	if len(rep.ServerCPU) < 2 {
		t.Fatalf("busiest-site servers = %d", len(rep.ServerCPU))
	}
	// Normalised series have min 1.
	if mn := stats.Min(rep.SiteCPU); mn < 0.999 || mn > 1.001 {
		t.Fatalf("normalised site CPU min = %v", mn)
	}
	// Paper: usage is highly unbalanced (19.8× CPU and 731× NET across the
	// Guangdong sites sampled). The exact ordering is sample-specific; we
	// assert strong imbalance on both axes.
	if rep.SiteCPUGap < 2 {
		t.Fatalf("site CPU gap = %.1f, want imbalance", rep.SiteCPUGap)
	}
	if rep.SiteNETGap < 4 {
		t.Fatalf("site NET gap = %.1f, want severe imbalance", rep.SiteNETGap)
	}
	if rep.ServerCPUGap < 1.2 {
		t.Fatalf("server CPU gap = %.1f", rep.ServerCPUGap)
	}
}

func TestImbalanceUnknownProvince(t *testing.T) {
	nep, _ := traces(t)
	rep := Imbalance(nep, "Atlantis")
	if len(rep.SiteCPU) != 0 || rep.SiteCPUGap != 0 {
		t.Fatal("unknown province should be empty")
	}
}

func TestAppGapsFigure12(t *testing.T) {
	nep, cloud := traces(t)
	gn, gc := AppGaps(nep, 5), AppGaps(cloud, 5)
	if len(gn) == 0 || len(gc) == 0 {
		t.Fatal("no apps with ≥5 VMs")
	}
	// Paper: 16.3% of NEP apps exceed a 50× cross-VM gap vs 0.1% on Azure.
	nepBig := ShareAtLeast(gn, 50)
	cloudBig := ShareAtLeast(gc, 50)
	if nepBig <= cloudBig {
		t.Fatalf("NEP ≥50× share %.3f not above cloud %.3f", nepBig, cloudBig)
	}
	if nepBig < 0.04 {
		t.Fatalf("NEP ≥50× share = %.3f, want ~0.16", nepBig)
	}
	if cloudBig > 0.05 {
		t.Fatalf("cloud ≥50× share = %.3f, want ~0", cloudBig)
	}
}

func TestAppDaySampleFigure12b(t *testing.T) {
	nep, _ := traces(t)
	rows := AppDaySample(nep, 11)
	if len(rows) == 0 {
		t.Fatal("no day sample")
	}
	if len(rows) > 11 {
		t.Fatalf("rows = %d, want ≤11", len(rows))
	}
	perDay := len(rows[0])
	for _, row := range rows {
		if len(row) != perDay {
			t.Fatal("ragged day sample")
		}
	}
	if AppDaySample(&vm.Dataset{}, 5) != nil {
		t.Fatal("empty dataset should be nil")
	}
}

func TestWeeklyBandwidthFigure13(t *testing.T) {
	nep, _ := traces(t)
	idx := MostVolatileBW(nep, 4)
	if len(idx) != 4 {
		t.Fatalf("volatile VMs = %d", len(idx))
	}
	rows := WeeklyBandwidth(nep, idx)
	if len(rows) != 4 {
		t.Fatalf("weekly rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row) < 1 {
			t.Fatal("missing weeks")
		}
	}
	// Volatile selection must out-vary a random VM.
	some := WeeklyBandwidth(nep, []int{0})
	_ = some
	// Out-of-range indices are skipped, not fatal.
	if got := WeeklyBandwidth(nep, []int{-1, 1 << 30}); len(got) != 0 {
		t.Fatal("bad indices should be skipped")
	}
}

func TestMostVolatileOrdering(t *testing.T) {
	nep, _ := traces(t)
	idx := MostVolatileBW(nep, 10)
	ratio := func(i int) float64 {
		w := nep.VMs[i].PublicBW.Resample(7*24*3600*1e9, 0)
		mn, mx := stats.Min(w.Values), stats.Max(w.Values)
		if mn <= 0 {
			mn = 1e-6
		}
		return mx / mn
	}
	for k := 1; k < len(idx); k++ {
		if ratio(idx[k-1]) < ratio(idx[k])-1e-9 {
			t.Fatal("volatility not sorted descending")
		}
	}
}
