// Package analysis computes the paper's §4 workload characterisations from
// a vm.Dataset: VM sizing (Fig 8), per-app fleet sizes (Fig 9), CPU
// utilisation and its temporal variance (Fig 10), cross-server/site load
// imbalance (Fig 11), per-app cross-VM imbalance (Fig 12), and week-scale
// bandwidth volatility (Fig 13). Every function works on the trace schema
// alone, so it would run unchanged on the released EdgeWorkloadsTraces data.
package analysis

import (
	"sort"
	"time"

	"edgescope/internal/stats"
	"edgescope/internal/timeseries"
	"edgescope/internal/vm"
)

// SizeDistribution summarises Figure 8 for one platform.
type SizeDistribution struct {
	MedianVCPUs float64
	MedianMemGB float64
	// SmallShare/MediumShare/LargeShare bucket VMs at ≤4 / 5–16 / >16
	// vCPUs (or GB), the paper's small/medium/large split.
	CPUSmall, CPUMedium, CPULarge float64
	MemSmall, MemMedium, MemLarge float64
}

// VMSizes computes Figure 8's distribution for a dataset.
func VMSizes(d *vm.Dataset) SizeDistribution {
	var out SizeDistribution
	n := float64(len(d.VMs))
	if n == 0 {
		return out
	}
	cpus := make([]float64, len(d.VMs))
	mems := make([]float64, len(d.VMs))
	for i, v := range d.VMs {
		cpus[i] = float64(v.VCPUs)
		mems[i] = float64(v.MemGB)
		switch {
		case v.VCPUs <= 4:
			out.CPUSmall++
		case v.VCPUs <= 16:
			out.CPUMedium++
		default:
			out.CPULarge++
		}
		switch {
		case v.MemGB <= 4:
			out.MemSmall++
		case v.MemGB <= 16:
			out.MemMedium++
		default:
			out.MemLarge++
		}
	}
	out.CPUSmall /= n
	out.CPUMedium /= n
	out.CPULarge /= n
	out.MemSmall /= n
	out.MemMedium /= n
	out.MemLarge /= n
	out.MedianVCPUs = stats.SummarizeInPlace(cpus).Median()
	out.MedianMemGB = stats.SummarizeInPlace(mems).Median()
	return out
}

// AppVMCounts returns the per-app fleet sizes (Figure 9's CDF input) sorted
// ascending.
func AppVMCounts(d *vm.Dataset) []float64 {
	apps := d.AppVMs()
	out := make([]float64, 0, len(apps))
	for _, vms := range apps {
		out = append(out, float64(len(vms)))
	}
	sort.Float64s(out)
	return out
}

// ShareAtLeast returns the fraction of values ≥ threshold (e.g. the paper's
// "9.6% of apps deploy at least 50 VMs").
func ShareAtLeast(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// UtilizationSummary summarises Figure 10 for one platform.
type UtilizationSummary struct {
	// MeanCPU / P95MaxCPU / CPUCVs hold one entry per VM.
	MeanCPU   []float64
	P95MaxCPU []float64
	CPUCVs    []float64
}

// Utilization computes Figure 10's inputs. The P95 column reuses one
// percentile scratch across the VM walk: the per-VM copy+sort of the whole
// CPU series used to dominate both the time and the allocations of this
// figure.
func Utilization(d *vm.Dataset) UtilizationSummary {
	out := UtilizationSummary{
		MeanCPU:   make([]float64, len(d.VMs)),
		P95MaxCPU: make([]float64, len(d.VMs)),
		CPUCVs:    make([]float64, len(d.VMs)),
	}
	var sc stats.Scratch
	for i, v := range d.VMs {
		out.MeanCPU[i] = v.MeanCPU()
		out.P95MaxCPU[i] = v.P95MaxCPUScratch(&sc)
		out.CPUCVs[i] = v.CPUCV()
	}
	return out
}

// ImbalanceReport quantifies Figure 11 for one province sample: per-server
// and per-site CPU usage and bandwidth, normalised to the smallest, plus
// their max/min gaps.
type ImbalanceReport struct {
	Province string
	// SiteCPU / SiteNET hold one mean value per site (normalised); Gap
	// fields are max/min ratios before normalisation flooring.
	SiteCPU []float64
	SiteNET []float64
	// ServerCPU / ServerNET are for the servers of the busiest site.
	ServerCPU []float64
	ServerNET []float64

	SiteCPUGap   float64
	SiteNETGap   float64
	ServerCPUGap float64
	ServerNETGap float64
}

// Imbalance computes Figure 11 over the sites of one province (the paper
// samples Guangdong). Site CPU usage is the mean of its servers' weighted
// usage; NET is total bandwidth. Returns a zero report when the province
// hosts nothing.
func Imbalance(d *vm.Dataset, province string) ImbalanceReport {
	rep := ImbalanceReport{Province: province}
	siteVMs := d.SiteVMs()

	type siteStat struct {
		idx  int
		cpu  float64
		net  float64
		vmCt int
	}
	var sites []siteStat
	for i, s := range d.Sites {
		if s.Province != province || len(siteVMs[i]) == 0 {
			continue
		}
		// Mean CPU across hosted servers.
		servers := map[int]bool{}
		for _, vi := range siteVMs[i] {
			servers[d.VMs[vi].Server] = true
		}
		var cpuSum float64
		var cnt int
		for srv := range servers {
			if u := d.ServerCPUUsage(i, srv); u != nil {
				cpuSum += u.Mean()
				cnt++
			}
		}
		var net float64
		if bw := d.SiteBandwidth(i); bw != nil {
			net = bw.Mean()
		}
		if cnt == 0 {
			continue
		}
		sites = append(sites, siteStat{idx: i, cpu: cpuSum / float64(cnt), net: net, vmCt: len(siteVMs[i])})
	}
	if len(sites) == 0 {
		return rep
	}

	for _, s := range sites {
		rep.SiteCPU = append(rep.SiteCPU, s.cpu)
		rep.SiteNET = append(rep.SiteNET, s.net)
	}
	rep.SiteCPUGap = gap(rep.SiteCPU)
	rep.SiteNETGap = gap(rep.SiteNET)
	rep.SiteCPU = stats.Normalize(rep.SiteCPU, 1e-6)
	rep.SiteNET = stats.Normalize(rep.SiteNET, 1e-6)

	// Busiest site's servers.
	busiest := sites[0]
	for _, s := range sites[1:] {
		if s.vmCt > busiest.vmCt {
			busiest = s
		}
	}
	servers := map[int]bool{}
	for _, vi := range siteVMs[busiest.idx] {
		servers[d.VMs[vi].Server] = true
	}
	srvIdx := make([]int, 0, len(servers))
	for s := range servers {
		srvIdx = append(srvIdx, s)
	}
	sort.Ints(srvIdx)
	for _, srv := range srvIdx {
		u := d.ServerCPUUsage(busiest.idx, srv)
		if u == nil {
			continue
		}
		rep.ServerCPU = append(rep.ServerCPU, u.Mean())
		var net float64
		for _, vi := range siteVMs[busiest.idx] {
			if d.VMs[vi].Server == srv && d.VMs[vi].PublicBW != nil {
				net += d.VMs[vi].PublicBW.Mean()
			}
		}
		rep.ServerNET = append(rep.ServerNET, net)
	}
	rep.ServerCPUGap = gap(rep.ServerCPU)
	rep.ServerNETGap = gap(rep.ServerNET)
	rep.ServerCPU = stats.Normalize(rep.ServerCPU, 1e-6)
	rep.ServerNET = stats.Normalize(rep.ServerNET, 1e-6)
	return rep
}

// gap is max/min with a tiny floor to keep ratios finite.
func gap(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mn, mx := stats.Min(xs), stats.Max(xs)
	if mn < 1e-6 {
		mn = 1e-6
	}
	return mx / mn
}

// AppGaps returns, for every app with at least minVMs VMs, the P95/P5 gap of
// its VMs' mean CPU usage — Figure 12a's CDF input.
func AppGaps(d *vm.Dataset, minVMs int) []float64 {
	if minVMs < 2 {
		minVMs = 2
	}
	var out []float64
	apps := d.AppVMs()
	ids := make([]int, 0, len(apps))
	for id := range apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		vms := apps[id]
		if len(vms) < minVMs {
			continue
		}
		means := make([]float64, len(vms))
		for i, vi := range vms {
			means[i] = d.VMs[vi].MeanCPU()
		}
		out = append(out, stats.SummarizeInPlace(means).Gap(0.01))
	}
	return out
}

// AppDaySample extracts one day of CPU usage for up to maxVMs VMs of the
// app with the most VMs — Figure 12b's spaghetti plot.
func AppDaySample(d *vm.Dataset, maxVMs int) [][]float64 {
	apps := d.AppVMs()
	bestApp, bestN := -1, 0
	for id, vms := range apps {
		if len(vms) > bestN || (len(vms) == bestN && id < bestApp) {
			bestApp, bestN = id, len(vms)
		}
	}
	if bestApp < 0 {
		return nil
	}
	var out [][]float64
	for _, vi := range apps[bestApp] {
		if len(out) >= maxVMs {
			break
		}
		cpu := d.VMs[vi].CPU
		perDay := int(24 * time.Hour / cpu.Interval)
		if perDay > cpu.Len() {
			perDay = cpu.Len()
		}
		day := make([]float64, perDay)
		copy(day, cpu.Values[:perDay])
		out = append(out, day)
	}
	return out
}

// WeeklyBandwidth returns each selected VM's weekly-averaged bandwidth
// (Figure 13): one row per VM, one column per week. The resample buffer is
// recycled across VMs; only the returned rows are fresh allocations.
func WeeklyBandwidth(d *vm.Dataset, vmIdx []int) [][]float64 {
	var out [][]float64
	var weekly timeseries.Series
	for _, vi := range vmIdx {
		if vi < 0 || vi >= len(d.VMs) || d.VMs[vi].PublicBW == nil {
			continue
		}
		d.VMs[vi].PublicBW.ResampleInto(&weekly, 7*24*time.Hour, timeseries.AggMean)
		row := make([]float64, weekly.Len())
		copy(row, weekly.Values)
		out = append(out, row)
	}
	return out
}

// MostVolatileBW returns the indices of the n VMs whose weekly bandwidth
// averages vary the most (max/min ratio), the paper's Figure 13 selection.
func MostVolatileBW(d *vm.Dataset, n int) []int {
	type cand struct {
		idx   int
		ratio float64
	}
	var cands []cand
	var weekly timeseries.Series
	for i, v := range d.VMs {
		if v.PublicBW == nil {
			continue
		}
		v.PublicBW.ResampleInto(&weekly, 7*24*time.Hour, timeseries.AggMean)
		if weekly.Len() < 2 {
			continue
		}
		mn, mx := stats.Min(weekly.Values), stats.Max(weekly.Values)
		if mn <= 0 {
			mn = 1e-6
		}
		cands = append(cands, cand{idx: i, ratio: mx / mn})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].ratio != cands[b].ratio {
			return cands[a].ratio > cands[b].ratio
		}
		return cands[a].idx < cands[b].idx
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].idx
	}
	return out
}
