package billing

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"edgescope/internal/rng"
	"edgescope/internal/vm"
	"edgescope/internal/workload"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// --- Table 7 worked examples ---

func TestVCloud1ReservedExamples(t *testing.T) {
	c := VCloud1Net()
	cases := map[float64]Money{1: 23, 2: 46, 3: 71, 4: 96, 5: 125, 7: 285}
	for mbps, want := range cases {
		if got := c.ReservedMonthly(mbps); !almost(got, want, 1e-9) {
			t.Fatalf("vCloud-1 reserved %v Mbps = %v, want %v", mbps, got, want)
		}
	}
	if c.ReservedMonthly(0) != 0 {
		t.Fatal("zero bandwidth should be free")
	}
	// Fractional bandwidth rounds up.
	if got := c.ReservedMonthly(1.2); got != 46 {
		t.Fatalf("1.2 Mbps should bill as 2 Mbps, got %v", got)
	}
}

func TestVCloud2ReservedExample(t *testing.T) {
	c := VCloud2Net()
	if got := c.ReservedMonthly(2); !almost(got, 46, 1e-9) {
		t.Fatalf("vCloud-2 reserved 2 Mbps = %v, want 46", got)
	}
	// Table 7: 7 Mbps = 23×5 + 2×80 = 275.
	if got := c.ReservedMonthly(7); !almost(got, 275, 1e-9) {
		t.Fatalf("vCloud-2 reserved 7 Mbps = %v, want 275", got)
	}
}

func TestOnDemandByBandwidthExamples(t *testing.T) {
	// Table 7: 2 Mbps for a month = 720 × 2 × 0.063 = 90.72 (both clouds).
	for _, c := range []CloudNetPricing{VCloud1Net(), VCloud2Net()} {
		if got := c.OnDemandHourly(2) * 720; !almost(got, 90.72, 1e-9) {
			t.Fatalf("%s 2 Mbps month = %v, want 90.72", c.Name, got)
		}
	}
	// Table 7 (vCloud-2): 7 Mbps month = 720 × (5×0.063 + 2×0.25) = 586.8.
	if got := VCloud2Net().OnDemandHourly(7) * 720; !almost(got, 586.8, 1e-9) {
		t.Fatalf("vCloud-2 7 Mbps month = %v, want 586.8", got)
	}
	// vCloud-1 7 Mbps under the tariff as specified: 720 × (5×0.063 +
	// 2×0.248) = 583.92. (The paper's example prints 447.84 via an
	// arithmetic slip; see OnDemandHourly's doc comment.)
	if got := VCloud1Net().OnDemandHourly(7) * 720; !almost(got, 583.92, 1e-6) {
		t.Fatalf("vCloud-1 7 Mbps month = %v, want 583.92", got)
	}
	if VCloud1Net().OnDemandHourly(-1) != 0 {
		t.Fatal("negative bandwidth should be free")
	}
}

func TestQuantityExample(t *testing.T) {
	// Table 7: 1 GB = 0.8.
	if got := VCloud1Net().QuantityCost(1); !almost(got, 0.8, 1e-9) {
		t.Fatalf("1 GB = %v, want 0.8", got)
	}
	if VCloud1Net().QuantityCost(-5) != 0 {
		t.Fatal("negative quantity should be free")
	}
}

func TestNEPUnitPriceExamples(t *testing.T) {
	// Table 7's published city/operator prices.
	if got := NEPNetUnitPrice("Guangdong", "telecom"); got != 50 {
		t.Fatalf("guangzhou-telecom = %v, want 50", got)
	}
	if got := NEPNetUnitPrice("Sichuan", "telecom"); got != 25 {
		t.Fatalf("chengdu-telecom = %v, want 25", got)
	}
	if got := NEPNetUnitPrice("Guangdong", "cmcc"); got != 30 {
		t.Fatalf("guangzhou-cmcc = %v, want 30", got)
	}
	if got := NEPNetUnitPrice("Sichuan", "cmcc"); got != 15 {
		t.Fatalf("chengdu-cmcc = %v, want 15", got)
	}
	// Unlisted combinations stay in the published 15–50 band and are
	// deterministic.
	a := NEPNetUnitPrice("Hubei", "unicom")
	b := NEPNetUnitPrice("Hubei", "unicom")
	if a != b {
		t.Fatal("unit price not deterministic")
	}
	if a < 15 || a > 50 {
		t.Fatalf("unit price %v outside 15-50", a)
	}
	// CMCC runs cheaper (15–30).
	for _, prov := range []string{"Hubei", "Henan", "Jiangsu", "Zhejiang"} {
		if p := NEPNetUnitPrice(prov, "cmcc"); p > 30 {
			t.Fatalf("cmcc price %v in %s above 30", p, prov)
		}
	}
}

func TestNEPHardwareRates(t *testing.T) {
	hw := NEPHardware()
	// Table 7: 65/CPU, 20/GB mem, 0.35/GB disk.
	if got := hw.MonthlyHardware(1, 1, 1); !almost(got, 85.35, 1e-9) {
		t.Fatalf("unit hardware = %v", got)
	}
	if got := hw.MonthlyHardware(8, 32, 100); !almost(got, 65*8+20*32+0.35*100, 1e-9) {
		t.Fatalf("8C32G hardware = %v", got)
	}
}

func TestNEP95thDailyPeak(t *testing.T) {
	peaks := []float64{10, 50, 30, 40, 20, 15, 35}
	// 4th highest of {50,40,35,30,...} = 30.
	if got := NEP95thDailyPeak(peaks); got != 30 {
		t.Fatalf("4th-highest = %v, want 30", got)
	}
	if got := NEP95thDailyPeak([]float64{7, 9}); got != 7 {
		t.Fatalf("short month peak = %v, want 7 (lowest available fallback)", got)
	}
	if NEP95thDailyPeak(nil) != 0 {
		t.Fatal("empty peaks should be 0")
	}
	// Input must not be mutated.
	if peaks[0] != 10 {
		t.Fatal("input mutated")
	}
}

func TestOperatorForSiteStable(t *testing.T) {
	a := OperatorForSite("Guangdong-01")
	if a != OperatorForSite("Guangdong-01") {
		t.Fatal("operator assignment not deterministic")
	}
	valid := map[string]bool{"telecom": true, "unicom": true, "cmcc": true}
	if !valid[a] {
		t.Fatalf("unknown operator %q", a)
	}
}

// --- dataset-level billing ---

var (
	once sync.Once
	nep  *vm.Dataset
)

func trace(t *testing.T) *vm.Dataset {
	t.Helper()
	once.Do(func() {
		var err error
		nep, err = workload.GenerateNEP(rng.New(31), workload.Options{Apps: 50, Days: 14})
		if err != nil {
			panic(err)
		}
	})
	return nep
}

func TestNEPAppBillsBasics(t *testing.T) {
	d := trace(t)
	bills := NEPAppBills(d)
	if len(bills) == 0 {
		t.Fatal("no bills")
	}
	for _, b := range bills {
		if b.Hardware <= 0 {
			t.Fatalf("app %d hardware = %v", b.App, b.Hardware)
		}
		if b.Network < 0 {
			t.Fatalf("app %d network negative", b.App)
		}
		if b.Total() != b.Hardware+b.Network {
			t.Fatal("total mismatch")
		}
	}
}

func TestTable6Shape(t *testing.T) {
	d := trace(t)
	rows := Table6(d, 30)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 2 clouds × 3 models", len(rows))
	}
	get := func(cloud string, m NetworkModel) Table6Row {
		for _, r := range rows {
			if r.Cloud == cloud && r.Model == m {
				return r
			}
		}
		t.Fatalf("missing row %s/%v", cloud, m)
		return Table6Row{}
	}
	for _, cloud := range []string{"vCloud-1", "vCloud-2"} {
		bw := get(cloud, OnDemandBandwidth)
		qty := get(cloud, OnDemandQuantity)
		res := get(cloud, PreReserved)
		// Paper Table 6: clouds cost more on average under every model, and
		// on-demand-by-bandwidth is the cheapest cloud option, pre-reserved
		// the dearest.
		if bw.Mean <= 1 {
			t.Fatalf("%s by-bandwidth mean ratio = %.2f, want >1 (NEP cheaper)", cloud, bw.Mean)
		}
		if !(bw.Median <= qty.Median && qty.Median <= res.Median) {
			t.Fatalf("%s medians not ordered: bw %.2f, qty %.2f, reserved %.2f",
				cloud, bw.Median, qty.Median, res.Median)
		}
		if bw.Mean < 1.2 || bw.Mean > 4.5 {
			t.Fatalf("%s by-bandwidth mean = %.2f, paper reports ~1.8", cloud, bw.Mean)
		}
		if bw.N == 0 || bw.Max <= bw.Min {
			t.Fatalf("%s degenerate ratio spread", cloud)
		}
	}
	// Paper: a few apps are cheaper on the cloud (ratio < 1) — the
	// hardware-heavy or bursty exceptions.
	v1 := get("vCloud-1", OnDemandBandwidth)
	if v1.Min >= 1 && v1.CheaperOnCloud == 0 {
		t.Logf("note: no cloud-cheaper app in this sample (min ratio %.2f)", v1.Min)
	}
}

func TestBreakdownFindings(t *testing.T) {
	d := trace(t)
	b := Breakdown(d, 30)
	// Paper: network dominates NEP bills (76% mean, up to 96%).
	if b.MeanNetworkShare < 0.5 || b.MeanNetworkShare > 0.99 {
		t.Fatalf("mean network share = %.2f, want ~0.76", b.MeanNetworkShare)
	}
	if b.MaxNetworkShare < b.MeanNetworkShare {
		t.Fatal("max share below mean")
	}
	// Paper: NEP charges 3–20% more for hardware, so cloud/NEP < 1 on the
	// storage-exclusive (CPU+memory) comparison; with storage at the
	// published list prices (NEP 0.35 vs cloud 1.0 RMB/GB/month) the
	// all-inclusive ratio may land on either side of 1 for disk-heavy apps.
	if b.ComputeRatioCloudOverNEP >= 1 || b.ComputeRatioCloudOverNEP < 0.6 {
		t.Fatalf("compute ratio cloud/NEP = %.2f, want ~0.8-0.97", b.ComputeRatioCloudOverNEP)
	}
	if b.HardwareRatioCloudOverNEP <= 0 {
		t.Fatal("hardware ratio must be positive")
	}
}

func TestBurstyAppCheaperOnCloud(t *testing.T) {
	// Construct the paper's education counter-example directly: an app
	// whose traffic peaks 3 hours per day. NEP bills the daily peak; the
	// cloud's per-minute on-demand billing only pays for the window.
	d := trace(t)
	bills := NEPAppBills(d)
	cloud := CloudAppBills(d, VCloud1Hardware(), VCloud1Net(), OnDemandBandwidth)
	cloudBy := map[int]AppBill{}
	for _, b := range cloud {
		cloudBy[b.App] = b
	}
	// Find apps with extreme peak-to-mean traffic (education-like).
	apps := d.AppVMs()
	foundBursty := false
	for app, vms := range apps {
		var peak, mean float64
		for _, vi := range vms {
			if bw := d.VMs[vi].PublicBW; bw != nil {
				peak += bw.MaxValue()
				mean += bw.Mean()
			}
		}
		if mean == 0 || peak/mean < 8 {
			continue
		}
		foundBursty = true
		nb := bills[0]
		for _, b := range bills {
			if b.App == app {
				nb = b
			}
		}
		cb := cloudBy[app]
		// The network component must be relatively cheaper on the cloud
		// than for the average app.
		if nb.Network > 0 && cb.Network/nb.Network > 1.2 {
			t.Fatalf("bursty app %d: cloud network %.0f vs NEP %.0f — peak billing should hurt NEP",
				app, cb.Network, nb.Network)
		}
	}
	if !foundBursty {
		t.Skip("no education-like app in this sample")
	}
}

func TestNetworkModelString(t *testing.T) {
	if OnDemandBandwidth.String() == "" || OnDemandQuantity.String() == "" || PreReserved.String() == "" {
		t.Fatal("model names empty")
	}
}

func TestFormatMoney(t *testing.T) {
	if FormatMoney(1.5) != "1.50 RMB" {
		t.Fatalf("FormatMoney = %q", FormatMoney(1.5))
	}
}

// --- property tests on pricing invariants ---

func TestReservedMonotoneProperty(t *testing.T) {
	for _, c := range []CloudNetPricing{VCloud1Net(), VCloud2Net()} {
		if err := quick.Check(func(aRaw, bRaw uint16) bool {
			a := float64(aRaw%2000) / 10
			b := float64(bRaw%2000) / 10
			if a > b {
				a, b = b, a
			}
			return c.ReservedMonthly(a) <= c.ReservedMonthly(b)
		}, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestOnDemandMonotoneProperty(t *testing.T) {
	c := VCloud1Net()
	if err := quick.Check(func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%5000) / 10
		b := float64(bRaw%5000) / 10
		if a > b {
			a, b = b, a
		}
		return c.OnDemandHourly(a) <= c.OnDemandHourly(b)+1e-12
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNEP95thPeakBoundsProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		var peaks []float64
		for _, v := range raw {
			if v >= 0 && v < 1e9 {
				peaks = append(peaks, v)
			}
		}
		if len(peaks) == 0 {
			return true
		}
		got := NEP95thDailyPeak(peaks)
		mn, mx := peaks[0], peaks[0]
		for _, p := range peaks {
			if p < mn {
				mn = p
			}
			if p > mx {
				mx = p
			}
		}
		return got >= mn && got <= mx
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNEP95thPeakBelowMaxWhenEnoughDays(t *testing.T) {
	// With ≥4 distinct daily peaks the billed statistic must discard the
	// top three (the billing elasticity NEP grants its customers).
	peaks := []float64{100, 90, 80, 70, 60, 50}
	if got := NEP95thDailyPeak(peaks); got != 70 {
		t.Fatalf("4th-highest = %v, want 70", got)
	}
}

func TestCloudBillsScaleWithDuration(t *testing.T) {
	// A 7-day observation scaled to a month must cost the same as the same
	// usage observed for 14 days (both represent the same steady state).
	d7 := trace(t)
	bills := CloudAppBills(d7, VCloud1Hardware(), VCloud1Net(), OnDemandQuantity)
	if len(bills) == 0 {
		t.Fatal("no bills")
	}
	for _, b := range bills {
		if b.Network < 0 {
			t.Fatal("negative network bill")
		}
	}
}
