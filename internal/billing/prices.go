// Package billing implements the monetary-cost study of §4.5 and Appendix A:
// NEP's pricing (per-resource hardware rates and 95th-percentile-of-daily-
// peak network billing at province/operator-specific unit prices) and the
// two virtual cloud baselines (vCloud-1 ≈ AliCloud, vCloud-2 ≈ Huawei Cloud)
// with their three network billing models — pre-reserved fixed bandwidth,
// on-demand by bandwidth, and on-demand by traffic quantity. It reproduces
// Table 6 (cost ratios over the heaviest apps) and Table 7 (worked pricing
// examples).
package billing

import (
	"fmt"
	"math"
)

// Money is an amount in RMB.
type Money = float64

// HardwarePricing is the monthly price per resource unit. Cloud platforms
// sell CPU+memory bundles; the per-unit rates here are least-squares fits of
// the Appendix A bundle tables.
type HardwarePricing struct {
	PerVCPUMonth   Money
	PerMemGBMonth  Money
	PerDiskGBMonth Money
}

// MonthlyHardware prices one VM's hardware subscription for a month.
func (p HardwarePricing) MonthlyHardware(vcpus, memGB, diskGB int) Money {
	return p.PerVCPUMonth*float64(vcpus) +
		p.PerMemGBMonth*float64(memGB) +
		p.PerDiskGBMonth*float64(diskGB)
}

// NEPHardware returns NEP's published per-unit rates (Table 7).
func NEPHardware() HardwarePricing {
	return HardwarePricing{PerVCPUMonth: 65, PerMemGBMonth: 20, PerDiskGBMonth: 0.35}
}

// VCloud1Hardware approximates AliCloud's bundles (2C4G=187, 2C8G=240,
// 2C16G=318; storage 1/GB). NEP ends up charging 3–20% more for hardware,
// as §4.5 reports.
func VCloud1Hardware() HardwarePricing {
	return HardwarePricing{PerVCPUMonth: 70, PerMemGBMonth: 13, PerDiskGBMonth: 1.0}
}

// VCloud2Hardware approximates Huawei Cloud's bundles (1C1G=32.2,
// 2C4G=152.2, 2C8G=251.6; storage 0.7/GB).
func VCloud2Hardware() HardwarePricing {
	return HardwarePricing{PerVCPUMonth: 30, PerMemGBMonth: 25, PerDiskGBMonth: 0.7}
}

const hoursPerMonth = 24 * 30

// CloudNetPricing parameterises a cloud's three network billing models.
type CloudNetPricing struct {
	Name string
	// On-demand by bandwidth: hourly per-Mbps rates below/above the 5 Mbps
	// tier boundary.
	HourlyLowPerMbps  Money
	HourlyHighPerMbps Money
	// On-demand by quantity.
	PerGB Money
	// Pre-reserved: cumulative monthly price for 1..5 Mbps, then per-Mbps
	// overage above 5.
	ReservedTier    [5]Money
	ReservedOverage Money
}

// VCloud1Net returns AliCloud's network price card (Appendix A).
func VCloud1Net() CloudNetPricing {
	return CloudNetPricing{
		Name:              "vCloud-1",
		HourlyLowPerMbps:  0.063,
		HourlyHighPerMbps: 0.248,
		PerGB:             0.8,
		ReservedTier:      [5]Money{23, 46, 71, 96, 125},
		ReservedOverage:   80,
	}
}

// VCloud2Net returns Huawei Cloud's network price card (Appendix A).
func VCloud2Net() CloudNetPricing {
	return CloudNetPricing{
		Name:              "vCloud-2",
		HourlyLowPerMbps:  0.063,
		HourlyHighPerMbps: 0.25,
		PerGB:             0.8,
		ReservedTier:      [5]Money{23, 46, 69, 92, 115}, // 23/Mbps flat ≤5
		ReservedOverage:   80,
	}
}

// ReservedMonthly prices a month of pre-reserved fixed bandwidth at mbps
// (rounded up to a whole Mbps).
//
// Worked examples (Table 7): vCloud-1 2 Mbps = 46, 7 Mbps = 125+2×80 = 285;
// vCloud-2 7 Mbps = 115+2×80 = 275.
func (c CloudNetPricing) ReservedMonthly(mbps float64) Money {
	if mbps <= 0 {
		return 0
	}
	n := int(math.Ceil(mbps))
	if n <= 5 {
		return c.ReservedTier[n-1]
	}
	return c.ReservedTier[4] + Money(n-5)*c.ReservedOverage
}

// OnDemandHourly prices one hour at the given instantaneous bandwidth:
// the first 5 Mbps at the low rate, the excess at the high rate.
//
// Worked example (Table 7): 2 Mbps × 720 h = 90.72 on vCloud-1; 7 Mbps ×
// 720 h = 586.8 on vCloud-2. (The paper's vCloud-1 7 Mbps example, 447.84,
// contains an arithmetic slip — it multiplies the low tier by 2 instead of
// 5; we implement the tariff as specified.)
func (c CloudNetPricing) OnDemandHourly(mbps float64) Money {
	if mbps <= 0 {
		return 0
	}
	low := math.Min(mbps, 5)
	high := math.Max(mbps-5, 0)
	return low*c.HourlyLowPerMbps + high*c.HourlyHighPerMbps
}

// QuantityCost prices transferred traffic by volume.
func (c CloudNetPricing) QuantityCost(gb float64) Money {
	if gb < 0 {
		return 0
	}
	return gb * c.PerGB
}

// NEPNetUnitPrice returns NEP's monthly per-Mbps price for a province and
// operator. Prices vary 15–50 RMB/Mbps/month by city and carrier (Table 7:
// guangzhou-telecom 50, chengdu-telecom 25, guangzhou-cmcc 30, chengdu-cmcc
// 15); unlisted combinations get a deterministic in-range rate.
func NEPNetUnitPrice(province, operator string) Money {
	known := map[string]Money{
		"Guangdong/telecom": 50,
		"Sichuan/telecom":   25,
		"Guangdong/cmcc":    30,
		"Sichuan/cmcc":      15,
	}
	if p, ok := known[province+"/"+operator]; ok {
		return p
	}
	// FNV-1a hash → [15,50], deterministic per (province, operator).
	var h uint64 = 14695981039346656037
	for _, b := range []byte(province + "/" + operator) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	base := Money(15 + h%36)
	if operator == "cmcc" && base > 30 {
		base -= 15 // CMCC runs 15–30 per Table 7
	}
	return base
}

// OperatorForSite deterministically assigns a carrier to a site, mirroring
// how NEP sites are hosted by one of the three national ISPs.
func OperatorForSite(siteName string) string {
	ops := []string{"telecom", "unicom", "cmcc"}
	var h uint64 = 1469598103934665603
	for _, b := range []byte(siteName) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return ops[h%3]
}

// NEP95thDailyPeak implements NEP's billing statistic: record the peak
// bandwidth of each day, then bill the 4th-highest daily peak of the month
// (the 95th percentile of ~30 daily values). With fewer than four days it
// falls back to the highest available peak.
func NEP95thDailyPeak(dailyPeaks []float64) float64 {
	if len(dailyPeaks) == 0 {
		return 0
	}
	s := append([]float64(nil), dailyPeaks...)
	// Descending selection of the 4th highest.
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] > s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	idx := 3
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// String renders a Money value for reports.
func FormatMoney(m Money) string { return fmt.Sprintf("%.2f RMB", m) }
