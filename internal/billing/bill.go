package billing

import (
	"fmt"
	"sort"
	"time"

	"edgescope/internal/stats"
	"edgescope/internal/timeseries"
	"edgescope/internal/vm"
)

// NetworkModel selects how a cloud baseline bills network traffic.
type NetworkModel int

// Cloud network billing models (§4.5 / Table 6 columns).
const (
	OnDemandBandwidth NetworkModel = iota
	OnDemandQuantity
	PreReserved
)

// String names the model as in Table 6.
func (m NetworkModel) String() string {
	switch m {
	case OnDemandBandwidth:
		return "on-demand-by-bandwidth"
	case OnDemandQuantity:
		return "on-demand-by-quantity"
	default:
		return "pre-reserved"
	}
}

// AppBill is one app's monthly bill split by component.
type AppBill struct {
	App      int
	Hardware Money
	Network  Money
}

// Total returns hardware plus network.
func (b AppBill) Total() Money { return b.Hardware + b.Network }

// monthScale converts an observed-duration cost to a 30-day month.
func monthScale(d time.Duration) float64 {
	if d <= 0 {
		return 1
	}
	return float64(30*24*time.Hour) / float64(d)
}

// NEPAppBills prices every app's monthly cost on NEP: per-unit hardware
// rates plus, per site, the province/operator unit price applied to the
// 95th-percentile daily-peak bandwidth (traffic of an app's VMs in one site
// is combined, per Appendix A). Per-app bandwidth combines through one
// buffer-recycling accumulator, and sites fold into the bill in ascending
// site order so the summation order (and therefore the bill, bit for bit)
// never depends on map iteration.
func NEPAppBills(d *vm.Dataset) []AppBill {
	hw := NEPHardware()
	apps := d.AppVMs()
	ids := sortedAppIDs(apps)
	out := make([]AppBill, 0, len(ids))
	var siteBW bwAccum[int]
	for _, app := range ids {
		bill := AppBill{App: app}
		siteBW.Reset()
		for _, vi := range apps[app] {
			v := d.VMs[vi]
			bill.Hardware += hw.MonthlyHardware(v.VCPUs, v.MemGB, v.DiskGB)
			if v.PublicBW == nil {
				continue
			}
			siteBW.Add(v.Site, v.PublicBW)
		}
		for _, site := range siteBW.Keys() {
			peak := NEP95thDailyPeak(siteBW.Get(site).DailyPeaks())
			unit := NEPNetUnitPrice(d.Sites[site].Province, OperatorForSite(d.Sites[site].Name))
			bill.Network += unit * peak
		}
		out = append(out, bill)
	}
	return out
}

// CloudAppBills prices every app's monthly cost if its exact workload were
// moved to a virtual cloud baseline: the VM usage is clustered onto the
// cloud's (few) regions by geography — which for billing purposes merges
// each app's bandwidth into one series per region — and priced under the
// given network model.
func CloudAppBills(d *vm.Dataset, hw HardwarePricing, net CloudNetPricing, model NetworkModel) []AppBill {
	apps := d.AppVMs()
	ids := sortedAppIDs(apps)
	scale := monthScale(d.Duration)
	out := make([]AppBill, 0, len(ids))
	var regionBW bwAccum[string]
	for _, app := range ids {
		bill := AppBill{App: app}
		regionBW.Reset()
		for _, vi := range apps[app] {
			v := d.VMs[vi]
			bill.Hardware += hw.MonthlyHardware(v.VCPUs, v.MemGB, v.DiskGB)
			if v.PublicBW == nil {
				continue
			}
			regionBW.Add(regionForProvince(d.Sites[v.Site].Province), v.PublicBW)
		}
		for _, region := range regionBW.Keys() {
			bill.Network += cloudNetworkCost(regionBW.Get(region), net, model, scale)
		}
		out = append(out, bill)
	}
	return out
}

// cloudNetworkCost prices one region-level bandwidth series for a month.
func cloudNetworkCost(bw *timeseries.Series, net CloudNetPricing, model NetworkModel, scale float64) Money {
	switch model {
	case OnDemandBandwidth:
		// The cloud bills fine-grained peak bandwidth (per minute); our
		// series interval is coarser, so each sample is one billing slot.
		hours := bw.Interval.Hours()
		var cost Money
		for _, mbps := range bw.Values {
			cost += net.OnDemandHourly(mbps) * hours
		}
		return cost * scale
	case OnDemandQuantity:
		secs := bw.Interval.Seconds()
		var gb float64
		for _, mbps := range bw.Values {
			gb += mbps * secs / 8 / 1024 // Mbit→GB (1024 Mbit per GB ≈ 10^3 binary)
		}
		return net.QuantityCost(gb) * scale
	case PreReserved:
		// Reserve the observed maximum so the SLA never throttles.
		return net.ReservedMonthly(bw.MaxValue())
	default:
		panic(fmt.Sprintf("billing: unknown network model %d", int(model)))
	}
}

// regionForProvince maps a province to a coarse cloud region (the virtual
// baseline construction of §4.5: cluster NEP usage into the cloud's site
// distribution by geographic distance).
func regionForProvince(province string) string {
	regions := map[string]string{
		"Beijing": "north", "Tianjin": "north", "Hebei": "north",
		"Shandong": "north", "Shanxi": "north", "InnerMongolia": "north",
		"Liaoning": "northeast", "Jilin": "northeast", "Heilongjiang": "northeast",
		"Shanghai": "east", "Jiangsu": "east", "Zhejiang": "east", "Anhui": "east",
		"Fujian": "east", "Jiangxi": "east",
		"Guangdong": "south", "Guangxi": "south", "Hainan": "south",
		"Henan": "central", "Hubei": "central", "Hunan": "central",
		"Chongqing": "southwest", "Sichuan": "southwest", "Guizhou": "southwest",
		"Yunnan": "southwest", "Tibet": "southwest",
		"Shaanxi": "northwest", "Gansu": "northwest", "Qinghai": "northwest",
		"Ningxia": "northwest", "Xinjiang": "northwest",
	}
	if r, ok := regions[province]; ok {
		return r
	}
	return "east"
}

func sortedAppIDs(apps map[int][]int) []int {
	ids := make([]int, 0, len(apps))
	for id := range apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Ratio compares one app's cloud bill to its NEP bill (Table 6 normalises
// to NEP, so >1 means the cloud is dearer).
type Ratio struct {
	App   int
	Value float64
}

// Table6Row summarises one (cloud, model) cell of Table 6 over the N
// heaviest apps.
type Table6Row struct {
	Cloud  string
	Model  NetworkModel
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	// CheaperOnCloud counts apps whose ratio is below 1 — the §4.5
	// exceptions (hardware-heavy or high-variance apps).
	CheaperOnCloud int
	N              int
}

// Table6 computes the cost-ratio summary for both virtual clouds and all
// three network models over the topN apps by NEP bill (paper: 50 heaviest).
func Table6(d *vm.Dataset, topN int) []Table6Row {
	nep := NEPAppBills(d)
	sort.Slice(nep, func(i, j int) bool { return nep[i].Total() > nep[j].Total() })
	if topN > 0 && topN < len(nep) {
		nep = nep[:topN]
	}
	nepByApp := map[int]AppBill{}
	for _, b := range nep {
		nepByApp[b.App] = b
	}

	type cloudSpec struct {
		hw  HardwarePricing
		net CloudNetPricing
	}
	clouds := []cloudSpec{
		{VCloud1Hardware(), VCloud1Net()},
		{VCloud2Hardware(), VCloud2Net()},
	}
	var rows []Table6Row
	for _, cs := range clouds {
		for _, model := range []NetworkModel{OnDemandBandwidth, OnDemandQuantity, PreReserved} {
			cloudBills := CloudAppBills(d, cs.hw, cs.net, model)
			var ratios []float64
			cheaper := 0
			for _, cb := range cloudBills {
				nb, ok := nepByApp[cb.App]
				if !ok || nb.Total() == 0 {
					continue
				}
				ratio := cb.Total() / nb.Total()
				ratios = append(ratios, ratio)
				if ratio < 1 {
					cheaper++
				}
			}
			sum := stats.SummarizeInPlace(ratios)
			rows = append(rows, Table6Row{
				Cloud:          cs.net.Name,
				Model:          model,
				Min:            sum.Min(),
				Max:            sum.Max(),
				Mean:           sum.Mean(),
				Median:         sum.Median(),
				CheaperOnCloud: cheaper,
				N:              sum.Len(),
			})
		}
	}
	return rows
}

// BreakdownSummary carries the §4.5 breakdown findings.
type BreakdownSummary struct {
	// MeanNetworkShare is the average fraction of an app's NEP bill spent
	// on network (paper: 76% on average, up to 96%).
	MeanNetworkShare float64
	MaxNetworkShare  float64
	// HardwareRatioCloudOverNEP is the mean cloud/NEP hardware-cost ratio
	// including storage. Synthetic disk fleets at the published list prices
	// (NEP 0.35 vs AliCloud 1.0 RMB/GB/month) can push this above 1 for
	// disk-heavy apps, so the paper's "NEP charges 3–20% more" claim is
	// checked against the storage-exclusive ratio below.
	HardwareRatioCloudOverNEP float64
	// ComputeRatioCloudOverNEP is the cloud/NEP ratio over CPU+memory only
	// (paper: NEP charges 3–20% more, so this sits below 1).
	ComputeRatioCloudOverNEP float64
}

// Breakdown computes the bill decomposition against vCloud-1.
func Breakdown(d *vm.Dataset, topN int) BreakdownSummary {
	nep := NEPAppBills(d)
	sort.Slice(nep, func(i, j int) bool { return nep[i].Total() > nep[j].Total() })
	if topN > 0 && topN < len(nep) {
		nep = nep[:topN]
	}
	cloud := CloudAppBills(d, VCloud1Hardware(), VCloud1Net(), OnDemandBandwidth)
	cloudByApp := map[int]AppBill{}
	for _, b := range cloud {
		cloudByApp[b.App] = b
	}
	// Per-app CPU+memory-only costs for the compute ratio.
	nepHW, v1HW := NEPHardware(), VCloud1Hardware()
	computeNEP := map[int]Money{}
	computeV1 := map[int]Money{}
	for _, v := range d.VMs {
		computeNEP[v.App] += nepHW.MonthlyHardware(v.VCPUs, v.MemGB, 0)
		computeV1[v.App] += v1HW.MonthlyHardware(v.VCPUs, v.MemGB, 0)
	}
	var out BreakdownSummary
	var shares, hwRatios, compRatios []float64
	for _, b := range nep {
		if b.Total() == 0 {
			continue
		}
		share := b.Network / b.Total()
		shares = append(shares, share)
		if cb, ok := cloudByApp[b.App]; ok && b.Hardware > 0 {
			hwRatios = append(hwRatios, cb.Hardware/b.Hardware)
		}
		if nc := computeNEP[b.App]; nc > 0 {
			compRatios = append(compRatios, computeV1[b.App]/nc)
		}
	}
	out.MeanNetworkShare = stats.Mean(shares)
	out.MaxNetworkShare = stats.Max(shares)
	out.HardwareRatioCloudOverNEP = stats.Mean(hwRatios)
	out.ComputeRatioCloudOverNEP = stats.Mean(compRatios)
	return out
}
