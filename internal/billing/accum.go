package billing

import (
	"cmp"
	"slices"

	"edgescope/internal/timeseries"
)

// bwAccum accumulates bandwidth series grouped by a key (site index for NEP,
// region name for the virtual clouds), recycling its backing arrays across
// groups. The per-app billing walks used to build a fresh Clone-and-Add
// chain for every app — one full series allocation per VM, the dominant
// allocation source of Table 6 — whereas an accumulator allocates one series
// per distinct key over the whole walk and then reuses it.
//
// Keys returns the keys touched since the last Reset in sorted order, so the
// caller's fold over groups is deterministic: map iteration order must never
// decide the floating-point summation order of a bill.
type bwAccum[K cmp.Ordered] struct {
	entries map[K]*timeseries.Series
	used    []K
}

// Reset starts a new group (a new app), keeping every backing array.
func (a *bwAccum[K]) Reset() { a.used = a.used[:0] }

// Add folds bw into the key's series. The first touch of a key in this group
// reuses the key's retained buffer when shapes match (or clones when the key
// is new); later touches accumulate in place.
func (a *bwAccum[K]) Add(key K, bw *timeseries.Series) {
	if a.entries == nil {
		a.entries = map[K]*timeseries.Series{}
	}
	e, ok := a.entries[key]
	if ok && slices.Contains(a.used, key) {
		e.AddInPlace(bw)
		return
	}
	if ok && len(e.Values) == len(bw.Values) {
		e.Start, e.Interval = bw.Start, bw.Interval
		copy(e.Values, bw.Values)
	} else {
		e = bw.Clone()
		a.entries[key] = e
	}
	a.used = append(a.used, key)
}

// Keys returns the keys of the current group in ascending order. The slice
// is owned by the accumulator and valid until the next Add or Reset.
func (a *bwAccum[K]) Keys() []K {
	slices.Sort(a.used)
	return a.used
}

// Get returns the accumulated series for a key of the current group.
func (a *bwAccum[K]) Get(key K) *timeseries.Series { return a.entries[key] }
