package predict

import (
	"strconv"
	"testing"

	"edgescope/internal/rng"
)

// lstmGolden pins the exact FitPredict output (hex float64, bit for bit) of
// the LSTM on a fixed seed and series. The values were captured from the
// pre-slab implementation that allocated fresh per-step records and
// per-window gradient buffers; the buffer-reuse refactor must not move a
// single bit. If a deliberate numeric change to the model ever lands,
// regenerate these with the loop printed in the test below.
var lstmGolden = []string{
	"0x1.b22dceaeb9ce7p+04",
	"0x1.a7ea679227c9fp+04",
	"0x1.a1f13d18dc222p+04",
	"0x1.9cf9c9ea9bc57p+04",
	"0x1.98f4db4dad538p+04",
	"0x1.951e31d12e88fp+04",
	"0x1.945ce45b30425p+04",
	"0x1.91930deb2b7aep+04",
	"0x1.906097a8d653ep+04",
	"0x1.8efa162ebed27p+04",
	"0x1.8ee9492da8716p+04",
	"0x1.8e78120754c67p+04",
	"0x1.8fbf4221e50a8p+04",
	"0x1.90bb534d1800bp+04",
	"0x1.91980597fcdcbp+04",
	"0x1.9302810e5866fp+04",
	"0x1.931ae393375d6p+04",
	"0x1.9356ea5ab4ce8p+04",
	"0x1.92f437a159b2bp+04",
	"0x1.93f0ca500d3aap+04",
	"0x1.951eef8e645c1p+04",
	"0x1.954dd0e603251p+04",
	"0x1.959c2484dcd12p+04",
	"0x1.96c91ad329533p+04",
	"0x1.991496fe3180ap+04",
	"0x1.9a8ec9255c10ep+04",
	"0x1.9c3c2bbeb419p+04",
	"0x1.9d93324b61d96p+04",
	"0x1.9d9e960d7c4d1p+04",
	"0x1.9dd31cd11532dp+04",
	"0x1.9f202b3e6411ap+04",
	"0x1.9f8cfbdc52514p+04",
	"0x1.a1dfff6b8b0e4p+04",
	"0x1.a260c03956deap+04",
	"0x1.a399cb21e19b2p+04",
	"0x1.a666e2c69778p+04",
	"0x1.a82887338ab66p+04",
	"0x1.a8d57572188e6p+04",
	"0x1.a9c3cbd87f827p+04",
	"0x1.a9d22205fa41p+04",
	"0x1.ab3618b5c0208p+04",
	"0x1.ac7799cf2f36ap+04",
	"0x1.ad04922c3629p+04",
	"0x1.aebd740492af9p+04",
	"0x1.af5b4cbc62e84p+04",
	"0x1.b0839e574fb95p+04",
	"0x1.b05f0ff870ebp+04",
	"0x1.b109e419db63p+04",
}

// lstmGoldenInput regenerates the exact series the goldens were captured on.
func lstmGoldenInput() (train, test []float64) {
	r := rng.New(42)
	const period = 48
	data := make([]float64, period*6)
	for i := range data {
		data[i] = 20 + 10*float64(i%period)/period + r.Normal(0, 0.5)
	}
	return data[:period*5], data[period*5:]
}

func TestLSTMFitPredictGolden(t *testing.T) {
	train, test := lstmGoldenInput()
	l := NewLSTM(7)
	l.Epochs = 3
	out, err := l.FitPredict(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(lstmGolden) {
		t.Fatalf("got %d predictions, want %d", len(out), len(lstmGolden))
	}
	for i, hex := range lstmGolden {
		want, err := strconv.ParseFloat(hex, 64)
		if err != nil {
			t.Fatalf("golden %d unparsable: %v", i, err)
		}
		if out[i] != want {
			t.Fatalf("prediction %d = %x, want %s (buffer reuse changed the arithmetic)", i, out[i], hex)
		}
	}
}

// TestLSTMFreshModelsIdentical guards the scratch against cross-call state:
// two independently constructed models with the same seed must produce the
// same bits. (A *reused* model value is intentionally not idempotent — init
// has always carried the trained read-out bias into the next call.)
func TestLSTMFreshModelsIdentical(t *testing.T) {
	train, test := lstmGoldenInput()
	run := func() []float64 {
		l := NewLSTM(7)
		l.Epochs = 3
		out, err := l.FitPredict(train, test)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fresh model 2 diverged at %d: %x vs %x", i, a[i], b[i])
		}
	}
}
