package predict

import (
	"fmt"

	"edgescope/internal/stats"
)

// TuneHoltWinters grid-searches the smoothing parameters on a holdout split
// of the training data (last holdoutFrac of train), returning the
// best-scoring forecaster. Workload-prediction practice tunes these rather
// than fixing them; the grid is small because Holt-Winters is cheap.
func TuneHoltWinters(train []float64, period int, holdoutFrac float64) (*HoltWinters, error) {
	if holdoutFrac <= 0 || holdoutFrac >= 0.5 {
		holdoutFrac = 0.25
	}
	cut := int(float64(len(train)) * (1 - holdoutFrac))
	if cut < 2*period || len(train)-cut < 2 {
		return nil, fmt.Errorf("predict: train too short to tune (need ≥%d, have %d)", 2*period+2, len(train))
	}
	fit, hold := train[:cut], train[cut:]

	alphas := []float64{0.15, 0.35, 0.6}
	gammas := []float64{0.15, 0.35, 0.6}
	betas := []float64{0.0, 0.02, 0.1}

	var best *HoltWinters
	bestRMSE := 0.0
	for _, a := range alphas {
		for _, g := range gammas {
			for _, b := range betas {
				hw := &HoltWinters{Period: period, Alpha: a, Beta: b, Gamma: g}
				pred, err := hw.FitPredict(fit, hold)
				if err != nil {
					return nil, err
				}
				rmse := stats.RMSE(pred, hold)
				if best == nil || rmse < bestRMSE {
					best = hw // FitPredict keeps no state on the receiver
					bestRMSE = rmse
				}
			}
		}
	}
	return best, nil
}
