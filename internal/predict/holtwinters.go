// Package predict implements the paper's §4.4 VM-usage forecasting study:
// Holt-Winters triple exponential smoothing and a from-scratch LSTM (one
// layer, 24 hidden units — 2,496 weights, matching the paper's model),
// evaluated by rolling one-step-ahead RMSE on 30-minute max/mean CPU windows
// with a 3-week train / 1-week test split (Figure 14).
package predict

import "fmt"

// Forecaster produces rolling one-step-ahead predictions: it trains on
// train, then emits one prediction per element of test, observing each
// actual value after predicting it.
type Forecaster interface {
	Name() string
	FitPredict(train, test []float64) ([]float64, error)
}

// HoltWinters is additive triple exponential smoothing with a daily
// seasonal period, the classical statistical baseline for workload
// prediction (Chatfield 1978).
type HoltWinters struct {
	// Period is the seasonal cycle length in samples (48 for 30-minute
	// windows over a day).
	Period int
	// Alpha, Beta, Gamma are the level, trend and seasonal smoothing
	// factors in (0,1).
	Alpha, Beta, Gamma float64
}

// NewHoltWinters returns a forecaster with the conventional smoothing
// parameters used by workload-prediction literature.
func NewHoltWinters(period int) *HoltWinters {
	return &HoltWinters{Period: period, Alpha: 0.35, Beta: 0.02, Gamma: 0.35}
}

// Name implements Forecaster.
func (h *HoltWinters) Name() string { return "holt-winters" }

// FitPredict implements Forecaster. It requires at least two full seasons
// of training data.
func (h *HoltWinters) FitPredict(train, test []float64) ([]float64, error) {
	m := h.Period
	if m <= 1 {
		return nil, fmt.Errorf("predict: period %d must exceed 1", m)
	}
	if len(train) < 2*m {
		return nil, fmt.Errorf("predict: need ≥%d training samples, have %d", 2*m, len(train))
	}
	if h.Alpha <= 0 || h.Alpha >= 1 || h.Beta < 0 || h.Beta >= 1 || h.Gamma <= 0 || h.Gamma >= 1 {
		return nil, fmt.Errorf("predict: smoothing factors out of range")
	}

	// Initialise level/trend from the first two seasons, seasonals from the
	// first season's deviations.
	var s1, s2 float64
	for i := 0; i < m; i++ {
		s1 += train[i]
		s2 += train[m+i]
	}
	s1 /= float64(m)
	s2 /= float64(m)
	level := s1
	trend := (s2 - s1) / float64(m)
	season := make([]float64, m)
	for i := 0; i < m; i++ {
		season[i] = train[i] - s1
	}

	step := func(t int, x float64) {
		si := t % m
		prevLevel := level
		level = h.Alpha*(x-season[si]) + (1-h.Alpha)*(level+trend)
		trend = h.Beta*(level-prevLevel) + (1-h.Beta)*trend
		season[si] = h.Gamma*(x-level) + (1-h.Gamma)*season[si]
	}

	// Burn through the training data.
	for t, x := range train {
		step(t, x)
	}

	// Rolling one-step-ahead predictions over the test window.
	out := make([]float64, len(test))
	offset := len(train)
	for i, x := range test {
		t := offset + i
		out[i] = level + trend + season[t%m]
		step(t, x)
	}
	return out, nil
}
