package predict

import (
	"fmt"
	"time"

	"edgescope/internal/stats"
	"edgescope/internal/timeseries"
	"edgescope/internal/vm"
)

// Target selects which half-hour aggregate is being forecast.
type Target int

// Forecast targets of Figure 14.
const (
	MaxCPU Target = iota
	MeanCPU
)

// String names the target.
func (t Target) String() string {
	if t == MaxCPU {
		return "max-cpu"
	}
	return "mean-cpu"
}

// Options configures the Figure 14 evaluation.
type Options struct {
	// Window is the aggregation window (paper: 30 minutes).
	Window time.Duration
	// TrainFrac is the training share (paper: 3 of 4 weeks = 0.75).
	TrainFrac float64
	// MaxVMs bounds how many VMs are evaluated (0 = all).
	MaxVMs int
	// LSTMEpochs caps LSTM training epochs (0 = default).
	LSTMEpochs int
	// Models filters which models run; empty means both.
	Models []string
}

func (o *Options) fill() {
	if o.Window == 0 {
		o.Window = 30 * time.Minute
	}
	if o.TrainFrac == 0 {
		o.TrainFrac = 0.75
	}
	if len(o.Models) == 0 {
		o.Models = []string{"holt-winters", "lstm"}
	}
}

// Result is one (VM, model, target) RMSE in CPU percentage points.
type Result struct {
	VMIndex int
	Model   string
	Target  Target
	RMSE    float64
}

// Evaluate runs the Figure 14 experiment over a dataset: per VM and target,
// rolling one-step-ahead forecasts on the test week, scored by RMSE.
func Evaluate(d *vm.Dataset, opts Options) ([]Result, error) {
	opts.fill()
	n := len(d.VMs)
	if opts.MaxVMs > 0 && opts.MaxVMs < n {
		n = opts.MaxVMs
	}
	var out []Result
	// One resample buffer serves every (VM, target) iteration: the models
	// only read train/test, and both are consumed before the next resample
	// overwrites the buffer.
	var series timeseries.Series
	for vi := 0; vi < n; vi++ {
		cpu := d.VMs[vi].CPU
		if opts.Window%cpu.Interval != 0 {
			return nil, fmt.Errorf("predict: window %v not a multiple of series interval %v",
				opts.Window, cpu.Interval)
		}
		period := int(24 * time.Hour / opts.Window)
		for _, target := range []Target{MaxCPU, MeanCPU} {
			agg := timeseries.AggMax
			if target == MeanCPU {
				agg = timeseries.AggMean
			}
			cpu.ResampleInto(&series, opts.Window, agg)
			split := int(float64(series.Len()) * opts.TrainFrac)
			if split < 2*period || series.Len()-split < period/2 {
				continue // series too short for this split
			}
			train := series.Values[:split]
			test := series.Values[split:]
			for _, model := range opts.Models {
				f, err := buildModel(model, period, uint64(vi), opts)
				if err != nil {
					return nil, err
				}
				pred, err := f.FitPredict(train, test)
				if err != nil {
					return nil, fmt.Errorf("predict: VM %d %s: %w", vi, model, err)
				}
				out = append(out, Result{
					VMIndex: vi,
					Model:   f.Name(),
					Target:  target,
					RMSE:    stats.RMSE(pred, test),
				})
			}
		}
	}
	return out, nil
}

func buildModel(name string, period int, seed uint64, opts Options) (Forecaster, error) {
	switch name {
	case "holt-winters":
		return NewHoltWinters(period), nil
	case "lstm":
		l := NewLSTM(seed + 1)
		if opts.LSTMEpochs > 0 {
			l.Epochs = opts.LSTMEpochs
		}
		return l, nil
	default:
		return nil, fmt.Errorf("predict: unknown model %q", name)
	}
}

// RMSEs extracts the RMSE distribution for one (model, target) pair.
func RMSEs(results []Result, model string, target Target) []float64 {
	var out []float64
	for _, r := range results {
		if r.Model == model && r.Target == target {
			out = append(out, r.RMSE)
		}
	}
	return out
}

// MedianRMSE is a convenience over RMSEs.
func MedianRMSE(results []Result, model string, target Target) float64 {
	return stats.Median(RMSEs(results, model, target))
}
