package predict

import (
	"fmt"
	"math"

	"edgescope/internal/mathx"
	"edgescope/internal/rng"
)

// LSTM is a single-layer LSTM regressor with a linear read-out, trained by
// truncated backpropagation through time with Adam. With the paper's
// configuration (1 input, 24 hidden units) it carries 4·24·(1+24+1) = 2,496
// gate weights, matching the model of §4.4.
type LSTM struct {
	// Hidden is the number of hidden units (paper: 24).
	Hidden int
	// Epochs over the training sequence (default 8).
	Epochs int
	// Window is the truncated-BPTT length (default 48 = one day of
	// 30-minute samples).
	Window int
	// LearningRate for Adam (default 0.01).
	LearningRate float64
	// Seed for weight initialisation.
	Seed uint64

	h int // cached Hidden

	// Parameters: wx maps [x; hPrev] (1+h wide) to the 4 gate blocks
	// (i,f,g,o), each h units; b is the gate bias; wo/bo the read-out.
	wx []float64 // (4h) × (1+h), row-major
	b  []float64 // 4h
	wo []float64 // h
	bo float64

	// Forward-pass scratch: zbuf holds the 4h pre-activations of one
	// step, abuf the 3h sigmoid-gate arguments batched through one
	// mathx.ExpBulk call (bit-identical to per-call math.Exp on the
	// default path).
	zbuf, abuf []float64

	// Normalisation fitted on train.
	lo, scale float64
}

// NewLSTM returns the paper-sized model (24 hidden units).
func NewLSTM(seed uint64) *LSTM {
	return &LSTM{Hidden: 24, Epochs: 8, Window: 48, LearningRate: 0.01, Seed: seed}
}

// Name implements Forecaster.
func (l *LSTM) Name() string { return "lstm" }

// NumWeights returns the gate-weight count (the paper quotes 2,496).
func (l *LSTM) NumWeights() int {
	h := l.Hidden
	return 4 * h * (1 + h + 1)
}

func (l *LSTM) init() {
	l.h = l.Hidden
	r := rng.New(l.Seed)
	in := 1 + l.h
	l.wx = make([]float64, 4*l.h*in)
	bound := 1 / math.Sqrt(float64(in))
	for i := range l.wx {
		l.wx[i] = r.Uniform(-bound, bound)
	}
	l.b = make([]float64, 4*l.h)
	// Forget-gate bias starts at 1 (standard practice for gradient flow).
	for i := l.h; i < 2*l.h; i++ {
		l.b[i] = 1
	}
	l.wo = make([]float64, l.h)
	for i := range l.wo {
		l.wo[i] = r.Uniform(-bound, bound)
	}
	l.zbuf = make([]float64, 4*l.h)
	l.abuf = make([]float64, 3*l.h)
}

// cell state carried across steps.
type cellState struct{ h, c []float64 }

func (l *LSTM) newState() cellState {
	return cellState{h: make([]float64, l.h), c: make([]float64, l.h)}
}

// stepRecord stores one timestep's activations for backprop. Its nine
// per-unit vectors are sub-slices of one flat slab owned by lstmScratch —
// the per-step seven-make allocation pattern here was where the bulk of
// Figure 14's 273k allocations per run lived.
type stepRecord struct {
	x          float64
	hPrev      []float64
	cPrev      []float64
	i, f, g, o []float64
	c, tanhC   []float64
	h          []float64
	yhat       float64
}

// recVectors is the number of length-h vectors a stepRecord carries.
const recVectors = 9

// lstmScratch holds every buffer one FitPredict call needs, allocated once
// and reused across BPTT windows and epochs: the step records (backed by a
// single flat slab), the gradient slabs, the four swap buffers that carry
// dh/dc across steps, and the one-element read-out vectors Adam updates.
type lstmScratch struct {
	slab []float64
	recs []stepRecord

	gWx, gB, gWo []float64
	dh           []float64
	dhA, dcA     []float64 // swap pair: dhNext/dcNext
	dhB, dcB     []float64 // swap pair: dhPrev/dcPrev
	bo, gBo      []float64
}

func newLSTMScratch(h, steps, in int) *lstmScratch {
	sc := &lstmScratch{
		slab: make([]float64, steps*recVectors*h),
		recs: make([]stepRecord, steps),
		gWx:  make([]float64, 4*h*in),
		gB:   make([]float64, 4*h),
		gWo:  make([]float64, h),
		dh:   make([]float64, h),
		dhA:  make([]float64, h),
		dcA:  make([]float64, h),
		dhB:  make([]float64, h),
		dcB:  make([]float64, h),
		bo:   make([]float64, 1),
		gBo:  make([]float64, 1),
	}
	for k := range sc.recs {
		base := k * recVectors * h
		cut := func(i int) []float64 { return sc.slab[base+i*h : base+(i+1)*h : base+(i+1)*h] }
		sc.recs[k] = stepRecord{
			hPrev: cut(0), cPrev: cut(1),
			i: cut(2), f: cut(3), g: cut(4), o: cut(5),
			c: cut(6), tanhC: cut(7), h: cut(8),
		}
	}
	return sc
}

// forward runs one step into rec (whose vectors are already sized h) and
// updates st.
//
// The gate matvec is blocked over the flat 4h×(1+h) slab: the four gate
// rows of unit u are hoisted into bounds-check-free row slices and their
// dot products run fused in one pass over hPrev — four independent
// accumulator chains per hPrev load, each accumulating in the original
// k order so every sum is bit-identical to the scalar loop. The three
// sigmoid gates' exponentials are then batched through one ExpBulk call.
// TestLSTMFitPredictGolden pins the whole pass to hex goldens.
func (l *LSTM) forward(x float64, st *cellState, rec *stepRecord) {
	h := l.h
	rec.x = x
	copy(rec.hPrev, st.h)
	copy(rec.cPrev, st.c)
	in := 1 + h
	wx := l.wx
	hPrev := rec.hPrev
	z := l.zbuf
	for u := 0; u < h; u++ {
		// input column 0 is x; columns 1..h are hPrev.
		ri := wx[(0*h+u)*in : (0*h+u+1)*in]
		rf := wx[(1*h+u)*in : (1*h+u+1)*in]
		rg := wx[(2*h+u)*in : (2*h+u+1)*in]
		ro := wx[(3*h+u)*in : (3*h+u+1)*in]
		zi := ri[0] * x
		zf := rf[0] * x
		zg := rg[0] * x
		zo := ro[0] * x
		ri = ri[1:][:len(hPrev)]
		rf = rf[1:][:len(hPrev)]
		rg = rg[1:][:len(hPrev)]
		ro = ro[1:][:len(hPrev)]
		for k, hp := range hPrev {
			zi += ri[k] * hp
			zf += rf[k] * hp
			zg += rg[k] * hp
			zo += ro[k] * hp
		}
		z[0*h+u] = zi
		z[1*h+u] = zf
		z[2*h+u] = zg
		z[3*h+u] = zo
	}
	// Batched activations: sigmoid(v) = 1/(1+exp(-v)), with the three
	// sigmoid gates' exp(-v) evaluated in one bulk call.
	a := l.abuf
	b := l.b
	for u := 0; u < h; u++ {
		a[0*h+u] = -(z[0*h+u] + b[0*h+u])
		a[1*h+u] = -(z[1*h+u] + b[1*h+u])
		a[2*h+u] = -(z[3*h+u] + b[3*h+u])
	}
	mathx.ExpBulk(a, a)
	for u := 0; u < h; u++ {
		rec.i[u] = 1 / (1 + a[0*h+u])
		rec.f[u] = 1 / (1 + a[1*h+u])
		rec.g[u] = math.Tanh(z[2*h+u] + b[2*h+u])
		rec.o[u] = 1 / (1 + a[2*h+u])
		rec.c[u] = rec.f[u]*rec.cPrev[u] + rec.i[u]*rec.g[u]
		rec.tanhC[u] = math.Tanh(rec.c[u])
		rec.h[u] = rec.o[u] * rec.tanhC[u]
	}
	yhat := l.bo
	wo := l.wo[:h]
	for u, hv := range rec.h {
		yhat += wo[u] * hv
	}
	rec.yhat = yhat
	copy(st.h, rec.h)
	copy(st.c, rec.c)
}

// adam holds optimiser moments for one parameter vector.
type adam struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adam { return &adam{m: make([]float64, n), v: make([]float64, n)} }

func (a *adam) update(w, g []float64, lr float64) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	a.t++
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i := range w {
		a.m[i] = b1*a.m[i] + (1-b1)*g[i]
		a.v[i] = b2*a.v[i] + (1-b2)*g[i]*g[i]
		w[i] -= lr * (a.m[i] / c1) / (math.Sqrt(a.v[i]/c2) + eps)
	}
}

// FitPredict implements Forecaster: trains on train with truncated BPTT and
// then rolls through test, predicting one step ahead.
func (l *LSTM) FitPredict(train, test []float64) ([]float64, error) {
	if l.Hidden <= 0 {
		return nil, fmt.Errorf("predict: LSTM hidden size must be positive")
	}
	if l.Epochs <= 0 {
		l.Epochs = 8
	}
	if l.Window <= 0 {
		l.Window = 48
	}
	if l.LearningRate <= 0 {
		l.LearningRate = 0.01
	}
	if len(train) < l.Window+1 {
		return nil, fmt.Errorf("predict: need ≥%d training samples, have %d", l.Window+1, len(train))
	}
	l.init()

	// Min-max normalisation from the training window.
	l.lo, l.scale = math.Inf(1), 0
	hi := math.Inf(-1)
	for _, x := range train {
		if x < l.lo {
			l.lo = x
		}
		if x > hi {
			hi = x
		}
	}
	l.scale = hi - l.lo
	if l.scale == 0 {
		l.scale = 1
	}
	norm := func(x float64) float64 { return (x - l.lo) / l.scale }
	denorm := func(y float64) float64 { return y*l.scale + l.lo }

	in := 1 + l.h
	optWx := newAdam(len(l.wx))
	optB := newAdam(len(l.b))
	optWo := newAdam(len(l.wo))
	optBo := newAdam(1)

	// One scratch serves every window of every epoch (and the prediction
	// roll below): the old per-window gradient buffers and per-step records
	// are now zeroed slabs, not fresh allocations.
	sc := newLSTMScratch(l.h, l.Window, in)

	for epoch := 0; epoch < l.Epochs; epoch++ {
		st := l.newState()
		for begin := 0; begin+1 < len(train); begin += l.Window {
			end := begin + l.Window
			if end+1 > len(train) {
				end = len(train) - 1
			}
			// Forward through the window.
			recs := sc.recs[:end-begin]
			for t := begin; t < end; t++ {
				l.forward(norm(train[t]), &st, &recs[t-begin])
			}
			// Backward.
			gWx, gB, gWo := sc.gWx, sc.gB, sc.gWo
			clear(gWx)
			clear(gB)
			clear(gWo)
			var gBo float64
			dhNext, dcNext := sc.dhA, sc.dcA
			dhPrev, dcPrev := sc.dhB, sc.dcB
			clear(dhNext)
			clear(dcNext)
			for k := len(recs) - 1; k >= 0; k-- {
				rec := &recs[k]
				target := norm(train[begin+k+1])
				dy := 2 * (rec.yhat - target) / float64(len(recs))
				gBo += dy
				dh := sc.dh
				for u := 0; u < l.h; u++ {
					gWo[u] += dy * rec.h[u]
					dh[u] = dy*l.wo[u] + dhNext[u]
				}
				// dhPrev accumulates and must start from zero each step;
				// dcPrev is fully assigned below and needs no clear.
				clear(dhPrev)
				// Blocked BPTT kernel: the four gate rows of unit u are
				// hoisted into bounds-check-free slices and the weight-
				// gradient scatter and dhPrev gather run fused in one
				// pass over k. Per dhPrev[kk] the four contributions add
				// in the original i,f,g,o order (they were blk-outer,
				// kk-inner before; per memory location the order is
				// unchanged), and each gWx cell keeps its single
				// accumulator, so the gradients are bit-identical.
				hu := l.h
				for u := 0; u < hu; u++ {
					do := dh[u] * rec.tanhC[u]
					dc := dh[u]*rec.o[u]*(1-rec.tanhC[u]*rec.tanhC[u]) + dcNext[u]
					di := dc * rec.g[u]
					dg := dc * rec.i[u]
					df := dc * rec.cPrev[u]
					dcPrev[u] = dc * rec.f[u]

					dzi := di * rec.i[u] * (1 - rec.i[u])
					dzf := df * rec.f[u] * (1 - rec.f[u])
					dzg := dg * (1 - rec.g[u]*rec.g[u])
					dzo := do * rec.o[u] * (1 - rec.o[u])

					gB[0*hu+u] += dzi
					gB[1*hu+u] += dzf
					gB[2*hu+u] += dzg
					gB[3*hu+u] += dzo
					gi := gWx[(0*hu+u)*in : (0*hu+u+1)*in]
					gf := gWx[(1*hu+u)*in : (1*hu+u+1)*in]
					gg := gWx[(2*hu+u)*in : (2*hu+u+1)*in]

					go_ := gWx[(3*hu+u)*in : (3*hu+u+1)*in]
					gi[0] += dzi * rec.x
					gf[0] += dzf * rec.x
					gg[0] += dzg * rec.x
					go_[0] += dzo * rec.x
					wi := l.wx[(0*hu+u)*in : (0*hu+u+1)*in]
					wf := l.wx[(1*hu+u)*in : (1*hu+u+1)*in]
					wg := l.wx[(2*hu+u)*in : (2*hu+u+1)*in]
					wo := l.wx[(3*hu+u)*in : (3*hu+u+1)*in]
					hp := rec.hPrev
					dhp := dhPrev[:len(hp)]
					gi = gi[1:][:len(hp)]
					gf = gf[1:][:len(hp)]
					gg = gg[1:][:len(hp)]
					go_ = go_[1:][:len(hp)]
					wi = wi[1:][:len(hp)]
					wf = wf[1:][:len(hp)]
					wg = wg[1:][:len(hp)]
					wo = wo[1:][:len(hp)]
					for kk, hpk := range hp {
						gi[kk] += dzi * hpk
						gf[kk] += dzf * hpk
						gg[kk] += dzg * hpk
						go_[kk] += dzo * hpk
						s := dhp[kk]
						s += dzi * wi[kk]
						s += dzf * wf[kk]
						s += dzg * wg[kk]
						s += dzo * wo[kk]
						dhp[kk] = s
					}
				}
				dhNext, dhPrev = dhPrev, dhNext
				dcNext, dcPrev = dcPrev, dcNext
			}
			clip(gWx, 5)
			clip(gB, 5)
			clip(gWo, 5)
			optWx.update(l.wx, gWx, l.LearningRate)
			optB.update(l.b, gB, l.LearningRate)
			optWo.update(l.wo, gWo, l.LearningRate)
			sc.bo[0], sc.gBo[0] = l.bo, gBo
			optBo.update(sc.bo, sc.gBo, l.LearningRate)
			l.bo = sc.bo[0]
		}
	}

	// Prime the state on the tail of train (the last forward's yhat predicts
	// test[0]), then roll through test one step ahead.
	st := l.newState()
	rec := &sc.recs[0]
	var lastY float64
	for _, x := range train {
		l.forward(norm(x), &st, rec)
		lastY = rec.yhat
	}
	out := make([]float64, len(test))
	for i, actual := range test {
		out[i] = denorm(lastY)
		l.forward(norm(actual), &st, rec)
		lastY = rec.yhat
	}
	return out, nil
}

// BenchForward exposes the forward kernel in isolation for benchmarks:
// it initialises the model if needed, then runs one forward step per
// element of xs through a single reused record, returning the final
// prediction so the work cannot be optimised away.
func (l *LSTM) BenchForward(xs []float64) float64 {
	if l.h == 0 {
		if l.Hidden <= 0 {
			l.Hidden = 24
		}
		l.init()
	}
	sc := newLSTMScratch(l.h, 1, 1+l.h)
	st := l.newState()
	rec := &sc.recs[0]
	for _, x := range xs {
		l.forward(x, &st, rec)
	}
	return rec.yhat
}

// clip bounds the L2 norm of a gradient vector.
func clip(g []float64, maxNorm float64) {
	var s float64
	for _, x := range g {
		s += x * x
	}
	n := math.Sqrt(s)
	if n <= maxNorm || n == 0 {
		return
	}
	f := maxNorm / n
	for i := range g {
		g[i] *= f
	}
}
