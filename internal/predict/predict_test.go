package predict

import (
	"math"
	"testing"
	"time"

	"edgescope/internal/rng"
	"edgescope/internal/stats"
	"edgescope/internal/workload"
)

// synthetic builds a seasonal series with controllable noise.
func synthetic(n, period int, amp, noise float64, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 10 + amp*math.Sin(2*math.Pi*float64(i)/float64(period)) + r.Normal(0, noise)
	}
	return out
}

func TestHoltWintersLearnsSeasonality(t *testing.T) {
	const period = 48
	data := synthetic(period*28, period, 5, 0.3, 1)
	split := period * 21
	hw := NewHoltWinters(period)
	pred, err := hw.FitPredict(data[:split], data[split:])
	if err != nil {
		t.Fatal(err)
	}
	rmse := stats.RMSE(pred, data[split:])
	if rmse > 1.0 {
		t.Fatalf("HW RMSE = %.3f on clean seasonal data, want <1", rmse)
	}
	// Must beat a naive last-value-of-season predictor's error bound of the
	// raw amplitude.
	if rmse > 2 {
		t.Fatal("HW failed to learn the cycle")
	}
}

func TestHoltWintersBeatsMeanOnSeasonal(t *testing.T) {
	const period = 24
	data := synthetic(period*20, period, 8, 0.5, 2)
	split := period * 15
	hw := NewHoltWinters(period)
	pred, err := hw.FitPredict(data[:split], data[split:])
	if err != nil {
		t.Fatal(err)
	}
	test := data[split:]
	m := stats.Mean(data[:split])
	flat := make([]float64, len(test))
	for i := range flat {
		flat[i] = m
	}
	if stats.RMSE(pred, test) >= stats.RMSE(flat, test) {
		t.Fatal("HW no better than predicting the mean")
	}
}

func TestHoltWintersValidation(t *testing.T) {
	hw := NewHoltWinters(48)
	if _, err := hw.FitPredict(make([]float64, 10), nil); err == nil {
		t.Fatal("expected error for short training data")
	}
	hw2 := NewHoltWinters(1)
	if _, err := hw2.FitPredict(make([]float64, 100), nil); err == nil {
		t.Fatal("expected error for period 1")
	}
	hw3 := NewHoltWinters(4)
	hw3.Alpha = 2
	if _, err := hw3.FitPredict(make([]float64, 100), nil); err == nil {
		t.Fatal("expected error for bad alpha")
	}
}

func TestLSTMWeightCount(t *testing.T) {
	l := NewLSTM(1)
	// Paper: 1 layer, 24 units, 2,496 weights.
	if got := l.NumWeights(); got != 2496 {
		t.Fatalf("NumWeights = %d, want 2496", got)
	}
}

func TestLSTMLearnsSeasonality(t *testing.T) {
	const period = 24
	data := synthetic(period*12, period, 5, 0.2, 3)
	split := period * 9
	l := NewLSTM(4)
	l.Epochs = 6
	l.Window = period
	pred, err := l.FitPredict(data[:split], data[split:])
	if err != nil {
		t.Fatal(err)
	}
	test := data[split:]
	rmse := stats.RMSE(pred, test)
	// LSTM must beat the constant-mean predictor decisively.
	m := stats.Mean(data[:split])
	flat := make([]float64, len(test))
	for i := range flat {
		flat[i] = m
	}
	if rmse >= stats.RMSE(flat, test)*0.8 {
		t.Fatalf("LSTM RMSE %.3f did not beat mean baseline %.3f", rmse, stats.RMSE(flat, test))
	}
}

func TestLSTMDeterministic(t *testing.T) {
	data := synthetic(24*8, 24, 3, 0.2, 5)
	run := func() []float64 {
		l := NewLSTM(7)
		l.Epochs = 2
		l.Window = 24
		pred, err := l.FitPredict(data[:24*6], data[24*6:])
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("LSTM training not deterministic")
		}
	}
}

func TestLSTMValidation(t *testing.T) {
	l := NewLSTM(1)
	if _, err := l.FitPredict(make([]float64, 5), nil); err == nil {
		t.Fatal("expected error for short training data")
	}
	l2 := NewLSTM(1)
	l2.Hidden = 0
	if _, err := l2.FitPredict(make([]float64, 500), nil); err == nil {
		t.Fatal("expected error for zero hidden units")
	}
}

func TestLSTMConstantSeries(t *testing.T) {
	// Zero-variance input exercises the scale==0 guard.
	data := make([]float64, 200)
	for i := range data {
		data[i] = 42
	}
	l := NewLSTM(2)
	l.Epochs = 1
	l.Window = 24
	pred, err := l.FitPredict(data[:150], data[150:])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pred {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("non-finite prediction on constant series")
		}
	}
}

func TestEvaluateFigure14Shape(t *testing.T) {
	// Small edge and cloud traces; HW only (LSTM is exercised separately —
	// per-VM training is too slow for a full sweep in unit tests).
	nep, err := workload.GenerateNEP(rng.New(20), workload.Options{Apps: 10, Days: 8})
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := workload.GenerateCloud(rng.New(21), workload.Options{Apps: 40, Days: 8})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxVMs: 60, Models: []string{"holt-winters"}}
	rn, err := Evaluate(nep, opts)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Evaluate(cloud, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rn) == 0 || len(rc) == 0 {
		t.Fatal("no results")
	}
	// Paper Fig 14: edge workloads predict better (max-CPU HW error 2.4% vs
	// 8.5% on cloud).
	en := MedianRMSE(rn, "holt-winters", MaxCPU)
	ec := MedianRMSE(rc, "holt-winters", MaxCPU)
	if en >= ec {
		t.Fatalf("edge max-CPU RMSE %.2f should be below cloud %.2f", en, ec)
	}
	// Mean-CPU prediction is easier than max for both platforms.
	if mn := MedianRMSE(rn, "holt-winters", MeanCPU); mn > en {
		t.Fatalf("mean-CPU RMSE %.2f should not exceed max-CPU %.2f", mn, en)
	}
}

func TestEvaluateLSTMOnFewVMs(t *testing.T) {
	nep, err := workload.GenerateNEP(rng.New(22), workload.Options{Apps: 3, Days: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(nep, Options{MaxVMs: 2, Models: []string{"lstm"}, LSTMEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 { // 2 VMs × 2 targets
		t.Fatalf("results = %d, want 4", len(res))
	}
	for _, r := range res {
		if math.IsNaN(r.RMSE) || r.RMSE < 0 {
			t.Fatalf("bad RMSE %v", r.RMSE)
		}
	}
}

func TestEvaluateRejectsBadWindow(t *testing.T) {
	nep, err := workload.GenerateNEP(rng.New(23), workload.Options{Apps: 2, Days: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(nep, Options{Window: 7 * time.Minute, MaxVMs: 1}); err == nil {
		t.Fatal("expected window-multiple error")
	}
}

func TestBuildModelUnknown(t *testing.T) {
	if _, err := buildModel("prophet", 48, 1, Options{}); err == nil {
		t.Fatal("expected unknown-model error")
	}
}

func TestTargetString(t *testing.T) {
	if MaxCPU.String() != "max-cpu" || MeanCPU.String() != "mean-cpu" {
		t.Fatal("Target String broken")
	}
}

func TestTuneHoltWintersBeatsOrMatchesDefault(t *testing.T) {
	const period = 24
	// A sticky-level series with weak trend rewards different smoothing
	// than the defaults.
	r := rng.New(9)
	data := make([]float64, period*16)
	level := 20.0
	for i := range data {
		if i%37 == 0 {
			level += r.Normal(0, 2)
		}
		data[i] = level + 6*math.Sin(2*math.Pi*float64(i)/period) + r.Normal(0, 0.4)
	}
	split := period * 12
	train, test := data[:split], data[split:]

	tuned, err := TuneHoltWinters(train, period, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := tuned.FitPredict(train, test)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewHoltWinters(period).FitPredict(train, test)
	if err != nil {
		t.Fatal(err)
	}
	tr, dr := stats.RMSE(tp, test), stats.RMSE(dp, test)
	if tr > dr*1.15 {
		t.Fatalf("tuned RMSE %.3f much worse than default %.3f", tr, dr)
	}
}

func TestTuneHoltWintersValidation(t *testing.T) {
	if _, err := TuneHoltWinters(make([]float64, 20), 24, 0.25); err == nil {
		t.Fatal("short train accepted")
	}
}

func TestTuneHoltWintersDefaultHoldout(t *testing.T) {
	data := synthetic(24*12, 24, 4, 0.3, 11)
	hw, err := TuneHoltWinters(data, 24, -1) // bad frac falls back to 0.25
	if err != nil {
		t.Fatal(err)
	}
	if hw.Alpha <= 0 || hw.Gamma <= 0 {
		t.Fatal("tuned parameters unset")
	}
}
