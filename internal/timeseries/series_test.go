package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

func seq(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestNewPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(t0, 0, nil)
}

func TestTimeAtAndEnd(t *testing.T) {
	s := New(t0, time.Minute, seq(10))
	if got := s.TimeAt(3); !got.Equal(t0.Add(3 * time.Minute)) {
		t.Fatalf("TimeAt(3) = %v", got)
	}
	if !s.End().Equal(t0.Add(10 * time.Minute)) {
		t.Fatalf("End = %v", s.End())
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(t0, time.Minute, seq(5))
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestSlice(t *testing.T) {
	s := New(t0, time.Minute, seq(10))
	sub := s.Slice(2, 5)
	if sub.Len() != 3 || sub.Values[0] != 2 {
		t.Fatalf("Slice = %+v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(2 * time.Minute)) {
		t.Fatalf("Slice start = %v", sub.Start)
	}
}

// TestSliceViewAliasing pins the zero-copy contract: a Slice is a view over
// the parent's backing array, mutations are visible in both directions, and
// appending to the view cannot clobber the parent past the view's end.
func TestSliceViewAliasing(t *testing.T) {
	s := New(t0, time.Minute, seq(10))
	sub := s.Slice(2, 5)
	sub.Values[0] = -1
	if s.Values[2] != -1 {
		t.Fatal("mutating the view must be visible in the parent")
	}
	s.Values[4] = 99
	if sub.Values[2] != 99 {
		t.Fatal("mutating the parent must be visible in the view")
	}
	// The view is capacity-clipped: growing it must not overwrite s.Values[5].
	sub.Values = append(sub.Values, 123)
	if s.Values[5] != 5 {
		t.Fatal("append through the view overwrote the parent")
	}
	// Clone detaches.
	c := s.Slice(2, 5).Clone()
	c.Values[0] = 7
	if s.Values[2] == 7 {
		t.Fatal("Clone still aliases the parent")
	}
}

func TestSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(t0, time.Minute, seq(3)).Slice(2, 1)
}

func TestResampleMean(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 3, 5, 7, 9})
	r := s.Resample(2*time.Minute, AggMean)
	want := []float64{2, 6, 9} // trailing partial window
	if r.Len() != 3 {
		t.Fatalf("Resample len = %d", r.Len())
	}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Fatalf("Resample = %v, want %v", r.Values, want)
		}
	}
	if r.Interval != 2*time.Minute {
		t.Fatalf("Resample interval = %v", r.Interval)
	}
}

func TestResampleModes(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 4, 2, 8})
	if got := s.Resample(2*time.Minute, AggMax).Values; got[0] != 4 || got[1] != 8 {
		t.Fatalf("AggMax = %v", got)
	}
	if got := s.Resample(2*time.Minute, AggMin).Values; got[0] != 1 || got[1] != 2 {
		t.Fatalf("AggMin = %v", got)
	}
	if got := s.Resample(2*time.Minute, AggSum).Values; got[0] != 5 || got[1] != 10 {
		t.Fatalf("AggSum = %v", got)
	}
	if got := s.Resample(4*time.Minute, AggP95).Values; len(got) != 1 || got[0] < 7 {
		t.Fatalf("AggP95 = %v", got)
	}
}

func TestResamplePanicsOnNonMultiple(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(t0, time.Minute, seq(4)).Resample(90*time.Second, AggMean)
}

func TestRolling(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 2, 3, 4})
	r := s.Rolling(2, AggMean)
	want := []float64{1.5, 2.5, 3.5}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Fatalf("Rolling = %v", r.Values)
		}
	}
}

func TestDailyPeaks(t *testing.T) {
	// 2 days at 1-hour resolution with peaks 23 and 47.
	s := New(t0, time.Hour, seq(48))
	peaks := s.DailyPeaks()
	if len(peaks) != 2 || peaks[0] != 23 || peaks[1] != 47 {
		t.Fatalf("DailyPeaks = %v", peaks)
	}
	if New(t0, time.Hour, nil).DailyPeaks() != nil {
		t.Fatal("empty DailyPeaks")
	}
}

func TestACFPeriodicSignal(t *testing.T) {
	// Perfect 24-sample cycle: ACF at lag 24 must dominate lag 7.
	n := 24 * 14
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	s := New(t0, time.Hour, v)
	if a24, a7 := s.ACF(24), s.ACF(7); a24 < 0.9 || a24 <= a7 {
		t.Fatalf("ACF(24)=%v ACF(7)=%v", a24, a7)
	}
	if s.ACF(0) != 0 || s.ACF(n) != 0 {
		t.Fatal("out-of-range lags should be 0")
	}
}

func TestSeasonalMeans(t *testing.T) {
	s := New(t0, time.Hour, []float64{1, 2, 3, 1, 2, 3})
	m := s.SeasonalMeans(3)
	if m[0] != 1 || m[1] != 2 || m[2] != 3 {
		t.Fatalf("SeasonalMeans = %v", m)
	}
}

func TestSeasonalityStrengthOrdering(t *testing.T) {
	// A strongly diurnal signal should score much higher than white noise.
	const period = 24
	n := period * 20
	seasonal := make([]float64, n)
	noisy := make([]float64, n)
	rnd := uint64(12345)
	next := func() float64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return float64(rnd%1000)/1000 - 0.5
	}
	for i := range seasonal {
		seasonal[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/period) + 0.2*next()
		noisy[i] = 10 + 3*next()
	}
	ss := New(t0, time.Hour, seasonal).SeasonalityStrength(period)
	sn := New(t0, time.Hour, noisy).SeasonalityStrength(period)
	if ss < 0.8 {
		t.Fatalf("seasonal strength = %v, want > 0.8", ss)
	}
	if sn > 0.4 {
		t.Fatalf("noise strength = %v, want < 0.4", sn)
	}
	if ss <= sn {
		t.Fatalf("ordering violated: %v <= %v", ss, sn)
	}
}

func TestSeasonalityStrengthBoundsProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		var v []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			if x > 1e100 {
				x = 1e100
			}
			if x < -1e100 {
				x = -1e100
			}
			v = append(v, x)
		}
		s := New(t0, time.Hour, v)
		st := s.SeasonalityStrength(4)
		return st >= 0 && st <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeasonalityStrengthShortSeries(t *testing.T) {
	if got := New(t0, time.Hour, seq(5)).SeasonalityStrength(24); got != 0 {
		t.Fatalf("short series strength = %v", got)
	}
}

func TestAddScaleClamp(t *testing.T) {
	a := New(t0, time.Minute, []float64{1, -2, 3})
	b := New(t0, time.Minute, []float64{1, 1, 1})
	sum := a.Add(b)
	if sum.Values[1] != -1 {
		t.Fatalf("Add = %v", sum.Values)
	}
	if got := a.Scale(2).Values[2]; got != 6 {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.ClampNonNegative().Values[1]; got != 0 {
		t.Fatalf("Clamp = %v", got)
	}
	// original untouched
	if a.Values[1] != -2 {
		t.Fatal("ops mutated receiver")
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(t0, time.Minute, seq(2)).Add(New(t0, time.Minute, seq(3)))
}

func TestIsFinite(t *testing.T) {
	if !New(t0, time.Minute, []float64{1, 2}).IsFinite() {
		t.Fatal("finite series reported non-finite")
	}
	if New(t0, time.Minute, []float64{1, math.NaN()}).IsFinite() {
		t.Fatal("NaN not detected")
	}
}

func TestMeanMaxCVHelpers(t *testing.T) {
	s := New(t0, time.Minute, []float64{2, 4, 6})
	if s.Mean() != 4 || s.MaxValue() != 6 {
		t.Fatal("Mean/MaxValue wrong")
	}
	if s.CV() <= 0 {
		t.Fatal("CV should be positive for varying series")
	}
}
