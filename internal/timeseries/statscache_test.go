package timeseries

import (
	"math"
	"testing"
	"time"

	"edgescope/internal/stats"
)

func testSeries(n int) *Series {
	v := make([]float64, n)
	for i := range v {
		// Non-trivial values so folded sums differ bitwise from re-sums.
		v[i] = math.Sin(float64(i)*0.7)*3.3 + 0.1*float64(i%11)
	}
	return New(time.Unix(0, 0).UTC(), time.Minute, v)
}

// requireCacheFresh asserts Mean and CV agree bit-for-bit with a direct
// re-sum of the current values, whatever the cache state.
func requireCacheFresh(t *testing.T, tag string, s *Series) {
	t.Helper()
	if got, want := s.Mean(), stats.Mean(s.Values); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: Mean() = %v (bits %x), re-sum = %v (bits %x)",
			tag, got, math.Float64bits(got), want, math.Float64bits(want))
	}
	if got, want := s.CV(), stats.CV(s.Values); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: CV() = %v, re-scan = %v", tag, got, want)
	}
}

func TestPrimeStatsBitIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1024} {
		s := testSeries(n)
		uncachedMean, uncachedCV := s.Mean(), s.CV()
		s.PrimeStats()
		if !s.statsOK {
			t.Fatalf("n=%d: PrimeStats did not validate the cache", n)
		}
		if math.Float64bits(s.Mean()) != math.Float64bits(uncachedMean) {
			t.Fatalf("n=%d: cached Mean diverges from uncached", n)
		}
		if math.Float64bits(s.CV()) != math.Float64bits(uncachedCV) {
			t.Fatalf("n=%d: cached CV diverges from uncached", n)
		}
		requireCacheFresh(t, "primed", s)
	}
}

func TestAddSampleMaintainsCache(t *testing.T) {
	s := &Series{Start: time.Unix(0, 0).UTC(), Interval: time.Minute}
	ref := testSeries(301)
	for i, v := range ref.Values {
		s.AddSample(v)
		if !s.statsOK {
			t.Fatalf("AddSample #%d left cache invalid", i)
		}
	}
	requireCacheFresh(t, "addsample", s)

	// After invalidation, appending must NOT silently re-validate a
	// non-empty series...
	s.InvalidateStats()
	s.AddSample(1.25)
	if s.statsOK {
		t.Fatal("AddSample re-validated an invalidated non-empty series")
	}
	requireCacheFresh(t, "addsample-after-invalidate", s)
	// ...but restarting from empty does.
	s.Values = s.Values[:0]
	s.AddSample(2.5)
	if !s.statsOK {
		t.Fatal("AddSample on emptied series did not restart the cache")
	}
	requireCacheFresh(t, "addsample-restart", s)
}

// TestEveryMutatorInvalidates walks each mutating API over a primed
// series (or primed dst) and checks the cache cannot serve stale sums.
func TestEveryMutatorInvalidates(t *testing.T) {
	t.Run("AddInPlace", func(t *testing.T) {
		s := testSeries(64).PrimeStats()
		s.AddInPlace(testSeries(64))
		if s.statsOK {
			t.Fatal("AddInPlace left the cache valid")
		}
		requireCacheFresh(t, "AddInPlace", s)
	})
	t.Run("ResampleInto", func(t *testing.T) {
		dst := testSeries(8).PrimeStats()
		testSeries(64).ResampleInto(dst, 4*time.Minute, AggMean)
		if dst.statsOK {
			t.Fatal("ResampleInto left dst's cache valid")
		}
		requireCacheFresh(t, "ResampleInto", dst)
	})
	t.Run("RollingInto", func(t *testing.T) {
		dst := testSeries(8).PrimeStats()
		testSeries(64).RollingInto(dst, 5, AggMax)
		if dst.statsOK {
			t.Fatal("RollingInto left dst's cache valid")
		}
		requireCacheFresh(t, "RollingInto", dst)
	})
	t.Run("SliceInto", func(t *testing.T) {
		dst := testSeries(8).PrimeStats()
		testSeries(64).SliceInto(dst, 3, 40)
		if dst.statsOK {
			t.Fatal("SliceInto left dst's cache valid")
		}
		requireCacheFresh(t, "SliceInto", dst)
	})
	t.Run("InvalidateStats", func(t *testing.T) {
		s := testSeries(64).PrimeStats()
		// Aliased mutation through a Slice view: the documented contract
		// is manual invalidation on every Series sharing the array.
		view := s.Slice(0, 10)
		view.Values[3] += 100
		s.InvalidateStats()
		requireCacheFresh(t, "InvalidateStats", s)
	})
}

// TestNonMutatingConstructorsCacheState pins which constructors carry
// the cache (Clone) and which start cold (everything else).
func TestNonMutatingConstructorsCacheState(t *testing.T) {
	s := testSeries(64).PrimeStats()

	c := s.Clone()
	if !c.statsOK {
		t.Fatal("Clone dropped the stats cache")
	}
	requireCacheFresh(t, "Clone", c)
	// Mutating the clone must not corrupt the parent and vice versa.
	c.AddInPlace(testSeries(64))
	requireCacheFresh(t, "Clone-parent", s)

	for tag, d := range map[string]*Series{
		"Slice":            s.Slice(1, 20),
		"Add":              s.Add(testSeries(64)),
		"Scale":            s.Scale(1.7),
		"ClampNonNegative": s.ClampNonNegative(),
		"Resample":         s.Resample(4*time.Minute, AggSum),
		"Rolling":          s.Rolling(3, AggMean),
	} {
		if d.statsOK {
			t.Fatalf("%s carried a stats cache it cannot guarantee", tag)
		}
		requireCacheFresh(t, tag, d)
	}
}
