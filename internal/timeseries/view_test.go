package timeseries

import (
	"math"
	"sort"
	"testing"
	"time"
)

// xorShift is a tiny deterministic generator for the equivalence tests (the
// real rng package is not imported to keep this package dependency-free).
type xorShift uint64

func (x *xorShift) next() float64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return float64(*x%100000)/1000 - 50
}

func randomSeries(seed uint64, n int) *Series {
	x := xorShift(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = x.next()
	}
	return New(t0, time.Minute, v)
}

// --- reference implementations: the pre-view, copy-everything semantics ---

func refAgg(a Agg, w []float64) float64 {
	switch a {
	case AggMean:
		var s float64
		for _, v := range w {
			s += v
		}
		return s / float64(len(w))
	case AggMax:
		m := math.Inf(-1)
		for _, v := range w {
			if v > m {
				m = v
			}
		}
		return m
	case AggMin:
		m := math.Inf(1)
		for _, v := range w {
			if v < m {
				m = v
			}
		}
		return m
	case AggSum:
		var s float64
		for _, v := range w {
			s += v
		}
		return s
	default: // AggP95: copy, sort, interpolate — the old implementation.
		s := append([]float64(nil), w...)
		sort.Float64s(s)
		if len(s) == 1 {
			return s[0]
		}
		rank := 95.0 / 100 * float64(len(s)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			return s[lo]
		}
		frac := rank - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
}

func refResample(s *Series, window time.Duration, a Agg) []float64 {
	k := int(window / s.Interval)
	var out []float64
	for i := 0; i < len(s.Values); i += k {
		j := i + k
		if j > len(s.Values) {
			j = len(s.Values)
		}
		out = append(out, refAgg(a, s.Values[i:j]))
	}
	return out
}

func refRolling(s *Series, k int, a Agg) []float64 {
	out := make([]float64, len(s.Values)-k+1)
	for i := range out {
		out[i] = refAgg(a, s.Values[i:i+k])
	}
	return out
}

var allAggs = []Agg{AggMean, AggMax, AggMin, AggSum, AggP95}

// TestViewOpsMatchCopyingReference checks, on random series, that the
// view-era Slice/Resample/Rolling (and their Into variants on recycled
// buffers) produce bit-identical values to the old copying implementations.
func TestViewOpsMatchCopyingReference(t *testing.T) {
	var resBuf, rolBuf Series
	for seed := uint64(1); seed <= 20; seed++ {
		n := 40 + int(seed*13)%200
		s := randomSeries(seed*7919, n)

		// Slice: values must equal a manual copy of the range.
		i, j := int(seed)%7, n-int(seed)%11
		sub := s.Slice(i, j)
		for k, v := range sub.Values {
			if v != s.Values[i+k] {
				t.Fatalf("seed %d: Slice[%d] = %v, want %v", seed, k, v, s.Values[i+k])
			}
		}

		for _, a := range allAggs {
			got := s.Resample(10*time.Minute, a)
			want := refResample(s, 10*time.Minute, a)
			if len(got.Values) != len(want) {
				t.Fatalf("seed %d agg %d: Resample len %d, want %d", seed, a, len(got.Values), len(want))
			}
			for k := range want {
				if got.Values[k] != want[k] {
					t.Fatalf("seed %d agg %d: Resample[%d] = %v, want %v", seed, a, k, got.Values[k], want[k])
				}
			}
			into := s.ResampleInto(&resBuf, 10*time.Minute, a)
			for k := range want {
				if into.Values[k] != want[k] {
					t.Fatalf("seed %d agg %d: ResampleInto[%d] = %v, want %v", seed, a, k, into.Values[k], want[k])
				}
			}

			got = s.Rolling(7, a)
			want = refRolling(s, 7, a)
			for k := range want {
				if got.Values[k] != want[k] {
					t.Fatalf("seed %d agg %d: Rolling[%d] = %v, want %v", seed, a, k, got.Values[k], want[k])
				}
			}
			intoR := s.RollingInto(&rolBuf, 7, a)
			for k := range want {
				if intoR.Values[k] != want[k] {
					t.Fatalf("seed %d agg %d: RollingInto[%d] = %v, want %v", seed, a, k, intoR.Values[k], want[k])
				}
			}
		}
	}
}

func TestAddInPlace(t *testing.T) {
	a := New(t0, time.Minute, []float64{1, 2, 3})
	b := New(t0, time.Minute, []float64{10, 20, 30})
	got := a.AddInPlace(b)
	if got != a {
		t.Fatal("AddInPlace must return its receiver")
	}
	for i, want := range []float64{11, 22, 33} {
		if a.Values[i] != want {
			t.Fatalf("AddInPlace = %v", a.Values)
		}
	}
	if b.Values[0] != 10 {
		t.Fatal("AddInPlace mutated its argument")
	}
	// Mutation through a view: accumulating into a slice view hits the parent.
	p := New(t0, time.Minute, []float64{0, 0, 0, 0})
	p.Slice(1, 4).AddInPlace(a)
	if p.Values[0] != 0 || p.Values[1] != 11 || p.Values[3] != 33 {
		t.Fatalf("AddInPlace through view = %v", p.Values)
	}
}

func TestAddInPlacePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(t0, time.Minute, seq(2)).AddInPlace(New(t0, time.Minute, seq(3)))
}

// TestChainedViewPipelineZeroAlloc pins the headline property of the view
// refactor: a chained slice → resample → rolling → aggregate pipeline
// performs zero allocations per iteration once its two buffers are warm.
// (AggP95 is excluded: its percentile scratch is per-call by design.)
func TestChainedViewPipelineZeroAlloc(t *testing.T) {
	s := randomSeries(99, 24*60) // one day at 1-minute samples
	var day, hourly, smooth Series
	var sink float64
	pipeline := func() {
		s.SliceInto(&day, 60, 24*60)                  // zero-copy view
		day.ResampleInto(&hourly, time.Hour, AggMean) // buffer reuse
		hourly.RollingInto(&smooth, 3, AggMax)        // buffer reuse
		sink += smooth.Mean()
	}
	pipeline() // warm the buffers
	if allocs := testing.AllocsPerRun(100, pipeline); allocs != 0 {
		t.Fatalf("chained view pipeline allocates %.1f per run, want 0", allocs)
	}
	if math.IsNaN(sink) {
		t.Fatal("pipeline produced NaN")
	}
}

// BenchmarkChainedViewPipeline measures the warm chained pipeline the
// zero-alloc test pins (run with -benchmem: expect 0 B/op, 0 allocs/op).
func BenchmarkChainedViewPipeline(b *testing.B) {
	s := randomSeries(99, 24*60)
	var day, hourly, smooth Series
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SliceInto(&day, 60, 24*60)
		day.ResampleInto(&hourly, time.Hour, AggMean)
		hourly.RollingInto(&smooth, 3, AggMax)
		sink += smooth.Mean()
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN")
	}
}
